// Scheduling under time and energy constraints -- the application the
// paper built the suite for (§7: "to support scheduling decisions under
// time and/or energy constraints").
//
// A mixed workload of dwarf instances is placed on a heterogeneous node
// (one CPU, one consumer GPU, one HPC GPU) three ways: fastest completion,
// lowest energy, and lowest energy under a deadline.  The predictions come
// from the same device models the benchmark figures use.
#include <iomanip>
#include <iostream>

#include "harness/scheduler.hpp"
#include "sim/testbed.hpp"

namespace {

void print_schedule(const char* title,
                    const eod::harness::Schedule& schedule) {
  std::cout << "== " << title << " ==\n";
  for (const auto& a : schedule.assignments) {
    std::cout << "  " << std::left << std::setw(8) << a.task.benchmark
              << std::setw(8) << to_string(a.task.size) << "-> "
              << std::setw(18) << a.device << std::right << std::fixed
              << std::setprecision(3) << std::setw(9)
              << a.prediction.seconds * 1e3 << " ms" << std::setw(9)
              << a.prediction.joules * 1e3 << " mJ  start@"
              << a.start_s * 1e3 << " ms\n";
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "  makespan " << schedule.makespan_s * 1e3 << " ms, energy "
            << schedule.total_energy_j << " J"
            << (schedule.feasible ? "" : "  [DEADLINE MISSED]") << "\n\n";
}

}  // namespace

int main() {
  using namespace eod;
  using namespace eod::harness;
  using dwarfs::ProblemSize;

  const std::vector<Task> tasks = {
      {"srad", ProblemSize::kLarge}, {"fft", ProblemSize::kLarge},
      {"crc", ProblemSize::kLarge},  {"kmeans", ProblemSize::kMedium},
      {"nw", ProblemSize::kMedium},  {"csr", ProblemSize::kLarge},
      {"dwt", ProblemSize::kMedium}, {"crc", ProblemSize::kMedium},
  };
  const std::vector<xcl::Device*> node = {
      &sim::testbed_device("i7-6700K"),
      &sim::testbed_device("GTX 1080"),
      &sim::testbed_device("K40m"),
  };

  std::cout << "Node: i7-6700K + GTX 1080 + K40m; " << tasks.size()
            << " tasks\n\n";

  const Schedule fastest =
      schedule_tasks(tasks, node, Objective::kMinimizeMakespan);
  print_schedule("minimise makespan", fastest);

  const Schedule greenest =
      schedule_tasks(tasks, node, Objective::kMinimizeEnergy);
  print_schedule("minimise energy (no deadline)", greenest);

  const double deadline = fastest.makespan_s * 1.5;
  const Schedule bounded = schedule_tasks(
      tasks, node, Objective::kMinimizeEnergy, deadline);
  std::cout << "deadline: " << deadline * 1e3 << " ms\n";
  print_schedule("minimise energy under deadline", bounded);

  // The trade-off the paper is after: the energy-optimal schedule should
  // not be the time-optimal one (crc prefers the CPU, the stencil and
  // spectral codes prefer GPUs).
  std::cout << "energy saved vs fastest schedule: "
            << (fastest.total_energy_j - greenest.total_energy_j) << " J ("
            << 100.0 * (1.0 - greenest.total_energy_j /
                                  fastest.total_energy_j)
            << "%)\n";
  return bounded.feasible ? 0 : 1;
}
