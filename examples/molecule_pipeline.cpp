// End-to-end gem data pipeline (§4.4.4): the paper prepares molecules as
// PDB -> pdb2pqr -> msms; here the synthetic generator stands in for the
// database, PQR files round-trip through the same format gem consumes, and
// the electrostatic kernel runs on a chosen device with the molecule's
// footprint checked against the §4.4.4 reporting style.
//
//   molecule_pipeline [device options] [out_dir]
#include <iostream>

#include "dwarfs/gem/gem.hpp"
#include "harness/cli.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  using namespace eod::dwarfs;

  harness::CliOptions cli;
  try {
    cli = harness::parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << harness::usage(argv[0]) << '\n';
    return 2;
  }
  const std::string dir =
      cli.positional.empty() ? "." : cli.positional.front();

  // 1. "Download" the molecules: synthesize each named structure at its
  //    published atom count and store it as PQR.
  for (const ProblemSize size : {ProblemSize::kTiny, ProblemSize::kSmall}) {
    const Molecule m =
        generate_molecule(Gem::atoms_for(size), 0x67656dull);
    const std::string path =
        dir + "/" + Gem::molecule_for(size) + ".pqr";
    save_pqr(m, path);
    std::cout << "wrote " << path << " (" << m.atoms() << " atoms)\n";
  }

  // 2. Load one back and run the potential kernel on the selected device.
  const ProblemSize size = cli.size.value_or(ProblemSize::kTiny);
  const std::string pqr_path =
      dir + "/" + Gem::molecule_for(size == ProblemSize::kTiny
                                        ? ProblemSize::kTiny
                                        : ProblemSize::kSmall) +
      ".pqr";
  const Molecule loaded = load_pqr(pqr_path);
  std::cout << "loaded " << pqr_path << ", running gem on ";

  xcl::Device& device = cli.resolve_device();
  std::cout << device.name() << '\n';

  Gem gem;
  gem.configure_with_molecule(loaded);
  xcl::Context ctx(device);
  xcl::Queue queue(ctx);
  gem.bind(ctx, queue);
  gem.run();
  gem.finish();
  const Validation v = gem.validate();

  // §4.4.4 reports "device side memory usage" per molecule; print it the
  // same way, from the allocator.
  std::cout << "device-side memory usage: "
            << ctx.peak_allocated_bytes() / 1024.0 << " KiB\n";
  std::cout << "modeled kernel time: "
            << queue.modeled_kernel_seconds() * 1e3 << " ms\n";
  std::cout << "validation: " << (v.ok ? "PASS" : "FAIL") << " (" << v.detail
            << ")\n";
  gem.unbind();
  return v.ok ? 0 : 1;
}
