// Work-group size auto-tuning -- §7 future work, implemented.
//
// Sweeps candidate local work-group sizes for a bandwidth-bound and a
// compute-bound kernel shape on four representative devices, printing the
// full sweep and the tuner's pick.  Wide-wavefront AMD parts must reject
// the Rodinia-style blocks of 16; CPUs are near-indifferent -- exactly the
// "platform-specific optimization" pitfall the paper found in the original
// OpenDwarfs codes.
#include <iomanip>
#include <iostream>

#include "harness/autotune.hpp"
#include "sim/testbed.hpp"

int main() {
  using namespace eod;
  using namespace eod::harness;

  xcl::WorkloadProfile compute;
  compute.flops = 2e9;
  compute.bytes_read = 2e7;
  compute.working_set_bytes = 2e7;
  compute.pattern = xcl::AccessPattern::kTiled;

  xcl::WorkloadProfile bandwidth;
  bandwidth.flops = 5e7;
  bandwidth.bytes_read = 4e8;
  bandwidth.bytes_written = 1e8;
  bandwidth.working_set_bytes = 5e8;
  bandwidth.pattern = xcl::AccessPattern::kStreaming;

  const std::size_t global_items = 1 << 20;
  const char* devices[] = {"i7-6700K", "GTX 1080", "R9 290X",
                           "Xeon Phi 7210"};

  for (const auto& [label, profile] :
       {std::pair{"compute-bound tiled kernel", compute},
        std::pair{"bandwidth-bound streaming kernel", bandwidth}}) {
    std::cout << "== " << label << " (" << global_items
              << " work-items) ==\n";
    for (const char* name : devices) {
      xcl::Device& dev = sim::testbed_device(name);
      const auto sweep =
          sweep_work_group_sizes(dev, global_items, profile);
      std::cout << std::left << std::setw(16) << name << " ";
      for (const TuneResult& r : sweep) {
        std::cout << "wg" << r.work_group << "="
                  << std::setprecision(4) << r.modeled_seconds * 1e3
                  << "ms ";
      }
      const TuneResult best = autotune_work_group(dev, global_items,
                                                  profile);
      std::cout << " -> best wg = " << best.work_group << '\n';
    }
    std::cout << '\n';
  }

  // Show the cost of NOT tuning: a fixed wg of 16 (common in Rodinia-era
  // codes) versus the tuned choice, per device.
  std::cout << "penalty of a hard-coded work-group of 16:\n";
  for (const char* name : devices) {
    xcl::Device& dev = sim::testbed_device(name);
    const auto sweep = sweep_work_group_sizes(dev, global_items, compute,
                                              {16});
    const TuneResult best = autotune_work_group(dev, global_items, compute);
    if (sweep.empty()) continue;
    std::cout << "  " << std::left << std::setw(16) << name << " "
              << std::setprecision(3)
              << sweep.front().modeled_seconds / best.modeled_seconds
              << "x slower than tuned (wg " << best.work_group << ")\n";
  }
  return 0;
}
