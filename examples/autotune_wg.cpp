// Work-group size auto-tuning -- §7 future work, implemented.
//
// Sweeps candidate local work-group sizes for a bandwidth-bound and a
// compute-bound kernel shape on four representative devices, printing the
// full sweep and the tuner's pick.  Wide-wavefront AMD parts must reject
// the Rodinia-style blocks of 16; CPUs are near-indifferent -- exactly the
// "platform-specific optimization" pitfall the paper found in the original
// OpenDwarfs codes.
#include <iomanip>
#include <iostream>
#include <vector>

#include "harness/autotune.hpp"
#include "sim/testbed.hpp"
#include "xcl/kernel.hpp"
#include "xcl/simd.hpp"

int main() {
  using namespace eod;
  using namespace eod::harness;

  xcl::WorkloadProfile compute;
  compute.flops = 2e9;
  compute.bytes_read = 2e7;
  compute.working_set_bytes = 2e7;
  compute.pattern = xcl::AccessPattern::kTiled;

  xcl::WorkloadProfile bandwidth;
  bandwidth.flops = 5e7;
  bandwidth.bytes_read = 4e8;
  bandwidth.bytes_written = 1e8;
  bandwidth.working_set_bytes = 5e8;
  bandwidth.pattern = xcl::AccessPattern::kStreaming;

  const std::size_t global_items = 1 << 20;
  const char* devices[] = {"i7-6700K", "GTX 1080", "R9 290X",
                           "Xeon Phi 7210"};

  for (const auto& [label, profile] :
       {std::pair{"compute-bound tiled kernel", compute},
        std::pair{"bandwidth-bound streaming kernel", bandwidth}}) {
    std::cout << "== " << label << " (" << global_items
              << " work-items) ==\n";
    for (const char* name : devices) {
      xcl::Device& dev = sim::testbed_device(name);
      const auto sweep =
          sweep_work_group_sizes(dev, global_items, profile);
      std::cout << std::left << std::setw(16) << name << " ";
      for (const TuneResult& r : sweep) {
        std::cout << "wg" << r.work_group << "="
                  << std::setprecision(4) << r.modeled_seconds * 1e3
                  << "ms ";
      }
      const TuneResult best = autotune_work_group(dev, global_items,
                                                  profile);
      std::cout << " -> best wg = " << best.work_group << '\n';
    }
    std::cout << '\n';
  }

  // Show the cost of NOT tuning: a fixed wg of 16 (common in Rodinia-era
  // codes) versus the tuned choice, per device.
  std::cout << "penalty of a hard-coded work-group of 16:\n";
  for (const char* name : devices) {
    xcl::Device& dev = sim::testbed_device(name);
    const auto sweep = sweep_work_group_sizes(dev, global_items, compute,
                                              {16});
    const TuneResult best = autotune_work_group(dev, global_items, compute);
    if (sweep.empty()) continue;
    std::cout << "  " << std::left << std::setw(16) << name << " "
              << std::setprecision(3)
              << sweep.front().modeled_seconds / best.modeled_seconds
              << "x slower than tuned (wg " << best.work_group << ")\n";
  }

  // Dispatch-tier sweep (DESIGN.md §13): the same saxpy kernel carrying
  // all three host-side formulations, measured for real.  The tuner's
  // candidate set follows the kernel's registered bodies.
  std::cout << "\nmeasured dispatch-tier sweep (saxpy, "
            << (std::size_t{1} << 20) << " items):\n";
  {
    const std::size_t items = std::size_t{1} << 20;
    std::vector<float> x(items, 0.5f);
    std::vector<float> y(items, 0.25f);
    const float* xp = x.data();
    float* yp = y.data();
    constexpr float a = 1.25f;
    xcl::Kernel saxpy("saxpy", [=](xcl::WorkItem& it) {
      const std::size_t i = it.global_id(0);
      yp[i] = a * xp[i] + yp[i];
    });
    saxpy.span([=](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) yp[i] = a * xp[i] + yp[i];
    });
    saxpy.simd([=](std::size_t begin, std::size_t end) {
      namespace sv = xcl::simd;
      constexpr std::size_t W = sv::kLanes;
      const sv::vfloat av = sv::vbroadcast(a);
      std::size_t i = begin;
      for (; i + W <= end; i += W) {
        sv::vstore(yp + i, av * sv::vload(xp + i) + sv::vload(yp + i));
      }
      for (; i < end; ++i) yp[i] = a * xp[i] + yp[i];
    });
    xcl::Device& dev = sim::testbed_device("i7-6700K");
    const auto tiers =
        sweep_dispatch_tiers(saxpy, xcl::NDRange(items, 256), dev);
    for (const TierTuneResult& t : tiers) {
      std::cout << "  " << std::left << std::setw(8)
                << xcl::to_string(t.mode) << std::setprecision(4)
                << t.seconds * 1e3 << " ms\n";
    }
    std::cout << "  -> best tier = " << xcl::to_string(tiers.front().mode)
              << " (simd lanes: " << xcl::simd::kLanes << ")\n";
  }
  return 0;
}
