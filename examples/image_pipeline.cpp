// End-to-end image pipeline using the dwt benchmark's public pieces
// (§4.4.3): synthesize the gum-leaf test photo, write it as PPM, load it
// back, down-sample it ImageMagick-style to each problem-size class, run
// the 3-level CDF 5/3 transform on a chosen device, and store the DWT
// coefficients "in a visual tiled fashion" as PGM -- the exact file flow
// of the paper's extended dwt benchmark.
#include <iostream>

#include "dwarfs/dwt/dwt.hpp"
#include "dwarfs/dwt/image.hpp"
#include "harness/cli.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  using namespace eod::dwarfs;

  harness::CliOptions cli;
  try {
    cli = harness::parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << harness::usage(argv[0]) << '\n';
    return 2;
  }
  const std::string dir =
      cli.positional.empty() ? "." : cli.positional.front();

  // 1. Synthesize the full-resolution "photo" and write the PPM dataset,
  //    one image per problem-size class (the paper generates these with
  //    ImageMagick's resize).
  const auto full = Dwt::extent_for(ProblemSize::kLarge);
  const GrayImage leaf = generate_leaf_image(full.width, full.height);
  for (const ProblemSize size : kAllSizes) {
    const auto e = Dwt::extent_for(size);
    const GrayImage scaled =
        (e.width == full.width) ? leaf : box_resize(leaf, e.width, e.height);
    const std::string path = dir + "/" + std::string(to_string(size)) +
                             "-gum.ppm";
    save_ppm_rgb_from_gray(scaled, path);
    std::cout << "wrote " << path << " (" << e.width << "x" << e.height
              << ")\n";
  }

  // 2. Load one class back and run the transform through the runtime.
  const ProblemSize size = cli.size.value_or(ProblemSize::kSmall);
  const std::string in_path =
      dir + "/" + std::string(to_string(size)) + "-gum.ppm";
  const GrayImage input = load_ppm_as_gray(in_path);
  std::cout << "loaded " << in_path << ", running dwt -l 3 on ";

  xcl::Device& device = cli.resolve_device();
  std::cout << device.name() << '\n';

  Dwt dwt;
  dwt.setup(size);
  xcl::Context ctx(device);
  xcl::Queue queue(ctx);
  dwt.bind(ctx, queue);
  dwt.run();
  dwt.finish();
  const Validation v = dwt.validate();
  std::cout << "validation: " << (v.ok ? "PASS" : "FAIL") << " (" << v.detail
            << ")\n";
  std::cout << "device kernel time (modeled): "
            << queue.modeled_kernel_seconds() * 1e3 << " ms, device memory: "
            << ctx.peak_allocated_bytes() / 1024.0 << " KiB\n";

  // 3. Store the coefficients as a tiled PGM, as the benchmark does.
  const auto e = dwt.extent();
  const GrayImage tiles =
      tile_coefficients(dwt.coefficients(), e.width, e.height);
  const std::string out_path =
      dir + "/" + std::string(to_string(size)) + "-gum-dwt.pgm";
  save_pgm(tiles, out_path);
  std::cout << "wrote " << out_path << '\n';
  return v.ok ? 0 : 1;
}
