// Porting the problem-size methodology to a next-generation accelerator --
// the §6 claim: the size classes "can now be easily adjusted for next
// generation accelerator systems using the methodology outlined in
// Section 4.4".
//
// Defines a hypothetical next-gen CPU (bigger L1/L2, victim-cache-style
// L3), re-derives the tiny/small/medium/large scale parameters for kmeans,
// fft and lud with the generalized solver, and verifies each re-derived
// class with the trace-driven cache simulator (for the trace-enabled
// kmeans), exactly as §4.4 verifies the Skylake classes with PAPI.
#include <iomanip>
#include <map>
#include <iostream>

#include "dwarfs/fft/fft.hpp"
#include "dwarfs/kmeans/kmeans.hpp"
#include "dwarfs/lud/lud.hpp"
#include "harness/problem_size.hpp"
#include "sim/cache_sim.hpp"

int main() {
  using namespace eod;
  using namespace eod::harness;
  using dwarfs::ProblemSize;

  // A plausible next-generation server CPU: 48 KiB L1d, 2 MiB L2,
  // 96 MiB L3 (Golden-Cove-class core with a big victim L3).
  sim::DeviceSpec nextgen;
  nextgen.name = "NextGen-CPU";
  nextgen.l1 = {48 * 1024, 64, 12, 1.0, 800.0};
  nextgen.l2 = {2 * 1024 * 1024, 64, 16, 3.0, 400.0};
  nextgen.l3 = {96ull * 1024 * 1024, 64, 16, 14.0, 200.0};
  const SizeClassBounds bounds = SizeClassBounds::from_device(nextgen);

  std::cout << "Re-deriving Table 2 for " << nextgen.name
            << " (L1 48 KiB / L2 2 MiB / L3 96 MiB):\n\n";

  // ---- kmeans: Equation 1 drives the solver ----
  const auto kmeans_footprint = [](std::size_t points) {
    return dwarfs::KMeans::working_set_bytes(points, 26, 5);
  };
  std::cout << "kmeans (Pn, 26 features, 5 clusters):\n";
  std::map<ProblemSize, std::size_t> kmeans_phi;
  for (const ProblemSize s : dwarfs::kAllSizes) {
    const std::size_t phi =
        solve_scale_parameter(bounds, s, kmeans_footprint, 1, 1u << 26);
    kmeans_phi[s] = phi;
    std::cout << "  " << std::left << std::setw(8) << to_string(s)
              << "Phi = " << std::setw(10) << phi << " ("
              << std::fixed << std::setprecision(1)
              << kmeans_footprint(phi) / 1024.0 << " KiB)\n";
    std::cout.unsetf(std::ios::fixed);
  }

  // ---- fft: power-of-two lengths ----
  const auto fft_footprint = [](std::size_t log2n) {
    return (std::size_t{1} << log2n) * 2 * 2 * sizeof(float);
  };
  std::cout << "\nfft (power-of-two N):\n";
  for (const ProblemSize s : dwarfs::kAllSizes) {
    const std::size_t log2n =
        solve_scale_parameter(bounds, s, fft_footprint, 1, 30);
    std::cout << "  " << std::left << std::setw(8) << to_string(s)
              << "N = " << (std::size_t{1} << log2n) << '\n';
  }

  // ---- lud: block-multiple matrix dimensions ----
  const auto lud_footprint = [](std::size_t blocks) {
    const std::size_t n = blocks * dwarfs::Lud::kBlock;
    return n * n * sizeof(float);
  };
  std::cout << "\nlud (n x n floats, n a multiple of 16):\n";
  for (const ProblemSize s : dwarfs::kAllSizes) {
    const std::size_t blocks =
        solve_scale_parameter(bounds, s, lud_footprint, 1, 4096);
    std::cout << "  " << std::left << std::setw(8) << to_string(s)
              << "n = " << blocks * dwarfs::Lud::kBlock << '\n';
  }

  // ---- §4.4-style verification on the new hierarchy ----
  std::cout << "\nverifying the re-derived kmeans classes with the cache "
               "simulator:\n";
  int failures = 0;
  for (const ProblemSize s :
       {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium}) {
    dwarfs::KMeans km;
    dwarfs::KMeans::Params p;
    p.points = kmeans_phi[s];
    km.configure(p);
    sim::CacheHierarchy h(nextgen);
    const auto replay = [&] {
      km.stream_trace([&h](const sim::MemAccess& a) {
        h.access(a.address, a.bytes, a.is_write);
      });
    };
    replay();
    const auto cold = h.counters();
    replay();
    const auto warm = h.counters();
    const double n =
        static_cast<double>(warm.total_accesses - cold.total_accesses);
    const double miss_into[] = {
        static_cast<double>(warm.l1_dcm - cold.l1_dcm) / n,
        static_cast<double>(warm.l2_dcm - cold.l2_dcm) / n,
        static_cast<double>(warm.l3_tcm - cold.l3_tcm) / n};
    // tiny -> no steady L1 misses, small -> no L2 misses, medium -> no L3.
    const int level = static_cast<int>(s);
    const double beyond = miss_into[level];
    const bool ok = beyond < 5e-3;
    if (!ok) ++failures;
    std::cout << "  " << std::left << std::setw(8) << to_string(s)
              << "traffic past intended level: " << std::scientific
              << std::setprecision(2) << beyond
              << (ok ? "  [fits]" : "  [SPILLS]") << '\n';
    std::cout.unsetf(std::ios::scientific);
  }
  std::cout << (failures == 0
                    ? "\nthe methodology ports cleanly to the new "
                      "hierarchy\n"
                    : "\nRE-DERIVED SIZES DO NOT FIT\n");
  return failures;
}
