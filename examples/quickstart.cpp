// Quickstart: run one benchmark on one device and read the results.
//
//   $ quickstart                 # kmeans, small, on the Skylake CPU
//   $ quickstart -d 1 -t 1 --size large --samples 50
//
// Walks the whole public API surface: device selection with the paper's
// -p/-d/-t notation, the benchmark registry, the measurement harness
// (>= 2 s loops, 50 samples), validation against the serial reference, and
// the summary statistics LibSciBench-style post-processing provides.
#include <iostream>

#include "dwarfs/registry.hpp"
#include "harness/cli.hpp"
#include "harness/runner.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  using namespace eod::harness;

  CliOptions cli;
  try {
    cli = parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << usage(argv[0]) << '\n';
    return 2;
  }
  const std::string benchmark =
      cli.positional.empty() ? "kmeans" : cli.positional.front();
  const dwarfs::ProblemSize size =
      cli.size.value_or(dwarfs::ProblemSize::kSmall);

  xcl::Device& device = cli.resolve_device();
  std::cout << "benchmark: " << benchmark << "  size: " << to_string(size)
            << "  device: " << device.name() << " ("
            << to_string(device.type()) << ")\n";

  auto dwarf = dwarfs::create_dwarf(benchmark);
  MeasureOptions opts;
  opts.samples = cli.samples;
  opts.functional = true;
  opts.validate = true;

  const Measurement m = measure(*dwarf, size, device, opts);

  std::cout << "validation: " << (m.validation.ok ? "PASS" : "FAIL") << " ("
            << m.validation.detail << ")\n";
  std::cout << "kernel segments:\n";
  for (const KernelSegment& s : m.segments) {
    std::cout << "  " << s.kernel << ": " << s.launches << " launch(es), "
              << s.modeled_seconds * 1e3 << " ms\n";
  }
  const scibench::Summary t = m.time_summary();
  std::cout << "iteration kernel time over " << t.n << " samples ("
            << m.loop_iterations << " loop iterations each):\n"
            << "  mean " << t.mean << " ms, median " << t.median
            << " ms, CoV " << t.cov() << '\n';
  std::cout << "modeled transfer time: " << m.transfer_seconds * 1e3
            << " ms per iteration\n";
  std::cout << "kernel energy: " << m.energy_summary().median << " J\n";
  return m.validation.ok ? 0 : 1;
}
