// Energy-aware device choice: for every benchmark at the large problem
// size, compare each testbed device's modeled energy-delay product and
// report the best device for three policies -- fastest, least energy, and
// best EDP.  This is the per-task device-selection question the paper's
// energy measurements (§5.2) feed into.
#include <iomanip>
#include <iostream>

#include "dwarfs/registry.hpp"
#include "harness/scheduler.hpp"
#include "sim/testbed.hpp"

int main() {
  using namespace eod;
  using namespace eod::harness;

  std::cout << std::left << std::setw(10) << "benchmark" << std::setw(20)
            << "fastest" << std::setw(20) << "least-energy" << std::setw(20)
            << "best-EDP" << '\n';

  for (const std::string& name : dwarfs::benchmark_names()) {
    auto probe = dwarfs::create_dwarf(name);
    const dwarfs::ProblemSize size = probe->supported_sizes().back();
    const Task task{name, size};

    std::string fastest, greenest, edp_best;
    double best_t = 1e300, best_j = 1e300, best_edp = 1e300;
    for (xcl::Device* dev : sim::testbed_devices()) {
      const Prediction p = predict(task, *dev);
      if (p.seconds < best_t) {
        best_t = p.seconds;
        fastest = dev->name();
      }
      if (p.joules < best_j) {
        best_j = p.joules;
        greenest = dev->name();
      }
      const double edp = p.seconds * p.joules;
      if (edp < best_edp) {
        best_edp = edp;
        edp_best = dev->name();
      }
    }
    std::cout << std::left << std::setw(10) << name << std::setw(20)
              << fastest << std::setw(20) << greenest << std::setw(20)
              << edp_best << '\n';
  }

  std::cout << "\n(expected: crc favours a CPU on every policy; the "
               "bandwidth- and compute-bound dwarfs favour GPUs; the "
               "energy column leans to efficient parts like the GTX 1080 "
               "and RX 480.)\n";
  return 0;
}
