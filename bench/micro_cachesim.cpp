// google-benchmark microbenches of the trace-replay engine (DESIGN.md §8):
// accesses/second for the seed per-access callback pipeline vs the batched
// raw-page path vs the line-coalesced path, on a DRAM-resident streaming
// trace (64 MiB sweep: misses every level of the Skylake hierarchy), plus
// the single-generation multi-hierarchy fan-out across the whole testbed.
//
// Items/s in the report IS accesses/s; the PR acceptance bar is coalesced
// >= 10x the seed per-access rate.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/cache_sim.hpp"
#include "sim/device_spec.hpp"
#include "sim/trace_replay.hpp"

namespace {

using namespace eod;
using namespace eod::sim;

// The workload: a 4-byte-stride streaming sweep over a window larger than
// any testbed L3 (gem-style all-pairs inner loop at DRAM-resident size).
constexpr std::uint64_t kBase = 0x10000;
constexpr std::uint64_t kWindowBytes = 64ull << 20;
constexpr std::uint64_t kAccessesPerSweep = kWindowBytes / 4;

void generate(TraceWriter& w) { w.emit_run(kBase, 4, kAccessesPerSweep, false); }

// ---- seed baseline -------------------------------------------------------
// Faithful replica of the seed pipeline's per-access path: AoS ways,
// modulo set indexing, combined walk, one std::function call per access
// (how DwarfBase::stream_trace fed the simulator before this engine).

class SeedCacheLevel {
 public:
  SeedCacheLevel(std::size_t size_bytes, unsigned line_bytes,
                 unsigned associativity)
      : line_bytes_(line_bytes), assoc_(associativity) {
    const std::size_t lines = size_bytes / line_bytes;
    sets_ = lines / assoc_;
    ways_.resize(lines);
  }

  bool access(std::uint64_t address) {
    ++clock_;
    const std::uint64_t line = address / line_bytes_;
    const std::size_t set = static_cast<std::size_t>(line % sets_);
    Way* base = &ways_[set * assoc_];
    Way* victim = base;
    for (unsigned w = 0; w < assoc_; ++w) {
      if (base[w].tag == line) {
        base[w].lru = clock_;
        ++hits_;
        return true;
      }
      if (base[w].lru < victim->lru) victim = &base[w];
    }
    victim->tag = line;
    victim->lru = clock_;
    ++misses_;
    return false;
  }

  [[nodiscard]] unsigned line_bytes() const { return line_bytes_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;
  };
  unsigned line_bytes_;
  unsigned assoc_;
  std::size_t sets_ = 0;
  std::vector<Way> ways_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class SeedHierarchy {
 public:
  explicit SeedHierarchy(const DeviceSpec& spec, unsigned tlb_entries = 64,
                         unsigned page_bytes = 4096)
      : l1_(spec.l1.size_bytes, spec.l1.line_bytes, spec.l1.associativity),
        l2_(spec.l2.size_bytes, spec.l2.line_bytes, spec.l2.associativity),
        tlb_(static_cast<std::size_t>(tlb_entries) * page_bytes, page_bytes,
             tlb_entries),
        page_bytes_(page_bytes) {
    if (spec.l3.size_bytes != 0) {
      l3_.emplace(spec.l3.size_bytes, spec.l3.line_bytes,
                  spec.l3.associativity);
    }
  }

  void access(std::uint64_t address, std::uint32_t bytes, bool) {
    const unsigned line = l1_.line_bytes();
    const std::uint64_t first = address / line;
    const std::uint64_t last =
        (address + (bytes == 0 ? 0 : bytes - 1)) / line;
    for (std::uint64_t l = first; l <= last; ++l) {
      const std::uint64_t a = l * line;
      ++counters_.total_accesses;
      if (!tlb_.access(a / page_bytes_ * page_bytes_)) ++counters_.tlb_dm;
      if (l1_.access(a)) continue;
      ++counters_.l1_dcm;
      if (l2_.access(a)) continue;
      ++counters_.l2_dcm;
      if (l3_.has_value()) {
        if (l3_->access(a)) continue;
        ++counters_.l3_tcm;
      } else {
        ++counters_.l3_tcm;
      }
    }
  }

  [[nodiscard]] const HierarchyCounters& counters() const {
    return counters_;
  }

 private:
  SeedCacheLevel l1_;
  SeedCacheLevel l2_;
  std::optional<SeedCacheLevel> l3_;
  SeedCacheLevel tlb_;
  unsigned page_bytes_;
  HierarchyCounters counters_;
};

void BM_SeedPerAccessReplay(benchmark::State& state) {
  for (auto _ : state) {
    SeedHierarchy h(skylake());
    const std::function<void(const MemAccess&)> sink =
        [&h](const MemAccess& a) { h.access(a.address, a.bytes, a.is_write); };
    // The seed stream_trace path: one indirect call per access.
    for (std::uint64_t i = 0; i < kAccessesPerSweep; ++i) {
      sink({kBase + i * 4, 4, false});
    }
    benchmark::DoNotOptimize(h.counters());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kAccessesPerSweep));
}
BENCHMARK(BM_SeedPerAccessReplay)->Unit(benchmark::kMillisecond);

// ---- engine paths --------------------------------------------------------

void BM_BatchedRawReplay(benchmark::State& state) {
  struct Sink final : TraceSink {
    CacheHierarchy* h = nullptr;
    void consume(const MemAccess* page, std::size_t n) override {
      h->consume(page, n);
    }
  };
  for (auto _ : state) {
    CacheHierarchy h(skylake());
    Sink sink;
    sink.h = &h;
    TraceWriter writer(sink);
    generate(writer);
    writer.finish();
    benchmark::DoNotOptimize(h.counters());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kAccessesPerSweep));
}
BENCHMARK(BM_BatchedRawReplay)->Unit(benchmark::kMillisecond);

void BM_CoalescedReplay(benchmark::State& state) {
  struct Sink final : CoalescedSink {
    CacheHierarchy* h = nullptr;
    void consume(const CoalescedAccess* page, std::size_t n) override {
      h->consume_coalesced(page, n);
    }
  };
  for (auto _ : state) {
    CacheHierarchy h(skylake());
    Sink sink;
    sink.h = &h;
    TraceWriter writer(sink);
    generate(writer);
    writer.finish();
    benchmark::DoNotOptimize(h.counters());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kAccessesPerSweep));
}
BENCHMARK(BM_CoalescedReplay)->Unit(benchmark::kMillisecond);

void BM_FanOutAllHierarchies(benchmark::State& state) {
  // One generation feeding the whole 15-device testbed (cold + warm pass
  // each); items/s is per-hierarchy-access throughput.
  std::vector<const DeviceSpec*> specs;
  for (const DeviceSpec& s : testbed()) specs.push_back(&s);
  for (auto _ : state) {
    const auto entries = replay_hierarchies(generate, specs);
    benchmark::DoNotOptimize(entries.front().warm.total_accesses);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kAccessesPerSweep * specs.size() * 2));
}
BENCHMARK(BM_FanOutAllHierarchies)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
