// Explicit-SIMD tier throughput on the five hand-vectorized dwarfs
// (DESIGN.md §13): kmeans (distance accumulation), csr (SpMV row gather),
// gem (tiled FMA inner loop), srad (stencil update) and crc (slice-by-8).
// Each dwarf runs its real application iteration -- setup/bind once, then
// timed run()+finish() reps -- under --dispatch=span (the autovectorized
// baseline the previous tier established) and --dispatch=simd (the
// explicit vector bodies).  Before timing, every dwarf's simd output is
// checked bit-identical to the per-item reference via result_signature();
// a speedup over a wrong answer is not a speedup.
//
// Acceptance gate: simd/span >= 1.5x on at least two of the five dwarfs.
// The memory-bound dwarfs (csr's gather, kmeans at out-of-cache sizes)
// are bandwidth-limited and may not clear it; the compute-dense bodies
// (gem's rsqrt chain, srad's transcendental-free stencil, crc's byte
// serialism broken by slicing) are where explicit vectors pay.
//
// Results land in BENCH_simd.json: per-dwarf per-tier timing percentiles,
// per-dwarf ratios, and the headline "speedup" = the second-best ratio
// (the gate quantity: >= 1.5 iff two dwarfs cleared the bar).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dwarfs/common.hpp"
#include "dwarfs/registry.hpp"
#include "scibench/timer.hpp"
#include "sim/testbed.hpp"
#include "xcl/context.hpp"
#include "xcl/executor.hpp"
#include "xcl/queue.hpp"
#include "xcl/simd.hpp"

namespace {

using namespace eod;
using dwarfs::ProblemSize;

constexpr int kWarmup = 1;
constexpr int kReps = 5;
constexpr double kGateRatio = 1.5;
constexpr int kGateDwarfs = 2;

struct ScopedDispatchMode {
  explicit ScopedDispatchMode(xcl::DispatchMode m) {
    xcl::set_dispatch_mode(m);
  }
  ~ScopedDispatchMode() { xcl::set_dispatch_mode(prev); }
  xcl::DispatchMode prev = xcl::dispatch_mode();
};

struct SimdCase {
  const char* name;
  ProblemSize time_size;  ///< size the throughput reps run at
  ProblemSize sig_size;   ///< size the bit-equivalence pre-check runs at
};

// gem is O(vertices x atoms); small already gives the inner loop thousands
// of FMA iterations per vertex, and medium would push a single rep into
// minutes.  Everything else times at medium (the 8 MiB L3 class), where a
// run is long enough to dwarf launch overhead but reps stay interactive.
const SimdCase kCases[] = {
    {"kmeans", ProblemSize::kMedium, ProblemSize::kSmall},
    {"csr", ProblemSize::kMedium, ProblemSize::kSmall},
    {"gem", ProblemSize::kSmall, ProblemSize::kTiny},
    {"srad", ProblemSize::kMedium, ProblemSize::kSmall},
    {"crc", ProblemSize::kMedium, ProblemSize::kSmall},
};

std::uint64_t signature_once(const char* name, ProblemSize size,
                             xcl::DispatchMode mode) {
  ScopedDispatchMode guard(mode);
  auto dwarf = dwarfs::create_dwarf(name);
  dwarf->setup(size);
  xcl::Device& dev = sim::testbed_device("i7-6700K");
  xcl::Context ctx(dev);
  xcl::Queue q(ctx);
  dwarf->bind(ctx, q);
  dwarf->run();
  dwarf->finish();
  const std::uint64_t sig = dwarf->result_signature();
  dwarf->unbind();
  return sig;
}

// Best-of-reps seconds for one application iteration under `mode`; raw
// samples are kept for the json percentiles.  One setup/bind, repeated
// run()+finish() -- the same shape the harness measurement loop uses.
double time_tier(const char* name, ProblemSize size, xcl::DispatchMode mode,
                 std::vector<double>* samples_ns) {
  ScopedDispatchMode guard(mode);
  auto dwarf = dwarfs::create_dwarf(name);
  dwarf->setup(size);
  xcl::Device& dev = sim::testbed_device("i7-6700K");
  xcl::Context ctx(dev);
  xcl::Queue q(ctx);
  dwarf->bind(ctx, q);
  for (int i = 0; i < kWarmup; ++i) {
    dwarf->run();
    dwarf->finish();
  }
  std::uint64_t best = ~std::uint64_t{0};
  for (int i = 0; i < kReps; ++i) {
    const std::uint64_t t0 = scibench::now_ns();
    dwarf->run();
    dwarf->finish();
    const std::uint64_t t1 = scibench::now_ns();
    best = std::min(best, t1 - t0);
    if (samples_ns != nullptr) {
      samples_ns->push_back(static_cast<double>(t1 - t0));
    }
  }
  dwarf->unbind();
  return static_cast<double>(best) * 1e-9;
}

}  // namespace

int main() {
  std::printf("explicit-simd tier vs span on the converted dwarfs "
              "(%zu lanes)\n",
              xcl::simd::kLanes);

  // Bit-equivalence pre-check: the simd bodies must reproduce the per-item
  // reference exactly before any of their timings count.
  for (const SimdCase& c : kCases) {
    const std::uint64_t item =
        signature_once(c.name, c.sig_size, xcl::DispatchMode::kItem);
    const std::uint64_t simd =
        signature_once(c.name, c.sig_size, xcl::DispatchMode::kSimd);
    if (item == 0 || item != simd) {
      std::printf("FAIL: %s simd signature %016llx != item %016llx\n",
                  c.name, static_cast<unsigned long long>(simd),
                  static_cast<unsigned long long>(item));
      return 1;
    }
  }
  std::printf("signatures: all five dwarfs bit-identical to item tier\n\n");

  bench::BenchReport json("simd");
  json.config("device", "i7-6700K");
  json.config("simd_lanes", static_cast<double>(xcl::simd::kLanes));
  json.config("reps", static_cast<double>(kReps));

  std::vector<double> ratios;
  int cleared = 0;
  for (const SimdCase& c : kCases) {
    std::vector<double> span_ns;
    std::vector<double> simd_ns;
    const double span_s =
        time_tier(c.name, c.time_size, xcl::DispatchMode::kSpan, &span_ns);
    const double simd_s =
        time_tier(c.name, c.time_size, xcl::DispatchMode::kSimd, &simd_ns);
    const double ratio = span_s / simd_s;
    ratios.push_back(ratio);
    if (ratio >= kGateRatio) ++cleared;
    std::printf("%-8s %-8s span %10.3f ms   simd %10.3f ms   simd/span "
                "%5.2fx%s\n",
                c.name, dwarfs::to_string(c.time_size), span_s * 1e3,
                simd_s * 1e3, ratio, ratio >= kGateRatio ? "  *" : "");
    json.config(std::string(c.name) + "_size",
                dwarfs::to_string(c.time_size));
    json.metric(std::string(c.name) + "_span", span_ns);
    json.metric(std::string(c.name) + "_simd", simd_ns);
    json.value(std::string(c.name) + "_simd_over_span", ratio);
  }

  // Headline = the second-best ratio: it is >= 1.5 exactly when two dwarfs
  // cleared the gate, so CI can watch the one well-known "speedup" key.
  std::vector<double> sorted = ratios;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double headline = sorted.size() > 1 ? sorted[1] : 0.0;
  json.value("dwarfs_cleared", static_cast<double>(cleared));
  json.speedup(headline);
  if (!json.write()) std::printf("warning: BENCH_simd.json not written\n");

  const bool ok = cleared >= kGateDwarfs;
  std::printf("\n%d/%d dwarfs at >= %.1fx (need %d); second-best ratio "
              "%.2fx\n%s\n",
              cleared, static_cast<int>(std::size(kCases)), kGateRatio,
              kGateDwarfs, headline,
              ok ? "PASS: explicit vectors beat the autovectorized span "
                   "tier where it matters"
                 : "FAIL: simd tier did not clear the gate");
  return ok ? 0 : 1;
}
