// Multi-device co-execution gate (DESIGN.md §14): partitioned lud and nw
// on 1 / 2 / 4 identical modeled GTX 1080s, speedup measured on the
// steady-state modeled span (compute_makespan_s: halos and kernels, minus
// the one-time uploads that are identical work at every device count).
// Correctness is anchored two ways before a number counts: nw validates
// against its serial reference (O(n^2), cheap even at this size), and both
// dwarfs must produce bit-identical result signatures at every device
// count -- a speedup over a wrong answer is not a speedup.  (lud's serial
// reconstruction check is O(n^3) and runs in the equivalence tests at
// smaller sizes instead.)
//
// Sizes matter here: every factorization step / wavefront diagonal costs
// one fixed launch overhead (~6 us on this device model) on the critical
// path *regardless of device count*, so small problems are overhead-bound
// and do not scale -- the bench runs large enough that per-block work
// dominates, which is exactly the regime the multi-device literature
// reports.  Dispatch is pinned to the span tier: the tier changes host
// wall time only, never the modeled span, and span keeps the functional
// pass fast.
//
// Acceptance gate: lud 2-device modeled speedup >= 1.5x.  lud is the
// headline because its trailing update is embarrassingly parallel across
// block rows; nw's wavefront pipeline is reported alongside (its fill /
// drain phases and per-diagonal halos make it the harder case).
//
// The same binary records the b_eff curves: the host-link message-size
// sweep (write/read/bidirectional, dwarfs::Beff) and the peer-link ring
// pattern (harness::ring_sweep).  Both rise from latency-bound small
// messages and saturate at the modeled link rate; CI keeps the curve in
// BENCH_multidev.json so regressions in the link model are visible.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dwarfs/beff/beff.hpp"
#include "dwarfs/lud/lud.hpp"
#include "dwarfs/nw/nw.hpp"
#include "harness/partition.hpp"
#include "sim/testbed.hpp"
#include "xcl/context.hpp"
#include "xcl/queue.hpp"

namespace {

using namespace eod;

constexpr double kGate = 1.5;
constexpr std::size_t kLudDim = 3840;    // 240 block rows
constexpr std::size_t kNwLength = 4096;  // 256 block rows
constexpr std::size_t kBeffMax = std::size_t{4} << 20;  // 4 MiB sweep top

struct SpanAtScale {
  std::size_t devices = 0;
  double span_s = 0.0;
  std::uint64_t signature = 0;
  bool ok = false;
};

std::vector<xcl::Device*> fleet(std::size_t n) {
  std::vector<xcl::Device*> devices;
  for (std::size_t i = 0; i < n; ++i) {
    devices.push_back(&sim::testbed_device("GTX 1080"));
  }
  return devices;
}

SpanAtScale run_lud(std::size_t n_devices) {
  dwarfs::Lud dwarf;
  dwarf.configure(kLudDim);
  harness::PartitionOptions opts;
  opts.validate = false;  // signature-checked across device counts below
  opts.dispatch = xcl::DispatchMode::kSpan;
  const harness::PartitionedResult r =
      harness::run_partitioned_lud(dwarf, fleet(n_devices), opts);
  return {n_devices, r.compute_makespan_s, r.signature, true};
}

SpanAtScale run_nw(std::size_t n_devices) {
  dwarfs::Nw dwarf;
  dwarf.configure(kNwLength, 10);
  harness::PartitionOptions opts;
  opts.validate = true;
  opts.dispatch = xcl::DispatchMode::kSpan;
  const harness::PartitionedResult r =
      harness::run_partitioned_nw(dwarf, fleet(n_devices), opts);
  return {n_devices, r.compute_makespan_s, r.signature, r.validation.ok};
}

void report_scaling(const char* name, const std::vector<SpanAtScale>& runs,
                    bench::BenchReport& report) {
  const double base = runs.front().span_s;
  for (const SpanAtScale& r : runs) {
    const double speedup = base / r.span_s;
    std::printf("  %s %zux: modeled span %8.3f ms  speedup %.2fx  %s\n",
                name, r.devices, r.span_s * 1e3, speedup,
                r.ok ? "valid" : "INVALID");
    const std::string key =
        std::string(name) + "_" + std::to_string(r.devices) + "dev";
    report.value(key + "_modeled_span_s", r.span_s);
    report.value(key + "_speedup", speedup);
  }
}

}  // namespace

int main() {
  std::printf("multi-device co-execution on modeled GTX 1080s\n");
  std::printf("lud -s %zu (block-row panels):\n", kLudDim);
  const std::vector<SpanAtScale> lud = {run_lud(1), run_lud(2), run_lud(4)};
  std::printf("nw %zu 10 (wavefront stripes):\n", kNwLength);
  const std::vector<SpanAtScale> nw = {run_nw(1), run_nw(2), run_nw(4)};

  bench::BenchReport report("multidev");
  report.config("device", "GTX 1080");
  report.config("lud_dim", static_cast<double>(kLudDim));
  report.config("nw_length", static_cast<double>(kNwLength));
  report.config("beff_max_bytes", static_cast<double>(kBeffMax));
  report_scaling("lud", lud, report);
  report_scaling("nw", nw, report);

  // b_eff host-link sweep on one device.
  {
    dwarfs::Beff beff;
    beff.configure(kBeffMax);
    xcl::Device& dev = sim::testbed_device("GTX 1080");
    xcl::Context ctx(dev);
    xcl::Queue q(ctx);
    beff.bind(ctx, q);
    beff.run();
    beff.finish();
    std::printf("b_eff host link (GB/s at %zu B .. %zu B):\n",
                dwarfs::Beff::kMinMessage, kBeffMax);
    for (const dwarfs::BeffPoint& p : beff.points()) {
      report.value("beff_write_gbs_" + std::to_string(p.bytes), p.write_gbs);
      report.value("beff_bi_gbs_" + std::to_string(p.bytes), p.bi_gbs);
    }
    std::printf("  %zu points, saturating at %.2f GB/s write\n",
                beff.points().size(), beff.points().back().write_gbs);
    beff.unbind();
  }

  // b_eff ring pattern over the peer links, 4 devices.
  {
    const std::vector<harness::RingPoint> ring =
        harness::ring_sweep(fleet(4), kBeffMax);
    for (const harness::RingPoint& p : ring) {
      report.value("beff_ring_gbs_" + std::to_string(p.bytes), p.ring_gbs);
    }
    std::printf("b_eff ring over 4 devices: %zu points, saturating at "
                "%.2f GB/s aggregate\n",
                ring.size(), ring.back().ring_gbs);
  }

  const bool all_valid = [&] {
    for (const SpanAtScale& r : lud) {
      if (!r.ok || r.signature != lud.front().signature) return false;
    }
    for (const SpanAtScale& r : nw) {
      if (!r.ok || r.signature != nw.front().signature) return false;
    }
    return true;
  }();
  const double speedup = lud[0].span_s / lud[1].span_s;
  report.speedup(speedup);
  if (!report.write()) {
    std::printf("warning: BENCH_multidev.json not written\n");
  }

  const bool ok = all_valid && speedup >= kGate;
  std::printf("headline lud 2-device speedup %.2fx (target >= %.1fx)\n",
              speedup, kGate);
  std::printf("%s\n", ok ? "PASS: partitioned co-execution beats one device"
                         : "FAIL: target not met or validation failed");
  return ok ? 0 : 1;
}
