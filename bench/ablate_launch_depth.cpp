// Ablation of the queue-depth-dependent launch overhead -- the modeled
// mechanism behind Fig. 3b's AMD degradation on nw (DESIGN.md §5).
//
// Runs nw across sizes on an R9 290X twice: once with the amdappsdk-style
// depth factor, once with it forced to zero (a hypothetical AMD runtime
// with flat enqueue cost).  Without the mechanism the AMD-vs-NVIDIA gap
// stays flat across problem sizes; with it the gap widens, as the paper
// observed.
#include <iomanip>
#include <iostream>

#include "dwarfs/nw/nw.hpp"
#include "sim/perf_model.hpp"
#include "xcl/queue.hpp"

namespace {

using namespace eod;

double nw_seconds(xcl::Device& device, dwarfs::ProblemSize size) {
  dwarfs::Nw nw;
  nw.setup(size);
  xcl::Context ctx(device);
  xcl::Queue q(ctx);
  q.set_functional(false);
  nw.bind(ctx, q);
  q.clear_events();
  nw.run();
  const double t = q.modeled_kernel_seconds();
  nw.unbind();
  return t;
}

}  // namespace

int main() {
  using dwarfs::ProblemSize;

  sim::DeviceSpec amd = sim::spec_by_name("R9 290X");
  sim::DeviceSpec amd_flat = amd;
  amd_flat.launch_depth_factor = 0.0;
  amd_flat.name = "R9 290X (flat enqueue)";
  const sim::DeviceSpec& nvidia = sim::spec_by_name("GTX 1080");

  xcl::DeviceInfo info;
  info.name = amd.name;
  info.max_work_group_size = 256;
  xcl::Device dev_amd(info, std::make_shared<sim::DevicePerfModel>(amd));
  info.name = amd_flat.name;
  xcl::Device dev_flat(info,
                       std::make_shared<sim::DevicePerfModel>(amd_flat));
  info.name = nvidia.name;
  info.max_work_group_size = 1024;
  xcl::Device dev_nv(info, std::make_shared<sim::DevicePerfModel>(nvidia));

  std::cout << "nw kernel time (ms) and AMD/NVIDIA gap, with and without "
               "the depth-dependent enqueue cost\n";
  std::cout << std::left << std::setw(9) << "size" << std::right
            << std::setw(12) << "nvidia" << std::setw(12) << "amd"
            << std::setw(12) << "amd-flat" << std::setw(10) << "gap"
            << std::setw(12) << "gap-flat" << '\n';

  double first_gap = 0.0, last_gap = 0.0;
  double first_flat = 0.0, last_flat = 0.0;
  for (const ProblemSize s : {ProblemSize::kSmall, ProblemSize::kMedium,
                              ProblemSize::kLarge}) {
    const double nv = nw_seconds(dev_nv, s) * 1e3;
    const double with_depth = nw_seconds(dev_amd, s) * 1e3;
    const double flat = nw_seconds(dev_flat, s) * 1e3;
    const double gap = with_depth / nv;
    const double gap_flat = flat / nv;
    if (s == ProblemSize::kSmall) {
      first_gap = gap;
      first_flat = gap_flat;
    }
    last_gap = gap;
    last_flat = gap_flat;
    std::cout << std::left << std::setw(9) << to_string(s) << std::right
              << std::fixed << std::setprecision(3) << std::setw(12) << nv
              << std::setw(12) << with_depth << std::setw(12) << flat
              << std::setprecision(2) << std::setw(10) << gap
              << std::setw(12) << gap_flat << '\n';
    std::cout.unsetf(std::ios::fixed);
  }

  const bool widens = last_gap > first_gap * 1.2;
  const bool flat_does_not = last_flat < first_flat * 1.2;
  std::cout << "\nwith depth factor: gap " << (widens ? "widens" : "flat")
            << " (" << first_gap << " -> " << last_gap << ")\n";
  std::cout << "without:           gap "
            << (flat_does_not ? "does not widen" : "widens") << " ("
            << first_flat << " -> " << last_flat << ")\n";
  std::cout << (widens && flat_does_not
                    ? "the depth-dependent enqueue cost is necessary and "
                      "sufficient for the Fig. 3b shape\n"
                    : "ABLATION DID NOT SEPARATE THE MECHANISM\n");
  return widens && flat_does_not ? 0 : 1;
}
