// Regenerates Figure 4b of the paper: nqueens kernel execution times.
#include "figure_common.hpp"

int main(int argc, const char** argv) {
  using eod::dwarfs::ProblemSize;
  eod::bench::FigureSpec spec;
  spec.figure = "Figure 4b";
  spec.benchmark = "nqueens";
  spec.sizes = {ProblemSize::kTiny};
  spec.include_knl = false;
  return eod::bench::run_figure(spec, argc, argv);
}
