// Machine-readable microbench results (DESIGN.md §12): each bench binary
// that prints a human-readable table also drops a BENCH_<name>.json next to
// it so regressions can be tracked across commits without scraping stdout.
// The schema is deliberately tiny and self-describing:
//
//   {
//     "benchmark": "overlap",
//     "config":  { "device": "GTX 1080", "chunks": "8" },
//     "metrics": { "inorder_wall": {"median_ns":..., "p10_ns":..., "p90_ns":...} },
//     "values":  { "modeled_speedup": 1.61 },
//     "speedup": 1.61
//   }
//
// "metrics" carries sampled timings as median/p10/p90 (the same robust
// statistics the harness reports; means are noise-prone in a shared
// container).  "values" carries deterministic scalars — modeled times,
// ratios, rates.  "speedup" repeats the bench's headline ratio so CI can
// gate on one well-known key.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace eod::bench {

struct Percentiles {
  double median_ns = 0.0;
  double p10_ns = 0.0;
  double p90_ns = 0.0;
};

/// Order statistics over raw nanosecond samples.  Uses the nearest-rank
/// method; an empty sample set yields all zeros rather than a throw, so a
/// bench that was skipped still writes a well-formed file.
[[nodiscard]] inline Percentiles percentiles(std::vector<double> ns) {
  Percentiles p;
  if (ns.empty()) return p;
  std::sort(ns.begin(), ns.end());
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(ns.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, ns.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return ns[lo] + (ns[hi] - ns[lo]) * frac;
  };
  p.p10_ns = at(0.10);
  p.median_ns = at(0.50);
  p.p90_ns = at(0.90);
  return p;
}

/// Accumulates one benchmark's results and serialises them to
/// BENCH_<name>.json in the working directory (or an explicit path).
class BenchReport {
 public:
  explicit BenchReport(std::string benchmark)
      : benchmark_(std::move(benchmark)) {}

  /// Free-form configuration recorded with the run (device, sizes, reps).
  void config(std::string key, std::string value) {
    config_.emplace_back(std::move(key), std::move(value));
  }
  void config(std::string key, double value) {
    config_.emplace_back(std::move(key), number(value));
  }

  /// A sampled timing: raw ns observations reduced to median/p10/p90.
  void metric(std::string name, const std::vector<double>& samples_ns) {
    metrics_.emplace_back(std::move(name), percentiles(samples_ns));
  }

  /// A deterministic scalar (modeled seconds, a ratio, a rate).
  void value(std::string name, double v) {
    values_.emplace_back(std::move(name), v);
  }

  /// The bench's headline ratio; also mirrored into "values".
  void speedup(double x) { speedup_ = x; }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\n  \"benchmark\": \"";
    out += escape(benchmark_);
    out += '"';
    // Built by append rather than `"lit" + std::string` chains: GCC 12's
    // -Wrestrict issues a false positive on small-literal concatenation
    // at -O3 (PR105651), and the bench tree builds with -Werror in CI.
    out += ",\n  \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      out += i ? ", " : "";
      out += '"';
      out += escape(config_[i].first);
      out += "\": \"";
      out += escape(config_[i].second);
      out += '"';
    }
    out += "},\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Percentiles& p = metrics_[i].second;
      out += i ? ", " : "";
      out += '"';
      out += escape(metrics_[i].first);
      out += "\": {\"median_ns\": ";
      out += number(p.median_ns);
      out += ", \"p10_ns\": ";
      out += number(p.p10_ns);
      out += ", \"p90_ns\": ";
      out += number(p.p90_ns);
      out += '}';
    }
    out += "},\n  \"values\": {";
    for (std::size_t i = 0; i < values_.size(); ++i) {
      out += i ? ", " : "";
      out += '"';
      out += escape(values_[i].first);
      out += "\": ";
      out += number(values_[i].second);
    }
    out += "},\n  \"speedup\": ";
    out += number(speedup_);
    out += "\n}\n";
    return out;
  }

  /// Writes BENCH_<benchmark>.json (or `path` when given).  Returns false
  /// when the file cannot be opened; benches report but do not fail on it.
  bool write(const std::string& path = {}) const {
    const std::string target =
        path.empty() ? "BENCH_" + benchmark_ + ".json" : path;
    std::FILE* f = std::fopen(target.c_str(), "w");
    if (f == nullptr) return false;
    const std::string body = to_json();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  static std::string number(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::string benchmark_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, Percentiles>> metrics_;
  std::vector<std::pair<std::string, double>> values_;
  double speedup_ = 0.0;
};

}  // namespace eod::bench
