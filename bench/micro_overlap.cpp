// Transfer/compute overlap microbench (DESIGN.md §12): the same chunked
// write -> kernel -> read pipeline submitted to an in-order and an
// out-of-order queue on the same modeled device.  Each chunk's commands
// depend only on each other, so the out-of-order scheduler is free to run
// chunk i's PCIe transfers (transfer lane) under chunk j's kernel (kernel
// lane) — the double-buffering idiom every discrete-GPU OpenCL guide
// recommends.  In-order, the identical enqueues serialise into one chain.
//
// Per-command modeled durations are mode-invariant by construction; only
// placement differs.  The headline number is the modeled-makespan ratio
// inorder/ooo, with the kernel cost calibrated to roughly match a chunk's
// round-trip transfer cost — the balanced point where overlap pays most.
// Acceptance target: >= 1.3x.  Results land in BENCH_overlap.json.
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "scibench/timer.hpp"
#include "sim/testbed.hpp"
#include "xcl/buffer.hpp"
#include "xcl/queue.hpp"

namespace {

using namespace eod;

constexpr std::size_t kChunks = 8;
constexpr std::size_t kChunkFloats = std::size_t{1} << 20;  // 4 MiB chunks
constexpr std::size_t kLocal = 256;
constexpr int kReps = 5;

// Calibrates a per-chunk workload profile whose modeled kernel time is
// approximately `target_s` on `device`.  The model is a roofline —
// max(compute, memory) plus latency terms — so a single linear rescale of
// flops undershoots while the launch is memory-bound; iterate the rescale
// to a fixed point instead (monotone in flops, converges in a few steps).
xcl::WorkloadProfile calibrated_profile(const xcl::Device& device,
                                        double target_s) {
  xcl::WorkloadProfile p;
  p.flops = 1e6;
  p.bytes_read = static_cast<double>(kChunkFloats * sizeof(float));
  p.bytes_written = p.bytes_read;
  p.working_set_bytes = 2 * p.bytes_read;
  p.pattern = xcl::AccessPattern::kStreaming;
  const xcl::NDRange range(kChunkFloats, kLocal);
  for (int i = 0; i < 16; ++i) {
    const xcl::KernelLaunchStats probe{"probe", range, p, 0};
    const double probe_s = device.model().kernel_seconds(probe);
    if (probe_s > target_s * 0.95 && probe_s < target_s * 1.05) break;
    p.flops *= target_s / probe_s;
  }
  return p;
}

struct PipelineResult {
  double modeled_span_s = 0.0;
  std::vector<double> wall_ns;  ///< host time per full pipeline run
};

// One pipeline: kChunks independent write -> kernel -> read chains on a
// queue of the given mode.  The kernel touches its chunk so the functional
// pass does real work; `xcl::kNoWait` on the write marks it independent
// (a no-wait-list overload would be a *blocking* transfer).
PipelineResult run_pipeline(xcl::QueueMode mode, xcl::Device& device,
                            const xcl::WorkloadProfile& profile) {
  xcl::Context ctx(device);
  std::vector<xcl::Buffer> bufs;
  bufs.reserve(kChunks);
  for (std::size_t c = 0; c < kChunks; ++c) {
    bufs.push_back(xcl::make_buffer<float>(ctx, kChunkFloats));
  }
  std::vector<float> host_in(kChunkFloats, 1.0f);
  std::vector<std::vector<float>> host_out(
      kChunks, std::vector<float>(kChunkFloats));

  PipelineResult result;
  for (int rep = 0; rep < kReps + 1; ++rep) {
    xcl::Queue q(ctx, mode);
    const std::uint64_t t0 = scibench::now_ns();
    // Breadth-first submission (all writes, all kernels, all reads): lane
    // placement is greedy in enqueue order, so interleaving chunk c's read
    // before chunk c+1's write would serialise the transfer lane exactly
    // like a real driver's FIFO DMA engine.
    std::vector<xcl::Event> writes(kChunks);
    std::vector<xcl::Event> kernels(kChunks);
    for (std::size_t c = 0; c < kChunks; ++c) {
      writes[c] = q.enqueue_write<float>(
          bufs[c], std::span<const float>(host_in), xcl::kNoWait);
    }
    for (std::size_t c = 0; c < kChunks; ++c) {
      auto view = bufs[c].view<float>();
      xcl::Kernel k("scale", [view](xcl::WorkItem& it) {
        view[it.global_id(0)] *= 2.0f;
      });
      k.span([view](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) view[i] *= 2.0f;
      });
      const xcl::Event wdep[] = {writes[c]};
      kernels[c] = q.enqueue(k, xcl::NDRange(kChunkFloats, kLocal), profile,
                             wdep);
    }
    for (std::size_t c = 0; c < kChunks; ++c) {
      const xcl::Event kdep[] = {kernels[c]};
      q.enqueue_read<float>(bufs[c], std::span(host_out[c]), kdep);
    }
    q.finish();
    const std::uint64_t t1 = scibench::now_ns();
    if (rep > 0) {  // first rep is warmup
      result.wall_ns.push_back(static_cast<double>(t1 - t0));
    }
    result.modeled_span_s = q.modeled_span_seconds();
  }
  return result;
}

}  // namespace

int main() {
  xcl::Device& device = sim::testbed_device("GTX 1080");
  const double chunk_bytes = kChunkFloats * sizeof(float);
  const double round_trip_s =
      device.model().transfer_seconds(static_cast<std::size_t>(chunk_bytes),
                                      xcl::TransferDir::kHostToDevice) +
      device.model().transfer_seconds(static_cast<std::size_t>(chunk_bytes),
                                      xcl::TransferDir::kDeviceToHost);
  const xcl::WorkloadProfile profile =
      calibrated_profile(device, round_trip_s);

  const PipelineResult inorder =
      run_pipeline(xcl::QueueMode::kInOrder, device, profile);
  const PipelineResult ooo =
      run_pipeline(xcl::QueueMode::kOutOfOrder, device, profile);

  const double speedup = inorder.modeled_span_s / ooo.modeled_span_s;
  std::printf(
      "overlap pipeline on %s: %zu chunks x %.1f MiB, kernel ~ round-trip\n",
      device.info().name.c_str(), kChunks, chunk_bytes / (1024.0 * 1024.0));
  std::printf("  inorder modeled span %8.3f ms\n",
              inorder.modeled_span_s * 1e3);
  std::printf("  ooo     modeled span %8.3f ms\n", ooo.modeled_span_s * 1e3);
  std::printf("  modeled speedup %.2fx (target >= 1.3x)\n", speedup);

  bench::BenchReport report("overlap");
  report.config("device", device.info().name);
  report.config("chunks", static_cast<double>(kChunks));
  report.config("chunk_bytes", chunk_bytes);
  report.config("reps", static_cast<double>(kReps));
  report.metric("inorder_wall", inorder.wall_ns);
  report.metric("ooo_wall", ooo.wall_ns);
  report.value("inorder_modeled_span_s", inorder.modeled_span_s);
  report.value("ooo_modeled_span_s", ooo.modeled_span_s);
  report.value("modeled_speedup", speedup);
  report.speedup(speedup);
  if (!report.write()) std::printf("warning: BENCH_overlap.json not written\n");

  const bool ok = speedup >= 1.3;
  std::printf("%s\n", ok ? "PASS: out-of-order queue overlaps transfers "
                           "with compute"
                         : "FAIL: target not met");
  return ok ? 0 : 1;
}
