// Performance-portability report (§7 future work): per-device
// architectural efficiency (roofline-ideal / achieved) for every benchmark
// at the medium problem size, plus Pennycook's harmonic-mean PP metric
// across the testbed.  Launch-bound and under-occupied codes score low;
// well-shaped bulk kernels approach their rooflines.
#include <iomanip>
#include <iostream>

#include "dwarfs/registry.hpp"
#include "harness/portability.hpp"
#include "sim/testbed.hpp"

int main() {
  using namespace eod;
  using namespace eod::harness;

  const std::vector<xcl::Device*> devices = {
      &sim::testbed_device("i7-6700K"), &sim::testbed_device("GTX 1080"),
      &sim::testbed_device("K40m"),     &sim::testbed_device("R9 290X"),
      &sim::testbed_device("Xeon Phi 7210")};

  std::cout << "Architectural efficiency (ideal/achieved) per device and "
               "Pennycook PP, medium size\n";
  std::cout << std::left << std::setw(10) << "benchmark";
  for (const xcl::Device* d : devices) {
    std::cout << std::right << std::setw(15) << d->name().substr(0, 14);
  }
  std::cout << std::right << std::setw(9) << "PP" << '\n';

  for (const std::string& name : dwarfs::benchmark_names()) {
    auto probe = dwarfs::create_dwarf(name);
    const auto sizes = probe->supported_sizes();
    const dwarfs::ProblemSize size =
        sizes.size() > 2 ? dwarfs::ProblemSize::kMedium : sizes.front();
    const PortabilityReport r = portability_report(name, size, devices);
    std::cout << std::left << std::setw(10) << name;
    for (const DeviceEfficiency& e : r.devices) {
      std::cout << std::right << std::fixed << std::setprecision(3)
                << std::setw(15) << e.efficiency();
      std::cout.unsetf(std::ios::fixed);
    }
    std::cout << std::right << std::fixed << std::setprecision(3)
              << std::setw(9) << r.performance_portability << '\n';
    std::cout.unsetf(std::ios::fixed);
  }
  std::cout << "\n(low rows are the improvement targets the paper's ideal-"
               "performance notion is meant to expose: launch-bound "
               "kernels, partial wavefronts, uncoalesced layouts.)\n";
  return 0;
}
