// Shared driver for the figure-regeneration binaries: runs one benchmark
// over the requested problem sizes across the whole simulated testbed and
// prints the per-device panels the paper plots.
//
// By default devices are measured model-only (the suite's correctness is
// covered by ctest); pass --validate to run the first device functionally
// and check the serial reference, or --long-table for R-compatible output.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "dwarfs/registry.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"

namespace eod::bench {

struct FigureSpec {
  std::string figure;     // e.g. "Figure 1"
  std::string benchmark;  // e.g. "crc"
  std::vector<dwarfs::ProblemSize> sizes;
  bool include_knl = false;  // the paper omits KNL after Fig. 1
};

inline int run_figure(const FigureSpec& spec, int argc, const char** argv) {
  using namespace eod::harness;
  CliOptions cli;
  try {
    cli = parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << usage(argv[0]) << '\n';
    return 2;
  }

  MeasureOptions opts;
  opts.samples = cli.samples;
  opts.min_loop_seconds = cli.min_loop_seconds;
  opts.functional = cli.validate;
  opts.validate = cli.validate;

  std::vector<dwarfs::ProblemSize> sizes = spec.sizes;
  if (cli.size.has_value()) sizes = {*cli.size};

  std::cout << spec.figure << ": " << spec.benchmark
            << " kernel execution times across the simulated testbed\n";
  int failures = 0;
  for (const dwarfs::ProblemSize size : sizes) {
    auto all = measure_all_devices(spec.benchmark, size, opts);
    if (!spec.include_knl) {
      std::erase_if(all, [](const Measurement& m) {
        return m.device == "Xeon Phi 7210";
      });
    }
    if (opts.validate && all.front().validated &&
        !all.front().validation.ok) {
      std::cerr << "VALIDATION FAILED: " << all.front().validation.detail
                << '\n';
      ++failures;
    }
    if (cli.long_table) {
      print_long_table(std::cout, all);
    } else {
      print_panel(std::cout,
                  spec.benchmark + " " + to_string(size), all);
    }
    std::cout << '\n';
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace eod::bench
