// Full-suite driver: runs every benchmark at every supported size across
// the whole testbed and emits the LibSciBench-style long table (one row
// per sample) that the paper's analysis/plotting scripts consume -- the
// equivalent of the Python driver scripts in the paper's GitHub repository
// ("For reproducibility the entire set of Python scripts with all problem
// sizes is available in a GitHub repository").
//
//   suite_report [--samples N] [--out DIR]
//
// Writes one whitespace-separated .dat file per benchmark (R: read.table)
// plus a combined summary to stdout.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "dwarfs/registry.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  using namespace eod::harness;

  std::size_t samples = 50;
  std::string out_dir = "suite_results";
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--samples") samples = std::stoul(argv[i + 1]);
    if (flag == "--out") out_dir = argv[i + 1];
  }
  std::filesystem::create_directories(out_dir);

  MeasureOptions opts;
  opts.samples = samples;
  opts.functional = false;  // validated by the test suite; sweep the model

  for (const std::string& name : dwarfs::benchmark_names()) {
    auto probe = dwarfs::create_dwarf(name);
    std::vector<Measurement> all;
    for (const dwarfs::ProblemSize size : probe->supported_sizes()) {
      auto group = measure_all_devices(name, size, opts);
      all.insert(all.end(), std::make_move_iterator(group.begin()),
                 std::make_move_iterator(group.end()));
    }
    const std::string path = out_dir + "/" + name + ".dat";
    std::ofstream file(path);
    print_long_table(file, all);
    std::cout << name << ": " << all.size() << " measurement groups, "
              << all.size() * samples << " samples -> " << path << '\n';
    print_panel(std::cout, name + " (largest size)",
                {all.end() - std::min<std::size_t>(all.size(), 15),
                 all.end()});
    std::cout << '\n';
  }
  return 0;
}
