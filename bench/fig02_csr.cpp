// Regenerates Figure 2c of the paper: csr kernel execution times.
#include "figure_common.hpp"

int main(int argc, const char** argv) {
  using eod::dwarfs::ProblemSize;
  eod::bench::FigureSpec spec;
  spec.figure = "Figure 2c";
  spec.benchmark = "csr";
  spec.sizes = {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium, ProblemSize::kLarge};
  spec.include_knl = false;
  return eod::bench::run_figure(spec, argc, argv);
}
