// §4.3/§4.4 hardware-counter report: the per-benchmark, per-size cache
// verification data the paper collected but omitted "for brevity" ("cache
// miss results are not presented in this paper but were used to verify the
// selection of suitable problem sizes for each benchmark").
//
// For every trace-enabled benchmark and size class, replays the memory
// trace through the Skylake hierarchy and prints the PAPI-event rates the
// paper lists: IPC, L1/L2 data cache misses, L3 request/miss rate and miss
// ratio, data TLB miss rate, and branch mispredictions.
#include <iomanip>
#include <iostream>

#include "dwarfs/registry.hpp"
#include "harness/runner.hpp"
#include "sim/testbed.hpp"

int main() {
  using namespace eod;
  using namespace eod::sim;

  std::cout << "PAPI-style counter rates on the Skylake i7-6700K (per "
               "instruction)\n";
  std::cout << std::left << std::setw(9) << "bench" << std::setw(8)
            << "size" << std::right << std::setw(7) << "IPC"
            << std::setw(11) << "L1_DCM" << std::setw(11) << "L2_DCM"
            << std::setw(11) << "L3_req" << std::setw(11) << "L3_miss"
            << std::setw(10) << "L3_ratio" << std::setw(10) << "TLB_DM"
            << std::setw(9) << "BR_MSP" << '\n';

  for (const char* name :
       {"kmeans", "csr", "crc", "fft", "dwt", "srad", "nw", "gem"}) {
    auto dwarf = dwarfs::create_dwarf(name);
    for (const dwarfs::ProblemSize size : dwarf->supported_sizes()) {
      // gem's all-pairs trace is O(V*A): replaying medium/large would take
      // hours; the paper's gem sizes don't exercise the hierarchy anyway.
      if (std::string(name) == "gem" &&
          size >= dwarfs::ProblemSize::kMedium) {
        continue;
      }
      harness::MeasureOptions opts;
      opts.functional = false;
      opts.collect_counters = true;
      const harness::Measurement m = harness::measure(
          *dwarf, size, testbed_device("i7-6700K"), opts);
      if (!m.counters_collected) continue;
      const auto& c = m.counters;
      const auto ins = static_cast<double>(c.get(PapiEvent::kTotIns));
      auto rate = [&](PapiEvent e) {
        return ins > 0.0 ? static_cast<double>(c.get(e)) / ins : 0.0;
      };
      std::cout << std::left << std::setw(9) << name << std::setw(8)
                << to_string(size) << std::right << std::fixed
                << std::setprecision(2) << std::setw(7) << c.ipc()
                << std::scientific << std::setprecision(2) << std::setw(11)
                << rate(PapiEvent::kL1Dcm) << std::setw(11)
                << rate(PapiEvent::kL2Dcm) << std::setw(11)
                << c.l3_request_rate() << std::setw(11) << c.l3_miss_rate()
                << std::fixed << std::setw(10) << c.l3_miss_ratio()
                << std::scientific << std::setw(10) << c.tlb_miss_rate()
                << std::fixed << std::setw(9)
                << c.branch_misprediction_rate() << '\n';
      std::cout.unsetf(std::ios::fixed | std::ios::scientific);
    }
  }
  std::cout << "\n(tiny rows show near-zero L1 misses, medium rows near-"
               "zero L3 misses, large rows real DRAM traffic -- the §4.4 "
               "size-selection verification.)\n";

  // Host-side substrate observability: replay two small benchmarks
  // functionally (one plain-loop kernel set, one barrier-heavy) and report
  // what the work-stealing executor did -- the dispatch-cost bookkeeping
  // that guards the ~ns-resolution samples above against harness overhead.
  xcl::reset_executor_stats();
  // kmeans exercises the loop path, lud the fiber path with real __local
  // traffic (tile staging), so every dispatch counter is nonzero.
  for (const char* name : {"kmeans", "lud"}) {
    auto dwarf = dwarfs::create_dwarf(name);
    harness::MeasureOptions opts;
    opts.functional = true;
    (void)harness::measure(*dwarf, dwarfs::ProblemSize::kTiny,
                           testbed_device("i7-6700K"), opts);
  }
  std::cout << '\n'
            << describe_executor_stats(xcl::executor_stats())
            << "(functional replay of kmeans+lud tiny; stolen chunks > 0 "
               "only on multi-core hosts.)\n";
  return 0;
}
