// §4.3/§4.4 hardware-counter report: the per-benchmark, per-size cache
// verification data the paper collected but omitted "for brevity" ("cache
// miss results are not presented in this paper but were used to verify the
// selection of suitable problem sizes for each benchmark").
//
// For every trace-enabled benchmark and size class, replays the memory
// trace through the Skylake hierarchy and prints the PAPI-event rates the
// paper lists: IPC, L1/L2 data cache misses, L3 request/miss rate and miss
// ratio, data TLB miss rate, and branch mispredictions.
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>

#include "dwarfs/registry.hpp"
#include "harness/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/replay_cache.hpp"
#include "sim/testbed.hpp"

int main(int argc, char** argv) {
  using namespace eod;
  using namespace eod::sim;

  // --max-accesses N skips any trace whose size hint exceeds N (0, the
  // default, replays everything -- gem medium/large included).
  // --dispatch=auto|item|span|simd|checked pins the kernel tier for the
  // functional passes below (A/B dispatch measurement; counters are
  // tier-invariant; checked adds the §10 shadow-memory report).  The
  // default honors the EOD_DISPATCH env hatch.
  std::size_t max_accesses = 0;
  xcl::DispatchMode dispatch = xcl::default_dispatch_mode();
  // --trace=FILE / --metrics=FILE record the whole report run (every
  // measure() call below) into one Chrome trace / metrics snapshot.
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-accesses") == 0 && i + 1 < argc) {
      max_accesses = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--dispatch=", 11) == 0) {
      const auto mode = xcl::parse_dispatch_mode(argv[i] + 11);
      if (!mode.has_value()) {
        std::cerr << "bad --dispatch (" << xcl::dispatch_mode_names()
                  << "): " << argv[i] + 11 << '\n';
        return 2;
      }
      dispatch = *mode;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    }
  }
  if (trace_path.empty()) trace_path = obs::env_trace_path();
  if (!trace_path.empty()) {
    obs::set_thread_lane_name("counters_report");
    obs::set_tracing_enabled(true);
  }
  if (!trace_path.empty() || !metrics_path.empty()) {
    obs::set_timed_metrics(true);
  }

  // Replayed cells persist under results/ so re-runs replay nothing.
  ReplayCache::instance().set_disk_store("results/replay_memo.tsv");

  std::cout << "PAPI-style counter rates on the Skylake i7-6700K (per "
               "instruction)\n";
  std::cout << std::left << std::setw(9) << "bench" << std::setw(8)
            << "size" << std::right << std::setw(7) << "IPC"
            << std::setw(11) << "L1_DCM" << std::setw(11) << "L2_DCM"
            << std::setw(11) << "L3_req" << std::setw(11) << "L3_miss"
            << std::setw(10) << "L3_ratio" << std::setw(10) << "TLB_DM"
            << std::setw(9) << "BR_MSP" << '\n';

  for (const char* name :
       {"kmeans", "csr", "crc", "fft", "dwt", "srad", "nw", "gem"}) {
    auto dwarf = dwarfs::create_dwarf(name);
    for (const dwarfs::ProblemSize size : dwarf->supported_sizes()) {
      harness::MeasureOptions opts;
      opts.functional = false;
      opts.collect_counters = true;
      opts.max_trace_accesses = max_accesses;
      opts.dispatch = dispatch;
      const harness::Measurement m = harness::measure(
          *dwarf, size, testbed_device("i7-6700K"), opts);
      if (!m.counters_collected) continue;
      const auto& c = m.counters;
      const auto ins = static_cast<double>(c.get(PapiEvent::kTotIns));
      auto rate = [&](PapiEvent e) {
        return ins > 0.0 ? static_cast<double>(c.get(e)) / ins : 0.0;
      };
      std::cout << std::left << std::setw(9) << name << std::setw(8)
                << to_string(size) << std::right << std::fixed
                << std::setprecision(2) << std::setw(7) << c.ipc()
                << std::scientific << std::setprecision(2) << std::setw(11)
                << rate(PapiEvent::kL1Dcm) << std::setw(11)
                << rate(PapiEvent::kL2Dcm) << std::setw(11)
                << c.l3_request_rate() << std::setw(11) << c.l3_miss_rate()
                << std::fixed << std::setw(10) << c.l3_miss_ratio()
                << std::scientific << std::setw(10) << c.tlb_miss_rate()
                << std::fixed << std::setw(9)
                << c.branch_misprediction_rate() << '\n';
      std::cout.unsetf(std::ios::fixed | std::ios::scientific);
    }
  }
  std::cout << "\n(tiny rows show near-zero L1 misses, medium rows near-"
               "zero L3 misses, large rows real DRAM traffic -- the §4.4 "
               "size-selection verification.)\n";

  const ReplayCache::Stats rc = ReplayCache::instance().stats();
  std::cout << "replay memo: " << rc.hits << " hits, " << rc.misses
            << " misses, " << rc.loaded << " loaded from disk, "
            << rc.stores << " stored\n";

  // Host-side substrate observability: replay two small benchmarks
  // functionally (one plain-loop kernel set, one barrier-heavy) and report
  // what the work-stealing executor did -- the dispatch-cost bookkeeping
  // that guards the ~ns-resolution samples above against harness overhead.
  xcl::reset_executor_stats();
  // kmeans exercises the loop path, lud the fiber path with real __local
  // traffic (tile staging), so every dispatch counter is nonzero.
  for (const char* name : {"kmeans", "lud"}) {
    auto dwarf = dwarfs::create_dwarf(name);
    harness::MeasureOptions opts;
    opts.functional = true;
    opts.dispatch = dispatch;
    const harness::Measurement m = harness::measure(
        *dwarf, dwarfs::ProblemSize::kTiny, testbed_device("i7-6700K"),
        opts);
    if (m.check_performed) {
      std::cout << name << ' ' << m.check_report.to_text();
    }
  }
  std::cout << '\n'
            << describe_executor_stats(xcl::executor_stats())
            << "(functional replay of kmeans+lud tiny, --dispatch="
            << xcl::to_string(dispatch)
            << "; stolen chunks > 0 only on multi-core hosts.)\n";

  if (!trace_path.empty()) {
    obs::set_tracing_enabled(false);
    if (obs::write_chrome_trace(trace_path)) {
      std::cout << "trace: " << trace_path
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
  }
  if (!metrics_path.empty()) {
    if (obs::snapshot_metrics().write_file(metrics_path)) {
      std::cout << "metrics: " << metrics_path << '\n';
    }
  }
  return 0;
}
