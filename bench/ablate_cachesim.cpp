// Ablation: analytic working-set residence (what the timing model uses)
// versus the trace-driven cache simulator (ground truth within the
// simulation), on the benchmarks that expose memory traces.
//
// For each (benchmark, size) the analytic rule predicts the smallest
// Skylake cache level holding the working set; the simulator replays the
// trace twice (cold + steady state) and reports where the steady-state
// traffic actually settles.  Disagreements would mean the model's
// residence heuristic -- the mechanism behind the i5-3550 medium-size
// cliff and the spectral-dwarf CPU penalty -- is unsound.
#include <iomanip>
#include <iostream>

#include "dwarfs/registry.hpp"
#include "sim/cache_sim.hpp"
#include "sim/device_spec.hpp"
#include "sim/replay_cache.hpp"
#include "sim/perf_model.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace {

using namespace eod;

int analytic_level(double ws, const sim::DeviceSpec& d) {
  if (ws <= static_cast<double>(d.l1.size_bytes)) return 1;
  if (ws <= static_cast<double>(d.l2.size_bytes)) return 2;
  if (d.l3.size_bytes != 0 && ws <= static_cast<double>(d.l3.size_bytes)) {
    return 3;
  }
  return 4;
}

int simulated_level(const dwarfs::Dwarf& dwarf, const sim::DeviceSpec& d) {
  // Memoized coalesced replay; .warm holds the steady-state pass (the
  // seed's cold/warm cumulative diff, with the reset folded in).
  const sim::ReplayMemoEntry memo = sim::memoized_replay(
      [&dwarf](sim::TraceWriter& w) { dwarf.stream_trace(w); }, d,
      dwarf.name() + "/ablate");
  const double n = static_cast<double>(memo.warm.total_accesses);
  const double l1 = static_cast<double>(memo.warm.l1_dcm) / n;
  const double l2 = static_cast<double>(memo.warm.l2_dcm) / n;
  const double l3 = static_cast<double>(memo.warm.l3_tcm) / n;
  // Steady-state service level: the deepest level with meaningful misses
  // one level up and (almost) none itself.
  if (l3 > 1e-3) return 4;
  if (l2 > 1e-3) return 3;
  if (l1 > 5e-3) return 2;
  return 1;
}

// Built by append rather than `"L" + std::to_string(l)`: GCC 12's -Wrestrict
// issues a false positive on small-literal concatenation at -O3 (PR105651).
std::string level_name(int level) {
  std::string s("L");
  s += std::to_string(level);
  return s;
}

}  // namespace

int main() {
  // Persist replayed cells so report re-runs replay nothing.
  eod::sim::ReplayCache::instance().set_disk_store(
      "results/replay_memo.tsv");
  const sim::DeviceSpec& sky = sim::skylake();
  std::cout << "Analytic residence rule vs trace-driven simulation "
               "(Skylake hierarchy)\n";
  std::cout << std::left << std::setw(10) << "benchmark" << std::setw(9)
            << "size" << std::setw(14) << "ws(KiB)" << std::setw(10)
            << "analytic" << std::setw(11) << "simulated" << "verdict\n";

  int mismatches = 0;
  const char* names[] = {"kmeans", "csr", "crc"};  // trace-enabled dwarfs
  for (const char* name : names) {
    auto dwarf = dwarfs::create_dwarf(name);
    for (const dwarfs::ProblemSize size :
         {dwarfs::ProblemSize::kTiny, dwarfs::ProblemSize::kSmall,
          dwarfs::ProblemSize::kMedium, dwarfs::ProblemSize::kLarge}) {
      dwarf->setup(size);
      const double ws =
          static_cast<double>(dwarf->footprint_bytes(size));
      const int predicted = analytic_level(ws, sky);
      const int simulated = simulated_level(*dwarf, sky);
      // The rule is sound if it matches or errs by at most one level on
      // boundary-straddling sizes.
      const bool ok = std::abs(predicted - simulated) <= 1;
      if (!ok) ++mismatches;
      std::cout << std::left << std::setw(10) << name << std::setw(9)
                << to_string(size) << std::setw(14) << std::fixed
                << std::setprecision(1) << ws / 1024.0 << std::setw(10)
                << level_name(predicted) << std::setw(11)
                << level_name(simulated)
                << (predicted == simulated
                        ? "exact"
                        : (ok ? "within one level" : "MISMATCH"))
                << '\n';
      std::cout.unsetf(std::ios::fixed);
    }
  }
  std::cout << (mismatches == 0
                    ? "\nanalytic residence rule is consistent with the "
                      "trace-driven simulator\n"
                    : "\nANALYTIC RULE DISAGREES WITH SIMULATION\n");

  // Second ablation: the analytic memory *time* versus the trace-fed
  // per-level-traffic memory time, on the Skylake model.
  std::cout << "\nanalytic vs trace-fed memory term (kmeans, Skylake):\n";
  const sim::DevicePerfModel model(sky);
  int time_mismatches = 0;
  {
    auto dwarf = dwarfs::create_dwarf("kmeans");
    for (const dwarfs::ProblemSize size :
         {dwarfs::ProblemSize::kTiny, dwarfs::ProblemSize::kSmall,
          dwarfs::ProblemSize::kMedium, dwarfs::ProblemSize::kLarge}) {
      dwarf->setup(size);
      xcl::Context ctx(sim::testbed_device("i7-6700K"));
      xcl::Queue q(ctx);
      q.set_functional(false);
      q.set_record_launches(true);
      dwarf->bind(ctx, q);
      q.clear_events();
      dwarf->run();
      // Steady-state counters via the same memoized replay engine.
      const sim::ReplayMemoEntry memo = sim::memoized_replay(
          [&dwarf](sim::TraceWriter& w) { dwarf->stream_trace(w); }, sky,
          std::string("kmeans/") + to_string(size));
      const xcl::KernelLaunchStats& launch = q.launches().front();
      const double analytic = model.analyze(launch).memory_s;
      const double traced =
          model.memory_seconds_from_counters(launch, memo.warm);
      const double ratio = traced > 0.0 ? analytic / traced : 0.0;
      // Agreement within ~3x validates the cheap analytic term.
      const bool ok = ratio > 1.0 / 3.0 && ratio < 3.0;
      if (!ok) ++time_mismatches;
      std::cout << "  " << std::left << std::setw(8) << to_string(size)
                << "analytic " << std::scientific << std::setprecision(2)
                << analytic << " s,  trace-fed " << traced << " s  ("
                << std::fixed << std::setprecision(2) << ratio << "x"
                << (ok ? ")" : ", DIVERGES)") << '\n';
      std::cout.unsetf(std::ios::fixed | std::ios::scientific);
      dwarf->unbind();
    }
  }
  const sim::ReplayCache::Stats rc = sim::ReplayCache::instance().stats();
  std::cout << "\nreplay memo: " << rc.hits << " hits, " << rc.misses
            << " misses, " << rc.loaded << " loaded from disk, "
            << rc.stores << " stored\n";
  return (mismatches == 0 && time_mismatches == 0) ? 0 : 1;
}
