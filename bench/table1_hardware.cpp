// Regenerates Table 1: the fifteen test platforms and their published
// characteristics, from the device registry that backs the simulator.
#include <iostream>

#include "harness/report.hpp"

int main() {
  eod::harness::print_table1(std::cout);
  return 0;
}
