// Launch-overhead microbench: per-group dispatch cost of the work-stealing
// NDRange executor vs. the seed task-queue ThreadPool, on an empty kernel
// where *all* time is harness overhead.
//
// The seed executor is replicated here verbatim-in-spirit as the baseline:
// a mutex+condvar task queue taking one heap-allocated std::function per
// chunk, a fresh zero-filled LocalArena per work-group, and fresh fiber
// stacks per barrier group.  The paper's methodology (ICPP'18, §2) depends
// on LibSciBench-style ~ns-resolution samples, which are only trustworthy
// when dispatch cost is negligible against kernel work -- exactly what this
// binary quantifies.  Acceptance target: >= 5x lower per-group overhead on
// an empty-kernel 4096-group launch, with zero per-group heap allocations
// in steady state on both the loop and the fiber path.
#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <mutex>
#include <new>
#include <queue>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "scibench/timer.hpp"
#include "sim/testbed.hpp"
#include "xcl/executor.hpp"
#include "xcl/fiber.hpp"
#include "xcl/kernel.hpp"
#include "xcl/thread_pool.hpp"

// ---- global allocation interposer (this binary only) ---------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}

void* operator new(std::size_t size) {
  // lint: relaxed-ok(allocation counter; value-only)
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  // lint: relaxed-ok(allocation counter; value-only)
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) -
                                         1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace eod;

// ---- the seed executor, reproduced as the comparison baseline ------------

namespace seed {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) {
      threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    const std::size_t workers = size();
    if (n == 1 || workers == 1) {
      for (std::size_t i = 0; i < n; ++i) body(i);
      return;
    }
    const std::size_t chunks = std::min(n, workers * 4);
    const std::size_t per = (n + chunks - 1) / chunks;

    std::atomic<std::size_t> remaining{chunks};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;

    {
      std::scoped_lock lock(mutex_);
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t begin = c * per;
        const std::size_t end = std::min(n, begin + per);
        tasks_.push([&, begin, end] {
          try {
            for (std::size_t i = begin; i < end; ++i) body(i);
          } catch (...) {
            std::scoped_lock elock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          if (remaining.fetch_sub(1) == 1) {
            std::scoped_lock dlock(done_mutex);
            done_cv.notify_all();
          }
        });
      }
    }
    cv_.notify_all();

    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining.load() == 0; });
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

// The seed execute_ndrange: a fresh zero-filled LocalArena per group, fresh
// fiber stacks per barrier group (run_fiber_group's one-shot wrapper keeps
// exactly the seed's allocate-per-group behaviour).
void execute_ndrange(ThreadPool& pool, const xcl::Kernel& kernel,
                     const xcl::NDRange& range, const xcl::Device& device) {
  const std::size_t groups = range.num_groups();
  const std::size_t local_mem = device.info().local_mem_bytes;
  const std::size_t lx = range.local(0);

  pool.parallel_for(groups, [&](std::size_t flat) {
    xcl::LocalArena arena(local_mem);
    const std::size_t gx = range.groups(0);
    const std::array<std::size_t, 3> group_id{flat % gx, (flat / gx) % 1,
                                              flat / gx};
    const std::array<std::size_t, 3> global_size{range.global(0), 1, 1};
    const std::array<std::size_t, 3> local_size{lx, 1, 1};
    if (kernel.barriers()) {
      std::function<void()> hook = [] { xcl::Fiber::yield_current(); };
      xcl::run_fiber_group(lx, [&](std::size_t x) {
        const std::array<std::size_t, 3> local_id{x, 0, 0};
        const std::array<std::size_t, 3> global_id{group_id[0] * lx + x, 0,
                                                   0};
        xcl::WorkItem item(global_id, local_id, group_id, global_size,
                           local_size, &arena, &hook);
        kernel.body()(item);
      });
    } else {
      for (std::size_t x = 0; x < lx; ++x) {
        const std::array<std::size_t, 3> local_id{x, 0, 0};
        const std::array<std::size_t, 3> global_id{group_id[0] * lx + x, 0,
                                                   0};
        xcl::WorkItem item(global_id, local_id, group_id, global_size,
                           local_size, &arena, nullptr);
        kernel.body()(item);
      }
    }
  });
}

}  // namespace seed

// ---- measurement ---------------------------------------------------------
//
// Two group sizes per path: 1 work-item per group isolates *dispatch*
// overhead (the empty body contributes a single indirect call), which is
// the quantity the >=5x acceptance target is stated against; 16 items per
// group is reported alongside for context, though there the shared per-item
// cost (16 std::function kernel invocations paid identically by both
// executors) dilutes the dispatch ratio.

constexpr std::size_t kGroups = 4096;
constexpr int kWarmup = 3;
constexpr int kReps = 20;

struct Run {
  double ns_per_group = 0.0;
  double allocs_per_launch = 0.0;
  std::vector<double> launch_ns;  ///< per-rep samples for BENCH_launch.json
};

template <typename LaunchFn>
Run time_launches(LaunchFn&& launch) {
  for (int i = 0; i < kWarmup; ++i) launch();
  Run r;
  r.launch_ns.reserve(kReps);
  // lint: relaxed-ok(benchmark counter read)
  const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
  const std::uint64_t t0 = scibench::now_ns();
  for (int i = 0; i < kReps; ++i) {
    const std::uint64_t s0 = scibench::now_ns();
    launch();
    r.launch_ns.push_back(static_cast<double>(scibench::now_ns() - s0));
  }
  const std::uint64_t t1 = scibench::now_ns();
  // lint: relaxed-ok(benchmark counter read)
  const std::uint64_t a1 = g_allocs.load(std::memory_order_relaxed);
  r.ns_per_group = static_cast<double>(t1 - t0) /
                   (static_cast<double>(kReps) * kGroups);
  r.allocs_per_launch =
      static_cast<double>(a1 - a0) / static_cast<double>(kReps);
  return r;
}

struct PathResult {
  Run seed_run;
  Run ws_run;
  [[nodiscard]] double speedup() const {
    return seed_run.ns_per_group / ws_run.ns_per_group;
  }
  [[nodiscard]] double ws_allocs_per_group() const {
    return ws_run.allocs_per_launch / kGroups;
  }
};

PathResult measure_path(seed::ThreadPool& seed_pool, const xcl::Kernel& k,
                        const xcl::Device& device, std::size_t local) {
  const xcl::NDRange range(kGroups * local, local);
  PathResult r;
  r.seed_run = time_launches(
      [&] { seed::execute_ndrange(seed_pool, k, range, device); });
  r.ws_run =
      time_launches([&] { xcl::execute_ndrange(k, range, device); });
  return r;
}

void report(const char* path, std::size_t local, const PathResult& r) {
  std::printf(
      "%-5s x%-2zu  seed %9.1f ns/group  %8.1f allocs/launch  |  ws %8.1f "
      "ns/group  %6.2f allocs/launch  |  %6.2fx\n",
      path, local, r.seed_run.ns_per_group, r.seed_run.allocs_per_launch,
      r.ws_run.ns_per_group, r.ws_run.allocs_per_launch, r.speedup());
}

}  // namespace

int main() {
  xcl::Device& device = sim::testbed_device("i7-6700K");

  xcl::Kernel empty_loop("empty", [](xcl::WorkItem&) {});
  xcl::Kernel empty_fiber("empty_barrier", [](xcl::WorkItem& it) {
    it.barrier();
  });
  empty_fiber.uses_barriers();

  std::printf(
      "launch overhead, empty kernel, %zu groups "
      "(%u worker(s) + caller); x1 isolates per-group dispatch\n",
      kGroups, xcl::ThreadPool::global().size());

  seed::ThreadPool seed_pool;

  const PathResult loop1 = measure_path(seed_pool, empty_loop, device, 1);
  report("loop", 1, loop1);
  const PathResult loop16 = measure_path(seed_pool, empty_loop, device, 16);
  report("loop", 16, loop16);
  const PathResult fiber1 = measure_path(seed_pool, empty_fiber, device, 1);
  report("fiber", 1, fiber1);
  const PathResult fiber16 =
      measure_path(seed_pool, empty_fiber, device, 16);
  report("fiber", 16, fiber16);

  const double worst_allocs =
      std::max({loop1.ws_allocs_per_group(), loop16.ws_allocs_per_group(),
                fiber1.ws_allocs_per_group(),
                fiber16.ws_allocs_per_group()});
  std::printf(
      "\nsteady-state allocations per group (worst config): %.4f\n",
      worst_allocs);
  std::printf(
      "per-group dispatch-overhead reduction: loop %.2fx, fiber %.2fx "
      "(target >= 5x)\n",
      loop1.speedup(), fiber1.speedup());

  eod::bench::BenchReport json("launch");
  json.config("device", device.info().name);
  json.config("groups", static_cast<double>(kGroups));
  json.config("reps", static_cast<double>(kReps));
  json.metric("seed_loop_x1", loop1.seed_run.launch_ns);
  json.metric("ws_loop_x1", loop1.ws_run.launch_ns);
  json.metric("seed_fiber_x1", fiber1.seed_run.launch_ns);
  json.metric("ws_fiber_x1", fiber1.ws_run.launch_ns);
  json.value("loop_x1_speedup", loop1.speedup());
  json.value("fiber_x1_speedup", fiber1.speedup());
  json.value("ws_allocs_per_group_worst", worst_allocs);
  json.speedup(loop1.speedup());
  if (!json.write()) std::printf("warning: BENCH_launch.json not written\n");

  const bool ok = loop1.speedup() >= 5.0 && fiber1.speedup() >= 5.0 &&
                  worst_allocs < 0.01;
  std::printf("%s\n", ok ? "PASS: >=5x with zero per-group heap allocation"
                         : "FAIL: target not met");
  return ok ? 0 : 1;
}
