// Ablation of the paper's >= 2 s measurement-loop floor (§2: "to ensure
// that sampling of execution time and performance counters was not
// significantly affected by operating system noise").
//
// Sweeps the loop floor from 10 ms to 5 s on a low-clocked device (K20m,
// the noisiest in the testbed) and prints the resulting coefficient of
// variation: short loops leave the full per-run jitter in the samples;
// the 2 s floor drives CoV down to the run-level residual.
#include <iomanip>
#include <iostream>

#include "dwarfs/registry.hpp"
#include "harness/runner.hpp"
#include "sim/testbed.hpp"

int main() {
  using namespace eod;
  using namespace eod::harness;

  std::cout << "CoV of 50 kernel-time samples vs measurement-loop floor "
               "(csr medium)\n";
  std::cout << std::left << std::setw(14) << "loop floor" << std::setw(18)
            << "device" << std::setw(10) << "loops" << "CoV\n";

  int failures = 0;
  for (const char* device : {"K20m", "i7-6700K"}) {
    double prev_cov = 1e9;
    for (const double floor_s : {0.01, 0.1, 0.5, 2.0, 5.0}) {
      auto dwarf = dwarfs::create_dwarf("csr");
      MeasureOptions opts;
      opts.functional = false;
      opts.min_loop_seconds = floor_s;
      const Measurement m =
          measure(*dwarf, dwarfs::ProblemSize::kMedium,
                  sim::testbed_device(device), opts);
      const double cov = m.time_summary().cov();
      std::cout << std::left << std::setw(14) << (std::to_string(floor_s) +
                                                  " s")
                << std::setw(18) << device << std::setw(10)
                << m.loop_iterations << std::setprecision(4) << cov << '\n';
      // CoV must be non-increasing in the loop floor (within noise).
      if (cov > prev_cov * 1.25) ++failures;
      prev_cov = cov;
    }
    std::cout << '\n';
  }
  std::cout << (failures == 0
                    ? "longer loops monotonically stabilise the samples; "
                      "the paper's 2 s floor sits at the knee\n"
                    : "UNEXPECTED: CoV rose with a longer loop\n");
  return failures == 0 ? 0 : 1;
}
