// Kernel-tier dispatch microbench (DESIGN.md §9): the same two kernels --
// one memory-bound (saxpy over a float stream), one compute-bound (a
// 64-deep dependent FMA chain per item) -- executed through each of the
// three tiers the executor offers:
//
//   fiber  the kernel declares barriers, every group runs as a fiber set
//   loop   the per-item reference path (--dispatch=item)
//   span   one RangeKernelRef call per work-group over [begin, end)
//
// The quantity reported is work-items/sec.  On the memory-bound kernel the
// per-item tiers pay a std::function call plus a WorkItem construction per
// element while the span tier runs a restrict-qualified vector loop, so
// the gap is the dispatch overhead the span tier exists to remove
// (acceptance target: >= 5x span vs loop).  On the compute-bound kernel
// real work dominates and the tiers converge -- the control that shows the
// span win is overhead elimination, not different arithmetic.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "scibench/timer.hpp"
#include "sim/testbed.hpp"
#include "xcl/executor.hpp"
#include "xcl/kernel.hpp"
#include "xcl/simd.hpp"

namespace {

using namespace eod;

constexpr std::size_t kLocal = 256;
// The fiber tier suspends/resumes a ucontext per item; it gets a smaller
// grid so the benchmark stays quick, and the items/sec normalization keeps
// the tiers comparable.
constexpr std::size_t kMemItems = std::size_t{1} << 21;
constexpr std::size_t kComputeItems = std::size_t{1} << 18;
constexpr std::size_t kFiberItems = std::size_t{1} << 15;
constexpr int kWarmup = 2;
constexpr int kReps = 7;
constexpr int kFmaDepth = 64;

struct ScopedDispatchMode {
  explicit ScopedDispatchMode(xcl::DispatchMode m) {
    xcl::set_dispatch_mode(m);
  }
  ~ScopedDispatchMode() { xcl::set_dispatch_mode(prev); }
  xcl::DispatchMode prev = xcl::dispatch_mode();
};

// Best rep, not the mean: the container shares one core, so any rep can
// absorb an unrelated scheduling bubble and the mean under-reports both
// tiers by different amounts; the fastest rep is the uncontended rate.
// Raw per-rep samples are also kept for the BENCH_kernels.json percentiles.
template <typename LaunchFn>
double mitems_per_second(std::size_t items, LaunchFn&& launch,
                         std::vector<double>* samples_ns = nullptr) {
  for (int i = 0; i < kWarmup; ++i) launch();
  std::uint64_t best = ~std::uint64_t{0};
  for (int i = 0; i < kReps; ++i) {
    const std::uint64_t t0 = scibench::now_ns();
    launch();
    const std::uint64_t t1 = scibench::now_ns();
    best = std::min(best, t1 - t0);
    if (samples_ns != nullptr) {
      samples_ns->push_back(static_cast<double>(t1 - t0));
    }
  }
  return static_cast<double>(items) * 1e3 / static_cast<double>(best);
}

struct KernelSet {
  xcl::Kernel plain;  ///< per-item body + span body (loop/span tiers)
  xcl::Kernel fiber;  ///< same per-item body behind a barrier (fiber tier)
};

// y[i] = a * x[i] + y[i]: one multiply-add per 8 streamed bytes.
KernelSet memory_bound(const float* x, float* y) {
  constexpr float a = 1.25f;
  auto body = [=](xcl::WorkItem& it) {
    const std::size_t i = it.global_id(0);
    y[i] = a * x[i] + y[i];
  };
  KernelSet set{xcl::Kernel("saxpy", body),
                xcl::Kernel("saxpy_barrier", [=](xcl::WorkItem& it) {
                  it.barrier();
                  body(it);
                })};
  set.fiber.uses_barriers();
  set.plain.span([=](std::size_t begin, std::size_t end) {
    const float* EOD_RESTRICT xp = x;
    float* EOD_RESTRICT yp = y;
    for (std::size_t i = begin; i < end; ++i) yp[i] = a * xp[i] + yp[i];
  });
  set.plain.simd([=](std::size_t begin, std::size_t end) {
    namespace sv = eod::xcl::simd;
    constexpr std::size_t W = sv::kLanes;
    const float* EOD_RESTRICT xp = x;
    float* EOD_RESTRICT yp = y;
    const sv::vfloat av = sv::vbroadcast(a);
    std::size_t i = begin;
    for (; i + W <= end; i += W) {
      sv::vstore(yp + i, av * sv::vload(xp + i) + sv::vload(yp + i));
    }
    for (; i < end; ++i) yp[i] = a * xp[i] + yp[i];
  });
  return set;
}

// A dependent 64-FMA chain per item: arithmetic latency dominates and the
// dispatch tiers should converge.
KernelSet compute_bound(const float* x, float* y) {
  auto chain = [](float v) {
    for (int j = 0; j < kFmaDepth; ++j) v = v * 1.000001f + 0.5f;
    return v;
  };
  auto body = [=](xcl::WorkItem& it) {
    const std::size_t i = it.global_id(0);
    y[i] = chain(x[i]);
  };
  KernelSet set{xcl::Kernel("fma_chain", body),
                xcl::Kernel("fma_chain_barrier", [=](xcl::WorkItem& it) {
                  it.barrier();
                  body(it);
                })};
  set.fiber.uses_barriers();
  set.plain.span([=](std::size_t begin, std::size_t end) {
    const float* EOD_RESTRICT xp = x;
    float* EOD_RESTRICT yp = y;
    for (std::size_t i = begin; i < end; ++i) yp[i] = chain(xp[i]);
  });
  // Explicit vectors break the per-item latency chain across lanes: each
  // lane still runs its own dependent 64-FMA chain, but W of them advance
  // per instruction -- unlike the memory-bound kernel, the simd win here is
  // arithmetic throughput, not dispatch overhead.
  set.plain.simd([=](std::size_t begin, std::size_t end) {
    namespace sv = eod::xcl::simd;
    constexpr std::size_t W = sv::kLanes;
    const float* EOD_RESTRICT xp = x;
    float* EOD_RESTRICT yp = y;
    const sv::vfloat m = sv::vbroadcast(1.000001f);
    const sv::vfloat c = sv::vbroadcast(0.5f);
    std::size_t i = begin;
    for (; i + W <= end; i += W) {
      sv::vfloat v = sv::vload(xp + i);
      for (int j = 0; j < kFmaDepth; ++j) v = v * m + c;
      sv::vstore(yp + i, v);
    }
    for (; i < end; ++i) yp[i] = chain(xp[i]);
  });
  return set;
}

struct TierRates {
  double fiber = 0.0;
  double loop = 0.0;
  double span = 0.0;
  double simd = 0.0;
  std::vector<double> fiber_ns;
  std::vector<double> loop_ns;
  std::vector<double> span_ns;
  std::vector<double> simd_ns;
};

TierRates measure(const KernelSet& set, const xcl::Device& device) {
  TierRates r;
  {
    // Fibers engage whenever the kernel declares barriers; the override
    // pins the per-item path so a span body (none here) can't interfere.
    ScopedDispatchMode mode(xcl::DispatchMode::kItem);
    const xcl::NDRange range(kFiberItems, kLocal);
    r.fiber = mitems_per_second(
        kFiberItems, [&] { xcl::execute_ndrange(set.fiber, range, device); },
        &r.fiber_ns);
  }
  const xcl::NDRange range(kMemItems, kLocal);
  {
    ScopedDispatchMode mode(xcl::DispatchMode::kItem);
    r.loop = mitems_per_second(
        kMemItems, [&] { xcl::execute_ndrange(set.plain, range, device); },
        &r.loop_ns);
  }
  {
    ScopedDispatchMode mode(xcl::DispatchMode::kSpan);
    r.span = mitems_per_second(
        kMemItems, [&] { xcl::execute_ndrange(set.plain, range, device); },
        &r.span_ns);
  }
  {
    ScopedDispatchMode mode(xcl::DispatchMode::kSimd);
    r.simd = mitems_per_second(
        kMemItems, [&] { xcl::execute_ndrange(set.plain, range, device); },
        &r.simd_ns);
  }
  return r;
}

void report(const char* name, const TierRates& r) {
  std::printf(
      "%-14s fiber %8.1f Mitems/s   loop %8.1f Mitems/s   span %8.1f "
      "Mitems/s   simd %8.1f Mitems/s   span/loop %6.2fx   simd/span "
      "%6.2fx\n",
      name, r.fiber, r.loop, r.span, r.simd, r.span / r.loop,
      r.simd / r.span);
}

}  // namespace

int main() {
  xcl::Device& device = sim::testbed_device("i7-6700K");

  std::vector<float> x(kMemItems, 0.5f);
  std::vector<float> y(kMemItems, 0.25f);

  std::printf("kernel-tier dispatch throughput, %zu-item groups\n", kLocal);

  const KernelSet mem = memory_bound(x.data(), y.data());
  const TierRates mem_rates = measure(mem, device);
  report("memory-bound", mem_rates);

  const KernelSet fma = compute_bound(x.data(), y.data());
  TierRates fma_rates;
  {
    // Compute-bound grids are smaller; rebuild the rates with the right
    // normalization by timing over kComputeItems explicitly.
    ScopedDispatchMode mode(xcl::DispatchMode::kItem);
    const xcl::NDRange fiber_range(kFiberItems, kLocal);
    fma_rates.fiber = mitems_per_second(
        kFiberItems,
        [&] { xcl::execute_ndrange(fma.fiber, fiber_range, device); },
        &fma_rates.fiber_ns);
    const xcl::NDRange range(kComputeItems, kLocal);
    fma_rates.loop = mitems_per_second(
        kComputeItems, [&] { xcl::execute_ndrange(fma.plain, range, device); },
        &fma_rates.loop_ns);
  }
  {
    ScopedDispatchMode mode(xcl::DispatchMode::kSpan);
    const xcl::NDRange range(kComputeItems, kLocal);
    fma_rates.span = mitems_per_second(
        kComputeItems, [&] { xcl::execute_ndrange(fma.plain, range, device); },
        &fma_rates.span_ns);
  }
  {
    ScopedDispatchMode mode(xcl::DispatchMode::kSimd);
    const xcl::NDRange range(kComputeItems, kLocal);
    fma_rates.simd = mitems_per_second(
        kComputeItems, [&] { xcl::execute_ndrange(fma.plain, range, device); },
        &fma_rates.simd_ns);
  }
  report("compute-bound", fma_rates);

  const double target = mem_rates.span / mem_rates.loop;
  std::printf(
      "\nmemory-bound span/loop: %.2fx (target >= 5x); compute-bound "
      "span/loop: %.2fx (expected ~1x: real work dominates)\n",
      target, fma_rates.span / fma_rates.loop);

  bench::BenchReport json("kernels");
  json.config("device", device.info().name);
  json.config("local", static_cast<double>(kLocal));
  json.config("mem_items", static_cast<double>(kMemItems));
  json.config("compute_items", static_cast<double>(kComputeItems));
  json.config("simd_lanes", static_cast<double>(xcl::simd::kLanes));
  json.metric("mem_fiber", mem_rates.fiber_ns);
  json.metric("mem_loop", mem_rates.loop_ns);
  json.metric("mem_span", mem_rates.span_ns);
  json.metric("mem_simd", mem_rates.simd_ns);
  json.metric("fma_fiber", fma_rates.fiber_ns);
  json.metric("fma_loop", fma_rates.loop_ns);
  json.metric("fma_span", fma_rates.span_ns);
  json.metric("fma_simd", fma_rates.simd_ns);
  json.value("mem_span_mitems_per_s", mem_rates.span);
  json.value("mem_loop_mitems_per_s", mem_rates.loop);
  json.value("mem_simd_mitems_per_s", mem_rates.simd);
  json.value("fma_span_over_loop", fma_rates.span / fma_rates.loop);
  json.value("fma_simd_over_span", fma_rates.simd / fma_rates.span);
  json.value("mem_simd_over_span", mem_rates.simd / mem_rates.span);
  json.speedup(target);
  if (!json.write()) std::printf("warning: BENCH_kernels.json not written\n");

  const bool ok = target >= 5.0;
  std::printf("%s\n", ok ? "PASS: span tier removes per-item dispatch cost"
                         : "FAIL: target not met");
  return ok ? 0 : 1;
}
