// Regenerates Table 2: the workload scale parameter Phi for every
// benchmark and size class, with each footprint verified against the §4.4
// methodology (tiny -> L1, small -> L2, medium -> L3, large out of cache on
// the Skylake reference hierarchy), and demonstrates the k-means sizing
// walkthrough of §4.4.1.
#include <iomanip>
#include <iostream>

#include "dwarfs/kmeans/kmeans.hpp"
#include "harness/problem_size.hpp"
#include "harness/report.hpp"
#include "sim/device_spec.hpp"

int main() {
  using namespace eod;
  using namespace eod::harness;
  using dwarfs::ProblemSize;

  print_table2(std::cout);

  const SizeClassBounds bounds =
      SizeClassBounds::from_device(sim::skylake());
  std::cout << "\nSize-class verification against the Skylake hierarchy "
               "(L1 32 KiB / L2 256 KiB / L3 8192 KiB):\n";
  int mismatches = 0;
  for (const Table2Row& row : table2()) {
    for (std::size_t i = 0; i < row.sizes.size(); ++i) {
      const bool fits =
          footprint_fits_class(bounds, row.sizes[i], row.footprint[i]);
      // The paper's own exceptions: gem/nqueens/hmm cannot scale to the
      // hierarchy (§4.4.4); crc's 4 MiB large input stays inside L3; the
      // published kmeans/csr large parameters stop short of 4x L3.
      const bool exception =
          row.benchmark == "gem" || row.benchmark == "nqueens" ||
          row.benchmark == "hmm" ||
          (row.sizes[i] == ProblemSize::kLarge &&
           (row.benchmark == "crc" || row.benchmark == "kmeans" ||
            row.benchmark == "csr"));
      std::cout << "  " << std::left << std::setw(9) << row.benchmark
                << std::setw(8) << to_string(row.sizes[i])
                << (fits ? "fits intended level"
                         : (exception ? "documented exception (§4.4.4)"
                                      : "MISMATCH"))
                << '\n';
      if (!fits && !exception) ++mismatches;
    }
  }

  std::cout << "\n§4.4.1 k-means walkthrough (Equation 1):\n";
  std::cout << "  256 points x 30 features -> "
            << dwarfs::KMeans::working_set_bytes(256, 30, 5) / 1024.0
            << " KiB (paper: 31.5 KiB, just under the 32 KiB L1)\n";
  for (const ProblemSize s :
       {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
        ProblemSize::kLarge}) {
    const auto p = dwarfs::KMeans::params_for(s);
    std::cout << "  " << to_string(s) << ": Pn=" << p.points << " -> "
              << dwarfs::KMeans::working_set_bytes(p.points, p.features,
                                                   p.clusters) /
                     1024.0
              << " KiB\n";
  }
  return mismatches == 0 ? 0 : 1;
}
