// google-benchmark microbenches of the substrate itself: runtime dispatch,
// fiber-based barriers vs plain loops (the DESIGN.md §5 fiber ablation),
// cache-simulator throughput, and the measurement library's statistics.
#include <benchmark/benchmark.h>

#include <vector>

#include "dwarfs/crc/crc.hpp"
#include "scibench/stats.hpp"
#include "sim/cache_sim.hpp"
#include "sim/device_spec.hpp"
#include "sim/testbed.hpp"
#include "xcl/fiber.hpp"
#include "xcl/kernel.hpp"
#include "xcl/queue.hpp"

namespace {

using namespace eod;

// ---- runtime dispatch ----

void BM_QueueEnqueueModelOnly(benchmark::State& state) {
  xcl::Context ctx(sim::testbed_device("GTX 1080"));
  xcl::Queue q(ctx);
  q.set_functional(false);
  xcl::Kernel k("noop", [](xcl::WorkItem&) {});
  xcl::WorkloadProfile p;
  p.flops = 1e6;
  p.bytes_read = 1e6;
  p.working_set_bytes = 1e6;
  for (auto _ : state) {
    q.enqueue(k, xcl::NDRange(1024, 64), p);
    if (q.events().size() > 4096) q.clear_events();
  }
}
BENCHMARK(BM_QueueEnqueueModelOnly);

void BM_NDRangeFunctionalDispatch(benchmark::State& state) {
  const auto items = static_cast<std::size_t>(state.range(0));
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  std::vector<int> sink(items, 0);
  int* data = sink.data();
  xcl::Kernel k("touch", [data](xcl::WorkItem& it) {
    data[it.global_id(0)] += 1;
  });
  xcl::WorkloadProfile p;
  for (auto _ : state) {
    q.enqueue(k, xcl::NDRange(items, 64), p);
    q.clear_events();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(items));
}
BENCHMARK(BM_NDRangeFunctionalDispatch)->Arg(1024)->Arg(65536);

// ---- fibers vs loop: the work-group execution ablation ----

void BM_GroupExecutionLoop(benchmark::State& state) {
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  std::vector<float> sink(4096, 0.0f);
  float* data = sink.data();
  xcl::Kernel k("loop_mode", [data](xcl::WorkItem& it) {
    data[it.global_id(0)] += 1.0f;
  });
  xcl::WorkloadProfile p;
  for (auto _ : state) {
    q.enqueue(k, xcl::NDRange(4096, 64), p);
    q.clear_events();
  }
}
BENCHMARK(BM_GroupExecutionLoop);

void BM_GroupExecutionFibers(benchmark::State& state) {
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  std::vector<float> sink(4096, 0.0f);
  float* data = sink.data();
  xcl::Kernel k("fiber_mode", [data](xcl::WorkItem& it) {
    data[it.global_id(0)] += 1.0f;
    it.barrier();  // forces one fiber yield per work-item
    data[it.global_id(0)] += 1.0f;
  });
  k.uses_barriers();
  xcl::WorkloadProfile p;
  for (auto _ : state) {
    q.enqueue(k, xcl::NDRange(4096, 64), p);
    q.clear_events();
  }
}
BENCHMARK(BM_GroupExecutionFibers);

void BM_FiberSwitch(benchmark::State& state) {
  // Cost of one suspend/resume round-trip.
  for (auto _ : state) {
    state.PauseTiming();
    xcl::Fiber f([] {
      for (int i = 0; i < 1000; ++i) xcl::Fiber::yield_current();
    });
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) f.resume();
    state.PauseTiming();
    f.resume();  // let it finish
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FiberSwitch);

// ---- cache simulator ----

void BM_CacheHierarchyAccess(benchmark::State& state) {
  sim::CacheHierarchy h(sim::skylake());
  std::uint64_t addr = 0;
  for (auto _ : state) {
    h.access(addr, 4, false);
    addr = (addr + 64) & 0xFFFFFF;  // 16 MiB streaming loop
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHierarchyAccess);

void BM_CacheReplayCrcTiny(benchmark::State& state) {
  dwarfs::Crc crc;
  crc.setup(dwarfs::ProblemSize::kTiny);
  const sim::MemoryTrace trace = crc.memory_trace();
  for (auto _ : state) {
    sim::CacheHierarchy h(sim::skylake());
    h.replay(trace);
    benchmark::DoNotOptimize(h.counters().l1_dcm);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_CacheReplayCrcTiny);

// ---- measurement library ----

void BM_Summarize50(benchmark::State& state) {
  std::vector<double> xs(50);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = 1.0 + 0.01 * static_cast<double>(i % 7);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scibench::summarize(xs).stddev);
  }
}
BENCHMARK(BM_Summarize50);

void BM_WelchTTest(benchmark::State& state) {
  std::vector<double> a(50), b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    a[i] = 10.0 + 0.05 * static_cast<double>(i % 5);
    b[i] = 10.2 + 0.05 * static_cast<double>(i % 5);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scibench::welch_t_test(a, b).p_value);
  }
}
BENCHMARK(BM_WelchTTest);

void BM_Crc32Reference(benchmark::State& state) {
  std::vector<std::uint8_t> data(65536);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 131);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dwarfs::Crc::crc32_reference(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_Crc32Reference);

}  // namespace

BENCHMARK_MAIN();
