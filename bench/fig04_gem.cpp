// Regenerates Figure 4a of the paper: gem kernel execution times.
#include "figure_common.hpp"

int main(int argc, const char** argv) {
  using eod::dwarfs::ProblemSize;
  eod::bench::FigureSpec spec;
  spec.figure = "Figure 4a";
  spec.benchmark = "gem";
  spec.sizes = {ProblemSize::kTiny};
  spec.include_knl = false;
  return eod::bench::run_figure(spec, argc, argv);
}
