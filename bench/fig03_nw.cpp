// Regenerates Figure 3b of the paper: nw kernel execution times.
#include "figure_common.hpp"

int main(int argc, const char** argv) {
  using eod::dwarfs::ProblemSize;
  eod::bench::FigureSpec spec;
  spec.figure = "Figure 3b";
  spec.benchmark = "nw";
  spec.sizes = {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium, ProblemSize::kLarge};
  spec.include_knl = false;
  return eod::bench::run_figure(spec, argc, argv);
}
