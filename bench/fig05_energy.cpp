// Regenerates Figure 5: kernel execution energy for the large problem size
// on the Intel Skylake i7-6700K (RAPL) and the Nvidia GTX 1080 (NVML).
//
// §5.2: "All the benchmarks use more energy on the CPU, with the exception
// of crc"; the log panel (5b) exists because several GPU energies are
// below 1 J.
#include <iostream>

#include "dwarfs/registry.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "sim/testbed.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  using namespace eod::harness;

  CliOptions cli;
  try {
    cli = parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << usage(argv[0]) << '\n';
    return 2;
  }
  MeasureOptions opts;
  opts.samples = cli.samples;
  opts.functional = cli.validate;
  opts.validate = cli.validate;

  // The eight benchmarks of Fig. 5, large problem size.
  const std::vector<std::string> benchmarks = {
      "kmeans", "lud", "csr", "fft", "dwt", "gem", "srad", "crc"};
  const char* devices[] = {"i7-6700K", "GTX 1080"};

  std::cout << "Figure 5: kernel execution energy (large problem size) on "
               "Core i7-6700K (RAPL) and Nvidia GTX 1080 (NVML)\n\n";
  std::vector<Measurement> all;
  for (const std::string& name : benchmarks) {
    auto dwarf = dwarfs::create_dwarf(name);
    MeasureOptions per = opts;
    for (const char* dev : devices) {
      all.push_back(measure(*dwarf, dwarfs::ProblemSize::kLarge,
                            sim::testbed_device(dev), per));
      per.functional = false;  // model-only on the second device
      per.validate = false;
      per.reuse_setup = true;
    }
  }
  print_energy_panel(std::cout, "Fig 5a/5b: energy (J), large", all);

  // The §5.2 headline claim, checked programmatically.
  std::cout << "\nCPU-vs-GPU energy ratio per benchmark (paper: >1 "
               "everywhere except crc):\n";
  int bad = 0;
  for (std::size_t i = 0; i < all.size(); i += 2) {
    const double cpu_j = all[i].energy_summary().median;
    const double gpu_j = all[i + 1].energy_summary().median;
    const double ratio = cpu_j / gpu_j;
    const bool expect_cpu_higher = all[i].benchmark != "crc";
    const bool ok = expect_cpu_higher ? ratio > 1.0 : ratio < 1.0;
    std::cout << "  " << all[i].benchmark << ": " << ratio
              << (ok ? "  [matches paper]" : "  [SHAPE MISMATCH]") << '\n';
    if (!ok) ++bad;
  }
  return bad == 0 ? 0 : 1;
}
