// DESIGN.md §10 CI gate: every dwarf (benchmarks + extensions) runs at
// tiny under --dispatch=checked with validation on.  A correct suite comes
// back with zero findings; any race, out-of-bounds access, uninitialized
// read, or barrier misuse fails the build.  Also reports the host-side
// overhead of the checked tier against the per-item reference path, the
// number EXPERIMENTS.md quotes for checker cost.
#include <chrono>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "dwarfs/registry.hpp"
#include "harness/runner.hpp"
#include "sim/testbed.hpp"
#include "xcl/check/report.hpp"

int main(int argc, char** argv) {
  using namespace eod;
  using Clock = std::chrono::steady_clock;

  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verbose") == 0) verbose = true;
  }

  std::vector<std::string> names = dwarfs::benchmark_names();
  for (const std::string& ext : dwarfs::extension_names()) {
    names.push_back(ext);
  }

  std::cout << "shadow-memory check, all dwarfs at tiny "
               "(--dispatch=checked)\n";
  std::cout << std::left << std::setw(10) << "bench" << std::setw(10)
            << "validate" << std::setw(8) << "errors" << std::setw(10)
            << "warnings" << std::setw(12) << "item_ms" << std::setw(12)
            << "checked_ms" << std::setw(10) << "overhead" << '\n';

  int failures = 0;
  for (const std::string& name : names) {
    auto dwarf = dwarfs::create_dwarf(name);
    dwarf->setup(dwarfs::ProblemSize::kTiny);  // outside both timings

    // Reference pass: per-item tier, same functional work, no shadow.
    harness::MeasureOptions item_opts;
    item_opts.functional = true;
    item_opts.validate = false;
    item_opts.samples = 1;
    item_opts.reuse_setup = true;
    item_opts.dispatch = xcl::DispatchMode::kItem;
    const auto item_t0 = Clock::now();
    (void)harness::measure(*dwarf, dwarfs::ProblemSize::kTiny,
                           sim::testbed_device("i7-6700K"), item_opts);
    const double item_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - item_t0)
            .count();

    harness::MeasureOptions opts;
    opts.functional = true;
    opts.validate = true;
    opts.samples = 1;
    opts.reuse_setup = true;  // same dataset as the reference pass
    opts.dispatch = xcl::DispatchMode::kChecked;
    const auto t0 = Clock::now();
    const harness::Measurement m = harness::measure(
        *dwarf, dwarfs::ProblemSize::kTiny,
        sim::testbed_device("i7-6700K"), opts);
    const double checked_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();

    const bool ok = m.validation.ok && m.check_performed &&
                    m.check_report.clean();
    if (!ok) ++failures;

    std::cout << std::left << std::setw(10) << name << std::setw(10)
              << (m.validation.ok ? "PASS" : "FAIL") << std::setw(8)
              << m.check_report.error_count() << std::setw(10)
              << m.check_report.warning_count() << std::fixed
              << std::setprecision(2) << std::setw(12) << item_ms
              << std::setw(12) << checked_ms << std::setprecision(1);
    if (item_ms > 0.0) {
      std::cout << checked_ms / item_ms << 'x';
    } else {
      std::cout << '-';
    }
    std::cout << '\n';
    std::cout.unsetf(std::ios::fixed);

    if (!m.check_report.clean() || verbose) {
      std::cout << m.check_report.to_text();
    }
    if (!m.validation.ok) {
      std::cout << "  validation: " << m.validation.detail << '\n';
    }
  }

  if (failures > 0) {
    std::cout << "\ncheck_report: " << failures
              << " dwarf(s) with findings or validation failures\n";
    return 1;
  }
  std::cout << "\ncheck_report: all dwarfs clean under the checked tier\n";
  return 0;
}
