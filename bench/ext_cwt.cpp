// Device-comparison panel for the cwt extension benchmark (the continuous
// wavelet transform the paper planned to add, §2), in the same format as
// the Figure 2 panels.
#include "figure_common.hpp"

int main(int argc, const char** argv) {
  using eod::dwarfs::ProblemSize;
  eod::bench::FigureSpec spec;
  spec.figure = "Extension: cwt";
  spec.benchmark = "cwt";
  spec.sizes = {ProblemSize::kTiny, ProblemSize::kSmall,
                ProblemSize::kMedium, ProblemSize::kLarge};
  spec.include_knl = false;
  return eod::bench::run_figure(spec, argc, argv);
}
