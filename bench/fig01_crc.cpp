// Regenerates Figure 1 of the paper: crc kernel execution times.
#include "figure_common.hpp"

int main(int argc, const char** argv) {
  using eod::dwarfs::ProblemSize;
  eod::bench::FigureSpec spec;
  spec.figure = "Figure 1";
  spec.benchmark = "crc";
  spec.sizes = {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium, ProblemSize::kLarge};
  spec.include_knl = true;
  return eod::bench::run_figure(spec, argc, argv);
}
