// AIWC-style characterization of every kernel in the suite (§7: "Each
// OpenCL kernel presented in this paper has been inspected using the
// Architecture Independent Workload Characterization (AIWC) ... and will
// be published in the future").  Prints the compute / parallelism /
// memory / control metric table per benchmark at the small problem size,
// plus memory-entropy metrics for the benchmarks that expose traces.
#include <iostream>

#include "aiwc/aiwc.hpp"
#include "dwarfs/registry.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  const dwarfs::ProblemSize size =
      (argc > 1 && std::string(argv[1]) == "--tiny")
          ? dwarfs::ProblemSize::kTiny
          : dwarfs::ProblemSize::kSmall;

  for (const std::string& name : dwarfs::benchmark_names()) {
    auto dwarf = dwarfs::create_dwarf(name);
    const auto sizes = dwarf->supported_sizes();
    const dwarfs::ProblemSize use =
        std::find(sizes.begin(), sizes.end(), size) != sizes.end()
            ? size
            : sizes.front();
    const auto kernels = aiwc::characterize(*dwarf, use);
    aiwc::print_characteristics(std::cout, name + " (" +
                                               std::string(to_string(use)) +
                                               ")",
                                kernels);

    dwarf->setup(use);
    const aiwc::TraceEntropy e = aiwc::trace_entropy(*dwarf);
    if (e.unique_addresses > 0.0) {
      std::cout << "  memory entropy " << e.address_entropy_bits
                << " bits over " << e.unique_addresses
                << " unique lines; spatial locality " << e.spatial_locality
                << "; masked-entropy decay:";
      for (const double h : e.masked_entropy_bits) std::cout << ' ' << h;
      std::cout << '\n';
    }
    std::cout << '\n';
  }
  return 0;
}
