// Regenerates Figure 2a of the paper: kmeans kernel execution times.
#include "figure_common.hpp"

int main(int argc, const char** argv) {
  using eod::dwarfs::ProblemSize;
  eod::bench::FigureSpec spec;
  spec.figure = "Figure 2a";
  spec.benchmark = "kmeans";
  spec.sizes = {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium, ProblemSize::kLarge};
  spec.include_knl = false;
  return eod::bench::run_figure(spec, argc, argv);
}
