// Tracing-overhead microbench (DESIGN.md §11): the observability layer's
// cost on the micro_launch workload — empty-kernel 4096-group launches,
// where every nanosecond is dispatch overhead and a traced span per group.
//
// Three configurations of the same launch loop:
//   * disabled A/B — two identical passes with the recorder off.  Their
//     difference is the run-to-run noise floor, and the acceptance gate is
//     that it stays within noise (< 2%-of-mean + 3 sigma of the rep
//     spread): a disabled-path regression would mean the enabled-flag fast
//     path leaks work onto the plain dispatch path.
//   * enabled — recorder on, writing into per-thread rings.  The per-group
//     cost delta is reported for EXPERIMENTS.md, not gated: tracing is
//     opt-in, so its cost only has to be known, not zero.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "obs/trace.hpp"
#include "scibench/timer.hpp"
#include "sim/testbed.hpp"
#include "xcl/executor.hpp"
#include "xcl/kernel.hpp"
#include "xcl/thread_pool.hpp"

namespace {

using namespace eod;

constexpr std::size_t kGroups = 4096;
constexpr int kWarmup = 3;
constexpr int kReps = 30;

struct Run {
  double ns_per_group = 0.0;  ///< mean over reps
  double rep_stddev = 0.0;    ///< per-rep spread, ns/group
};

Run time_launches(const xcl::Kernel& k, const xcl::NDRange& range,
                  const xcl::Device& device) {
  for (int i = 0; i < kWarmup; ++i) xcl::execute_ndrange(k, range, device);
  std::vector<double> reps;
  reps.reserve(kReps);
  for (int i = 0; i < kReps; ++i) {
    const std::uint64_t t0 = scibench::now_ns();
    xcl::execute_ndrange(k, range, device);
    const std::uint64_t t1 = scibench::now_ns();
    reps.push_back(static_cast<double>(t1 - t0) / kGroups);
  }
  Run r;
  for (const double v : reps) r.ns_per_group += v;
  r.ns_per_group /= static_cast<double>(reps.size());
  for (const double v : reps) {
    r.rep_stddev += (v - r.ns_per_group) * (v - r.ns_per_group);
  }
  r.rep_stddev =
      std::sqrt(r.rep_stddev / static_cast<double>(reps.size() - 1));
  return r;
}

}  // namespace

int main() {
  xcl::Device& device = sim::testbed_device("i7-6700K");
  xcl::Kernel empty("empty", [](xcl::WorkItem&) {});
  const xcl::NDRange range(kGroups, 1);

  std::printf(
      "tracing overhead, empty kernel, %zu groups x1 (%u worker(s) + "
      "caller)\n",
      kGroups, xcl::ThreadPool::global().size());

  obs::set_tracing_enabled(false);
  const Run off_a = time_launches(empty, range, device);
  const Run off_b = time_launches(empty, range, device);

  obs::reset_tracing();
  obs::set_tracing_enabled(true);
  const Run on = time_launches(empty, range, device);
  obs::set_tracing_enabled(false);
  const std::uint64_t recorded = obs::trace_events_recorded();
  obs::reset_tracing();

  std::printf("disabled A: %8.1f ns/group (stddev %.1f)\n", off_a.ns_per_group,
              off_a.rep_stddev);
  std::printf("disabled B: %8.1f ns/group (stddev %.1f)\n", off_b.ns_per_group,
              off_b.rep_stddev);
  std::printf("enabled:    %8.1f ns/group (stddev %.1f, %llu events)\n",
              on.ns_per_group, on.rep_stddev,
              static_cast<unsigned long long>(recorded));

  const double mean_off = 0.5 * (off_a.ns_per_group + off_b.ns_per_group);
  const double diff = std::abs(off_a.ns_per_group - off_b.ns_per_group);
  // Noise bound: 2% of the disabled mean plus 3 sigma of the rep-to-rep
  // spread of either pass — identical code on both sides, so anything
  // beyond that is a real (impossible) disabled-path cost.
  const double bound =
      0.02 * mean_off + 3.0 * std::max(off_a.rep_stddev, off_b.rep_stddev);
  const double enabled_cost = on.ns_per_group - mean_off;
  std::printf(
      "\ndisabled A/B delta: %.1f ns/group (noise bound %.1f)\n"
      "enabled tracing cost: %+.1f ns/group (%+.1f%%)\n",
      diff, bound, enabled_cost, 100.0 * enabled_cost / mean_off);

  bench::BenchReport json("obs");
  json.config("device", device.info().name);
  json.config("groups", static_cast<double>(kGroups));
  json.config("reps", static_cast<double>(kReps));
  json.value("disabled_a_ns_per_group", off_a.ns_per_group);
  json.value("disabled_b_ns_per_group", off_b.ns_per_group);
  json.value("enabled_ns_per_group", on.ns_per_group);
  json.value("disabled_ab_delta_ns", diff);
  json.value("noise_bound_ns", bound);
  json.value("enabled_cost_ns_per_group", enabled_cost);
  // No timing speedup to report here; the headline is the enabled/disabled
  // cost ratio so trajectory tooling sees tracing cost drift.
  json.speedup(on.ns_per_group / mean_off);
  if (!json.write()) std::printf("warning: BENCH_obs.json not written\n");

  const bool ok = diff <= bound;
  std::printf("%s\n", ok ? "PASS: disabled-mode tracing is free"
                         : "FAIL: disabled A/B differ beyond noise");
  return ok ? 0 : 1;
}
