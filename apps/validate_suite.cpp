// Suite-wide correctness check -- the paper's curation emphasis ("an
// increased emphasis on correctness of results"): runs every benchmark
// (including extensions) functionally at a chosen size and reports the
// serial-reference comparison for each, plus the footprint-vs-allocator
// check.
//
//   validate_suite [--size tiny|small] [device options]
#include <iomanip>
#include <iostream>

#include "dwarfs/registry.hpp"
#include "harness/cli.hpp"
#include "xcl/queue.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  harness::CliOptions cli;
  try {
    cli = harness::parse_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << harness::usage(argv[0]) << '\n';
    return 2;
  }
  const dwarfs::ProblemSize requested =
      cli.size.value_or(dwarfs::ProblemSize::kTiny);
  xcl::Device& device = cli.resolve_device();

  std::cout << "Validating the suite on " << device.name() << " at "
            << to_string(requested) << "\n\n";
  std::cout << std::left << std::setw(10) << "benchmark" << std::setw(8)
            << "size" << std::setw(12) << "footprint" << std::setw(8)
            << "result" << "detail\n";

  int failures = 0;
  std::vector<std::string> names = dwarfs::benchmark_names();
  for (const auto& ext : dwarfs::extension_names()) names.push_back(ext);

  for (const std::string& name : names) {
    auto dwarf = dwarfs::create_dwarf(name);
    const auto sizes = dwarf->supported_sizes();
    const dwarfs::ProblemSize size =
        std::find(sizes.begin(), sizes.end(), requested) != sizes.end()
            ? requested
            : sizes.front();
    dwarf->setup(size);
    xcl::Context ctx(device);
    xcl::Queue q(ctx);
    dwarf->bind(ctx, q);
    const bool footprint_ok =
        ctx.allocated_bytes() <=
            dwarf->footprint_bytes(size) + dwarf->footprint_bytes(size) / 20 &&
        ctx.allocated_bytes() + 1024 >= dwarf->footprint_bytes(size);
    dwarf->run();
    dwarf->finish();
    const dwarfs::Validation v = dwarf->validate();
    dwarf->unbind();
    if (!v.ok || !footprint_ok) ++failures;
    std::cout << std::left << std::setw(10) << name << std::setw(8)
              << to_string(size) << std::setw(12)
              << (footprint_ok ? "matches" : "MISMATCH") << std::setw(8)
              << (v.ok ? "PASS" : "FAIL") << v.detail << '\n';
  }
  std::cout << '\n'
            << (failures == 0 ? "all benchmarks validate"
                              : "VALIDATION FAILURES PRESENT")
            << '\n';
  return failures == 0 ? 0 : 1;
}
