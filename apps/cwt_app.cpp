// Standalone cwt extension benchmark (the continuous wavelet transform the
// paper planned to add, §2).
//   cwt_app [device options] -- <signal length> [<scales>]
#include "app_common.hpp"
#include "dwarfs/cwt/cwt.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Cwt dwarf;
    const std::size_t n = std::stoul(apps::arg_or(
        a.benchmark_args, 0,
        std::to_string(dwarfs::Cwt::length_for(
            a.cli.size.value_or(dwarfs::ProblemSize::kTiny)))));
    const auto scales = static_cast<unsigned>(std::stoul(
        apps::arg_or(a.benchmark_args, 1,
                     std::to_string(dwarfs::Cwt::kScales))));
    dwarf.configure(n, scales);
    std::cout << "cwt " << n << ' ' << scales << " scales\n";
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: cwt_app [device options] -- <length >= 16> "
                 "[<scales>]\n";
    return 2;
  }
}
