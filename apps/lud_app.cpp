// Standalone lud benchmark (Table 3: lud -s Phi).
//   lud_app [device options] -- -s <matrix dimension>
#include "app_common.hpp"
#include "dwarfs/lud/lud.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Lud dwarf;
    const std::size_t n = std::stoul(apps::flag_value(
        a.benchmark_args, "-s",
        std::to_string(dwarfs::Lud::dim_for(
            a.cli.size.value_or(dwarfs::ProblemSize::kTiny)))));
    dwarf.configure(n);
    std::cout << "lud -s " << n << '\n';
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: lud_app [device options] -- -s <dimension "
                 "(multiple of 16)>\n";
    return 2;
  }
}
