// Standalone lud benchmark (Table 3: lud -s Phi).
//   lud_app [device options] -- -s <matrix dimension>
// With --devices "A,B,..." the factorization is partitioned across several
// simulated devices over the modeled interconnect (DESIGN.md §14).
#include "app_common.hpp"
#include "dwarfs/lud/lud.hpp"
#include "harness/partition.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Lud dwarf;
    const std::size_t n = std::stoul(apps::flag_value(
        a.benchmark_args, "-s",
        std::to_string(dwarfs::Lud::dim_for(
            a.cli.size.value_or(dwarfs::ProblemSize::kTiny)))));
    dwarf.configure(n);
    std::cout << "lud -s " << n << '\n';
    const std::vector<xcl::Device*> devices = a.cli.resolve_devices();
    if (devices.size() > 1) {
      const std::string trace = apps::begin_partitioned_trace(a.cli);
      harness::PartitionOptions popts;
      popts.validate = true;
      popts.dispatch = a.cli.dispatch;
      const harness::PartitionedResult r =
          harness::run_partitioned_lud(dwarf, devices, popts);
      return apps::report_partitioned(dwarf, r, a.cli, trace);
    }
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: lud_app [device options] -- -s <dimension "
                 "(multiple of 16)>\n";
    return 2;
  }
}
