// Standalone nqueens benchmark (Table 3: n-queens Phi).
//   nqueens_app [device options] -- <board size>
#include "app_common.hpp"
#include "dwarfs/nqueens/nqueens.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Nqueens dwarf;
    const auto board = static_cast<unsigned>(std::stoul(
        apps::arg_or(a.benchmark_args, 0,
                     std::to_string(dwarfs::Nqueens::kBoard))));
    const unsigned depth =
        std::min(dwarfs::Nqueens::kDepth, board - 1);
    dwarf.configure(board, depth);
    std::cout << "n-queens " << board << '\n';
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: nqueens_app [device options] -- <board size>\n";
    return 2;
  }
}
