// Standalone kmeans benchmark (Table 3: kmeans -g -f 26 -p Phi).
//   kmeans_app [-p P -d D -t T] [--size S] -- -g -f <features> -p <points>
#include "app_common.hpp"
#include "dwarfs/kmeans/kmeans.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::KMeans dwarf;
    dwarfs::KMeans::Params params = dwarfs::KMeans::params_for(
        a.cli.size.value_or(dwarfs::ProblemSize::kTiny));
    // -g (generate random points) is implied: the suite always generates.
    params.features = static_cast<unsigned>(std::stoul(apps::flag_value(
        a.benchmark_args, "-f", std::to_string(params.features))));
    params.points = std::stoul(apps::flag_value(
        a.benchmark_args, "-p", std::to_string(params.points)));
    dwarf.configure(params);
    std::cout << "kmeans -g -f " << params.features << " -p "
              << params.points << '\n';
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: kmeans_app [device options] -- -g -f <features> "
                 "-p <points>\n";
    return 2;
  }
}
