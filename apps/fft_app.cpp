// Standalone fft benchmark (Table 3: fft Phi).
//   fft_app [device options] -- <length (power of two)>
#include "app_common.hpp"
#include "dwarfs/fft/fft.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Fft dwarf;
    const std::size_t n = std::stoul(apps::arg_or(
        a.benchmark_args, 0,
        std::to_string(dwarfs::Fft::length_for(
            a.cli.size.value_or(dwarfs::ProblemSize::kTiny)))));
    dwarf.configure(n);
    std::cout << "fft " << n << '\n';
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: fft_app [device options] -- <power-of-two "
                 "length>\n";
    return 2;
  }
}
