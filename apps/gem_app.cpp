// Standalone gem benchmark (Table 3: gem Phi 80 1 0; Phi is the molecule).
//   gem_app [device options] -- <molecule|atom count> 80 1 0
#include "app_common.hpp"
#include "dwarfs/gem/gem.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  using dwarfs::ProblemSize;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Gem dwarf;
    const std::string pqr = apps::flag_value(a.benchmark_args, "-i", "");
    if (!pqr.empty()) {
      dwarf.configure_with_molecule(dwarfs::load_pqr(pqr));
      std::cout << "gem -i " << pqr << " 80 1 0\n";
      return apps::run_configured(dwarf, a.cli);
    }
    std::size_t atoms =
        dwarfs::Gem::atoms_for(a.cli.size.value_or(ProblemSize::kTiny));
    std::string label = std::to_string(atoms) + " atoms";
    if (!a.benchmark_args.empty()) {
      const std::string& mol = a.benchmark_args.front();
      bool named = false;
      for (const ProblemSize s :
           {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
            ProblemSize::kLarge}) {
        if (mol == dwarfs::Gem::molecule_for(s)) {
          atoms = dwarfs::Gem::atoms_for(s);
          label = mol;
          named = true;
        }
      }
      if (!named) {
        atoms = std::stoul(mol);
        label = mol + " atoms";
      }
    }
    dwarf.configure(atoms);
    std::cout << "gem " << label << " 80 1 0\n";
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: gem_app [device options] -- "
                 "<4TUT|2D3V|nucleosome|1KX5|atom count|-i file.pqr> 80 1 "
                 "0\n";
    return 2;
  }
}
