// Standalone crc benchmark (Table 3: crc -i 1000 Phi.txt).  The input file
// is generated; pass the size directly.
//   crc_app [device options] -- -i <iterations> <bytes>
#include "app_common.hpp"
#include "dwarfs/crc/crc.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Crc dwarf;
    std::size_t bytes = dwarfs::Crc::buffer_bytes_for(
        a.cli.size.value_or(dwarfs::ProblemSize::kTiny));
    for (std::size_t i = 0; i < a.benchmark_args.size(); ++i) {
      if (a.benchmark_args[i] == "-i") {
        ++i;  // iteration count is handled by the harness's >=2 s loop
        continue;
      }
      bytes = std::stoul(a.benchmark_args[i]);
    }
    dwarf.configure(bytes);
    std::cout << "crc -i 1000 " << bytes << ".txt\n";
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: crc_app [device options] -- -i <iters> <bytes>\n";
    return 2;
  }
}
