// Standalone b_eff interconnect benchmark (effective-bandwidth sweep).
//   beff_app [device options] -- [max message bytes]
// Prints the host-link bandwidth curve (unidirectional write/read and the
// bidirectional echo) for the selected device; with --devices "A,B,..."
// also sweeps the b_eff ring pattern over the modeled peer links
// (DESIGN.md §14).
#include <iomanip>

#include "app_common.hpp"
#include "dwarfs/beff/beff.hpp"
#include "harness/partition.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Beff dwarf;
    const std::size_t max_bytes = std::stoul(apps::arg_or(
        a.benchmark_args, 0,
        std::to_string(dwarfs::Beff::max_message_for(
            a.cli.size.value_or(dwarfs::ProblemSize::kTiny)))));
    dwarf.configure(max_bytes);
    std::cout << "beff " << max_bytes << '\n';
    const int code = apps::run_configured(dwarf, a.cli);

    std::cout << "\nhost-link bandwidth sweep (GB/s):\n"
              << std::left << std::setw(12) << "bytes" << std::setw(10)
              << "write" << std::setw(10) << "read" << "bidir\n";
    for (const dwarfs::BeffPoint& p : dwarf.points()) {
      std::cout << std::left << std::setw(12) << p.bytes << std::setw(10)
                << p.write_gbs << std::setw(10) << p.read_gbs << p.bi_gbs
                << '\n';
    }

    const std::vector<xcl::Device*> devices = a.cli.resolve_devices();
    if (devices.size() > 1) {
      std::cout << "\nring sweep over " << devices.size()
                << " devices (aggregate GB/s):\n"
                << std::left << std::setw(12) << "bytes" << "ring\n";
      for (const harness::RingPoint& p :
           harness::ring_sweep(devices, max_bytes)) {
        std::cout << std::left << std::setw(12) << p.bytes << p.ring_gbs
                  << '\n';
      }
    }
    return code;
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: beff_app [device options] -- <max message bytes "
                 "(power of two >= 1024)>\n";
    return 2;
  }
}
