// Standalone srad benchmark
// (Table 3: srad Phi1 Phi2 0 127 0 127 0.5 1).
//   srad_app [device options] -- <rows> <cols> <y1> <y2> <x1> <x2>
//            <lambda> <iterations>
#include "app_common.hpp"
#include "dwarfs/srad/srad.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Srad dwarf;
    const auto preset = dwarfs::Srad::extent_for(
        a.cli.size.value_or(dwarfs::ProblemSize::kTiny));
    dwarfs::Srad::Params p;
    p.rows = std::stoul(
        apps::arg_or(a.benchmark_args, 0, std::to_string(preset.rows)));
    p.cols = std::stoul(
        apps::arg_or(a.benchmark_args, 1, std::to_string(preset.cols)));
    // args 2-5 are the ROI (fixed 0..127 in the paper; informational here).
    p.lambda = std::stof(apps::arg_or(a.benchmark_args, 6, "0.5"));
    p.iterations = static_cast<unsigned>(
        std::stoul(apps::arg_or(a.benchmark_args, 7, "1")));
    dwarf.configure(p);
    std::cout << "srad " << p.rows << ' ' << p.cols << " 0 127 0 127 "
              << p.lambda << ' ' << p.iterations << '\n';
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: srad_app [device options] -- <rows> <cols> 0 127 "
                 "0 127 <lambda> <iters>\n";
    return 2;
  }
}
