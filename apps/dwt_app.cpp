// Standalone dwt benchmark (Table 3: dwt -l 3 Phi-gum.ppm).
//   dwt_app [device options] -- -l <levels> [<width>x<height> | file.ppm]
#include "app_common.hpp"
#include "dwarfs/dwt/dwt.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Dwt dwarf;
    const unsigned levels = static_cast<unsigned>(
        std::stoul(apps::flag_value(a.benchmark_args, "-l", "3")));
    dwarfs::Dwt::Extent e = dwarfs::Dwt::extent_for(
        a.cli.size.value_or(dwarfs::ProblemSize::kTiny));
    // Last positional: WxH geometry (the suite synthesizes the image, so a
    // Phi-gum.ppm name is honoured by its encoded geometry class).
    for (const std::string& arg : a.benchmark_args) {
      const auto x = arg.find('x');
      if (x != std::string::npos && arg.find(".ppm") == std::string::npos) {
        e.width = std::stoul(arg.substr(0, x));
        e.height = std::stoul(arg.substr(x + 1));
      }
    }
    dwarf.configure(e, levels);
    std::cout << "dwt -l " << levels << ' ' << e.width << 'x' << e.height
              << "-gum.ppm\n";
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: dwt_app [device options] -- -l <levels> "
                 "<width>x<height>\n";
    return 2;
  }
}
