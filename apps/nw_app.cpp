// Standalone nw benchmark (Table 3: nw Phi 10).
//   nw_app [device options] -- <length> <penalty>
// With --devices "A,B,..." the wavefront is partitioned across several
// simulated devices over the modeled interconnect (DESIGN.md §14).
#include "app_common.hpp"
#include "dwarfs/nw/nw.hpp"
#include "harness/partition.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Nw dwarf;
    const std::size_t n = std::stoul(apps::arg_or(
        a.benchmark_args, 0,
        std::to_string(dwarfs::Nw::length_for(
            a.cli.size.value_or(dwarfs::ProblemSize::kTiny)))));
    const auto penalty = static_cast<std::int32_t>(
        std::stol(apps::arg_or(a.benchmark_args, 1, "10")));
    dwarf.configure(n, penalty);
    std::cout << "nw " << n << ' ' << penalty << '\n';
    const std::vector<xcl::Device*> devices = a.cli.resolve_devices();
    if (devices.size() > 1) {
      const std::string trace = apps::begin_partitioned_trace(a.cli);
      harness::PartitionOptions popts;
      popts.validate = true;
      popts.dispatch = a.cli.dispatch;
      const harness::PartitionedResult r =
          harness::run_partitioned_nw(dwarf, devices, popts);
      return apps::report_partitioned(dwarf, r, a.cli, trace);
    }
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: nw_app [device options] -- <length (multiple of "
                 "16)> <penalty>\n";
    return 2;
  }
}
