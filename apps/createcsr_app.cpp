// createcsr -- the matrix generator of Table 3: `createcsr -n Phi -d 5000`
// writes the sparse matrix file (Psi) that the csr benchmark loads with
// `csr -i Psi`.
//
//   createcsr_app -n <dimension> -d <density, 5000 = 0.5%> [-o <file>]
#include <iostream>

#include "app_common.hpp"
#include "dwarfs/csr/csr_io.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    std::vector<std::string> args(argv + 1, argv + argc);
    const std::size_t n =
        std::stoul(apps::flag_value(args, "-n", "736"));
    const double d = std::stod(apps::flag_value(args, "-d", "5000"));
    const double density = d / 1e6;
    const std::string out = apps::flag_value(
        args, "-o", std::to_string(n) + ".csr");
    const dwarfs::CsrMatrix m = dwarfs::create_csr(n, density, 0x637372ull);
    dwarfs::save_csr(m, out);
    std::cout << "createcsr -n " << n << " -d " << d << ": wrote " << out
              << " (" << m.n << "x" << m.n << ", " << m.nnz()
              << " nonzeros, " << m.bytes() / 1024.0 << " KiB)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: createcsr_app -n <dim> -d <density per ten-mille> "
                 "[-o <file>]\n";
    return 2;
  }
}
