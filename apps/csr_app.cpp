// Standalone csr benchmark (Table 3: `csr -i Psi`, where Psi is the file
// written by createcsr -n Phi -d 5000).  Accepts either `-i <file>` (the
// paper's two-stage workflow, see createcsr_app) or direct generator
// parameters `-n <dimension> -d <density, 5000 = 0.5%>`.
#include "app_common.hpp"
#include "dwarfs/csr/csr_io.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Csr dwarf;
    const std::string file = apps::flag_value(a.benchmark_args, "-i", "");
    if (!file.empty()) {
      dwarf.configure_with_matrix(dwarfs::load_csr(file));
      std::cout << "csr -i " << file << '\n';
      return apps::run_configured(dwarf, a.cli);
    }
    const std::size_t n = std::stoul(apps::flag_value(
        a.benchmark_args, "-n",
        std::to_string(dwarfs::Csr::dim_for(
            a.cli.size.value_or(dwarfs::ProblemSize::kTiny)))));
    // Table 3 footnote: -d 5000 means 0.5% dense (per ten-mille).
    const double d =
        std::stod(apps::flag_value(a.benchmark_args, "-d", "5000"));
    dwarf.configure(n, d / 1e6);
    std::cout << "createcsr -n " << n << " -d " << d << " | csr\n";
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: csr_app [device options] -- -i <file.csr>\n"
                 "       csr_app [device options] -- -n <dim> -d <density "
                 "(5000 = 0.5%)>\n";
    return 2;
  }
}
