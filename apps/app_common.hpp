// Shared main-loop for the standalone benchmark applications.
//
// Each application follows the paper's §4.4.5 convention:
//   Benchmark Device -- Arguments
// where Device is the uniform -p/-d/-t selection and Arguments are the
// benchmark-specific Table 3 options parsed by the app.  The app runs the
// measurement methodology (>= 2 s loop, 50 samples by default), validates
// against the serial reference, and prints a LibSciBench-style summary.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"
#include "harness/cli.hpp"
#include "harness/partition.hpp"
#include "harness/runner.hpp"
#include "obs/analysis/profile.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace eod::apps {

/// Splits argv at "--": everything before is uniform device/suite options,
/// everything after is benchmark-specific arguments (Table 3 style).  When
/// no "--" is present, all arguments are treated as uniform options and the
/// benchmark-specific argument list is the leftover positionals.
struct SplitArgs {
  harness::CliOptions cli;
  std::vector<std::string> benchmark_args;
};

inline SplitArgs split_args(int argc, const char** argv) {
  int split = argc;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--") {
      split = i;
      break;
    }
  }
  SplitArgs out;
  out.cli = harness::parse_cli(split, argv);
  if (split == argc) {
    out.benchmark_args = out.cli.positional;
  } else {
    for (int i = split + 1; i < argc; ++i) {
      out.benchmark_args.emplace_back(argv[i]);
    }
  }
  return out;
}

/// Runs an already-configured dwarf under the harness and prints the
/// standard report.  Returns the process exit code.
inline int run_configured(dwarfs::Dwarf& dwarf,
                          const harness::CliOptions& cli) {
  xcl::Device& device = cli.resolve_device();
  harness::MeasureOptions opts;
  opts.samples = cli.samples;
  opts.min_loop_seconds = cli.min_loop_seconds;
  opts.functional = true;
  opts.validate = true;
  opts.reuse_setup = true;  // the app configured the dwarf itself
  opts.dispatch = cli.dispatch;
  opts.queue_mode = cli.queue_mode;
  // Observability sinks (DESIGN.md §11): --trace / --metrics flags, with
  // EOD_TRACE=1 (or =path) as the no-recompile escape hatch.  Either sink
  // also produces the run manifest next to the process.
  opts.trace_path =
      !cli.trace_path.empty() ? cli.trace_path : obs::env_trace_path();
  opts.metrics_path = cli.metrics_path;
  opts.profile = cli.profile;
  if (!opts.trace_path.empty() || !opts.metrics_path.empty() ||
      opts.profile) {
    opts.manifest_path = "manifest.json";
  }

  const harness::Measurement m = harness::measure(
      dwarf, cli.size.value_or(dwarfs::ProblemSize::kTiny), device, opts);

  std::cout << dwarf.name() << " (" << dwarf.berkeley_dwarf() << ") on "
            << device.name() << '\n';
  std::cout << "validation: " << (m.validation.ok ? "PASS" : "FAIL") << " ("
            << m.validation.detail << ")\n";
  for (const harness::KernelSegment& s : m.segments) {
    std::cout << "  kernel " << s.kernel << ": " << s.launches
              << " launch(es), " << s.modeled_seconds * 1e3
              << " ms/iteration\n";
  }
  const scibench::Summary t = m.time_summary();
  std::cout << "kernel time: mean " << t.mean << " ms, median " << t.median
            << " ms, cov " << t.cov() << " (" << t.n << " samples, "
            << m.loop_iterations << "-iteration loops)\n";
  std::cout << "transfers: " << m.transfer_seconds * 1e3
            << " ms/iteration; energy: " << m.energy_summary().median
            << " J\n";
  std::cout << "pipeline span ("
            << xcl::to_string(cli.queue_mode.value_or(
                   xcl::default_queue_mode()))
            << " queue): " << m.span_seconds * 1e3 << " ms/iteration\n";
  if (m.check_performed) {
    std::cout << m.check_report.to_text();
  }
  // Print the *final* collision-suffixed paths the measurement reports
  // back, not the requested ones — they are what actually landed on disk.
  if (!m.trace_path.empty()) {
    std::cout << "trace: " << m.trace_path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (!m.metrics_path.empty()) {
    std::cout << "metrics: " << m.metrics_path << '\n';
  }
  if (!m.profile_path.empty()) {
    std::cout << "profile: " << m.profile_path << '\n';
  }
  if (!m.manifest_path.empty()) {
    std::cout << "manifest: " << m.manifest_path << '\n';
  }
  const bool check_failed =
      m.check_performed && m.check_report.error_count() > 0;
  return (m.validation.ok && !check_failed) ? 0 : 1;
}

/// Turns the trace recorder on for a partitioned multi-device run when
/// --trace / EOD_TRACE / --profile asks for one.  Must run before the
/// partitioned execution so the per-device command spans are recorded;
/// report_partitioned() serialises and analyzes them afterwards.  Returns
/// the *requested* trace path ("trace.json" when only --profile asked).
inline std::string begin_partitioned_trace(const harness::CliOptions& cli) {
  std::string path =
      !cli.trace_path.empty() ? cli.trace_path : obs::env_trace_path();
  if (path.empty() && cli.profile) path = "trace.json";
  if (!path.empty()) {
    obs::reset_tracing();
    obs::set_thread_lane_name("harness");
    obs::set_tracing_enabled(true);
  }
  return path;
}

/// Prints the standard report for a partitioned multi-device run
/// (DESIGN.md §14), writes the trace/metrics/profile artifacts, and writes
/// the run manifest (with the full --devices set) when an observability
/// flag asked for artifacts.  `requested_trace` is
/// begin_partitioned_trace()'s return value.  Returns the process exit
/// code.
inline int report_partitioned(const dwarfs::Dwarf& dwarf,
                              const harness::PartitionedResult& r,
                              const harness::CliOptions& cli,
                              const std::string& requested_trace) {
  std::cout << dwarf.name() << " (" << dwarf.berkeley_dwarf()
            << ") partitioned across " << r.shards.size() << " device(s)\n";
  for (const harness::Shard& s : r.shards) {
    std::cout << "  " << s.device->name() << ": block rows ["
              << s.block_begin << ", " << s.block_end << ")\n";
  }
  std::cout << "validation: " << (r.validation.ok ? "PASS" : "FAIL") << " ("
            << r.validation.detail << ")\n";
  std::cout << "modeled makespan: " << r.makespan_s * 1e3 << " ms ("
            << r.compute_makespan_s * 1e3 << " ms after uploads)\n";
  std::cout << "halo exchange: " << r.halo_transfers << " peer copies, "
            << r.halo_bytes << " bytes, " << r.halo_seconds * 1e3
            << " ms modeled link time\n";
  std::string trace_path;
  if (!requested_trace.empty()) {
    obs::set_tracing_enabled(false);
    trace_path = obs::unique_artifact_path(requested_trace);
    if (!obs::write_chrome_trace(trace_path)) trace_path.clear();
    if (!trace_path.empty()) {
      std::cout << "trace: " << trace_path
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
  }
  std::string metrics_path;
  if (!cli.metrics_path.empty()) {
    metrics_path = obs::unique_artifact_path(cli.metrics_path);
    if (!obs::snapshot_metrics().write_file(metrics_path)) {
      metrics_path.clear();
    } else {
      std::cout << "metrics: " << metrics_path << '\n';
    }
  }
  std::string profile_path;
  if (cli.profile && !trace_path.empty()) {
    try {
      prof::ProfileInputs inputs;
      inputs.trace_path = trace_path;
      prof::ProfileReport report = prof::profile_run(inputs);
      report.benchmark = dwarf.name();
      report.device = r.shards.front().device->name();
      report.queue = xcl::to_string(xcl::QueueMode::kOutOfOrder);
      const std::string path =
          trace_path.substr(0, trace_path.rfind(".json")) + ".profile.json";
      std::ofstream f(path, std::ios::trunc);
      if (f && (f << report.to_json()).good()) {
        profile_path = path;
        std::cout << "profile: " << profile_path << '\n';
      }
    } catch (const std::exception& e) {
      std::cerr << "profile analysis failed: " << e.what() << '\n';
    }
  }
  if (!trace_path.empty() || !metrics_path.empty() ||
      !profile_path.empty()) {
    obs::RunManifest man;
    man.benchmark = dwarf.name();
    man.size = dwarfs::to_string(
        cli.size.value_or(dwarfs::ProblemSize::kTiny));
    man.device = r.shards.front().device->name();
    for (const harness::Shard& s : r.shards) {
      man.devices.push_back(s.device->name());
    }
    man.dispatch = xcl::to_string(
        cli.dispatch.value_or(xcl::default_dispatch_mode()));
    man.queue = xcl::to_string(xcl::QueueMode::kOutOfOrder);
    man.git_describe = obs::git_describe();
    man.timestamp = obs::utc_timestamp();
    man.samples = 1;
    man.loop_iterations = 1;
    man.time_mean_ms = r.makespan_s * 1e3;
    man.time_median_ms = r.makespan_s * 1e3;
    man.validated = true;
    man.validation_ok = r.validation.ok;
    man.trace_path = trace_path;
    man.metrics_path = metrics_path;
    man.profile_path = profile_path;
    const std::string manifest_path =
        obs::unique_artifact_path("manifest.json");
    if (man.write_json(manifest_path, obs::snapshot_metrics())) {
      std::cout << "manifest: " << manifest_path << '\n';
    }
  }
  return r.validation.ok ? 0 : 1;
}

/// Fetches argument i (0-based) from a Table 3 argument list or returns
/// the fallback.
inline std::string arg_or(const std::vector<std::string>& args,
                          std::size_t i, const std::string& fallback) {
  return i < args.size() ? args[i] : fallback;
}

/// Finds "-x value" style options in a benchmark argument list.
inline std::string flag_value(const std::vector<std::string>& args,
                              const std::string& flag,
                              const std::string& fallback) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == flag) return args[i + 1];
  }
  return fallback;
}

inline bool has_flag(const std::vector<std::string>& args,
                     const std::string& flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

}  // namespace eod::apps
