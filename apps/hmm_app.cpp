// Standalone hmm benchmark (Table 3: hmm -n Phi1 -s Phi2 -v s).
//   hmm_app [device options] -- -n <states> -s <symbols> [-t <seq len>]
#include "app_common.hpp"
#include "dwarfs/hmm/hmm.hpp"

int main(int argc, const char** argv) {
  using namespace eod;
  try {
    const apps::SplitArgs a = apps::split_args(argc, argv);
    dwarfs::Hmm dwarf;
    const auto preset = dwarfs::Hmm::params_for(
        a.cli.size.value_or(dwarfs::ProblemSize::kTiny));
    dwarfs::Hmm::Params p;
    p.states = static_cast<unsigned>(std::stoul(apps::flag_value(
        a.benchmark_args, "-n", std::to_string(preset.states))));
    p.symbols = static_cast<unsigned>(std::stoul(apps::flag_value(
        a.benchmark_args, "-s", std::to_string(preset.symbols))));
    const std::size_t t = std::stoul(apps::flag_value(
        a.benchmark_args, "-t", std::to_string(dwarfs::Hmm::kSeqLen)));
    dwarf.configure(p, t);
    std::cout << "hmm -n " << p.states << " -s " << p.symbols << " -v s\n";
    return apps::run_configured(dwarf, a.cli);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n'
              << "usage: hmm_app [device options] -- -n <states> -s "
                 "<symbols> [-t <sequence length>]\n";
    return 2;
  }
}
