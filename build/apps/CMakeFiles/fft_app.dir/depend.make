# Empty dependencies file for fft_app.
# This may be replaced when dependencies are built.
