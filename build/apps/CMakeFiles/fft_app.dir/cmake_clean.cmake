file(REMOVE_RECURSE
  "CMakeFiles/fft_app.dir/fft_app.cpp.o"
  "CMakeFiles/fft_app.dir/fft_app.cpp.o.d"
  "fft_app"
  "fft_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
