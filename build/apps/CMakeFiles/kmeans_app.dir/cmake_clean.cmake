file(REMOVE_RECURSE
  "CMakeFiles/kmeans_app.dir/kmeans_app.cpp.o"
  "CMakeFiles/kmeans_app.dir/kmeans_app.cpp.o.d"
  "kmeans_app"
  "kmeans_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
