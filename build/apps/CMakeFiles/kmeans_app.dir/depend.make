# Empty dependencies file for kmeans_app.
# This may be replaced when dependencies are built.
