file(REMOVE_RECURSE
  "CMakeFiles/nw_app.dir/nw_app.cpp.o"
  "CMakeFiles/nw_app.dir/nw_app.cpp.o.d"
  "nw_app"
  "nw_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nw_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
