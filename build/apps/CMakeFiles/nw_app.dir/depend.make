# Empty dependencies file for nw_app.
# This may be replaced when dependencies are built.
