# Empty compiler generated dependencies file for nw_app.
# This may be replaced when dependencies are built.
