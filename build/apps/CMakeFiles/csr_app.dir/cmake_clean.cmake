file(REMOVE_RECURSE
  "CMakeFiles/csr_app.dir/csr_app.cpp.o"
  "CMakeFiles/csr_app.dir/csr_app.cpp.o.d"
  "csr_app"
  "csr_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
