# Empty compiler generated dependencies file for csr_app.
# This may be replaced when dependencies are built.
