file(REMOVE_RECURSE
  "CMakeFiles/createcsr_app.dir/createcsr_app.cpp.o"
  "CMakeFiles/createcsr_app.dir/createcsr_app.cpp.o.d"
  "createcsr_app"
  "createcsr_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/createcsr_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
