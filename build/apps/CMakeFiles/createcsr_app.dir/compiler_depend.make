# Empty compiler generated dependencies file for createcsr_app.
# This may be replaced when dependencies are built.
