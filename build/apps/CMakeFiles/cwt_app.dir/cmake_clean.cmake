file(REMOVE_RECURSE
  "CMakeFiles/cwt_app.dir/cwt_app.cpp.o"
  "CMakeFiles/cwt_app.dir/cwt_app.cpp.o.d"
  "cwt_app"
  "cwt_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwt_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
