# Empty compiler generated dependencies file for cwt_app.
# This may be replaced when dependencies are built.
