# Empty compiler generated dependencies file for nqueens_app.
# This may be replaced when dependencies are built.
