file(REMOVE_RECURSE
  "CMakeFiles/nqueens_app.dir/nqueens_app.cpp.o"
  "CMakeFiles/nqueens_app.dir/nqueens_app.cpp.o.d"
  "nqueens_app"
  "nqueens_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nqueens_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
