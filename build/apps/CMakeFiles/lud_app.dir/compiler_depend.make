# Empty compiler generated dependencies file for lud_app.
# This may be replaced when dependencies are built.
