file(REMOVE_RECURSE
  "CMakeFiles/lud_app.dir/lud_app.cpp.o"
  "CMakeFiles/lud_app.dir/lud_app.cpp.o.d"
  "lud_app"
  "lud_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lud_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
