file(REMOVE_RECURSE
  "CMakeFiles/srad_app.dir/srad_app.cpp.o"
  "CMakeFiles/srad_app.dir/srad_app.cpp.o.d"
  "srad_app"
  "srad_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srad_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
