# Empty dependencies file for srad_app.
# This may be replaced when dependencies are built.
