file(REMOVE_RECURSE
  "CMakeFiles/validate_suite.dir/validate_suite.cpp.o"
  "CMakeFiles/validate_suite.dir/validate_suite.cpp.o.d"
  "validate_suite"
  "validate_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
