# Empty dependencies file for validate_suite.
# This may be replaced when dependencies are built.
