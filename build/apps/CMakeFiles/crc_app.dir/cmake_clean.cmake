file(REMOVE_RECURSE
  "CMakeFiles/crc_app.dir/crc_app.cpp.o"
  "CMakeFiles/crc_app.dir/crc_app.cpp.o.d"
  "crc_app"
  "crc_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crc_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
