# Empty dependencies file for crc_app.
# This may be replaced when dependencies are built.
