# Empty compiler generated dependencies file for dwt_app.
# This may be replaced when dependencies are built.
