file(REMOVE_RECURSE
  "CMakeFiles/dwt_app.dir/dwt_app.cpp.o"
  "CMakeFiles/dwt_app.dir/dwt_app.cpp.o.d"
  "dwt_app"
  "dwt_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwt_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
