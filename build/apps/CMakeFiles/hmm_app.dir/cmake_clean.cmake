file(REMOVE_RECURSE
  "CMakeFiles/hmm_app.dir/hmm_app.cpp.o"
  "CMakeFiles/hmm_app.dir/hmm_app.cpp.o.d"
  "hmm_app"
  "hmm_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hmm_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
