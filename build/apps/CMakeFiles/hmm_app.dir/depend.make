# Empty dependencies file for hmm_app.
# This may be replaced when dependencies are built.
