file(REMOVE_RECURSE
  "CMakeFiles/gem_app.dir/gem_app.cpp.o"
  "CMakeFiles/gem_app.dir/gem_app.cpp.o.d"
  "gem_app"
  "gem_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gem_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
