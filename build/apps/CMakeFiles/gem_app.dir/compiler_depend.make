# Empty compiler generated dependencies file for gem_app.
# This may be replaced when dependencies are built.
