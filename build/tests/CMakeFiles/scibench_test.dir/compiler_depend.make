# Empty compiler generated dependencies file for scibench_test.
# This may be replaced when dependencies are built.
