file(REMOVE_RECURSE
  "CMakeFiles/scibench_test.dir/scibench_test.cpp.o"
  "CMakeFiles/scibench_test.dir/scibench_test.cpp.o.d"
  "scibench_test"
  "scibench_test.pdb"
  "scibench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scibench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
