file(REMOVE_RECURSE
  "CMakeFiles/xcl_test.dir/xcl_test.cpp.o"
  "CMakeFiles/xcl_test.dir/xcl_test.cpp.o.d"
  "xcl_test"
  "xcl_test.pdb"
  "xcl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xcl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
