# Empty compiler generated dependencies file for model_regression_test.
# This may be replaced when dependencies are built.
