file(REMOVE_RECURSE
  "CMakeFiles/model_regression_test.dir/model_regression_test.cpp.o"
  "CMakeFiles/model_regression_test.dir/model_regression_test.cpp.o.d"
  "model_regression_test"
  "model_regression_test.pdb"
  "model_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
