# Empty compiler generated dependencies file for cwt_test.
# This may be replaced when dependencies are built.
