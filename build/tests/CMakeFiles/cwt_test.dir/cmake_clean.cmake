file(REMOVE_RECURSE
  "CMakeFiles/cwt_test.dir/cwt_test.cpp.o"
  "CMakeFiles/cwt_test.dir/cwt_test.cpp.o.d"
  "cwt_test"
  "cwt_test.pdb"
  "cwt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cwt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
