# Empty compiler generated dependencies file for aiwc_test.
# This may be replaced when dependencies are built.
