file(REMOVE_RECURSE
  "CMakeFiles/aiwc_test.dir/aiwc_test.cpp.o"
  "CMakeFiles/aiwc_test.dir/aiwc_test.cpp.o.d"
  "aiwc_test"
  "aiwc_test.pdb"
  "aiwc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aiwc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
