# Empty compiler generated dependencies file for dwarf_validation_test.
# This may be replaced when dependencies are built.
