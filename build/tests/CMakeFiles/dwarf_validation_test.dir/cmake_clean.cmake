file(REMOVE_RECURSE
  "CMakeFiles/dwarf_validation_test.dir/dwarf_validation_test.cpp.o"
  "CMakeFiles/dwarf_validation_test.dir/dwarf_validation_test.cpp.o.d"
  "dwarf_validation_test"
  "dwarf_validation_test.pdb"
  "dwarf_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
