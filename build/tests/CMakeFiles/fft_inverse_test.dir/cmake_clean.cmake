file(REMOVE_RECURSE
  "CMakeFiles/fft_inverse_test.dir/fft_inverse_test.cpp.o"
  "CMakeFiles/fft_inverse_test.dir/fft_inverse_test.cpp.o.d"
  "fft_inverse_test"
  "fft_inverse_test.pdb"
  "fft_inverse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_inverse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
