# Empty compiler generated dependencies file for fft_inverse_test.
# This may be replaced when dependencies are built.
