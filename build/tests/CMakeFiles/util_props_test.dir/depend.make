# Empty dependencies file for util_props_test.
# This may be replaced when dependencies are built.
