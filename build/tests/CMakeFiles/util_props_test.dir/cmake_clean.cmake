file(REMOVE_RECURSE
  "CMakeFiles/util_props_test.dir/util_props_test.cpp.o"
  "CMakeFiles/util_props_test.dir/util_props_test.cpp.o.d"
  "util_props_test"
  "util_props_test.pdb"
  "util_props_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
