file(REMOVE_RECURSE
  "CMakeFiles/runner_extra_test.dir/runner_extra_test.cpp.o"
  "CMakeFiles/runner_extra_test.dir/runner_extra_test.cpp.o.d"
  "runner_extra_test"
  "runner_extra_test.pdb"
  "runner_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runner_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
