# Empty dependencies file for runner_extra_test.
# This may be replaced when dependencies are built.
