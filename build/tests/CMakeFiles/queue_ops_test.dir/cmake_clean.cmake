file(REMOVE_RECURSE
  "CMakeFiles/queue_ops_test.dir/queue_ops_test.cpp.o"
  "CMakeFiles/queue_ops_test.dir/queue_ops_test.cpp.o.d"
  "queue_ops_test"
  "queue_ops_test.pdb"
  "queue_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
