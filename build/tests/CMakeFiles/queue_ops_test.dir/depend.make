# Empty dependencies file for queue_ops_test.
# This may be replaced when dependencies are built.
