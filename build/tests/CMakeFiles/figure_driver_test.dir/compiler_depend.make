# Empty compiler generated dependencies file for figure_driver_test.
# This may be replaced when dependencies are built.
