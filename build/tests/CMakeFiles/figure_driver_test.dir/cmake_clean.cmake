file(REMOVE_RECURSE
  "CMakeFiles/figure_driver_test.dir/figure_driver_test.cpp.o"
  "CMakeFiles/figure_driver_test.dir/figure_driver_test.cpp.o.d"
  "figure_driver_test"
  "figure_driver_test.pdb"
  "figure_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
