file(REMOVE_RECURSE
  "CMakeFiles/xcl_extra_test.dir/xcl_extra_test.cpp.o"
  "CMakeFiles/xcl_extra_test.dir/xcl_extra_test.cpp.o.d"
  "xcl_extra_test"
  "xcl_extra_test.pdb"
  "xcl_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xcl_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
