# Empty compiler generated dependencies file for xcl_extra_test.
# This may be replaced when dependencies are built.
