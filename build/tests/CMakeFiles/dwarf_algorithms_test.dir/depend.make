# Empty dependencies file for dwarf_algorithms_test.
# This may be replaced when dependencies are built.
