file(REMOVE_RECURSE
  "CMakeFiles/dwarf_algorithms_test.dir/dwarf_algorithms_test.cpp.o"
  "CMakeFiles/dwarf_algorithms_test.dir/dwarf_algorithms_test.cpp.o.d"
  "dwarf_algorithms_test"
  "dwarf_algorithms_test.pdb"
  "dwarf_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dwarf_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
