file(REMOVE_RECURSE
  "CMakeFiles/figures_shape_test.dir/figures_shape_test.cpp.o"
  "CMakeFiles/figures_shape_test.dir/figures_shape_test.cpp.o.d"
  "figures_shape_test"
  "figures_shape_test.pdb"
  "figures_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
