# Empty compiler generated dependencies file for figures_shape_test.
# This may be replaced when dependencies are built.
