file(REMOVE_RECURSE
  "CMakeFiles/configure_test.dir/configure_test.cpp.o"
  "CMakeFiles/configure_test.dir/configure_test.cpp.o.d"
  "configure_test"
  "configure_test.pdb"
  "configure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
