# Empty dependencies file for configure_test.
# This may be replaced when dependencies are built.
