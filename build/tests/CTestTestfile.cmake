# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/scibench_test[1]_include.cmake")
include("/root/repo/build/tests/xcl_test[1]_include.cmake")
include("/root/repo/build/tests/fiber_test[1]_include.cmake")
include("/root/repo/build/tests/cache_sim_test[1]_include.cmake")
include("/root/repo/build/tests/perf_model_test[1]_include.cmake")
include("/root/repo/build/tests/dwarf_validation_test[1]_include.cmake")
include("/root/repo/build/tests/dwarf_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/figures_shape_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/aiwc_test[1]_include.cmake")
include("/root/repo/build/tests/portability_test[1]_include.cmake")
include("/root/repo/build/tests/counters_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/configure_test[1]_include.cmake")
include("/root/repo/build/tests/xcl_extra_test[1]_include.cmake")
include("/root/repo/build/tests/fft_inverse_test[1]_include.cmake")
include("/root/repo/build/tests/cwt_test[1]_include.cmake")
include("/root/repo/build/tests/runner_extra_test[1]_include.cmake")
include("/root/repo/build/tests/util_props_test[1]_include.cmake")
include("/root/repo/build/tests/model_regression_test[1]_include.cmake")
include("/root/repo/build/tests/file_io_test[1]_include.cmake")
include("/root/repo/build/tests/queue_ops_test[1]_include.cmake")
include("/root/repo/build/tests/figure_driver_test[1]_include.cmake")
