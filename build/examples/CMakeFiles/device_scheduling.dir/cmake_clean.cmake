file(REMOVE_RECURSE
  "CMakeFiles/device_scheduling.dir/device_scheduling.cpp.o"
  "CMakeFiles/device_scheduling.dir/device_scheduling.cpp.o.d"
  "device_scheduling"
  "device_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
