# Empty compiler generated dependencies file for device_scheduling.
# This may be replaced when dependencies are built.
