# Empty dependencies file for molecule_pipeline.
# This may be replaced when dependencies are built.
