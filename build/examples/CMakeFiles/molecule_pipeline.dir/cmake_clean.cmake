file(REMOVE_RECURSE
  "CMakeFiles/molecule_pipeline.dir/molecule_pipeline.cpp.o"
  "CMakeFiles/molecule_pipeline.dir/molecule_pipeline.cpp.o.d"
  "molecule_pipeline"
  "molecule_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/molecule_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
