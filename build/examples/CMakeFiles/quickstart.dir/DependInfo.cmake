
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/eod_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/dwarfs/CMakeFiles/eod_dwarfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/xcl/CMakeFiles/eod_xcl.dir/DependInfo.cmake"
  "/root/repo/build/src/scibench/CMakeFiles/eod_scibench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
