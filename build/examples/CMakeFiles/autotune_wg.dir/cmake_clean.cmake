file(REMOVE_RECURSE
  "CMakeFiles/autotune_wg.dir/autotune_wg.cpp.o"
  "CMakeFiles/autotune_wg.dir/autotune_wg.cpp.o.d"
  "autotune_wg"
  "autotune_wg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_wg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
