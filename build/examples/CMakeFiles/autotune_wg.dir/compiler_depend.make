# Empty compiler generated dependencies file for autotune_wg.
# This may be replaced when dependencies are built.
