file(REMOVE_RECURSE
  "CMakeFiles/nextgen_sizing.dir/nextgen_sizing.cpp.o"
  "CMakeFiles/nextgen_sizing.dir/nextgen_sizing.cpp.o.d"
  "nextgen_sizing"
  "nextgen_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nextgen_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
