# Empty compiler generated dependencies file for nextgen_sizing.
# This may be replaced when dependencies are built.
