
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xcl/context.cpp" "src/xcl/CMakeFiles/eod_xcl.dir/context.cpp.o" "gcc" "src/xcl/CMakeFiles/eod_xcl.dir/context.cpp.o.d"
  "/root/repo/src/xcl/error.cpp" "src/xcl/CMakeFiles/eod_xcl.dir/error.cpp.o" "gcc" "src/xcl/CMakeFiles/eod_xcl.dir/error.cpp.o.d"
  "/root/repo/src/xcl/executor.cpp" "src/xcl/CMakeFiles/eod_xcl.dir/executor.cpp.o" "gcc" "src/xcl/CMakeFiles/eod_xcl.dir/executor.cpp.o.d"
  "/root/repo/src/xcl/fiber.cpp" "src/xcl/CMakeFiles/eod_xcl.dir/fiber.cpp.o" "gcc" "src/xcl/CMakeFiles/eod_xcl.dir/fiber.cpp.o.d"
  "/root/repo/src/xcl/platform.cpp" "src/xcl/CMakeFiles/eod_xcl.dir/platform.cpp.o" "gcc" "src/xcl/CMakeFiles/eod_xcl.dir/platform.cpp.o.d"
  "/root/repo/src/xcl/queue.cpp" "src/xcl/CMakeFiles/eod_xcl.dir/queue.cpp.o" "gcc" "src/xcl/CMakeFiles/eod_xcl.dir/queue.cpp.o.d"
  "/root/repo/src/xcl/thread_pool.cpp" "src/xcl/CMakeFiles/eod_xcl.dir/thread_pool.cpp.o" "gcc" "src/xcl/CMakeFiles/eod_xcl.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scibench/CMakeFiles/eod_scibench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
