file(REMOVE_RECURSE
  "libeod_xcl.a"
)
