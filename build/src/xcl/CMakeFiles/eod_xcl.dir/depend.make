# Empty dependencies file for eod_xcl.
# This may be replaced when dependencies are built.
