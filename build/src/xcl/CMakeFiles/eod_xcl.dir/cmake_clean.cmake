file(REMOVE_RECURSE
  "CMakeFiles/eod_xcl.dir/context.cpp.o"
  "CMakeFiles/eod_xcl.dir/context.cpp.o.d"
  "CMakeFiles/eod_xcl.dir/error.cpp.o"
  "CMakeFiles/eod_xcl.dir/error.cpp.o.d"
  "CMakeFiles/eod_xcl.dir/executor.cpp.o"
  "CMakeFiles/eod_xcl.dir/executor.cpp.o.d"
  "CMakeFiles/eod_xcl.dir/fiber.cpp.o"
  "CMakeFiles/eod_xcl.dir/fiber.cpp.o.d"
  "CMakeFiles/eod_xcl.dir/platform.cpp.o"
  "CMakeFiles/eod_xcl.dir/platform.cpp.o.d"
  "CMakeFiles/eod_xcl.dir/queue.cpp.o"
  "CMakeFiles/eod_xcl.dir/queue.cpp.o.d"
  "CMakeFiles/eod_xcl.dir/thread_pool.cpp.o"
  "CMakeFiles/eod_xcl.dir/thread_pool.cpp.o.d"
  "libeod_xcl.a"
  "libeod_xcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eod_xcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
