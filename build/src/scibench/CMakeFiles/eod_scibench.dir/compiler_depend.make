# Empty compiler generated dependencies file for eod_scibench.
# This may be replaced when dependencies are built.
