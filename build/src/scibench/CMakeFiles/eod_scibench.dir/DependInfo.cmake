
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scibench/histogram.cpp" "src/scibench/CMakeFiles/eod_scibench.dir/histogram.cpp.o" "gcc" "src/scibench/CMakeFiles/eod_scibench.dir/histogram.cpp.o.d"
  "/root/repo/src/scibench/logger.cpp" "src/scibench/CMakeFiles/eod_scibench.dir/logger.cpp.o" "gcc" "src/scibench/CMakeFiles/eod_scibench.dir/logger.cpp.o.d"
  "/root/repo/src/scibench/power_analysis.cpp" "src/scibench/CMakeFiles/eod_scibench.dir/power_analysis.cpp.o" "gcc" "src/scibench/CMakeFiles/eod_scibench.dir/power_analysis.cpp.o.d"
  "/root/repo/src/scibench/sample_set.cpp" "src/scibench/CMakeFiles/eod_scibench.dir/sample_set.cpp.o" "gcc" "src/scibench/CMakeFiles/eod_scibench.dir/sample_set.cpp.o.d"
  "/root/repo/src/scibench/stats.cpp" "src/scibench/CMakeFiles/eod_scibench.dir/stats.cpp.o" "gcc" "src/scibench/CMakeFiles/eod_scibench.dir/stats.cpp.o.d"
  "/root/repo/src/scibench/timer.cpp" "src/scibench/CMakeFiles/eod_scibench.dir/timer.cpp.o" "gcc" "src/scibench/CMakeFiles/eod_scibench.dir/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
