file(REMOVE_RECURSE
  "CMakeFiles/eod_scibench.dir/histogram.cpp.o"
  "CMakeFiles/eod_scibench.dir/histogram.cpp.o.d"
  "CMakeFiles/eod_scibench.dir/logger.cpp.o"
  "CMakeFiles/eod_scibench.dir/logger.cpp.o.d"
  "CMakeFiles/eod_scibench.dir/power_analysis.cpp.o"
  "CMakeFiles/eod_scibench.dir/power_analysis.cpp.o.d"
  "CMakeFiles/eod_scibench.dir/sample_set.cpp.o"
  "CMakeFiles/eod_scibench.dir/sample_set.cpp.o.d"
  "CMakeFiles/eod_scibench.dir/stats.cpp.o"
  "CMakeFiles/eod_scibench.dir/stats.cpp.o.d"
  "CMakeFiles/eod_scibench.dir/timer.cpp.o"
  "CMakeFiles/eod_scibench.dir/timer.cpp.o.d"
  "libeod_scibench.a"
  "libeod_scibench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eod_scibench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
