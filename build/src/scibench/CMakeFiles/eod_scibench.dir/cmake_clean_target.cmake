file(REMOVE_RECURSE
  "libeod_scibench.a"
)
