file(REMOVE_RECURSE
  "libeod_aiwc.a"
)
