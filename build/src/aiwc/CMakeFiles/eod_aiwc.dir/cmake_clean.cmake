file(REMOVE_RECURSE
  "CMakeFiles/eod_aiwc.dir/aiwc.cpp.o"
  "CMakeFiles/eod_aiwc.dir/aiwc.cpp.o.d"
  "libeod_aiwc.a"
  "libeod_aiwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eod_aiwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
