# Empty compiler generated dependencies file for eod_aiwc.
# This may be replaced when dependencies are built.
