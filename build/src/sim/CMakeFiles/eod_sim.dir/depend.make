# Empty dependencies file for eod_sim.
# This may be replaced when dependencies are built.
