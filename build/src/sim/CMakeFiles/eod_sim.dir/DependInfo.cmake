
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_sim.cpp" "src/sim/CMakeFiles/eod_sim.dir/cache_sim.cpp.o" "gcc" "src/sim/CMakeFiles/eod_sim.dir/cache_sim.cpp.o.d"
  "/root/repo/src/sim/counters.cpp" "src/sim/CMakeFiles/eod_sim.dir/counters.cpp.o" "gcc" "src/sim/CMakeFiles/eod_sim.dir/counters.cpp.o.d"
  "/root/repo/src/sim/device_spec.cpp" "src/sim/CMakeFiles/eod_sim.dir/device_spec.cpp.o" "gcc" "src/sim/CMakeFiles/eod_sim.dir/device_spec.cpp.o.d"
  "/root/repo/src/sim/energy_model.cpp" "src/sim/CMakeFiles/eod_sim.dir/energy_model.cpp.o" "gcc" "src/sim/CMakeFiles/eod_sim.dir/energy_model.cpp.o.d"
  "/root/repo/src/sim/perf_model.cpp" "src/sim/CMakeFiles/eod_sim.dir/perf_model.cpp.o" "gcc" "src/sim/CMakeFiles/eod_sim.dir/perf_model.cpp.o.d"
  "/root/repo/src/sim/testbed.cpp" "src/sim/CMakeFiles/eod_sim.dir/testbed.cpp.o" "gcc" "src/sim/CMakeFiles/eod_sim.dir/testbed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xcl/CMakeFiles/eod_xcl.dir/DependInfo.cmake"
  "/root/repo/build/src/scibench/CMakeFiles/eod_scibench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
