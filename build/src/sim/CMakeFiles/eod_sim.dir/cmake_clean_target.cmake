file(REMOVE_RECURSE
  "libeod_sim.a"
)
