file(REMOVE_RECURSE
  "CMakeFiles/eod_sim.dir/cache_sim.cpp.o"
  "CMakeFiles/eod_sim.dir/cache_sim.cpp.o.d"
  "CMakeFiles/eod_sim.dir/counters.cpp.o"
  "CMakeFiles/eod_sim.dir/counters.cpp.o.d"
  "CMakeFiles/eod_sim.dir/device_spec.cpp.o"
  "CMakeFiles/eod_sim.dir/device_spec.cpp.o.d"
  "CMakeFiles/eod_sim.dir/energy_model.cpp.o"
  "CMakeFiles/eod_sim.dir/energy_model.cpp.o.d"
  "CMakeFiles/eod_sim.dir/perf_model.cpp.o"
  "CMakeFiles/eod_sim.dir/perf_model.cpp.o.d"
  "CMakeFiles/eod_sim.dir/testbed.cpp.o"
  "CMakeFiles/eod_sim.dir/testbed.cpp.o.d"
  "libeod_sim.a"
  "libeod_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eod_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
