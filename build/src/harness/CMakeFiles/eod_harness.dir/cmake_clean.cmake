file(REMOVE_RECURSE
  "CMakeFiles/eod_harness.dir/autotune.cpp.o"
  "CMakeFiles/eod_harness.dir/autotune.cpp.o.d"
  "CMakeFiles/eod_harness.dir/cli.cpp.o"
  "CMakeFiles/eod_harness.dir/cli.cpp.o.d"
  "CMakeFiles/eod_harness.dir/portability.cpp.o"
  "CMakeFiles/eod_harness.dir/portability.cpp.o.d"
  "CMakeFiles/eod_harness.dir/problem_size.cpp.o"
  "CMakeFiles/eod_harness.dir/problem_size.cpp.o.d"
  "CMakeFiles/eod_harness.dir/report.cpp.o"
  "CMakeFiles/eod_harness.dir/report.cpp.o.d"
  "CMakeFiles/eod_harness.dir/runner.cpp.o"
  "CMakeFiles/eod_harness.dir/runner.cpp.o.d"
  "CMakeFiles/eod_harness.dir/scheduler.cpp.o"
  "CMakeFiles/eod_harness.dir/scheduler.cpp.o.d"
  "libeod_harness.a"
  "libeod_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eod_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
