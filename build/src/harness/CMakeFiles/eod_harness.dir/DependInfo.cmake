
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/autotune.cpp" "src/harness/CMakeFiles/eod_harness.dir/autotune.cpp.o" "gcc" "src/harness/CMakeFiles/eod_harness.dir/autotune.cpp.o.d"
  "/root/repo/src/harness/cli.cpp" "src/harness/CMakeFiles/eod_harness.dir/cli.cpp.o" "gcc" "src/harness/CMakeFiles/eod_harness.dir/cli.cpp.o.d"
  "/root/repo/src/harness/portability.cpp" "src/harness/CMakeFiles/eod_harness.dir/portability.cpp.o" "gcc" "src/harness/CMakeFiles/eod_harness.dir/portability.cpp.o.d"
  "/root/repo/src/harness/problem_size.cpp" "src/harness/CMakeFiles/eod_harness.dir/problem_size.cpp.o" "gcc" "src/harness/CMakeFiles/eod_harness.dir/problem_size.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/eod_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/eod_harness.dir/report.cpp.o.d"
  "/root/repo/src/harness/runner.cpp" "src/harness/CMakeFiles/eod_harness.dir/runner.cpp.o" "gcc" "src/harness/CMakeFiles/eod_harness.dir/runner.cpp.o.d"
  "/root/repo/src/harness/scheduler.cpp" "src/harness/CMakeFiles/eod_harness.dir/scheduler.cpp.o" "gcc" "src/harness/CMakeFiles/eod_harness.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dwarfs/CMakeFiles/eod_dwarfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scibench/CMakeFiles/eod_scibench.dir/DependInfo.cmake"
  "/root/repo/build/src/xcl/CMakeFiles/eod_xcl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
