file(REMOVE_RECURSE
  "libeod_harness.a"
)
