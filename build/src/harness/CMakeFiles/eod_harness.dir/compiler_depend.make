# Empty compiler generated dependencies file for eod_harness.
# This may be replaced when dependencies are built.
