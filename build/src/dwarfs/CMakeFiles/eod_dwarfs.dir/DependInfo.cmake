
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dwarfs/common.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/common.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/common.cpp.o.d"
  "/root/repo/src/dwarfs/crc/crc.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/crc/crc.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/crc/crc.cpp.o.d"
  "/root/repo/src/dwarfs/csr/csr.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/csr/csr.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/csr/csr.cpp.o.d"
  "/root/repo/src/dwarfs/csr/csr_io.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/csr/csr_io.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/csr/csr_io.cpp.o.d"
  "/root/repo/src/dwarfs/cwt/cwt.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/cwt/cwt.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/cwt/cwt.cpp.o.d"
  "/root/repo/src/dwarfs/dwt/dwt.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/dwt/dwt.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/dwt/dwt.cpp.o.d"
  "/root/repo/src/dwarfs/dwt/image.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/dwt/image.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/dwt/image.cpp.o.d"
  "/root/repo/src/dwarfs/fft/fft.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/fft/fft.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/fft/fft.cpp.o.d"
  "/root/repo/src/dwarfs/gem/gem.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/gem/gem.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/gem/gem.cpp.o.d"
  "/root/repo/src/dwarfs/hmm/hmm.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/hmm/hmm.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/hmm/hmm.cpp.o.d"
  "/root/repo/src/dwarfs/kmeans/kmeans.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/kmeans/kmeans.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/kmeans/kmeans.cpp.o.d"
  "/root/repo/src/dwarfs/lud/lud.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/lud/lud.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/lud/lud.cpp.o.d"
  "/root/repo/src/dwarfs/nqueens/nqueens.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/nqueens/nqueens.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/nqueens/nqueens.cpp.o.d"
  "/root/repo/src/dwarfs/nw/nw.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/nw/nw.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/nw/nw.cpp.o.d"
  "/root/repo/src/dwarfs/registry.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/registry.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/registry.cpp.o.d"
  "/root/repo/src/dwarfs/srad/srad.cpp" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/srad/srad.cpp.o" "gcc" "src/dwarfs/CMakeFiles/eod_dwarfs.dir/srad/srad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xcl/CMakeFiles/eod_xcl.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eod_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/scibench/CMakeFiles/eod_scibench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
