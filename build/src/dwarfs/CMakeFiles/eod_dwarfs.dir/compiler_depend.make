# Empty compiler generated dependencies file for eod_dwarfs.
# This may be replaced when dependencies are built.
