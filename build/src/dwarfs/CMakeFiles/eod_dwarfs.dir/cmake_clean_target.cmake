file(REMOVE_RECURSE
  "libeod_dwarfs.a"
)
