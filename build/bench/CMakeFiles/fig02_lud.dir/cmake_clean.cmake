file(REMOVE_RECURSE
  "CMakeFiles/fig02_lud.dir/fig02_lud.cpp.o"
  "CMakeFiles/fig02_lud.dir/fig02_lud.cpp.o.d"
  "fig02_lud"
  "fig02_lud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_lud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
