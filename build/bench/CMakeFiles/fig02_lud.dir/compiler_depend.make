# Empty compiler generated dependencies file for fig02_lud.
# This may be replaced when dependencies are built.
