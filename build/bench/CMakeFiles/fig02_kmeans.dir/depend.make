# Empty dependencies file for fig02_kmeans.
# This may be replaced when dependencies are built.
