file(REMOVE_RECURSE
  "CMakeFiles/fig02_kmeans.dir/fig02_kmeans.cpp.o"
  "CMakeFiles/fig02_kmeans.dir/fig02_kmeans.cpp.o.d"
  "fig02_kmeans"
  "fig02_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
