# Empty compiler generated dependencies file for fig01_crc.
# This may be replaced when dependencies are built.
