file(REMOVE_RECURSE
  "CMakeFiles/fig01_crc.dir/fig01_crc.cpp.o"
  "CMakeFiles/fig01_crc.dir/fig01_crc.cpp.o.d"
  "fig01_crc"
  "fig01_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
