# Empty dependencies file for ext_cwt.
# This may be replaced when dependencies are built.
