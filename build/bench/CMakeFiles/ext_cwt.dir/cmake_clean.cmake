file(REMOVE_RECURSE
  "CMakeFiles/ext_cwt.dir/ext_cwt.cpp.o"
  "CMakeFiles/ext_cwt.dir/ext_cwt.cpp.o.d"
  "ext_cwt"
  "ext_cwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
