# Empty dependencies file for counters_report.
# This may be replaced when dependencies are built.
