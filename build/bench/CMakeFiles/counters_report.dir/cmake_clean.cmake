file(REMOVE_RECURSE
  "CMakeFiles/counters_report.dir/counters_report.cpp.o"
  "CMakeFiles/counters_report.dir/counters_report.cpp.o.d"
  "counters_report"
  "counters_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counters_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
