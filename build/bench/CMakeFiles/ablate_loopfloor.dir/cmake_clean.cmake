file(REMOVE_RECURSE
  "CMakeFiles/ablate_loopfloor.dir/ablate_loopfloor.cpp.o"
  "CMakeFiles/ablate_loopfloor.dir/ablate_loopfloor.cpp.o.d"
  "ablate_loopfloor"
  "ablate_loopfloor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_loopfloor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
