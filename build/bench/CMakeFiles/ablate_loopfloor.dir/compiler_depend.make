# Empty compiler generated dependencies file for ablate_loopfloor.
# This may be replaced when dependencies are built.
