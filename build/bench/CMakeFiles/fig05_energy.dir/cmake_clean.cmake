file(REMOVE_RECURSE
  "CMakeFiles/fig05_energy.dir/fig05_energy.cpp.o"
  "CMakeFiles/fig05_energy.dir/fig05_energy.cpp.o.d"
  "fig05_energy"
  "fig05_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
