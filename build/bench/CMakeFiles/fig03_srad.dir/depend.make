# Empty dependencies file for fig03_srad.
# This may be replaced when dependencies are built.
