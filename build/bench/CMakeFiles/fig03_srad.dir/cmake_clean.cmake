file(REMOVE_RECURSE
  "CMakeFiles/fig03_srad.dir/fig03_srad.cpp.o"
  "CMakeFiles/fig03_srad.dir/fig03_srad.cpp.o.d"
  "fig03_srad"
  "fig03_srad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_srad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
