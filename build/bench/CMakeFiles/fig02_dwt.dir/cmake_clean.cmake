file(REMOVE_RECURSE
  "CMakeFiles/fig02_dwt.dir/fig02_dwt.cpp.o"
  "CMakeFiles/fig02_dwt.dir/fig02_dwt.cpp.o.d"
  "fig02_dwt"
  "fig02_dwt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dwt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
