# Empty compiler generated dependencies file for fig02_dwt.
# This may be replaced when dependencies are built.
