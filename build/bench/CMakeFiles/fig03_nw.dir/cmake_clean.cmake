file(REMOVE_RECURSE
  "CMakeFiles/fig03_nw.dir/fig03_nw.cpp.o"
  "CMakeFiles/fig03_nw.dir/fig03_nw.cpp.o.d"
  "fig03_nw"
  "fig03_nw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_nw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
