# Empty dependencies file for fig03_nw.
# This may be replaced when dependencies are built.
