file(REMOVE_RECURSE
  "CMakeFiles/ablate_cachesim.dir/ablate_cachesim.cpp.o"
  "CMakeFiles/ablate_cachesim.dir/ablate_cachesim.cpp.o.d"
  "ablate_cachesim"
  "ablate_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
