# Empty dependencies file for ablate_cachesim.
# This may be replaced when dependencies are built.
