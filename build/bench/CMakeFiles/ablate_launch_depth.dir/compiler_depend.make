# Empty compiler generated dependencies file for ablate_launch_depth.
# This may be replaced when dependencies are built.
