file(REMOVE_RECURSE
  "CMakeFiles/ablate_launch_depth.dir/ablate_launch_depth.cpp.o"
  "CMakeFiles/ablate_launch_depth.dir/ablate_launch_depth.cpp.o.d"
  "ablate_launch_depth"
  "ablate_launch_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_launch_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
