# Empty dependencies file for fig02_fft.
# This may be replaced when dependencies are built.
