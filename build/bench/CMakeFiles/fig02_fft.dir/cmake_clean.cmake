file(REMOVE_RECURSE
  "CMakeFiles/fig02_fft.dir/fig02_fft.cpp.o"
  "CMakeFiles/fig02_fft.dir/fig02_fft.cpp.o.d"
  "fig02_fft"
  "fig02_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
