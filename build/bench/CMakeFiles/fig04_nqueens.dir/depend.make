# Empty dependencies file for fig04_nqueens.
# This may be replaced when dependencies are built.
