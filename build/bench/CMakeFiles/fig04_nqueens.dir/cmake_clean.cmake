file(REMOVE_RECURSE
  "CMakeFiles/fig04_nqueens.dir/fig04_nqueens.cpp.o"
  "CMakeFiles/fig04_nqueens.dir/fig04_nqueens.cpp.o.d"
  "fig04_nqueens"
  "fig04_nqueens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_nqueens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
