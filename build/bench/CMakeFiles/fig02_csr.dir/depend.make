# Empty dependencies file for fig02_csr.
# This may be replaced when dependencies are built.
