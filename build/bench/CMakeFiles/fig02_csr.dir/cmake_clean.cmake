file(REMOVE_RECURSE
  "CMakeFiles/fig02_csr.dir/fig02_csr.cpp.o"
  "CMakeFiles/fig02_csr.dir/fig02_csr.cpp.o.d"
  "fig02_csr"
  "fig02_csr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
