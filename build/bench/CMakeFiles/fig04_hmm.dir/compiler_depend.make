# Empty compiler generated dependencies file for fig04_hmm.
# This may be replaced when dependencies are built.
