file(REMOVE_RECURSE
  "CMakeFiles/fig04_hmm.dir/fig04_hmm.cpp.o"
  "CMakeFiles/fig04_hmm.dir/fig04_hmm.cpp.o.d"
  "fig04_hmm"
  "fig04_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
