file(REMOVE_RECURSE
  "CMakeFiles/fig04_gem.dir/fig04_gem.cpp.o"
  "CMakeFiles/fig04_gem.dir/fig04_gem.cpp.o.d"
  "fig04_gem"
  "fig04_gem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_gem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
