# Empty dependencies file for fig04_gem.
# This may be replaced when dependencies are built.
