// Multi-device co-execution suite (DESIGN.md §14): the interconnect link
// model, the transfer-aware partitioner, the partitioned nw / lud runners,
// and the b_eff sweeps.
//
// The load-bearing property is bit-equivalence: a partitioned run launches
// the exact kernel bodies the single-device dwarf launches, so the
// assembled output must hash identically to a one-device run at every
// device count, across dispatch tiers, and across heterogeneous fleets.
// The link-model tests pin the arithmetic the halo costs come from
// (latency + size/bandwidth, P2P vs host staging, occupancy <= completion),
// and the b_eff tests pin the saturating shape of the bandwidth curve.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "dwarfs/beff/beff.hpp"
#include "dwarfs/lud/lud.hpp"
#include "dwarfs/nw/nw.hpp"
#include "harness/cli.hpp"
#include "harness/partition.hpp"
#include "sim/device_spec.hpp"
#include "sim/interconnect.hpp"
#include "sim/testbed.hpp"
#include "xcl/buffer.hpp"
#include "xcl/context.hpp"
#include "xcl/executor.hpp"
#include "xcl/queue.hpp"

namespace {

using namespace eod;

std::vector<xcl::Device*> fleet(const std::vector<const char*>& names) {
  std::vector<xcl::Device*> devices;
  for (const char* name : names) {
    devices.push_back(&sim::testbed_device(name));
  }
  return devices;
}

// ---------------------------------------------------------------- links --

TEST(LinkPath, SecondsIsLatencyPlusWireTime) {
  sim::LinkPath path;
  path.latency_s = 20e-6;
  path.bandwidth_gbs = 10.0;
  EXPECT_DOUBLE_EQ(path.seconds(0), 20e-6);
  // 10 MB over 10 GB/s = 1 ms of wire time on top of the latency.
  EXPECT_NEAR(path.seconds(10'000'000), 20e-6 + 1e-3, 1e-12);
}

TEST(LinkPath, OccupancyNeverExceedsCompletion) {
  sim::LinkPath path;
  path.latency_s = 20e-6;
  path.bandwidth_gbs = 10.0;
  for (std::size_t bytes : {std::size_t{64}, std::size_t{4096},
                            std::size_t{1} << 20, std::size_t{64} << 20}) {
    EXPECT_LE(path.occupancy_seconds(bytes), path.seconds(bytes)) << bytes;
    EXPECT_GT(path.occupancy_seconds(bytes), 0.0) << bytes;
  }
  // Small messages: the engine frees after the DMA setup, long before the
  // propagation latency elapses -- that gap is what lets halos pipeline.
  EXPECT_LT(path.occupancy_seconds(64), path.seconds(64));
}

TEST(LinkBetween, SameVendorCapablePairGetsDirectPeerLink) {
  const sim::DeviceSpec& a = sim::spec_by_name("GTX 1080");
  const sim::DeviceSpec& b = sim::spec_by_name("Titan X");
  const sim::LinkPath path = sim::link_between(a, b);
  EXPECT_TRUE(path.peer);
  EXPECT_DOUBLE_EQ(path.bandwidth_gbs,
                   std::min(a.p2p_bandwidth_gbs, b.p2p_bandwidth_gbs));
  EXPECT_DOUBLE_EQ(path.latency_s,
                   std::max(a.p2p_latency_us, b.p2p_latency_us) * 1e-6);
}

TEST(LinkBetween, CrossVendorPairStagesThroughHost) {
  const sim::DeviceSpec& a = sim::spec_by_name("GTX 1080");
  const sim::DeviceSpec& b = sim::spec_by_name("R9 290X");
  const sim::LinkPath path = sim::link_between(a, b);
  EXPECT_FALSE(path.peer);
  // Back-to-back legs: latencies add, bandwidths combine harmonically --
  // the staged path is strictly worse than either host link alone.
  EXPECT_DOUBLE_EQ(
      path.latency_s,
      (a.transfer_latency_us + b.transfer_latency_us) * 1e-6);
  EXPECT_LT(path.bandwidth_gbs,
            std::min(a.transfer_bandwidth_gbs, b.transfer_bandwidth_gbs));
}

TEST(LinkBetween, CpusAreNeverPeers) {
  const sim::LinkPath path = sim::link_between(
      sim::spec_by_name("i7-6700K"), sim::spec_by_name("i5-3550"));
  EXPECT_FALSE(path.peer);  // their "device" memory is host memory
}

TEST(Interconnect, MatchesLinkBetweenForTestbedDevices) {
  const sim::Interconnect& model = sim::testbed_interconnect();
  xcl::Device& src = sim::testbed_device("GTX 1080");
  xcl::Device& dst = sim::testbed_device("Titan X");
  const sim::LinkPath path = sim::link_between(
      sim::spec_by_name("GTX 1080"), sim::spec_by_name("Titan X"));
  constexpr std::size_t kBytes = 1 << 20;
  EXPECT_DOUBLE_EQ(model.peer_seconds(src, dst, kBytes), path.seconds(kBytes));
  EXPECT_DOUBLE_EQ(model.peer_occupancy_seconds(src, dst, kBytes),
                   path.occupancy_seconds(kBytes));
  EXPECT_TRUE(model.peer_direct(src, dst));
  EXPECT_FALSE(model.peer_direct(src, sim::testbed_device("R9 290X")));
}

TEST(PeerCopy, MovesBytesAcrossContexts) {
  xcl::Device& a = sim::testbed_device("GTX 1080");
  xcl::Device& b = sim::testbed_device("Titan X");
  xcl::Context ctx_a(a), ctx_b(b);
  xcl::Queue qa(ctx_a), qb(ctx_b);

  std::vector<std::int32_t> payload(1024);
  std::iota(payload.begin(), payload.end(), 7);
  xcl::Buffer src = xcl::make_buffer<std::int32_t>(ctx_a, payload.size());
  xcl::Buffer dst = xcl::make_buffer<std::int32_t>(ctx_b, payload.size());
  qa.enqueue_write<std::int32_t>(src, payload);
  qa.finish();

  (void)qb.enqueue_peer_copy(src, 0, dst, 0,
                             payload.size() * sizeof(std::int32_t));
  std::vector<std::int32_t> out(payload.size());
  qb.enqueue_read<std::int32_t>(dst, std::span(out));
  const double horizon = qb.finish();
  EXPECT_EQ(out, payload);
  EXPECT_GT(horizon, 0.0);  // the modeled link charged time
}

// ---------------------------------------------------------- partitioner --

TEST(PlanShards, UniformWorkSplitsEvenlyOnIdenticalDevices) {
  const auto devices = fleet({"GTX 1080", "GTX 1080", "GTX 1080", "GTX 1080"});
  const auto shards = harness::plan_shards(
      devices, 64, dwarfs::Lud::internal_profile(512, 1, 1),
      xcl::NDRange(16 * 16, 16 * 16), 1024);
  ASSERT_EQ(shards.size(), 4u);
  std::size_t total = 0;
  std::size_t cursor = 0;
  for (const harness::Shard& s : shards) {
    EXPECT_EQ(s.block_begin, cursor);  // contiguous, in device order
    EXPECT_EQ(s.blocks(), 16u);        // identical devices, uniform blocks
    cursor = s.block_end;
    total += s.blocks();
  }
  EXPECT_EQ(total, 64u);
}

TEST(PlanShards, WeightedSplitEqualisesWorkNotBlockCount) {
  const auto devices = fleet({"GTX 1080", "GTX 1080"});
  // lud-shaped weights: block row r carries ~r units (bottom rows heavy).
  std::vector<double> weights(60);
  for (std::size_t r = 0; r < weights.size(); ++r) {
    weights[r] = 1.0 + static_cast<double>(r);
  }
  const auto shards = harness::plan_shards(
      devices, weights.size(), dwarfs::Lud::internal_profile(960, 1, 1),
      xcl::NDRange(16 * 16, 16 * 16), 1024, weights);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].block_begin, 0u);
  EXPECT_EQ(shards[1].block_end, weights.size());
  // The top stripe must take MORE blocks than the bottom one to carry the
  // same weighted work; an equal-count split would be 30/30.
  EXPECT_GT(shards[0].blocks(), shards[1].blocks());
  const auto work = [&](const harness::Shard& s) {
    return std::accumulate(weights.begin() + static_cast<long>(s.block_begin),
                           weights.begin() + static_cast<long>(s.block_end),
                           0.0);
  };
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);
  // Identical devices: each stripe within one block-row weight of half.
  EXPECT_NEAR(work(shards[0]), total / 2, weights.back());
  EXPECT_NEAR(work(shards[1]), total / 2, weights.back());
}

TEST(PlanShards, EveryDeviceKeepsABlockWhileBlocksLast) {
  const auto devices = fleet({"GTX 1080", "GTX 1080", "GTX 1080", "GTX 1080"});
  const auto shards = harness::plan_shards(
      devices, 5, dwarfs::Lud::internal_profile(512, 1, 1),
      xcl::NDRange(16 * 16, 16 * 16), 1024);
  ASSERT_EQ(shards.size(), 4u);
  std::size_t total = 0;
  for (const harness::Shard& s : shards) {
    EXPECT_GE(s.blocks(), 1u);
    total += s.blocks();
  }
  EXPECT_EQ(total, 5u);
}

// --------------------------------------------------- partitioned dwarfs --

std::uint64_t single_device_nw_signature(std::size_t n) {
  dwarfs::Nw nw;
  nw.configure(n, 10);
  xcl::Device& dev = sim::testbed_device("GTX 1080");
  xcl::Context ctx(dev);
  xcl::Queue q(ctx);
  nw.bind(ctx, q);
  nw.run();
  nw.finish();
  q.finish();
  EXPECT_TRUE(nw.validate().ok);
  const std::uint64_t sig = nw.result_signature();
  nw.unbind();
  return sig;
}

std::uint64_t single_device_lud_signature(std::size_t n) {
  dwarfs::Lud lud;
  lud.configure(n);
  xcl::Device& dev = sim::testbed_device("GTX 1080");
  xcl::Context ctx(dev);
  xcl::Queue q(ctx);
  lud.bind(ctx, q);
  lud.run();
  lud.finish();
  q.finish();
  EXPECT_TRUE(lud.validate().ok);
  const std::uint64_t sig = lud.result_signature();
  lud.unbind();
  return sig;
}

TEST(PartitionedNw, BitIdenticalToSingleDeviceAtEveryScale) {
  constexpr std::size_t kN = 176;  // small preset, 11 block rows
  const std::uint64_t expect = single_device_nw_signature(kN);
  for (std::size_t nd : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    dwarfs::Nw nw;
    nw.configure(kN, 10);
    harness::PartitionOptions opts;
    opts.validate = true;
    const harness::PartitionedResult r = harness::run_partitioned_nw(
        nw, fleet(std::vector<const char*>(nd, "GTX 1080")), opts);
    EXPECT_TRUE(r.validation.ok) << nd << " devices";
    EXPECT_EQ(r.signature, expect) << nd << " devices";
    EXPECT_EQ(r.shards.size(), nd);
    EXPECT_GT(r.compute_makespan_s, 0.0);
    if (nd > 1) {
      EXPECT_GT(r.halo_transfers, 0u);
    }
  }
}

TEST(PartitionedNw, SpanDispatchPreservesTheSignature) {
  constexpr std::size_t kN = 176;
  const std::uint64_t expect = single_device_nw_signature(kN);
  dwarfs::Nw nw;
  nw.configure(kN, 10);
  harness::PartitionOptions opts;
  opts.validate = true;
  opts.dispatch = xcl::DispatchMode::kSpan;
  const harness::PartitionedResult r = harness::run_partitioned_nw(
      nw, fleet({"GTX 1080", "GTX 1080"}), opts);
  EXPECT_TRUE(r.validation.ok);
  EXPECT_EQ(r.signature, expect);
}

TEST(PartitionedLud, BitIdenticalToSingleDeviceAtEveryScale) {
  constexpr std::size_t kN = 240;  // small preset, 15 block rows
  const std::uint64_t expect = single_device_lud_signature(kN);
  for (std::size_t nd : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    dwarfs::Lud lud;
    lud.configure(kN);
    harness::PartitionOptions opts;
    opts.validate = true;
    const harness::PartitionedResult r = harness::run_partitioned_lud(
        lud, fleet(std::vector<const char*>(nd, "GTX 1080")), opts);
    EXPECT_TRUE(r.validation.ok) << nd << " devices";
    EXPECT_EQ(r.signature, expect) << nd << " devices";
    EXPECT_EQ(r.shards.size(), nd);
    EXPECT_GT(r.compute_makespan_s, 0.0);
    if (nd > 1) {
      EXPECT_GT(r.halo_transfers, 0u);
    }
  }
}

TEST(PartitionedLud, HeterogeneousFleetStillBitIdentical) {
  // Cross-vendor fleet: every stripe boundary is a host-staged link and the
  // partitioner sees three different device rates -- the math must not care.
  constexpr std::size_t kN = 240;
  const std::uint64_t expect = single_device_lud_signature(kN);
  dwarfs::Lud lud;
  lud.configure(kN);
  harness::PartitionOptions opts;
  opts.validate = true;
  const harness::PartitionedResult r = harness::run_partitioned_lud(
      lud, fleet({"GTX 1080", "R9 290X", "i7-6700K"}), opts);
  EXPECT_TRUE(r.validation.ok);
  EXPECT_EQ(r.signature, expect);
  EXPECT_EQ(r.shards.size(), 3u);
}

TEST(PartitionedNw, HeterogeneousFleetStillBitIdentical) {
  constexpr std::size_t kN = 176;
  const std::uint64_t expect = single_device_nw_signature(kN);
  dwarfs::Nw nw;
  nw.configure(kN, 10);
  harness::PartitionOptions opts;
  opts.validate = true;
  const harness::PartitionedResult r = harness::run_partitioned_nw(
      nw, fleet({"Titan X", "R9 290X"}), opts);
  EXPECT_TRUE(r.validation.ok);
  EXPECT_EQ(r.signature, expect);
}

// ------------------------------------------------------------------ b_eff --

TEST(Beff, HostLinkBandwidthRisesToSaturation) {
  dwarfs::Beff beff;
  beff.configure(std::size_t{1} << 20);
  xcl::Device& dev = sim::testbed_device("GTX 1080");
  xcl::Context ctx(dev);
  xcl::Queue q(ctx);
  beff.bind(ctx, q);
  beff.run();
  beff.finish();
  const std::vector<dwarfs::BeffPoint>& pts = beff.points();
  ASSERT_GE(pts.size(), 3u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i].bytes, pts[i - 1].bytes);
    // latency + size/bandwidth makes effective GB/s monotone in size.
    EXPECT_GE(pts[i].write_gbs, pts[i - 1].write_gbs);
    EXPECT_GE(pts[i].read_gbs, pts[i - 1].read_gbs);
  }
  // Latency-bound small messages vs saturated large ones.
  EXPECT_GT(pts.back().write_gbs, 2.0 * pts.front().write_gbs);
  // Never above the modeled host-link rate.
  const double peak = sim::spec_by_name("GTX 1080").transfer_bandwidth_gbs;
  EXPECT_LE(pts.back().write_gbs, peak + 1e-9);
  beff.unbind();
}

TEST(RingSweep, AggregateBandwidthSaturatesAboveOneLink) {
  const std::vector<harness::RingPoint> ring = harness::ring_sweep(
      fleet({"GTX 1080", "GTX 1080", "GTX 1080", "GTX 1080"}),
      std::size_t{1} << 20);
  ASSERT_GE(ring.size(), 3u);
  for (std::size_t i = 1; i < ring.size(); ++i) {
    EXPECT_GE(ring[i].ring_gbs, ring[i - 1].ring_gbs);
  }
  // Four concurrent hops: the aggregate must beat a single peer link.
  const double one_link = sim::spec_by_name("GTX 1080").p2p_bandwidth_gbs;
  EXPECT_GT(ring.back().ring_gbs, one_link);
}

// -------------------------------------------------------------------- cli --

TEST(CliDevices, ParsesCommaSeparatedListAndResolves) {
  const char* argv[] = {"prog", "--devices", "GTX 1080,Titan X"};
  const harness::CliOptions o = harness::parse_cli(3, argv);
  ASSERT_EQ(o.devices.size(), 2u);
  EXPECT_EQ(o.devices[0], "GTX 1080");
  EXPECT_EQ(o.devices[1], "Titan X");
  const std::vector<xcl::Device*> resolved = o.resolve_devices();
  ASSERT_EQ(resolved.size(), 2u);
  EXPECT_EQ(resolved[0]->name(), "GTX 1080");
  EXPECT_EQ(resolved[1]->name(), "Titan X");
}

TEST(CliDevices, UnknownNameIsAHardError) {
  const char* argv[] = {"prog", "--devices", "GTX 1080,Voodoo 2"};
  const harness::CliOptions o = harness::parse_cli(3, argv);
  EXPECT_THROW((void)o.resolve_devices(), std::invalid_argument);
}

TEST(CliDevices, EmptyListElementIsMalformed) {
  const char* argv[] = {"prog", "--devices", "GTX 1080,,Titan X"};
  EXPECT_THROW((void)harness::parse_cli(3, argv), std::invalid_argument);
}

TEST(CliDevices, AbsentFlagFallsBackToSingleResolvedDevice) {
  const char* argv[] = {"prog", "--device-name", "GTX 1080"};
  const harness::CliOptions o = harness::parse_cli(3, argv);
  const std::vector<xcl::Device*> resolved = o.resolve_devices();
  ASSERT_EQ(resolved.size(), 1u);
  EXPECT_EQ(resolved[0]->name(), "GTX 1080");
}

}  // namespace
