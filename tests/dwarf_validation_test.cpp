// Cross-benchmark invariants: every dwarf registers, reports a footprint
// that matches the device allocator's accounting (the paper's "verified by
// printing the sum of the size of all memory allocated on the device"),
// fits its §4.4 size class, and produces results matching its serial
// reference through the full xcl pipeline.
#include <gtest/gtest.h>

#include "dwarfs/kmeans/kmeans.hpp"
#include "dwarfs/registry.hpp"
#include "harness/problem_size.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace eod::dwarfs {
namespace {

using harness::SizeClassBounds;

xcl::Device& host_device() { return sim::testbed_device("i7-6700K"); }

class AllDwarfs : public ::testing::TestWithParam<std::string> {};

TEST_P(AllDwarfs, RegistryMetadata) {
  auto d = create_dwarf(GetParam());
  EXPECT_EQ(d->name(), GetParam());
  EXPECT_FALSE(d->berkeley_dwarf().empty());
  EXPECT_FALSE(d->supported_sizes().empty());
  for (const ProblemSize s : d->supported_sizes()) {
    EXPECT_FALSE(d->scale_parameter(s).empty());
    EXPECT_GT(d->footprint_bytes(s), 0u);
  }
}

TEST_P(AllDwarfs, FootprintMatchesDeviceAllocator) {
  auto d = create_dwarf(GetParam());
  const ProblemSize size = d->supported_sizes().front();
  d->setup(size);
  xcl::Context ctx(host_device());
  xcl::Queue q(ctx);
  d->bind(ctx, q);
  // The paper's check: the footprint equation equals the sum of all device
  // allocations.  nqueens/hmm include small control buffers, so allow a
  // 5% slack; the 8 hierarchy benchmarks must match within 1 KiB.
  const double got = static_cast<double>(ctx.allocated_bytes());
  const double want = static_cast<double>(d->footprint_bytes(size));
  EXPECT_NEAR(got, want, std::max(1024.0, want * 0.05))
      << GetParam() << " allocator=" << got << " equation=" << want;
  d->unbind();
  EXPECT_EQ(ctx.allocated_bytes(), 0u);
}

TEST_P(AllDwarfs, ValidatesAgainstSerialReferenceAtSmallestSize) {
  auto d = create_dwarf(GetParam());
  const ProblemSize size = d->supported_sizes().front();
  d->setup(size);
  xcl::Context ctx(host_device());
  xcl::Queue q(ctx);
  d->bind(ctx, q);
  d->run();
  d->finish();
  const Validation v = d->validate();
  EXPECT_TRUE(v.ok) << GetParam() << ": " << v.detail;
  d->unbind();
}

TEST_P(AllDwarfs, RunIsRepeatableAfterRebind) {
  // bind/run/finish on one device, then again on another device: results
  // must stay valid (the suite's portability claim in miniature).
  auto d = create_dwarf(GetParam());
  d->setup(d->supported_sizes().front());
  for (const char* dev : {"i7-6700K", "GTX 1080"}) {
    xcl::Context ctx(sim::testbed_device(dev));
    xcl::Queue q(ctx);
    d->bind(ctx, q);
    d->run();
    d->finish();
    const Validation v = d->validate();
    EXPECT_TRUE(v.ok) << GetParam() << " on " << dev << ": " << v.detail;
    d->unbind();
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, AllDwarfs,
                         ::testing::ValuesIn(benchmark_names()),
                         [](const auto& ti) { return ti.param; });

// ---- §4.4 size-class bounds on the Skylake hierarchy ----
//
// The eight benchmarks with scalable datasets must land in the intended
// level; gem/nqueens/hmm are the paper's documented exceptions ("we were
// unable to generate different problem sizes to properly exercise the
// memory hierarchy").  Two published values deviate deliberately and are
// checked as such: crc's large input (4 MiB) still fits the Skylake L3,
// and neither kmeans nor csr reaches the aspirational 4x-L3 mark.
class SizeClasses : public ::testing::TestWithParam<std::string> {};

TEST_P(SizeClasses, FitsIntendedCacheLevel) {
  const SizeClassBounds bounds =
      SizeClassBounds::from_device(sim::skylake());
  auto d = create_dwarf(GetParam());
  EXPECT_LE(d->footprint_bytes(ProblemSize::kTiny), bounds.l1_bytes)
      << "tiny must fit L1";
  EXPECT_LE(d->footprint_bytes(ProblemSize::kSmall), bounds.l2_bytes)
      << "small must fit L2";
  EXPECT_LE(d->footprint_bytes(ProblemSize::kMedium), bounds.l3_bytes)
      << "medium must fit L3";
  if (GetParam() == "crc") {
    EXPECT_GT(d->footprint_bytes(ProblemSize::kLarge), bounds.l2_bytes);
  } else {
    EXPECT_GT(d->footprint_bytes(ProblemSize::kLarge), bounds.l3_bytes)
        << "large must spill out of the last-level cache";
  }
}

INSTANTIATE_TEST_SUITE_P(HierarchyBenchmarks, SizeClasses,
                         ::testing::Values("kmeans", "lud", "csr", "fft",
                                           "dwt", "srad", "crc", "nw"),
                         [](const auto& ti) { return ti.param; });

TEST(SizeMethodology, SolverReproducesFftTable2Row) {
  // fft footprint = 2 * N * 8 bytes with N a power of two; the solver must
  // land exactly on the paper's 2048 / 16384 / 524288 parameters (largest
  // power of two fitting each level).
  const SizeClassBounds bounds =
      SizeClassBounds::from_device(sim::skylake());
  const auto footprint = [](std::size_t log2n) {
    return (std::size_t{1} << log2n) * 2 * 8;
  };
  EXPECT_EQ(std::size_t{1} << harness::solve_scale_parameter(
                bounds, ProblemSize::kTiny, footprint, 1, 30),
            2048u);
  EXPECT_EQ(std::size_t{1} << harness::solve_scale_parameter(
                bounds, ProblemSize::kSmall, footprint, 1, 30),
            16384u);
  EXPECT_EQ(std::size_t{1} << harness::solve_scale_parameter(
                bounds, ProblemSize::kMedium, footprint, 1, 30),
            524288u);
}

TEST(SizeMethodology, SolverFindsLargeThreshold) {
  const SizeClassBounds bounds =
      SizeClassBounds::from_device(sim::skylake());
  const auto footprint = [](std::size_t n) { return n * 4; };
  const std::size_t n =
      harness::solve_scale_parameter(bounds, ProblemSize::kLarge, footprint);
  // 4 x 8 MiB / 4 B = 8 Mi elements.
  EXPECT_EQ(n, 4 * bounds.l3_bytes / 4);
  EXPECT_TRUE(harness::footprint_fits_class(bounds, ProblemSize::kLarge,
                                            footprint(n)));
  EXPECT_FALSE(harness::footprint_fits_class(bounds, ProblemSize::kLarge,
                                             footprint(n - 1)));
}

TEST(SizeMethodology, KmeansEquationMatchesPaperExample) {
  // §4.4.1 computes ~31.5 KiB for 256 points x 30 features via Equation 1;
  // with the Table 3 value of 26 features the tiny class stays under L1.
  EXPECT_NEAR(
      static_cast<double>(KMeans::working_set_bytes(256, 30, 5)) / 1024.0,
      31.5, 0.3);
  EXPECT_LE(KMeans::working_set_bytes(256, 26, 5), 32u * 1024u);
}

TEST(SizeMethodology, Table2HasAllBenchmarks) {
  const auto rows = harness::table2();
  EXPECT_EQ(rows.size(), benchmark_names().size());
  for (const auto& row : rows) {
    EXPECT_EQ(row.scale.size(), row.sizes.size());
    EXPECT_EQ(row.footprint.size(), row.sizes.size());
  }
}

}  // namespace
}  // namespace eod::dwarfs
