// Event-dependency DAG suite (DESIGN.md §12): wait-list validation, diamond
// dependencies, cross-queue waits, in-order/out-of-order result equivalence
// for the dependency-converted dwarfs, completion-order event reporting, and
// a race-sensitive stress of N independent commands (run under tsan via the
// `sanitize` ctest label).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"
#include "dwarfs/registry.hpp"
#include "sim/replay_cache.hpp"
#include "sim/testbed.hpp"
#include "xcl/buffer.hpp"
#include "xcl/executor.hpp"
#include "xcl/queue.hpp"

namespace eod::xcl {
namespace {

Device& gpu() { return sim::testbed_device("GTX 1080"); }
Device& cpu() { return sim::testbed_device("i7-6700K"); }

WorkloadProfile small_profile() {
  WorkloadProfile p;
  p.flops = 1000;
  p.bytes_read = 4096;
  p.bytes_written = 4096;
  p.working_set_bytes = 8192;
  return p;
}

TEST(QueueDag, ForgedForwardEventIsRejected) {
  // Real ids are allocated in enqueue order process-wide, so a wait list can
  // only point backwards; an id from the future can only be forged, and the
  // graph stays acyclic by rejecting it (kInvalidEventWaitList, the
  // CL_INVALID_EVENT_WAIT_LIST analogue).
  Context ctx(gpu());
  Queue q(ctx, QueueMode::kOutOfOrder);
  Kernel k("noop", [](WorkItem&) {});

  Event forged;
  forged.id = ~std::uint64_t{0} >> 1;  // far beyond any allocated id
  forged.queue = &q;
  const Event wait[] = {forged};
  try {
    q.enqueue(k, NDRange(64, 64), small_profile(), wait);
    FAIL() << "forward-pointing wait list accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInvalidEventWaitList);
  }

  Event null_event;  // id 0: a default-constructed (never enqueued) event
  const Event null_wait[] = {null_event};
  try {
    q.enqueue(k, NDRange(64, 64), small_profile(), null_wait);
    FAIL() << "null event in wait list accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::kInvalidEventWaitList);
  }
}

TEST(QueueDag, DiamondDependenciesExecuteInTopologicalOrder) {
  // A -> {B, C} -> D.  The scheduler must run A before either middle
  // command and D last, and the modeled placement must show the same
  // partial order.
  Context ctx(gpu());
  Queue q(ctx, QueueMode::kOutOfOrder);

  std::atomic<int> seq{0};
  std::atomic<int> stamp_a{-1}, stamp_b{-1}, stamp_c{-1}, stamp_d{-1};
  auto stamping = [&seq](std::atomic<int>& stamp) {
    return [&seq, &stamp](WorkItem&) {
      // lint: relaxed-ok(stamps are read only after the blocking drain)
      stamp.store(seq.fetch_add(1), std::memory_order_relaxed);
    };
  };
  Kernel ka("a", stamping(stamp_a));
  Kernel kb("b", stamping(stamp_b));
  Kernel kc("c", stamping(stamp_c));
  Kernel kd("d", stamping(stamp_d));

  const NDRange r(1, 1);
  const Event a = q.enqueue(ka, r, small_profile(), kNoWait);
  const Event adep[] = {a};
  const Event b = q.enqueue(kb, r, small_profile(), adep);
  const Event c = q.enqueue(kc, r, small_profile(), adep);
  const Event bc[] = {b, c};
  const Event d = q.enqueue(kd, r, small_profile(), bc);
  q.finish();

  EXPECT_LT(stamp_a.load(), stamp_b.load());
  EXPECT_LT(stamp_a.load(), stamp_c.load());
  EXPECT_LT(stamp_b.load(), stamp_d.load());
  EXPECT_LT(stamp_c.load(), stamp_d.load());

  // Modeled timeline respects the same edges.
  EXPECT_GE(b.modeled_start_s, a.modeled_end_s);
  EXPECT_GE(c.modeled_start_s, a.modeled_end_s);
  EXPECT_GE(d.modeled_start_s, std::max(b.modeled_end_s, c.modeled_end_s));
}

TEST(QueueDag, CrossQueueWaitSynchronisesOnTheHost) {
  // A wait on another queue's event is satisfied on the host: the foreign
  // command's closure is drained before this command records, so its
  // functional effects are visible to the dependent kernel.
  Context ctx(gpu());
  Queue qa(ctx, QueueMode::kOutOfOrder);
  Queue qb(ctx, QueueMode::kOutOfOrder);
  Buffer buf = make_buffer<int>(ctx, 64);
  auto view = buf.view<int>();

  Kernel writer("writer", [view](WorkItem& it) {
    view[it.global_id(0)] = 7;
  });
  const Event w = qa.enqueue(writer, NDRange(64, 64), small_profile(),
                             kNoWait);

  std::vector<int> seen(64, 0);
  int* seen_p = seen.data();
  Kernel reader("reader", [view, seen_p](WorkItem& it) {
    seen_p[it.global_id(0)] = view[it.global_id(0)];
  });
  const Event wdep[] = {w};
  qb.enqueue(reader, NDRange(64, 64), small_profile(), wdep);
  // Enqueuing on qb already host-drained qa's pending closure.
  EXPECT_EQ(view[0], 7);
  qb.finish();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(seen[i], 7);
}

TEST(QueueDag, EventsReportCompletionOrderKeyedByEnqueueIndex) {
  // An independent short transfer enqueued *after* a long kernel completes
  // first on the modeled timeline; events() reports that completion order
  // while enqueue_index preserves program order.
  Context ctx(gpu());
  Queue q(ctx, QueueMode::kOutOfOrder);
  Buffer buf = make_buffer<float>(ctx, 128);
  std::vector<float> host(128, 1.0f);

  WorkloadProfile heavy = small_profile();
  heavy.flops = 1e9;  // ~0.1 ms on the modeled GTX 1080
  Kernel k("long_kernel", [](WorkItem&) {});
  q.enqueue(k, NDRange(256, 64), heavy, kNoWait);
  q.enqueue_write<float>(buf, std::span<const float>(host), kNoWait);
  q.finish();

  ASSERT_EQ(q.events().size(), 2u);
  EXPECT_EQ(q.events()[0].kind, CommandKind::kWrite);
  EXPECT_EQ(q.events()[0].enqueue_index, 1u);
  EXPECT_EQ(q.events()[1].kind, CommandKind::kKernel);
  EXPECT_EQ(q.events()[1].enqueue_index, 0u);
  EXPECT_LT(q.events()[0].modeled_end_s, q.events()[1].modeled_end_s);
}

// Race-sensitive: N fully independent commands all become ready in the same
// scheduler wave and fan out over the ThreadPool together.  Run under
// -DEOD_SANITIZE=thread via the `sanitize` label; functionally it pins that
// every command executed exactly once on disjoint data.
TEST(QueueDag, IndependentCommandStressExecutesEveryCommandOnce) {
  constexpr std::size_t kCommands = 64;
  constexpr std::size_t kItems = 64;
  Context ctx(cpu());
  Queue q(ctx, QueueMode::kOutOfOrder);
  std::vector<int> out(kCommands * kItems, 0);
  int* out_p = out.data();

  for (std::size_t c = 0; c < kCommands; ++c) {
    Kernel k("slot_" + std::to_string(c), [out_p, c](WorkItem& it) {
      out_p[c * kItems + it.global_id(0)] += 1;
    });
    q.enqueue(k, NDRange(kItems, kItems), small_profile(), kNoWait);
  }
  q.finish();
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 1) << "slot " << i;
  }
}

// ---- converted dwarfs: out-of-order == in-order, bit for bit -------------

struct ModeOutcome {
  bool ok = false;
  std::uint64_t signature = 0;
  std::optional<sim::TraceKey> trace;
  std::optional<sim::HierarchyCounters> warm;
};

constexpr std::size_t kMaxReplayAccesses = 20'000'000;

ModeOutcome run_dwarf(const char* name, dwarfs::ProblemSize size,
                      QueueMode mode) {
  auto dwarf = dwarfs::create_dwarf(name);
  dwarf->setup(size);
  Context ctx(cpu());
  Queue q(ctx, mode);
  dwarf->bind(ctx, q);
  dwarf->run();
  dwarf->finish();

  ModeOutcome out;
  out.ok = dwarf->validate().ok;
  out.signature = dwarf->result_signature();
  const std::size_t hint = dwarf->trace_size_hint();
  if (hint > 0 && hint <= kMaxReplayAccesses) {
    auto gen = [&dwarf](sim::TraceWriter& w) { dwarf->stream_trace(w); };
    out.trace = sim::hash_trace(gen);
    out.warm = sim::memoized_replay(gen, sim::spec_by_name("i7-6700K"),
                                    std::string(name) + "/dag-eq")
                   .warm;
  }
  dwarf->unbind();
  return out;
}

struct DagCase {
  const char* name;
  dwarfs::ProblemSize size;
};

// The three dwarfs converted to dependency-expressed enqueues: kmeans
// (double-buffered halves), srad (halo-exchanged bands), gem (tiled
// write-back).  gem is O(vertices x atoms); tiny keeps the cell fast.
const DagCase kDagCases[] = {
    {"kmeans", dwarfs::ProblemSize::kSmall},
    {"srad", dwarfs::ProblemSize::kSmall},
    {"gem", dwarfs::ProblemSize::kTiny},
};

class QueueDagDwarfs : public ::testing::TestWithParam<DagCase> {};

TEST_P(QueueDagDwarfs, OutOfOrderMatchesInOrderBitExactly) {
  const DagCase& c = GetParam();
  const ModeOutcome in = run_dwarf(c.name, c.size, QueueMode::kInOrder);
  const ModeOutcome ooo = run_dwarf(c.name, c.size, QueueMode::kOutOfOrder);

  EXPECT_TRUE(in.ok);
  EXPECT_TRUE(ooo.ok);
  ASSERT_NE(in.signature, 0u);
  EXPECT_EQ(ooo.signature, in.signature);

  // The memory trace — and so every replayed cache counter — is a function
  // of the benchmark's data, not of the queue's execution order.
  ASSERT_EQ(in.trace.has_value(), ooo.trace.has_value());
  if (in.trace.has_value()) {
    EXPECT_EQ(in.trace->content_hash, ooo.trace->content_hash);
    EXPECT_EQ(in.trace->accesses, ooo.trace->accesses);
    EXPECT_EQ(*in.warm, *ooo.warm);
  }
}

INSTANTIATE_TEST_SUITE_P(ConvertedDwarfs, QueueDagDwarfs,
                         ::testing::ValuesIn(kDagCases),
                         [](const auto& param_info) {
                           return std::string(param_info.param.name);
                         });

}  // namespace
}  // namespace eod::xcl
