// Tests for the eod_prof analysis layer (DESIGN.md §16): critical path and
// slack over hand-built DAG fixtures, makespan attribution, lane
// utilization, overlap efficiency against a real out-of-order queue run,
// roofline placement for the full dwarf suite, and the trajectory
// regression gate.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "dwarfs/registry.hpp"
#include "obs/analysis/regress.hpp"
#include "obs/analysis/roofline.hpp"
#include "obs/analysis/schedule.hpp"
#include "obs/analysis/trace_model.hpp"
#include "obs/trace.hpp"
#include "sim/testbed.hpp"
#include "xcl/buffer.hpp"
#include "xcl/queue.hpp"

namespace eod::prof {
namespace {

// ---- synthetic trace fixtures --------------------------------------------
//
// Each fixture is a Chrome trace JSON string in exactly the shape
// obs::write_chrome_trace emits for device-command spans, so the parser is
// exercised on the production format (ns rendered as µs with three
// decimals).

struct Cmd {
  std::uint64_t id = 0;
  std::uint32_t queue = 1;
  std::uint32_t tid = 10;
  const char* name = "k";
  const char* cat = "device:kernel";
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t busy_ns = 0;  // 0 = fully occupying, like the recorder
  std::uint64_t bytes = 0;
  bool barrier = false;
  std::vector<std::uint64_t> deps;
};

std::string fixture_trace(const std::vector<Cmd>& cmds) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Cmd& c : cmds) {
    char buf[512];
    std::string deps;
    for (std::size_t i = 0; i < c.deps.size(); ++i) {
      deps += (i != 0 ? "," : "") + std::to_string(c.deps[i]);
    }
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":2,"
        "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"energy_j\":0,"
        "\"cmd\":%llu,\"q\":%u,\"barrier\":%u,\"busy_ns\":%llu,"
        "\"bytes\":%llu,\"deps\":[%s]}}",
        first ? "" : ",", c.name, c.cat, c.tid,
        static_cast<double>(c.start_ns) / 1e3,
        static_cast<double>(c.dur_ns) / 1e3,
        static_cast<unsigned long long>(c.id), c.queue, c.barrier ? 1u : 0u,
        static_cast<unsigned long long>(c.busy_ns),
        static_cast<unsigned long long>(c.bytes), deps.c_str());
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

ScheduleProfile analyze_fixture(const std::vector<Cmd>& cmds,
                                const ScheduleOptions& options = {}) {
  return analyze_schedule(parse_trace(parse_json(fixture_trace(cmds))),
                          options);
}

const SlackRow& slack_of(const ScheduleProfile& p, std::uint64_t id) {
  for (const SlackRow& r : p.slack) {
    if (r.id == id) return r;
  }
  ADD_FAILURE() << "no slack row for command " << id;
  static const SlackRow missing;
  return missing;
}

std::vector<std::uint64_t> path_ids(const ScheduleProfile& p) {
  std::vector<std::uint64_t> ids;
  ids.reserve(p.critical_path.size());
  for (const PathStep& s : p.critical_path) ids.push_back(s.id);
  return ids;
}

// The attribution identity every profile must satisfy: the critical-path
// compute/transfer/idle charges telescope to exactly the makespan.
void expect_attribution_identity(const ScheduleProfile& p) {
  EXPECT_EQ(p.path_compute_ns + p.path_transfer_ns + p.path_idle_ns,
            p.makespan_ns);
}

// ---- critical path / slack over hand-built DAGs --------------------------

TEST(Schedule, DiamondCriticalPathAndSlack) {
  // A feeds B (long) and C (short); D joins both.  Distinct lanes so only
  // the explicit deps constrain.
  const ScheduleProfile p = analyze_fixture({
      {1, 1, 10, "A", "device:kernel", 0, 100, 0, 0, false, {}},
      {2, 1, 11, "B", "device:kernel", 100, 200, 0, 0, false, {1}},
      {3, 1, 12, "C", "device:kernel", 100, 100, 0, 0, false, {1}},
      {4, 1, 13, "D", "device:kernel", 300, 100, 0, 0, false, {2, 3}},
  });
  EXPECT_EQ(p.makespan_ns, 400u);
  EXPECT_EQ(p.serialized_ns, 500u);
  EXPECT_DOUBLE_EQ(p.overlap_efficiency, 1.25);
  EXPECT_EQ(path_ids(p), (std::vector<std::uint64_t>{1, 2, 4}));
  for (const PathStep& s : p.critical_path) EXPECT_EQ(s.wait_ns, 0u);
  EXPECT_EQ(slack_of(p, 1).slack_ns, 0u);
  EXPECT_EQ(slack_of(p, 2).slack_ns, 0u);
  EXPECT_EQ(slack_of(p, 3).slack_ns, 100u);  // could slip to D's start
  EXPECT_EQ(slack_of(p, 4).slack_ns, 0u);
  EXPECT_FALSE(slack_of(p, 3).critical);
  EXPECT_TRUE(slack_of(p, 2).critical);
  EXPECT_EQ(p.path_compute_ns, 400u);
  EXPECT_EQ(p.path_idle_ns, 0u);
  expect_attribution_identity(p);
}

TEST(Schedule, CrossQueueWaitAndBarrierOrdering) {
  // Queue 1 is in-order (barrier spans); queue 2's kernel explicitly waits
  // on queue 1's first command across the queue boundary.
  const ScheduleProfile p = analyze_fixture({
      {1, 1, 10, "A", "device:kernel", 0, 200, 0, 0, true, {}},
      {2, 2, 11, "B", "device:kernel", 200, 100, 0, 0, true, {1}},
      {3, 1, 10, "C", "device:kernel", 200, 60, 0, 0, true, {}},
  });
  EXPECT_EQ(p.makespan_ns, 300u);
  EXPECT_EQ(p.serialized_ns, 360u);
  // The barrier edge (not an explicit dep) is what holds C at A's end.
  EXPECT_EQ(path_ids(p), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(slack_of(p, 1).slack_ns, 0u);
  EXPECT_EQ(slack_of(p, 2).slack_ns, 0u);
  EXPECT_EQ(slack_of(p, 3).slack_ns, 40u);
  expect_attribution_identity(p);
}

TEST(Schedule, KmeansDoubleBufferedHalves) {
  // The kmeans double-buffering shape: two input halves streamed on the
  // transfer lane while the kernel lane chews the previous half, results
  // read back behind each kernel.  Lane order serializes same-lane
  // commands; explicit deps stitch the halves together.
  const std::uint64_t kb = 4096;
  const ScheduleProfile p = analyze_fixture({
      {1, 1, 11, "write:h0", "device:transfer", 0, 100, 0, kb, false, {}},
      {2, 1, 11, "write:h1", "device:transfer", 100, 100, 0, kb, false, {}},
      {3, 1, 10, "kmeans:h0", "device:kernel", 100, 200, 0, 0, false, {1}},
      {4, 1, 10, "kmeans:h1", "device:kernel", 300, 200, 0, 0, false, {2}},
      {5, 1, 11, "read:h0", "device:transfer", 300, 100, 0, kb, false, {3}},
      {6, 1, 11, "read:h1", "device:transfer", 500, 100, 0, kb, false, {4}},
  });
  EXPECT_EQ(p.makespan_ns, 600u);
  EXPECT_EQ(p.serialized_ns, 800u);
  EXPECT_NEAR(p.overlap_efficiency, 800.0 / 600.0, 1e-12);
  EXPECT_EQ(path_ids(p), (std::vector<std::uint64_t>{1, 3, 4, 6}));
  EXPECT_EQ(slack_of(p, 2).slack_ns, 100u);
  EXPECT_EQ(slack_of(p, 5).slack_ns, 100u);
  EXPECT_EQ(p.path_compute_ns, 400u);
  EXPECT_EQ(p.path_transfer_ns, 200u);
  EXPECT_EQ(p.path_idle_ns, 0u);
  expect_attribution_identity(p);

  // Lane utilization: the kernel lane is busy 400/600, the transfer lane
  // 400/600, and the transfer lane moved all four payloads.
  ASSERT_EQ(p.lanes.size(), 2u);
  for (const LaneUtilization& l : p.lanes) {
    if (l.tid == 10) {
      EXPECT_EQ(l.busy_ns, 400u);
      EXPECT_EQ(l.bytes, 0u);
    } else {
      EXPECT_EQ(l.busy_ns, 400u);
      EXPECT_EQ(l.bytes, 4 * kb);
    }
    EXPECT_NEAR(l.busy_fraction, 400.0 / 600.0, 1e-12);
  }
}

TEST(Schedule, PipelinedTransferFreesTheLaneAtBusyEnd) {
  // A link transfer with busy < dur (propagation tail) lets the next
  // same-lane command start at busy_end; the DAG must use busy_end for the
  // lane edge but full end for the dependency edge.
  const ScheduleProfile p = analyze_fixture({
      {1, 1, 11, "w0", "device:transfer", 0, 100, 40, 1024, false, {}},
      {2, 1, 11, "w1", "device:transfer", 40, 100, 0, 1024, false, {}},
      {3, 1, 10, "k", "device:kernel", 140, 60, 0, 0, false, {2}},
  });
  EXPECT_EQ(p.makespan_ns, 200u);
  EXPECT_EQ(path_ids(p), (std::vector<std::uint64_t>{1, 2, 3}));
  for (const PathStep& s : p.critical_path) EXPECT_EQ(s.wait_ns, 0u);
  EXPECT_EQ(p.path_idle_ns, 0u);
  expect_attribution_identity(p);
}

TEST(Schedule, UnexplainedGapBecomesIdle) {
  // B waits on A but starts 50 ns after A ends (host enqueue latency): the
  // gap must surface as path idle, never be silently absorbed.
  const ScheduleProfile p = analyze_fixture({
      {1, 1, 10, "A", "device:kernel", 0, 100, 0, 0, false, {}},
      {2, 1, 10, "B", "device:kernel", 150, 100, 0, 0, false, {1}},
  });
  EXPECT_EQ(p.makespan_ns, 250u);
  ASSERT_EQ(p.critical_path.size(), 2u);
  EXPECT_EQ(p.critical_path[0].wait_ns, 0u);
  EXPECT_EQ(p.critical_path[1].wait_ns, 50u);
  EXPECT_EQ(p.path_idle_ns, 50u);
  EXPECT_EQ(p.path_compute_ns, 200u);
  expect_attribution_identity(p);
}

TEST(Schedule, EmptyTraceYieldsZeroProfile) {
  const ScheduleProfile p = analyze_fixture({});
  EXPECT_EQ(p.makespan_ns, 0u);
  EXPECT_EQ(p.serialized_ns, 0u);
  EXPECT_TRUE(p.critical_path.empty());
  EXPECT_TRUE(p.lanes.empty());
}

TEST(Schedule, RendersTextTsvAndJson) {
  const ScheduleProfile p = analyze_fixture({
      {1, 1, 10, "A", "device:kernel", 0, 100, 0, 0, false, {}},
      {2, 1, 10, "B", "device:kernel", 100, 100, 0, 0, false, {1}},
  });
  const std::string text = p.to_text();
  EXPECT_NE(text.find("critical path"), std::string::npos);
  const std::string tsv = p.to_tsv();
  EXPECT_NE(tsv.find("slack_ns"), std::string::npos);
  const std::string json = p.to_json();
  // Parse back with the artifact parser: the report must be well-formed.
  const Json j = parse_json(json);
  EXPECT_EQ(j.at("makespan_ns").number, 200.0);
}

// ---- trace parse-back guards ---------------------------------------------

TEST(TraceModel, RoundTripsExactNanosecondTimes) {
  const TraceDoc doc = parse_trace(parse_json(fixture_trace({
      {7, 3, 12, "k", "device:kernel", 1234567891, 987654321, 0, 0, true,
       {3, 5}},
  })));
  ASSERT_EQ(doc.commands.size(), 1u);
  const TraceCommand& c = doc.commands.front();
  EXPECT_EQ(c.id, 7u);
  EXPECT_EQ(c.queue, 3u);
  EXPECT_EQ(c.start_ns, 1234567891u);
  EXPECT_EQ(c.dur_ns, 987654321u);
  EXPECT_TRUE(c.barrier);
  EXPECT_EQ(c.deps, (std::vector<std::uint64_t>{3, 5}));
}

TEST(TraceModel, RejectsDuplicateAndZeroCommandIds) {
  EXPECT_THROW((void)parse_trace(parse_json(fixture_trace({
                   {1, 1, 10, "a", "device:kernel", 0, 1, 0, 0, false, {}},
                   {1, 1, 10, "b", "device:kernel", 1, 1, 0, 0, false, {}},
               }))),
               std::runtime_error);
  EXPECT_THROW((void)parse_trace(parse_json(fixture_trace({
                   {0, 1, 10, "a", "device:kernel", 0, 1, 0, 0, false, {}},
               }))),
               std::runtime_error);
}

// ---- overlap efficiency vs a real out-of-order run -----------------------

// The micro_overlap pipeline in miniature: chunked write -> kernel -> read
// chains, enqueued breadth-first.  The in-order modeled span is exactly the
// serialized sum, so the profile's overlap efficiency (serialized /
// makespan, from the trace alone) must match the measured in-order /
// out-of-order span ratio.
constexpr std::size_t kChunks = 4;
constexpr std::size_t kFloats = std::size_t{1} << 18;

// Kernel cost calibrated to a chunk's round-trip transfer cost (the
// balanced point where overlap pays most), exactly like micro_overlap: the
// device model is a roofline, so iterate the flops rescale to a fixed
// point.
xcl::WorkloadProfile balanced_profile(const xcl::Device& device) {
  const auto chunk_bytes = static_cast<std::size_t>(kFloats * sizeof(float));
  const double target_s =
      device.model().transfer_seconds(chunk_bytes,
                                      xcl::TransferDir::kHostToDevice) +
      device.model().transfer_seconds(chunk_bytes,
                                      xcl::TransferDir::kDeviceToHost);
  xcl::WorkloadProfile p;
  p.flops = 1e6;
  p.bytes_read = static_cast<double>(chunk_bytes);
  p.bytes_written = p.bytes_read;
  p.working_set_bytes = 2 * p.bytes_read;
  p.pattern = xcl::AccessPattern::kStreaming;
  const xcl::NDRange range(kFloats, 256);
  for (int i = 0; i < 16; ++i) {
    const xcl::KernelLaunchStats probe{"probe", range, p, 0};
    const double probe_s = device.model().kernel_seconds(probe);
    if (probe_s > target_s * 0.95 && probe_s < target_s * 1.05) break;
    p.flops *= target_s / probe_s;
  }
  return p;
}

double pipeline_span_s(xcl::QueueMode mode, xcl::Device& device,
                       const xcl::WorkloadProfile& profile) {
  xcl::Context ctx(device);
  std::vector<xcl::Buffer> bufs;
  bufs.reserve(kChunks);
  for (std::size_t c = 0; c < kChunks; ++c) {
    bufs.push_back(xcl::make_buffer<float>(ctx, kFloats));
  }
  const std::vector<float> in(kFloats, 1.0f);
  std::vector<std::vector<float>> out(kChunks, std::vector<float>(kFloats));

  xcl::Queue q(ctx, mode);
  std::vector<xcl::Event> writes(kChunks);
  std::vector<xcl::Event> kernels(kChunks);
  for (std::size_t c = 0; c < kChunks; ++c) {
    writes[c] = q.enqueue_write<float>(bufs[c], std::span<const float>(in),
                                       xcl::kNoWait);
  }
  for (std::size_t c = 0; c < kChunks; ++c) {
    auto view = bufs[c].view<float>();
    xcl::Kernel k("scale", [view](xcl::WorkItem& it) {
      view[it.global_id(0)] *= 2.0f;
    });
    k.span([view](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) view[i] *= 2.0f;
    });
    const xcl::Event wdep[] = {writes[c]};
    kernels[c] = q.enqueue(k, xcl::NDRange(kFloats, 256), profile, wdep);
  }
  for (std::size_t c = 0; c < kChunks; ++c) {
    const xcl::Event kdep[] = {kernels[c]};
    q.enqueue_read<float>(bufs[c], std::span(out[c]), kdep);
  }
  q.finish();
  return q.modeled_span_seconds();
}

TEST(Overlap, EfficiencyMatchesMeasuredOooSpeedup) {
  xcl::Device& device = sim::testbed_device("GTX 1080");
  const xcl::WorkloadProfile profile = balanced_profile(device);
  // Measure the in-order span with the recorder off, then trace the
  // out-of-order run and profile it from the artifact alone.
  obs::set_tracing_enabled(false);
  const double inorder_s =
      pipeline_span_s(xcl::QueueMode::kInOrder, device, profile);

  obs::reset_tracing();
  obs::set_tracing_enabled(true);
  const double ooo_s =
      pipeline_span_s(xcl::QueueMode::kOutOfOrder, device, profile);
  obs::set_tracing_enabled(false);
  const std::string path = ::testing::TempDir() + "prof_overlap_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  const ScheduleProfile p = analyze_schedule(load_trace(path));
  std::remove(path.c_str());

  ASSERT_GT(ooo_s, 0.0);
  const double measured = inorder_s / ooo_s;
  EXPECT_GT(measured, 1.2);  // the pipeline genuinely overlaps
  EXPECT_NEAR(p.overlap_efficiency, measured, 0.05 * measured);
  expect_attribution_identity(p);
  // The pipeline's lanes both appear, and the transfer lane carried the
  // chunk payloads.
  std::uint64_t lane_bytes = 0;
  for (const LaneUtilization& l : p.lanes) lane_bytes += l.bytes;
  EXPECT_GE(lane_bytes, 2 * kChunks * kFloats * sizeof(float));
}

// ---- roofline placement --------------------------------------------------

TEST(Roofline, LabelsEveryDwarfOnTwoModeledDevices) {
  std::vector<std::string> benchmarks = dwarfs::benchmark_names();
  for (const std::string& e : dwarfs::extension_names()) {
    benchmarks.push_back(e);
  }
  ASSERT_GE(benchmarks.size(), 12u);
  const std::vector<std::string> devices = {"i7-6700K", "GTX 1080"};
  const RooflineReport report =
      roofline(benchmarks, dwarfs::ProblemSize::kTiny, devices);

  // Every (benchmark, device) pair has an aggregate row, and every point's
  // bound-ness label is consistent with its own roofline arithmetic.
  for (const std::string& b : benchmarks) {
    for (const std::string& d : devices) {
      bool found = false;
      for (const RooflinePoint& p : report.points) {
        if (p.benchmark == b && p.device == d && p.kernel == "*") {
          found = true;
          // Integer dwarfs (crc, nw, nqueens, b_eff) have zero FLOPs;
          // every dwarf moves bytes.
          EXPECT_GT(p.bytes, 0.0) << b << " on " << d;
        }
      }
      EXPECT_TRUE(found) << "no aggregate roofline point for " << b
                         << " on " << d;
    }
  }
  for (const RooflinePoint& p : report.points) {
    EXPECT_GT(p.compute_ceiling_gflops, 0.0);
    EXPECT_GT(p.memory_ceiling_gbs, 0.0);
    EXPECT_NEAR(p.ridge_oi, p.compute_ceiling_gflops / p.memory_ceiling_gbs,
                1e-9);
    if (p.bytes > 0.0) {
      EXPECT_NEAR(p.oi, p.flops / p.bytes, 1e-9 * p.oi);
    }
    const double t_c = p.flops / (p.compute_ceiling_gflops * 1e9);
    const double t_m = p.bytes / (p.memory_ceiling_gbs * 1e9);
    EXPECT_EQ(p.memory_bound, t_m >= t_c)
        << p.benchmark << "/" << p.kernel << " on " << p.device;
  }
}

// ---- trajectory regression gate ------------------------------------------

class RegressFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directories: ctest runs each test in its own process, so a
    // shared fixture path would race under -j.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    base_ = ::testing::TempDir() + "prof_regress_" + tag + "_base";
    cur_ = ::testing::TempDir() + "prof_regress_" + tag + "_cur";
    std::filesystem::remove_all(base_);
    std::filesystem::remove_all(cur_);
    std::filesystem::create_directories(base_);
    std::filesystem::create_directories(cur_);
  }
  void TearDown() override {
    std::filesystem::remove_all(base_);
    std::filesystem::remove_all(cur_);
  }

  static void write(const std::string& dir, const std::string& file,
                    const std::string& text) {
    std::ofstream f(dir + "/" + file, std::ios::trunc);
    f << text;
  }

  static std::string report_json(double time_s, double gbs, double speedup,
                                 double wall_median,
                                 double wall_p90) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"benchmark\":\"x\",\"values\":{\"modeled_time_s\":%g,"
        "\"ring_gbs\":%g},\"speedup\":%g,\"metrics\":{\"wall\":{"
        "\"median_ns\":%g,\"p10_ns\":%g,\"p90_ns\":%g}}}",
        time_s, gbs, speedup, wall_median, wall_median * 0.9, wall_p90);
    return buf;
  }

  std::string base_;
  std::string cur_;
};

TEST_F(RegressFixture, CleanTrajectoryPasses) {
  const std::string r = report_json(1.0, 10.0, 1.78, 1000, 1100);
  write(base_, "BENCH_alpha.json", r);
  write(cur_, "BENCH_alpha.json", r);
  const RegressVerdict v = compare_trajectory(base_, cur_);
  EXPECT_TRUE(v.ok());
  EXPECT_GE(v.compared, 3u);  // two values + speedup
  EXPECT_EQ(v.regressions, 0u);
}

TEST_F(RegressFixture, InjectedSlowdownIsFlagged) {
  write(base_, "BENCH_alpha.json", report_json(1.0, 10.0, 1.78, 1000, 1100));
  // 20% modeled-time slowdown: past the 10% tolerance on a lower-is-better
  // key, so the gate must go red.
  write(cur_, "BENCH_alpha.json", report_json(1.2, 10.0, 1.78, 1000, 1100));
  const RegressVerdict v = compare_trajectory(base_, cur_);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.regressions, 1u);
  bool flagged = false;
  for (const RegressEntry& e : v.entries) {
    if (e.key == "values.modeled_time_s") {
      flagged = e.regressed;
      EXPECT_NEAR(e.ratio, 1.2, 1e-9);
    }
  }
  EXPECT_TRUE(flagged);
  // The verdict JSON round-trips through the artifact parser.
  const Json j = parse_json(v.to_json());
  EXPECT_FALSE(j.at("ok").boolean);
}

TEST_F(RegressFixture, HigherIsBetterDropAndSpeedupDropAreFlagged) {
  write(base_, "BENCH_alpha.json", report_json(1.0, 10.0, 1.78, 1000, 1100));
  write(cur_, "BENCH_alpha.json", report_json(1.0, 8.0, 1.40, 1000, 1100));
  const RegressVerdict v = compare_trajectory(base_, cur_);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.regressions, 2u);  // ring_gbs -20%, speedup -21%
}

TEST_F(RegressFixture, MissingBenchmarkIsAlwaysARegression) {
  write(base_, "BENCH_alpha.json", report_json(1.0, 10.0, 1.78, 1000, 1100));
  write(base_, "BENCH_beta.json", report_json(2.0, 5.0, 1.10, 2000, 2200));
  write(cur_, "BENCH_alpha.json", report_json(1.0, 10.0, 1.78, 1000, 1100));
  const RegressVerdict v = compare_trajectory(base_, cur_);
  EXPECT_FALSE(v.ok());
  ASSERT_EQ(v.missing.size(), 1u);
  EXPECT_EQ(v.missing.front(), "beta");
}

TEST_F(RegressFixture, WallMetricsGateOnlyWhenOptedIn) {
  write(base_, "BENCH_alpha.json", report_json(1.0, 10.0, 1.78, 1000, 1100));
  // Wall median 5x the baseline: machine noise cannot explain it, but the
  // deterministic values are clean.
  write(cur_, "BENCH_alpha.json", report_json(1.0, 10.0, 1.78, 5000, 5500));
  EXPECT_TRUE(compare_trajectory(base_, cur_).ok());
  RegressOptions opts;
  opts.include_wall = true;
  EXPECT_FALSE(compare_trajectory(base_, cur_, opts).ok());

  // Inside the [p10, p90] noise band nothing fires even when opted in.
  write(cur_, "BENCH_alpha.json", report_json(1.0, 10.0, 1.78, 1050, 1150));
  EXPECT_TRUE(compare_trajectory(base_, cur_, opts).ok());
}

TEST_F(RegressFixture, KeyFilterRestrictsTheComparedSet) {
  write(base_, "BENCH_alpha.json", report_json(1.0, 10.0, 1.78, 1000, 1100));
  // Both values drift, but only ring_gbs passes the "gbs" filter — the
  // modeled_time_s slowdown must be ignored, not judged.
  write(cur_, "BENCH_alpha.json", report_json(2.0, 10.0, 1.78, 1000, 1100));
  RegressOptions opts;
  opts.key_filter = "gbs";
  const RegressVerdict v = compare_trajectory(base_, cur_, opts);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.compared, 1u);
  EXPECT_EQ(v.entries.front().key, "values.ring_gbs");
  // The unfiltered run still sees the slowdown.
  EXPECT_FALSE(compare_trajectory(base_, cur_).ok());
}

TEST_F(RegressFixture, EmptyOrAbsentBaselineDirectoryThrows) {
  EXPECT_THROW((void)compare_trajectory(base_ + "/nope", cur_),
               std::runtime_error);
  EXPECT_THROW((void)compare_trajectory(base_, cur_), std::runtime_error);
}

}  // namespace
}  // namespace eod::prof
