// Tests for the device registry (Table 1) and the analytic timing model's
// qualitative properties.
#include <gtest/gtest.h>

#include "sim/device_spec.hpp"
#include "sim/energy_model.hpp"
#include "sim/perf_model.hpp"
#include "sim/testbed.hpp"

namespace eod::sim {
namespace {

xcl::KernelLaunchStats compute_bound_launch(double flops = 1e9,
                                            std::size_t items = 1 << 20) {
  xcl::WorkloadProfile p;
  p.flops = flops;
  p.bytes_read = flops / 100.0;  // high arithmetic intensity
  p.working_set_bytes = p.bytes_read;
  return {"compute", xcl::NDRange(items, 64), p};
}

xcl::KernelLaunchStats bandwidth_bound_launch(double bytes = 1e9,
                                              std::size_t items = 1 << 20) {
  xcl::WorkloadProfile p;
  p.flops = bytes / 100.0;
  p.bytes_read = bytes;
  p.working_set_bytes = bytes;
  return {"stream", xcl::NDRange(items, 64), p};
}

TEST(DeviceSpec, Table1RosterComplete) {
  const auto& tb = testbed();
  ASSERT_EQ(tb.size(), 15u);
  int cpus = 0, nvidia = 0, amd = 0, mic = 0;
  for (const DeviceSpec& d : tb) {
    if (d.klass == AcceleratorClass::kCpu) ++cpus;
    if (d.klass == AcceleratorClass::kMic) ++mic;
    if (d.vendor == "Nvidia") ++nvidia;
    if (d.vendor == "AMD") ++amd;
  }
  // "three Intel CPUs, five Nvidia GPUs, six AMD GPUs and a Xeon Phi."
  EXPECT_EQ(cpus, 3);
  EXPECT_EQ(nvidia, 5);
  EXPECT_EQ(amd, 6);
  EXPECT_EQ(mic, 1);
}

TEST(DeviceSpec, Table1ValuesSpotCheck) {
  const DeviceSpec& sky = skylake();
  EXPECT_EQ(sky.core_count, 8u);  // hyper-threaded cores
  EXPECT_EQ(sky.l1_kib, 32u);
  EXPECT_EQ(sky.l2_kib, 256u);
  EXPECT_EQ(sky.l3_kib, 8192u);
  EXPECT_EQ(sky.tdp_w, 91u);
  EXPECT_EQ(sky.clock_turbo_mhz, 4300u);

  const DeviceSpec& knl = spec_by_name("Xeon Phi 7210");
  EXPECT_EQ(knl.core_count, 256u);
  EXPECT_EQ(knl.tdp_w, 215u);
  // The paper: KNL floating-point peak is halved by the AVX2-only SDK.
  EXPECT_LT(knl.peak_sp_gflops, 5400.0);

  EXPECT_THROW((void)spec_by_name("GTX 9090"), std::invalid_argument);
}

TEST(DeviceSpec, EveryDeviceHasDerivedParameters) {
  for (const DeviceSpec& d : testbed()) {
    EXPECT_GT(d.peak_sp_gflops, 0.0) << d.name;
    EXPECT_GT(d.mem_bandwidth_gbs, 0.0) << d.name;
    EXPECT_GT(d.global_mem_bytes, 0u) << d.name;
    EXPECT_GT(d.launch_overhead_us, 0.0) << d.name;
    EXPECT_GT(d.scalar_gops, 0.0) << d.name;
    EXPECT_GT(d.l1.size_bytes, 0u) << d.name;
    EXPECT_GT(d.l2.size_bytes, 0u) << d.name;
    EXPECT_LT(d.idle_power_w, d.tdp_w) << d.name;
  }
}

TEST(PerfModel, MoreWorkTakesLonger) {
  const DevicePerfModel m(skylake());
  EXPECT_LT(m.kernel_seconds(compute_bound_launch(1e8)),
            m.kernel_seconds(compute_bound_launch(1e10)));
  EXPECT_LT(m.kernel_seconds(bandwidth_bound_launch(1e7)),
            m.kernel_seconds(bandwidth_bound_launch(1e9)));
}

TEST(PerfModel, LaunchOverheadIsTheFloor) {
  const DevicePerfModel m(spec_by_name("GTX 1080"));
  xcl::WorkloadProfile empty;
  const double t = m.kernel_seconds({"noop", xcl::NDRange(1), empty});
  EXPECT_NEAR(t, m.spec().launch_overhead_us * 1e-6, 1e-9);
}

TEST(PerfModel, GpuBeatsCpuOnComputeBoundWork) {
  const DevicePerfModel cpu(skylake());
  const DevicePerfModel gpu(spec_by_name("GTX 1080"));
  const auto launch = compute_bound_launch(1e10);
  EXPECT_LT(gpu.kernel_seconds(launch), cpu.kernel_seconds(launch));
}

TEST(PerfModel, CacheResidencySpeedsUpSmallWorkingSets) {
  const DevicePerfModel m(skylake());
  auto launch = bandwidth_bound_launch(1e8);
  launch.profile.working_set_bytes = 16 * 1024;         // L1-resident
  const double t_l1 = m.kernel_seconds(launch);
  launch.profile.working_set_bytes = 4 * 1024 * 1024;   // L3-resident
  const double t_l3 = m.kernel_seconds(launch);
  launch.profile.working_set_bytes = 256.0 * 1024 * 1024;  // DRAM
  const double t_dram = m.kernel_seconds(launch);
  EXPECT_LT(t_l1, t_l3);
  EXPECT_LT(t_l3, t_dram);
}

TEST(PerfModel, BreakdownComponentsSumConsistently) {
  const DevicePerfModel m(skylake());
  const auto launch = bandwidth_bound_launch(1e8);
  const auto b = m.analyze(launch);
  EXPECT_NEAR(b.total_s,
              b.launch_s + std::max(b.compute_s, b.memory_s) + b.latency_s +
                  b.serial_s,
              1e-12);
  EXPECT_EQ(b.residence_level, 4);  // 1 GB working set: DRAM
}

TEST(PerfModel, DivergencePenalisesWideSimdMore) {
  const DevicePerfModel amd(spec_by_name("R9 290X"));   // wavefront 64
  const DevicePerfModel cpu(skylake());                 // AVX 8
  auto launch = compute_bound_launch(1e10);
  const double amd_clean = amd.kernel_seconds(launch);
  const double cpu_clean = cpu.kernel_seconds(launch);
  launch.profile.branch_divergence = 0.8;
  const double amd_div = amd.kernel_seconds(launch) / amd_clean;
  const double cpu_div = cpu.kernel_seconds(launch) / cpu_clean;
  EXPECT_GT(amd_div, cpu_div);  // relative slowdown worse on wide SIMD
}

TEST(PerfModel, PartialWavefrontWastesAmdLanes) {
  // The Rodinia-style block size of 16 under-fills a 64-wide wavefront:
  // the "platform-specific local work-group size" effect.
  const DevicePerfModel amd(spec_by_name("R9 290X"));
  xcl::WorkloadProfile p = compute_bound_launch(1e9).profile;
  const double t16 =
      amd.kernel_seconds({"k", xcl::NDRange(1 << 20, 16), p});
  const double t64 =
      amd.kernel_seconds({"k", xcl::NDRange(1 << 20, 64), p});
  EXPECT_GT(t16, 2.0 * t64);
}

TEST(PerfModel, UnderOccupiedDeviceRunsSlower) {
  const DevicePerfModel gpu(spec_by_name("Titan X"));
  // Same total work, few items: cannot fill 3584 lanes.
  const double t_few =
      gpu.kernel_seconds(compute_bound_launch(1e9, 128));
  const double t_many =
      gpu.kernel_seconds(compute_bound_launch(1e9, 1 << 20));
  EXPECT_GT(t_few, 4.0 * t_many);
}

TEST(PerfModel, AmdahlSerialFractionDominates) {
  const DevicePerfModel gpu(spec_by_name("GTX 1080"));
  auto launch = compute_bound_launch(1e9);
  const double t_par = gpu.kernel_seconds(launch);
  launch.profile.parallel_fraction = 0.5;
  const double t_half = gpu.kernel_seconds(launch);
  EXPECT_GT(t_half, 10.0 * t_par);  // half the work at scalar speed
}

TEST(PerfModel, TransfersIncludeLatencyAndBandwidth) {
  const DevicePerfModel gpu(spec_by_name("GTX 1080"));
  const double t0 = gpu.transfer_seconds(0, xcl::TransferDir::kHostToDevice);
  const double t1g =
      gpu.transfer_seconds(1 << 30, xcl::TransferDir::kDeviceToHost);
  EXPECT_NEAR(t0, gpu.spec().transfer_latency_us * 1e-6, 1e-12);
  // ~12 GB/s PCIe: a GiB takes the better part of 100 ms.
  EXPECT_GT(t1g, 0.05);
  EXPECT_LT(t1g, 0.2);
}

TEST(PerfModel, PowerBoundedByIdleAndTdp) {
  for (const DeviceSpec& d : testbed()) {
    const DevicePerfModel m(d);
    const double w = m.kernel_power_watts(bandwidth_bound_launch(1e9));
    EXPECT_GE(w, d.idle_power_w) << d.name;
    EXPECT_LE(w, d.tdp_w + 1e-9) << d.name;
  }
}

TEST(PerfModel, NoiseCovLargerForLowerClocks) {
  // The paper: CoV is much greater for devices with a lower clock
  // frequency, regardless of accelerator type.
  const DevicePerfModel k20(spec_by_name("K20m"));     // 706 MHz
  const DevicePerfModel sky(skylake());                // 4000 MHz
  EXPECT_GT(k20.measurement_noise_cov(), sky.measurement_noise_cov());
}

TEST(PerfModel, PatternFactorsOrdered) {
  const DevicePerfModel gpu(spec_by_name("GTX 1080"));
  using xcl::AccessPattern;
  EXPECT_GT(gpu.pattern_bandwidth_factor(AccessPattern::kStreaming),
            gpu.pattern_bandwidth_factor(AccessPattern::kStrided));
  EXPECT_GT(gpu.pattern_bandwidth_factor(AccessPattern::kStrided),
            gpu.pattern_bandwidth_factor(AccessPattern::kGather));
}

TEST(EnergyMeter, RaplIsAccurateNvmlIsNoisy) {
  EnergyMeter rapl(EnergyInstrument::kRapl, 7);
  EnergyMeter nvml(EnergyInstrument::kNvml, 7);
  double rapl_spread = 0.0;
  double nvml_spread = 0.0;
  for (int i = 0; i < 200; ++i) {
    rapl_spread += std::abs(rapl.measure(50.0, 2.0).joules - 100.0);
    nvml_spread += std::abs(nvml.measure(50.0, 2.0).joules - 100.0);
  }
  EXPECT_LT(rapl_spread / 200.0, 3.0);   // ~1.5% of 100 J
  EXPECT_GT(nvml_spread / 200.0, 1.0);   // +/-5 W over 2 s
  EXPECT_GE(nvml.measure(0.5, 1.0).joules, 0.0);  // never negative
}

TEST(EnergyMeter, Deterministic) {
  EnergyMeter a(EnergyInstrument::kNvml, 99);
  EnergyMeter b(EnergyInstrument::kNvml, 99);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.measure(80.0, 1.0).joules,
                     b.measure(80.0, 1.0).joules);
  }
}

}  // namespace
}  // namespace eod::sim
