// Tests for the observability subsystem (DESIGN.md §11): metrics registry
// arithmetic, log₂-histogram bucket boundaries, registry thread-safety, the
// Chrome trace recorder (parse the JSON back, check span nesting per lane),
// and the --trace/--metrics/manifest round trip through a real harness run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dwarfs/lud/lud.hpp"
#include "dwarfs/registry.hpp"
#include "harness/partition.hpp"
#include "harness/runner.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/testbed.hpp"

namespace eod::obs {
namespace {

// ---- a minimal JSON reader (objects/arrays/strings/numbers/bools) --------
//
// Just enough to parse the files the recorder writes; a parse failure is a
// test failure, which is the point — the emitted JSON must be well-formed.

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    static const JsonValue missing;
    const auto it = object.find(key);
    return it == object.end() ? missing : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }
  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        switch (s_[pos_]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 >= s_.size()) return false;
            out += '?';  // tests never inspect escaped control chars
            pos_ += 4;
            break;
          default: out += s_[pos_];
        }
        ++pos_;
      } else {
        out += s_[pos_++];
      }
    }
    return pos_ < s_.size() && s_[pos_++] == '"';
  }
  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.type = JsonValue::Type::kNumber;
    out.number = std::stod(s_.substr(start, pos_ - start));
    return true;
  }
  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }
  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      std::string key;
      skip_ws();
      if (!parse_string(key)) return false;
      if (!consume(':')) return false;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

JsonValue parse_json_or_fail(const std::string& text) {
  JsonValue v;
  JsonParser p(text);
  EXPECT_TRUE(p.parse(v)) << "malformed JSON: " << text.substr(0, 200);
  return v;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

// ---- metrics registry ----------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  Counter& c = counter("test.counter_basics");
  c.reset();
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);
  // Same name returns the same instrument; a different kind throws.
  EXPECT_EQ(&counter("test.counter_basics"), &c);
  EXPECT_THROW((void)gauge("test.counter_basics"), std::logic_error);

  Gauge& g = gauge("test.gauge_basics");
  g.reset();
  g.set(7);
  g.set_max(5);
  EXPECT_EQ(g.value(), 7);
  g.set_max(11);
  EXPECT_EQ(g.value(), 11);
}

TEST(Metrics, HistogramBucketBoundaries) {
  // bucket_of: 0 → 0; v in [2^(i-1), 2^i) → i.
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(1025), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
  // bucket_floor is the inclusive lower bound and inverts bucket_of at the
  // boundary: bucket_of(bucket_floor(i)) == i for every bucket.
  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(11), 1024u);
  for (std::size_t i = 1; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_floor(i)), i) << i;
  }

  Histogram& h = histogram("test.hist_boundaries");
  h.reset();
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 206.0);
}

TEST(Metrics, HistogramQuantilesInterpolateFromBuckets) {
  Histogram& h = histogram("test.hist_quantiles");
  h.reset();
  // All samples in bucket 0 (the value 0): every quantile is exactly 0.
  for (int i = 0; i < 4; ++i) h.record(0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);

  // One sample in bucket 3 ([4, 8)): quantiles interpolate linearly across
  // the bucket's value range.
  h.reset();
  h.record(4);
  EXPECT_DOUBLE_EQ(h.p50(), 6.0);  // 4 + 0.50·4
  EXPECT_DOUBLE_EQ(h.p95(), 7.8);  // 4 + 0.95·4

  // Mixed buckets: the rank walk crosses bucket 0 before interpolating.
  h.record(0);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 7.6);  // 4 + (1.9−1)·4

  // The snapshot-side twin sees the same numbers through the sample's
  // sparse (bucket, count) pairs — this is the path eod_prof consumes.
  const MetricsSnapshot snap = snapshot_metrics();
  for (const MetricSample& s : snap.samples) {
    if (s.name != "test.hist_quantiles") continue;
    EXPECT_DOUBLE_EQ(quantile_from_buckets(s.buckets, s.count, 0.50), 0.0);
    EXPECT_DOUBLE_EQ(quantile_from_buckets(s.buckets, s.count, 0.95), 7.6);
  }
  EXPECT_DOUBLE_EQ(quantile_from_buckets({}, 0, 0.5), 0.0);
}

// Concurrent first-use registration and mutation of one shared instrument
// set.  Run under -fsanitize=thread via the `sanitize` ctest label.
TEST(Metrics, RegistryIsRaceClean) {
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Counter& c = counter("test.race_counter");
      Histogram& h = histogram("test.race_hist");
      for (int i = 0; i < kIters; ++i) {
        c.add(1);
        h.record(static_cast<std::uint64_t>(t * kIters + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(counter("test.race_counter").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_GE(histogram("test.race_hist").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Metrics, SnapshotRendersTsvAndJson) {
  counter("test.snap_counter").reset();
  counter("test.snap_counter").add(42);
  gauge("test.snap_gauge").set(-7);
  histogram("test.snap_hist").reset();
  histogram("test.snap_hist").record(5);

  const MetricsSnapshot snap = snapshot_metrics();
  EXPECT_TRUE(std::is_sorted(
      snap.samples.begin(), snap.samples.end(),
      [](const MetricSample& a, const MetricSample& b) {
        return a.name < b.name;
      }));

  const std::string tsv = snap.to_tsv();
  EXPECT_NE(tsv.find("\tp50\tp95\tp99\t"), std::string::npos);
  EXPECT_NE(tsv.find("test.snap_counter\tcounter\t42"), std::string::npos);
  EXPECT_NE(tsv.find("test.snap_gauge\tgauge\t-7"), std::string::npos);

  const JsonValue j = parse_json_or_fail(snap.to_json());
  const JsonValue& metrics = j.at("metrics");
  EXPECT_EQ(metrics.at("test.snap_counter").at("value").number, 42.0);
  EXPECT_EQ(metrics.at("test.snap_gauge").at("value").number, -7.0);
  const JsonValue& hist = metrics.at("test.snap_hist");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_EQ(hist.at("sum").number, 5.0);
  // Rendered quantiles: 5 sits in bucket [4, 8), so p50 = 4 + 0.5·4.
  EXPECT_EQ(hist.at("p50").number, 6.0);
  EXPECT_EQ(hist.at("p99").number, 7.96);

  // write_file picks the format from the suffix.
  const std::string tsv_path = temp_path("obs_snap.tsv");
  const std::string json_path = temp_path("obs_snap.json");
  ASSERT_TRUE(snap.write_file(tsv_path));
  ASSERT_TRUE(snap.write_file(json_path));
  EXPECT_EQ(read_file(tsv_path), tsv);
  (void)parse_json_or_fail(read_file(json_path));
  std::remove(tsv_path.c_str());
  std::remove(json_path.c_str());
}

// ---- trace recorder ------------------------------------------------------

TEST(Trace, WritesWellFormedNestedSpans) {
  reset_tracing();
  set_tracing_enabled(true);
  set_thread_lane_name("obs-test-main");
  {
    TraceSpan outer("outer", "test");
    {
      TraceSpan inner("inner", "test", "items", 3.0);
    }
  }
  emit_instant("marker", "test");
  const std::uint32_t dev_lane = alloc_device_lane("queue:fake-device");
  // lint: raw-span-ok(exercises the device-lane emission API directly)
  emit_complete_on(kDevicePid, dev_lane, "kernel_x", "device:kernel", 1000,
                   500, "energy_j", 0.25);
  set_tracing_enabled(false);

  const std::string path = temp_path("obs_trace.json");
  ASSERT_TRUE(write_chrome_trace(path));
  const JsonValue root = parse_json_or_fail(read_file(path));
  std::remove(path.c_str());
  ASSERT_EQ(root.at("traceEvents").type, JsonValue::Type::kArray);
  const auto& events = root.at("traceEvents").array;

  // Collect the complete spans of this thread's host lane and check strict
  // nesting: inner must start no earlier and end no later than outer.
  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  const JsonValue* device = nullptr;
  bool saw_marker = false;
  bool saw_lane_name = false;
  bool saw_device_lane_name = false;
  for (const JsonValue& e : events) {
    const std::string& name = e.at("name").str;
    if (name == "outer") outer = &e;
    if (name == "inner") inner = &e;
    if (name == "kernel_x") device = &e;
    if (name == "marker" && e.at("ph").str == "i") saw_marker = true;
    if (e.at("ph").str == "M") {
      if (e.at("args").at("name").str == "obs-test-main") {
        saw_lane_name = true;
      }
      if (e.at("args").at("name").str == "queue:fake-device") {
        saw_device_lane_name = true;
      }
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(device, nullptr);
  EXPECT_TRUE(saw_marker);
  EXPECT_TRUE(saw_lane_name);
  EXPECT_TRUE(saw_device_lane_name);

  EXPECT_EQ(outer->at("ph").str, "X");
  EXPECT_EQ(outer->at("pid").number, kHostPid);
  EXPECT_EQ(outer->at("tid").number, inner->at("tid").number);
  const double outer_start = outer->at("ts").number;
  const double outer_end = outer_start + outer->at("dur").number;
  const double inner_start = inner->at("ts").number;
  const double inner_end = inner_start + inner->at("dur").number;
  EXPECT_GE(inner_start, outer_start);
  EXPECT_LE(inner_end, outer_end);
  EXPECT_EQ(inner->at("args").at("items").number, 3.0);

  // The device-lane event keeps its modeled timestamps (µs of modeled ns),
  // unrebased, on pid 2.
  EXPECT_EQ(device->at("pid").number, kDevicePid);
  EXPECT_EQ(device->at("tid").number, dev_lane);
  EXPECT_DOUBLE_EQ(device->at("ts").number, 1.0);
  EXPECT_DOUBLE_EQ(device->at("dur").number, 0.5);
  EXPECT_DOUBLE_EQ(device->at("args").at("energy_j").number, 0.25);
}

TEST(Trace, DisabledRecorderEmitsNothing) {
  reset_tracing();
  set_tracing_enabled(false);
  const std::uint64_t before = trace_events_recorded();
  {
    TraceSpan span("invisible", "test");
    emit_instant("also-invisible", "test");
  }
  // TraceSpan is fully inert when disabled; emit_instant still records (its
  // callers are expected to guard).  The span must not have recorded.
  EXPECT_LE(trace_events_recorded(), before + 1);
}

TEST(Trace, EnvEscapeHatchParsesConventions) {
  // Not set / "0" / "" → disabled; "1" → default file; else the path.
  ::unsetenv("EOD_TRACE");
  EXPECT_EQ(env_trace_path(), "");
  ::setenv("EOD_TRACE", "", 1);
  EXPECT_EQ(env_trace_path(), "");
  ::setenv("EOD_TRACE", "0", 1);
  EXPECT_EQ(env_trace_path(), "");
  ::setenv("EOD_TRACE", "1", 1);
  EXPECT_EQ(env_trace_path(), "eod_trace.json");
  ::setenv("EOD_TRACE", "/tmp/custom.json", 1);
  EXPECT_EQ(env_trace_path(), "/tmp/custom.json");
  ::unsetenv("EOD_TRACE");
}

// ---- full round trip through the harness ---------------------------------

TEST(ObsRoundTrip, MeasureWritesTraceMetricsAndManifest) {
  const std::string trace_path = temp_path("obs_rt_trace.json");
  const std::string metrics_path = temp_path("obs_rt_metrics.json");
  const std::string manifest_path = temp_path("obs_rt_manifest.json");

  auto dwarf = dwarfs::create_dwarf("kmeans");
  harness::MeasureOptions opts;
  opts.samples = 5;
  opts.min_loop_seconds = 0.0;
  opts.validate = true;
  opts.trace_path = trace_path;
  opts.metrics_path = metrics_path;
  opts.manifest_path = manifest_path;
  opts.profile = true;
  // Out-of-order mode so the recorded wait lists are load-bearing (an
  // in-order chain orders by barrier and may legally record no deps).
  opts.queue_mode = xcl::QueueMode::kOutOfOrder;
  const harness::Measurement m =
      harness::measure(*dwarf, dwarfs::ProblemSize::kTiny,
                       sim::testbed_device("i7-6700K"), opts);
  EXPECT_TRUE(m.validation.ok);
  // The recorder was scoped to the run.
  EXPECT_FALSE(tracing_enabled());

  // The measurement reports back the *final* artifact paths: the requested
  // names with a ".<pid>.<counter>" collision suffix spliced in before the
  // extension.  Concurrent runs in one directory must never clobber each
  // other's artifacts.
  ASSERT_FALSE(m.trace_path.empty());
  ASSERT_FALSE(m.metrics_path.empty());
  ASSERT_FALSE(m.manifest_path.empty());
  ASSERT_FALSE(m.profile_path.empty());
  EXPECT_NE(m.trace_path, trace_path);
  EXPECT_EQ(m.trace_path.rfind(trace_path.substr(0, trace_path.size() - 5),
                               0),
            0u);
  EXPECT_EQ(m.trace_path.substr(m.trace_path.size() - 5), ".json");

  // Trace: both pids present; the device lane carries kernel spans whose
  // names match the benchmark's kernels; harness spans frame the run.
  const JsonValue trace = parse_json_or_fail(read_file(m.trace_path));
  bool saw_device_kernel = false;
  bool saw_harness_span = false;
  bool saw_labeled_transfer = false;
  for (const JsonValue& e : trace.at("traceEvents").array) {
    if (e.at("ph").str != "X") continue;
    if (e.at("pid").number == kDevicePid &&
        e.at("cat").str == "device:kernel") {
      saw_device_kernel = true;
    }
    if (e.at("cat").str == "harness" && e.at("name").str == "functional") {
      saw_harness_span = true;
    }
    // The size-prefixed transfer labels (e.g. "write:features[26KiB]").
    if (e.at("cat").str == "queue:transfer" &&
        e.at("name").str.find('[') != std::string::npos) {
      saw_labeled_transfer = true;
    }
  }
  EXPECT_TRUE(saw_device_kernel);
  EXPECT_TRUE(saw_harness_span);
  EXPECT_TRUE(saw_labeled_transfer);

  // Device-command spans carry the DAG args block ("cmd"/"q"/"deps"), so
  // the schedule is reconstructible from the artifact alone.
  std::size_t dag_spans = 0;
  std::size_t spans_with_deps = 0;
  for (const JsonValue& e : trace.at("traceEvents").array) {
    if (e.at("ph").str != "X" || e.at("pid").number != kDevicePid) continue;
    const JsonValue& args = e.at("args");
    if (args.at("cmd").type != JsonValue::Type::kNumber) continue;
    ++dag_spans;
    EXPECT_GT(args.at("cmd").number, 0.0);
    EXPECT_GT(args.at("q").number, 0.0);
    EXPECT_EQ(args.at("deps").type, JsonValue::Type::kArray);
    if (!args.at("deps").array.empty()) ++spans_with_deps;
  }
  EXPECT_GT(dag_spans, 0u);
  EXPECT_GT(spans_with_deps, 0u);

  // Metrics: parseable, and the executor counters moved.
  const JsonValue metrics = parse_json_or_fail(read_file(m.metrics_path));
  EXPECT_GT(
      metrics.at("metrics").at("executor.ndrange_launches").at("value")
          .number,
      0.0);

  // Profile: the in-process eod_prof analysis ran over the written trace
  // and its report parses back with a coherent schedule block.
  const JsonValue profile = parse_json_or_fail(read_file(m.profile_path));
  EXPECT_EQ(profile.at("benchmark").str, "kmeans");
  const JsonValue& schedule = profile.at("schedule");
  EXPECT_GT(schedule.at("makespan_ns").number, 0.0);
  EXPECT_GT(schedule.at("overlap_efficiency").number, 0.0);
  EXPECT_FALSE(schedule.at("critical_path").array.empty());

  // Manifest: identity, provenance, stats, artifact pointers, embedded
  // metrics.
  const JsonValue manifest = parse_json_or_fail(read_file(m.manifest_path));
  EXPECT_EQ(manifest.at("benchmark").str, "kmeans");
  EXPECT_EQ(manifest.at("size").str, "tiny");
  EXPECT_EQ(manifest.at("device").str, "i7-6700K");
  // measure() resolves an unset MeasureOptions::dispatch through the
  // EOD_DISPATCH hatch, so the recorded tier follows the environment
  // (CI's simd-mode job runs this test under EOD_DISPATCH=simd).
  EXPECT_EQ(manifest.at("dispatch").str,
            xcl::to_string(xcl::default_dispatch_mode()));
  if (const char* env = std::getenv("EOD_DISPATCH")) {
    EXPECT_EQ(manifest.at("dispatch_env").str, env);
  }
  EXPECT_EQ(manifest.at("samples").number, 5.0);
  EXPECT_FALSE(manifest.at("git_describe").str.empty());
  EXPECT_FALSE(manifest.at("timestamp").str.empty());
  EXPECT_TRUE(manifest.at("validated").boolean);
  EXPECT_TRUE(manifest.at("validation_ok").boolean);
  // The manifest records the final (suffixed) artifact paths, so a
  // consumer holding only the manifest can find everything else.
  EXPECT_EQ(manifest.at("trace_path").str, m.trace_path);
  EXPECT_EQ(manifest.at("metrics_path").str, m.metrics_path);
  EXPECT_EQ(manifest.at("profile_path").str, m.profile_path);
  EXPECT_GT(manifest.at("time_median_ms").number, 0.0);
  EXPECT_EQ(manifest.at("metrics").type, JsonValue::Type::kObject);

  std::remove(m.trace_path.c_str());
  std::remove(m.metrics_path.c_str());
  std::remove(m.manifest_path.c_str());
  std::remove(m.profile_path.c_str());
}

TEST(ObsRoundTrip, UniqueArtifactPathsNeverCollide) {
  const std::string a = unique_artifact_path("out/trace.json");
  const std::string b = unique_artifact_path("out/trace.json");
  EXPECT_NE(a, b);
  // The suffix lands before the *filename* extension; dots in directory
  // names must not be split.
  EXPECT_EQ(a.rfind("out/trace.", 0), 0u);
  EXPECT_EQ(a.substr(a.size() - 5), ".json");
  const std::string c = unique_artifact_path("run.d/metrics");
  EXPECT_EQ(c.rfind("run.d/metrics.", 0), 0u);
  EXPECT_TRUE(unique_artifact_path("").empty());
}

// A two-device partitioned run's trace parses back with both modeled
// device lanes, the peer-copy halo spans, and the wait-list args intact —
// the multi-device artifact is as self-describing as the single-device one.
TEST(ObsRoundTrip, PartitionedTwoDeviceTraceParsesBack) {
  dwarfs::Lud lud;
  lud.configure(240);  // small preset, 15 block rows
  std::vector<xcl::Device*> devices = {&sim::testbed_device("GTX 1080"),
                                       &sim::testbed_device("Titan X")};
  reset_tracing();
  set_thread_lane_name("obs-test-partition");
  set_tracing_enabled(true);
  harness::PartitionOptions popts;
  popts.validate = true;
  const harness::PartitionedResult r =
      harness::run_partitioned_lud(lud, devices, popts);
  set_tracing_enabled(false);
  EXPECT_TRUE(r.validation.ok);
  ASSERT_GT(r.halo_transfers, 0u);

  const std::string path = temp_path("obs_partitioned_trace.json");
  ASSERT_TRUE(write_chrome_trace(path));
  const JsonValue root = parse_json_or_fail(read_file(path));
  std::remove(path.c_str());

  bool lane_dev0 = false;
  bool lane_dev1 = false;
  std::size_t peer_spans = 0;
  std::size_t spans_with_deps = 0;
  std::vector<double> queues;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("ph").str == "M" && e.at("pid").number == kDevicePid &&
        e.at("name").str == "thread_name") {
      const std::string& lane = e.at("args").at("name").str;
      if (lane.find("GTX 1080") != std::string::npos) lane_dev0 = true;
      if (lane.find("Titan X") != std::string::npos) lane_dev1 = true;
    }
    if (e.at("ph").str != "X" || e.at("pid").number != kDevicePid) continue;
    const JsonValue& args = e.at("args");
    if (args.at("cmd").type != JsonValue::Type::kNumber) continue;
    if (e.at("cat").str == "device:peer") {
      ++peer_spans;
      EXPECT_GT(args.at("bytes").number, 0.0);
    }
    if (!args.at("deps").array.empty()) ++spans_with_deps;
    const double q = args.at("q").number;
    if (std::find(queues.begin(), queues.end(), q) == queues.end()) {
      queues.push_back(q);
    }
  }
  EXPECT_TRUE(lane_dev0);
  EXPECT_TRUE(lane_dev1);
  EXPECT_GT(peer_spans, 0u);
  EXPECT_GT(spans_with_deps, 0u);
  // Each device runs its own queue; both must appear in the artifact.
  EXPECT_GE(queues.size(), 2u);
}

}  // namespace
}  // namespace eod::obs
