// Tests for the device-side buffer operations (fill/copy), transfer-event
// labels, per-queue dispatch-stat isolation, and the histogram utility.
#include <gtest/gtest.h>

#include "scibench/histogram.hpp"
#include "sim/testbed.hpp"
#include "xcl/buffer.hpp"
#include "xcl/executor.hpp"
#include "xcl/queue.hpp"

namespace eod::xcl {
namespace {

Device& dev() { return sim::testbed_device("GTX 1080"); }

TEST(QueueOps, FillWritesEveryElement) {
  Context ctx(dev());
  Queue q(ctx);
  Buffer b = make_buffer<float>(ctx, 1000);
  const Event e = q.enqueue_fill(b, 2.5f);
  q.finish();  // fills defer in an out-of-order queue (EOD_QUEUE=ooo runs)
  for (const float v : b.view<const float>()) EXPECT_EQ(v, 2.5f);
  EXPECT_EQ(e.kind, CommandKind::kFill);
  EXPECT_GT(e.modeled_seconds(), 0.0);
  EXPECT_GT(e.energy_j, 0.0);
}

TEST(QueueOps, FillRejectsMisalignedPattern) {
  Context ctx(dev());
  Queue q(ctx);
  Buffer b(ctx, 10);  // not a multiple of sizeof(double)
  EXPECT_THROW(q.enqueue_fill(b, 1.0), Error);
}

TEST(QueueOps, CopyMovesDataAndModelsBandwidth) {
  Context ctx(dev());
  Queue q(ctx);
  Buffer src = make_buffer<int>(ctx, 4096);
  Buffer dst = make_buffer<int>(ctx, 4096);
  q.enqueue_fill(src, 7);
  const Event copy = q.enqueue_copy(src, dst);
  EXPECT_EQ(copy.kind, CommandKind::kCopy);
  q.finish();  // device-side ops defer in an out-of-order queue
  for (const int v : dst.view<const int>()) EXPECT_EQ(v, 7);
  // A device-side copy must be far faster than a PCIe round trip of the
  // same bytes on a discrete GPU.
  const double copy_s = q.events().back().modeled_seconds();
  const double pcie_s = dev().model().transfer_seconds(
      4096 * sizeof(int), TransferDir::kHostToDevice);
  EXPECT_LT(copy_s, pcie_s);
  Buffer small(ctx, 16);
  EXPECT_THROW(q.enqueue_copy(src, small), Error);
}

TEST(QueueOps, TransferLabelsCarryBufferNameAndSize) {
  Context ctx(dev());
  Queue q(ctx);
  Buffer b = make_buffer<float>(ctx, 4096);  // 16 KiB
  b.named("centroids");
  std::vector<float> host(4096, 1.0f);
  q.enqueue_write<float>(b, host);
  EXPECT_EQ(q.events().back().label, "write:centroids[16KiB]");
  q.enqueue_read<float>(b, host);
  EXPECT_EQ(q.events().back().label, "read:centroids[16KiB]");
  q.enqueue_fill(b, 0.0f);
  EXPECT_EQ(q.events().back().label, "fill:centroids[16KiB]");

  // Unnamed buffers keep the tag but still carry the size.
  Buffer anon = make_buffer<float>(ctx, 128);  // 512 B
  q.enqueue_write<float>(anon, std::span<const float>(host.data(), 128));
  EXPECT_EQ(q.events().back().label, "write[512B]");
  q.enqueue_copy(anon, b);
  EXPECT_EQ(q.events().back().label, "copy:centroids[512B]");
}

TEST(QueueOps, FormatBytesRendersHumanUnits) {
  EXPECT_EQ(format_bytes(0), "0B");
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(16 * 1024), "16KiB");
  EXPECT_EQ(format_bytes(5 * 1024 * 1024 / 2), "2.5MiB");
  EXPECT_EQ(format_bytes(std::size_t{3} << 30), "3GiB");
}

TEST(QueueOps, DispatchStatsAreDeltaBasedPerQueue) {
  Context ctx(sim::testbed_device("i7-6700K"));
  WorkloadProfile p;
  p.flops = 1.0;
  p.bytes_read = 64.0;
  p.bytes_written = 64.0;
  p.working_set_bytes = 64.0;

  // Queue A runs an arena-using kernel (raising the global arena gauge);
  // queue B on the same context then runs an arena-free kernel.  B's stats
  // must reflect only B's own launches — in particular, B must not inherit
  // A's arena high-water mark from the process-wide gauge.
  reset_executor_stats();  // a known gauge baseline for the HWM assertions
  Queue qa(ctx);
  Kernel scratch_k("scratch", [](WorkItem& it) {
    auto scratch = it.local<int>(0, 64);
    scratch[0] = static_cast<int>(it.global_id(0));
  });
  qa.enqueue(scratch_k, NDRange(64, 8), p);
  qa.finish();  // deferred under EOD_QUEUE=ooo; stats land at the sync
  EXPECT_EQ(qa.dispatch_stats().launches, 1u);
  EXPECT_EQ(qa.dispatch_stats().groups_loop, 8u);
  EXPECT_GE(qa.dispatch_stats().arena_bytes_hwm, 64 * sizeof(int));

  Queue qb(ctx);
  Kernel plain_k("plain", [](WorkItem&) {});
  qb.enqueue(plain_k, NDRange(64, 8), p);
  qb.finish();
  EXPECT_EQ(qb.dispatch_stats().launches, 1u);
  EXPECT_EQ(qb.dispatch_stats().groups_loop, 8u);
  // Regression: the global gauge still holds A's high-water mark, but B's
  // own launch never touched the arena.
  EXPECT_EQ(qb.dispatch_stats().arena_bytes_hwm, 0u);
  // And A's totals are untouched by B's launch (no double-counting).
  EXPECT_EQ(qa.dispatch_stats().launches, 1u);
  EXPECT_EQ(qa.dispatch_stats().groups_loop, 8u);
}

TEST(QueueOps, NonFunctionalFillSkipsWrites) {
  Context ctx(dev());
  Queue q(ctx);
  Buffer b = make_buffer<int>(ctx, 16);
  b.view<int>()[0] = -1;
  q.set_functional(false);
  q.enqueue_fill(b, 9);
  EXPECT_EQ(b.view<const int>()[0], -1);
  EXPECT_GT(q.modeled_kernel_seconds(), 0.0);
}

}  // namespace
}  // namespace eod::xcl

namespace eod::scibench {
namespace {

TEST(Histogram, BinsAndSaturates) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-5.0);  // saturates into bin 0
  h.add(50.0);  // saturates into bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, OfDataAndMode) {
  std::vector<double> xs = {1, 1, 1, 2, 3, 3, 9};
  const Histogram h = Histogram::of(xs, 8);
  EXPECT_EQ(h.total(), xs.size());
  EXPECT_EQ(h.mode_bin(), 0u);  // the three 1s
  EXPECT_EQ(h.sparkline().size(), 8u);
  EXPECT_EQ(h.sparkline()[0], '#');  // peak bin renders at full height
}

TEST(Histogram, DegenerateInputs) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  const Histogram empty = Histogram::of({}, 4);
  EXPECT_EQ(empty.total(), 0u);
  EXPECT_EQ(empty.sparkline(), "    ");
  std::vector<double> same = {3.0, 3.0, 3.0};
  const Histogram constant = Histogram::of(same, 4);
  EXPECT_EQ(constant.total(), 3u);
  EXPECT_EQ(constant.count(0), 3u);
}

}  // namespace
}  // namespace eod::scibench
