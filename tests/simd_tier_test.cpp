// Explicit-SIMD tier equivalence suite (DESIGN.md §13): every dwarf that
// registers a simd kernel must reproduce the per-item reference path
// bit-identically.  Same contract span_tier_test pins for the span tier,
// applied to the hand-vectorized bodies -- which is a stronger claim: the
// simd bodies reorder work across vector lanes, use masked selects for the
// running-min/clamp idioms and slice crc eight bytes at a time, yet every
// float and every integer they produce must match the scalar loop bit for
// bit (signed zeros, NaN payloads and all).  For each (dwarf, size) cell:
//   * result_signature() equality between --dispatch=item and =simd;
//   * validation against the serial reference in both modes;
//   * that the simd run actually took the simd tier (groups_simd delta);
//   * the memory-trace content key and replayed warm cache counters,
//     which must not depend on the dispatch tier at all;
// plus queue/tier composition: bit-equivalence holds on an out-of-order
// queue, an active CheckSession overrides kSimd, kernels without a simd
// body degrade to span, and kAuto never picks the simd tier on its own.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"
#include "dwarfs/registry.hpp"
#include "sim/device_spec.hpp"
#include "sim/replay_cache.hpp"
#include "sim/testbed.hpp"
#include "xcl/check/session.hpp"
#include "xcl/context.hpp"
#include "xcl/executor.hpp"
#include "xcl/queue.hpp"

namespace {

using eod::dwarfs::ProblemSize;

// Replays are memoized process-wide by trace content + geometry (see
// span_tier_test) -- the counter comparison is a trace-bit-identity proof.
constexpr std::size_t kMaxReplayAccesses = 20'000'000;

struct RunOutcome {
  bool ok = false;                 ///< validate() against serial reference
  std::uint64_t signature = 0;     ///< result_signature() byte hash
  std::uint64_t simd_groups = 0;   ///< groups_simd delta during run()
  std::uint64_t span_groups = 0;   ///< groups_span delta during run()
  std::uint64_t other_groups = 0;  ///< loop+fiber delta during run()
  std::optional<eod::sim::TraceKey> trace;
  std::optional<eod::sim::HierarchyCounters> warm;
};

RunOutcome run_once(const char* name, ProblemSize size,
                    eod::xcl::DispatchMode mode,
                    std::optional<eod::xcl::QueueMode> queue_mode =
                        std::nullopt) {
  struct ModeGuard {
    eod::xcl::DispatchMode prev = eod::xcl::dispatch_mode();
    ~ModeGuard() { eod::xcl::set_dispatch_mode(prev); }
  } guard;
  eod::xcl::set_dispatch_mode(mode);

  auto dwarf = eod::dwarfs::create_dwarf(name);
  dwarf->setup(size);

  eod::xcl::Device& dev = eod::sim::testbed_device("i7-6700K");
  eod::xcl::Context ctx(dev);
  eod::xcl::Queue q(ctx, queue_mode);
  dwarf->bind(ctx, q);

  // Bracket run() AND finish(): an out-of-order queue defers kernel
  // execution to the sync point inside finish().
  const eod::xcl::ExecutorStats before = eod::xcl::executor_stats();
  dwarf->run();
  dwarf->finish();
  const eod::xcl::ExecutorStats after = eod::xcl::executor_stats();

  RunOutcome out;
  out.ok = dwarf->validate().ok;
  out.signature = dwarf->result_signature();
  out.simd_groups = after.groups_simd - before.groups_simd;
  out.span_groups = after.groups_span - before.groups_span;
  out.other_groups = (after.groups_loop - before.groups_loop) +
                     (after.groups_fiber - before.groups_fiber);

  const std::size_t hint = dwarf->trace_size_hint();
  if (hint > 0 && hint <= kMaxReplayAccesses) {
    auto gen = [&dwarf](eod::sim::TraceWriter& w) { dwarf->stream_trace(w); };
    out.trace = eod::sim::hash_trace(gen);
    out.warm = eod::sim::memoized_replay(gen,
                                         eod::sim::spec_by_name("i7-6700K"),
                                         std::string(name) + "/simd-eq")
                   .warm;
  }
  dwarf->unbind();
  return out;
}

struct SimdCase {
  const char* name;
  std::vector<ProblemSize> sizes;
};

// gem is O(vertices x atoms); its medium functional pass runs for minutes,
// so -- like span_tier_test -- its cells stop at small.  Every size still
// exercises the vector main loop AND the scalar tail (none of the tested
// extents are lane-multiples across the board).
const SimdCase kCases[] = {
    {"kmeans",
     {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium}},
    {"csr", {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium}},
    {"crc", {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium}},
    {"srad", {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium}},
    {"gem", {ProblemSize::kTiny, ProblemSize::kSmall}},
};

class SimdTier : public ::testing::TestWithParam<SimdCase> {};

TEST_P(SimdTier, SimdMatchesItemReferenceBitExactly) {
  const SimdCase& c = GetParam();
  for (const ProblemSize size : c.sizes) {
    SCOPED_TRACE(std::string(c.name) + "/" + eod::dwarfs::to_string(size));
    const RunOutcome item =
        run_once(c.name, size, eod::xcl::DispatchMode::kItem);
    const RunOutcome simd =
        run_once(c.name, size, eod::xcl::DispatchMode::kSimd);

    // Both tiers pass serial-reference validation...
    EXPECT_TRUE(item.ok);
    EXPECT_TRUE(simd.ok);
    // ...and the tiers really differed: item pinned the reference path,
    // simd dispatched every group of the converted kernels as one call.
    EXPECT_EQ(item.simd_groups, 0u);
    EXPECT_GT(simd.simd_groups, 0u);

    // Byte-exact output equivalence, not tolerance-based validation.
    ASSERT_NE(item.signature, 0u);
    EXPECT_EQ(simd.signature, item.signature);

    // The memory trace (and therefore every replayed cache counter) is a
    // function of the benchmark's data, not of the dispatch tier.
    ASSERT_EQ(item.trace.has_value(), simd.trace.has_value());
    if (item.trace.has_value()) {
      EXPECT_EQ(item.trace->content_hash, simd.trace->content_hash);
      EXPECT_EQ(item.trace->accesses, simd.trace->accesses);
      EXPECT_EQ(*item.warm, *simd.warm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VectorizedDwarfs, SimdTier,
                         ::testing::ValuesIn(kCases),
                         [](const auto& ti) {
                           return std::string(ti.param.name);
                         });

// Bit-equivalence must survive queue-mode composition: the out-of-order
// queue defers and reorders kernel execution behind the event DAG, and the
// simd bodies must still land the exact reference bytes.
TEST(SimdTierComposition, BitExactOnOutOfOrderQueue) {
  for (const char* name : {"kmeans", "srad", "crc"}) {
    SCOPED_TRACE(name);
    const RunOutcome item =
        run_once(name, ProblemSize::kSmall, eod::xcl::DispatchMode::kItem,
                 eod::xcl::QueueMode::kOutOfOrder);
    const RunOutcome simd =
        run_once(name, ProblemSize::kSmall, eod::xcl::DispatchMode::kSimd,
                 eod::xcl::QueueMode::kOutOfOrder);
    EXPECT_TRUE(item.ok);
    EXPECT_TRUE(simd.ok);
    EXPECT_GT(simd.simd_groups, 0u);
    ASSERT_NE(item.signature, 0u);
    EXPECT_EQ(simd.signature, item.signature);
  }
}

// An active CheckSession is authoritative over every dispatch mode, kSimd
// included: the checker cannot be dodged by pinning a faster tier.
TEST(SimdTierComposition, ActiveCheckSessionOverridesSimd) {
  struct ModeGuard {
    eod::xcl::DispatchMode prev = eod::xcl::dispatch_mode();
    ~ModeGuard() { eod::xcl::set_dispatch_mode(prev); }
  } guard;
  eod::xcl::set_dispatch_mode(eod::xcl::DispatchMode::kSimd);
  eod::xcl::check::CheckSession session;

  auto dwarf = eod::dwarfs::create_dwarf("kmeans");
  dwarf->setup(ProblemSize::kTiny);
  eod::xcl::Device& dev = eod::sim::testbed_device("i7-6700K");
  eod::xcl::Context ctx(dev);
  eod::xcl::Queue q(ctx);
  dwarf->bind(ctx, q);
  const eod::xcl::ExecutorStats before = eod::xcl::executor_stats();
  dwarf->run();
  dwarf->finish();
  const eod::xcl::ExecutorStats after = eod::xcl::executor_stats();
  EXPECT_GT(after.groups_checked - before.groups_checked, 0u);
  EXPECT_EQ(after.groups_simd - before.groups_simd, 0u);
  EXPECT_TRUE(dwarf->validate().ok);
  EXPECT_TRUE(session.report().clean()) << session.report().to_text();
  dwarf->unbind();
}

// Dwarfs without a simd body degrade gracefully under --dispatch=simd:
// dwt carries a span body, so the span tier runs; nothing hits the loop
// floor, and nothing pretends to be vectorized.
TEST(SimdTierComposition, KernelWithoutSimdBodyFallsBackToSpan) {
  const RunOutcome out =
      run_once("dwt", ProblemSize::kTiny, eod::xcl::DispatchMode::kSimd);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.simd_groups, 0u);
  EXPECT_GT(out.span_groups, 0u);
}

// kAuto keeps selecting the span tier: the explicit-vector bodies are
// opt-in via --dispatch=simd / EOD_DISPATCH=simd, never a silent default.
TEST(SimdTierComposition, AutoNeverSelectsSimd) {
  const RunOutcome out =
      run_once("kmeans", ProblemSize::kTiny, eod::xcl::DispatchMode::kAuto);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.simd_groups, 0u);
  EXPECT_GT(out.span_groups, 0u);
}

}  // namespace
