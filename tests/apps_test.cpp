// Tests for the standalone applications' argument conventions (§4.4.5,
// Table 3): the "Benchmark Device -- Arguments" split and helpers.
#include <gtest/gtest.h>

#include "../apps/app_common.hpp"
#include "dwarfs/kmeans/kmeans.hpp"

namespace eod::apps {
namespace {

TEST(SplitArgs, SeparatesDeviceAndBenchmarkArguments) {
  const char* argv[] = {"kmeans", "-p", "1",  "-d", "0", "-t", "1",
                        "--",     "-g", "-f", "26", "-p", "65600"};
  const SplitArgs s = split_args(static_cast<int>(std::size(argv)), argv);
  EXPECT_EQ(s.cli.platform, 1u);
  EXPECT_EQ(s.cli.type, 1);
  // The benchmark's own -p must not be eaten by the device parser.
  ASSERT_EQ(s.benchmark_args.size(), 5u);
  EXPECT_EQ(s.benchmark_args[0], "-g");
  EXPECT_EQ(flag_value(s.benchmark_args, "-p", "0"), "65600");
  EXPECT_EQ(flag_value(s.benchmark_args, "-f", "0"), "26");
}

TEST(SplitArgs, NoSeparatorFallsBackToPositionals) {
  const char* argv[] = {"fft", "--size", "small", "4096"};
  const SplitArgs s = split_args(4, argv);
  ASSERT_TRUE(s.cli.size.has_value());
  ASSERT_EQ(s.benchmark_args.size(), 1u);
  EXPECT_EQ(s.benchmark_args[0], "4096");
}

TEST(SplitArgs, EmptyBenchmarkSection) {
  const char* argv[] = {"crc", "-d", "2", "--"};
  const SplitArgs s = split_args(4, argv);
  EXPECT_EQ(s.cli.device, 2u);
  EXPECT_TRUE(s.benchmark_args.empty());
}

TEST(Helpers, ArgOrAndFlags) {
  const std::vector<std::string> args = {"100", "32", "-v", "s"};
  EXPECT_EQ(arg_or(args, 0, "x"), "100");
  EXPECT_EQ(arg_or(args, 9, "fallback"), "fallback");
  EXPECT_TRUE(has_flag(args, "-v"));
  EXPECT_FALSE(has_flag(args, "-q"));
  EXPECT_EQ(flag_value(args, "-v", "none"), "s");
  EXPECT_EQ(flag_value(args, "-z", "none"), "none");
}

TEST(RunConfigured, ExecutesAndValidates) {
  dwarfs::KMeans dwarf;
  dwarfs::KMeans::Params p;
  p.points = 512;
  p.features = 8;
  p.rounds = 3;
  dwarf.configure(p);
  harness::CliOptions cli;
  cli.samples = 3;
  testing::internal::CaptureStdout();
  const int rc = run_configured(dwarf, cli);
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("validation: PASS"), std::string::npos);
  EXPECT_NE(out.find("kmeans_assign"), std::string::npos);
}

}  // namespace
}  // namespace eod::apps
