// Tests for the trace-driven cache/TLB simulator, including the paper's
// §4.4 use case: verifying that each problem-size class lands in the
// intended level of the Skylake hierarchy.
#include <gtest/gtest.h>

#include "dwarfs/kmeans/kmeans.hpp"
#include "sim/cache_sim.hpp"
#include "sim/device_spec.hpp"

namespace eod::sim {
namespace {

TEST(CacheLevel, HitsAfterCold) {
  CacheLevel c(1024, 64, 2);
  EXPECT_FALSE(c.access(0));  // compulsory miss
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(32));  // same line
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(CacheLevel, LruEvictionWithinSet) {
  // 2-way, 64 B lines, 8 sets: addresses 0, 1024, 2048 map to set 0.
  CacheLevel c(1024, 64, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(1024));
  EXPECT_TRUE(c.access(0));      // refresh line 0
  EXPECT_FALSE(c.access(2048));  // evicts 1024 (LRU)
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(1024));  // was evicted
}

TEST(CacheLevel, CapacityMissesWhenWorkingSetExceedsSize) {
  CacheLevel c(4096, 64, 8);  // 4 KiB
  // Stream 16 KiB twice: second pass must still miss (capacity).
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 16384; a += 64) (void)c.access(a);
  }
  EXPECT_GT(c.miss_ratio(), 0.9);
}

TEST(CacheLevel, FitsWorkingSetHasColdMissesOnly) {
  CacheLevel c(16384, 64, 8);
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < 8192; a += 64) (void)c.access(a);
  }
  EXPECT_EQ(c.misses(), 8192u / 64u);  // cold only
}

TEST(CacheLevel, RejectsBadGeometry) {
  EXPECT_THROW(CacheLevel(1000, 48, 2), std::invalid_argument);
  EXPECT_THROW(CacheLevel(1024, 64, 0), std::invalid_argument);
  EXPECT_THROW(CacheLevel(64, 64, 2), std::invalid_argument);
}

TEST(CacheHierarchy, MissesCascadeThroughLevels) {
  CacheHierarchy h(skylake());
  h.access(0, 4, false);
  const HierarchyCounters& c = h.counters();
  EXPECT_EQ(c.total_accesses, 1u);
  EXPECT_EQ(c.l1_dcm, 1u);
  EXPECT_EQ(c.l2_dcm, 1u);
  EXPECT_EQ(c.l3_tcm, 1u);
  EXPECT_EQ(c.tlb_dm, 1u);
  h.access(4, 4, false);  // same line: all hits
  EXPECT_EQ(h.counters().l1_dcm, 1u);
}

TEST(CacheHierarchy, StraddlingAccessTouchesTwoLines) {
  CacheHierarchy h(skylake());
  h.access(60, 8, false);  // crosses the 64-byte boundary
  EXPECT_EQ(h.counters().total_accesses, 2u);
}

TEST(CacheHierarchy, NoL3DeviceCountsL2MissesAsDramTrips) {
  CacheHierarchy h(spec_by_name("GTX 1080"));
  EXPECT_FALSE(h.has_l3());
  h.access(0, 4, false);
  EXPECT_EQ(h.counters().l3_tcm, 1u);
}

TEST(CacheHierarchy, ResetClearsCounters) {
  CacheHierarchy h(skylake());
  h.access(0, 4, false);
  h.reset();
  EXPECT_EQ(h.counters().total_accesses, 0u);
  EXPECT_EQ(h.counters().l1_dcm, 0u);
}

// The §4.4 methodology check: replay a kmeans assign pass (steady state:
// second replay of the same trace) through the Skylake hierarchy and
// confirm each size class is served from the intended level.
class KmeansResidency : public ::testing::TestWithParam<dwarfs::ProblemSize> {
};

TEST_P(KmeansResidency, SizeClassLandsInIntendedLevel) {
  using dwarfs::ProblemSize;
  const ProblemSize size = GetParam();
  dwarfs::KMeans km;
  km.setup(size);

  CacheHierarchy h(skylake());
  const auto replay = [&] {
    km.stream_trace([&h](const MemAccess& a) {
      h.access(a.address, a.bytes, a.is_write);
    });
  };
  replay();  // warm-up pass
  const auto cold = h.counters();
  ASSERT_GT(cold.total_accesses, 0u);
  replay();  // steady-state pass
  const auto c = h.counters();
  const double steady_l1 =
      static_cast<double>(c.l1_dcm - cold.l1_dcm) /
      static_cast<double>(c.total_accesses - cold.total_accesses);
  const double steady_l3 =
      static_cast<double>(c.l3_tcm - cold.l3_tcm) /
      static_cast<double>(c.total_accesses - cold.total_accesses);

  switch (size) {
    case ProblemSize::kTiny:
      // Fits L1: virtually no steady-state L1 misses.
      EXPECT_LT(steady_l1, 0.01);
      break;
    case ProblemSize::kSmall:
      // Fits L2 but not L1: L1 misses appear, no DRAM traffic.
      EXPECT_GT(steady_l1, 0.005);
      EXPECT_LT(steady_l3, 0.001);
      break;
    case ProblemSize::kMedium:
      // Fits L3 but not L2: still (almost) no DRAM traffic.
      EXPECT_LT(steady_l3, 0.005);
      break;
    case ProblemSize::kLarge:
      // Out of cache: the paper guarantees last-level misses.
      EXPECT_GT(steady_l3, 0.001);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, KmeansResidency,
                         ::testing::Values(dwarfs::ProblemSize::kTiny,
                                           dwarfs::ProblemSize::kSmall,
                                           dwarfs::ProblemSize::kMedium,
                                           dwarfs::ProblemSize::kLarge),
                         [](const auto& ti) {
                           return std::string(to_string(ti.param));
                         });

}  // namespace
}  // namespace eod::sim
