// Property tests for the high-throughput trace-replay engine: every replay
// path (batched raw, line-coalesced, set-partitioned shards, multi-
// hierarchy fan-out) must produce HierarchyCounters bit-identical to the
// seed per-access reference replay -- on randomized traces spanning the
// residence regimes of all 15 testbed hierarchies.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "sim/cache_sim.hpp"
#include "sim/device_spec.hpp"
#include "sim/replay_cache.hpp"
#include "sim/trace_replay.hpp"
#include "xcl/thread_pool.hpp"

namespace eod::sim {
namespace {

// ---------------------------------------------------------------------------
// Reference: the seed pipeline replayed one MemAccess at a time through
// CacheHierarchy::access().  Every engine path must match it bit for bit.

HierarchyCounters reference_replay(const MemoryTrace& trace,
                                   const DeviceSpec& spec) {
  CacheHierarchy h(spec);
  for (const MemAccess& a : trace) h.access(a.address, a.bytes, a.is_write);
  return h.counters();
}

ReplayMemoEntry reference_two_pass(const MemoryTrace& trace,
                                   const DeviceSpec& spec) {
  // The seed cold/warm protocol: replay, read, reset counters (cache state
  // survives), replay, read.
  CacheHierarchy h(spec);
  ReplayMemoEntry e;
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) h.reset();
    for (const MemAccess& a : trace) h.access(a.address, a.bytes, a.is_write);
    (pass == 0 ? e.cold : e.warm) = h.counters();
  }
  e.accesses = trace.size();
  return e;
}

TraceGenerator generator_of(const MemoryTrace& trace) {
  return [&trace](TraceWriter& w) {
    for (const MemAccess& a : trace) w.emit(a.address, a.bytes, a.is_write);
  };
}

void expect_counters_eq(const HierarchyCounters& got,
                        const HierarchyCounters& want,
                        const std::string& context) {
  EXPECT_EQ(got.total_accesses, want.total_accesses) << context;
  EXPECT_EQ(got.l1_dcm, want.l1_dcm) << context;
  EXPECT_EQ(got.l2_dcm, want.l2_dcm) << context;
  EXPECT_EQ(got.l3_tcm, want.l3_tcm) << context;
  EXPECT_EQ(got.tlb_dm, want.tlb_dm) << context;
}

// ---------------------------------------------------------------------------
// Randomized trace families, chosen to stress every engine fast path: line
// coalescing (same-line bursts, dense strides), the MRU filters, spans that
// straddle lines and pages, and working sets around each hierarchy level.

MemoryTrace random_trace(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  MemoryTrace t;
  const int family = static_cast<int>(seed % 6);
  const std::uint64_t base = 0x10000 + (seed % 7) * 13;  // odd alignments too
  switch (family) {
    case 0: {  // uniform random in an L1-to-L3-sized window
      const std::uint64_t window = std::uint64_t{1} << (14 + seed % 10);
      std::uniform_int_distribution<std::uint64_t> addr(0, window - 1);
      for (int i = 0; i < 40000; ++i) {
        t.push_back({base + addr(rng), 4, (i & 7) == 0});
      }
      break;
    }
    case 1: {  // dense sequential strides (heavily coalescible)
      const std::uint32_t stride = (seed % 2) ? 4 : 16;
      for (int sweep = 0; sweep < 6; ++sweep) {
        for (std::uint64_t i = 0; i < 8000; ++i) {
          t.push_back({base + i * stride, stride, false});
        }
      }
      break;
    }
    case 2: {  // hot set + cold random mix
      std::uniform_int_distribution<std::uint64_t> hot(0, 63);
      std::uniform_int_distribution<std::uint64_t> cold(0, (1u << 22) - 1);
      for (int i = 0; i < 40000; ++i) {
        const bool is_hot = rng() % 10 != 0;
        t.push_back({base + (is_hot ? hot(rng) * 64 : cold(rng)), 8, false});
      }
      break;
    }
    case 3: {  // straddling spans: random sizes and alignments
      std::uniform_int_distribution<std::uint64_t> addr(0, (1u << 20) - 1);
      std::uniform_int_distribution<std::uint32_t> bytes(1, 256);
      for (int i = 0; i < 30000; ++i) {
        t.push_back({base + addr(rng), bytes(rng), (i & 3) == 0});
      }
      break;
    }
    case 4: {  // same-line bursts (repeat coalescing + MRU filter)
      std::uniform_int_distribution<std::uint64_t> line(0, 4095);
      std::uniform_int_distribution<int> burst(1, 50);
      int i = 0;
      while (i < 40000) {
        const std::uint64_t a = base + line(rng) * 64;
        for (int b = burst(rng); b > 0 && i < 40000; --b, ++i) {
          t.push_back({a + (rng() % 60), 4, false});
        }
      }
      break;
    }
    default: {  // cyclic sweep larger than most L1s (LRU worst case)
      for (int sweep = 0; sweep < 5; ++sweep) {
        for (std::uint64_t i = 0; i < 3000; ++i) {
          t.push_back({base + i * 64, 64, false});
        }
      }
      break;
    }
  }
  return t;
}

std::vector<const DeviceSpec*> all_specs() {
  std::vector<const DeviceSpec*> specs;
  for (const DeviceSpec& s : testbed()) specs.push_back(&s);
  return specs;
}

// ---------------------------------------------------------------------------

TEST(CacheReplay, BatchedRawBitIdenticalToPerAccess) {
  const MemoryTrace trace = random_trace(3);
  for (const DeviceSpec* spec : all_specs()) {
    const HierarchyCounters want = reference_replay(trace, *spec);
    CacheHierarchy h(*spec);
    // Deliberately odd chunk sizes so batches split at awkward points.
    std::size_t i = 0, chunk = 1;
    while (i < trace.size()) {
      const std::size_t n = std::min(chunk, trace.size() - i);
      h.consume(trace.data() + i, n);
      i += n;
      chunk = chunk * 3 + 1;
    }
    expect_counters_eq(h.counters(), want, spec->name);
  }
}

TEST(CacheReplay, CoalescedBitIdenticalToPerAccessOnAllDevices) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const MemoryTrace trace = random_trace(seed);
    for (const DeviceSpec* spec : all_specs()) {
      const HierarchyCounters want = reference_replay(trace, *spec);
      CacheHierarchy h(*spec);
      struct Sink final : CoalescedSink {
        CacheHierarchy* h;
        void consume(const CoalescedAccess* page, std::size_t n) override {
          h->consume_coalesced(page, n);
        }
      } sink;
      sink.h = &h;
      TraceWriter writer(sink);
      generator_of(trace)(writer);
      writer.finish();
      EXPECT_EQ(writer.accesses(), trace.size());
      expect_counters_eq(h.counters(), want,
                         spec->name + " seed=" + std::to_string(seed));
    }
  }
}

TEST(CacheReplay, ShardedBitIdenticalToPerAccess) {
  const MemoryTrace trace = random_trace(7);
  // Collect the coalesced stream once.
  std::vector<CoalescedAccess> records;
  struct Collect final : CoalescedSink {
    std::vector<CoalescedAccess>* out;
    void consume(const CoalescedAccess* page, std::size_t n) override {
      out->insert(out->end(), page, page + n);
    }
  } collect;
  collect.out = &records;
  {
    TraceWriter writer(collect);
    generator_of(trace)(writer);
    writer.finish();
  }
  for (const DeviceSpec* spec : all_specs()) {
    CacheHierarchy probe(*spec);
    const unsigned shards = probe.max_replay_shards();
    if (shards < 2) continue;
    const HierarchyCounters want = reference_replay(trace, *spec);
    CacheHierarchy h(*spec);
    std::vector<ReplayShardCounters> accs(shards + 1, h.make_shard());
    for (unsigned s = 0; s < shards; ++s) {
      h.replay_cache_shard(records.data(), records.size(), s, shards,
                           accs[s]);
    }
    h.replay_tlb_shard(records.data(), records.size(), accs[shards]);
    for (const ReplayShardCounters& acc : accs) h.fold_shard(acc);
    expect_counters_eq(h.counters(), want, spec->name + " sharded");
  }
}

TEST(CacheReplay, FanOutTwoPassBitIdenticalToSeedProtocol) {
  xcl::ThreadPool pool(3);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const MemoryTrace trace = random_trace(seed);
    const std::vector<const DeviceSpec*> specs = all_specs();
    const std::vector<ReplayMemoEntry> got =
        replay_hierarchies(generator_of(trace), specs, pool);
    ASSERT_EQ(got.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const ReplayMemoEntry want = reference_two_pass(trace, *specs[i]);
      const std::string ctx =
          specs[i]->name + " seed=" + std::to_string(seed);
      expect_counters_eq(got[i].cold, want.cold, ctx + " cold");
      expect_counters_eq(got[i].warm, want.warm, ctx + " warm");
      EXPECT_EQ(got[i].accesses, trace.size()) << ctx;
    }
  }
}

TEST(CacheReplay, EmitRunMatchesElementwiseEmits) {
  // emit_run's direct per-line record generation must be access-for-access
  // equivalent to emitting every element, for aligned and unaligned runs.
  struct Run {
    std::uint64_t base;
    std::uint32_t elem;
    std::uint64_t count;
  };
  const std::vector<Run> runs = {
      {0x10000, 16, 1000}, {0x10008, 8, 3}, {0x10004, 4, 997},
      {0x1000c, 4, 31},    {0x20000, 64, 200}, {0x2000a, 2, 5000},
      {0x30000, 32, 1},    {0x30010, 16, 2},   {0x40001, 1, 130}};
  const TraceGenerator with_run = [&runs](TraceWriter& w) {
    for (const Run& r : runs) w.emit_run(r.base, r.elem, r.count, false);
  };
  const TraceGenerator elementwise = [&runs](TraceWriter& w) {
    for (const Run& r : runs) {
      for (std::uint64_t i = 0; i < r.count; ++i) {
        w.emit(r.base + i * r.elem, r.elem, false);
      }
    }
  };
  EXPECT_EQ(hash_trace(with_run).accesses, hash_trace(elementwise).accesses);
  for (const DeviceSpec* spec : {&skylake(), all_specs().back()}) {
    CacheHierarchy ha(*spec), hb(*spec);
    struct Sink final : CoalescedSink {
      CacheHierarchy* h;
      void consume(const CoalescedAccess* page, std::size_t n) override {
        h->consume_coalesced(page, n);
      }
    } sa, sb;
    sa.h = &ha;
    sb.h = &hb;
    {
      TraceWriter wa(sa);
      with_run(wa);
    }
    {
      TraceWriter wb(sb);
      elementwise(wb);
    }
    expect_counters_eq(ha.counters(), hb.counters(),
                       spec->name + " emit_run");
  }
}

TEST(CacheReplay, HandBuiltRepeatRecordsExactEvenForHugeSpans) {
  // Records whose span exceeds the L1 (or the whole TLB reach) cannot take
  // the guaranteed-hit repeat credit; the replay must expand them.  Check
  // against per-access expansion of the same records.
  const DeviceSpec& spec = skylake();
  const std::vector<CoalescedAccess> records = {
      {0x10000, 64 * 1024, 3},   // span 1024 lines > L1's 512
      {0x10000, 512 * 1024, 2},  // span > TLB reach (64 x 4 KiB)
      {0x20000, 64, 5},          // small span: credited
      {0x20000, 128, 0},
  };
  CacheHierarchy ref(spec);
  for (const CoalescedAccess& r : records) {
    for (std::uint32_t k = 0; k <= r.repeats; ++k) {
      ref.access(r.address, r.bytes, false);
    }
  }
  CacheHierarchy h(spec);
  h.consume_coalesced(records.data(), records.size());
  expect_counters_eq(h.counters(), ref.counters(), "huge-span records");
}

TEST(CacheReplay, WriterFlushesAcrossPageBoundaries) {
  // A trace larger than one 64K-record page must flush seamlessly.
  const std::size_t lines = kTracePageAccesses + 12345;
  const TraceGenerator gen = [lines](TraceWriter& w) {
    for (std::size_t i = 0; i < lines; ++i) {
      w.emit(i * 64, 4, false);  // every record a fresh line: no merging
    }
  };
  const DeviceSpec& spec = skylake();
  MemoryTrace trace;
  trace.reserve(lines);
  for (std::size_t i = 0; i < lines; ++i) {
    trace.push_back({i * 64, 4, false});
  }
  const HierarchyCounters want = reference_replay(trace, spec);
  CacheHierarchy h(spec);
  struct Sink final : CoalescedSink {
    CacheHierarchy* h;
    std::size_t calls = 0;
    void consume(const CoalescedAccess* page, std::size_t n) override {
      ++calls;
      h->consume_coalesced(page, n);
    }
  } sink;
  sink.h = &h;
  TraceWriter writer(sink);
  gen(writer);
  writer.finish();
  EXPECT_GE(sink.calls, 2u);
  EXPECT_EQ(writer.accesses(), lines);
  expect_counters_eq(h.counters(), want, "page boundary");
}

TEST(CacheReplay, TraceKeyIsOrderAndContentSensitive) {
  const MemoryTrace a = random_trace(1);
  MemoryTrace b = a;
  std::swap(b.front(), b.back());
  const TraceKey ka = hash_trace(generator_of(a));
  const TraceKey ka2 = hash_trace(generator_of(a));
  const TraceKey kb = hash_trace(generator_of(b));
  EXPECT_EQ(ka, ka2);
  EXPECT_EQ(ka.accesses, a.size());
  EXPECT_FALSE(ka == kb);
}

TEST(ReplayCacheTest, MemoizesAndRoundTripsThroughDisk) {
  ReplayCache::instance().clear();
  const MemoryTrace trace = random_trace(2);
  const DeviceSpec& spec = skylake();
  const ReplayMemoEntry want = reference_two_pass(trace, spec);

  const ReplayMemoEntry first =
      memoized_replay(generator_of(trace), spec, "test/first");
  expect_counters_eq(first.cold, want.cold, "memo cold");
  expect_counters_eq(first.warm, want.warm, "memo warm");
  const ReplayMemoEntry second =
      memoized_replay(generator_of(trace), spec, "test/second");
  expect_counters_eq(second.warm, want.warm, "memo hit");
  const ReplayCache::Stats stats = ReplayCache::instance().stats();
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_GE(stats.hits, 1u);

  // Disk round-trip: persist, clear, reload -- a fresh process must serve
  // the cell without replaying.
  const std::string path =
      (std::filesystem::temp_directory_path() / "eod_replay_memo_test.tsv")
          .string();
  std::filesystem::remove(path);
  ReplayCache::instance().clear();
  ReplayCache::instance().set_disk_store(path);
  (void)memoized_replay(generator_of(trace), spec, "test/disk");
  ReplayCache::instance().clear();
  const std::size_t loaded = ReplayCache::instance().set_disk_store(path);
  EXPECT_EQ(loaded, 1u);
  const TraceKey key = hash_trace(generator_of(trace));
  const auto hit =
      ReplayCache::instance().find(key, hierarchy_geometry_hash(spec));
  ASSERT_TRUE(hit.has_value());
  expect_counters_eq(hit->warm, want.warm, "disk round-trip");
  ReplayCache::instance().clear();
  std::filesystem::remove(path);
}

TEST(ReplayCacheTest, PrimeWarmsEveryHierarchyInOnePass) {
  ReplayCache::instance().clear();
  const MemoryTrace trace = random_trace(4);
  const std::vector<const DeviceSpec*> specs = all_specs();
  const TraceKey key =
      prime_replay_memo(generator_of(trace), specs, "test/prime");
  EXPECT_EQ(key.accesses, trace.size());
  for (const DeviceSpec* spec : specs) {
    const auto hit =
        ReplayCache::instance().find(key, hierarchy_geometry_hash(*spec));
    ASSERT_TRUE(hit.has_value()) << spec->name;
    const ReplayMemoEntry want = reference_two_pass(trace, *spec);
    expect_counters_eq(hit->warm, want.warm, spec->name + " primed");
  }
  ReplayCache::instance().clear();
}

}  // namespace
}  // namespace eod::sim
