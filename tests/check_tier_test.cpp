// Checked dispatch tier (DESIGN.md §10): seeded-defect kernels must each be
// detected and classified correctly — out-of-bounds write, read-before-init,
// intra-group race, divergent barrier, and a span-registered kernel calling
// barrier() — while every real dwarf at tiny comes back clean.  Also pins
// the report mechanics (dedup, severity ranking, text/TSV rendering) and
// that kChecked without a session degrades to the per-item path.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "dwarfs/registry.hpp"
#include "harness/runner.hpp"
#include "sim/testbed.hpp"
#include "xcl/buffer.hpp"
#include "xcl/check/report.hpp"
#include "xcl/check/session.hpp"
#include "xcl/context.hpp"
#include "xcl/executor.hpp"
#include "xcl/kernel.hpp"
#include "xcl/queue.hpp"

namespace eod::xcl::check {
namespace {

Device& test_device() { return sim::testbed_device("i7-6700K"); }

WorkloadProfile tiny_profile() {
  WorkloadProfile p;
  p.flops = 1.0;
  p.bytes_read = 64.0;
  p.bytes_written = 64.0;
  p.working_set_bytes = 64.0;
  return p;
}

/// Finds the first report entry of `kind`, or null.
const Finding* find_kind(const CheckReport& report, FindingKind kind) {
  for (const Finding& f : report.findings()) {
    if (f.kind == kind) return &f;
  }
  return nullptr;
}

TEST(CheckTier, OutOfBoundsWriteDetectedAndSuppressed) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 16 * sizeof(float));
  q.enqueue_fill(buf, 0.0f);

  auto out = buf.access<float>("out");
  Kernel oob("seeded_oob", [=](WorkItem& it) {
    // Items 0..15 write indices 8..23: the upper half lands out of bounds.
    out[it.global_id(0) + 8] = 1.0f;
  });
  q.enqueue(oob, NDRange(16, 16), tiny_profile());

  const CheckReport report = session.take_report();
  const Finding* f = find_kind(report, FindingKind::kOutOfBounds);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->kernel, "seeded_oob");
  EXPECT_EQ(f->buffer, "out");
  EXPECT_EQ(f->occurrences, 8u);  // ids 8..15, one finding each, deduped
  EXPECT_GE(f->byte_offset, 16 * sizeof(float));
  // No race/uninit noise from the in-bounds half.
  EXPECT_EQ(report.findings().size(), 1u);
  EXPECT_EQ(report.error_count(), 1u);
}

TEST(CheckTier, ReadBeforeInitDetected) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer src(ctx, 8 * sizeof(float));   // never written: uninit
  Buffer dst(ctx, 8 * sizeof(float));

  auto in = src.access<const float>("uninit_src");
  auto out = dst.access<float>("dst");
  Kernel k("seeded_uninit", [=](WorkItem& it) {
    const std::size_t i = it.global_id(0);
    out[i] = in[i] + 1.0f;
  });
  q.enqueue(k, NDRange(8, 8), tiny_profile());

  const CheckReport report = session.take_report();
  const Finding* f = find_kind(report, FindingKind::kUninitRead);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->buffer, "uninit_src");
  EXPECT_EQ(f->occurrences, 8u);
  EXPECT_EQ(report.error_count(), 0u);
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(CheckTier, HostWrittenBufferReadsClean) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer src(ctx, 8 * sizeof(float));
  Buffer dst(ctx, 8 * sizeof(float));
  q.enqueue_fill(src, 2.0f);  // transfer-style init clears the uninit state

  auto in = src.access<const float>("src");
  auto out = dst.access<float>("dst");
  Kernel k("copy", [=](WorkItem& it) {
    const std::size_t i = it.global_id(0);
    out[i] = in[i];
  });
  q.enqueue(k, NDRange(8, 8), tiny_profile());

  EXPECT_TRUE(session.report().clean()) << session.report().to_text();
}

TEST(CheckTier, IntraGroupRaceDetected) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 4 * sizeof(std::uint32_t));

  auto out = buf.access<std::uint32_t>("raced");
  Kernel k("seeded_race", [=](WorkItem& it) {
    // Every item of the group writes slot 0 in the same barrier interval.
    out[0] = static_cast<std::uint32_t>(it.global_id(0));
  });
  q.enqueue(k, NDRange(8, 8), tiny_profile());

  const CheckReport report = session.take_report();
  const Finding* f = find_kind(report, FindingKind::kIntraGroupRace);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->buffer, "raced");
  EXPECT_EQ(f->byte_offset, 0u);
  EXPECT_NE(f->item_a, f->item_b);  // both participants identified
}

TEST(CheckTier, CrossGroupSameByteIsNotARace) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 4 * sizeof(std::uint32_t));

  auto out = buf.access<std::uint32_t>("shared");
  Kernel k("one_item_groups", [=](WorkItem& it) {
    out[0] = static_cast<std::uint32_t>(it.global_id(0));
  });
  // Four groups of one item each: group execution order is unspecified on
  // real devices, but single-item groups cannot race intra-group.
  q.enqueue(k, NDRange(4, 1), tiny_profile());

  EXPECT_EQ(find_kind(session.report(), FindingKind::kIntraGroupRace),
            nullptr)
      << session.report().to_text();
}

TEST(CheckTier, BarrierSeparatedPhasesAreNotARace) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 8 * sizeof(float));
  q.enqueue_fill(buf, 1.0f);

  auto data = buf.access<float>("staged");
  Kernel k("staged_reduce", [=](WorkItem& it) {
    const std::size_t i = it.local_id(0);
    data[i] = static_cast<float>(i);  // phase 1: disjoint writes
    it.barrier();
    // Phase 2: item 0 reads everything written before the barrier.
    if (i == 0) {
      float sum = 0.0f;
      for (std::size_t j = 0; j < 8; ++j) sum += data[j];
      data[0] = sum;
    }
  });
  k.uses_barriers();
  q.enqueue(k, NDRange(8, 8), tiny_profile());

  EXPECT_TRUE(session.report().clean()) << session.report().to_text();
}

TEST(CheckTier, DivergentBarrierDetected) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 8 * sizeof(float));
  q.enqueue_fill(buf, 0.0f);

  auto data = buf.access<float>("diverged");
  Kernel k("seeded_divergence", [=](WorkItem& it) {
    const std::size_t i = it.local_id(0);
    if (i < 4) it.barrier();  // only half the group arrives
    data[i] = 1.0f;
  });
  k.uses_barriers();
  q.enqueue(k, NDRange(8, 8), tiny_profile());

  const CheckReport report = session.take_report();
  const Finding* f = find_kind(report, FindingKind::kBarrierDivergence);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kError);
  EXPECT_EQ(f->kernel, "seeded_divergence");
}

TEST(CheckTier, SpanKernelCallingBarrierIsAFinding) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 8 * sizeof(float));
  q.enqueue_fill(buf, 0.0f);

  auto data = buf.access<float>("span_misuse");
  Kernel k("seeded_span_barrier", [=](WorkItem& it) {
    it.barrier();  // violates the barrier-free span-tier precondition
    data[it.global_id(0)] = 1.0f;
  });
  // Registered span body, but NOT uses_barriers(): the author asserted the
  // kernel is barrier-free, and the per-item body breaks that assertion.
  k.span([=](std::size_t, std::size_t) {});
  q.enqueue(k, NDRange(8, 8), tiny_profile());

  const CheckReport report = session.take_report();
  const Finding* f = find_kind(report, FindingKind::kSpanBarrier);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_EQ(f->kernel, "seeded_span_barrier");
}

TEST(CheckTier, UnmarkedBarrierClassifiedAsDivergence) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 8 * sizeof(float));
  q.enqueue_fill(buf, 0.0f);

  auto data = buf.access<float>("unmarked");
  Kernel k("seeded_unmarked_barrier", [=](WorkItem& it) {
    it.barrier();  // kernel never declared uses_barriers()
    data[it.global_id(0)] = 1.0f;
  });
  q.enqueue(k, NDRange(8, 8), tiny_profile());

  EXPECT_NE(
      find_kind(session.report(), FindingKind::kBarrierDivergence),
      nullptr);
}

TEST(CheckTier, ReportRendersTextAndTsv) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 4 * sizeof(float));
  auto out = buf.access<float>("victim");
  Kernel k("render_me", [=](WorkItem& it) {
    out[it.global_id(0) + 4] = 1.0f;  // all four accesses out of bounds
  });
  q.enqueue(k, NDRange(4, 4), tiny_profile());

  const CheckReport report = session.take_report();
  const std::string text = report.to_text();
  EXPECT_NE(text.find("out-of-bounds"), std::string::npos);
  EXPECT_NE(text.find("render_me"), std::string::npos);
  EXPECT_NE(text.find("victim"), std::string::npos);
  const std::string tsv = report.to_tsv();
  EXPECT_NE(tsv.find("kind\t"), std::string::npos);
  EXPECT_NE(tsv.find("out-of-bounds"), std::string::npos);
}

TEST(CheckTier, CheckedModeWithoutSessionDegradesToItemPath) {
  // set_dispatch_mode(kChecked) without a live session must not crash or
  // divert into the checker: the session pointer is authoritative.
  const DispatchMode prev = dispatch_mode();
  set_dispatch_mode(DispatchMode::kChecked);
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 8 * sizeof(float));
  auto out = buf.access<float>("plain");
  Kernel k("no_session", [=](WorkItem& it) {
    out[it.global_id(0)] = 2.0f;
  });
  const ExecutorStats before = executor_stats();
  q.enqueue(k, NDRange(8, 8), tiny_profile());
  q.finish();  // deferred under EOD_QUEUE=ooo; must run before the mode resets
  const ExecutorStats after = executor_stats();
  set_dispatch_mode(prev);

  EXPECT_EQ(after.groups_checked, before.groups_checked);
  EXPECT_FLOAT_EQ(buf.view<const float>()[3], 2.0f);
}

TEST(CheckTier, OnlyOneSessionAtATime) {
  CheckSession session;
  EXPECT_THROW(CheckSession(), Error);
}

TEST(CheckTier, GroupsCheckedCounterAdvances) {
  CheckSession session;
  Context ctx(test_device());
  Queue q(ctx);
  Buffer buf(ctx, 64 * sizeof(float));
  auto out = buf.access<float>("counted");
  Kernel k("count_groups", [=](WorkItem& it) {
    out[it.global_id(0)] = 0.0f;
  });
  const ExecutorStats before = executor_stats();
  q.enqueue(k, NDRange(64, 16), tiny_profile());
  const ExecutorStats after = executor_stats();
  EXPECT_EQ(after.groups_checked - before.groups_checked, 4u);
}

// Every real dwarf (benchmarks and extensions) must come back clean from a
// validated tiny run under the checked tier — the same gate bench/
// check_report enforces in CI, pinned here as a tier-1 test.
class CheckedDwarf : public ::testing::TestWithParam<std::string> {};

TEST_P(CheckedDwarf, TinyRunsCleanUnderCheckedDispatch) {
  auto dwarf = dwarfs::create_dwarf(GetParam());
  harness::MeasureOptions opts;
  opts.functional = true;
  opts.validate = true;
  opts.samples = 1;
  opts.dispatch = DispatchMode::kChecked;
  const harness::Measurement m = harness::measure(
      *dwarf, dwarfs::ProblemSize::kTiny, test_device(), opts);
  EXPECT_TRUE(m.validation.ok) << m.validation.detail;
  ASSERT_TRUE(m.check_performed);
  EXPECT_TRUE(m.check_report.clean()) << m.check_report.to_text();
}

std::vector<std::string> all_dwarf_names() {
  std::vector<std::string> names = dwarfs::benchmark_names();
  for (const std::string& ext : dwarfs::extension_names()) {
    names.push_back(ext);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllDwarfs, CheckedDwarf,
                         ::testing::ValuesIn(all_dwarf_names()),
                         [](const auto& ti) { return ti.param; });

}  // namespace
}  // namespace eod::xcl::check
