// Integration tests: the qualitative claims of the paper's evaluation
// section (§5, Figures 1-5), asserted against the simulated testbed.
// These are the reproduction's contract -- see DESIGN.md §4 and
// EXPERIMENTS.md for the full index.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "dwarfs/registry.hpp"
#include "harness/runner.hpp"
#include "sim/testbed.hpp"

namespace eod::harness {
namespace {

using dwarfs::ProblemSize;
using sim::AcceleratorClass;

MeasureOptions model_only() {
  MeasureOptions o;
  o.samples = 10;
  o.functional = false;
  o.validate = false;
  return o;
}

/// Median modeled time (ms) per device name for one benchmark/size.
std::map<std::string, double> medians(const std::string& benchmark,
                                      ProblemSize size) {
  std::map<std::string, double> out;
  for (const Measurement& m :
       measure_all_devices(benchmark, size, model_only())) {
    out[m.device] = m.time_summary().median;
  }
  return out;
}

double best_of_class(const std::map<std::string, double>& times,
                     AcceleratorClass klass) {
  double best = HUGE_VAL;
  for (const auto& [name, t] : times) {
    if (sim::spec_by_name(name).klass == klass) best = std::min(best, t);
  }
  return best;
}

double worst_of_class(const std::map<std::string, double>& times,
                      AcceleratorClass klass) {
  double worst = 0.0;
  for (const auto& [name, t] : times) {
    if (sim::spec_by_name(name).klass == klass) worst = std::max(worst, t);
  }
  return worst;
}

double best_gpu(const std::map<std::string, double>& times) {
  return std::min(best_of_class(times, AcceleratorClass::kConsumerGpu),
                  best_of_class(times, AcceleratorClass::kHpcGpu));
}

// ---- Figure 1: crc ----

TEST(Fig1Crc, CpusFastestAtEverySize) {
  // "Execution times for crc are lowest on CPU-type architectures."
  for (const ProblemSize s :
       {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
        ProblemSize::kLarge}) {
    const auto t = medians("crc", s);
    const double worst_cpu = worst_of_class(t, AcceleratorClass::kCpu);
    EXPECT_LT(worst_cpu, best_gpu(t))
        << "crc " << to_string(s) << ": a GPU beat a CPU";
  }
}

TEST(Fig1Crc, KnlIsPoor) {
  // "the performance on the KNL is poor due to the lack of support for
  // wide vector registers in Intel's OpenCL SDK."
  const auto t = medians("crc", ProblemSize::kLarge);
  const double knl = t.at("Xeon Phi 7210");
  EXPECT_GT(knl, 3.0 * worst_of_class(t, AcceleratorClass::kCpu));
  // KNL lands in the worst tier overall: slower than every NVIDIA part.
  for (const char* dev : {"Titan X", "GTX 1080", "GTX 1080 Ti", "K20m",
                          "K40m"}) {
    EXPECT_GT(knl, t.at(dev)) << dev;
  }
}

// ---- §5.1 headline: every non-crc benchmark is fastest on a GPU ----

class GpuWins : public ::testing::TestWithParam<std::string> {};

TEST_P(GpuWins, BestDeviceIsAGpuAtLargestSize) {
  auto dwarf = dwarfs::create_dwarf(GetParam());
  const ProblemSize size = dwarf->supported_sizes().back();
  const auto t = medians(GetParam(), size);
  EXPECT_LT(best_gpu(t), best_of_class(t, AcceleratorClass::kCpu))
      << GetParam() << " at " << to_string(size);
}

// hmm is excluded: its tiny instance is launch-overhead-bound, where the
// modeled CPU runtime wins (documented deviation, see EXPERIMENTS.md).
INSTANTIATE_TEST_SUITE_P(NonCrcBenchmarks, GpuWins,
                         ::testing::Values("kmeans", "lud", "csr", "fft",
                                           "dwt", "srad", "nw", "gem",
                                           "nqueens"),
                         [](const auto& ti) { return ti.param; });

// ---- Figure 2a: kmeans ----

TEST(Fig2Kmeans, CpuComparableToGpu) {
  // "A notable exception is k-means for which CPU execution times were
  // comparable to GPU, which reflects the relatively low ratio of
  // floating-point to memory operations."
  const auto t = medians("kmeans", ProblemSize::kLarge);
  const double cpu = best_of_class(t, AcceleratorClass::kCpu);
  const double gpu = best_gpu(t);
  EXPECT_LT(cpu, 4.0 * gpu);  // same order of magnitude
  // ... unlike srad at the same size, where the gap is much wider.
  const auto ts = medians("srad", ProblemSize::kLarge);
  EXPECT_GT(best_of_class(ts, AcceleratorClass::kCpu), 6.0 * best_gpu(ts));
}

// ---- Figure 2b/2d/2e: the i5-3550's small L3 ----

class I5Cliff : public ::testing::TestWithParam<std::string> {};

TEST_P(I5Cliff, I5DegradesFromSmallToMedium) {
  // "the older i5-3550 CPU has a smaller L3 cache and exhibits worse
  // performance when moving from small to medium problem sizes" (shown for
  // lud, dwt, fft, srad) -- medium working sets fit the 8 MiB L3 of the
  // i7-6700K but spill the i5's 6 MiB.
  const auto small = medians(GetParam(), ProblemSize::kSmall);
  const auto medium = medians(GetParam(), ProblemSize::kMedium);
  const double i5_growth = medium.at("i5-3550") / small.at("i5-3550");
  const double i7_growth = medium.at("i7-6700K") / small.at("i7-6700K");
  EXPECT_GT(i5_growth, 2.0 * i7_growth) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SpectralAndDense, I5Cliff,
                         ::testing::Values("lud", "dwt", "fft", "srad"),
                         [](const auto& ti) { return ti.param; });

// ---- Figure 3a: srad gap widens ----

TEST(Fig3Srad, CpuGpuGapWidensWithProblemSize) {
  // "Examining the transition from tiny to large problem sizes ... shows
  // the performance gap between CPU and GPU architectures widening for
  // srad."
  double prev_ratio = 0.0;
  for (const ProblemSize s :
       {ProblemSize::kSmall, ProblemSize::kMedium, ProblemSize::kLarge}) {
    const auto t = medians("srad", s);
    const double ratio =
        best_of_class(t, AcceleratorClass::kCpu) / best_gpu(t);
    EXPECT_GT(ratio, prev_ratio) << to_string(s);
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 5.0);  // decisively GPU territory at large
}

// ---- Figure 3b: nw ----

TEST(Fig3Nw, AmdGpusDegradeWithSize) {
  // "all AMD GPUs exhibit worse performance as size increases" and "a
  // widening performance gap over each increase in problem size between
  // AMD GPUs and the other devices."
  double prev_gap = 0.0;
  for (const ProblemSize s :
       {ProblemSize::kSmall, ProblemSize::kMedium, ProblemSize::kLarge}) {
    const auto t = medians("nw", s);
    double best_amd = HUGE_VAL;
    double best_nvidia = HUGE_VAL;
    for (const auto& [name, time] : t) {
      const auto& spec = sim::spec_by_name(name);
      if (spec.vendor == "AMD") best_amd = std::min(best_amd, time);
      if (spec.vendor == "Nvidia") best_nvidia = std::min(best_nvidia, time);
    }
    const double gap = best_amd / best_nvidia;
    EXPECT_GT(gap, prev_gap) << to_string(s);
    prev_gap = gap;
  }
  EXPECT_GT(prev_gap, 1.8);
}

TEST(Fig3Nw, IntelCpusComparableToNvidiaGpus) {
  // "the Intel CPUs and NVIDIA GPUs perform comparably over all problem
  // sizes" -- dynamic programming performance is tied to runtime support,
  // not accelerator class.
  for (const ProblemSize s : {ProblemSize::kSmall, ProblemSize::kLarge}) {
    const auto t = medians("nw", s);
    double best_nvidia = HUGE_VAL;
    for (const auto& [name, time] : t) {
      if (sim::spec_by_name(name).vendor == "Nvidia") {
        best_nvidia = std::min(best_nvidia, time);
      }
    }
    const double best_cpu = best_of_class(t, AcceleratorClass::kCpu);
    EXPECT_LT(best_cpu / best_nvidia, 3.0) << to_string(s);
    EXPECT_GT(best_cpu / best_nvidia, 1.0 / 3.0) << to_string(s);
  }
}

// ---- HPC vs consumer GPU generations ----

TEST(GpuGenerations, HpcGpusBeatSameGenerationConsumersButLoseToModern) {
  // "While the HPC GPUs outperformed consumer GPUs of the same generation
  // for most benchmarks and problem sizes, they were always beaten by more
  // modern GPUs."
  int hpc_beats_same_gen = 0;
  int modern_beats_hpc = 0;
  int cases = 0;
  for (const char* bench : {"lud", "srad", "fft", "csr"}) {
    const auto t = medians(bench, ProblemSize::kLarge);
    // FirePro S9150 (HPC Hawaii) vs HD 7970 (consumer Tahiti, older gen).
    if (t.at("FirePro S9150") < t.at("HD 7970")) ++hpc_beats_same_gen;
    // Modern consumer (Titan X) vs the HPC parts.
    if (t.at("Titan X") < t.at("K20m") &&
        t.at("Titan X") < t.at("FirePro S9150")) {
      ++modern_beats_hpc;
    }
    ++cases;
  }
  EXPECT_GE(hpc_beats_same_gen, cases - 1);  // "for most benchmarks"
  EXPECT_EQ(modern_beats_hpc, cases);        // "always beaten"
}

// ---- CoV vs clock (§5.1) ----

TEST(Variance, LowerClockedDevicesShowHigherCov) {
  // "the coefficient of variation in execution times is much greater for
  // devices with a lower clock frequency, regardless of accelerator type."
  MeasureOptions o = model_only();
  o.samples = 50;
  const auto all = measure_all_devices("srad", ProblemSize::kMedium, o);
  double k20_cov = 0.0;
  double i7_cov = 0.0;
  double titan_cov = 0.0;
  for (const auto& m : all) {
    if (m.device == "K20m") k20_cov = m.time_summary().cov();
    if (m.device == "i7-6700K") i7_cov = m.time_summary().cov();
    if (m.device == "Titan X") titan_cov = m.time_summary().cov();
  }
  EXPECT_GT(k20_cov, i7_cov);     // 706 MHz vs 4.3 GHz
  EXPECT_GT(k20_cov, titan_cov);  // 706 MHz vs 1.5 GHz, same class
}

// ---- Figure 5: energy ----

TEST(Fig5Energy, CpuUsesMoreEnergyExceptCrc) {
  // "All the benchmarks use more energy on the CPU, with the exception of
  // crc."
  MeasureOptions o = model_only();
  for (const char* bench :
       {"kmeans", "lud", "csr", "fft", "dwt", "gem", "srad", "crc"}) {
    auto dwarf = dwarfs::create_dwarf(bench);
    MeasureOptions per = o;
    const Measurement cpu = measure(*dwarf, ProblemSize::kLarge,
                                    sim::testbed_device("i7-6700K"), per);
    per.reuse_setup = true;
    const Measurement gpu = measure(*dwarf, ProblemSize::kLarge,
                                    sim::testbed_device("GTX 1080"), per);
    const double ratio =
        cpu.energy_summary().median / gpu.energy_summary().median;
    if (std::string(bench) == "crc") {
      EXPECT_LT(ratio, 1.0) << bench;
    } else {
      EXPECT_GT(ratio, 1.0) << bench;
    }
  }
}

TEST(Fig5Energy, EnergyVarianceLargerOnCpu) {
  // "Variance with respect to energy usage is larger on the CPU, which is
  // consistent with the execution time results."  (RAPL integrates
  // accurately, so the spread follows the time spread; we check times.)
  MeasureOptions o = model_only();
  o.samples = 50;
  auto dwarf = dwarfs::create_dwarf("fft");
  const Measurement cpu = measure(*dwarf, ProblemSize::kLarge,
                                  sim::testbed_device("i5-3550"), o);
  o.reuse_setup = true;
  const Measurement gpu = measure(*dwarf, ProblemSize::kLarge,
                                  sim::testbed_device("Titan X"), o);
  EXPECT_GT(cpu.time_summary().cov() * 3.0, gpu.time_summary().cov());
}

}  // namespace
}  // namespace eod::harness
