// Regression bands for the calibrated device models.  The figure-shape
// tests assert orderings; these pin the absolute modeled magnitudes into
// loose bands so an accidental re-tune of one knob (bandwidths, overheads,
// pattern factors) that silently shifts everything is caught.
//
// Bands are intentionally wide (2-4x) -- they are tripwires, not golden
// values.  If a deliberate recalibration moves a number, update the band
// and EXPERIMENTS.md together.
#include <gtest/gtest.h>

#include "dwarfs/registry.hpp"
#include "harness/runner.hpp"
#include "sim/testbed.hpp"

namespace eod::harness {
namespace {

using dwarfs::ProblemSize;

double modeled_ms(const char* bench, ProblemSize size, const char* device) {
  MeasureOptions o;
  o.samples = 1;
  o.functional = false;
  auto dwarf = dwarfs::create_dwarf(bench);
  return measure(*dwarf, size, sim::testbed_device(device), o)
             .kernel_seconds *
         1e3;
}

struct Band {
  const char* bench;
  ProblemSize size;
  const char* device;
  double lo_ms;
  double hi_ms;
};

class RegressionBands : public ::testing::TestWithParam<Band> {};

TEST_P(RegressionBands, ModeledTimeWithinBand) {
  const Band& b = GetParam();
  const double t = modeled_ms(b.bench, b.size, b.device);
  EXPECT_GE(t, b.lo_ms) << b.bench << " on " << b.device;
  EXPECT_LE(t, b.hi_ms) << b.bench << " on " << b.device;
}

INSTANTIATE_TEST_SUITE_P(
    CalibratedPoints, RegressionBands,
    ::testing::Values(
        // Figure 1 anchors.
        Band{"crc", ProblemSize::kLarge, "i7-6700K", 0.08, 0.8},
        Band{"crc", ProblemSize::kLarge, "GTX 1080", 0.3, 2.5},
        Band{"crc", ProblemSize::kLarge, "Xeon Phi 7210", 0.8, 8.0},
        Band{"crc", ProblemSize::kTiny, "i7-6700K", 0.002, 0.03},
        // Figure 2 anchors.
        Band{"kmeans", ProblemSize::kLarge, "i7-6700K", 1.5, 15.0},
        Band{"kmeans", ProblemSize::kLarge, "Titan X", 0.8, 8.0},
        Band{"lud", ProblemSize::kLarge, "Titan X", 20.0, 200.0},
        Band{"fft", ProblemSize::kLarge, "i7-6700K", 10.0, 100.0},
        Band{"fft", ProblemSize::kLarge, "GTX 1080", 1.0, 12.0},
        // Figure 3 anchors.
        Band{"srad", ProblemSize::kLarge, "i7-6700K", 1.5, 15.0},
        Band{"srad", ProblemSize::kLarge, "Titan X", 0.1, 1.5},
        Band{"nw", ProblemSize::kLarge, "R9 290X", 8.0, 40.0},
        Band{"nw", ProblemSize::kLarge, "GTX 1080", 3.0, 20.0},
        // Figure 4 anchors.
        Band{"gem", ProblemSize::kTiny, "GTX 1080", 0.003, 0.08},
        Band{"hmm", ProblemSize::kTiny, "i7-6700K", 0.1, 1.5}),
    [](const auto& ti) {
      return std::string(ti.param.bench) + "_" +
             to_string(ti.param.size) + "_" +
             [d = std::string(ti.param.device)]() mutable {
               for (auto& c : d) {
                 if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
               }
               return d;
             }();
    });

TEST(RegressionBands, EnergyAnchors) {
  MeasureOptions o;
  o.functional = false;
  auto fft = dwarfs::create_dwarf("fft");
  const Measurement cpu = measure(*fft, ProblemSize::kLarge,
                                  sim::testbed_device("i7-6700K"), o);
  // ~70 W x ~28 ms: tens of millijoules to a few joules.
  const double j = cpu.energy_summary().median;
  EXPECT_GT(j, 0.2);
  EXPECT_LT(j, 20.0);
}

TEST(RegressionBands, TransferAnchors) {
  // fft large moves 2 x 16 MiB each way on a PCIe device.
  MeasureOptions o;
  o.functional = false;
  auto fft = dwarfs::create_dwarf("fft");
  const Measurement m = measure(*fft, ProblemSize::kLarge,
                                sim::testbed_device("GTX 1080"), o);
  EXPECT_GT(m.transfer_seconds * 1e3, 1.0);
  EXPECT_LT(m.transfer_seconds * 1e3, 20.0);
}

}  // namespace
}  // namespace eod::harness
