// Tests for the work-stealing NDRange executor: range coverage, chunk
// stealing, nested-launch safety, deterministic exception selection, and
// scheduling-independent (bit-identical) barrier-kernel results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "sim/testbed.hpp"
#include "xcl/executor.hpp"
#include "xcl/fiber.hpp"
#include "xcl/kernel.hpp"
#include "xcl/thread_pool.hpp"

namespace eod::xcl {
namespace {

TEST(WorkStealingPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(10000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkStealingPool, SmallRangesWithManyWorkers) {
  // n < participants leaves most per-participant ranges empty.
  ThreadPool pool(8);
  for (std::size_t n : {2u, 3u, 5u, 7u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkStealingPool, TasksAndClaimsAreCounted) {
  ThreadPool pool(2);
  pool.reset_stats();
  pool.parallel_for(1000, [](std::size_t) {});
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.launches, 1u);
  EXPECT_EQ(s.tasks_executed, 1000u);
  EXPECT_GT(s.chunks_claimed + s.chunks_stolen, 0u);
}

TEST(WorkStealingPool, ImbalancedWorkIsStolen) {
  // Participant 0's range is pathologically slow; the fast participants
  // must drain it from the back.  64 iterations with grain 1-2 and 2 ms
  // sleeps give thieves ~tens of milliseconds to be scheduled.
  ThreadPool pool(4);
  pool.reset_stats();
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i]++;
    if (i < kN / 5) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GT(pool.stats().chunks_stolen, 0u);
}

TEST(WorkStealingPool, NestedLaunchRunsInlineWithoutDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(pool.in_launch());
    pool.parallel_for(100, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 800);
  EXPECT_FALSE(pool.in_launch());
}

TEST(WorkStealingPool, DoublyNestedLaunchStillCompletes) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(4, [&](std::size_t) {
      pool.parallel_for(4, [&](std::size_t) { total++; });
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(WorkStealingPool, LowestIndexExceptionWinsDeterministically) {
  ThreadPool pool(4);
  // Several iterations throw from different chunks; whatever the thread
  // interleaving, the surfaced exception must be index 57's.
  for (int rep = 0; rep < 25; ++rep) {
    try {
      pool.parallel_for(1000, [](std::size_t i) {
        if (i == 57 || i == 500 || i == 901) {
          throw std::runtime_error(std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "57");
    }
  }
}

TEST(WorkStealingPool, UsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
}

TEST(WorkStealingPool, ZeroIterationsDoesNotTouchThePool) {
  ThreadPool pool(2);
  pool.reset_stats();
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  const ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.launches, 0u);
  EXPECT_EQ(s.tasks_executed, 0u);
}

TEST(WorkStealingPool, ConcurrentLaunchesFromTwoThreadsSerialize) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  auto burst = [&] {
    for (int i = 0; i < 20; ++i) {
      pool.parallel_for(100, [&](std::size_t) { total++; });
    }
  };
  std::thread other(burst);
  burst();
  other.join();
  EXPECT_EQ(total.load(), 2 * 20 * 100);
}

// A barrier kernel whose result depends on cross-item __local traffic: each
// item publishes into local memory, synchronizes, then combines a peer's
// value.  Any scheduling- or arena-reuse bug shows up as a wrong lane.
Kernel make_barrier_kernel(std::vector<int>& out, std::size_t local) {
  int* sink = out.data();
  Kernel k("rotate", [sink, local](WorkItem& it) {
    auto stage = it.local<int>(0, local);
    const std::size_t lid = it.local_id(0);
    stage[lid] = static_cast<int>(it.global_id(0) * 3 + 1);
    it.barrier();
    sink[it.global_id(0)] =
        stage[(lid + 1) % local] + static_cast<int>(it.group_id(0));
  });
  k.uses_barriers();
  return k;
}

TEST(WorkStealingPool, BarrierResultsIdenticalAcross1_2_NWorkerPools) {
  constexpr std::size_t kLocal = 8;
  constexpr std::size_t kGlobal = 64 * kLocal;
  Device& device = sim::testbed_device("i7-6700K");
  NDRange range(kGlobal, kLocal);

  auto run_with = [&](unsigned workers) {
    std::vector<int> out(kGlobal, -1);
    Kernel k = make_barrier_kernel(out, kLocal);
    ThreadPool pool(workers);
    // Two launches per pool so the second runs against recycled arenas and
    // fiber stacks, not fresh ones.
    execute_ndrange(k, range, device, &pool);
    execute_ndrange(k, range, device, &pool);
    return out;
  };

  const std::vector<int> serial = run_with(1);
  EXPECT_EQ(serial, run_with(2));
  EXPECT_EQ(serial, run_with(4));
  // And against the global pool (whatever its width on this host).
  std::vector<int> out(kGlobal, -1);
  Kernel k = make_barrier_kernel(out, kLocal);
  execute_ndrange(k, range, device);
  EXPECT_EQ(serial, out);
}

TEST(ExecutorStats, ArenaHighWaterAndFiberReuseAreObserved) {
  constexpr std::size_t kLocal = 8;
  Device& device = sim::testbed_device("i7-6700K");
  NDRange range(32 * kLocal, kLocal);
  std::vector<int> out(32 * kLocal, 0);
  Kernel k = make_barrier_kernel(out, kLocal);

  reset_executor_stats();
  execute_ndrange(k, range, device);
  execute_ndrange(k, range, device);
  const ExecutorStats s = executor_stats();
  EXPECT_EQ(s.groups_fiber, 64u);
  EXPECT_GE(s.arena_bytes_hwm, kLocal * sizeof(int));
  // The second launch must reuse (not reallocate) every group's stacks.
  EXPECT_GE(s.fiber_stacks_reused, 32u * kLocal);
  EXPECT_LE(s.fiber_stacks_created,
            static_cast<std::uint64_t>(ThreadPool::global().size() + 1) *
                kLocal);
}

TEST(FiberPoolReuse, StacksAreRetainedAcrossGroups) {
  FiberPool pool;
  std::vector<int> acc(16, 0);
  for (int round = 0; round < 3; ++round) {
    pool.run_group(16, [&](std::size_t i) {
      acc[i]++;
      Fiber::yield_current();
      acc[i]++;
    });
  }
  EXPECT_EQ(pool.pooled(), 16u);
  for (const int v : acc) EXPECT_EQ(v, 6);
}

TEST(FiberPoolReuse, UsableAfterBodyExceptionAndDivergence) {
  FiberPool pool;
  EXPECT_THROW(pool.run_group(4,
                              [](std::size_t i) {
                                if (i == 2) throw std::runtime_error("mid");
                                Fiber::yield_current();
                              }),
               std::runtime_error);
  // Divergent barrier counts are still diagnosed on a reused pool.
  EXPECT_THROW(pool.run_group(4,
                              [](std::size_t i) {
                                if (i != 0) Fiber::yield_current();
                              }),
               Error);
  // And a well-behaved group afterwards runs cleanly on recycled stacks.
  std::vector<int> acc(4, 0);
  pool.run_group(4, [&](std::size_t i) {
    acc[i] = 1;
    Fiber::yield_current();
    acc[i] = 2;
  });
  for (const int v : acc) EXPECT_EQ(v, 2);
}

}  // namespace
}  // namespace eod::xcl
