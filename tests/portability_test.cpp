// Tests for the performance-portability analysis (§7 "ideal performance").
#include <gtest/gtest.h>

#include "dwarfs/registry.hpp"
#include "harness/portability.hpp"
#include "sim/perf_model.hpp"
#include "sim/testbed.hpp"

namespace eod::harness {
namespace {

using dwarfs::ProblemSize;

TEST(Pennycook, HarmonicMeanProperties) {
  EXPECT_DOUBLE_EQ(pennycook_pp({}), 0.0);
  EXPECT_DOUBLE_EQ(pennycook_pp({0.5}), 0.5);
  EXPECT_NEAR(pennycook_pp({0.5, 0.5}), 0.5, 1e-12);
  // Harmonic mean <= arithmetic mean, dominated by the worst device.
  EXPECT_NEAR(pennycook_pp({1.0, 0.25}), 0.4, 1e-12);
  // A single failing device zeroes the metric (Pennycook's definition).
  EXPECT_DOUBLE_EQ(pennycook_pp({1.0, 0.9, 0.0}), 0.0);
}

TEST(Roofline, IdealNeverExceedsAchieved) {
  const std::vector<xcl::Device*> devices = sim::testbed_devices();
  for (const char* bench : {"srad", "fft", "crc", "gem"}) {
    auto probe = dwarfs::create_dwarf(bench);
    const ProblemSize size = probe->supported_sizes().front();
    const PortabilityReport r = portability_report(bench, size, devices);
    for (const DeviceEfficiency& e : r.devices) {
      EXPECT_GT(e.ideal_seconds, 0.0) << bench << " on " << e.device;
      EXPECT_LE(e.ideal_seconds, e.achieved_seconds * (1.0 + 1e-9))
          << bench << " on " << e.device;
      EXPECT_LE(e.efficiency(), 1.0 + 1e-9);
    }
    EXPECT_GT(r.performance_portability, 0.0) << bench;
    EXPECT_LE(r.performance_portability, 1.0 + 1e-9) << bench;
  }
}

TEST(Roofline, LaunchBoundCodesScoreLow) {
  // nw is a launch stream of small kernels; srad is two bulk kernels.
  // Ideal-performance analysis must expose the difference (the paper's
  // stated purpose for the metric).
  const std::vector<xcl::Device*> devices = {
      &sim::testbed_device("GTX 1080")};
  const PortabilityReport nw =
      portability_report("nw", ProblemSize::kMedium, devices);
  const PortabilityReport srad =
      portability_report("srad", ProblemSize::kMedium, devices);
  EXPECT_LT(nw.devices[0].efficiency(), 0.3);
  EXPECT_GT(srad.devices[0].efficiency(), 0.5);
}

TEST(Roofline, CacheResidenceRaisesTheBar) {
  // For a CPU, the ideal time of an L1-resident working set must be far
  // below the DRAM roofline of the same traffic.
  const sim::DevicePerfModel m(sim::skylake());
  xcl::WorkloadProfile p;
  p.flops = 1e6;
  p.bytes_read = 1e8;
  p.working_set_bytes = 16 * 1024;  // L1
  const double l1 = m.roofline_seconds({"k", xcl::NDRange(1 << 16), p});
  p.working_set_bytes = 1e9;  // DRAM
  const double dram = m.roofline_seconds({"k", xcl::NDRange(1 << 16), p});
  EXPECT_LT(l1 * 4.0, dram);
}

TEST(Roofline, EfficiencyOrderingMatchesKernelShape) {
  // The E5's bigger caches cannot make its *efficiency* exceed 1, and the
  // per-device efficiencies stay within (0, 1] across the full testbed for
  // every benchmark.
  for (const std::string& name : dwarfs::benchmark_names()) {
    auto probe = dwarfs::create_dwarf(name);
    const PortabilityReport r = portability_report(
        name, probe->supported_sizes().front(), sim::testbed_devices());
    for (const DeviceEfficiency& e : r.devices) {
      EXPECT_GT(e.efficiency(), 0.0) << name << " on " << e.device;
      EXPECT_LE(e.efficiency(), 1.0 + 1e-9) << name << " on " << e.device;
    }
  }
}

}  // namespace
}  // namespace eod::harness
