// Tests for the device-selection scheduler (§7: scheduling decisions under
// time and/or energy constraints).
#include <gtest/gtest.h>

#include "harness/scheduler.hpp"
#include "sim/testbed.hpp"

namespace eod::harness {
namespace {

using dwarfs::ProblemSize;

std::vector<xcl::Device*> small_node() {
  return {&sim::testbed_device("i7-6700K"),
          &sim::testbed_device("GTX 1080")};
}

TEST(Predict, CoversKernelsAndTransfers) {
  const Prediction p =
      predict({"fft", ProblemSize::kLarge}, sim::testbed_device("GTX 1080"));
  EXPECT_GT(p.seconds, 0.0);
  EXPECT_GT(p.joules, 0.0);
  // fft large moves 2 x 16 MiB over PCIe: transfers are part of the cost.
  const Prediction cpu =
      predict({"fft", ProblemSize::kLarge}, sim::testbed_device("i7-6700K"));
  EXPECT_GT(cpu.seconds, 0.0);
}

TEST(Predict, MatchesFigureShapes) {
  // The scheduler's inputs must agree with the figures: crc -> CPU,
  // srad -> GPU.
  const Prediction crc_cpu =
      predict({"crc", ProblemSize::kLarge}, sim::testbed_device("i7-6700K"));
  const Prediction crc_gpu =
      predict({"crc", ProblemSize::kLarge}, sim::testbed_device("GTX 1080"));
  EXPECT_LT(crc_cpu.seconds, crc_gpu.seconds);
  const Prediction srad_cpu = predict({"srad", ProblemSize::kLarge},
                                      sim::testbed_device("i7-6700K"));
  const Prediction srad_gpu = predict({"srad", ProblemSize::kLarge},
                                      sim::testbed_device("GTX 1080"));
  EXPECT_GT(srad_cpu.seconds, srad_gpu.seconds);
}

TEST(Scheduler, AssignsEveryTaskExactlyOnce) {
  const std::vector<Task> tasks = {{"crc", ProblemSize::kMedium},
                                   {"srad", ProblemSize::kMedium},
                                   {"fft", ProblemSize::kSmall}};
  const Schedule s =
      schedule_tasks(tasks, small_node(), Objective::kMinimizeMakespan);
  ASSERT_EQ(s.assignments.size(), tasks.size());
  EXPECT_GT(s.makespan_s, 0.0);
  EXPECT_GT(s.total_energy_j, 0.0);
  EXPECT_TRUE(s.feasible);
}

TEST(Scheduler, MakespanObjectiveBalancesLoad) {
  // Many identical tasks on two devices: both must receive work.
  const std::vector<Task> tasks(6, Task{"srad", ProblemSize::kMedium});
  const Schedule s =
      schedule_tasks(tasks, small_node(), Objective::kMinimizeMakespan);
  int cpu = 0, gpu = 0;
  for (const auto& a : s.assignments) {
    (a.device == "i7-6700K" ? cpu : gpu)++;
  }
  EXPECT_GT(cpu, 0);
  EXPECT_GT(gpu, 0);
}

TEST(Scheduler, EnergyObjectiveUsesLessEnergyThanMakespan) {
  const std::vector<Task> tasks = {
      {"srad", ProblemSize::kLarge}, {"fft", ProblemSize::kLarge},
      {"crc", ProblemSize::kLarge},  {"kmeans", ProblemSize::kMedium},
      {"nw", ProblemSize::kMedium},  {"csr", ProblemSize::kLarge}};
  const Schedule fast =
      schedule_tasks(tasks, small_node(), Objective::kMinimizeMakespan);
  const Schedule green =
      schedule_tasks(tasks, small_node(), Objective::kMinimizeEnergy);
  // Per-task minimum-energy placement is a global energy lower bound for
  // independent tasks, so the energy objective can never lose.  (Makespans
  // are incomparable: greedy LPT is only 4/3-approximate.)
  EXPECT_LE(green.total_energy_j, fast.total_energy_j * 1.0001);
}

TEST(Scheduler, DeadlineOverridesEnergyChoice) {
  // One long task: the energy choice must switch device when the deadline
  // forbids the slow-but-green placement.
  const std::vector<Task> tasks = {{"srad", ProblemSize::kLarge}};
  const Schedule unconstrained =
      schedule_tasks(tasks, small_node(), Objective::kMinimizeEnergy);
  const Schedule fast =
      schedule_tasks(tasks, small_node(), Objective::kMinimizeMakespan);
  // Deadline tighter than the green schedule but reachable by the fast one.
  if (unconstrained.makespan_s > fast.makespan_s * 1.01) {
    const double deadline = fast.makespan_s * 1.01;
    const Schedule bounded = schedule_tasks(
        tasks, small_node(), Objective::kMinimizeEnergy, deadline);
    EXPECT_TRUE(bounded.feasible);
    EXPECT_LE(bounded.makespan_s, deadline);
  }
}

TEST(Scheduler, InfeasibleDeadlineReported) {
  const std::vector<Task> tasks = {{"srad", ProblemSize::kLarge}};
  const Schedule s = schedule_tasks(tasks, small_node(),
                                    Objective::kMinimizeEnergy, 1e-9);
  EXPECT_FALSE(s.feasible);
  EXPECT_EQ(s.assignments.size(), 1u);  // still assigned, best effort
}

TEST(Scheduler, EmptyInputs) {
  EXPECT_TRUE(schedule_tasks({}, small_node(),
                             Objective::kMinimizeMakespan)
                  .assignments.empty());
  const Schedule no_devices =
      schedule_tasks({{"crc", ProblemSize::kTiny}}, {},
                     Objective::kMinimizeMakespan);
  EXPECT_FALSE(no_devices.feasible);
}

TEST(Scheduler, EmptyTaskListWithDeadlineIsFeasible) {
  // Nothing to schedule always meets any deadline, including a zero one.
  const Schedule s = schedule_tasks({}, small_node(),
                                    Objective::kMinimizeEnergy, 0.0);
  EXPECT_TRUE(s.assignments.empty());
  EXPECT_TRUE(s.feasible);
  EXPECT_DOUBLE_EQ(s.makespan_s, 0.0);
  EXPECT_DOUBLE_EQ(s.total_energy_j, 0.0);
}

TEST(Scheduler, InfeasibleDeadlineUnderMakespanObjective) {
  // The makespan objective must also report (not silently accept) a
  // deadline no placement can meet.
  const std::vector<Task> tasks = {{"gem", ProblemSize::kLarge},
                                   {"srad", ProblemSize::kLarge}};
  const Schedule s = schedule_tasks(tasks, small_node(),
                                    Objective::kMinimizeMakespan, 1e-9);
  EXPECT_FALSE(s.feasible);
  EXPECT_EQ(s.assignments.size(), tasks.size());  // best effort, still full
  EXPECT_GT(s.makespan_s, 1e-9);
}

TEST(Scheduler, SingleDevicePoolSerializesEverything) {
  // One device: every task lands on it, starts stack back-to-back, and the
  // makespan is the serial sum of the predictions.
  const std::vector<Task> tasks = {{"crc", ProblemSize::kMedium},
                                   {"fft", ProblemSize::kSmall},
                                   {"srad", ProblemSize::kMedium}};
  const std::vector<xcl::Device*> pool = {&sim::testbed_device("i7-6700K")};
  const Schedule s =
      schedule_tasks(tasks, pool, Objective::kMinimizeMakespan);
  ASSERT_EQ(s.assignments.size(), tasks.size());
  double serial = 0.0;
  for (const auto& a : s.assignments) {
    EXPECT_EQ(a.device, "i7-6700K");
    EXPECT_DOUBLE_EQ(a.start_s, serial);
    serial += a.prediction.seconds;
  }
  EXPECT_DOUBLE_EQ(s.makespan_s, serial);
  EXPECT_TRUE(s.feasible);
}

TEST(Scheduler, StartTimesArePerDeviceContiguous) {
  const std::vector<Task> tasks(4, Task{"fft", ProblemSize::kMedium});
  const Schedule s =
      schedule_tasks(tasks, small_node(), Objective::kMinimizeMakespan);
  std::map<std::string, double> clock;
  for (const auto& a : s.assignments) {
    EXPECT_DOUBLE_EQ(a.start_s, clock[a.device]);
    clock[a.device] += a.prediction.seconds;
  }
}

}  // namespace
}  // namespace eod::harness
