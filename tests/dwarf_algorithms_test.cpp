// Per-benchmark algorithmic properties beyond the generic validation pass:
// known-answer vectors, mathematical invariants (Parseval, perfect
// reconstruction), generator contracts, and Table 2/3 parameter values.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdio>

#include "dwarfs/crc/crc.hpp"
#include "dwarfs/csr/csr.hpp"
#include "dwarfs/dwt/dwt.hpp"
#include "dwarfs/dwt/image.hpp"
#include "dwarfs/fft/fft.hpp"
#include "dwarfs/gem/gem.hpp"
#include "dwarfs/hmm/hmm.hpp"
#include "dwarfs/kmeans/kmeans.hpp"
#include "dwarfs/lud/lud.hpp"
#include "dwarfs/nqueens/nqueens.hpp"
#include "dwarfs/nw/nw.hpp"
#include "dwarfs/srad/srad.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace eod::dwarfs {
namespace {

// ---------------------------- Table 2 values ----------------------------

TEST(Table2, ScaleParametersMatchThePaper) {
  EXPECT_EQ(KMeans().scale_parameter(ProblemSize::kMedium), "65600");
  EXPECT_EQ(Lud::dim_for(ProblemSize::kLarge), 4096u);
  EXPECT_EQ(Csr::dim_for(ProblemSize::kTiny), 736u);
  EXPECT_EQ(Fft::length_for(ProblemSize::kMedium), 524288u);
  EXPECT_EQ(Dwt().scale_parameter(ProblemSize::kLarge), "3648x2736");
  EXPECT_EQ(Srad().scale_parameter(ProblemSize::kSmall), "128,80");
  EXPECT_EQ(Crc::buffer_bytes_for(ProblemSize::kLarge), 4194304u);
  EXPECT_EQ(Nw::length_for(ProblemSize::kMedium), 1008u);
  EXPECT_EQ(Gem().scale_parameter(ProblemSize::kLarge), "1KX5");
  EXPECT_EQ(Nqueens().scale_parameter(ProblemSize::kTiny), "18");
  EXPECT_EQ(Hmm().scale_parameter(ProblemSize::kTiny), "8,1");
  EXPECT_EQ(Hmm().scale_parameter(ProblemSize::kLarge), "2048,2048");
}

TEST(Gem, FootprintsMatchReportedDeviceMemory) {
  // §4.4.4 reports 31.3 KiB / 252 KiB / 7498 KiB / 10970.2 KiB.
  Gem g;
  EXPECT_NEAR(g.footprint_bytes(ProblemSize::kTiny) / 1024.0, 31.3, 0.5);
  EXPECT_NEAR(g.footprint_bytes(ProblemSize::kSmall) / 1024.0, 252.0, 1.0);
  EXPECT_NEAR(g.footprint_bytes(ProblemSize::kMedium) / 1024.0, 7498.0,
              10.0);
  EXPECT_NEAR(g.footprint_bytes(ProblemSize::kLarge) / 1024.0, 10970.2,
              10.0);
}

// ------------------------------- crc -----------------------------------

TEST(Crc, KnownAnswerVectors) {
  // CRC-32 (reflected 0xEDB88320) of "123456789" is 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8',
                                 '9'};
  EXPECT_EQ(Crc::crc32_reference(digits), 0xCBF43926u);
  // CRC of the empty string is 0.
  EXPECT_EQ(Crc::crc32_reference({}), 0x00000000u);
}

TEST(Crc, SensitiveToSingleBitFlips) {
  std::vector<std::uint8_t> data(100, 0xAB);
  const std::uint32_t base = Crc::crc32_reference(data);
  data[50] ^= 0x01;
  EXPECT_NE(Crc::crc32_reference(data), base);
}

// ------------------------------- csr -----------------------------------

TEST(CreateCsr, HonoursDensityAndStructure) {
  const CsrMatrix m = create_csr(1000, 0.005, 42);
  EXPECT_EQ(m.n, 1000u);
  EXPECT_EQ(m.row_ptr.size(), 1001u);
  EXPECT_EQ(m.row_ptr.front(), 0u);
  EXPECT_EQ(m.row_ptr.back(), m.nnz());
  // floor(0.005 * 1000) = 5 entries per row.
  EXPECT_EQ(m.nnz(), 5000u);
  for (std::size_t r = 0; r < m.n; ++r) {
    for (std::uint32_t k = m.row_ptr[r]; k < m.row_ptr[r + 1]; ++k) {
      EXPECT_LT(m.cols[k], m.n);
      if (k + 1 < m.row_ptr[r + 1]) {
        EXPECT_LT(m.cols[k], m.cols[k + 1]);  // sorted, no duplicates
      }
    }
  }
}

TEST(CreateCsr, Deterministic) {
  const CsrMatrix a = create_csr(500, 0.01, 7);
  const CsrMatrix b = create_csr(500, 0.01, 7);
  EXPECT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.vals, b.vals);
  const CsrMatrix c = create_csr(500, 0.01, 8);
  EXPECT_NE(a.cols, c.cols);
}

// ------------------------------- fft -----------------------------------

TEST(FftReference, MatchesNaiveDftOnSmallInput) {
  constexpr std::size_t kN = 16;
  std::vector<std::complex<double>> x(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    x[i] = {std::cos(0.3 * i), std::sin(0.1 * i * i)};
  }
  std::vector<std::complex<double>> want(kN);
  for (std::size_t k = 0; k < kN; ++k) {
    std::complex<double> acc = 0.0;
    for (std::size_t t = 0; t < kN; ++t) {
      const double ang = -2.0 * M_PI * static_cast<double>(k * t) / kN;
      acc += x[t] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    want[k] = acc;
  }
  std::vector<std::complex<double>> got = x;
  Fft::reference_fft(got);
  for (std::size_t k = 0; k < kN; ++k) {
    EXPECT_NEAR(std::abs(got[k] - want[k]), 0.0, 1e-9) << "bin " << k;
  }
}

TEST(FftReference, ParsevalHolds) {
  constexpr std::size_t kN = 1024;
  SplitMix64 rng(5);
  std::vector<std::complex<double>> x(kN);
  double time_energy = 0.0;
  for (auto& v : x) {
    v = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
    time_energy += std::norm(v);
  }
  std::vector<std::complex<double>> f = x;
  Fft::reference_fft(f);
  double freq_energy = 0.0;
  for (const auto& v : f) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / kN, time_energy, 1e-6 * time_energy);
}

TEST(FftReference, DeltaTransformsToConstant) {
  std::vector<std::complex<double>> x(64, 0.0);
  x[0] = 1.0;
  Fft::reference_fft(x);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

// ------------------------------- dwt -----------------------------------

class DwtReconstruction
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};

TEST_P(DwtReconstruction, ForwardThenInverseIsIdentity) {
  const auto [w, h] = GetParam();
  SplitMix64 rng(11);
  std::vector<double> img(w * h);
  for (auto& v : img) v = rng.uniform(0.0f, 255.0f);
  std::vector<double> data = img;
  Dwt::reference_dwt53(data, w, h, 3);
  Dwt::reference_idwt53(data, w, h, 3);
  double max_err = 0.0;
  for (std::size_t i = 0; i < img.size(); ++i) {
    max_err = std::max(max_err, std::abs(data[i] - img[i]));
  }
  EXPECT_LT(max_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DwtReconstruction,
    ::testing::Values(std::pair<std::size_t, std::size_t>{72, 54},
                      std::pair<std::size_t, std::size_t>{64, 64},
                      std::pair<std::size_t, std::size_t>{37, 53},
                      std::pair<std::size_t, std::size_t>{200, 150},
                      std::pair<std::size_t, std::size_t>{17, 9}),
    [](const auto& ti) {
      return "w" + std::to_string(ti.param.first) + "h" +
             std::to_string(ti.param.second);
    });

TEST(DwtTransform, SmoothImageEnergyConcentratesInLL) {
  // A constant image must transform to (almost) pure LL energy.
  constexpr std::size_t kW = 64, kH = 64;
  std::vector<double> img(kW * kH, 100.0);
  Dwt::reference_dwt53(img, kW, kH, 1);
  double detail = 0.0;
  for (std::size_t y = 0; y < kH; ++y) {
    for (std::size_t x = 0; x < kW; ++x) {
      if (x >= kW / 2 || y >= kH / 2) detail += std::abs(img[y * kW + x]);
    }
  }
  EXPECT_NEAR(detail, 0.0, 1e-9);
}

TEST(Image, LeafGeneratorDeterministicAndStructured) {
  const GrayImage a = generate_leaf_image(128, 96);
  const GrayImage b = generate_leaf_image(128, 96);
  EXPECT_EQ(a.pixels, b.pixels);
  // Structured content: both dark (leaf) and bright (background) pixels.
  int dark = 0, bright = 0;
  for (const auto p : a.pixels) {
    if (p < 100) ++dark;
    if (p > 150) ++bright;
  }
  EXPECT_GT(dark, 500);
  EXPECT_GT(bright, 500);
}

TEST(Image, BoxResizePreservesMeanApproximately) {
  const GrayImage src = generate_leaf_image(256, 192);
  const GrayImage dst = box_resize(src, 64, 48);
  auto mean = [](const GrayImage& im) {
    double s = 0.0;
    for (const auto p : im.pixels) s += p;
    return s / static_cast<double>(im.pixels.size());
  };
  EXPECT_NEAR(mean(src), mean(dst), 3.0);
  EXPECT_EQ(dst.width, 64u);
  EXPECT_EQ(dst.height, 48u);
}

TEST(Image, PgmAndPpmRoundTrip) {
  const GrayImage img = generate_leaf_image(40, 30);
  const std::string pgm = ::testing::TempDir() + "/eod_test.pgm";
  const std::string ppm = ::testing::TempDir() + "/eod_test.ppm";
  save_pgm(img, pgm);
  const GrayImage back = load_pgm(pgm);
  EXPECT_EQ(back.width, img.width);
  EXPECT_EQ(back.pixels, img.pixels);

  save_ppm_rgb_from_gray(img, ppm);
  const GrayImage gray = load_ppm_as_gray(ppm);
  EXPECT_EQ(gray.width, img.width);
  EXPECT_EQ(gray.height, img.height);
  std::remove(pgm.c_str());
  std::remove(ppm.c_str());
}

TEST(Image, TiledCoefficientsInRange) {
  std::vector<float> coeffs(32 * 16);
  SplitMix64 rng(3);
  for (auto& c : coeffs) c = rng.uniform(-1000.0f, 1000.0f);
  const GrayImage img = tile_coefficients(coeffs, 32, 16);
  EXPECT_EQ(img.pixels.size(), coeffs.size());
  EXPECT_THROW((void)tile_coefficients(coeffs, 10, 10),
               std::invalid_argument);
}

// ----------------------------- nqueens ---------------------------------

class QueensCounts
    : public ::testing::TestWithParam<std::pair<unsigned, std::uint64_t>> {};

TEST_P(QueensCounts, MatchesKnownSolutionCounts) {
  const auto [n, want] = GetParam();
  EXPECT_EQ(count_queens_host(n), want);
}

INSTANTIATE_TEST_SUITE_P(
    Boards, QueensCounts,
    ::testing::Values(std::pair<unsigned, std::uint64_t>{4, 2},
                      std::pair<unsigned, std::uint64_t>{5, 10},
                      std::pair<unsigned, std::uint64_t>{6, 4},
                      std::pair<unsigned, std::uint64_t>{7, 40},
                      std::pair<unsigned, std::uint64_t>{8, 92},
                      std::pair<unsigned, std::uint64_t>{9, 352},
                      std::pair<unsigned, std::uint64_t>{10, 724},
                      std::pair<unsigned, std::uint64_t>{11, 2680},
                      std::pair<unsigned, std::uint64_t>{12, 14200}),
    [](const auto& ti) { return "n" + std::to_string(ti.param.first); });

TEST(Queens, FrontierExpansionConservesSearchSpace) {
  // Expanding the root frontier level by level must agree with DFS counts
  // when the depth reaches n.
  constexpr unsigned kN = 6;
  std::vector<QueenNode> frontier{{0, 0, 0}};
  for (unsigned d = 0; d < kN; ++d) {
    std::vector<QueenNode> next;
    expand_frontier_host(kN, frontier, &next);
    frontier.swap(next);
  }
  EXPECT_EQ(frontier.size(), count_queens_host(kN));
}

// ------------------------------- hmm -----------------------------------

TEST(HmmModel, GeneratorRowsAreStochastic) {
  const HmmModel m = generate_hmm(16, 4, 77);
  for (unsigned i = 0; i < 16; ++i) {
    double row = 0.0;
    for (unsigned j = 0; j < 16; ++j) row += m.a[i * 16 + j];
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
  double pi_sum = 0.0;
  for (unsigned i = 0; i < 16; ++i) pi_sum += m.pi[i];
  EXPECT_NEAR(pi_sum, 1.0, 1e-5);
}

TEST(HmmReference, UpdateKeepsRowsStochastic) {
  const HmmModel m = generate_hmm(8, 3, 123);
  std::vector<std::uint8_t> obs(64);
  SplitMix64 rng(9);
  for (auto& o : obs) o = static_cast<std::uint8_t>(rng.below(3));
  const HmmModel next = baum_welch_reference(m, obs);
  for (unsigned i = 0; i < 8; ++i) {
    double row_a = 0.0;
    for (unsigned j = 0; j < 8; ++j) row_a += next.a[i * 8 + j];
    EXPECT_NEAR(row_a, 1.0, 1e-4) << "A row " << i;
    double row_b = 0.0;
    for (unsigned s = 0; s < 3; ++s) row_b += next.b[i * 3 + s];
    EXPECT_NEAR(row_b, 1.0, 1e-4) << "B row " << i;
  }
}

TEST(HmmReference, LikelihoodImprovesAcrossIterations) {
  // The EM property: each Baum-Welch iteration must not decrease the
  // observation likelihood.
  HmmModel m = generate_hmm(6, 4, 55);
  std::vector<std::uint8_t> obs(48);
  SplitMix64 rng(10);
  for (auto& o : obs) o = static_cast<std::uint8_t>(rng.below(4));
  double prev = -HUGE_VAL;
  for (int iter = 0; iter < 5; ++iter) {
    double ll = 0.0;
    m = baum_welch_reference(m, obs, &ll);
    EXPECT_GE(ll, prev - 1e-9) << "iteration " << iter;
    prev = ll;
  }
}

// ------------------------------- gem -----------------------------------

TEST(Gem, MoleculeGeneratorContract) {
  const Molecule m = generate_molecule(1000, 3);
  EXPECT_EQ(m.atoms(), 1000u);
  double total_charge = 0.0;
  for (std::size_t i = 0; i < m.atoms(); ++i) {
    total_charge += m.q[i];
    EXPECT_GT(m.r[i], 0.0f);
  }
  // Alternating signs keep the net charge small relative to sum |q|.
  double abs_charge = 0.0;
  for (const float q : m.q) abs_charge += std::fabs(q);
  EXPECT_LT(std::fabs(total_charge), 0.1 * abs_charge);
}

// ------------------------------- lud -----------------------------------

TEST(Lud, DiagonallyDominantInputIsStable) {
  Lud lud;
  lud.setup(ProblemSize::kTiny);
  // Covered by the generic validation test; here assert the tolerance is
  // comfortable, not marginal: reconstruction error well under 1e-5.
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  lud.bind(ctx, q);
  lud.run();
  lud.finish();
  const Validation v = lud.validate();
  EXPECT_TRUE(v.ok);
  EXPECT_LT(v.error, 1e-5);
  lud.unbind();
}

// ------------------------------ kmeans ---------------------------------

TEST(KMeans, MembershipIsValidClusterIndex) {
  KMeans km;
  km.setup(ProblemSize::kTiny);
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  km.bind(ctx, q);
  km.run();
  km.finish();
  EXPECT_TRUE(km.validate().ok);
  km.unbind();
}

// ------------------------------- nw ------------------------------------

TEST(Nw, ScoreMatrixCornersAreBoundaryValues) {
  Nw nw;
  nw.setup(ProblemSize::kTiny);
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  nw.bind(ctx, q);
  nw.run();
  nw.finish();
  EXPECT_TRUE(nw.validate().ok);
  nw.unbind();
}

}  // namespace
}  // namespace eod::dwarfs
