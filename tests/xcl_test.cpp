// Unit tests for the xcl runtime: platforms, contexts, buffers, NDRange,
// queue events and the execution engine.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "sim/testbed.hpp"
#include "xcl/buffer.hpp"
#include "xcl/kernel.hpp"
#include "xcl/ndrange.hpp"
#include "xcl/queue.hpp"

namespace eod::xcl {
namespace {

Device& cpu_device() { return sim::testbed_device("i7-6700K"); }
Device& gpu_device() { return sim::testbed_device("GTX 1080"); }

WorkloadProfile trivial_profile() {
  WorkloadProfile p;
  p.flops = 1000;
  p.bytes_read = 4000;
  p.bytes_written = 4000;
  p.working_set_bytes = 8000;
  return p;
}

TEST(Platform, TestbedHasFifteenDevices) {
  EXPECT_EQ(sim::testbed_platform().device_count(), 15u);
}

TEST(Platform, SelectByTypeMatchesPaperNotation) {
  Platform& p = sim::testbed_platform();
  // -d 0 -t 0: first CPU (Table 1 order: Xeon E5-2697 v2).
  EXPECT_EQ(p.select(0, DeviceType::kCpu).name(), "Xeon E5-2697 v2");
  // -d 1 -t 0: the Skylake.
  EXPECT_EQ(p.select(1, DeviceType::kCpu).name(), "i7-6700K");
  // -d 1 -t 1: GTX 1080 (second GPU in table order).
  EXPECT_EQ(p.select(1, DeviceType::kGpu).name(), "GTX 1080");
  // -t 2: the KNL.
  EXPECT_EQ(p.select(0, DeviceType::kAccelerator).name(), "Xeon Phi 7210");
  EXPECT_THROW((void)p.select(99, DeviceType::kCpu), Error);
}

TEST(Context, TracksAllocationsLikeThePaperFootprintCheck) {
  Context ctx(cpu_device());
  EXPECT_EQ(ctx.allocated_bytes(), 0u);
  {
    Buffer a(ctx, 1024);
    Buffer b(ctx, 2048);
    EXPECT_EQ(ctx.allocated_bytes(), 3072u);
    EXPECT_EQ(ctx.peak_allocated_bytes(), 3072u);
  }
  EXPECT_EQ(ctx.allocated_bytes(), 0u);
  EXPECT_EQ(ctx.peak_allocated_bytes(), 3072u);
}

TEST(Context, RejectsOverAllocation) {
  Context ctx(cpu_device());
  const std::size_t cap = cpu_device().info().global_mem_bytes;
  EXPECT_THROW(Buffer(ctx, cap + 1), Error);
  EXPECT_EQ(ctx.allocated_bytes(), 0u);  // failed alloc must roll back
}

TEST(Buffer, TypedViewsAndMove) {
  Context ctx(cpu_device());
  Buffer b = make_buffer<float>(ctx, 16);
  EXPECT_EQ(b.bytes(), 64u);
  auto view = b.view<float>();
  std::iota(view.begin(), view.end(), 0.0f);
  Buffer moved = std::move(b);
  EXPECT_EQ(moved.view<const float>()[15], 15.0f);
  EXPECT_EQ(ctx.allocated_bytes(), 64u);
}

TEST(Buffer, RejectsMisalignedView) {
  Context ctx(cpu_device());
  Buffer b(ctx, 10);  // not a multiple of sizeof(float)
  EXPECT_THROW((void)b.view<float>(), Error);
  EXPECT_THROW(Buffer(ctx, 0), Error);
}

TEST(NDRange, ResolvesLocalSize) {
  NDRange r(1000);
  r.resolve_local(256);
  EXPECT_EQ(r.global(0) % r.local(0), 0u);
  EXPECT_LE(r.group_items(), 256u);
  NDRange bad(100, 64);  // 100 % 64 != 0
  EXPECT_THROW(bad.resolve_local(256), Error);
}

TEST(NDRange, ThreeDimensionalGroups) {
  NDRange r(64, 32, 4, 8, 8, 2);
  EXPECT_EQ(r.num_groups(), 8u * 4u * 2u);
  EXPECT_EQ(r.group_items(), 128u);
  EXPECT_EQ(r.global_items(), 8192u);
}

TEST(Queue, KernelExecutesAllWorkItems) {
  Context ctx(cpu_device());
  Queue q(ctx);
  Buffer out = make_buffer<int>(ctx, 1024);
  auto view = out.view<int>();
  Kernel k("ids", [=](WorkItem& it) {
    view[it.global_id(0)] = static_cast<int>(it.global_id(0)) * 2;
  });
  q.enqueue(k, NDRange(1024, 64), trivial_profile());
  q.finish();  // kernels defer in an out-of-order queue (EOD_QUEUE=ooo runs)
  for (int i = 0; i < 1024; ++i) EXPECT_EQ(view[i], 2 * i);
}

TEST(Queue, EventsCarryModeledTimeline) {
  Context ctx(gpu_device());
  Queue q(ctx);
  Buffer b = make_buffer<float>(ctx, 1024);
  std::vector<float> host(1024, 1.0f);
  q.enqueue_write<float>(b, host);
  Kernel k("noop", [](WorkItem&) {});
  q.enqueue(k, NDRange(256, 64), trivial_profile());
  std::vector<float> back(1024);
  q.enqueue_read<float>(b, std::span(back));

  ASSERT_EQ(q.events().size(), 3u);
  EXPECT_EQ(q.events()[0].kind, CommandKind::kWrite);
  EXPECT_EQ(q.events()[1].kind, CommandKind::kKernel);
  EXPECT_EQ(q.events()[2].kind, CommandKind::kRead);
  // In-order queue: the virtual timeline is contiguous and increasing.
  EXPECT_DOUBLE_EQ(q.events()[1].modeled_start_s,
                   q.events()[0].modeled_end_s);
  EXPECT_GT(q.events()[1].modeled_seconds(), 0.0);
  EXPECT_GT(q.modeled_kernel_seconds(), 0.0);
  EXPECT_GT(q.modeled_transfer_seconds(), 0.0);
  EXPECT_GT(q.modeled_kernel_energy_j(), 0.0);
  EXPECT_DOUBLE_EQ(q.finish(), q.events()[2].modeled_end_s);
  EXPECT_EQ(back[0], 1.0f);
}

TEST(Queue, NonFunctionalModeSkipsExecutionButModelsTime) {
  Context ctx(gpu_device());
  Queue q(ctx);
  Buffer b = make_buffer<int>(ctx, 64);
  auto view = b.view<int>();
  view[0] = -1;
  q.set_functional(false);
  Kernel k("poison", [=](WorkItem& it) {
    view[it.global_id(0)] = 42;
  });
  q.enqueue(k, NDRange(64, 64), trivial_profile());
  EXPECT_EQ(view[0], -1);  // body not executed
  EXPECT_GT(q.modeled_kernel_seconds(), 0.0);  // but time was modeled
}

TEST(Queue, TransferBoundsChecked) {
  Context ctx(cpu_device());
  Queue q(ctx);
  Buffer b(ctx, 16);
  std::vector<float> big(8, 0.0f);  // 32 bytes > 16
  EXPECT_THROW(q.enqueue_write<float>(b, big), Error);
}

TEST(Executor, LocalMemorySharedWithinGroup) {
  Context ctx(cpu_device());
  Queue q(ctx);
  Buffer out = make_buffer<int>(ctx, 128);
  auto view = out.view<int>();
  // Each group stages values in __local memory and reads a peer's slot
  // after a barrier.
  Kernel k("local_swap", [=](WorkItem& it) {
    auto scratch = it.local<int>(0, it.local_size(0));
    scratch[it.local_id(0)] = static_cast<int>(it.global_id(0));
    it.barrier();
    const std::size_t peer = it.local_size(0) - 1 - it.local_id(0);
    view[it.global_id(0)] = scratch[peer];
  });
  k.uses_barriers();
  q.enqueue(k, NDRange(128, 32), trivial_profile());
  q.finish();
  for (std::size_t g = 0; g < 4; ++g) {
    for (std::size_t l = 0; l < 32; ++l) {
      EXPECT_EQ(view[g * 32 + l], static_cast<int>(g * 32 + (31 - l)));
    }
  }
}

TEST(Executor, BarrierOutsideBarrierKernelThrows) {
  Context ctx(cpu_device());
  Queue q(ctx);
  Kernel k("bad_barrier", [](WorkItem& it) { it.barrier(); });
  // uses_barriers() not set -> loop mode -> barrier() must be rejected.
  // An out-of-order queue surfaces the execution error at the sync point.
  EXPECT_THROW(
      {
        q.enqueue(k, NDRange(64, 64), trivial_profile());
        q.finish();
      },
      Error);
}

TEST(Executor, LocalAllocationOverflowDetected) {
  Context ctx(cpu_device());
  Queue q(ctx);
  const std::size_t local_mem = cpu_device().info().local_mem_bytes;
  Kernel k("local_overflow", [=](WorkItem& it) {
    (void)it.local<float>(0, local_mem);  // 4x the capacity in bytes
  });
  EXPECT_THROW(
      {
        q.enqueue(k, NDRange(8, 8), trivial_profile());
        q.finish();
      },
      Error);
}

TEST(Executor, ExceptionsPropagateFromWorkItems) {
  Context ctx(cpu_device());
  Queue q(ctx);
  Kernel k("thrower", [](WorkItem& it) {
    if (it.global_id(0) == 37) throw std::runtime_error("work-item 37");
  });
  // An out-of-order queue surfaces the execution error at the sync point.
  EXPECT_THROW(
      {
        q.enqueue(k, NDRange(64, 8), trivial_profile());
        q.finish();
      },
      std::runtime_error);
}

}  // namespace
}  // namespace eod::xcl
