// Property tests for the custom problem-size API (the suite's "flexibility
// of configuration including problem sizes"): every dwarf accepts
// parameters outside the Table 2 presets and still validates against its
// serial reference; invalid parameters are rejected with clear errors.
#include <gtest/gtest.h>

#include "dwarfs/crc/crc.hpp"
#include "dwarfs/csr/csr.hpp"
#include "dwarfs/dwt/dwt.hpp"
#include "dwarfs/fft/fft.hpp"
#include "dwarfs/gem/gem.hpp"
#include "dwarfs/hmm/hmm.hpp"
#include "dwarfs/kmeans/kmeans.hpp"
#include "dwarfs/lud/lud.hpp"
#include "dwarfs/nqueens/nqueens.hpp"
#include "dwarfs/nw/nw.hpp"
#include "dwarfs/srad/srad.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace eod::dwarfs {
namespace {

/// Runs a configured dwarf functionally and expects a passing validation.
void expect_valid(Dwarf& dwarf, const std::string& what) {
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  dwarf.bind(ctx, q);
  dwarf.run();
  dwarf.finish();
  const Validation v = dwarf.validate();
  EXPECT_TRUE(v.ok) << what << ": " << v.detail;
  dwarf.unbind();
}

class FftLengths : public ::testing::TestWithParam<std::size_t> {};
TEST_P(FftLengths, ValidatesAtCustomLength) {
  Fft fft;
  fft.configure(GetParam());
  expect_valid(fft, "fft n=" + std::to_string(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(PowersOfTwo, FftLengths,
                         ::testing::Values(2, 4, 64, 256, 1024, 8192),
                         [](const auto& ti) {
                           return "n" + std::to_string(ti.param);
                         });

TEST(FftConfigure, RejectsNonPowerOfTwo) {
  Fft fft;
  EXPECT_THROW(fft.configure(1000), xcl::Error);
  EXPECT_THROW(fft.configure(0), xcl::Error);
  EXPECT_THROW(fft.configure(1), xcl::Error);
}

class LudDims : public ::testing::TestWithParam<std::size_t> {};
TEST_P(LudDims, ValidatesAtCustomDimension) {
  Lud lud;
  lud.configure(GetParam());
  expect_valid(lud, "lud n=" + std::to_string(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Dims, LudDims, ::testing::Values(16, 32, 96, 320),
                         [](const auto& ti) {
                           return "n" + std::to_string(ti.param);
                         });

TEST(LudConfigure, RejectsNonBlockMultiple) {
  Lud lud;
  EXPECT_THROW(lud.configure(100), xcl::Error);
  EXPECT_THROW(lud.configure(0), xcl::Error);
}

class DwtShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {
};
TEST_P(DwtShapes, ValidatesAtCustomExtent) {
  Dwt dwt;
  dwt.configure({GetParam().first, GetParam().second}, 3);
  expect_valid(dwt, "dwt");
}
INSTANTIATE_TEST_SUITE_P(
    Shapes, DwtShapes,
    ::testing::Values(std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{33, 17},
                      std::pair<std::size_t, std::size_t>{300, 200},
                      std::pair<std::size_t, std::size_t>{101, 67}),
    [](const auto& ti) {
      return "w" + std::to_string(ti.param.first) + "h" +
             std::to_string(ti.param.second);
    });

TEST(DwtConfigure, RejectsDegenerateInput) {
  Dwt dwt;
  EXPECT_THROW(dwt.configure({1, 64}, 3), xcl::Error);
  EXPECT_THROW(dwt.configure({64, 64}, 0), xcl::Error);
}

TEST(DwtConfigure, MoreLevelsStillValidate) {
  Dwt dwt;
  dwt.configure({128, 128}, 6);
  expect_valid(dwt, "dwt 6 levels");
}

class CsrDensities : public ::testing::TestWithParam<double> {};
TEST_P(CsrDensities, ValidatesAtCustomDensity) {
  Csr csr;
  csr.configure(600, GetParam());
  expect_valid(csr, "csr density=" + std::to_string(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Densities, CsrDensities,
                         ::testing::Values(0.001, 0.01, 0.05, 0.2),
                         [](const auto& ti) {
                           return "d" + std::to_string(static_cast<int>(
                                            ti.param * 1000));
                         });

TEST(KmeansConfigure, FeatureAndClusterSweeps) {
  for (const unsigned features : {1u, 4u, 30u}) {
    for (const unsigned clusters : {2u, 8u}) {
      KMeans km;
      KMeans::Params p;
      p.points = 300;
      p.features = features;
      p.clusters = clusters;
      p.rounds = 4;
      km.configure(p);
      expect_valid(km, "kmeans f=" + std::to_string(features) +
                           " c=" + std::to_string(clusters));
    }
  }
}

TEST(NwConfigure, PenaltySweepChangesScores) {
  Nw a;
  a.configure(64, 1);
  expect_valid(a, "nw penalty 1");
  Nw b;
  b.configure(64, 30);
  expect_valid(b, "nw penalty 30");
  EXPECT_THROW(Nw().configure(65, 10), xcl::Error);
  EXPECT_THROW(Nw().configure(64, -1), xcl::Error);
}

TEST(SradConfigure, LambdaAndIterations) {
  Srad srad;
  srad.configure({64, 48, 0.25f, 3});
  expect_valid(srad, "srad lambda=0.25 iters=3");
  EXPECT_THROW(Srad().configure({1, 8, 0.5f, 1}), xcl::Error);
  EXPECT_THROW(Srad().configure({8, 8, 1.5f, 1}), xcl::Error);
}

TEST(CrcConfigure, OddSizesIncludingPartialPages) {
  for (const std::size_t bytes : {1ul, 511ul, 512ul, 513ul, 100000ul}) {
    Crc crc;
    crc.configure(bytes);
    expect_valid(crc, "crc bytes=" + std::to_string(bytes));
  }
  EXPECT_THROW(Crc().configure(0), xcl::Error);
}

TEST(GemConfigure, SmallMoleculeValidates) {
  Gem gem;
  gem.configure(200);
  expect_valid(gem, "gem 200 atoms");
  EXPECT_THROW(Gem().configure(0), xcl::Error);
}

class QueensBoards : public ::testing::TestWithParam<unsigned> {};
TEST_P(QueensBoards, ExpansionValidates) {
  Nqueens nq;
  nq.configure(GetParam(), std::min(3u, GetParam() - 1));
  expect_valid(nq, "nqueens n=" + std::to_string(GetParam()));
}
INSTANTIATE_TEST_SUITE_P(Boards, QueensBoards,
                         ::testing::Values(6, 8, 12, 20),
                         [](const auto& ti) {
                           return "n" + std::to_string(ti.param);
                         });

TEST(QueensConfigure, RejectsBadBoards) {
  EXPECT_THROW(Nqueens().configure(3, 1), xcl::Error);
  EXPECT_THROW(Nqueens().configure(29, 4), xcl::Error);
  EXPECT_THROW(Nqueens().configure(8, 8), xcl::Error);
}

TEST(HmmConfigure, ShapesAndSequenceLengths) {
  for (const unsigned states : {2u, 5u, 16u}) {
    for (const unsigned symbols : {1u, 3u}) {
      Hmm hmm;
      hmm.configure({states, symbols}, 32);
      expect_valid(hmm, "hmm n=" + std::to_string(states) +
                            " s=" + std::to_string(symbols));
    }
  }
  EXPECT_THROW(Hmm().configure({1, 1}, 32), xcl::Error);
  EXPECT_THROW(Hmm().configure({4, 0}, 32), xcl::Error);
  EXPECT_THROW(Hmm().configure({4, 2}, 1), xcl::Error);
}

}  // namespace
}  // namespace eod::dwarfs
