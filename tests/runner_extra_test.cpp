// Edge cases and additional coverage for the measurement harness, report
// formatting, the file logger, and the trace-fed memory model.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dwarfs/registry.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "scibench/logger.hpp"
#include "sim/perf_model.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace eod::harness {
namespace {

using dwarfs::ProblemSize;

TEST(RunnerEdge, ZeroSamplesProducesEmptyDistributions) {
  MeasureOptions o;
  o.samples = 0;
  o.functional = false;
  auto dwarf = dwarfs::create_dwarf("crc");
  const Measurement m = measure(*dwarf, ProblemSize::kTiny,
                                sim::testbed_device("i7-6700K"), o);
  EXPECT_TRUE(m.time_samples_ms.empty());
  EXPECT_TRUE(m.energy_samples_j.empty());
  EXPECT_GT(m.kernel_seconds, 0.0);  // the modeled iteration still exists
  EXPECT_EQ(m.time_summary().n, 0u);
}

TEST(RunnerEdge, TinyLoopFloorStillMeasures) {
  MeasureOptions o;
  o.functional = false;
  o.min_loop_seconds = 0.0;  // degenerate floor: one iteration per sample
  auto dwarf = dwarfs::create_dwarf("crc");
  const Measurement m = measure(*dwarf, ProblemSize::kTiny,
                                sim::testbed_device("i7-6700K"), o);
  EXPECT_EQ(m.loop_iterations, 1u);
  EXPECT_EQ(m.time_samples_ms.size(), 50u);
}

TEST(RunnerEdge, SegmentsCoverEveryKernel) {
  MeasureOptions o;
  o.functional = false;
  auto dwarf = dwarfs::create_dwarf("srad");
  const Measurement m = measure(*dwarf, ProblemSize::kTiny,
                                sim::testbed_device("GTX 1080"), o);
  ASSERT_EQ(m.segments.size(), 2u);  // srad_cuda_1, srad_cuda_2
  double sum = 0.0;
  for (const KernelSegment& s : m.segments) {
    // Each stencil pass runs as a top and a bottom row band (the halo-
    // exchange decomposition, DESIGN.md §12).
    EXPECT_EQ(s.launches, 2u);
    sum += s.modeled_seconds;
  }
  EXPECT_NEAR(sum, m.kernel_seconds, 1e-12);
  EXPECT_GT(m.transfer_seconds, 0.0);  // J upload + read-back
}

TEST(RunnerEdge, EnergySamplesUseInstrumentNoise) {
  MeasureOptions o;
  o.functional = false;
  auto dwarf = dwarfs::create_dwarf("fft");
  const Measurement cpu = measure(*dwarf, ProblemSize::kMedium,
                                  sim::testbed_device("i7-6700K"), o);
  o.reuse_setup = true;
  const Measurement gpu = measure(*dwarf, ProblemSize::kMedium,
                                  sim::testbed_device("GTX 1080"), o);
  // The instrument (RAPL / NVML) adds measurement noise on top of the
  // run-to-run time spread: energy CoV must exceed time CoV on both.
  EXPECT_GT(cpu.energy_summary().cov(), cpu.time_summary().cov());
  EXPECT_GT(gpu.energy_summary().cov(), gpu.time_summary().cov());
}

TEST(ReportExtra, EnergyPanelRendersBothDevices) {
  MeasureOptions o;
  o.functional = false;
  o.samples = 3;
  auto dwarf = dwarfs::create_dwarf("crc");
  std::vector<Measurement> ms;
  ms.push_back(measure(*dwarf, ProblemSize::kTiny,
                       sim::testbed_device("i7-6700K"), o));
  o.reuse_setup = true;
  ms.push_back(measure(*dwarf, ProblemSize::kTiny,
                       sim::testbed_device("GTX 1080"), o));
  std::ostringstream os;
  print_energy_panel(os, "test", ms);
  EXPECT_NE(os.str().find("i7-6700K"), std::string::npos);
  EXPECT_NE(os.str().find("GTX 1080"), std::string::npos);
  EXPECT_NE(os.str().find("mean(J)"), std::string::npos);
}

TEST(ReportExtra, LongTableIsMachineReadable) {
  MeasureOptions o;
  o.functional = false;
  o.samples = 2;
  auto dwarf = dwarfs::create_dwarf("crc");
  const Measurement m = measure(*dwarf, ProblemSize::kTiny,
                                sim::testbed_device("K20m"), o);
  std::ostringstream os;
  print_long_table(os, {m});
  std::istringstream in(os.str());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "benchmark device class size sample time_ms energy_j");
  // Device and class columns are quoted (they may contain spaces, e.g.
  // "HPC GPU"); parse the numeric columns from the token tail.
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row.rfind("crc ", 0), 0u);
  EXPECT_NE(row.find("\"K20m\""), std::string::npos);
  EXPECT_NE(row.find("\"HPC GPU\""), std::string::npos);
  EXPECT_NE(row.find(" tiny "), std::string::npos);
  std::vector<std::string> tokens;
  std::istringstream rs(row);
  for (std::string t; rs >> t;) tokens.push_back(t);
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[tokens.size() - 3], "0");  // sample index
  EXPECT_GT(std::stod(tokens[tokens.size() - 2]), 0.0);  // time_ms
}

TEST(FileLogger, WritesReadableFile) {
  const std::string path = ::testing::TempDir() + "/eod_logger_test.dat";
  {
    scibench::FileTableLogger log(path, {"x", "y"});
    log.table().row({"1", "2.5"});
    log.table().row({"3", "4.5"});
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x y");
  std::getline(in, line);
  EXPECT_EQ(line, "1 2.5");
  std::remove(path.c_str());
  EXPECT_THROW(scibench::FileTableLogger("/nonexistent-dir/f.dat", {"a"}),
               std::runtime_error);
}

TEST(TraceFedMemory, ZeroWithoutCounters) {
  const sim::DevicePerfModel m(sim::skylake());
  xcl::WorkloadProfile p;
  p.bytes_read = 1e6;
  sim::HierarchyCounters none;
  EXPECT_DOUBLE_EQ(
      m.memory_seconds_from_counters({"k", xcl::NDRange(1024), p}, none),
      0.0);
}

TEST(TraceFedMemory, MoreMissesCostMore) {
  const sim::DevicePerfModel m(sim::skylake());
  xcl::WorkloadProfile p;
  p.bytes_read = 1e7;
  p.working_set_bytes = 1e7;
  xcl::KernelLaunchStats launch{"k", xcl::NDRange(1 << 16), p};
  sim::HierarchyCounters cached;
  cached.total_accesses = 1000000;
  cached.l1_dcm = 1000;  // almost everything hits L1
  sim::HierarchyCounters thrashing = cached;
  thrashing.l1_dcm = 500000;
  thrashing.l2_dcm = 400000;
  thrashing.l3_tcm = 300000;
  EXPECT_GT(m.memory_seconds_from_counters(launch, thrashing),
            5.0 * m.memory_seconds_from_counters(launch, cached));
}

TEST(TraceFedMemory, AgreesWithAnalyticOnStreamingWorkloads) {
  // The ablation bound, asserted: kmeans analytic vs trace-fed memory
  // terms agree within 3x at every size on the Skylake model.
  const sim::DevicePerfModel model(sim::skylake());
  auto dwarf = dwarfs::create_dwarf("kmeans");
  for (const ProblemSize size : {ProblemSize::kTiny, ProblemSize::kSmall,
                                 ProblemSize::kMedium,
                                 ProblemSize::kLarge}) {
    dwarf->setup(size);
    xcl::Context ctx(sim::testbed_device("i7-6700K"));
    xcl::Queue q(ctx);
    q.set_functional(false);
    q.set_record_launches(true);
    dwarf->bind(ctx, q);
    q.clear_events();
    dwarf->run();
    sim::CacheHierarchy h(sim::skylake());
    for (int pass = 0; pass < 2; ++pass) {
      if (pass == 1) h.reset();
      dwarf->stream_trace([&h](const sim::MemAccess& a) {
        h.access(a.address, a.bytes, a.is_write);
      });
    }
    // One assign round is two half-range launches (the double-buffered
    // write-back pipeline, DESIGN.md §12); the trace covers the full pass,
    // so fold the two halves back into one whole-pass launch.
    ASSERT_GE(q.launches().size(), 2u);
    xcl::KernelLaunchStats launch = q.launches()[0];
    const xcl::KernelLaunchStats& other = q.launches()[1];
    launch.profile.flops += other.profile.flops;
    launch.profile.int_ops += other.profile.int_ops;
    launch.profile.bytes_read += other.profile.bytes_read;
    launch.profile.bytes_written += other.profile.bytes_written;
    // working_set_bytes is already the whole-pass footprint in both halves.
    launch.range = xcl::NDRange(
        launch.range.global(0) + other.range.global(0), 64);
    const double analytic = model.analyze(launch).memory_s;
    const double traced =
        model.memory_seconds_from_counters(launch, h.counters());
    ASSERT_GT(traced, 0.0);
    const double ratio = analytic / traced;
    EXPECT_GT(ratio, 1.0 / 3.0) << to_string(size);
    EXPECT_LT(ratio, 3.0) << to_string(size);
    dwarf->unbind();
  }
}

}  // namespace
}  // namespace eod::harness
