// Tests for the measurement harness: runner methodology (2 s loop, 50
// samples), CLI conventions, report formatting and the auto-tuner.
#include <gtest/gtest.h>

#include <sstream>

#include "dwarfs/registry.hpp"
#include "harness/autotune.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "sim/testbed.hpp"

namespace eod::harness {
namespace {

MeasureOptions quick_options() {
  MeasureOptions o;
  o.samples = 50;
  o.functional = true;
  o.validate = true;
  return o;
}

TEST(Runner, ProducesFiftyValidatedSamples) {
  auto dwarf = dwarfs::create_dwarf("crc");
  const Measurement m =
      measure(*dwarf, dwarfs::ProblemSize::kTiny,
              sim::testbed_device("i7-6700K"), quick_options());
  EXPECT_EQ(m.time_samples_ms.size(), 50u);
  EXPECT_EQ(m.energy_samples_j.size(), 50u);
  EXPECT_TRUE(m.validated);
  EXPECT_TRUE(m.validation.ok) << m.validation.detail;
  EXPECT_GT(m.kernel_seconds, 0.0);
  EXPECT_GT(m.energy_joules, 0.0);
  ASSERT_FALSE(m.segments.empty());
  EXPECT_EQ(m.segments[0].kernel, "crc_page");
}

TEST(Runner, LoopFloorGuaranteesTwoSeconds) {
  auto dwarf = dwarfs::create_dwarf("crc");
  const Measurement m =
      measure(*dwarf, dwarfs::ProblemSize::kTiny,
              sim::testbed_device("i7-6700K"), quick_options());
  // §2: each benchmark runs in a loop for a minimum of two seconds.
  EXPECT_GE(static_cast<double>(m.loop_iterations) * m.kernel_seconds, 2.0);
}

TEST(Runner, SamplesAreDeterministicPerSeed) {
  auto d1 = dwarfs::create_dwarf("crc");
  auto d2 = dwarfs::create_dwarf("crc");
  const auto a = measure(*d1, dwarfs::ProblemSize::kTiny,
                         sim::testbed_device("GTX 1080"), quick_options());
  const auto b = measure(*d2, dwarfs::ProblemSize::kTiny,
                         sim::testbed_device("GTX 1080"), quick_options());
  EXPECT_EQ(a.time_samples_ms, b.time_samples_ms);
  MeasureOptions other = quick_options();
  other.seed = 2;
  auto d3 = dwarfs::create_dwarf("crc");
  const auto c = measure(*d3, dwarfs::ProblemSize::kTiny,
                         sim::testbed_device("GTX 1080"), other);
  EXPECT_NE(a.time_samples_ms, c.time_samples_ms);
}

TEST(Runner, SamplesScatterAroundModeledMean) {
  auto dwarf = dwarfs::create_dwarf("csr");
  const Measurement m =
      measure(*dwarf, dwarfs::ProblemSize::kSmall,
              sim::testbed_device("K20m"), quick_options());
  const scibench::Summary s = m.time_summary();
  EXPECT_NEAR(s.mean, m.kernel_seconds * 1e3, 0.2 * m.kernel_seconds * 1e3);
  EXPECT_GT(s.cov(), 0.0);
  EXPECT_LT(s.cov(), 0.25);
}

TEST(Runner, SweepCoversWholeTestbed) {
  MeasureOptions o = quick_options();
  const auto all =
      measure_all_devices("crc", dwarfs::ProblemSize::kTiny, o);
  ASSERT_EQ(all.size(), 15u);
  EXPECT_EQ(all.front().device, "Xeon E5-2697 v2");
  EXPECT_EQ(all.back().device, "Xeon Phi 7210");
  // The functional pass validates once; every entry carries samples.
  EXPECT_TRUE(all.front().validated);
  for (const auto& m : all) {
    EXPECT_EQ(m.time_samples_ms.size(), 50u);
    EXPECT_GT(m.kernel_seconds, 0.0);
  }
}

TEST(Cli, ParsesPaperNotation) {
  const char* argv[] = {"bench", "-p", "1",  "-d",       "0",
                        "-t",    "0",  "--size", "medium",   "--samples",
                        "10",    "--validate", "extra"};
  const CliOptions o = parse_cli(static_cast<int>(std::size(argv)), argv);
  EXPECT_EQ(o.platform, 1u);
  EXPECT_EQ(o.device, 0u);
  EXPECT_EQ(o.type, 0);
  ASSERT_TRUE(o.size.has_value());
  EXPECT_EQ(*o.size, dwarfs::ProblemSize::kMedium);
  EXPECT_EQ(o.samples, 10u);
  EXPECT_TRUE(o.validate);
  ASSERT_EQ(o.positional.size(), 1u);
  EXPECT_EQ(o.positional[0], "extra");
  EXPECT_EQ(o.resolve_device().name(), "Xeon E5-2697 v2");
}

TEST(Cli, ResolveByNameAndType) {
  {
    const char* argv[] = {"bench", "--device-name", "R9 Fury X"};
    EXPECT_EQ(parse_cli(3, argv).resolve_device().name(), "R9 Fury X");
  }
  {
    const char* argv[] = {"bench", "-d", "0", "-t", "1"};
    EXPECT_EQ(parse_cli(5, argv).resolve_device().name(), "Titan X");
  }
  {
    const char* argv[] = {"bench", "-d", "0", "-t", "2"};
    EXPECT_EQ(parse_cli(5, argv).resolve_device().name(), "Xeon Phi 7210");
  }
}

TEST(Cli, RejectsBadInput) {
  {
    const char* argv[] = {"bench", "--size", "gigantic"};
    EXPECT_THROW((void)parse_cli(3, argv), std::invalid_argument);
  }
  {
    const char* argv[] = {"bench", "-t", "7"};
    EXPECT_THROW((void)parse_cli(3, argv), std::invalid_argument);
  }
  {
    const char* argv[] = {"bench", "-d"};
    EXPECT_THROW((void)parse_cli(2, argv), std::invalid_argument);
  }
  EXPECT_NE(usage("prog").find("-t <0=CPU"), std::string::npos);
}

TEST(Report, PanelAndLongTableContainAllDevices) {
  MeasureOptions o = quick_options();
  o.samples = 3;
  const auto all = measure_all_devices("crc", dwarfs::ProblemSize::kTiny, o);
  std::ostringstream panel;
  print_panel(panel, "fig1 tiny", all);
  std::ostringstream table;
  print_long_table(table, all);
  for (const auto& m : all) {
    EXPECT_NE(panel.str().find(m.device), std::string::npos) << m.device;
    EXPECT_NE(table.str().find(m.device), std::string::npos) << m.device;
  }
  // 15 devices x 3 samples + header.
  std::size_t lines = 0;
  for (const char c : table.str()) lines += c == '\n';
  EXPECT_EQ(lines, 15u * 3u + 1u);
}

TEST(Report, TablesRender) {
  std::ostringstream t1;
  print_table1(t1);
  EXPECT_NE(t1.str().find("Xeon E5-2697 v2"), std::string::npos);
  EXPECT_NE(t1.str().find("RX 480"), std::string::npos);
  std::ostringstream t2;
  print_table2(t2);
  EXPECT_NE(t2.str().find("kmeans"), std::string::npos);
  EXPECT_NE(t2.str().find("3648x2736"), std::string::npos);
}

TEST(Autotune, WideWavefrontDevicePrefersLargeGroups) {
  xcl::WorkloadProfile p;
  p.flops = 1e9;
  p.bytes_read = 1e7;
  p.working_set_bytes = 1e7;
  const TuneResult amd = autotune_work_group(
      sim::testbed_device("R9 290X"), 1 << 20, p);
  EXPECT_GE(amd.work_group, 64u);  // full 64-wide wavefronts
  const auto sweep = sweep_work_group_sizes(
      sim::testbed_device("R9 290X"), 1 << 20, p);
  ASSERT_GE(sweep.size(), 2u);
  EXPECT_LE(sweep.front().modeled_seconds, sweep.back().modeled_seconds);
}

TEST(Autotune, RespectsDeviceLimits) {
  xcl::WorkloadProfile p;
  p.flops = 1e8;
  const auto sweep = sweep_work_group_sizes(
      sim::testbed_device("R9 290X"), 1 << 16, p);
  for (const TuneResult& r : sweep) {
    EXPECT_LE(r.work_group,
              sim::testbed_device("R9 290X").info().max_work_group_size);
  }
  // Tiny launches cannot use oversized groups.
  const auto tiny = sweep_work_group_sizes(
      sim::testbed_device("i7-6700K"), 8, p);
  for (const TuneResult& r : tiny) EXPECT_LE(r.work_group, 8u);
}

TEST(Autotune, AllCandidatesLargerThanLaunchStillTunes) {
  // Every explicit candidate exceeds global_items: the sweep is empty and
  // the tuner must fall back to a single-item group, not crash or return
  // an oversized one.
  xcl::WorkloadProfile p;
  p.flops = 1e6;
  const auto sweep = sweep_work_group_sizes(
      sim::testbed_device("i7-6700K"), 4, p, {8, 16, 32});
  EXPECT_TRUE(sweep.empty());
  const TuneResult r =
      autotune_work_group(sim::testbed_device("i7-6700K"), 4, p, {8, 16, 32});
  EXPECT_EQ(r.work_group, 1u);
  EXPECT_GT(r.modeled_seconds, 0.0);
}

}  // namespace
}  // namespace eod::harness
