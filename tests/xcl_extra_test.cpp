// Additional xcl runtime coverage: multi-dimensional kernels, local-memory
// slot semantics, queue-depth bookkeeping, the thread pool, and registry
// behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>

#include "sim/device_spec.hpp"
#include "sim/perf_model.hpp"
#include "sim/testbed.hpp"
#include "xcl/buffer.hpp"
#include "xcl/check/session.hpp"
#include "xcl/executor.hpp"
#include "xcl/kernel.hpp"
#include "xcl/queue.hpp"
#include "xcl/thread_pool.hpp"

namespace eod::xcl {
namespace {

Device& dev() { return sim::testbed_device("i7-6700K"); }

WorkloadProfile p() {
  WorkloadProfile prof;
  prof.flops = 100;
  return prof;
}

TEST(Kernel2D, IdsCoverTheFullGrid) {
  Context ctx(dev());
  Queue q(ctx);
  constexpr std::size_t kW = 48, kH = 24;
  Buffer out = make_buffer<int>(ctx, kW * kH);
  auto view = out.view<int>();
  Kernel k("grid2d", [=](WorkItem& it) {
    const std::size_t x = it.global_id(0);
    const std::size_t y = it.global_id(1);
    view[y * kW + x] = static_cast<int>(
        it.group_id(1) * 1000000 + it.group_id(0) * 10000 +
        it.local_id(1) * 100 + it.local_id(0));
  });
  q.enqueue(k, NDRange(kW, kH, 16, 8), p());
  q.finish();  // kernels defer in an out-of-order queue (EOD_QUEUE=ooo runs)
  for (std::size_t y = 0; y < kH; ++y) {
    for (std::size_t x = 0; x < kW; ++x) {
      const int want = static_cast<int>((y / 8) * 1000000 +
                                        (x / 16) * 10000 + (y % 8) * 100 +
                                        (x % 16));
      EXPECT_EQ(view[y * kW + x], want) << x << "," << y;
    }
  }
}

TEST(Kernel3D, GlobalSizesDecodeCorrectly) {
  Context ctx(dev());
  Queue q(ctx);
  std::atomic<long> sum{0};
  Kernel k("grid3d", [&sum](WorkItem& it) {
    sum += static_cast<long>(it.global_id(0) + 10 * it.global_id(1) +
                             100 * it.global_id(2));
    EXPECT_EQ(it.global_size(0), 8u);
    EXPECT_EQ(it.num_groups(2), 2u);
  });
  q.enqueue(k, NDRange(8, 4, 2, 4, 2, 1), p());
  q.finish();
  // sum over x<8, y<4, z<2 of x + 10y + 100z.
  long want = 0;
  for (int z = 0; z < 2; ++z) {
    for (int y = 0; y < 4; ++y) {
      for (int x = 0; x < 8; ++x) want += x + 10 * y + 100 * z;
    }
  }
  EXPECT_EQ(sum.load(), want);
}

TEST(LocalArena, SlotsAreStableAndSizeChecked) {
  Context ctx(dev());
  Queue q(ctx);
  Kernel k("slots", [](WorkItem& it) {
    auto a = it.local<float>(0, 16);
    auto b = it.local<int>(1, 8);
    a[it.local_id(0)] = 1.0f;
    b[it.local_id(0) % 8] = 2;
    it.barrier();
    // Slot 0 re-acquired with the same size yields the same storage.
    auto a2 = it.local<float>(0, 16);
    EXPECT_EQ(a.data(), a2.data());
  });
  k.uses_barriers();
  q.enqueue(k, NDRange(16, 16), p());
  q.finish();
}

TEST(LocalArena, InconsistentSizeRejected) {
  Context ctx(dev());
  Queue q(ctx);
  Kernel k("bad_slots", [](WorkItem& it) {
    // Different items request different sizes for the same slot.
    (void)it.local<float>(0, 8 + it.local_id(0));
  });
  EXPECT_THROW(
      {
        q.enqueue(k, NDRange(4, 4), p());
        q.finish();
      },
      Error);
}

TEST(LocalArena, SlotIndexBounds) {
  Context ctx(dev());
  Queue q(ctx);
  Kernel k("slot_oob", [](WorkItem& it) {
    (void)it.local<float>(LocalArena::kMaxSlots, 4);
  });
  EXPECT_THROW(
      {
        q.enqueue(k, NDRange(1, 1), p());
        q.finish();
      },
      Error);
}

TEST(QueueDepth, GrowsWithKernelsAndResetsOnSync) {
  Context ctx(sim::testbed_device("R9 290X"));  // depth-sensitive device
  Queue q(ctx);
  q.set_functional(false);
  Kernel k("probe", [](WorkItem&) {});
  // Two consecutive launches: the second must be modeled slower (deeper
  // queue on the amdappsdk-style runtime).
  q.enqueue(k, NDRange(64, 64), p());
  q.enqueue(k, NDRange(64, 64), p());
  const auto& e = q.events();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_GT(e[1].modeled_seconds(), e[0].modeled_seconds());

  // A transfer synchronises: the next launch is back to base overhead.
  Buffer b = make_buffer<float>(ctx, 16);
  std::vector<float> host(16, 0.0f);
  q.enqueue_write<float>(b, host);
  q.enqueue(k, NDRange(64, 64), p());
  EXPECT_DOUBLE_EQ(q.events().back().modeled_seconds(),
                   e[0].modeled_seconds());

  // finish() also resets.
  q.enqueue(k, NDRange(64, 64), p());
  q.finish();
  q.enqueue(k, NDRange(64, 64), p());
  EXPECT_DOUBLE_EQ(q.events().back().modeled_seconds(),
                   e[0].modeled_seconds());
}

TEST(QueueLaunchRecording, OffByDefaultOnWhenRequested) {
  Context ctx(dev());
  Queue q(ctx);
  Kernel k("probe", [](WorkItem&) {});
  q.enqueue(k, NDRange(8, 8), p());
  EXPECT_TRUE(q.launches().empty());
  q.set_record_launches(true);
  q.enqueue(k, NDRange(8, 8), p());
  ASSERT_EQ(q.launches().size(), 1u);
  EXPECT_EQ(q.launches()[0].kernel_name, "probe");
  q.clear_events();
  EXPECT_TRUE(q.launches().empty());
}

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must remain usable after an exception.
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::size_t) { n++; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

// --- Span tier (DESIGN.md §9) -------------------------------------------

// One RAII scope per test: span-tier tests must not leak a mode override
// into the rest of the suite.
struct ScopedDispatchMode {
  explicit ScopedDispatchMode(DispatchMode m) { set_dispatch_mode(m); }
  ~ScopedDispatchMode() { set_dispatch_mode(prev); }
  DispatchMode prev = dispatch_mode();
};

TEST(SpanTier, GroupsArriveAsContiguousRuns) {
  Context ctx(dev());
  Queue q(ctx);
  constexpr std::size_t kN = 1000;  // padded: last group is a tail
  Buffer out = make_buffer<int>(ctx, kN);
  auto view = out.view<int>();
  std::atomic<int> calls{0};
  Kernel k("iota", [=](WorkItem& it) {
    if (it.global_id(0) < kN) view[it.global_id(0)] = -1;
  });
  k.span([=, &calls](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin % 64, 0u);
    EXPECT_EQ(end - begin, 64u);
    calls++;
    for (std::size_t i = begin; i < std::min(end, kN); ++i) {
      view[i] = static_cast<int>(i);
    }
  });
  q.enqueue(k, NDRange(1024, 64), p());
  q.finish();
  EXPECT_EQ(calls.load(), 16);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(view[i], static_cast<int>(i));
  }
  const ExecutorStats s = executor_stats();
  EXPECT_GE(s.groups_span, 16u);
}

TEST(SpanTier, ItemOverridePinsTheReferencePath) {
  ScopedDispatchMode mode(DispatchMode::kItem);
  Context ctx(dev());
  Queue q(ctx);
  std::atomic<int> item_calls{0};
  Kernel k("counted", [&](WorkItem&) { item_calls++; });
  k.span([&](std::size_t, std::size_t) { FAIL() << "span under kItem"; });
  const ExecutorStats before = executor_stats();
  q.enqueue(k, NDRange(128, 64), p());
  q.finish();
  EXPECT_EQ(item_calls.load(), 128);
  const ExecutorStats after = executor_stats();
  EXPECT_EQ(after.groups_span - before.groups_span, 0u);
  EXPECT_EQ(after.groups_loop - before.groups_loop, 2u);
}

TEST(SpanTier, MultiDimensionalRangesFallBackToPerItem) {
  Context ctx(dev());
  Queue q(ctx);
  std::atomic<int> item_calls{0};
  Kernel k("grid", [&](WorkItem&) { item_calls++; });
  k.span([&](std::size_t, std::size_t) { FAIL() << "span on a 2-D range"; });
  const ExecutorStats before = executor_stats();
  q.enqueue(k, NDRange(16, 4, 8, 4), p());
  q.finish();
  EXPECT_EQ(item_calls.load(), 64);
  EXPECT_EQ(executor_stats().groups_span - before.groups_span, 0u);
}

TEST(SpanTier, BarrierKernelWithSpanBodySkipsFibers) {
  Context ctx(dev());
  Queue q(ctx);
  std::atomic<int> span_calls{0};
  Kernel k("blocked", [](WorkItem& it) { it.barrier(); });
  k.uses_barriers();
  k.span([&](std::size_t, std::size_t) { span_calls++; });
  const ExecutorStats before = executor_stats();
  q.enqueue(k, NDRange(64, 16), p());
  q.finish();
  EXPECT_EQ(span_calls.load(), 4);
  const ExecutorStats after = executor_stats();
  EXPECT_EQ(after.groups_span - before.groups_span, 4u);
  EXPECT_EQ(after.groups_fiber - before.groups_fiber, 0u);
}

TEST(SpanTier, ParseAndPrintModeNames) {
  EXPECT_EQ(parse_dispatch_mode("auto"), DispatchMode::kAuto);
  EXPECT_EQ(parse_dispatch_mode("item"), DispatchMode::kItem);
  EXPECT_EQ(parse_dispatch_mode("span"), DispatchMode::kSpan);
  EXPECT_EQ(parse_dispatch_mode("simd"), DispatchMode::kSimd);
  EXPECT_EQ(parse_dispatch_mode("checked"), DispatchMode::kChecked);
  EXPECT_FALSE(parse_dispatch_mode("fibers").has_value());
  EXPECT_STREQ(to_string(DispatchMode::kAuto), "auto");
  EXPECT_STREQ(to_string(DispatchMode::kItem), "item");
  EXPECT_STREQ(to_string(DispatchMode::kSpan), "span");
  EXPECT_STREQ(to_string(DispatchMode::kSimd), "simd");
  EXPECT_STREQ(to_string(DispatchMode::kChecked), "checked");
  // The CLI error message and --help text are built from this list; every
  // parseable mode must appear in it.
  EXPECT_STREQ(dispatch_mode_names(), "auto|item|span|simd|checked");
}

// Host allocations back the explicit-vector loads/stores of the simd tier;
// every Buffer must hand out 64-byte-aligned storage (a cache line, and
// enough for any EOD_SIMD_WIDTH up to 16 floats) regardless of size.
TEST(BufferAlignment, HostStorageIsCacheLineAligned) {
  Context ctx(dev());
  for (const std::size_t bytes : {1ul, 4ul, 60ul, 64ul, 100ul, 4096ul,
                                  (1ul << 20) + 4ul}) {
    Buffer b(ctx, bytes);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) %
                  Buffer::kHostAlignment,
              0u)
        << "size " << bytes;
    EXPECT_EQ(b.bytes(), bytes);
  }
}

TEST(BufferMove, MoveAssignReleasesOldAllocationFirst) {
  Context ctx(dev());
  Buffer a(ctx, 1024);
  {
    Buffer b(ctx, 4096);
    EXPECT_EQ(ctx.allocated_bytes(), 5120u);
    a = std::move(b);
    // The 1 KiB allocation is gone the moment the assignment completes;
    // the moved-from b owns nothing.
    EXPECT_EQ(ctx.allocated_bytes(), 4096u);
  }
  EXPECT_EQ(ctx.allocated_bytes(), 4096u);
  EXPECT_EQ(a.bytes(), 4096u);

  Buffer& same = a;
  a = std::move(same);  // self-move keeps the allocation intact
  EXPECT_EQ(ctx.allocated_bytes(), 4096u);
  EXPECT_EQ(a.bytes(), 4096u);
}

TEST(BufferMove, MoveAssignAcrossContextsFreesCapacityBoundDevice) {
  // An 8 KiB device: after move-assigning away its only buffer, the freed
  // capacity must be available immediately — the regression this pins is a
  // gauge that still counted the old allocation during adoption.
  DeviceInfo info;
  info.name = "cap-8KiB";
  info.global_mem_bytes = 8192;
  Device small(info, std::make_shared<sim::DevicePerfModel>(
                         sim::spec_by_name("i7-6700K")));
  Context small_ctx(small);
  Context big_ctx(dev());

  Buffer a(small_ctx, 6000);
  Buffer b(big_ctx, 4096);
  a = std::move(b);  // a now holds big_ctx's allocation
  EXPECT_EQ(small_ctx.allocated_bytes(), 0u);
  EXPECT_EQ(big_ctx.allocated_bytes(), 4096u);

  Buffer c(small_ctx, 8000);  // fits only if the 6000 were released
  EXPECT_EQ(small_ctx.allocated_bytes(), 8000u);
}

TEST(BufferMove, ShadowFollowsStorageAcrossMoves) {
  // The checker keys shadow state by the storage address, which moves with
  // the vector: a moved buffer keeps its init state and stays clean.
  check::CheckSession session;
  Context ctx(dev());
  Queue q(ctx);
  Buffer a(ctx, 16 * sizeof(float));
  q.enqueue_fill(a, 1.0f);

  Buffer b = std::move(a);
  auto v = b.access<float>("moved");
  Kernel k("after_move", [=](WorkItem& it) { v[it.global_id(0)] += 1.0f; });
  q.enqueue(k, NDRange(16, 16), p());

  EXPECT_TRUE(session.report().clean()) << session.report().to_text();
  EXPECT_FLOAT_EQ(b.view<const float>()[5], 2.0f);
}

TEST(Registry, TestbedIsIdempotent) {
  xcl::Platform& a = sim::testbed_platform();
  xcl::Platform& b = sim::testbed_platform();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(&sim::testbed_device("K40m"), &sim::testbed_device("K40m"));
  EXPECT_THROW((void)sim::testbed_device("GTX 4090"), Error);
}

TEST(DeviceClass, MatchesTable1Colouring) {
  EXPECT_EQ(sim::device_class(sim::testbed_device("i5-3550")),
            sim::AcceleratorClass::kCpu);
  EXPECT_EQ(sim::device_class(sim::testbed_device("Titan X")),
            sim::AcceleratorClass::kConsumerGpu);
  EXPECT_EQ(sim::device_class(sim::testbed_device("K20m")),
            sim::AcceleratorClass::kHpcGpu);
  EXPECT_EQ(sim::device_class(sim::testbed_device("Xeon Phi 7210")),
            sim::AcceleratorClass::kMic);
}

}  // namespace
}  // namespace eod::xcl
