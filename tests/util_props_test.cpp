// Property and edge-case tests for the small shared utilities: RNG,
// validation helpers, enum printers, image tooling, event bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dwarfs/common.hpp"
#include "dwarfs/dwt/image.hpp"
#include "dwarfs/gem/gem.hpp"
#include "sim/testbed.hpp"
#include "xcl/event.hpp"
#include "xcl/queue.hpp"

namespace eod::dwarfs {
namespace {

TEST(SplitMix, DeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    EXPECT_NE(va, c.next());  // astronomically unlikely to collide
  }
}

TEST(SplitMix, UniformRangesRespected) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
    const float v = rng.uniform(-3.0f, 5.0f);
    EXPECT_GE(v, -3.0f);
    EXPECT_LT(v, 5.0f);
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(SplitMix64(1).below(0), 0u);
}

TEST(SplitMix, ValuesSpreadAcrossBuckets) {
  SplitMix64 rng(99);
  std::set<std::uint64_t> buckets;
  for (int i = 0; i < 1000; ++i) buckets.insert(rng.below(64));
  EXPECT_EQ(buckets.size(), 64u);  // every bucket hit in 1000 draws
}

TEST(Validate, NormHelpersHandleEdges) {
  const std::vector<float> a = {1.0f, 2.0f};
  const std::vector<float> b = {1.0f, 2.0f};
  const std::vector<float> c = {1.0f};
  EXPECT_DOUBLE_EQ(rel_l2_diff(a, b), 0.0);
  EXPECT_TRUE(std::isinf(rel_l2_diff(a, c)));  // size mismatch
  EXPECT_TRUE(std::isinf(max_abs_diff(a, c)));
  const std::vector<float> zeros = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(rel_l2_diff(zeros, zeros), 0.0);
  EXPECT_TRUE(std::isinf(rel_l2_diff(a, zeros)));  // nonzero vs zero ref
  const Validation v = validate_norm(a, b, 1e-9, "probe");
  EXPECT_TRUE(v.ok);
  EXPECT_NE(v.detail.find("probe"), std::string::npos);
}

TEST(Enums, ProblemSizeRoundTrips) {
  for (const ProblemSize s : kAllSizes) {
    const auto parsed = parse_problem_size(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(parse_problem_size("enormous").has_value());
  EXPECT_FALSE(parse_problem_size("").has_value());
}

TEST(Enums, PrintersCoverAllValues) {
  EXPECT_STREQ(xcl::to_string(xcl::DeviceType::kAccelerator),
               "ACCELERATOR");
  EXPECT_STREQ(xcl::to_string(xcl::CommandKind::kRead), "read");
  EXPECT_STREQ(xcl::to_string(xcl::AccessPattern::kRowPerItem),
               "row-per-item");
  EXPECT_STREQ(sim::to_string(sim::AcceleratorClass::kMic), "MIC");
  EXPECT_STREQ(xcl::to_string(xcl::Status::kInvalidWorkGroupSize),
               "INVALID_WORK_GROUP_SIZE");
}

TEST(Event, DerivedTimesConsistent) {
  xcl::Event e;
  e.modeled_start_s = 1.0;
  e.modeled_end_s = 1.25;
  EXPECT_DOUBLE_EQ(e.modeled_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(e.modeled_ms(), 250.0);
}

TEST(Molecule, GrowsWithAtomCount) {
  const Molecule small = generate_molecule(100, 1);
  const Molecule big = generate_molecule(10000, 1);
  auto radius = [](const Molecule& m) {
    double r = 0.0;
    for (std::size_t i = 0; i < m.atoms(); ++i) {
      r = std::max(r, std::sqrt(static_cast<double>(m.x[i]) * m.x[i] +
                                m.y[i] * m.y[i] + m.z[i] * m.z[i]));
    }
    return r;
  };
  // Constant packing density: radius scales like cbrt(atoms).
  EXPECT_GT(radius(big), 3.0 * radius(small));
  EXPECT_LT(radius(big), 7.0 * radius(small));
}

TEST(Image, OddAndTinyShapes) {
  const GrayImage img = generate_leaf_image(7, 5);
  EXPECT_EQ(img.pixels.size(), 35u);
  const GrayImage up = box_resize(img, 3, 2);
  EXPECT_EQ(up.pixels.size(), 6u);
  EXPECT_THROW((void)box_resize(img, 0, 4), std::invalid_argument);
}

TEST(Image, ResizeIdentityWhenSameSize) {
  const GrayImage img = generate_leaf_image(32, 24);
  const GrayImage same = box_resize(img, 32, 24);
  EXPECT_EQ(same.pixels, img.pixels);
}

TEST(QueueTimeline, FinishReturnsLastEventEnd) {
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  EXPECT_DOUBLE_EQ(q.finish(), 0.0);
  xcl::Buffer b = xcl::make_buffer<float>(ctx, 64);
  std::vector<float> host(64, 1.0f);
  q.enqueue_write<float>(b, host);
  const double t1 = q.finish();
  EXPECT_GT(t1, 0.0);
  q.enqueue_write<float>(b, host);
  EXPECT_GT(q.finish(), t1);
}

TEST(QueueEnergy, KernelEnergyEqualsPowerTimesTime) {
  xcl::Context ctx(sim::testbed_device("GTX 1080"));
  xcl::Queue q(ctx);
  q.set_functional(false);
  xcl::Kernel k("probe", [](xcl::WorkItem&) {});
  xcl::WorkloadProfile p;
  p.flops = 1e9;
  p.working_set_bytes = 1e6;
  p.bytes_read = 1e6;
  q.enqueue(k, xcl::NDRange(1 << 20, 64), p);
  const xcl::Event& e = q.events().front();
  const double watts = ctx.device().model().kernel_power_watts(
      {"probe", xcl::NDRange(1 << 20, 64), p});
  EXPECT_NEAR(e.energy_j, watts * e.modeled_seconds(), 1e-12);
}

}  // namespace
}  // namespace eod::dwarfs
