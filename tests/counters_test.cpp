// Tests for the PAPI-style counter emulation (§4.3) and its integration
// with the measurement harness.
#include <gtest/gtest.h>

#include "dwarfs/registry.hpp"
#include "harness/runner.hpp"
#include "sim/counters.hpp"
#include "sim/testbed.hpp"

namespace eod::sim {
namespace {

using dwarfs::ProblemSize;

TEST(CounterSet, NamesMatchPapiPresets) {
  EXPECT_STREQ(papi_name(PapiEvent::kTotIns), "PAPI_TOT_INS");
  EXPECT_STREQ(papi_name(PapiEvent::kL1Dcm), "PAPI_L1_DCM");
  EXPECT_STREQ(papi_name(PapiEvent::kL3Tcm), "PAPI_L3_TCM");
  EXPECT_STREQ(papi_name(PapiEvent::kTlbDm), "PAPI_TLB_DM");
  EXPECT_STREQ(papi_name(PapiEvent::kBrMsp), "PAPI_BR_MSP");
}

TEST(CounterSet, DerivedRatesMatchPaperDefinitions) {
  // §4.3: request rate = requests/instructions, miss rate =
  // misses/instructions, miss ratio = misses/requests.
  CounterSet c;
  c.set(PapiEvent::kTotIns, 1000);
  c.set(PapiEvent::kTotCyc, 500);
  c.set(PapiEvent::kL3Tca, 100);
  c.set(PapiEvent::kL3Tcm, 25);
  c.set(PapiEvent::kTlbDm, 10);
  c.set(PapiEvent::kBrIns, 200);
  c.set(PapiEvent::kBrMsp, 4);
  EXPECT_DOUBLE_EQ(c.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(c.l3_request_rate(), 0.1);
  EXPECT_DOUBLE_EQ(c.l3_miss_rate(), 0.025);
  EXPECT_DOUBLE_EQ(c.l3_miss_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(c.tlb_miss_rate(), 0.01);
  EXPECT_DOUBLE_EQ(c.branch_misprediction_rate(), 0.02);
}

TEST(CounterSet, ZeroDenominatorsAreSafe) {
  CounterSet c;
  EXPECT_DOUBLE_EQ(c.ipc(), 0.0);
  EXPECT_DOUBLE_EQ(c.l3_miss_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(c.branch_misprediction_rate(), 0.0);
  EXPECT_EQ(c.get(PapiEvent::kL1Dcm), 0u);
}

TEST(DerivePapiCounters, ScalesWithWork) {
  xcl::WorkloadProfile p;
  p.flops = 1e6;
  p.int_ops = 1e5;
  p.bytes_read = 8e5;
  HierarchyCounters cache;
  cache.l1_dcm = 100;
  cache.l2_dcm = 10;
  cache.l3_tcm = 1;
  const CounterSet c = derive_papi_counters(p, cache, 4.0, 1e-3);
  EXPECT_GT(c.get(PapiEvent::kTotIns), 1000000u);
  EXPECT_EQ(c.get(PapiEvent::kL1Dcm), 100u);
  EXPECT_EQ(c.get(PapiEvent::kL3Tca), 10u);  // L3 requests = L2 misses
  EXPECT_GT(c.ipc(), 0.0);
  // Divergence raises the misprediction rate.
  p.branch_divergence = 0.8;
  const CounterSet div = derive_papi_counters(p, cache, 4.0, 1e-3);
  EXPECT_GT(div.branch_misprediction_rate(),
            c.branch_misprediction_rate());
}

// ---- harness integration: the §4.4 verification workflow ----

TEST(HarnessCounters, CollectedForTraceEnabledBenchmarks) {
  harness::MeasureOptions opts;
  opts.functional = false;
  opts.collect_counters = true;
  auto dwarf = dwarfs::create_dwarf("kmeans");
  const harness::Measurement m = harness::measure(
      *dwarf, ProblemSize::kTiny, testbed_device("i7-6700K"), opts);
  EXPECT_TRUE(m.counters_collected);
  EXPECT_GT(m.counters.get(PapiEvent::kTotIns), 0u);
  EXPECT_GT(m.counters.get(PapiEvent::kTotCyc), 0u);
}

TEST(HarnessCounters, AbsentWithoutTrace) {
  harness::MeasureOptions opts;
  opts.functional = false;
  opts.collect_counters = true;
  auto dwarf = dwarfs::create_dwarf("nqueens");  // no trace implementation
  const harness::Measurement m = harness::measure(
      *dwarf, ProblemSize::kTiny, testbed_device("i7-6700K"), opts);
  EXPECT_FALSE(m.counters_collected);
}

TEST(HarnessCounters, CacheMissesGrowAcrossSizeClasses) {
  // The paper's §4.4 verification: L1 miss *rate* is negligible at tiny
  // (L1-resident) and significant at medium (L3-resident).
  harness::MeasureOptions opts;
  opts.functional = false;
  opts.collect_counters = true;
  auto dwarf = dwarfs::create_dwarf("kmeans");
  const harness::Measurement tiny = harness::measure(
      *dwarf, ProblemSize::kTiny, testbed_device("i7-6700K"), opts);
  const harness::Measurement medium = harness::measure(
      *dwarf, ProblemSize::kMedium, testbed_device("i7-6700K"), opts);
  const double tiny_rate =
      static_cast<double>(tiny.counters.get(PapiEvent::kL1Dcm)) /
      static_cast<double>(tiny.counters.get(PapiEvent::kTotIns));
  const double medium_rate =
      static_cast<double>(medium.counters.get(PapiEvent::kL1Dcm)) /
      static_cast<double>(medium.counters.get(PapiEvent::kTotIns));
  EXPECT_GT(medium_rate, 5.0 * tiny_rate);
}

TEST(HarnessCounters, StencilTrafficLandsInCaches) {
  // srad small fits L2 on the Skylake: after warm-up there must be almost
  // no L3 misses relative to accesses.
  harness::MeasureOptions opts;
  opts.functional = false;
  opts.collect_counters = true;
  auto dwarf = dwarfs::create_dwarf("srad");
  const harness::Measurement m = harness::measure(
      *dwarf, ProblemSize::kSmall, testbed_device("i7-6700K"), opts);
  ASSERT_TRUE(m.counters_collected);
  EXPECT_LT(m.counters.l3_miss_rate(), 1e-3);
}

}  // namespace
}  // namespace eod::sim
