// Unit tests for the measurement library: statistics, distribution
// functions, power analysis, sample sets, logging, timing.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "scibench/logger.hpp"
#include "scibench/power_analysis.hpp"
#include "scibench/sample_set.hpp"
#include "scibench/stats.hpp"
#include "scibench/timer.hpp"

namespace eod::scibench {
namespace {

TEST(Stats, SummaryOfKnownVector) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Stats, SummaryEmptyAndSingle) {
  EXPECT_EQ(summarize({}).n, 0u);
  const std::vector<double> one = {3.5};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Stats, CovZeroWhenMeanZero) {
  const std::vector<double> xs = {-1.0, 1.0};
  EXPECT_DOUBLE_EQ(summarize(xs).cov(), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 25.0);
  EXPECT_NEAR(quantile(xs, 0.25), 17.5, 1e-12);
}

TEST(Stats, NormalCdfSymmetry) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96) + normal_cdf(-1.96), 1.0, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959964), 0.975, 1e-6);
}

TEST(Stats, NormalQuantileInvertsCdf) {
  for (const double p : {0.01, 0.05, 0.25, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
  EXPECT_THROW((void)normal_quantile(0.0), std::domain_error);
  EXPECT_THROW((void)normal_quantile(1.0), std::domain_error);
}

TEST(Stats, StudentTCdfMatchesKnownValues) {
  // t_{0.975, 10} = 2.228139; CDF(2.228139, 10) = 0.975.
  EXPECT_NEAR(student_t_cdf(2.228139, 10.0), 0.975, 1e-5);
  EXPECT_NEAR(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
  // Converges to the normal for large df.
  EXPECT_NEAR(student_t_cdf(1.96, 1e6), normal_cdf(1.96), 1e-4);
}

TEST(Stats, IncompleteBetaBounds) {
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x.
  EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.42), 0.42, 1e-10);
}

TEST(Stats, WelchTTestDetectsDifference) {
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(10.0 + 0.1 * (i % 5));
    b.push_back(12.0 + 0.1 * (i % 5));
  }
  const TTestResult r = welch_t_test(a, b);
  EXPECT_TRUE(r.significant());
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_LT(r.t, 0.0);
}

TEST(Stats, WelchTTestSameDistribution) {
  std::vector<double> a = {5.0, 5.1, 4.9, 5.05, 4.95};
  const TTestResult r = welch_t_test(a, a);
  EXPECT_NEAR(r.t, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(Stats, ConfidenceIntervalCoversMean) {
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(100.0 + (i % 7) - 3.0);
  const Summary s = summarize(xs);
  const ConfidenceInterval ci = mean_confidence_interval(xs);
  EXPECT_LT(ci.lo, s.mean);
  EXPECT_GT(ci.hi, s.mean);
  EXPECT_LT(ci.hi - ci.lo, 2.0);
}

TEST(Stats, BootstrapCiIsDeterministicAndCoversMean) {
  std::vector<double> xs;
  for (int i = 0; i < 40; ++i) xs.push_back(3.0 + 0.01 * (i % 11));
  const auto a = bootstrap_mean_ci(xs);
  const auto b = bootstrap_mean_ci(xs);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  const double mean = summarize(xs).mean;
  EXPECT_LE(a.lo, mean);
  EXPECT_GE(a.hi, mean);
}

TEST(PowerAnalysis, PaperSampleSizeIsAboutFifty) {
  // §4.3: 50 samples per group give power 0.8 at half-a-sigma separation.
  // The two-sample normal-approximation calculation lands in the 50s for
  // d ~= 0.5-0.57; assert the paper's 50 indeed achieves ~0.8 power at the
  // half-sigma scale it quotes.
  const double power_at_50 = t_test_power(50, 0.5);
  EXPECT_GT(power_at_50, 0.65);
  EXPECT_LT(power_at_50, 0.90);
  const std::size_t n = required_sample_size(0.5, 0.8, 0.05);
  EXPECT_GE(n, 40u);
  EXPECT_LE(n, 70u);
  EXPECT_GE(t_test_power(n, 0.5), 0.8);
  EXPECT_LT(t_test_power(n - 1, 0.5), 0.8);
}

TEST(PowerAnalysis, PowerMonotoneInNAndEffect) {
  EXPECT_LT(t_test_power(10, 0.5), t_test_power(100, 0.5));
  EXPECT_LT(t_test_power(50, 0.2), t_test_power(50, 0.8));
  EXPECT_THROW((void)required_sample_size(0.0), std::domain_error);
}

TEST(SampleSet, SegmentsAccumulate) {
  SampleSet set;
  set.add(Segment::kKernel, 1.0);
  set.add(Segment::kKernel, 3.0);
  set.add(Segment::kMemoryTransfer, 10.0);
  EXPECT_EQ(set.total_samples(), 3u);
  EXPECT_DOUBLE_EQ(set.summary(Segment::kKernel).mean, 2.0);
  EXPECT_EQ(set.samples(Segment::kHostSetup).size(), 0u);
  EXPECT_EQ(set.names().size(), 2u);
  set.clear();
  EXPECT_EQ(set.total_samples(), 0u);
}

TEST(Logger, WritesHeaderAndRows) {
  std::ostringstream os;
  TableLogger log(os, {"a", "b"});
  log.row({"1", "2"});
  log.row({"x", TableLogger::num(2.5)});
  EXPECT_EQ(log.rows_written(), 2u);
  EXPECT_EQ(os.str(), "a b\n1 2\nx 2.5\n");
  EXPECT_THROW(log.row({"only-one"}), std::invalid_argument);
}

TEST(Logger, NumRoundTrips) {
  const double v = 0.12345678901234567;
  EXPECT_DOUBLE_EQ(std::stod(TableLogger::num(v)), v);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  t.start();
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const std::uint64_t lap = t.stop();
  EXPECT_GT(lap, 0u);
  EXPECT_EQ(t.laps(), 1u);
  EXPECT_EQ(t.total_ns(), lap);
}

TEST(Timer, OverheadIsSmall) {
  const double overhead = measure_timer_overhead_ns(2000);
  EXPECT_GT(overhead, 0.0);
  // LibSciBench quotes ~6 ns; any sane clock path is well under 1 us.
  EXPECT_LT(overhead, 1000.0);
}

TEST(Timer, MonotonicClock) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace eod::scibench
