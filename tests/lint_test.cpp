// Tests for tools/eod_lint (DESIGN.md §15): every rule R1–R5 must fire on
// a seeded-violation fixture and stay silent on the matching clean
// fixture, the annotation meta-rules must keep suppressions honest, the
// baseline must round-trip, and — the CI gate — the repository itself must
// lint clean.  Fixture sources live in raw strings so the linter's own
// whole-tree pass never mistakes them for real code.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace eod::lint {
namespace {

LintReport run(const std::string& path, std::string_view src) {
  LintConfig cfg;
  LintReport report;
  lint_source(path, src, cfg, report);
  return report;
}

std::size_t count_rule(const LintReport& r, Rule rule) {
  std::size_t n = 0;
  for (const Finding& f : r.findings()) n += f.rule == rule ? 1 : 0;
  return n;
}

// ---------------------------------------------------- R1 event-deps

TEST(EventDeps, FiresOnUnwaitedCallInConvertedTu) {
  const LintReport r = run("src/dwarfs/foo/foo.cpp", R"cpp(
void Foo::go() {
  const xcl::Event e = q.enqueue(k, range, prof, deps);
  q.enqueue_read<float>(buf, out);
}
)cpp");
  ASSERT_EQ(r.findings().size(), 1u);
  EXPECT_EQ(r.findings()[0].rule, Rule::kEventDeps);
  EXPECT_EQ(r.findings()[0].severity, Severity::kError);
  EXPECT_EQ(r.findings()[0].line, 4u);
}

TEST(EventDeps, NullptrWaitListCountsAsNoDependencies) {
  // `submit(e, dt, nullptr)` reaches the wait-list arity but spells "no
  // dependencies" explicitly; in a converted TU it still needs a reason.
  const LintReport r = run("src/harness/h.cpp", R"cpp(
void go() {
  q.submit(ev, dt, &wait_list, body);
  q.submit(ev2, dt2, nullptr, body2);
}
)cpp");
  ASSERT_EQ(r.findings().size(), 1u);
  EXPECT_EQ(r.findings()[0].rule, Rule::kEventDeps);
  EXPECT_EQ(r.findings()[0].line, 4u);
}

TEST(EventDeps, SilentOnInOrderTu) {
  // Self-scoping: no call in the TU passes a wait list, so the dwarf is
  // an in-order one and bare enqueues are its normal idiom.
  const LintReport r = run("src/dwarfs/foo/foo.cpp", R"cpp(
void Foo::go() {
  q.enqueue_write<float>(buf, in);
  q.enqueue(k, range);
  q.enqueue_read<float>(buf, out);
}
)cpp");
  EXPECT_TRUE(r.clean()) << r.to_text();
}

TEST(EventDeps, SilentWithAnnotationOrWaitList) {
  const LintReport r = run("src/dwarfs/foo/foo.cpp", R"cpp(
void Foo::go() {
  // lint: no-deps(first upload, no producers)
  q.enqueue_write<float>(buf, in);
  const xcl::Event e = q.enqueue(k, range, prof, deps);
  q.enqueue_read<float>(buf, out, reads);  // explicit wait list
}
)cpp");
  EXPECT_TRUE(r.clean()) << r.to_text();
}

TEST(EventDeps, OutOfScopePathIgnored) {
  // The queue implementation itself (src/xcl/) hosts the overloads; R1
  // only scopes over dwarf and harness TUs.
  const LintReport r = run("src/xcl/other.cpp", R"cpp(
void go() {
  q.enqueue(k, range, prof, deps);
  q.enqueue_read<float>(buf, out);
}
)cpp");
  EXPECT_EQ(count_rule(r, Rule::kEventDeps), 0u) << r.to_text();
}

// --------------------------------------------------- R2 memory-order

TEST(MemoryOrder, RelaxedOutsideObsFires) {
  const LintReport r = run("src/xcl/foo.cpp", R"cpp(
void f(std::atomic<int>& a) {
  a.store(1, std::memory_order_relaxed);
}
)cpp");
  ASSERT_EQ(r.findings().size(), 1u);
  EXPECT_EQ(r.findings()[0].rule, Rule::kMemoryOrder);
  EXPECT_EQ(r.findings()[0].severity, Severity::kError);
}

TEST(MemoryOrder, SingleOrderCompareExchangeFires) {
  const LintReport r = run("src/obs/gauges.hpp", R"cpp(
void f(std::atomic<int>& a, int& e) {
  a.compare_exchange_weak(e, 2, std::memory_order_acquire);
  a.compare_exchange_strong(e, 3, std::memory_order_seq_cst);
}
)cpp");
  EXPECT_EQ(count_rule(r, Rule::kMemoryOrder), 2u) << r.to_text();
}

TEST(MemoryOrder, CleanFixtures) {
  // Relaxed inside src/obs/, annotated relaxed elsewhere, CAS naming both
  // orders, and CAS naming none (defaulted seq_cst) are all legal.
  EXPECT_TRUE(run("src/obs/metrics2.hpp", R"cpp(
void f(std::atomic<int>& a) { a.store(1, std::memory_order_relaxed); }
)cpp")
                  .clean());
  EXPECT_TRUE(run("src/xcl/foo.cpp", R"cpp(
void f(std::atomic<int>& a) {
  // lint: relaxed-ok(stat counter)
  a.store(1, std::memory_order_relaxed);
}
)cpp")
                  .clean());
  EXPECT_TRUE(run("src/xcl/foo.cpp", R"cpp(
void f(std::atomic<int>& a, int& e) {
  a.compare_exchange_weak(e, 2, std::memory_order_acq_rel,
                          std::memory_order_acquire);
  a.compare_exchange_strong(e, 3);
}
)cpp")
                  .clean());
}

// ----------------------------------------------------- R3 hot-alloc

TEST(HotAlloc, FiresInHotPathTu) {
  const LintReport r = run("src/xcl/queue.cpp", R"cpp(
void f(std::vector<int>& v) {
  int* p = new int[4];
  v.push_back(1);
}
)cpp");
  ASSERT_EQ(r.findings().size(), 2u) << r.to_text();
  EXPECT_EQ(r.findings()[0].severity, Severity::kError);    // raw new
  EXPECT_EQ(r.findings()[1].severity, Severity::kWarning);  // growth
  EXPECT_EQ(count_rule(r, Rule::kHotAlloc), 2u);
}

TEST(HotAlloc, CleanWhenAnnotatedOrOutOfScope) {
  EXPECT_TRUE(run("src/xcl/queue.cpp", R"cpp(
void f(std::vector<int>& v) {
  // lint: alloc-ok(startup)
  int* p = new int[4];
  // lint: alloc-ok(drain-time)
  v.push_back(1);
}
)cpp")
                  .clean());
  // The arena TU is the allocation layer; it is exempt by construction.
  EXPECT_TRUE(run("src/xcl/arena.cpp", R"cpp(
void f(std::vector<int>& v) {
  int* p = new int[4];
  v.push_back(1);
}
)cpp")
                  .clean());
}

// ------------------------------------------------------ R4 layering

TEST(Layering, ForbiddenEdgeRejected) {
  // scibench is the bottom layer; an edge into xcl inverts the stack.
  std::map<std::string, std::vector<IncludeDirective>> files;
  files["src/scibench/timer.cpp"] = {{"xcl/queue.hpp", false, 3}};
  files["src/xcl/queue.hpp"] = {};
  LintConfig cfg;
  LintReport r;
  lint_layering(files, cfg, r);
  ASSERT_EQ(r.findings().size(), 1u);
  EXPECT_EQ(r.findings()[0].rule, Rule::kLayering);
  EXPECT_EQ(r.findings()[0].path, "src/scibench/timer.cpp");
  EXPECT_EQ(r.findings()[0].line, 3u);
}

TEST(Layering, IncludeCycleRejected) {
  // Same-module edges are matrix-legal, but a file-level cycle is still a
  // structural defect (compilable only by include-guard accident).
  std::map<std::string, std::vector<IncludeDirective>> files;
  files["src/xcl/a.hpp"] = {{"xcl/b.hpp", false, 1}};
  files["src/xcl/b.hpp"] = {{"xcl/a.hpp", false, 1}};
  LintConfig cfg;
  LintReport r;
  lint_layering(files, cfg, r);
  ASSERT_EQ(r.findings().size(), 1u);
  EXPECT_EQ(r.findings()[0].rule, Rule::kLayering);
  EXPECT_NE(r.findings()[0].detail.find("cycle"), std::string::npos);
}

TEST(Layering, AllowedEdgesClean) {
  std::map<std::string, std::vector<IncludeDirective>> files;
  files["src/xcl/queue.cpp"] = {{"obs/trace.hpp", false, 2},
                                {"scibench/timers.hpp", false, 3}};
  files["src/obs/trace.hpp"] = {};
  files["src/scibench/timers.hpp"] = {};
  LintConfig cfg;
  LintReport r;
  lint_layering(files, cfg, r);
  EXPECT_TRUE(r.clean()) << r.to_text();
}

TEST(Layering, MatrixParseRejectsCyclicMatrix) {
  std::string err;
  const LayeringMatrix m =
      LayeringMatrix::parse("a\tb\nb\ta\n", &err);
  EXPECT_TRUE(m.allowed.empty());
  EXPECT_FALSE(err.empty());
}

TEST(Layering, MatrixParseAcceptsCommentsAndDeps) {
  std::string err;
  const LayeringMatrix m = LayeringMatrix::parse(
      "# comment\nscibench\t\nobs\tscibench\nxcl\tobs,scibench\n", &err);
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(m.allowed.size(), 3u);
  EXPECT_EQ(m.allowed.at("xcl").count("obs"), 1u);
}

// -------------------------------------------------- R5 obs-contract

TEST(ObsContract, DiscardedTraceSpanTemporaryFires) {
  const LintReport r = run("src/harness/h.cpp", R"cpp(
void f() {
  obs::TraceSpan("region", "cat");
  g();
}
)cpp");
  ASSERT_EQ(count_rule(r, Rule::kObsContract), 1u) << r.to_text();
  EXPECT_EQ(r.findings()[0].severity, Severity::kError);
}

TEST(ObsContract, RawEmitOutsideObsWarns) {
  const LintReport r = run("src/harness/h.cpp", R"cpp(
void f() {
  obs::emit_complete("k", "cat", 0, 10);
}
)cpp");
  ASSERT_EQ(count_rule(r, Rule::kObsContract), 1u) << r.to_text();
  EXPECT_EQ(r.findings()[0].severity, Severity::kWarning);
}

TEST(ObsContract, AccessLabelDisagreeingWithNamedFires) {
  const LintReport r = run("src/dwarfs/foo/foo.cpp", R"cpp(
void Foo::bind() {
  buf_.named("alpha");
}
void Foo::go() {
  auto a = buf_.access<float>("beta");
}
)cpp");
  ASSERT_EQ(count_rule(r, Rule::kObsContract), 1u) << r.to_text();
  EXPECT_NE(r.findings()[0].detail.find("alpha"), std::string::npos);
}

TEST(ObsContract, CleanFixture) {
  // Named span, justified raw emission, member labels agreeing with
  // named(), and an unrelated local `buf` reusing a label name in a
  // different function (a different lexical region).
  const LintReport r = run("src/harness/h.cpp", R"cpp(
void f() {
  obs::TraceSpan span("region", "cat");
  // lint: raw-span-ok(virtual device timestamps)
  obs::emit_complete("k", "cat", 0, 10);
  buf_.named("alpha");
  auto a = buf_.access<float>("alpha");
}
void g() {
  auto buf = make_buf();
  auto x = buf.access<float>("one");
}
void h() {
  auto buf = make_buf();
  auto x = buf.access<float>("two");
}
)cpp");
  EXPECT_TRUE(r.clean()) << r.to_text();
}

// ------------------------------------------- annotation meta-rules

TEST(Annotations, EmptyReasonIsError) {
  const LintReport r = run("src/xcl/foo.cpp", R"cpp(
void f(std::atomic<int>& a) {
  // lint: relaxed-ok()
  a.store(1, std::memory_order_relaxed);
}
)cpp");
  ASSERT_EQ(count_rule(r, Rule::kAnnotation), 1u) << r.to_text();
  EXPECT_EQ(r.findings()[0].severity, Severity::kError);
}

TEST(Annotations, UnknownTagWarns) {
  const LintReport r = run("src/xcl/foo.cpp", R"cpp(
// lint: totally-fine(trust me)
int x = 0;
)cpp");
  ASSERT_EQ(count_rule(r, Rule::kAnnotation), 1u) << r.to_text();
  EXPECT_EQ(r.findings()[0].severity, Severity::kWarning);
}

TEST(Annotations, StaleAnnotationWarns) {
  const LintReport r = run("src/xcl/foo.cpp", R"cpp(
void f() {
  // lint: relaxed-ok(nothing relaxed here any more)
  int x = 0;
}
)cpp");
  ASSERT_EQ(count_rule(r, Rule::kAnnotation), 1u) << r.to_text();
  EXPECT_NE(r.findings()[0].detail.find("stale"), std::string::npos);
}

// ------------------------------------------------ report & baseline

TEST(Report, RanksErrorsBeforeWarningsAndRenders) {
  const LintReport r = run("src/xcl/queue.cpp", R"cpp(
void f(std::vector<int>& v) {
  v.push_back(1);
  int* p = new int[4];
}
)cpp");
  ASSERT_EQ(r.findings().size(), 2u);
  // The raw-new error sits on the later line but ranks first.
  EXPECT_EQ(r.findings()[0].severity, Severity::kError);
  EXPECT_EQ(r.findings()[1].severity, Severity::kWarning);
  EXPECT_EQ(r.error_count(), 1u);
  EXPECT_EQ(r.warning_count(), 1u);

  const std::string tsv = r.to_tsv();
  EXPECT_EQ(tsv.find("severity\trule\tpath\tline"), 0u) << tsv;
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"rule\": \"hot-alloc\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
}

TEST(Baseline, RoundTripSuppressesGrandfatheredFindings) {
  const char* fixture = R"cpp(
void f(std::atomic<int>& a) {
  a.store(1, std::memory_order_relaxed);
}
)cpp";
  LintReport first = run("src/xcl/foo.cpp", fixture);
  ASSERT_FALSE(first.clean());
  const std::set<std::string> keys = parse_baseline(first.to_baseline());
  ASSERT_FALSE(keys.empty());

  LintReport second = run("src/xcl/foo.cpp", fixture);
  EXPECT_EQ(second.apply_baseline(keys), 1u);
  EXPECT_TRUE(second.clean()) << second.to_text();
  // The baseline key is content-hashed, so a *different* violation on the
  // same path is not covered.
  LintReport third = run("src/xcl/foo.cpp", R"cpp(
void g(std::atomic<long>& b) {
  b.store(2, std::memory_order_relaxed);
}
)cpp");
  EXPECT_EQ(third.apply_baseline(keys), 0u);
  EXPECT_FALSE(third.clean());
}

// ------------------------------------------------- the repo CI gate

TEST(WholeTree, RepositoryLintsClean) {
  LintConfig cfg;
  // The checked-in matrix, exactly as the CI lint job loads it.
  std::ifstream matrix(std::string(EOD_REPO_ROOT) +
                       "/tools/eod_lint/layering.tsv");
  ASSERT_TRUE(matrix.is_open());
  std::stringstream buf;
  buf << matrix.rdbuf();
  std::string err;
  cfg.layering = LayeringMatrix::parse(buf.str(), &err);
  ASSERT_TRUE(err.empty()) << err;

  LintReport tree;
  std::size_t scanned = 0;
  ASSERT_TRUE(lint_tree(EOD_REPO_ROOT, cfg, tree, &err, &scanned)) << err;
  EXPECT_GT(scanned, 100u);
  EXPECT_TRUE(tree.clean()) << tree.to_text();
}

}  // namespace
}  // namespace eod::lint
