// Tests for the dataset file formats: the createcsr matrix file (Table 3's
// Psi) and the PQR molecule format gem consumes.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "dwarfs/csr/csr_io.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"
#include "dwarfs/gem/gem.hpp"

namespace eod::dwarfs {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CsrIo, RoundTripsExactly) {
  const CsrMatrix m = create_csr(500, 0.01, 7);
  const std::string path = temp_path("roundtrip.csr");
  save_csr(m, path);
  const CsrMatrix back = load_csr(path);
  EXPECT_EQ(back.n, m.n);
  EXPECT_EQ(back.row_ptr, m.row_ptr);
  EXPECT_EQ(back.cols, m.cols);
  EXPECT_EQ(back.vals, m.vals);
  std::remove(path.c_str());
}

TEST(CsrIo, LoadedMatrixValidatesThroughTheBenchmark) {
  const std::string path = temp_path("bench.csr");
  save_csr(create_csr(300, 0.02, 9), path);
  Csr csr;
  csr.configure_with_matrix(load_csr(path));
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  csr.bind(ctx, q);
  csr.run();
  csr.finish();
  EXPECT_TRUE(csr.validate().ok);
  csr.unbind();
  std::remove(path.c_str());
}

TEST(CsrIo, RejectsMissingAndCorruptFiles) {
  EXPECT_THROW((void)load_csr("/nonexistent/x.csr"), std::runtime_error);

  // Wrong magic.
  const std::string bad_magic = temp_path("bad_magic.csr");
  {
    std::ofstream out(bad_magic, std::ios::binary);
    out << "NOTACSRFILE";
  }
  EXPECT_THROW((void)load_csr(bad_magic), std::runtime_error);
  std::remove(bad_magic.c_str());

  // Truncated body.
  const CsrMatrix m = create_csr(100, 0.05, 3);
  const std::string full = temp_path("full.csr");
  save_csr(m, full);
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const std::string truncated = temp_path("trunc.csr");
  {
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW((void)load_csr(truncated), std::runtime_error);

  // Corrupt a column index beyond n: structural validation must catch it.
  const std::string corrupt = temp_path("corrupt.csr");
  {
    std::string mutated = bytes;
    // cols live after magic(8) + n(8) + rowptr hdr(8) + rowptr data +
    // cols hdr(8); flip the first column's bytes to a huge value.
    const std::size_t cols_off =
        8 + 8 + 8 + (m.n + 1) * sizeof(std::uint32_t) + 8;
    mutated[cols_off] = '\xFF';
    mutated[cols_off + 1] = '\xFF';
    mutated[cols_off + 2] = '\xFF';
    mutated[cols_off + 3] = '\x7F';
    std::ofstream out(corrupt, std::ios::binary);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
  }
  EXPECT_THROW((void)load_csr(corrupt), std::runtime_error);
  std::remove(full.c_str());
  std::remove(truncated.c_str());
  std::remove(corrupt.c_str());
}

TEST(PqrIo, RoundTripsWithinFormatPrecision) {
  const Molecule m = generate_molecule(256, 5);
  const std::string path = temp_path("mol.pqr");
  save_pqr(m, path);
  const Molecule back = load_pqr(path);
  ASSERT_EQ(back.atoms(), m.atoms());
  for (std::size_t i = 0; i < m.atoms(); ++i) {
    EXPECT_NEAR(back.x[i], m.x[i], 1e-3);  // %8.3f coordinates
    EXPECT_NEAR(back.y[i], m.y[i], 1e-3);
    EXPECT_NEAR(back.z[i], m.z[i], 1e-3);
    EXPECT_NEAR(back.q[i], m.q[i], 1e-4);  // %7.4f charge
    EXPECT_NEAR(back.r[i], m.r[i], 1e-4);
  }
  std::remove(path.c_str());
}

TEST(PqrIo, SkipsNonAtomRecordsAndRejectsGarbage) {
  const std::string path = temp_path("mixed.pqr");
  {
    std::ofstream out(path);
    out << "REMARK test molecule\n"
        << "ATOM      1  C   MOL A   1       1.000   2.000   3.000 "
           "0.5000 1.5000\n"
        << "TER\n"
        << "HETATM    2  O   HOH A   2      -1.000  -2.000  -3.000 "
           "-0.5000 1.2000\n"
        << "END\n";
  }
  const Molecule m = load_pqr(path);
  ASSERT_EQ(m.atoms(), 2u);
  EXPECT_FLOAT_EQ(m.x[0], 1.0f);
  EXPECT_FLOAT_EQ(m.q[1], -0.5f);
  std::remove(path.c_str());

  EXPECT_THROW((void)load_pqr("/nonexistent/mol.pqr"), std::runtime_error);
  const std::string empty = temp_path("empty.pqr");
  {
    std::ofstream out(empty);
    out << "REMARK nothing here\n";
  }
  EXPECT_THROW((void)load_pqr(empty), std::runtime_error);
  std::remove(empty.c_str());
}

}  // namespace
}  // namespace eod::dwarfs
