// Span-tier equivalence suite (DESIGN.md §9): every dwarf that registers a
// span kernel must reproduce the per-item reference path bit-identically.
// For each (dwarf, size) cell the benchmark runs twice from an identical
// deterministic setup -- once with --dispatch=item (the per-item loop/fiber
// reference) and once with --dispatch=span -- and the test pins:
//   * result_signature(): an order-sensitive byte hash of the output
//     vectors, so "equal" means every float/int is bit-identical;
//   * validation against the serial reference in both modes;
//   * that the span run actually took the span tier (groups_span delta);
//   * the memory-trace content key and the replayed warm cache counters,
//     which must not depend on the dispatch tier at all.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"
#include "dwarfs/registry.hpp"
#include "sim/device_spec.hpp"
#include "sim/replay_cache.hpp"
#include "sim/testbed.hpp"
#include "xcl/context.hpp"
#include "xcl/executor.hpp"
#include "xcl/queue.hpp"

namespace {

using eod::dwarfs::ProblemSize;

// Replays are memoized process-wide by trace content + geometry, so the
// span-mode replay of an identical trace is a memo hit -- the counter
// comparison is really a trace-bit-identity proof plus the replay
// determinism that cache_replay_test pins separately.
constexpr std::size_t kMaxReplayAccesses = 20'000'000;

struct RunOutcome {
  bool ok = false;                  ///< validate() against serial reference
  std::uint64_t signature = 0;      ///< result_signature() byte hash
  std::uint64_t span_groups = 0;    ///< groups_span delta during run()
  std::uint64_t other_groups = 0;   ///< loop+fiber delta during run()
  std::optional<eod::sim::TraceKey> trace;
  std::optional<eod::sim::HierarchyCounters> warm;
};

RunOutcome run_once(const char* name, ProblemSize size,
                    eod::xcl::DispatchMode mode) {
  struct ModeGuard {
    eod::xcl::DispatchMode prev = eod::xcl::dispatch_mode();
    ~ModeGuard() { eod::xcl::set_dispatch_mode(prev); }
  } guard;
  eod::xcl::set_dispatch_mode(mode);

  auto dwarf = eod::dwarfs::create_dwarf(name);
  dwarf->setup(size);

  eod::xcl::Device& dev = eod::sim::testbed_device("i7-6700K");
  eod::xcl::Context ctx(dev);
  eod::xcl::Queue q(ctx);
  dwarf->bind(ctx, q);

  // The delta brackets run() AND finish(): an out-of-order queue
  // (EOD_QUEUE=ooo) defers kernel execution to the sync point inside
  // finish(), so snapshotting after run() alone would miss every group.
  const eod::xcl::ExecutorStats before = eod::xcl::executor_stats();
  dwarf->run();
  dwarf->finish();
  const eod::xcl::ExecutorStats after = eod::xcl::executor_stats();

  RunOutcome out;
  out.ok = dwarf->validate().ok;
  out.signature = dwarf->result_signature();
  out.span_groups = after.groups_span - before.groups_span;
  out.other_groups = (after.groups_loop - before.groups_loop) +
                     (after.groups_fiber - before.groups_fiber);

  const std::size_t hint = dwarf->trace_size_hint();
  if (hint > 0 && hint <= kMaxReplayAccesses) {
    auto gen = [&dwarf](eod::sim::TraceWriter& w) { dwarf->stream_trace(w); };
    out.trace = eod::sim::hash_trace(gen);
    out.warm = eod::sim::memoized_replay(gen,
                                         eod::sim::spec_by_name("i7-6700K"),
                                         std::string(name) + "/span-eq")
                   .warm;
  }
  dwarf->unbind();
  return out;
}

struct SpanCase {
  const char* name;
  std::vector<ProblemSize> sizes;
};

// gem (O(vertices x atoms)) and cwt (O(N x S x support)) grow
// superlinearly; their medium/large functional passes run for minutes, so
// -- like dwarf_validation_test -- the equivalence cells stop at small.
// Every size still takes the same span code path (tail clamping included:
// the tested cells already exercise padded final groups).
const SpanCase kCases[] = {
    {"kmeans", {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
                ProblemSize::kLarge}},
    {"csr", {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
             ProblemSize::kLarge}},
    {"crc", {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
             ProblemSize::kLarge}},
    {"srad", {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
              ProblemSize::kLarge}},
    {"dwt", {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
             ProblemSize::kLarge}},
    {"nw", {ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
            ProblemSize::kLarge}},
    {"gem", {ProblemSize::kTiny, ProblemSize::kSmall}},
    {"cwt", {ProblemSize::kTiny, ProblemSize::kSmall}},
};

class SpanTier : public ::testing::TestWithParam<SpanCase> {};

TEST_P(SpanTier, SpanMatchesItemReferenceBitExactly) {
  const SpanCase& c = GetParam();
  for (const ProblemSize size : c.sizes) {
    SCOPED_TRACE(std::string(c.name) + "/" + eod::dwarfs::to_string(size));
    const RunOutcome item =
        run_once(c.name, size, eod::xcl::DispatchMode::kItem);
    const RunOutcome span =
        run_once(c.name, size, eod::xcl::DispatchMode::kSpan);

    // Both tiers pass serial-reference validation...
    EXPECT_TRUE(item.ok);
    EXPECT_TRUE(span.ok);
    // ...and the tiers really differed: item pinned the reference path,
    // span dispatched every group of the converted kernels as one call.
    EXPECT_EQ(item.span_groups, 0u);
    EXPECT_GT(span.span_groups, 0u);

    // Byte-exact output equivalence, not tolerance-based validation.
    ASSERT_NE(item.signature, 0u);
    EXPECT_EQ(span.signature, item.signature);

    // The memory trace (and therefore every replayed cache counter) is a
    // function of the benchmark's data, not of the dispatch tier.
    ASSERT_EQ(item.trace.has_value(), span.trace.has_value());
    if (item.trace.has_value()) {
      EXPECT_EQ(item.trace->content_hash, span.trace->content_hash);
      EXPECT_EQ(item.trace->accesses, span.trace->accesses);
      EXPECT_EQ(*item.warm, *span.warm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ConvertedDwarfs, SpanTier,
                         ::testing::ValuesIn(kCases),
                         [](const auto& ti) {
                           return std::string(ti.param.name);
                         });

// kAuto behaves exactly like kSpan for legal launches: same outputs, same
// span-group accounting.
TEST(SpanTierAuto, AutoSelectsSpanWhereLegal) {
  const RunOutcome a =
      run_once("kmeans", ProblemSize::kTiny, eod::xcl::DispatchMode::kAuto);
  const RunOutcome s =
      run_once("kmeans", ProblemSize::kTiny, eod::xcl::DispatchMode::kSpan);
  EXPECT_EQ(a.signature, s.signature);
  EXPECT_EQ(a.span_groups, s.span_groups);
  EXPECT_GT(a.span_groups, 0u);
}

// Dwarfs without a span body are untouched by the override: hmm's
// barrier kernels must run on the fiber path in every mode.  (lud used to
// be this case until its kernels grew span bodies for the partitioned
// multi-device path, DESIGN.md §14.)
TEST(SpanTierAuto, NonConvertedDwarfKeepsReferencePath) {
  const RunOutcome a =
      run_once("hmm", ProblemSize::kTiny, eod::xcl::DispatchMode::kSpan);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.span_groups, 0u);
  EXPECT_GT(a.other_groups, 0u);
}

}  // namespace
