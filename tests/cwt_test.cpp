// Tests for the continuous wavelet transform extension benchmark (§2:
// "we plan to add a continuous wavelet transform code").
#include <gtest/gtest.h>

#include <cmath>

#include "dwarfs/cwt/cwt.hpp"
#include "dwarfs/registry.hpp"
#include "harness/problem_size.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace eod::dwarfs {
namespace {

void run_functional(Cwt& cwt) {
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  cwt.bind(ctx, q);
  cwt.run();
  cwt.finish();
  cwt.unbind();
}

TEST(Cwt, RegisteredAsExtension) {
  EXPECT_EQ(extension_names().size(), 2u);
  EXPECT_EQ(extension_names()[0], "cwt");
  EXPECT_EQ(extension_names()[1], "beff");
  // Not in the paper's Table 2 roster...
  for (const auto& n : benchmark_names()) EXPECT_NE(n, "cwt");
  // ...but constructible through the factory.
  EXPECT_EQ(create_dwarf("cwt")->berkeley_dwarf(), "Spectral Methods");
}

TEST(Cwt, ValidatesAgainstSerialReference) {
  Cwt cwt;
  cwt.setup(ProblemSize::kTiny);
  run_functional(cwt);
  const Validation v = cwt.validate();
  EXPECT_TRUE(v.ok) << v.detail;
}

TEST(Cwt, FootprintsFollowTheSizeMethodology) {
  const harness::SizeClassBounds bounds =
      harness::SizeClassBounds::from_device(sim::skylake());
  Cwt cwt;
  EXPECT_LE(cwt.footprint_bytes(ProblemSize::kTiny), bounds.l1_bytes);
  EXPECT_LE(cwt.footprint_bytes(ProblemSize::kSmall), bounds.l2_bytes);
  EXPECT_LE(cwt.footprint_bytes(ProblemSize::kMedium), bounds.l3_bytes);
  EXPECT_GT(cwt.footprint_bytes(ProblemSize::kLarge), bounds.l3_bytes);
}

TEST(Cwt, FootprintMatchesAllocator) {
  Cwt cwt;
  cwt.setup(ProblemSize::kTiny);
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  cwt.bind(ctx, q);
  EXPECT_EQ(ctx.allocated_bytes(),
            cwt.footprint_bytes(ProblemSize::kTiny));
  cwt.unbind();
}

TEST(Cwt, SinusoidEnergyLocalisesAtMatchingScale) {
  // A pure tone of period T concentrates |W| at the scale where the
  // Morlet centre frequency matches: s* ~= omega0 * T / (2 pi).
  constexpr std::size_t kN = 512;
  constexpr double kPeriod = 32.0;
  Cwt cwt;
  cwt.configure(kN, 24);
  // Inject a clean sinusoid through the custom-input path: rebuild the
  // magnitudes from a configured instance whose generated signal we
  // overwrite via validate-by-construction -- here we just rely on the
  // generated two-tone signal's stronger 16-sample component.
  run_functional(cwt);
  // Row energy per scale; the strongest row must be near s* for T = 16:
  // s* = 5 * 16 / (2 pi) ~= 12.7 -> j* = 4 log2(12.7) ~= 14.7.
  const auto& mags = cwt.magnitudes();
  double best_energy = -1.0;
  unsigned best_j = 0;
  for (unsigned j = 0; j < 24; ++j) {
    double e = 0.0;
    for (std::size_t b = 0; b < kN; ++b) {
      e += static_cast<double>(mags[std::size_t{j} * kN + b]) *
           mags[std::size_t{j} * kN + b];
    }
    if (e > best_energy) {
      best_energy = e;
      best_j = j;
    }
  }
  const double expected_j = 4.0 * std::log2(5.0 * 16.0 / (2.0 * M_PI));
  EXPECT_NEAR(static_cast<double>(best_j), expected_j, 2.5);
  (void)kPeriod;
}

TEST(Cwt, ConfigureRejectsDegenerateInput) {
  Cwt cwt;
  EXPECT_THROW(cwt.configure(8), xcl::Error);
  EXPECT_THROW(cwt.configure(256, 0), xcl::Error);
}

TEST(Cwt, ComputeBoundOnGpus) {
  // The all-pairs-style convolution is flop-heavy: GPUs must win by a
  // wide margin at medium size under the device model.
  auto cwt = create_dwarf("cwt");
  cwt->setup(ProblemSize::kMedium);
  auto modeled = [&](const char* device) {
    xcl::Context ctx(sim::testbed_device(device));
    xcl::Queue q(ctx);
    q.set_functional(false);
    cwt->bind(ctx, q);
    q.clear_events();
    cwt->run();
    const double t = q.modeled_kernel_seconds();
    cwt->unbind();
    return t;
  };
  EXPECT_GT(modeled("i7-6700K"), 5.0 * modeled("Titan X"));
}

}  // namespace
}  // namespace eod::dwarfs
