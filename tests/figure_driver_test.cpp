// Tests for the shared figure-regeneration driver (bench/figure_common.hpp):
// size filtering, KNL inclusion, long-table output and validation mode.
#include <gtest/gtest.h>

#include <sstream>

#include "../bench/figure_common.hpp"

namespace eod::bench {
namespace {

int run_capturing(const FigureSpec& spec, std::vector<const char*> argv,
                  std::string* out) {
  argv.insert(argv.begin(), "figure_test");
  testing::internal::CaptureStdout();
  const int rc = run_figure(spec, static_cast<int>(argv.size()),
                            argv.data());
  *out = testing::internal::GetCapturedStdout();
  return rc;
}

FigureSpec crc_spec() {
  FigureSpec spec;
  spec.figure = "Test Figure";
  spec.benchmark = "crc";
  spec.sizes = {dwarfs::ProblemSize::kTiny, dwarfs::ProblemSize::kSmall};
  spec.include_knl = true;
  return spec;
}

TEST(FigureDriver, PanelsForEveryRequestedSize) {
  std::string out;
  const int rc = run_capturing(crc_spec(), {"--samples", "3"}, &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("== crc tiny =="), std::string::npos);
  EXPECT_NE(out.find("== crc small =="), std::string::npos);
  EXPECT_NE(out.find("Xeon Phi 7210"), std::string::npos);  // KNL included
}

TEST(FigureDriver, SizeFlagNarrowsTheSweep) {
  std::string out;
  const int rc = run_capturing(crc_spec(),
                               {"--samples", "3", "--size", "small"}, &out);
  EXPECT_EQ(rc, 0);
  EXPECT_EQ(out.find("== crc tiny =="), std::string::npos);
  EXPECT_NE(out.find("== crc small =="), std::string::npos);
}

TEST(FigureDriver, KnlOmittedWhenSpecSaysSo) {
  FigureSpec spec = crc_spec();
  spec.include_knl = false;
  std::string out;
  run_capturing(spec, {"--samples", "3", "--size", "tiny"}, &out);
  EXPECT_EQ(out.find("Xeon Phi 7210"), std::string::npos);
}

TEST(FigureDriver, LongTableModeEmitsSamples) {
  std::string out;
  const int rc = run_capturing(
      crc_spec(), {"--samples", "2", "--size", "tiny", "--long-table"},
      &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("benchmark device class size sample time_ms"),
            std::string::npos);
  // 15 devices x 2 samples of data rows.
  std::size_t rows = 0;
  std::istringstream in(out);
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("crc ", 0) == 0) ++rows;
  }
  EXPECT_EQ(rows, 30u);
}

TEST(FigureDriver, ValidateModeRunsTheReference) {
  std::string out;
  const int rc = run_capturing(
      crc_spec(), {"--samples", "2", "--size", "tiny", "--validate"}, &out);
  EXPECT_EQ(rc, 0);  // validation passes -> exit 0
}

TEST(FigureDriver, BadArgumentsReportUsage) {
  FigureSpec spec = crc_spec();
  const char* argv[] = {"figure_test", "--size", "nonsense"};
  testing::internal::CaptureStdout();
  testing::internal::CaptureStderr();
  const int rc = run_figure(spec, 3, argv);
  testing::internal::GetCapturedStdout();
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(rc, 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

}  // namespace
}  // namespace eod::bench
