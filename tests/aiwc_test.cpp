// Tests for the AIWC-style workload characterizer (§7 future work).
#include <gtest/gtest.h>

#include <sstream>

#include "aiwc/aiwc.hpp"
#include "dwarfs/registry.hpp"

namespace eod::aiwc {
namespace {

using dwarfs::ProblemSize;

TEST(Aiwc, CharacterizesEveryBenchmark) {
  for (const std::string& name : dwarfs::benchmark_names()) {
    auto dwarf = dwarfs::create_dwarf(name);
    const auto kernels =
        characterize(*dwarf, dwarf->supported_sizes().front());
    ASSERT_FALSE(kernels.empty()) << name;
    for (const KernelCharacteristics& k : kernels) {
      EXPECT_FALSE(k.kernel.empty()) << name;
      EXPECT_GT(k.launches, 0u) << name;
      EXPECT_GT(k.total_ops, 0.0) << name << "/" << k.kernel;
      EXPECT_GE(k.flop_fraction, 0.0);
      EXPECT_LE(k.flop_fraction, 1.0);
      EXPECT_GT(k.work_items, 0.0);
      EXPECT_GE(k.simd_friendliness, 0.0);
      EXPECT_LE(k.simd_friendliness, 1.0);
    }
  }
}

TEST(Aiwc, DistinguishesComputeFromMemoryBound) {
  // gem (N-body, all-pairs flops) must show far higher arithmetic
  // intensity than csr (SpMV gathers).
  auto gem = dwarfs::create_dwarf("gem");
  auto csr = dwarfs::create_dwarf("csr");
  const auto kg = characterize(*gem, ProblemSize::kTiny);
  const auto kc = characterize(*csr, ProblemSize::kTiny);
  ASSERT_FALSE(kg.empty());
  ASSERT_FALSE(kc.empty());
  EXPECT_GT(kg.front().arithmetic_intensity,
            10.0 * kc.front().arithmetic_intensity);
}

TEST(Aiwc, CrcIsIntegerOnly) {
  auto crc = dwarfs::create_dwarf("crc");
  const auto k = characterize(*crc, ProblemSize::kTiny);
  ASSERT_FALSE(k.empty());
  // "the low floating-point intensity of the CRC computation" -- zero here.
  EXPECT_DOUBLE_EQ(k.front().flop_fraction, 0.0);
  EXPECT_GT(k.front().dependency_fraction, 0.0);  // per-byte chain
}

TEST(Aiwc, BarrierKernelsIdentified) {
  auto lud = dwarfs::create_dwarf("lud");
  const auto kernels = characterize(*lud, ProblemSize::kTiny);
  bool saw_diagonal = false;
  bool saw_internal = false;
  for (const auto& k : kernels) {
    if (k.kernel == "lud_diagonal") {
      saw_diagonal = true;
      EXPECT_GT(k.barriers_per_item, 10.0);
    }
    if (k.kernel == "lud_internal") {
      saw_internal = true;
      EXPECT_DOUBLE_EQ(k.barriers_per_item, 2.0);
    }
  }
  EXPECT_TRUE(saw_diagonal);
  EXPECT_TRUE(saw_internal);
}

TEST(Aiwc, DivergenceShowsInSimdFriendliness) {
  auto nq = dwarfs::create_dwarf("nqueens");
  const auto k = characterize(*nq, ProblemSize::kTiny);
  ASSERT_FALSE(k.empty());
  EXPECT_LT(k.front().simd_friendliness, 0.8);  // backtracking diverges
  auto srad = dwarfs::create_dwarf("srad");
  const auto ks = characterize(*srad, ProblemSize::kTiny);
  EXPECT_GT(ks.front().simd_friendliness, 0.95);  // uniform stencil
}

TEST(Aiwc, TraceEntropyOrdersAccessPatterns) {
  // csr's x-vector gathers are high-entropy relative to crc's two
  // sequential streams (data + tiny table).
  auto crc = dwarfs::create_dwarf("crc");
  auto csr = dwarfs::create_dwarf("csr");
  crc->setup(ProblemSize::kSmall);
  csr->setup(ProblemSize::kSmall);
  const TraceEntropy ec = trace_entropy(*crc);
  const TraceEntropy es = trace_entropy(*csr);
  ASSERT_GT(ec.unique_addresses, 0.0);
  ASSERT_GT(es.unique_addresses, 0.0);
  // crc revisits its 1 KiB table constantly: low entropy per access.
  EXPECT_LT(ec.address_entropy_bits, es.address_entropy_bits);
  // Masked entropy must decay monotonically for both.
  double prev = es.address_entropy_bits;
  for (const double h : es.masked_entropy_bits) {
    EXPECT_LE(h, prev + 1e-9);
    prev = h;
  }
}

TEST(Aiwc, NoTraceMeansZeroEntropy) {
  auto nq = dwarfs::create_dwarf("nqueens");  // no trace implementation
  nq->setup(ProblemSize::kTiny);
  const TraceEntropy e = trace_entropy(*nq);
  EXPECT_DOUBLE_EQ(e.unique_addresses, 0.0);
  EXPECT_TRUE(e.masked_entropy_bits.empty());
}

TEST(Aiwc, PrintRendersAllKernels) {
  auto lud = dwarfs::create_dwarf("lud");
  const auto kernels = characterize(*lud, ProblemSize::kTiny);
  std::ostringstream os;
  print_characteristics(os, "lud", kernels);
  for (const auto& k : kernels) {
    EXPECT_NE(os.str().find(k.kernel), std::string::npos);
  }
}

}  // namespace
}  // namespace eod::aiwc
