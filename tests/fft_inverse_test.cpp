// On-device inverse FFT and roundtrip properties.
#include <gtest/gtest.h>

#include "dwarfs/fft/fft.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace eod::dwarfs {
namespace {

void run_on_device(Fft& fft, const char* device) {
  xcl::Context ctx(sim::testbed_device(device));
  xcl::Queue q(ctx);
  fft.bind(ctx, q);
  fft.run();
  fft.finish();
  fft.unbind();
}

TEST(FftInverse, ValidatesAgainstSerialReference) {
  Fft fft;
  fft.configure(1024, FftDirection::kInverse);
  xcl::Context ctx(sim::testbed_device("i7-6700K"));
  xcl::Queue q(ctx);
  fft.bind(ctx, q);
  fft.run();
  fft.finish();
  const Validation v = fft.validate();
  EXPECT_TRUE(v.ok) << v.detail;
  fft.unbind();
}

TEST(FftInverse, RoundTripAgainstGeneratedInput) {
  constexpr std::size_t kN = 4096;
  Fft forward;
  forward.configure(kN, FftDirection::kForward);
  run_on_device(forward, "i7-6700K");

  Fft inverse;
  inverse.configure(kN, FftDirection::kInverse);
  inverse.set_input(forward.output());
  run_on_device(inverse, "GTX 1080");

  // Regenerate the deterministic input the forward transform consumed.
  SplitMix64 rng(0x666674ull);
  std::vector<float> original(2 * kN);
  for (float& v : original) v = rng.uniform(-1.0f, 1.0f);

  const Validation v =
      validate_norm(inverse.output(), original, 1e-4, "ifft(fft(x)) vs x");
  EXPECT_TRUE(v.ok) << v.detail;
}

TEST(FftInverse, SerialReferencesInvertEachOther) {
  std::vector<std::complex<double>> x(256);
  SplitMix64 rng(21);
  for (auto& v : x) v = {rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f)};
  std::vector<std::complex<double>> y = x;
  Fft::reference_fft(y);
  Fft::reference_ifft(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12);
  }
}

TEST(FftInverse, SetInputRejectsWrongSize) {
  Fft fft;
  fft.configure(64);
  std::vector<float> wrong(100, 0.0f);
  EXPECT_THROW(fft.set_input(wrong), xcl::Error);
}

}  // namespace
}  // namespace eod::dwarfs
