// Tests for the fiber scheduler that realises work-group barriers.
#include <gtest/gtest.h>

#include <vector>

#include "xcl/error.hpp"
#include "xcl/fiber.hpp"

namespace eod::xcl {
namespace {

TEST(Fiber, RunsToCompletionWithoutYield) {
  int ran = 0;
  Fiber f([&] { ran = 1; });
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(ran, 1);
}

TEST(Fiber, YieldSuspendsAndResumes) {
  std::vector<int> order;
  Fiber f([&] {
    order.push_back(1);
    Fiber::yield_current();
    order.push_back(3);
  });
  f.resume();
  order.push_back(2);
  EXPECT_FALSE(f.done());
  f.resume();
  EXPECT_TRUE(f.done());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, ExceptionInsideBodyRethrownAtResume) {
  Fiber f([] { throw std::runtime_error("inside fiber"); });
  EXPECT_THROW(f.resume(), std::runtime_error);
  EXPECT_TRUE(f.done());
}

TEST(Fiber, ResumeAfterDoneIsLogicError) {
  Fiber f([] {});
  f.resume();
  EXPECT_THROW(f.resume(), std::logic_error);
}

TEST(Fiber, YieldOutsideFiberIsLogicError) {
  EXPECT_THROW(Fiber::yield_current(), std::logic_error);
}

TEST(FiberGroup, BarrierSemanticsAcrossRounds) {
  // Classic barrier test: phase 1 writes, phase 2 reads a peer's value.
  constexpr std::size_t kN = 16;
  std::vector<int> stage(kN, -1);
  std::vector<int> seen(kN, -1);
  run_fiber_group(kN, [&](std::size_t i) {
    stage[i] = static_cast<int>(i);
    Fiber::yield_current();  // barrier
    seen[i] = stage[(i + 1) % kN];
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(seen[i], static_cast<int>((i + 1) % kN));
  }
}

TEST(FiberGroup, ManyBarrierRounds) {
  constexpr std::size_t kN = 8;
  constexpr int kRounds = 50;
  std::vector<long> acc(kN, 0);
  run_fiber_group(kN, [&](std::size_t i) {
    for (int r = 0; r < kRounds; ++r) {
      acc[i] += r;
      Fiber::yield_current();
    }
  });
  for (const long v : acc) EXPECT_EQ(v, kRounds * (kRounds - 1) / 2);
}

TEST(FiberGroup, DivergentBarrierDetected) {
  // Item 0 performs one fewer barrier than its peers: a kernel bug that
  // deadlocks real OpenCL; here it must be diagnosed.
  EXPECT_THROW(run_fiber_group(4,
                               [&](std::size_t i) {
                                 if (i != 0) Fiber::yield_current();
                               }),
               Error);
}

TEST(FiberGroup, EmptyGroupIsNoop) {
  run_fiber_group(0, [](std::size_t) { FAIL(); });
}

TEST(FiberGroup, SingleItemGroup) {
  int runs = 0;
  run_fiber_group(1, [&](std::size_t) {
    ++runs;
    Fiber::yield_current();
    ++runs;
  });
  EXPECT_EQ(runs, 2);
}

}  // namespace
}  // namespace eod::xcl
