// eod_prof CLI (DESIGN.md §16).  Three subcommands over a run's artifacts:
//   profile   — event-DAG critical path, slack, lane utilization, overlap
//   roofline  — compute/memory-bound placement per (dwarf, device)
//   regress   — BENCH_*.json trajectory gate against a baseline directory
// Exit codes: 0 ok / clean, 1 regression detected, 2 usage / IO error.
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "dwarfs/registry.hpp"
#include "obs/analysis/profile.hpp"
#include "obs/analysis/regress.hpp"
#include "obs/analysis/roofline.hpp"

namespace {

constexpr const char* kUsage =
    "usage: eod_prof <command> [options]\n"
    "\n"
    "commands:\n"
    "  profile   analyze one run's trace: critical path, per-command\n"
    "            slack, makespan attribution, lane utilization, overlap\n"
    "            efficiency\n"
    "    --trace <path>      Chrome trace to analyze\n"
    "    --manifest <path>   run manifest (resolves the trace and the\n"
    "                        device's interconnect peak)\n"
    "    --peak-gbs <x>      override the link-saturation peak\n"
    "    --format text|tsv|json   (default: text)\n"
    "  roofline  place benchmarks on modeled devices' rooflines\n"
    "    --size <s>          tiny|small|medium|large (default: tiny)\n"
    "    --devices <a,b>     Table 1 device names (default: i7-6700K)\n"
    "    --benchmarks <a,b>  benchmarks (default: the whole suite)\n"
    "    --format text|tsv|json   (default: text)\n"
    "  regress   compare BENCH_*.json trees; non-zero on regression\n"
    "    --baseline <dir>    checked-in baseline reports\n"
    "    --current <dir>     freshly produced reports\n"
    "    --wall              also gate wall-clock metrics (machine-bound)\n"
    "    --filter <a,b>      only compare keys containing one of these\n"
    "                        substrings (e.g. \"modeled,gbs\" restricts a\n"
    "                        cross-machine gate to deterministic values)\n"
    "    --value-tolerance <f>  relative drift allowed (default: 0.10)\n"
    "    --wall-tolerance <f>   wall median drift allowed (default: 0.25)\n"
    "    --verdict <path>    write the JSON verdict here even on failure\n"
    "common:\n"
    "  --out <path>          write the report to <path> instead of stdout\n";

struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> options;
  std::vector<std::string> flags;

  [[nodiscard]] std::string option(const std::string& name,
                                   const std::string& fallback = {}) const {
    for (const auto& [k, v] : options) {
      if (k == name) return v;
    }
    return fallback;
  }
  [[nodiscard]] bool flag(const std::string& name) const {
    for (const std::string& f : flags) {
      if (f == name) return true;
    }
    return false;
  }
};

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      args.positional.push_back(arg);
      continue;
    }
    const std::string name = arg.substr(2);
    if (name == "wall") {
      args.flags.push_back(name);
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "eod_prof: --" << name << " needs a value\n";
      return false;
    }
    args.options.emplace_back(name, argv[++i]);
  }
  return true;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int emit(const Args& args, const std::string& report) {
  const std::string out_path = args.option("out");
  if (out_path.empty()) {
    std::cout << report;
    return 0;
  }
  std::ofstream f(out_path, std::ios::trunc);
  if (!f) {
    std::cerr << "eod_prof: cannot write " << out_path << "\n";
    return 2;
  }
  f << report;
  return f.good() ? 0 : 2;
}

int run_profile(const Args& args) {
  eod::prof::ProfileInputs inputs;
  inputs.trace_path = args.option("trace");
  inputs.manifest_path = args.option("manifest");
  if (const std::string peak = args.option("peak-gbs"); !peak.empty()) {
    inputs.transfer_peak_gbs = std::stod(peak);
  }
  if (inputs.trace_path.empty() && inputs.manifest_path.empty()) {
    std::cerr << "eod_prof profile: need --trace or --manifest\n";
    return 2;
  }
  const eod::prof::ProfileReport report = eod::prof::profile_run(inputs);
  const std::string format = args.option("format", "text");
  if (format == "tsv") return emit(args, report.schedule.to_tsv());
  if (format == "json") return emit(args, report.to_json());
  return emit(args, report.to_text());
}

int run_roofline(const Args& args) {
  const std::string size_name = args.option("size", "tiny");
  const auto size = eod::dwarfs::parse_problem_size(size_name);
  if (!size.has_value()) {
    std::cerr << "eod_prof roofline: unknown size '" << size_name << "'\n";
    return 2;
  }
  std::vector<std::string> devices =
      split_list(args.option("devices", "i7-6700K"));
  std::vector<std::string> benchmarks =
      split_list(args.option("benchmarks"));
  if (benchmarks.empty()) {
    benchmarks = eod::dwarfs::benchmark_names();
    for (const std::string& e : eod::dwarfs::extension_names()) {
      benchmarks.push_back(e);
    }
  }
  const eod::prof::RooflineReport report =
      eod::prof::roofline(benchmarks, *size, devices);
  const std::string format = args.option("format", "text");
  if (format == "tsv") return emit(args, report.to_tsv());
  if (format == "json") return emit(args, report.to_json());
  return emit(args, report.to_text());
}

int run_regress(const Args& args) {
  const std::string baseline = args.option("baseline");
  const std::string current = args.option("current");
  if (baseline.empty() || current.empty()) {
    std::cerr << "eod_prof regress: need --baseline and --current\n";
    return 2;
  }
  eod::prof::RegressOptions options;
  options.include_wall = args.flag("wall");
  options.key_filter = args.option("filter");
  if (const std::string t = args.option("value-tolerance"); !t.empty()) {
    options.value_tolerance = std::stod(t);
  }
  if (const std::string t = args.option("wall-tolerance"); !t.empty()) {
    options.wall_tolerance = std::stod(t);
  }
  const eod::prof::RegressVerdict verdict =
      eod::prof::compare_trajectory(baseline, current, options);
  // The verdict file is written before the exit status is decided so CI
  // can upload it even when the gate goes red.
  if (const std::string path = args.option("verdict"); !path.empty()) {
    std::ofstream f(path, std::ios::trunc);
    if (!f) {
      std::cerr << "eod_prof: cannot write " << path << "\n";
      return 2;
    }
    f << verdict.to_json();
  }
  const int status = emit(args, verdict.to_text());
  if (status != 0) return status;
  return verdict.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return 2;
  if (args.positional.empty()) {
    std::cerr << kUsage;
    return 2;
  }
  const std::string& command = args.positional.front();
  try {
    if (command == "profile") return run_profile(args);
    if (command == "roofline") return run_roofline(args);
    if (command == "regress") return run_regress(args);
  } catch (const std::exception& e) {
    std::cerr << "eod_prof " << command << ": " << e.what() << "\n";
    return 2;
  }
  std::cerr << "eod_prof: unknown command '" << command << "'\n"
            << kUsage;
  return 2;
}
