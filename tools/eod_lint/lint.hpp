// eod_lint: repo-specific static analysis for the extended-OpenDwarfs tree
// (DESIGN.md §15).  Five rule families over the lexer in lexer.hpp:
//
//   R1 event-deps    — in dependency-expressed (ooo-converted) translation
//                      units, every Queue enqueue_*/submit call must pass an
//                      explicit wait list or carry `// lint: no-deps(reason)`.
//   R2 memory-order  — std::memory_order_relaxed is legal only under
//                      src/obs/ or with `// lint: relaxed-ok(reason)`; every
//                      compare_exchange names both success and failure
//                      orders.
//   R3 hot-alloc     — raw new/malloc and container growth are banned in the
//                      executor/thread_pool/queue/fiber TUs outside the
//                      arena layer, unless `// lint: alloc-ok(reason)`.
//   R4 layering      — the quoted-#include graph must be acyclic and every
//                      cross-module edge must appear in the checked-in
//                      allowed-edges matrix (layering.tsv).
//   R5 obs-contract  — no discarded TraceSpan temporaries; raw
//                      emit_complete* outside src/obs/ needs
//                      `// lint: raw-span-ok(reason)`; a Buffer's access<T>
//                      labels must agree with each other and with named().
//
// The report mirrors xcl::check::CheckReport: severity-ranked findings with
// text, TSV, and JSON renderings, plus a baseline-suppression file keyed by
// (rule, path, content-hash) so historical findings can be grandfathered
// without pinning line numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"

namespace eod::lint {

enum class Severity : std::uint8_t { kError, kWarning };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// Stable rule identifiers (the `--rules` selector and TSV/JSON `rule`
/// column).  kAnnotation covers the meta-rules that keep suppressions
/// honest: empty reasons and annotations that no longer suppress anything.
enum class Rule : std::uint8_t {
  kEventDeps,    // R1
  kMemoryOrder,  // R2
  kHotAlloc,     // R3
  kLayering,     // R4
  kObsContract,  // R5
  kAnnotation,   // meta: malformed / stale annotations
};

[[nodiscard]] const char* to_string(Rule r) noexcept;

struct Finding {
  Rule rule = Rule::kEventDeps;
  Severity severity = Severity::kError;
  std::string path;     ///< repo-relative
  std::size_t line = 0;
  std::string detail;   ///< one-line human-readable description
  std::string snippet;  ///< trimmed source line (context, and baseline key)
};

/// FNV-1a over the whitespace-trimmed snippet: the baseline key component
/// that survives unrelated line-number drift.
[[nodiscard]] std::uint64_t snippet_hash(std::string_view snippet) noexcept;

class LintReport {
 public:
  void add(Finding f);

  /// Findings sorted by severity (errors first), then rule, path, line.
  [[nodiscard]] const std::vector<Finding>& findings() const;

  [[nodiscard]] bool clean() const noexcept { return findings_.empty(); }
  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;

  [[nodiscard]] std::string to_text() const;
  /// Header row, then one row per finding: severity, rule, path, line,
  /// snippet-hash, detail (tabs in fields collapsed to spaces).
  [[nodiscard]] std::string to_tsv() const;
  [[nodiscard]] std::string to_json() const;

  /// Drops findings matching `rule<TAB>path<TAB>hash` baseline entries
  /// (each entry suppresses any number of same-keyed findings).  Returns
  /// the number suppressed.
  std::size_t apply_baseline(const std::set<std::string>& keys);
  /// Renders the baseline that would suppress every current finding.
  [[nodiscard]] std::string to_baseline() const;

 private:
  void rank() const;
  mutable std::vector<Finding> findings_;
  mutable bool ranked_ = true;
};

/// The allowed-edges matrix of R4: module -> modules it may include from.
/// Self-edges are implicit.  Parsed from layering.tsv (`module<TAB>dep,dep`
/// rows, `#` comments) or defaulted to the tree's architecture.
struct LayeringMatrix {
  std::map<std::string, std::set<std::string>> allowed;
  [[nodiscard]] static LayeringMatrix builtin_default();
  [[nodiscard]] static LayeringMatrix parse(std::string_view tsv,
                                            std::string* error);
};

struct LintConfig {
  LayeringMatrix layering = LayeringMatrix::builtin_default();
  std::set<Rule> enabled = {Rule::kEventDeps, Rule::kMemoryOrder,
                            Rule::kHotAlloc,  Rule::kLayering,
                            Rule::kObsContract, Rule::kAnnotation};
};

/// Lints one in-memory translation unit (rules R1–R3, R5, annotation
/// hygiene; R4 needs the whole tree).  `path` must be repo-relative with
/// forward slashes — rule scoping keys off it.
void lint_source(const std::string& path, std::string_view source,
                 const LintConfig& cfg, LintReport& report);

/// R4 over a set of files: `files` maps repo-relative path -> its lexed
/// quoted-include targets (as written, i.e. relative to src/).
void lint_layering(
    const std::map<std::string, std::vector<IncludeDirective>>& files,
    const LintConfig& cfg, LintReport& report);

/// Walks root/{src,apps,bench,tests,tools}/**.{cpp,hpp,h}, runs every
/// enabled rule (R4 across the whole set), and fills `report`.  Returns
/// false (with `error` set) when the root cannot be read.
bool lint_tree(const std::string& root, const LintConfig& cfg,
               LintReport& report, std::string* error,
               std::size_t* files_scanned = nullptr);

/// Loads `rule<TAB>path<TAB>hash` baseline keys; '#' comments and blank
/// lines ignored.
[[nodiscard]] std::set<std::string> parse_baseline(std::string_view text);

}  // namespace eod::lint
