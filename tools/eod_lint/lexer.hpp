// A lightweight C++ lexer for eod_lint (DESIGN.md §15).  Not a compiler
// front-end: it produces the token stream the repo's invariant rules need —
// identifiers, punctuation, literals — with three properties a plain grep
// cannot give:
//   * comment/string/char/raw-string awareness: `// new std::function` or
//     "enqueue(" inside a string literal never reaches a rule;
//   * line-accurate `// lint: tag(reason)` annotation capture, attached to
//     the annotated code line (same line, or a standalone comment line
//     annotates the next code line);
//   * preprocessor tracking: `#include` targets are captured per file, the
//     conditional stack is maintained, and tokens inside a literal `#if 0`
//     block are dropped (dead code cannot violate a runtime invariant).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace eod::lint {

enum class TokKind : unsigned char {
  kIdent,    ///< identifiers and keywords (`new`, `enqueue_write`, …)
  kNumber,   ///< numeric literal (pp-number: 0x1f, 1.0e-3, …)
  kString,   ///< string literal, raw strings included; text excludes quotes
  kChar,     ///< character literal
  kPunct,    ///< one punctuation character (`(`, `<`, `;`, …)
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string_view text;  ///< view into the lexed source buffer
  std::size_t line = 0;   ///< 1-based
};

/// One `// lint: tag(reason)` suppression parsed from a comment.
struct Annotation {
  std::string tag;     ///< e.g. "no-deps", "relaxed-ok"
  std::string reason;  ///< the mandatory justification text
  std::size_t line = 0;  ///< code line the annotation applies to
  bool empty_reason = false;  ///< `tag()` — reported as a finding
};

/// One `#include` directive.
struct IncludeDirective {
  std::string target;  ///< path between the delimiters
  bool angled = false;  ///< <system> vs "repo"
  std::size_t line = 0;
};

/// Result of lexing one translation unit.
struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Annotation> annotations;   ///< sorted by line
  std::vector<IncludeDirective> includes;
  std::vector<std::string> raw_lines;    ///< for finding snippets
  std::size_t skipped_pp_lines = 0;      ///< lines dropped inside `#if 0`
};

/// Lexes `source`.  Never fails: unterminated constructs are closed at EOF
/// (the compiler, not the linter, owns diagnosing them).
[[nodiscard]] LexedFile lex(std::string_view source);

/// True when an annotation with `tag` covers `line` — i.e. one was written
/// on that line or as a standalone comment on the line directly above.
[[nodiscard]] bool has_annotation(const LexedFile& f, std::string_view tag,
                                  std::size_t line);

/// The annotation covering (tag, line), or nullptr.
[[nodiscard]] const Annotation* find_annotation(const LexedFile& f,
                                                std::string_view tag,
                                                std::size_t line);

}  // namespace eod::lint
