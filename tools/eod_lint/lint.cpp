#include "lint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <sstream>

namespace eod::lint {
namespace {

// ---------------------------------------------------------------- helpers

[[nodiscard]] bool starts_with(std::string_view s, std::string_view p) {
  return s.size() >= p.size() && s.substr(0, p.size()) == p;
}

[[nodiscard]] std::string trim_copy(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return std::string(s);
}

[[nodiscard]] std::string sanitize_field(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

[[nodiscard]] std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

[[nodiscard]] std::string hash_hex(std::uint64_t h) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

// Per-file rule context: the lexed TU plus bookkeeping that keeps
// annotations honest (every suppression must suppress something).
struct FileCtx {
  const std::string& path;
  const LexedFile& lx;
  const LintConfig& cfg;
  LintReport& report;
  std::vector<bool> annotation_used;  // parallel to lx.annotations

  [[nodiscard]] std::string snippet(std::size_t line) const {
    return line >= 1 && line <= lx.raw_lines.size()
               ? trim_copy(lx.raw_lines[line - 1])
               : std::string();
  }

  void add(Rule rule, Severity sev, std::size_t line, std::string detail) {
    report.add({rule, sev, path, line, std::move(detail), snippet(line)});
  }

  /// Consumes an annotation covering `line`; marks it used so the stale
  /// check stays quiet.
  bool consume(std::string_view tag, std::size_t line) {
    for (std::size_t i = 0; i < lx.annotations.size(); ++i) {
      const Annotation& a = lx.annotations[i];
      if (a.line == line && a.tag == tag) {
        annotation_used[i] = true;
        return true;
      }
    }
    return false;
  }
};

// Skips a balanced `<...>` template-argument list starting at tokens[i]
// (which must be '<').  Returns the index one past the closing '>', or
// `i` unchanged when the construct does not look like template arguments.
[[nodiscard]] std::size_t skip_template_args(const std::vector<Token>& t,
                                             std::size_t i) {
  std::size_t depth = 0;
  for (std::size_t j = i; j < t.size() && j < i + 64; ++j) {
    if (t[j].kind != TokKind::kPunct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == ">") {
      if (--depth == 0) return j + 1;
    }
    if (t[j].text == ";" || t[j].text == "{") break;
  }
  return i;
}

/// One parsed call expression: `recv.name<T>(args)`.
struct Call {
  std::size_t name_idx = 0;   ///< token index of the callee identifier
  std::size_t line = 0;
  std::size_t argc = 0;       ///< top-level argument count
  std::size_t open = 0;       ///< token index of '('
  std::size_t close = 0;      ///< token index of ')'
  bool member_call = false;   ///< preceded by '.' or '->'
  std::vector<std::pair<std::size_t, std::size_t>> args;  ///< [begin,end)
};

// Parses the call whose callee identifier is tokens[i]; returns false when
// tokens[i] is not followed by (template-args and) a '(' — i.e. not a call.
[[nodiscard]] bool parse_call(const std::vector<Token>& t, std::size_t i,
                              Call& out) {
  std::size_t j = i + 1;
  if (j < t.size() && t[j].kind == TokKind::kPunct && t[j].text == "<") {
    const std::size_t after = skip_template_args(t, j);
    if (after == j) return false;
    j = after;
  }
  if (j >= t.size() || t[j].kind != TokKind::kPunct || t[j].text != "(") {
    return false;
  }
  out.name_idx = i;
  out.line = t[i].line;
  out.open = j;
  out.member_call =
      i >= 2 && t[i - 1].kind == TokKind::kPunct &&
      (t[i - 1].text == "." ||
       (t[i - 1].text == ">" && t[i - 2].kind == TokKind::kPunct &&
        t[i - 2].text == "-"));
  // Balanced scan counting top-level commas.  Template angle brackets are
  // not tracked inside argument lists; the repo's call sites do not place
  // top-level commas inside angle brackets (the linter's documented limit).
  std::size_t depth = 0;
  std::size_t arg_begin = j + 1;
  bool any_tokens = false;
  for (std::size_t k = j; k < t.size(); ++k) {
    if (t[k].kind != TokKind::kPunct) {
      if (k > j) any_tokens = true;
      continue;
    }
    const char c = t[k].text[0];
    if (c == '(' || c == '[' || c == '{') {
      ++depth;
      if (k > j) any_tokens = true;
    } else if (c == ')' || c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        if (any_tokens) {
          out.args.emplace_back(arg_begin, k);
          ++out.argc;
        }
        out.close = k;
        return true;
      }
      any_tokens = true;
    } else if (c == ',' && depth == 1) {
      out.args.emplace_back(arg_begin, k);
      ++out.argc;
      arg_begin = k + 1;
      any_tokens = false;
    } else if (k > j) {
      any_tokens = true;
    }
  }
  return false;  // unbalanced at EOF
}

// ------------------------------------------------------------- R1 deps

// Minimum argument count at which each Queue entry point carries an
// explicit wait list (derived from the overload set in xcl/queue.hpp).
struct EnqueueSig {
  std::string_view name;
  std::size_t wait_argc;
};
constexpr EnqueueSig kEnqueueSigs[] = {
    {"enqueue", 4},           {"enqueue_write", 3}, {"enqueue_read", 3},
    {"enqueue_fill", 3},      {"enqueue_copy", 3},  {"enqueue_peer_copy", 6},
    {"submit", 3},
};

[[nodiscard]] const EnqueueSig* enqueue_sig(std::string_view name) {
  for (const EnqueueSig& s : kEnqueueSigs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

[[nodiscard]] bool rule1_in_scope(std::string_view path) {
  return starts_with(path, "src/dwarfs/") || starts_with(path, "src/harness/");
}

void check_event_deps(FileCtx& ctx) {
  if (!rule1_in_scope(ctx.path)) return;
  const std::vector<Token>& t = ctx.lx.tokens;
  struct Site {
    Call call;
    bool has_wait;
  };
  std::vector<Site> sites;
  bool any_wait = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const EnqueueSig* sig = enqueue_sig(t[i].text);
    if (sig == nullptr) continue;
    Call c;
    if (!parse_call(t, i, c) || !c.member_call) continue;
    bool has_wait = c.argc >= sig->wait_argc;
    // A literal `nullptr` in the wait-list position (the internal submit
    // path) is the no-dependency spelling, not an explicit list.
    if (has_wait) {
      for (const auto& [b, e] : c.args) {
        if (e - b == 1 && t[b].text == "nullptr") has_wait = false;
      }
    }
    sites.push_back({c, has_wait});
    any_wait = any_wait || has_wait;
  }
  // Self-scoping: a TU that never expresses a dependency is an in-order
  // dwarf and exempt; once one call carries a wait list, the whole TU is
  // ooo-converted and every site must be dependency-explicit.
  if (!any_wait) return;
  for (const Site& s : sites) {
    if (s.has_wait) continue;
    if (ctx.consume("no-deps", s.call.line)) continue;
    ctx.add(Rule::kEventDeps, Severity::kError, s.call.line,
            "ooo-converted TU: '" + std::string(t[s.call.name_idx].text) +
                "' call passes no wait list and has no "
                "`lint: no-deps(reason)` annotation");
  }
}

// ------------------------------------------------------- R2 memory order

void check_memory_order(FileCtx& ctx) {
  const std::vector<Token>& t = ctx.lx.tokens;
  // src/obs/analysis is the prof layer, not the lock-free recorder: it gets
  // no blanket exemption from the relaxed-ordering annotation requirement.
  const bool obs_layer = starts_with(ctx.path, "src/obs/") &&
                         !starts_with(ctx.path, "src/obs/analysis/");
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    if (t[i].text == "memory_order_relaxed" && !obs_layer) {
      if (!ctx.consume("relaxed-ok", t[i].line)) {
        ctx.add(Rule::kMemoryOrder, Severity::kError, t[i].line,
                "memory_order_relaxed outside src/obs/ without "
                "`lint: relaxed-ok(reason)` annotation");
      }
    }
    if (t[i].text == "compare_exchange_weak" ||
        t[i].text == "compare_exchange_strong") {
      Call c;
      if (!parse_call(t, i, c)) continue;
      std::size_t orders = 0;
      for (const auto& [b, e] : c.args) {
        for (std::size_t k = b; k < e; ++k) {
          if (t[k].kind == TokKind::kIdent &&
              starts_with(t[k].text, "memory_order")) {
            ++orders;
            break;
          }
        }
      }
      if (orders != 0 && orders != 2) {
        ctx.add(Rule::kMemoryOrder, Severity::kError, c.line,
                std::string(t[i].text) +
                    " must name both the success and the failure order "
                    "(got " + std::to_string(orders) + ")");
      }
    }
  }
}

// --------------------------------------------------------- R3 hot alloc

[[nodiscard]] bool rule3_in_scope(std::string_view path) {
  if (!starts_with(path, "src/xcl/")) return false;
  const std::size_t slash = path.find_last_of('/');
  std::string_view base = path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  base = base.substr(0, dot);
  return base == "executor" || base == "thread_pool" || base == "queue" ||
         base == "fiber";
}

void check_hot_alloc(FileCtx& ctx) {
  if (!rule3_in_scope(ctx.path)) return;
  const std::vector<Token>& t = ctx.lx.tokens;
  constexpr std::string_view kGrowth[] = {
      "push_back", "emplace_back", "resize", "reserve", "insert", "emplace"};
  constexpr std::string_view kAllocFns[] = {
      "malloc", "calloc", "realloc", "aligned_alloc", "posix_memalign",
      "make_unique", "make_shared"};
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string_view w = t[i].text;
    std::string what;
    if (w == "new") {
      // `operator new` declarations and `new`-expressions alike are raw
      // heap traffic in these TUs.
      what = "raw `new` expression";
    } else if (std::find(std::begin(kAllocFns), std::end(kAllocFns), w) !=
               std::end(kAllocFns)) {
      Call c;
      if (!parse_call(t, i, c)) continue;
      what = "heap allocation call `" + std::string(w) + "`";
    } else if (std::find(std::begin(kGrowth), std::end(kGrowth), w) !=
               std::end(kGrowth)) {
      Call c;
      if (!parse_call(t, i, c) || !c.member_call) continue;
      what = "container growth call `" + std::string(w) + "`";
    } else {
      continue;
    }
    if (ctx.consume("alloc-ok", t[i].line)) continue;
    const Severity sev =
        what.front() == 'c' ? Severity::kWarning : Severity::kError;
    ctx.add(Rule::kHotAlloc, sev, t[i].line,
            what + " in hot-path TU without `lint: alloc-ok(reason)` "
                   "annotation (arena layer excepted)");
  }
}

// -------------------------------------------------------- R5 obs contract

void check_obs_contract(FileCtx& ctx) {
  const std::vector<Token>& t = ctx.lx.tokens;
  // The recorder implementation may use its own primitives freely; the
  // analysis layer underneath src/obs/analysis/ is an ordinary consumer.
  const bool obs_layer = starts_with(ctx.path, "src/obs/") &&
                         !starts_with(ctx.path, "src/obs/analysis/");

  // R5a: a TraceSpan temporary destroyed at the end of its own statement
  // measures ~nothing — it must be bound to a named local.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent || t[i].text != "TraceSpan") continue;
    std::size_t j = i + 1;
    if (j >= t.size() || t[j].kind != TokKind::kPunct ||
        (t[j].text != "(" && t[j].text != "{")) {
      continue;  // declaration with a name, using-decl, etc.
    }
    // Walk back over the qualified-id prefix (`eod` `::` `obs` `::`).
    std::size_t first = i;
    while (first >= 2 && t[first - 1].kind == TokKind::kPunct &&
           t[first - 1].text == ":" && t[first - 2].text == ":") {
      if (first >= 3 && t[first - 3].kind == TokKind::kIdent) {
        first -= 3;
      } else {
        first -= 2;
        break;
      }
    }
    const bool stmt_initial =
        first == 0 ||
        (t[first - 1].kind == TokKind::kPunct &&
         (t[first - 1].text == ";" || t[first - 1].text == "{" ||
          t[first - 1].text == "}"));
    if (!stmt_initial) continue;
    Call c;
    const bool braced = t[j].text == "{";
    std::size_t close = 0;
    if (braced) {
      std::size_t depth = 0;
      for (std::size_t k = j; k < t.size(); ++k) {
        if (t[k].kind != TokKind::kPunct) continue;
        if (t[k].text == "{") ++depth;
        if (t[k].text == "}" && --depth == 0) {
          close = k;
          break;
        }
      }
    } else if (parse_call(t, i, c)) {
      close = c.close;
    }
    if (close == 0 || close + 1 >= t.size()) continue;
    if (t[close + 1].kind == TokKind::kPunct && t[close + 1].text == ";") {
      ctx.add(Rule::kObsContract, Severity::kError, t[i].line,
              "TraceSpan temporary is destroyed at the end of the "
              "statement (span records ~zero duration); bind it to a "
              "named local");
    }
  }

  // R5a': raw complete-span emission outside the obs layer bypasses the
  // RAII pairing guarantee; allowed only with an explicit justification.
  if (!obs_layer) {
    constexpr std::string_view kRawEmit[] = {"emit_complete",
                                             "emit_complete_arg",
                                             "emit_complete_on"};
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      if (std::find(std::begin(kRawEmit), std::end(kRawEmit), t[i].text) ==
          std::end(kRawEmit)) {
        continue;
      }
      Call c;
      if (!parse_call(t, i, c)) continue;
      if (ctx.consume("raw-span-ok", c.line)) continue;
      ctx.add(Rule::kObsContract, Severity::kWarning, c.line,
              "raw " + std::string(t[i].text) +
                  "() outside src/obs/ bypasses TraceSpan RAII pairing; "
                  "annotate `lint: raw-span-ok(reason)` or use TraceSpan");
    }
  }

  // R5b: Buffer::access<T>("label") / Buffer::named("label") consistency
  // per receiver identifier per TU — the labels feed check::CheckReport
  // and trace transfer names, so a mismatch mislabels findings.
  struct Labels {
    std::string named;
    std::size_t named_line = 0;
    std::map<std::string, std::size_t> access;  // label -> first line
  };
  // Member buffers (trailing-underscore receivers) are one object per
  // class, so their labels must agree TU-wide; plain locals named `buf` in
  // two different functions are unrelated objects, so those group per
  // lexical region.  A region is one top-level block (function, class) at
  // namespace scope: namespace braces nest transparently.
  std::map<std::string, Labels> per_recv;
  std::size_t region = 0;
  std::vector<bool> block_is_ns;
  const auto opens_namespace = [&](std::size_t brace) {
    // Walk back over the `id [:: id]*` chain of `namespace a::b::c {`;
    // true when the chain is headed by the `namespace` keyword.
    for (std::size_t back = 1; back <= brace; ++back) {
      const Token& p = t[brace - back];
      if (p.kind == TokKind::kIdent) {
        if (p.text == "namespace") return true;
        continue;
      }
      if (p.kind == TokKind::kPunct && p.text == ":") continue;
      break;
    }
    return false;
  };
  for (std::size_t i = 2; i < t.size(); ++i) {
    if (t[i].kind == TokKind::kPunct) {
      if (t[i].text == "{") {
        block_is_ns.push_back(opens_namespace(i));
      } else if (t[i].text == "}" && !block_is_ns.empty()) {
        const bool was_ns = block_is_ns.back();
        block_is_ns.pop_back();
        if (!was_ns &&
            std::all_of(block_is_ns.begin(), block_is_ns.end(),
                        [](bool ns) { return ns; })) {
          ++region;
        }
      }
    }
    if (t[i].kind != TokKind::kIdent ||
        (t[i].text != "access" && t[i].text != "named")) {
      continue;
    }
    const bool member =
        t[i - 1].kind == TokKind::kPunct &&
        (t[i - 1].text == "." ||
         (t[i - 1].text == ">" && t[i - 2].text == "-"));
    if (!member) continue;
    // Receiver identifier: the token before '.' / '->'.
    const std::size_t recv_idx = t[i - 1].text == "." ? i - 2 : i - 3;
    if (recv_idx >= t.size() || t[recv_idx].kind != TokKind::kIdent) {
      continue;  // complex receiver expression — out of lexical reach
    }
    Call c;
    if (!parse_call(t, i, c) || c.argc != 1) continue;
    const auto& [b, e] = c.args[0];
    if (e - b != 1 || t[b].kind != TokKind::kString) continue;
    std::string recv(t[recv_idx].text);
    const std::string label(t[b].text);
    if (recv.back() != '_') {
      recv += '#' + std::to_string(region);
    }
    Labels& L = per_recv[recv];
    if (t[i].text == "named") {
      L.named = label;
      L.named_line = c.line;
    } else {
      L.access.emplace(label, c.line);
    }
  }
  for (const auto& [key, L] : per_recv) {
    const std::string recv = key.substr(0, key.find('#'));
    std::vector<std::pair<std::size_t, std::string>> by_line;
    by_line.reserve(L.access.size());
    for (const auto& [label, line] : L.access) {
      by_line.emplace_back(line, label);
    }
    std::sort(by_line.begin(), by_line.end());
    std::string first_label;
    std::size_t first_line = 0;
    for (const auto& [line, label] : by_line) {
      if (first_label.empty()) {
        first_label = label;
        first_line = line;
        continue;
      }
      if (ctx.consume("label-ok", line)) continue;
      ctx.add(Rule::kObsContract, Severity::kError, line,
              "buffer '" + recv + "' accessed under conflicting labels \"" +
                  first_label + "\" (line " + std::to_string(first_line) +
                  ") vs \"" + label + "\"");
    }
    if (!L.named.empty() && !first_label.empty() && first_label != L.named &&
        L.access.size() == 1) {
      const std::size_t line = L.access.begin()->second;
      if (!ctx.consume("label-ok", line)) {
        ctx.add(Rule::kObsContract, Severity::kError, line,
                "buffer '" + recv + "' access label \"" + first_label +
                    "\" disagrees with named(\"" + L.named + "\") at line " +
                    std::to_string(L.named_line));
      }
    }
  }
}

// --------------------------------------------------- annotation hygiene

constexpr std::string_view kKnownTags[] = {"no-deps", "relaxed-ok",
                                           "alloc-ok", "raw-span-ok",
                                           "label-ok"};

[[nodiscard]] bool tag_rule_enabled(const LintConfig& cfg,
                                    std::string_view tag) {
  const auto on = [&](Rule r) { return cfg.enabled.count(r) != 0; };
  if (tag == "no-deps") return on(Rule::kEventDeps);
  if (tag == "relaxed-ok") return on(Rule::kMemoryOrder);
  if (tag == "alloc-ok") return on(Rule::kHotAlloc);
  return on(Rule::kObsContract);
}

void check_annotations(FileCtx& ctx) {
  for (std::size_t i = 0; i < ctx.lx.annotations.size(); ++i) {
    const Annotation& a = ctx.lx.annotations[i];
    const bool known =
        std::find(std::begin(kKnownTags), std::end(kKnownTags), a.tag) !=
        std::end(kKnownTags);
    if (!known) {
      ctx.add(Rule::kAnnotation, Severity::kWarning, a.line,
              "unknown lint annotation tag `" + a.tag + "`");
      continue;
    }
    if (a.empty_reason) {
      ctx.add(Rule::kAnnotation, Severity::kError, a.line,
              "lint annotation `" + a.tag +
                  "` must carry a non-empty (reason)");
      continue;
    }
    if (!ctx.annotation_used[i] && tag_rule_enabled(ctx.cfg, a.tag)) {
      ctx.add(Rule::kAnnotation, Severity::kWarning, a.line,
              "stale annotation: `" + a.tag +
                  "` suppresses nothing on this line");
    }
  }
}

// ------------------------------------------------------------ R4 layering

[[nodiscard]] std::string module_of(std::string_view path) {
  // src/obs/analysis plus the eod_prof CLI form the `prof` layer: offline
  // analysis of recorded artifacts, above aiwc/sim but below harness.
  if (starts_with(path, "src/obs/analysis/") ||
      starts_with(path, "tools/eod_prof/")) {
    return "prof";
  }
  if (starts_with(path, "src/")) {
    const std::string_view rest = path.substr(4);
    return std::string(rest.substr(0, rest.find('/')));
  }
  return std::string(path.substr(0, path.find('/')));
}

}  // namespace

// Public so lint_tree and the self-tests share one R4 implementation.
void lint_layering(
    const std::map<std::string, std::vector<IncludeDirective>>& files,
    const LintConfig& cfg, LintReport& report) {
  if (cfg.enabled.count(Rule::kLayering) == 0) return;
  // Resolve each quoted include to a scanned repo file where possible:
  // as written it is src/-relative ("xcl/queue.hpp"); otherwise try the
  // including file's own directory ("app_common.hpp") or the repo root
  // ("bench/bench_json.hpp").
  std::map<std::string, std::vector<std::string>> graph;  // file -> files
  for (const auto& [path, incs] : files) {
    const std::string mod = module_of(path);
    const auto mod_allowed = cfg.layering.allowed.find(mod);
    if (mod_allowed == cfg.layering.allowed.end()) {
      report.add({Rule::kLayering, Severity::kError, path, 1,
                  "module '" + mod +
                      "' is missing from the layering matrix (layering.tsv)",
                  ""});
      continue;
    }
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string() : path.substr(0, slash);
    for (const IncludeDirective& inc : incs) {
      if (inc.angled) continue;  // system headers are out of scope
      std::string resolved;
      for (const std::string& cand :
           {"src/" + inc.target, dir + "/" + inc.target, inc.target}) {
        if (files.count(cand) != 0) {
          resolved = cand;
          break;
        }
      }
      if (resolved.empty()) continue;  // generated / external quoted include
      graph[path].push_back(resolved);
      const std::string to = module_of(resolved);
      if (to != mod && mod_allowed->second.count(to) == 0) {
        report.add({Rule::kLayering, Severity::kError, path, inc.line,
                    "forbidden layering edge: module '" + mod +
                        "' must not include '" + to + "' (\"" + inc.target +
                        "\"); see tools/eod_lint/layering.tsv",
                    "#include \"" + inc.target + "\""});
      }
    }
  }
  // File-level include-cycle detection (DFS, three colours).  Include
  // guards make cycles compilable-by-accident; structurally they are still
  // a layering defect.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  // Iterative DFS with an explicit stack of (node, next-child) frames.
  for (const auto& [start, _] : graph) {
    if (colour[start] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> frames;
    frames.emplace_back(start, 0);
    colour[start] = 1;
    stack.push_back(start);
    while (!frames.empty()) {
      auto& [node, next] = frames.back();
      const auto it = graph.find(node);
      if (it == graph.end() || next >= it->second.size()) {
        colour[node] = 2;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string child = it->second[next++];
      if (colour[child] == 1) {
        std::string cycle = child;
        for (auto r = std::find(stack.begin(), stack.end(), child);
             r != stack.end(); ++r) {
          if (*r != child) cycle += " -> " + *r;
        }
        cycle += " -> " + child;
        report.add({Rule::kLayering, Severity::kError, child, 1,
                    "#include cycle: " + cycle, ""});
        continue;
      }
      if (colour[child] == 0) {
        colour[child] = 1;
        stack.push_back(child);
        frames.emplace_back(child, 0);
      }
    }
  }
}

// ----------------------------------------------------------- public API

const char* to_string(Severity s) noexcept {
  return s == Severity::kError ? "error" : "warning";
}

const char* to_string(Rule r) noexcept {
  switch (r) {
    case Rule::kEventDeps: return "event-deps";
    case Rule::kMemoryOrder: return "memory-order";
    case Rule::kHotAlloc: return "hot-alloc";
    case Rule::kLayering: return "layering";
    case Rule::kObsContract: return "obs-contract";
    case Rule::kAnnotation: return "annotation";
  }
  return "?";
}

std::uint64_t snippet_hash(std::string_view snippet) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : snippet) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

void LintReport::add(Finding f) {
  findings_.push_back(std::move(f));
  ranked_ = false;
}

void LintReport::rank() const {
  if (ranked_) return;
  std::stable_sort(findings_.begin(), findings_.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.severity != b.severity) {
                       return a.severity < b.severity;
                     }
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.path != b.path) return a.path < b.path;
                     return a.line < b.line;
                   });
  ranked_ = true;
}

const std::vector<Finding>& LintReport::findings() const {
  rank();
  return findings_;
}

std::size_t LintReport::error_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(findings_.begin(), findings_.end(), [](const Finding& f) {
        return f.severity == Severity::kError;
      }));
}

std::size_t LintReport::warning_count() const noexcept {
  return findings_.size() - error_count();
}

std::string LintReport::to_text() const {
  std::ostringstream os;
  for (const Finding& f : findings()) {
    os << f.path << ':' << f.line << ": " << to_string(f.severity) << " ["
       << to_string(f.rule) << "] " << f.detail << '\n';
    if (!f.snippet.empty()) os << "    | " << f.snippet << '\n';
  }
  os << error_count() << " error(s), " << warning_count()
     << " warning(s)\n";
  return os.str();
}

std::string LintReport::to_tsv() const {
  std::ostringstream os;
  os << "severity\trule\tpath\tline\thash\tdetail\n";
  for (const Finding& f : findings()) {
    os << to_string(f.severity) << '\t' << to_string(f.rule) << '\t'
       << f.path << '\t' << f.line << '\t' << hash_hex(snippet_hash(f.snippet))
       << '\t' << sanitize_field(f.detail) << '\n';
  }
  return os.str();
}

std::string LintReport::to_json() const {
  std::ostringstream os;
  os << "{\n  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings()) {
    os << (first ? "" : ",") << "\n    {\"severity\": \""
       << to_string(f.severity) << "\", \"rule\": \"" << to_string(f.rule)
       << "\", \"path\": \"" << json_escape(f.path) << "\", \"line\": "
       << f.line << ", \"hash\": \"" << hash_hex(snippet_hash(f.snippet))
       << "\", \"detail\": \"" << json_escape(f.detail)
       << "\", \"snippet\": \"" << json_escape(f.snippet) << "\"}";
    first = false;
  }
  os << "\n  ],\n  \"summary\": {\"errors\": " << error_count()
     << ", \"warnings\": " << warning_count() << "}\n}\n";
  return os.str();
}

std::size_t LintReport::apply_baseline(const std::set<std::string>& keys) {
  const std::size_t before = findings_.size();
  findings_.erase(
      std::remove_if(findings_.begin(), findings_.end(),
                     [&](const Finding& f) {
                       const std::string key =
                           std::string(to_string(f.rule)) + '\t' + f.path +
                           '\t' + hash_hex(snippet_hash(f.snippet));
                       return keys.count(key) != 0;
                     }),
      findings_.end());
  return before - findings_.size();
}

std::string LintReport::to_baseline() const {
  std::ostringstream os;
  os << "# eod_lint baseline: rule<TAB>path<TAB>snippet-hash.  Each row\n"
        "# suppresses matching findings; delete rows as debt is paid.\n";
  std::set<std::string> rows;
  for (const Finding& f : findings()) {
    rows.insert(std::string(to_string(f.rule)) + '\t' + f.path + '\t' +
                hash_hex(snippet_hash(f.snippet)));
  }
  for (const std::string& r : rows) os << r << '\n';
  return os.str();
}

std::set<std::string> parse_baseline(std::string_view text) {
  std::set<std::string> keys;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      const std::string line = trim_copy(text.substr(start, i - start));
      if (!line.empty() && line.front() != '#') keys.insert(line);
      start = i + 1;
    }
  }
  return keys;
}

LayeringMatrix LayeringMatrix::builtin_default() {
  LayeringMatrix m;
  const auto set = [&](const char* mod,
                       std::initializer_list<const char*> deps) {
    auto& s = m.allowed[mod];
    for (const char* d : deps) s.insert(d);
  };
  // The tree's dependency order, base to top (DESIGN.md §15): scibench has
  // no repo deps; obs sits above it; xcl may use obs instrumentation but
  // never sim/harness/dwarfs; sim models xcl devices; dwarfs are xcl+sim
  // clients; aiwc characterizes dwarfs; harness orchestrates everything.
  set("scibench", {});
  set("obs", {"scibench"});
  set("xcl", {"obs", "scibench"});
  set("sim", {"xcl", "obs", "scibench"});
  set("dwarfs", {"xcl", "sim", "obs", "scibench"});
  set("aiwc", {"xcl", "sim", "dwarfs", "scibench"});
  set("prof", {"xcl", "sim", "dwarfs", "aiwc", "obs", "scibench"});
  set("harness",
      {"xcl", "sim", "dwarfs", "aiwc", "prof", "obs", "scibench"});
  const std::initializer_list<const char*> all = {
      "xcl", "sim", "dwarfs", "aiwc", "prof", "obs", "scibench", "harness"};
  set("apps", all);
  set("bench", all);
  m.allowed["bench"].insert("apps");
  set("tests", all);
  m.allowed["tests"].insert("bench");
  m.allowed["tests"].insert("apps");
  set("examples", all);
  set("tools", {});
  return m;
}

LayeringMatrix LayeringMatrix::parse(std::string_view tsv,
                                     std::string* error) {
  LayeringMatrix m;
  std::size_t start = 0;
  std::size_t lineno = 0;
  for (std::size_t i = 0; i <= tsv.size(); ++i) {
    if (i != tsv.size() && tsv[i] != '\n') continue;
    ++lineno;
    const std::string line = trim_copy(tsv.substr(start, i - start));
    start = i + 1;
    if (line.empty() || line.front() == '#') continue;
    const std::size_t tab = line.find('\t');
    const std::string mod = trim_copy(
        std::string_view(line).substr(0, tab));
    auto& deps = m.allowed[mod];
    if (tab == std::string::npos) continue;  // module with no deps
    std::string_view rest = std::string_view(line).substr(tab + 1);
    std::size_t ds = 0;
    for (std::size_t j = 0; j <= rest.size(); ++j) {
      if (j != rest.size() && rest[j] != ',') continue;
      const std::string dep = trim_copy(rest.substr(ds, j - ds));
      if (!dep.empty()) deps.insert(dep);
      ds = j + 1;
    }
  }
  // The matrix itself must be acyclic, or R4 would bless a cycle.
  std::map<std::string, int> colour;
  std::vector<std::string> order;
  for (const auto& [mod, _] : m.allowed) order.push_back(mod);
  std::function<bool(const std::string&)> dfs =
      [&](const std::string& mod) -> bool {
    colour[mod] = 1;
    const auto it = m.allowed.find(mod);
    if (it != m.allowed.end()) {
      for (const std::string& dep : it->second) {
        if (colour[dep] == 1) return false;
        if (colour[dep] == 0 && !dfs(dep)) return false;
      }
    }
    colour[mod] = 2;
    return true;
  };
  for (const std::string& mod : order) {
    if (colour[mod] == 0 && !dfs(mod)) {
      if (error != nullptr) {
        *error = "layering matrix contains a cycle through '" + mod + "'";
      }
      return {};  // an errored matrix must not be used
    }
  }
  if (error != nullptr) error->clear();
  return m;
}

namespace {

void lint_lexed(const std::string& path, const LexedFile& lx,
                const LintConfig& cfg, LintReport& report) {
  FileCtx ctx{path, lx, cfg, report, {}};
  ctx.annotation_used.assign(lx.annotations.size(), false);
  if (cfg.enabled.count(Rule::kEventDeps) != 0) check_event_deps(ctx);
  if (cfg.enabled.count(Rule::kMemoryOrder) != 0) check_memory_order(ctx);
  if (cfg.enabled.count(Rule::kHotAlloc) != 0) check_hot_alloc(ctx);
  if (cfg.enabled.count(Rule::kObsContract) != 0) check_obs_contract(ctx);
  if (cfg.enabled.count(Rule::kAnnotation) != 0) check_annotations(ctx);
}

}  // namespace

void lint_source(const std::string& path, std::string_view source,
                 const LintConfig& cfg, LintReport& report) {
  const LexedFile lx = lex(source);
  lint_lexed(path, lx, cfg, report);
}

bool lint_tree(const std::string& root, const LintConfig& cfg,
               LintReport& report, std::string* error,
               std::size_t* files_scanned) {
  namespace fs = std::filesystem;
  const fs::path rootp(root);
  if (!fs::is_directory(rootp)) {
    if (error != nullptr) *error = "not a directory: " + root;
    return false;
  }
  std::map<std::string, std::vector<IncludeDirective>> include_map;
  std::size_t scanned = 0;
  for (const char* sub :
       {"src", "apps", "bench", "tests", "examples", "tools"}) {
    const fs::path dir = rootp / sub;
    if (!fs::is_directory(dir)) continue;
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    for (const fs::path& p : paths) {
      std::ifstream in(p, std::ios::binary);
      if (!in) {
        if (error != nullptr) *error = "cannot read " + p.string();
        return false;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string source = buf.str();
      const std::string rel =
          fs::relative(p, rootp).generic_string();
      const LexedFile lx = lex(source);
      lint_lexed(rel, lx, cfg, report);
      include_map.emplace(rel, lx.includes);
      ++scanned;
    }
  }
  lint_layering(include_map, cfg, report);
  if (files_scanned != nullptr) *files_scanned = scanned;
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace eod::lint
