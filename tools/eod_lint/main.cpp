// eod_lint CLI (DESIGN.md §15).  Exit codes: 0 clean, 1 findings remain
// after baseline suppression, 2 usage / IO error.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lint.hpp"

namespace {

constexpr const char* kUsage =
    "usage: eod_lint [options] [--root <repo-root>]\n"
    "\n"
    "Static analysis for the extended-OpenDwarfs tree: walks\n"
    "src/, apps/, bench/, tests/, examples/, tools/ and enforces the\n"
    "repo's concurrency, event-DAG, allocation, layering, and\n"
    "observability invariants (DESIGN.md §15).\n"
    "\n"
    "options:\n"
    "  --root <dir>           repo root to scan (default: .)\n"
    "  --format text|tsv|json output format (default: text)\n"
    "  --out <path>           write the report to <path> instead of stdout\n"
    "  --baseline <path>      suppress findings listed in a baseline file\n"
    "  --write-baseline <p>   write a baseline covering current findings\n"
    "  --layering <path>      allowed-edges matrix (default:\n"
    "                         <root>/tools/eod_lint/layering.tsv, else the\n"
    "                         built-in matrix)\n"
    "  --rules a,b,...        enable only the named rules (event-deps,\n"
    "                         memory-order, hot-alloc, layering,\n"
    "                         obs-contract, annotation)\n"
    "  --list-rules           print the rule catalogue and exit\n";

constexpr const char* kRuleCatalogue =
    "event-deps    R1: ooo-converted TUs must pass explicit wait lists\n"
    "              (annotation: lint: no-deps(reason))\n"
    "memory-order  R2: memory_order_relaxed only under src/obs/ or\n"
    "              annotated lint: relaxed-ok(reason); compare_exchange\n"
    "              must name both orders\n"
    "hot-alloc     R3: no raw new/malloc/container growth in the\n"
    "              executor/thread_pool/queue/fiber TUs\n"
    "              (annotation: lint: alloc-ok(reason))\n"
    "layering      R4: #include graph acyclic and within the checked-in\n"
    "              allowed-edges matrix (tools/eod_lint/layering.tsv)\n"
    "obs-contract  R5: no discarded TraceSpan temporaries; raw\n"
    "              emit_complete* annotated lint: raw-span-ok(reason);\n"
    "              Buffer access<T>/named labels consistent\n"
    "              (annotation: lint: label-ok(reason))\n"
    "annotation    meta: annotations must carry reasons and suppress\n"
    "              something\n";

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  out = buf.str();
  return true;
}

bool parse_rules(const std::string& csv, std::set<eod::lint::Rule>& out) {
  using eod::lint::Rule;
  out.clear();
  std::size_t start = 0;
  for (std::size_t i = 0; i <= csv.size(); ++i) {
    if (i != csv.size() && csv[i] != ',') continue;
    const std::string name = csv.substr(start, i - start);
    start = i + 1;
    if (name.empty()) continue;
    bool matched = false;
    for (const Rule r :
         {Rule::kEventDeps, Rule::kMemoryOrder, Rule::kHotAlloc,
          Rule::kLayering, Rule::kObsContract, Rule::kAnnotation}) {
      if (name == eod::lint::to_string(r)) {
        out.insert(r);
        matched = true;
      }
    }
    if (!matched) return false;
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string out_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string layering_path;
  eod::lint::LintConfig cfg;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "eod_lint: " << arg << " needs a value\n" << kUsage;
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage;
      return 0;
    } else if (arg == "--list-rules") {
      std::cout << kRuleCatalogue;
      return 0;
    } else if (arg == "--root") {
      root = value();
    } else if (arg == "--format") {
      format = value();
      if (format != "text" && format != "tsv" && format != "json") {
        std::cerr << "eod_lint: unknown format '" << format << "'\n";
        return 2;
      }
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--baseline") {
      baseline_path = value();
    } else if (arg == "--write-baseline") {
      write_baseline_path = value();
    } else if (arg == "--layering") {
      layering_path = value();
    } else if (arg == "--rules") {
      if (!parse_rules(value(), cfg.enabled)) {
        std::cerr << "eod_lint: bad --rules list (see --list-rules)\n";
        return 2;
      }
    } else {
      std::cerr << "eod_lint: unknown argument '" << arg << "'\n" << kUsage;
      return 2;
    }
  }

  // Layering matrix: explicit flag, checked-in default, built-in fallback.
  if (layering_path.empty()) {
    const std::string checked_in = root + "/tools/eod_lint/layering.tsv";
    std::string probe;
    if (read_file(checked_in, probe)) layering_path = checked_in;
  }
  if (!layering_path.empty()) {
    std::string text;
    if (!read_file(layering_path, text)) {
      std::cerr << "eod_lint: cannot read layering matrix " << layering_path
                << '\n';
      return 2;
    }
    std::string err;
    cfg.layering = eod::lint::LayeringMatrix::parse(text, &err);
    if (!err.empty()) {
      std::cerr << "eod_lint: " << err << '\n';
      return 2;
    }
  }

  eod::lint::LintReport report;
  std::string error;
  std::size_t scanned = 0;
  if (!eod::lint::lint_tree(root, cfg, report, &error, &scanned)) {
    std::cerr << "eod_lint: " << error << '\n';
    return 2;
  }

  std::size_t suppressed = 0;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "eod_lint: cannot read baseline " << baseline_path << '\n';
      return 2;
    }
    suppressed = report.apply_baseline(eod::lint::parse_baseline(text));
  }

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path, std::ios::binary);
    out << report.to_baseline();
    if (!out) {
      std::cerr << "eod_lint: cannot write " << write_baseline_path << '\n';
      return 2;
    }
  }

  const std::string rendered = format == "tsv"    ? report.to_tsv()
                               : format == "json" ? report.to_json()
                                                  : report.to_text();
  if (out_path.empty()) {
    std::cout << rendered;
  } else {
    std::ofstream out(out_path, std::ios::binary);
    out << rendered;
    if (!out) {
      std::cerr << "eod_lint: cannot write " << out_path << '\n';
      return 2;
    }
  }
  std::cerr << "eod_lint: scanned " << scanned << " files, "
            << report.error_count() << " error(s), "
            << report.warning_count() << " warning(s)";
  if (suppressed != 0) std::cerr << ", " << suppressed << " baselined";
  std::cerr << '\n';
  return report.clean() ? 0 : 1;
}
