#include "lexer.hpp"

#include <algorithm>
#include <cctype>

namespace eod::lint {
namespace {

[[nodiscard]] bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
[[nodiscard]] bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses the body of a comment for `lint: tag(reason)[, tag(reason)…]`.
// `code_before_comment` decides which line the annotation covers: a
// trailing comment covers its own line, a standalone comment line covers
// the next code line.
void parse_annotations(std::string_view comment, std::size_t comment_line,
                       bool code_before_comment,
                       std::vector<Annotation>& out) {
  // Only a comment *dedicated* to the annotation counts: it must start with
  // `lint:` after whitespace.  Prose that merely mentions the grammar
  // (`carry a \`lint: no-deps(reason)\` annotation`) never parses.
  const std::string_view body = trim(comment);
  if (!(body.size() > 5 && body.substr(0, 5) == "lint:")) return;
  std::string_view rest = body.substr(5);
  const std::size_t covered =
      code_before_comment ? comment_line : comment_line + 1;
  while (true) {
    rest = trim(rest);
    std::size_t i = 0;
    while (i < rest.size() &&
           (ident_char(rest[i]) || rest[i] == '-')) {
      ++i;
    }
    if (i == 0) break;
    Annotation a;
    a.tag = std::string(rest.substr(0, i));
    a.line = covered;
    rest.remove_prefix(i);
    rest = trim(rest);
    if (!rest.empty() && rest.front() == '(') {
      const std::size_t close = rest.find(')');
      const std::size_t len =
          close == std::string_view::npos ? rest.size() - 1 : close - 1;
      a.reason = std::string(trim(rest.substr(1, len)));
      rest.remove_prefix(close == std::string_view::npos ? rest.size()
                                                         : close + 1);
    }
    a.empty_reason = a.reason.empty();
    out.push_back(std::move(a));
    rest = trim(rest);
    if (!rest.empty() && rest.front() == ',') {
      rest.remove_prefix(1);
      continue;
    }
    break;
  }
}

// Tracks preprocessor conditionals so tokens inside a literal `#if 0`
// region (and its dead `#else` complement) are dropped.
class PpState {
 public:
  void directive(std::string_view line) {
    std::string_view d = trim(line.substr(1));  // past '#'
    const auto word = [&](std::string_view w) {
      return d.size() >= w.size() && d.substr(0, w.size()) == w &&
             (d.size() == w.size() ||
              !ident_char(d[w.size()]));
    };
    if (word("if") || word("ifdef") || word("ifndef")) {
      const bool dead =
          word("if") && trim(d.substr(2)) == "0";
      stack_.push_back(dead);
    } else if (word("else") || word("elif")) {
      // `#else` of a dead `#if 0` becomes live; anything more precise
      // needs evaluation the linter does not attempt.
      if (!stack_.empty() && stack_.back()) stack_.back() = false;
    } else if (word("endif")) {
      if (!stack_.empty()) stack_.pop_back();
    }
  }
  [[nodiscard]] bool dead() const {
    return std::any_of(stack_.begin(), stack_.end(),
                       [](bool d) { return d; });
  }

 private:
  std::vector<bool> stack_;
};

}  // namespace

LexedFile lex(std::string_view src) {
  LexedFile out;
  // Raw lines first (for snippets in findings).
  {
    std::size_t start = 0;
    for (std::size_t i = 0; i <= src.size(); ++i) {
      if (i == src.size() || src[i] == '\n') {
        out.raw_lines.emplace_back(src.substr(start, i - start));
        start = i + 1;
      }
    }
  }

  PpState pp;
  std::size_t line = 1;
  std::size_t i = 0;
  bool code_on_line = false;  // any token emitted on the current line?
  const std::size_t n = src.size();

  auto newline = [&] {
    ++line;
    code_on_line = false;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Preprocessor directive: consume the whole (possibly continued) line.
    if (c == '#' && !code_on_line) {
      std::size_t end = i;
      while (end < n && (src[end] != '\n' || src[end - 1] == '\\')) {
        if (src[end] == '\n') ++line;
        ++end;
      }
      const std::string_view dir = src.substr(i, end - i);
      pp.directive(dir);
      // Capture #include targets (live regions only).
      if (!pp.dead()) {
        std::string_view d = trim(dir.substr(1));
        if (d.size() > 7 && d.substr(0, 7) == "include") {
          std::string_view t = trim(d.substr(7));
          if (!t.empty() && (t.front() == '"' || t.front() == '<')) {
            const char close = t.front() == '"' ? '"' : '>';
            const std::size_t e = t.find(close, 1);
            if (e != std::string_view::npos) {
              out.includes.push_back(
                  {std::string(t.substr(1, e - 1)), t.front() == '<', line});
            }
          }
        }
      }
      i = end;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t end = i;
      while (end < n && src[end] != '\n') ++end;
      parse_annotations(src.substr(i + 2, end - i - 2), line, code_on_line,
                        out.annotations);
      i = end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start_line = line;
      std::size_t end = i + 2;
      while (end + 1 < n && !(src[end] == '*' && src[end + 1] == '/')) {
        if (src[end] == '\n') ++line;
        ++end;
      }
      // A trailing block comment covers its starting line; a standalone one
      // covers the code line after its closing `*/`.
      parse_annotations(src.substr(i + 2, end - i - 2),
                        code_on_line ? start_line : line, code_on_line,
                        out.annotations);
      i = std::min(end + 2, n);
      continue;
    }

    const bool dead = pp.dead();
    if (dead) {
      // Count the skipped line once, then fast-forward to end of line while
      // still honouring comment/string openers so `#endif` inside a string
      // cannot derail tracking (strings cannot span lines un-escaped).
      ++out.skipped_pp_lines;
      while (i < n && src[i] != '\n') ++i;
      continue;
    }

    auto emit = [&](TokKind k, std::size_t len) {
      out.tokens.push_back({k, src.substr(i, len), line});
      code_on_line = true;
      i += len;
    };

    // Raw string literal: R"delim( … )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t dstart = i + 2;
      std::size_t dend = dstart;
      while (dend < n && src[dend] != '(') ++dend;
      // Built by append rather than operator+: GCC 12's -Wrestrict issues a
      // false positive on small-literal string concatenation at -O3.
      std::string closer;
      closer.reserve(dend - dstart + 2);
      closer += ')';
      closer.append(src.substr(dstart, dend - dstart));
      closer += '"';
      const std::size_t body = dend + 1;
      const std::size_t close = src.find(closer, body);
      const std::size_t end =
          close == std::string_view::npos ? n : close + closer.size();
      out.tokens.push_back(
          {TokKind::kString,
           src.substr(body, (close == std::string_view::npos ? n : close) -
                                body),
           line});
      code_on_line = true;
      line += static_cast<std::size_t>(
          std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                     src.begin() + static_cast<std::ptrdiff_t>(end), '\n'));
      i = end;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      std::size_t end = i + 1;
      while (end < n && src[end] != c && src[end] != '\n') {
        end += src[end] == '\\' ? 2 : 1;  // skip the escaped character
      }
      end = std::min(end, n);
      out.tokens.push_back({c == '"' ? TokKind::kString : TokKind::kChar,
                            src.substr(i + 1, end - i - 1), line});
      code_on_line = true;
      // Leave an unterminated literal's newline for the main loop so line
      // accounting stays exact.
      i = (end < n && src[end] == c) ? end + 1 : end;
      continue;
    }

    if (ident_start(c)) {
      std::size_t end = i;
      while (end < n && ident_char(src[end])) ++end;
      emit(TokKind::kIdent, end - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t end = i;
      while (end < n && (ident_char(src[end]) || src[end] == '.' ||
                         ((src[end] == '+' || src[end] == '-') && end > i &&
                          (src[end - 1] == 'e' || src[end - 1] == 'E' ||
                           src[end - 1] == 'p' || src[end - 1] == 'P')))) {
        ++end;
      }
      emit(TokKind::kNumber, end - i);
      continue;
    }
    emit(TokKind::kPunct, 1);
  }
  std::sort(out.annotations.begin(), out.annotations.end(),
            [](const Annotation& a, const Annotation& b) {
              return a.line < b.line;
            });
  return out;
}

const Annotation* find_annotation(const LexedFile& f, std::string_view tag,
                                  std::size_t line) {
  for (const Annotation& a : f.annotations) {
    if (a.line == line && a.tag == tag) return &a;
  }
  return nullptr;
}

bool has_annotation(const LexedFile& f, std::string_view tag,
                    std::size_t line) {
  return find_annotation(f, tag, line) != nullptr;
}

}  // namespace eod::lint
