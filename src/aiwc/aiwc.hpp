// Architecture-Independent Workload Characterization (AIWC).
//
// §7: "Each OpenCL kernel presented in this paper has been inspected using
// the Architecture Independent Workload Characterization (AIWC).  Analysis
// using AIWC helps understand how the structure of kernels contributes to
// the varying runtime characteristics between devices."  This module
// computes an AIWC-style metric set -- compute, parallelism, memory and
// control categories -- for every kernel of a benchmark, from the recorded
// launch stream and (where a benchmark provides one) its memory trace.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"
#include "sim/cache_sim.hpp"
#include "xcl/modeling.hpp"

namespace eod::aiwc {

/// AIWC-style metrics for one kernel (aggregated over its launches within
/// one application iteration).
struct KernelCharacteristics {
  std::string kernel;
  std::size_t launches = 0;

  // -- compute --
  double total_ops = 0.0;      ///< flops + integer ops
  double flop_fraction = 0.0;  ///< flops / total_ops ("opcode" mix)
  double arithmetic_intensity = 0.0;  ///< flop per byte of traffic

  // -- parallelism --
  double work_items = 0.0;         ///< total work-items across launches
  double granularity = 0.0;        ///< ops per work-item
  double work_group_size = 0.0;    ///< mean local size
  double simd_friendliness = 0.0;  ///< 1 - branch divergence
  double barriers_per_item = 0.0;  ///< synchronisation intensity

  // -- memory --
  double total_bytes = 0.0;
  double unique_bytes = 0.0;       ///< working set
  double read_write_ratio = 0.0;
  double reuse_factor = 0.0;       ///< total / unique bytes
  xcl::AccessPattern dominant_pattern = xcl::AccessPattern::kStreaming;

  // -- control --
  double branch_divergence = 0.0;
  double dependency_fraction = 0.0;  ///< dependent accesses / total ops
};

/// Entropy metrics computed from a memory trace (the real AIWC's most-cited
/// metrics: memory address entropy and its locality-revealing decay as low
/// bits are masked off).
struct TraceEntropy {
  double address_entropy_bits = 0.0;  ///< Shannon entropy of line addresses
  /// Entropy after dropping the lowest `skipped` address bits: flat decay
  /// means random access, steep decay means spatial locality.
  std::vector<double> masked_entropy_bits;  ///< for 1..10 dropped bits
  double unique_addresses = 0.0;
  double spatial_locality = 0.0;  ///< fraction of accesses within 64 B of
                                  ///< the previous access
};

/// Characterizes every kernel of one application iteration of `dwarf` at
/// `size` (functional execution on the host device; results keyed by
/// kernel name, in first-launch order).
[[nodiscard]] std::vector<KernelCharacteristics> characterize(
    dwarfs::Dwarf& dwarf, dwarfs::ProblemSize size);

/// Computes entropy metrics from a benchmark's memory trace stream; returns
/// nullopt-like zero struct when the benchmark provides no trace.
[[nodiscard]] TraceEntropy trace_entropy(const dwarfs::Dwarf& dwarf);

/// Renders the characterization as a table (one row per kernel).
void print_characteristics(
    std::ostream& os, const std::string& benchmark,
    const std::vector<KernelCharacteristics>& kernels);

}  // namespace eod::aiwc
