#include "aiwc/aiwc.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <unordered_map>

#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace eod::aiwc {

namespace {

// Kernels that synchronise within work-groups, with their per-item barrier
// counts derived from the kernel structure (the characterizer cannot see
// inside a C++ lambda, so the known suite kernels are tabulated; unknown
// kernels default to 0).
double barriers_per_item_of(const std::string& kernel) {
  static const std::unordered_map<std::string, double> table = {
      {"lud_diagonal", 30.0},  // 2 per elimination step, 15 steps
      {"lud_internal", 2.0},
      {"nw_block", 31.0},  // one per internal anti-diagonal
      {"hmm_forward", 2.0},
      {"hmm_backward", 2.0},
  };
  const auto it = table.find(kernel);
  return it == table.end() ? 0.0 : it->second;
}

}  // namespace

std::vector<KernelCharacteristics> characterize(dwarfs::Dwarf& dwarf,
                                                dwarfs::ProblemSize size) {
  xcl::Device& device = sim::testbed_device("i7-6700K");
  dwarf.setup(size);
  xcl::Context ctx(device);
  xcl::Queue queue(ctx);
  queue.set_functional(false);
  queue.set_record_launches(true);
  dwarf.bind(ctx, queue);
  queue.clear_events();
  dwarf.run();

  std::vector<KernelCharacteristics> out;
  std::unordered_map<std::string, std::size_t> index;
  for (const xcl::KernelLaunchStats& launch : queue.launches()) {
    const auto [it, inserted] =
        index.try_emplace(launch.kernel_name, out.size());
    if (inserted) {
      KernelCharacteristics k;
      k.kernel = launch.kernel_name;
      out.push_back(k);
    }
    KernelCharacteristics& k = out[it->second];
    const xcl::WorkloadProfile& p = launch.profile;
    ++k.launches;
    k.total_ops += p.flops + p.int_ops;
    k.flop_fraction += p.flops;  // normalised below
    k.work_items += static_cast<double>(launch.range.global_items());
    k.work_group_size += static_cast<double>(launch.range.group_items());
    k.total_bytes += p.total_bytes();
    k.unique_bytes = std::max(k.unique_bytes, p.working_set_bytes);
    k.read_write_ratio += p.bytes_written > 0.0
                              ? p.bytes_read / p.bytes_written
                              : p.bytes_read;
    k.branch_divergence =
        std::max(k.branch_divergence, p.branch_divergence);
    k.dependency_fraction += p.dependent_accesses;
    k.dominant_pattern = p.pattern;
  }
  dwarf.unbind();

  for (KernelCharacteristics& k : out) {
    const double launches = static_cast<double>(k.launches);
    k.flop_fraction = k.total_ops > 0.0 ? k.flop_fraction / k.total_ops : 0;
    k.arithmetic_intensity =
        k.total_bytes > 0.0 ? k.flop_fraction * k.total_ops / k.total_bytes
                            : 0.0;
    k.granularity = k.work_items > 0.0 ? k.total_ops / k.work_items : 0.0;
    k.work_group_size /= launches;
    k.simd_friendliness = 1.0 - k.branch_divergence;
    k.barriers_per_item = barriers_per_item_of(k.kernel);
    k.reuse_factor =
        k.unique_bytes > 0.0 ? k.total_bytes / k.unique_bytes : 0.0;
    k.read_write_ratio /= launches;
    k.dependency_fraction =
        k.total_ops > 0.0 ? k.dependency_fraction / k.total_ops : 0.0;
  }
  return out;
}

TraceEntropy trace_entropy(const dwarfs::Dwarf& dwarf) {
  TraceEntropy e;
  // Line-granular (64 B) address histogram.
  std::unordered_map<std::uint64_t, std::uint64_t> lines;
  std::uint64_t total = 0;
  std::uint64_t local = 0;
  std::uint64_t prev = ~0ull;
  dwarf.stream_trace([&](const sim::MemAccess& a) {
    const std::uint64_t line = a.address / 64;
    ++lines[line];
    ++total;
    if (prev != ~0ull &&
        (line == prev || line == prev + 1 || prev == line + 1)) {
      ++local;
    }
    prev = line;
  });
  if (total == 0) return e;

  auto entropy_of = [](const std::unordered_map<std::uint64_t,
                                                std::uint64_t>& hist,
                       std::uint64_t n) {
    double h = 0.0;
    for (const auto& [_, count] : hist) {
      const double p = static_cast<double>(count) / static_cast<double>(n);
      h -= p * std::log2(p);
    }
    return h;
  };

  e.address_entropy_bits = entropy_of(lines, total);
  e.unique_addresses = static_cast<double>(lines.size());
  e.spatial_locality = static_cast<double>(local) / total;

  // Masked entropy: progressively drop low line-address bits.  Real AIWC
  // calls this Local Memory Address Entropy; its slope separates streaming
  // from random access.
  for (unsigned skipped = 1; skipped <= 10; ++skipped) {
    std::unordered_map<std::uint64_t, std::uint64_t> masked;
    for (const auto& [line, count] : lines) {
      masked[line >> skipped] += count;
    }
    e.masked_entropy_bits.push_back(entropy_of(masked, total));
  }
  return e;
}

void print_characteristics(
    std::ostream& os, const std::string& benchmark,
    const std::vector<KernelCharacteristics>& kernels) {
  os << "== AIWC: " << benchmark << " ==\n";
  os << std::left << std::setw(20) << "kernel" << std::right << std::setw(9)
     << "launches" << std::setw(12) << "ops" << std::setw(7) << "flop%"
     << std::setw(9) << "AI" << std::setw(11) << "items" << std::setw(9)
     << "granul." << std::setw(7) << "wg" << std::setw(9) << "barrier"
     << std::setw(8) << "simd" << std::setw(9) << "reuse" << std::setw(13)
     << "pattern" << '\n';
  for (const KernelCharacteristics& k : kernels) {
    os << std::left << std::setw(20) << k.kernel << std::right
       << std::setw(9) << k.launches << std::setw(12) << std::scientific
       << std::setprecision(2) << k.total_ops << std::fixed
       << std::setprecision(2) << std::setw(7) << k.flop_fraction * 100
       << std::setw(9) << k.arithmetic_intensity << std::scientific
       << std::setw(11) << k.work_items << std::fixed << std::setw(9)
       << k.granularity << std::setw(7) << static_cast<int>(
              k.work_group_size) << std::setw(9) << k.barriers_per_item
       << std::setw(8) << k.simd_friendliness << std::setw(9)
       << k.reuse_factor << std::setw(13) << to_string(k.dominant_pattern)
       << '\n';
    os.unsetf(std::ios::fixed | std::ios::scientific);
  }
}

}  // namespace eod::aiwc
