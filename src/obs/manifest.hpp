// Run manifest (DESIGN.md §11): a machine-readable, self-describing record
// of one measurement — what ran, where, with what configuration, what came
// out, and where the companion artifacts (trace, metrics) live.  Modeled on
// the self-describing run artifacts GEMMbench and the HPCC FPGA suite argue
// reproducible benchmarking requires.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace eod::obs {

struct RunManifest {
  // Identity: what was measured.
  std::string benchmark;
  std::string size;
  std::string device;
  /// Every device participating in the run: the single measured device for
  /// ordinary runs, the full --devices set (in CLI order) for partitioned
  /// multi-device runs (DESIGN.md §14).
  std::vector<std::string> devices;
  std::string dispatch;  ///< kernel tier the functional pass ran under
  /// Value of the EOD_DISPATCH env hatch at measurement time (empty when
  /// unset); recorded so a manifest can distinguish "tier chosen by flag"
  /// from "tier pinned by the environment".
  std::string dispatch_env;
  std::string queue;  ///< queue mode ("inorder" | "ooo")
  std::uint64_t seed = 0;

  // Provenance.
  std::string git_describe;  ///< `git describe --always --dirty` or "unknown"
  std::string timestamp;     ///< ISO-8601 UTC wall time of the write

  // Sample statistics of the measurement group.
  std::size_t samples = 0;
  std::size_t loop_iterations = 0;
  double time_mean_ms = 0.0;
  double time_median_ms = 0.0;
  double time_cov = 0.0;
  double energy_median_j = 0.0;
  bool validated = false;
  bool validation_ok = false;

  // Companion artifacts (empty = not written).  These are the *final*
  // collision-suffixed paths (see unique_artifact_path), so the manifest is
  // the one authoritative pointer to where the run's files actually landed.
  std::string trace_path;
  std::string metrics_path;
  std::string profile_path;  ///< eod_prof report written by --profile

  /// Serialises the manifest (embedding `metrics` under "metrics") to
  /// `path`.  Returns false when the file cannot be written.
  bool write_json(const std::string& path,
                  const MetricsSnapshot& metrics) const;

  [[nodiscard]] std::string to_json(const MetricsSnapshot& metrics) const;
};

/// Makes a requested artifact path collision-safe: inserts ".<pid>.<n>"
/// before the filename's extension (appends it when there is none), where
/// <n> is a process-wide monotonic run counter.  Two concurrent processes —
/// or two measurement groups in one process — asked to write the same
/// --trace path then land on distinct files instead of clobbering each
/// other; the final path is recorded in the manifest.
/// "trace.json" → "trace.12345.0.json".  Empty stays empty.
[[nodiscard]] std::string unique_artifact_path(const std::string& requested);

/// Result of `git describe --always --dirty` in the current directory,
/// cached for the process; "unknown" when git or the repo is unavailable.
[[nodiscard]] const std::string& git_describe();

/// Current UTC wall time as "YYYY-MM-DDTHH:MM:SSZ".
[[nodiscard]] std::string utc_timestamp();

}  // namespace eod::obs
