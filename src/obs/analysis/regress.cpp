#include "obs/analysis/regress.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include "obs/analysis/json.hpp"

namespace eod::prof {

namespace {

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

enum class Direction : unsigned char {
  kLowerIsBetter,   ///< times, latencies, overheads
  kHigherIsBetter,  ///< speedups, bandwidths, rates
  kStable,          ///< unknown semantics: any drift counts
};

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

/// Infers which way a deterministic value may drift from its key name.
Direction direction_of(const std::string& key) {
  for (const char* n :
       {"speedup", "gbs", "bandwidth", "rate", "gflops", "efficiency",
        "throughput", "hit"}) {
    if (contains(key, n)) return Direction::kHigherIsBetter;
  }
  for (const char* n : {"_ns", "_s", "_us", "_ms", "seconds", "time",
                        "latency", "overhead", "wall", "miss"}) {
    if (contains(key, n)) return Direction::kLowerIsBetter;
  }
  return Direction::kStable;
}

void judge_value(const std::string& benchmark, const std::string& key,
                 double baseline, double current, double tolerance,
                 RegressVerdict& verdict) {
  RegressEntry e;
  e.benchmark = benchmark;
  e.key = key;
  e.baseline = baseline;
  e.current = current;
  e.ratio = baseline != 0.0 ? current / baseline : 0.0;
  const double lo = baseline * (1.0 - tolerance);
  const double hi = baseline * (1.0 + tolerance);
  switch (direction_of(key)) {
    case Direction::kLowerIsBetter:
      e.regressed = current > hi;
      if (e.regressed) e.note = "grew past " + format_double(hi);
      break;
    case Direction::kHigherIsBetter:
      e.regressed = current < lo;
      if (e.regressed) e.note = "fell below " + format_double(lo);
      break;
    case Direction::kStable:
      e.regressed = current < std::min(lo, hi) || current > std::max(lo, hi);
      if (e.regressed) {
        e.note = "drifted outside [" + format_double(std::min(lo, hi)) +
                 ", " + format_double(std::max(lo, hi)) + "]";
      }
      break;
  }
  ++verdict.compared;
  if (e.regressed) ++verdict.regressions;
  verdict.entries.push_back(std::move(e));
}

void judge_wall(const std::string& benchmark, const std::string& key,
                const Json& baseline, const Json& current, double tolerance,
                RegressVerdict& verdict) {
  const double base_med = baseline.number_or("median_ns", 0.0);
  const double base_p90 = baseline.number_or("p90_ns", base_med);
  const double cur_med = current.number_or("median_ns", 0.0);
  RegressEntry e;
  e.benchmark = benchmark;
  e.key = key;
  e.baseline = base_med;
  e.current = cur_med;
  e.ratio = base_med != 0.0 ? cur_med / base_med : 0.0;
  // A wall regression must clear both the relative threshold and the
  // baseline's own sampled noise band.
  e.regressed =
      cur_med > base_med * (1.0 + tolerance) && cur_med > base_p90;
  if (e.regressed) {
    e.note = "median grew " + format_double((e.ratio - 1.0) * 100.0) +
             "% past the baseline p90 " + format_double(base_p90);
  }
  ++verdict.compared;
  if (e.regressed) ++verdict.regressions;
  verdict.entries.push_back(std::move(e));
}

/// True when `key` passes the comma-separated substring filter (an empty
/// filter passes everything).
bool matches_filter(const std::string& key, const std::string& filter) {
  if (filter.empty()) return true;
  std::size_t start = 0;
  while (start <= filter.size()) {
    const std::size_t comma = filter.find(',', start);
    const std::string needle =
        filter.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
    if (!needle.empty() && key.find(needle) != std::string::npos) {
      return true;
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return false;
}

void missing_key(const std::string& benchmark, const std::string& key,
                 double baseline, RegressVerdict& verdict) {
  RegressEntry e;
  e.benchmark = benchmark;
  e.key = key;
  e.baseline = baseline;
  e.regressed = true;
  e.note = "present in baseline, absent from current run";
  ++verdict.compared;
  ++verdict.regressions;
  verdict.entries.push_back(std::move(e));
}

}  // namespace

void compare_reports(const std::string& benchmark,
                     const std::string& baseline_json,
                     const std::string& current_json,
                     const RegressOptions& options, RegressVerdict& verdict) {
  const Json base = parse_json(baseline_json);
  const Json cur = parse_json(current_json);

  if (const Json* values = base.find("values");
      values != nullptr && values->is_object()) {
    const Json* cur_values = cur.find("values");
    for (const auto& [key, v] : values->object) {
      if (!matches_filter(key, options.key_filter)) continue;
      const std::string label = "values." + key;
      const Json* cv =
          cur_values != nullptr ? cur_values->find(key) : nullptr;
      if (cv == nullptr) {
        missing_key(benchmark, label, v.number, verdict);
      } else {
        judge_value(benchmark, label, v.number, cv->number,
                    options.value_tolerance, verdict);
      }
    }
  }
  if (const Json* speedup = base.find("speedup");
      speedup != nullptr && speedup->number != 0.0 &&
      matches_filter("speedup", options.key_filter)) {
    judge_value(benchmark, "speedup", speedup->number,
                cur.number_or("speedup", 0.0), options.value_tolerance,
                verdict);
  }
  if (!options.include_wall) return;
  if (const Json* metrics = base.find("metrics");
      metrics != nullptr && metrics->is_object()) {
    const Json* cur_metrics = cur.find("metrics");
    for (const auto& [key, m] : metrics->object) {
      if (!matches_filter(key, options.key_filter)) continue;
      const std::string label = "metrics." + key;
      const Json* cm =
          cur_metrics != nullptr ? cur_metrics->find(key) : nullptr;
      if (cm == nullptr) {
        missing_key(benchmark, label, m.number_or("median_ns", 0.0), verdict);
      } else {
        judge_wall(benchmark, label, m, *cm, options.wall_tolerance, verdict);
      }
    }
  }
}

RegressVerdict compare_trajectory(const std::string& baseline_dir,
                                  const std::string& current_dir,
                                  const RegressOptions& options) {
  namespace fs = std::filesystem;
  RegressVerdict verdict;
  if (!fs::is_directory(baseline_dir)) {
    throw std::runtime_error("baseline directory not found: " + baseline_dir);
  }
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(baseline_dir)) {
    const std::string file = entry.path().filename().string();
    if (file.rfind("BENCH_", 0) == 0 && file.size() > 11 &&
        file.compare(file.size() - 5, 5, ".json") == 0) {
      names.push_back(file);
    }
  }
  if (names.empty()) {
    throw std::runtime_error("no BENCH_*.json baselines under " +
                             baseline_dir);
  }
  std::sort(names.begin(), names.end());
  for (const std::string& file : names) {
    const std::string benchmark = file.substr(6, file.size() - 11);
    const fs::path current = fs::path(current_dir) / file;
    if (!fs::exists(current)) {
      verdict.missing.push_back(benchmark);
      continue;
    }
    compare_reports(benchmark,
                    read_text_file((fs::path(baseline_dir) / file).string()),
                    read_text_file(current.string()), options, verdict);
  }
  return verdict;
}

std::string RegressVerdict::to_text() const {
  std::string out = "== trajectory regression check ==\n";
  out += "compared " + std::to_string(compared) + " quantities, " +
         std::to_string(regressions) + " regressed, " +
         std::to_string(missing.size()) + " benchmarks missing\n";
  for (const std::string& m : missing) {
    out += "  MISSING " + m + " (baseline report has no current namesake)\n";
  }
  for (const RegressEntry& e : entries) {
    if (!e.regressed) continue;
    out += "  REGRESSED " + e.benchmark + " " + e.key + ": " +
           format_double(e.baseline) + " -> " + format_double(e.current) +
           " (" + e.note + ")\n";
  }
  out += ok() ? "verdict: PASS\n" : "verdict: FAIL\n";
  return out;
}

std::string RegressVerdict::to_json() const {
  std::string out = "{\n";
  out += "  \"ok\": " + std::string(ok() ? "true" : "false") + ",\n";
  out += "  \"compared\": " + std::to_string(compared) + ",\n";
  out += "  \"regressions\": " + std::to_string(regressions) + ",\n";
  out += "  \"missing\": [";
  for (std::size_t i = 0; i < missing.size(); ++i) {
    out += i == 0 ? "\"" : ", \"";
    out += missing[i] + "\"";
  }
  out += "],\n  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const RegressEntry& e = entries[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"benchmark\": \"" + e.benchmark + "\", \"key\": \"" +
           e.key + "\", \"baseline\": " + format_double(e.baseline) +
           ", \"current\": " + format_double(e.current) +
           ", \"ratio\": " + format_double(e.ratio) + ", \"regressed\": " +
           (e.regressed ? "true" : "false") + ", \"note\": \"" + e.note +
           "\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace eod::prof
