// Minimal JSON reader for the profiler (DESIGN.md §16).  The obs layer
// *writes* artifacts (trace, metrics, manifest, BENCH reports); this is the
// matching reader the analysis side uses to ingest them.  It is a strict
// recursive-descent parser over the small JSON subset those writers emit —
// objects, arrays, strings, doubles, bools, null — deliberately dependency-
// free so the prof library stays self-contained.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace eod::prof {

/// One parsed JSON value.  A tagged aggregate rather than std::variant so
/// consumers can pattern-match with plain field access; objects preserve
/// insertion order (BENCH reports are order-sensitive for humans, not for
/// us, but stable iteration makes reports deterministic).
struct Json {
  enum class Type : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  [[nodiscard]] bool is_object() const noexcept {
    return type == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Object member access; throws std::runtime_error when absent.
  [[nodiscard]] const Json& at(std::string_view key) const;
  /// Member's number when present and numeric, else `fallback`.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const noexcept;
  /// Member's string when present, else `fallback`.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;
};

/// Parses one JSON document; throws std::runtime_error (with a byte offset)
/// on malformed input or trailing garbage.
[[nodiscard]] Json parse_json(std::string_view text);

/// Reads a whole file; throws std::runtime_error when it cannot be opened.
[[nodiscard]] std::string read_text_file(const std::string& path);

/// read_text_file + parse_json.
[[nodiscard]] Json load_json(const std::string& path);

}  // namespace eod::prof
