// Parsed-back trace model (DESIGN.md §16).  write_chrome_trace emits Chrome
// trace_event JSON; this module reconstructs the device-command DAG from
// that artifact *alone* — every edge is recoverable from the span args
// ("cmd", "q", "barrier", "deps"), no in-process state required.  This is
// what lets eod_prof profile a run after the fact, on another machine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis/json.hpp"

namespace eod::prof {

/// One device-side command span recovered from a pid-2 "X" event carrying a
/// "cmd" arg.  Times are integer nanoseconds on the modeled device timeline
/// (the writer renders ns as µs with three decimals, so the round-trip is
/// exact).
struct TraceCommand {
  std::uint64_t id = 0;       ///< xcl::Event::id — globally unique, id order
                              ///< is issue order (wait lists point backward)
  std::uint32_t queue = 0;    ///< trace queue id ("q" arg)
  std::uint32_t tid = 0;      ///< device lane the span was drawn on
  std::string name;           ///< event label (kernel / transfer label)
  std::string cat;            ///< "device:kernel" | "device:transfer" | ...
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;   ///< modeled latency (span width)
  std::uint64_t busy_ns = 0;  ///< lane occupancy; < dur_ns for pipelined
                              ///< link transfers, == dur_ns otherwise
  std::uint64_t bytes = 0;    ///< payload of transfers/copies/fills, 0 else
  double energy_j = 0.0;
  bool barrier = false;  ///< orders against *all* prior same-queue commands
  std::vector<std::uint64_t> deps;  ///< explicit wait-list command ids

  [[nodiscard]] std::uint64_t end_ns() const noexcept {
    return start_ns + dur_ns;
  }
  /// When the lane frees up: start + busy for pipelined transfers.
  [[nodiscard]] std::uint64_t busy_end_ns() const noexcept {
    return start_ns + (busy_ns != 0 ? busy_ns : dur_ns);
  }
  [[nodiscard]] std::uint64_t occupancy_ns() const noexcept {
    return busy_ns != 0 ? busy_ns : dur_ns;
  }
  [[nodiscard]] bool is_kernel() const noexcept {
    return cat == "device:kernel";
  }
  /// Link transfers move bytes across the modeled interconnect (writes,
  /// reads, peer copies) — the spans that saturate sim::Interconnect.
  [[nodiscard]] bool is_link_transfer() const noexcept {
    return cat == "device:transfer" || cat == "device:peer";
  }
};

/// One named lane (host thread or modeled device/link lane).
struct TraceLane {
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  std::string name;
};

/// Everything the profiler needs from one trace file.
struct TraceDoc {
  std::vector<TraceLane> lanes;          ///< from "M" thread_name metadata
  std::vector<TraceCommand> commands;    ///< device commands, sorted by id
  std::size_t host_events = 0;           ///< pid-1 "X" span count (context)

  /// Lane name for (pid, tid), or "pid<p>.tid<t>" when unnamed.
  [[nodiscard]] std::string lane_name(std::uint32_t pid,
                                      std::uint32_t tid) const;
};

/// Extracts the command DAG from a parsed Chrome trace document.  Throws
/// std::runtime_error when the document lacks "traceEvents" or a command
/// span is malformed (missing "cmd", duplicate id).
[[nodiscard]] TraceDoc parse_trace(const Json& doc);

/// load_json + parse_trace.
[[nodiscard]] TraceDoc load_trace(const std::string& path);

}  // namespace eod::prof
