// One-call run profiling: binds a run's artifacts (trace + manifest)
// together, resolves the modeled interconnect peak from the manifest's
// device, and produces the schedule profile.  This is what both the
// eod_prof CLI and the harness's in-process --profile flag call.
#pragma once

#include <string>

#include "obs/analysis/schedule.hpp"

namespace eod::prof {

struct ProfileInputs {
  /// Trace to analyze; when empty, resolved from the manifest's
  /// "trace_path" (relative paths are tried against the manifest's
  /// directory too).
  std::string trace_path;
  /// Optional manifest: provides run identity and the device whose
  /// DeviceSpec supplies the link-saturation peak.
  std::string manifest_path;
  /// Explicit interconnect peak override, GB/s; 0 = derive from manifest.
  double transfer_peak_gbs = 0.0;
};

struct ProfileReport {
  std::string benchmark;
  std::string device;
  std::string queue;
  std::string trace_path;  ///< the trace actually analyzed
  double transfer_peak_gbs = 0.0;
  ScheduleProfile schedule;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
};

/// Profiles one run from its artifacts.  Throws std::runtime_error when no
/// trace can be resolved or an artifact is malformed.
[[nodiscard]] ProfileReport profile_run(const ProfileInputs& inputs);

}  // namespace eod::prof
