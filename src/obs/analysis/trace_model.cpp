#include "obs/analysis/trace_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace eod::prof {

namespace {

/// Chrome "ts"/"dur" are µs doubles the writer produced from integer ns
/// with three decimals; round back to the exact nanosecond.
std::uint64_t us_to_ns(double us) {
  return static_cast<std::uint64_t>(std::llround(us * 1e3));
}

constexpr std::uint32_t kDevicePid = 2;

}  // namespace

std::string TraceDoc::lane_name(std::uint32_t pid, std::uint32_t tid) const {
  for (const TraceLane& l : lanes) {
    if (l.pid == pid && l.tid == tid) return l.name;
  }
  return "pid" + std::to_string(pid) + ".tid" + std::to_string(tid);
}

TraceDoc parse_trace(const Json& doc) {
  const Json* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("trace: missing traceEvents array");
  }
  TraceDoc out;
  std::unordered_set<std::uint64_t> seen_ids;
  for (const Json& e : events->array) {
    if (!e.is_object()) continue;
    const std::string ph = e.string_or("ph", "");
    const auto pid = static_cast<std::uint32_t>(e.number_or("pid", 0));
    const auto tid = static_cast<std::uint32_t>(e.number_or("tid", 0));
    if (ph == "M") {
      if (e.string_or("name", "") != "thread_name") continue;
      const Json* args = e.find("args");
      if (args == nullptr) continue;
      out.lanes.push_back({pid, tid, args->string_or("name", "")});
      continue;
    }
    if (ph != "X") continue;
    const Json* args = e.find("args");
    const Json* cmd = args != nullptr ? args->find("cmd") : nullptr;
    if (pid != kDevicePid || cmd == nullptr) {
      ++out.host_events;
      continue;
    }
    TraceCommand c;
    c.id = static_cast<std::uint64_t>(cmd->number);
    if (c.id == 0) throw std::runtime_error("trace: command with id 0");
    if (!seen_ids.insert(c.id).second) {
      throw std::runtime_error("trace: duplicate command id " +
                               std::to_string(c.id));
    }
    c.queue = static_cast<std::uint32_t>(args->number_or("q", 0));
    c.tid = tid;
    c.name = e.string_or("name", "");
    c.cat = e.string_or("cat", "");
    c.start_ns = us_to_ns(e.number_or("ts", 0.0));
    c.dur_ns = us_to_ns(e.number_or("dur", 0.0));
    c.busy_ns = static_cast<std::uint64_t>(args->number_or("busy_ns", 0.0));
    c.bytes = static_cast<std::uint64_t>(args->number_or("bytes", 0.0));
    c.energy_j = args->number_or("energy_j", 0.0);
    c.barrier = args->number_or("barrier", 0.0) != 0.0;
    if (const Json* deps = args->find("deps");
        deps != nullptr && deps->is_array()) {
      c.deps.reserve(deps->array.size());
      for (const Json& d : deps->array) {
        c.deps.push_back(static_cast<std::uint64_t>(d.number));
      }
    }
    out.commands.push_back(std::move(c));
  }
  // Id order is issue order (xcl hands out ids from one process-wide
  // counter and wait lists only point backward), which makes it a
  // topological order of the DAG — every analysis pass relies on this.
  std::sort(out.commands.begin(), out.commands.end(),
            [](const TraceCommand& a, const TraceCommand& b) {
              return a.id < b.id;
            });
  return out;
}

TraceDoc load_trace(const std::string& path) {
  return parse_trace(load_json(path));
}

}  // namespace eod::prof
