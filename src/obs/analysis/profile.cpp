#include "obs/analysis/profile.hpp"

#include <filesystem>
#include <stdexcept>

#include "obs/analysis/json.hpp"
#include "sim/device_spec.hpp"

namespace eod::prof {

ProfileReport profile_run(const ProfileInputs& inputs) {
  namespace fs = std::filesystem;
  ProfileReport report;
  report.trace_path = inputs.trace_path;
  report.transfer_peak_gbs = inputs.transfer_peak_gbs;

  if (!inputs.manifest_path.empty()) {
    const Json manifest = load_json(inputs.manifest_path);
    report.benchmark = manifest.string_or("benchmark", "");
    report.device = manifest.string_or("device", "");
    report.queue = manifest.string_or("queue", "");
    if (report.trace_path.empty()) {
      report.trace_path = manifest.string_or("trace_path", "");
      // The manifest records the path as the run saw it; when the CLI runs
      // from elsewhere, retry relative to the manifest's own directory.
      if (!report.trace_path.empty() && !fs::exists(report.trace_path)) {
        const fs::path sibling =
            fs::path(inputs.manifest_path).parent_path() / report.trace_path;
        if (fs::exists(sibling)) report.trace_path = sibling.string();
      }
    }
    if (report.transfer_peak_gbs <= 0.0 && !report.device.empty()) {
      try {
        report.transfer_peak_gbs =
            sim::spec_by_name(report.device).transfer_bandwidth_gbs;
      } catch (const std::invalid_argument&) {
        // Unknown device (e.g. "host"): saturation stays unreported.
      }
    }
  }
  if (report.trace_path.empty()) {
    throw std::runtime_error(
        "no trace to profile: pass a trace path or a manifest whose "
        "trace_path is set");
  }
  ScheduleOptions options;
  options.transfer_peak_gbs = report.transfer_peak_gbs;
  report.schedule = analyze_schedule(load_trace(report.trace_path), options);
  return report;
}

std::string ProfileReport::to_text() const {
  std::string out;
  if (!benchmark.empty()) {
    out += "run: " + benchmark + " on " + device + " (queue " + queue +
           ")\n";
  }
  out += "trace: " + trace_path + "\n\n";
  out += schedule.to_text();
  return out;
}

std::string ProfileReport::to_json() const {
  std::string out = "{\n";
  out += "  \"benchmark\": \"" + benchmark + "\",\n";
  out += "  \"device\": \"" + device + "\",\n";
  out += "  \"queue\": \"" + queue + "\",\n";
  out += "  \"trace_path\": \"" + trace_path + "\",\n";
  std::string schedule_json = schedule.to_json();
  // Splice the schedule object in as the "schedule" member.
  out += "  \"schedule\": " + schedule_json;
  if (!out.empty() && out.back() == '\n') out.pop_back();
  out += "\n}\n";
  return out;
}

}  // namespace eod::prof
