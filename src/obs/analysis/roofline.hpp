// Roofline placement (DESIGN.md §16).  Places every (benchmark, kernel)
// of a run on each modeled device's roofline: operational intensity from
// the AIWC characterization, DRAM traffic from the replayed cache
// counters (the same warm-pass protocol the harness derives PAPI-style
// counters from), ceilings from the DeviceSpec's derated peak FLOPS and
// memory bandwidth.  The label — compute- vs memory-bound — is the §7
// story quantified: AIWC metrics explain *why* runtimes diverge across
// devices, and the roofline says which ceiling each dwarf is pinned to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::prof {

/// One (benchmark, kernel, device) placement.  kernel "*" aggregates the
/// whole application iteration; it is the row that uses replayed DRAM
/// traffic when the benchmark provides a memory trace.
struct RooflinePoint {
  std::string benchmark;
  std::string kernel;
  std::string size;
  std::string device;
  double flops = 0.0;          ///< SP flops of one application iteration
  double bytes = 0.0;          ///< DRAM traffic feeding the OI
  double oi = 0.0;             ///< flops / bytes
  double compute_ceiling_gflops = 0.0;  ///< peak * opencl_efficiency
  double memory_ceiling_gbs = 0.0;
  double ridge_oi = 0.0;       ///< ceiling crossover intensity
  double t_compute_s = 0.0;
  double t_memory_s = 0.0;
  bool memory_bound = false;   ///< t_memory >= t_compute (== oi < ridge)
  /// Bytes came from the warm-pass replayed hierarchy counters (last-level
  /// misses x line size); false = analytic AIWC traffic (trace-less or
  /// oversized benchmarks).
  bool replayed = false;
};

struct RooflineReport {
  std::vector<RooflinePoint> points;

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_tsv() const;
  [[nodiscard]] std::string to_json() const;
};

struct RooflineOptions {
  /// Replay traces with at most this many accesses; larger hints fall back
  /// to analytic traffic (same guard as harness MeasureOptions).
  std::uint64_t max_trace_accesses = std::uint64_t{1} << 27;
};

/// Characterizes each benchmark once (functional host execution at `size`),
/// then places it on every named device's roofline.  Unknown benchmarks or
/// devices throw std::invalid_argument; a benchmark that does not support
/// `size` is characterized at its nearest supported size (recorded in the
/// point's `size`).
[[nodiscard]] RooflineReport roofline(
    const std::vector<std::string>& benchmarks, dwarfs::ProblemSize size,
    const std::vector<std::string>& devices,
    const RooflineOptions& options = {});

}  // namespace eod::prof
