#include "obs/analysis/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace eod::prof {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Json v;
        v.type = Json::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        Json v;
        if (!consume_literal("true")) fail("bad literal");
        v.type = Json::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        Json v;
        if (!consume_literal("false")) fail("bad literal");
        v.type = Json::Type::kBool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      }
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json v;
    v.type = Json::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    expect('[');
    Json v;
    v.type = Json::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          // Our writers only emit \u00XX control escapes; decode the low
          // byte and map anything outside Latin-1 to '?'.
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          out += code < 256 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number: " + token);
    Json v;
    v.type = Json::Type::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Json* Json::find(std::string_view key) const noexcept {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

double Json::number_or(std::string_view key, double fallback) const noexcept {
  const Json* v = find(key);
  return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
}

std::string Json::string_or(std::string_view key,
                            std::string_view fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->type == Type::kString ? v->str
                                                  : std::string(fallback);
}

Json parse_json(std::string_view text) { return Parser(text).parse_document(); }

std::string read_text_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

Json load_json(const std::string& path) {
  return parse_json(read_text_file(path));
}

}  // namespace eod::prof
