#include "obs/analysis/schedule.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace eod::prof {

namespace {

/// How a predecessor constrains a successor's start.
enum class EdgeKind : unsigned char {
  kEnd,      ///< dep / barrier: successor waits for the predecessor's end
  kBusyEnd,  ///< lane order: successor waits for the lane to free up
};

struct Edge {
  std::size_t pred = 0;
  EdgeKind kind = EdgeKind::kEnd;
};

/// The time a predecessor edge releases its successor.
std::uint64_t constraint_ns(const TraceCommand& p, EdgeKind kind) {
  return kind == EdgeKind::kEnd ? p.end_ns() : p.busy_end_ns();
}

bool is_compute(const TraceCommand& c) { return c.is_kernel(); }

std::string format_ms(std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Builds the predecessor lists.  Barrier edges are transitively reduced:
/// a barrier links to the previous same-queue barrier plus everything
/// issued since it, which implies (and propagates identically to) the full
/// all-prior edge set.  Lane edges only need the immediate predecessor —
/// busy_end is monotone along a lane in placement order.
std::vector<std::vector<Edge>> build_edges(
    const std::vector<TraceCommand>& cmds) {
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(cmds.size());
  for (std::size_t i = 0; i < cmds.size(); ++i) by_id.emplace(cmds[i].id, i);

  struct QueueState {
    bool has_barrier = false;
    std::size_t last_barrier = 0;
    std::vector<std::size_t> since_barrier;
  };
  std::unordered_map<std::uint32_t, QueueState> queues;
  std::unordered_map<std::uint32_t, std::size_t> lane_last;

  std::vector<std::vector<Edge>> preds(cmds.size());
  for (std::size_t n = 0; n < cmds.size(); ++n) {
    const TraceCommand& c = cmds[n];
    for (const std::uint64_t dep : c.deps) {
      // Wait lists may reference commands the ring dropped; skip silently
      // (the barrier/lane edges still order what survived).
      if (const auto it = by_id.find(dep);
          it != by_id.end() && it->second < n) {
        preds[n].push_back({it->second, EdgeKind::kEnd});
      }
    }
    QueueState& q = queues[c.queue];
    if (c.barrier) {
      if (q.has_barrier) preds[n].push_back({q.last_barrier, EdgeKind::kEnd});
      for (const std::size_t p : q.since_barrier) {
        preds[n].push_back({p, EdgeKind::kEnd});
      }
      q.has_barrier = true;
      q.last_barrier = n;
      q.since_barrier.clear();
    } else {
      q.since_barrier.push_back(n);
    }
    if (const auto it = lane_last.find(c.tid); it != lane_last.end()) {
      preds[n].push_back({it->second, EdgeKind::kBusyEnd});
    }
    lane_last[c.tid] = n;
  }
  return preds;
}

}  // namespace

ScheduleProfile analyze_schedule(const TraceDoc& doc,
                                 const ScheduleOptions& options) {
  ScheduleProfile out;
  const std::vector<TraceCommand>& cmds = doc.commands;
  if (cmds.empty()) return out;

  std::size_t last = 0;
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    out.serialized_ns += cmds[i].dur_ns;
    (is_compute(cmds[i]) ? out.compute_ns : out.transfer_ns) +=
        cmds[i].occupancy_ns();
    if (cmds[i].end_ns() > cmds[last].end_ns()) last = i;
  }
  out.makespan_ns = cmds[last].end_ns();
  out.overlap_efficiency =
      out.makespan_ns != 0 ? static_cast<double>(out.serialized_ns) /
                                 static_cast<double>(out.makespan_ns)
                           : 0.0;

  const std::vector<std::vector<Edge>> preds = build_edges(cmds);

  // Slack: one reverse sweep in id order (a topological order).  A
  // predecessor's latest finish is bounded by each successor's latest
  // start; lane edges bind the *busy* end, so a pipelined transfer keeps
  // its tail lag (dur - busy) as extra room.
  std::vector<std::uint64_t> latest_finish(cmds.size(), out.makespan_ns);
  for (std::size_t n = cmds.size(); n-- > 0;) {
    const std::uint64_t latest_start = latest_finish[n] - cmds[n].dur_ns;
    for (const Edge& e : preds[n]) {
      const TraceCommand& p = cmds[e.pred];
      const std::uint64_t bound =
          e.kind == EdgeKind::kEnd
              ? latest_start
              : latest_start + (p.dur_ns - p.occupancy_ns());
      latest_finish[e.pred] = std::min(latest_finish[e.pred], bound);
    }
  }

  // Critical path: back-walk from the makespan-defining command, at each
  // step following the predecessor whose constraint released it last.  A
  // gap between that constraint and the actual start is schedule idle
  // (host enqueue latency the DAG cannot explain).
  std::vector<std::size_t> path;
  std::vector<std::uint64_t> waits;
  std::size_t n = last;
  while (true) {
    path.push_back(n);
    bool found = false;
    std::uint64_t best_constraint = 0;
    std::size_t best_pred = 0;
    for (const Edge& e : preds[n]) {
      const std::uint64_t t = constraint_ns(cmds[e.pred], e.kind);
      if (!found || t > best_constraint) {
        found = true;
        best_constraint = t;
        best_pred = e.pred;
      }
    }
    if (!found) {
      waits.push_back(cmds[n].start_ns);  // idle from schedule origin
      break;
    }
    waits.push_back(cmds[n].start_ns >= best_constraint
                        ? cmds[n].start_ns - best_constraint
                        : 0);
    n = best_pred;
  }
  std::reverse(path.begin(), path.end());
  std::reverse(waits.begin(), waits.end());

  std::vector<bool> on_path(cmds.size(), false);
  out.critical_path.reserve(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    const TraceCommand& c = cmds[path[i]];
    on_path[path[i]] = true;
    PathStep step;
    step.id = c.id;
    step.name = c.name;
    step.cat = c.cat;
    step.queue = c.queue;
    step.tid = c.tid;
    step.start_ns = c.start_ns;
    step.dur_ns = c.dur_ns;
    step.wait_ns = waits[i];
    out.critical_path.push_back(std::move(step));
  }
  // Makespan attribution: each step is charged the idle gap before it plus
  // the time from its start until it releases the next step (its full
  // duration for the last step).  These segments telescope exactly to the
  // makespan, even when a lane edge lets the successor start before the
  // predecessor's span ends.
  for (std::size_t i = 0; i < path.size(); ++i) {
    const TraceCommand& c = cmds[path[i]];
    out.path_idle_ns += waits[i];
    std::uint64_t charge = c.dur_ns;
    if (i + 1 < path.size()) {
      const std::uint64_t next_start = cmds[path[i + 1]].start_ns;
      const std::uint64_t release = next_start - waits[i + 1];
      charge = release >= c.start_ns ? release - c.start_ns : 0;
    }
    (is_compute(c) ? out.path_compute_ns : out.path_transfer_ns) += charge;
  }

  out.slack.reserve(cmds.size());
  for (std::size_t i = 0; i < cmds.size(); ++i) {
    const TraceCommand& c = cmds[i];
    SlackRow row;
    row.id = c.id;
    row.name = c.name;
    row.cat = c.cat;
    row.queue = c.queue;
    row.tid = c.tid;
    row.start_ns = c.start_ns;
    row.dur_ns = c.dur_ns;
    row.slack_ns = latest_finish[i] >= c.end_ns()
                       ? latest_finish[i] - c.end_ns()
                       : 0;
    row.critical = on_path[i];
    out.slack.push_back(std::move(row));
  }

  // Lane utilization: occupancy fraction plus achieved link bandwidth.
  std::unordered_map<std::uint32_t, LaneUtilization> lanes;
  std::unordered_map<std::uint32_t, std::uint64_t> transfer_busy;
  for (const TraceCommand& c : cmds) {
    LaneUtilization& lane = lanes[c.tid];
    lane.tid = c.tid;
    ++lane.commands;
    lane.busy_ns += c.occupancy_ns();
    if (c.is_link_transfer()) {
      lane.bytes += c.bytes;
      transfer_busy[c.tid] += c.occupancy_ns();
    }
  }
  out.lanes.reserve(lanes.size());
  for (auto& [tid, lane] : lanes) {
    lane.name = doc.lane_name(2, tid);
    lane.busy_fraction = out.makespan_ns != 0
                             ? static_cast<double>(lane.busy_ns) /
                                   static_cast<double>(out.makespan_ns)
                             : 0.0;
    if (const std::uint64_t busy = transfer_busy[tid];
        busy != 0 && lane.bytes != 0) {
      // bytes per nanosecond is numerically GB/s.
      lane.achieved_gbs = static_cast<double>(lane.bytes) /
                          static_cast<double>(busy);
      if (options.transfer_peak_gbs > 0.0) {
        lane.saturation = lane.achieved_gbs / options.transfer_peak_gbs;
      }
    }
    out.lanes.push_back(std::move(lane));
  }
  std::sort(out.lanes.begin(), out.lanes.end(),
            [](const LaneUtilization& a, const LaneUtilization& b) {
              return a.tid < b.tid;
            });
  return out;
}

std::string ScheduleProfile::to_text() const {
  std::string out = "== schedule profile ==\n";
  auto line = [&](const char* key, const std::string& value) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%-22s%s\n", key, value.c_str());
    out += buf;
  };
  line("commands", std::to_string(slack.size()));
  line("makespan_ms", format_ms(makespan_ns));
  line("serialized_ms", format_ms(serialized_ns));
  line("overlap_efficiency", format_double(overlap_efficiency) + "x");
  const double total = makespan_ns != 0 ? static_cast<double>(makespan_ns)
                                        : 1.0;
  line("path_compute",
       format_ms(path_compute_ns) + " ms (" +
           format_double(100.0 * static_cast<double>(path_compute_ns) /
                         total) +
           "%)");
  line("path_transfer",
       format_ms(path_transfer_ns) + " ms (" +
           format_double(100.0 * static_cast<double>(path_transfer_ns) /
                         total) +
           "%)");
  line("path_idle",
       format_ms(path_idle_ns) + " ms (" +
           format_double(100.0 * static_cast<double>(path_idle_ns) / total) +
           "%)");

  out += "\ncritical path (" + std::to_string(critical_path.size()) +
         " steps):\n";
  for (const PathStep& s : critical_path) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  cmd %-6llu %-28s %-16s q%-3u lane%-3u start %10s ms  "
                  "dur %10s ms  wait %s ms\n",
                  static_cast<unsigned long long>(s.id), s.name.c_str(),
                  s.cat.c_str(), s.queue, s.tid,
                  format_ms(s.start_ns).c_str(), format_ms(s.dur_ns).c_str(),
                  format_ms(s.wait_ns).c_str());
    out += buf;
  }

  out += "\nlanes:\n";
  for (const LaneUtilization& l : lanes) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  lane%-3u %-28s cmds %-5zu busy %6.2f%%  bytes %-12llu "
                  "%8s GB/s  saturation %s\n",
                  l.tid, l.name.c_str(), l.commands, 100.0 * l.busy_fraction,
                  static_cast<unsigned long long>(l.bytes),
                  format_double(l.achieved_gbs).c_str(),
                  l.saturation > 0.0
                      ? (format_double(100.0 * l.saturation) + "%").c_str()
                      : "n/a");
    out += buf;
  }
  return out;
}

std::string ScheduleProfile::to_tsv() const {
  std::string out =
      "id\tname\tcat\tqueue\ttid\tstart_ns\tdur_ns\tslack_ns\tcritical\n";
  for (const SlackRow& r : slack) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%llu\t%s\t%s\t%u\t%u\t%llu\t%llu\t%llu\t%d\n",
                  static_cast<unsigned long long>(r.id), r.name.c_str(),
                  r.cat.c_str(), r.queue, r.tid,
                  static_cast<unsigned long long>(r.start_ns),
                  static_cast<unsigned long long>(r.dur_ns),
                  static_cast<unsigned long long>(r.slack_ns),
                  r.critical ? 1 : 0);
    out += buf;
  }
  return out;
}

std::string ScheduleProfile::to_json() const {
  auto u64 = [](std::uint64_t v) { return std::to_string(v); };
  std::string out = "{\n";
  out += "  \"makespan_ns\": " + u64(makespan_ns) + ",\n";
  out += "  \"serialized_ns\": " + u64(serialized_ns) + ",\n";
  out += "  \"overlap_efficiency\": " + format_double(overlap_efficiency) +
         ",\n";
  out += "  \"compute_ns\": " + u64(compute_ns) + ",\n";
  out += "  \"transfer_ns\": " + u64(transfer_ns) + ",\n";
  out += "  \"path_compute_ns\": " + u64(path_compute_ns) + ",\n";
  out += "  \"path_transfer_ns\": " + u64(path_transfer_ns) + ",\n";
  out += "  \"path_idle_ns\": " + u64(path_idle_ns) + ",\n";
  out += "  \"critical_path\": [";
  for (std::size_t i = 0; i < critical_path.size(); ++i) {
    const PathStep& s = critical_path[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"id\": " + u64(s.id) + ", \"name\": \"" + s.name +
           "\", \"cat\": \"" + s.cat + "\", \"queue\": " +
           std::to_string(s.queue) + ", \"tid\": " + std::to_string(s.tid) +
           ", \"start_ns\": " + u64(s.start_ns) + ", \"dur_ns\": " +
           u64(s.dur_ns) + ", \"wait_ns\": " + u64(s.wait_ns) + "}";
  }
  out += "\n  ],\n";
  out += "  \"slack\": [";
  for (std::size_t i = 0; i < slack.size(); ++i) {
    const SlackRow& r = slack[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"id\": " + u64(r.id) + ", \"name\": \"" + r.name +
           "\", \"cat\": \"" + r.cat + "\", \"queue\": " +
           std::to_string(r.queue) + ", \"tid\": " + std::to_string(r.tid) +
           ", \"start_ns\": " + u64(r.start_ns) + ", \"dur_ns\": " +
           u64(r.dur_ns) + ", \"slack_ns\": " + u64(r.slack_ns) +
           ", \"critical\": " + (r.critical ? "true" : "false") + "}";
  }
  out += "\n  ],\n";
  out += "  \"lanes\": [";
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const LaneUtilization& l = lanes[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"tid\": " + std::to_string(l.tid) + ", \"name\": \"" +
           l.name + "\", \"commands\": " + std::to_string(l.commands) +
           ", \"busy_ns\": " + u64(l.busy_ns) + ", \"busy_fraction\": " +
           format_double(l.busy_fraction) + ", \"bytes\": " + u64(l.bytes) +
           ", \"achieved_gbs\": " + format_double(l.achieved_gbs) +
           ", \"saturation\": " + format_double(l.saturation) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace eod::prof
