#include "obs/analysis/roofline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "aiwc/aiwc.hpp"
#include "dwarfs/registry.hpp"
#include "sim/device_spec.hpp"
#include "sim/replay_cache.hpp"

namespace eod::prof {

namespace {

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Closest supported size (by enum distance, preferring smaller): nqueens
/// has one size, hmm validates tiny only.
dwarfs::ProblemSize nearest_supported(const dwarfs::Dwarf& dwarf,
                                      dwarfs::ProblemSize want) {
  const std::vector<dwarfs::ProblemSize> sizes = dwarf.supported_sizes();
  dwarfs::ProblemSize best = sizes.front();
  int best_dist = 1 << 10;
  for (const dwarfs::ProblemSize s : sizes) {
    const int dist = std::abs(static_cast<int>(s) - static_cast<int>(want));
    if (dist < best_dist ||
        (dist == best_dist && static_cast<int>(s) < static_cast<int>(best))) {
      best = s;
      best_dist = dist;
    }
  }
  return best;
}

/// DRAM traffic of one replay pass: misses out of the last modeled cache
/// level, at that level's own line size.
double dram_bytes(const sim::HierarchyCounters& counters,
                  const sim::DeviceSpec& spec) {
  if (spec.l3_kib != 0) {
    return static_cast<double>(counters.l3_tcm) * spec.l3.line_bytes;
  }
  return static_cast<double>(counters.l2_dcm) * spec.l2.line_bytes;
}

/// Steady-state (warm) DRAM traffic; a cache-resident working set has none,
/// so fall back to the cold pass's compulsory first-touch traffic — the
/// floor any real run pays — rather than reporting an infinite OI.
double replayed_dram_bytes(const sim::ReplayMemoEntry& memo,
                           const sim::DeviceSpec& spec) {
  const double warm = dram_bytes(memo.warm, spec);
  return warm > 0.0 ? warm : dram_bytes(memo.cold, spec);
}

RooflinePoint make_point(std::string benchmark, std::string kernel,
                         std::string size, const sim::DeviceSpec& spec,
                         double flops, double bytes, bool replayed) {
  RooflinePoint p;
  p.benchmark = std::move(benchmark);
  p.kernel = std::move(kernel);
  p.size = std::move(size);
  p.device = spec.name;
  p.flops = flops;
  p.bytes = bytes;
  p.oi = bytes > 0.0 ? flops / bytes : 0.0;
  p.compute_ceiling_gflops = spec.peak_sp_gflops * spec.opencl_efficiency;
  p.memory_ceiling_gbs = spec.mem_bandwidth_gbs;
  p.ridge_oi = p.memory_ceiling_gbs > 0.0
                   ? p.compute_ceiling_gflops / p.memory_ceiling_gbs
                   : 0.0;
  p.t_compute_s = p.compute_ceiling_gflops > 0.0
                      ? flops / (p.compute_ceiling_gflops * 1e9)
                      : 0.0;
  p.t_memory_s = p.memory_ceiling_gbs > 0.0
                     ? bytes / (p.memory_ceiling_gbs * 1e9)
                     : 0.0;
  p.memory_bound = p.t_memory_s >= p.t_compute_s;
  p.replayed = replayed;
  return p;
}

}  // namespace

RooflineReport roofline(const std::vector<std::string>& benchmarks,
                        dwarfs::ProblemSize size,
                        const std::vector<std::string>& devices,
                        const RooflineOptions& options) {
  RooflineReport report;
  for (const std::string& name : benchmarks) {
    const std::unique_ptr<dwarfs::Dwarf> dwarf = dwarfs::create_dwarf(name);
    const dwarfs::ProblemSize run_size = nearest_supported(*dwarf, size);
    const std::string size_name = dwarfs::to_string(run_size);
    const std::vector<aiwc::KernelCharacteristics> kernels =
        aiwc::characterize(*dwarf, run_size);

    double total_flops = 0.0;
    double analytic_bytes = 0.0;
    for (const aiwc::KernelCharacteristics& kc : kernels) {
      total_flops += kc.total_ops * kc.flop_fraction;
      analytic_bytes += kc.total_bytes;
    }
    // characterize() leaves the dwarf set up at run_size, so its memory
    // trace (when it has one) describes exactly the iteration measured.
    const std::size_t hint = dwarf->trace_size_hint();
    const bool replayable =
        hint != 0 && hint <= options.max_trace_accesses;

    for (const std::string& device : devices) {
      const sim::DeviceSpec& spec = sim::spec_by_name(device);
      double agg_bytes = analytic_bytes;
      bool replayed = false;
      if (replayable) {
        const sim::ReplayMemoEntry memo = sim::memoized_replay(
            [&dwarf](sim::TraceWriter& w) { dwarf->stream_trace(w); }, spec,
            name + "/" + size_name + "/" + spec.name);
        if (memo.accesses > 0) {
          agg_bytes = replayed_dram_bytes(memo, spec);
          replayed = true;
        }
      }
      for (const aiwc::KernelCharacteristics& kc : kernels) {
        report.points.push_back(make_point(
            name, kc.kernel, size_name, spec,
            kc.total_ops * kc.flop_fraction, kc.total_bytes, false));
      }
      report.points.push_back(make_point(name, "*", size_name, spec,
                                         total_flops, agg_bytes, replayed));
    }
  }
  return report;
}

std::string RooflineReport::to_text() const {
  std::string out = "== roofline placement ==\n";
  for (const RooflinePoint& p : points) {
    char buf[320];
    std::snprintf(
        buf, sizeof(buf),
        "  %-10s %-22s %-8s %-24s oi %10s  ridge %8s  flops %10s  "
        "bytes %10s  %s%s\n",
        p.benchmark.c_str(), p.kernel.c_str(), p.size.c_str(),
        p.device.c_str(), format_double(p.oi).c_str(),
        format_double(p.ridge_oi).c_str(), format_double(p.flops).c_str(),
        format_double(p.bytes).c_str(),
        p.memory_bound ? "memory-bound" : "compute-bound",
        p.replayed ? " (replayed)" : "");
    out += buf;
  }
  return out;
}

std::string RooflineReport::to_tsv() const {
  std::string out =
      "benchmark\tkernel\tsize\tdevice\tflops\tbytes\toi\tridge_oi\t"
      "compute_ceiling_gflops\tmemory_ceiling_gbs\tbound\treplayed\n";
  for (const RooflinePoint& p : points) {
    out += p.benchmark + '\t' + p.kernel + '\t' + p.size + '\t' + p.device +
           '\t' + format_double(p.flops) + '\t' + format_double(p.bytes) +
           '\t' + format_double(p.oi) + '\t' + format_double(p.ridge_oi) +
           '\t' + format_double(p.compute_ceiling_gflops) + '\t' +
           format_double(p.memory_ceiling_gbs) + '\t' +
           (p.memory_bound ? "memory" : "compute") + '\t' +
           (p.replayed ? "1" : "0") + '\n';
  }
  return out;
}

std::string RooflineReport::to_json() const {
  std::string out = "{\n  \"roofline\": [";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RooflinePoint& p = points[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"benchmark\": \"" + p.benchmark + "\", \"kernel\": \"" +
           p.kernel + "\", \"size\": \"" + p.size + "\", \"device\": \"" +
           p.device + "\", \"flops\": " + format_double(p.flops) +
           ", \"bytes\": " + format_double(p.bytes) +
           ", \"oi\": " + format_double(p.oi) +
           ", \"ridge_oi\": " + format_double(p.ridge_oi) +
           ", \"compute_ceiling_gflops\": " +
           format_double(p.compute_ceiling_gflops) +
           ", \"memory_ceiling_gbs\": " +
           format_double(p.memory_ceiling_gbs) + ", \"bound\": \"" +
           (p.memory_bound ? "memory" : "compute") + "\", \"replayed\": " +
           (p.replayed ? "true" : "false") + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace eod::prof
