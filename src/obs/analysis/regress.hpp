// Trajectory regression gate (DESIGN.md §16).  Compares a directory of
// freshly produced BENCH_*.json reports against a checked-in baseline
// directory and decides — with noise tolerance — whether the benchmark
// trajectory regressed.
//
// Two comparison classes, matching the BENCH schema's split:
//   * "values" / "speedup" — deterministic modeled scalars.  Machine
//     independent, so they gate by default with a plain relative
//     threshold.
//   * "metrics" — wall-clock median/p10/p90 samples.  Machine dependent
//     (a laptop baseline means nothing to a CI runner), so they only gate
//     when opted in, and a drift only counts when the current median also
//     leaves the baseline's [p10, p90] noise band.
// A baseline entry that vanished from the current run (missing file,
// missing key) is always a regression: silently dropping a benchmark is
// how trajectories rot.
#pragma once

#include <string>
#include <vector>

namespace eod::prof {

struct RegressOptions {
  /// Relative drift tolerated before a deterministic value regresses.
  double value_tolerance = 0.10;
  /// Relative drift tolerated on wall medians (on top of the p10/p90 band).
  double wall_tolerance = 0.25;
  /// Gate on wall-clock "metrics" too (off by default: machine dependent).
  bool include_wall = false;
  /// Comma-separated substrings; when non-empty, only keys containing one
  /// of them are compared.  Lets a cross-machine CI gate restrict itself to
  /// the deterministic modeled quantities (e.g. "modeled,gbs") while a
  /// same-machine run compares everything.
  std::string key_filter;
};

/// One compared quantity.
struct RegressEntry {
  std::string benchmark;
  std::string key;       ///< "values.modeled_speedup", "metrics.ooo_wall", ...
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;    ///< current / baseline (0 when baseline is 0)
  bool regressed = false;
  std::string note;      ///< why it regressed / how it was judged
};

struct RegressVerdict {
  std::vector<RegressEntry> entries;
  std::size_t compared = 0;
  std::size_t regressions = 0;
  /// Benchmarks present in the baseline but absent from the current run.
  std::vector<std::string> missing;

  [[nodiscard]] bool ok() const noexcept {
    return regressions == 0 && missing.empty();
  }
  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_json() const;
};

/// Compares one baseline report against the matching current report (both
/// already-parsed file contents).  Appends entries to `verdict`.
void compare_reports(const std::string& benchmark,
                     const std::string& baseline_json,
                     const std::string& current_json,
                     const RegressOptions& options, RegressVerdict& verdict);

/// Compares every BENCH_*.json in `baseline_dir` against its namesake in
/// `current_dir`.  Throws std::runtime_error when the baseline directory
/// does not exist or holds no reports (a gate with nothing to gate on is a
/// setup bug, not a pass).
[[nodiscard]] RegressVerdict compare_trajectory(
    const std::string& baseline_dir, const std::string& current_dir,
    const RegressOptions& options = {});

}  // namespace eod::prof
