// Event-DAG schedule analysis (DESIGN.md §16): reconstructs the command DAG
// a run's trace recorded, finds the critical path through the modeled
// schedule, assigns per-command slack, attributes the makespan to compute /
// transfer / idle, and measures per-lane utilization and overlap
// efficiency against the serialized lower bound.
//
// Edge semantics mirror xcl::Queue's scheduler exactly:
//   * explicit deps   — wait-list ids; successor starts at/after dep end.
//   * barrier         — a span flagged "barrier" orders against every prior
//                       same-queue command (in-order chain; ooo no-wait
//                       enqueues).  Edges are transitively reduced: a
//                       barrier links to the previous same-queue barrier
//                       and to everything issued since it.
//   * lane order      — commands drawn on one device lane serialize on the
//                       lane's *busy* interval (busy_end, not end: a
//                       pipelined link transfer frees the lane before its
//                       last byte lands).
// Command ids are issued from one process-wide counter and wait lists only
// point backward, so ascending id is a topological order — both passes
// below are single sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis/trace_model.hpp"

namespace eod::prof {

/// One step of the critical path, in schedule order.
struct PathStep {
  std::uint64_t id = 0;
  std::string name;
  std::string cat;
  std::uint32_t queue = 0;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  /// Idle gap on the path immediately before this step (host enqueue
  /// latency or a wait the DAG cannot explain); 0 when a predecessor's
  /// constraint binds exactly.
  std::uint64_t wait_ns = 0;
};

/// Per-command slack: how far the command could slip without growing the
/// makespan, honoring every DAG and lane constraint.
struct SlackRow {
  std::uint64_t id = 0;
  std::string name;
  std::string cat;
  std::uint32_t queue = 0;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t slack_ns = 0;
  bool critical = false;  ///< on the reported critical path
};

/// Busy fraction and traffic of one modeled device/link lane.
struct LaneUtilization {
  std::uint32_t tid = 0;
  std::string name;
  std::size_t commands = 0;
  std::uint64_t busy_ns = 0;
  double busy_fraction = 0.0;  ///< busy_ns / makespan
  std::uint64_t bytes = 0;     ///< link-transfer payload through this lane
  double achieved_gbs = 0.0;   ///< bytes / busy time of transfer spans
  /// achieved_gbs / peak; 0 when no peak was supplied or no traffic flowed.
  double saturation = 0.0;
};

struct ScheduleProfile {
  std::uint64_t makespan_ns = 0;    ///< last command end (schedule origin 0)
  std::uint64_t serialized_ns = 0;  ///< Σ dur — the no-overlap lower bound
  /// serialized / makespan: 1.0 means fully serialized; micro_overlap's
  /// double-buffered pipeline reaches ~1.78 (matches the measured
  /// in-order/ooo speedup, because an in-order span is exactly Σ dur).
  double overlap_efficiency = 0.0;
  std::uint64_t compute_ns = 0;   ///< Σ kernel occupancy, all lanes
  std::uint64_t transfer_ns = 0;  ///< Σ transfer/copy/fill/peer occupancy

  // Makespan attribution along the critical path (sums to makespan_ns).
  std::uint64_t path_compute_ns = 0;
  std::uint64_t path_transfer_ns = 0;
  std::uint64_t path_idle_ns = 0;

  std::vector<PathStep> critical_path;  ///< schedule order
  std::vector<SlackRow> slack;          ///< id order, one row per command
  std::vector<LaneUtilization> lanes;   ///< tid order

  [[nodiscard]] std::string to_text() const;
  [[nodiscard]] std::string to_tsv() const;
  [[nodiscard]] std::string to_json() const;
};

struct ScheduleOptions {
  /// Peak bandwidth of the modeled interconnect (sim::Interconnect /
  /// DeviceSpec::transfer_bandwidth_gbs); enables lane saturation.  0 =
  /// unknown.
  double transfer_peak_gbs = 0.0;
};

/// Analyzes the command schedule of one parsed trace.  A trace with no
/// device commands yields an all-zero profile (not an error: host-only
/// runs are legal).
[[nodiscard]] ScheduleProfile analyze_schedule(const TraceDoc& doc,
                                               const ScheduleOptions& options =
                                                   {});

}  // namespace eod::prof
