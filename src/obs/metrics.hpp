// Process metrics registry (DESIGN.md §11): named monotonic counters,
// gauges, and log₂-bucket histograms registered on first use and snapshot-
// able at any point.  Instruments are owned by the registry and never
// destroyed, so hot paths hold plain references obtained once:
//
//   static obs::Counter& c = obs::counter("executor.groups_span");
//   c.add(1);
//
// All mutation is relaxed-atomic: increments from any number of threads are
// race-free, and a snapshot observes a (possibly slightly stale) consistent
// total per instrument — the usual trade for lock-free counters.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace eod::obs {

/// Monotonic counter (resets only via reset()).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value / high-water gauge.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  /// Monotone raise: keeps the maximum of all set_max() calls.
  void set_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v && !v_.compare_exchange_weak(cur, v,
                                                std::memory_order_relaxed,
                                                std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log₂-bucket histogram over unsigned values (latencies in ns, sizes in
/// bytes…).  Bucket 0 holds the value 0; bucket i (i >= 1) holds
/// [2^(i-1), 2^i), i.e. bucket_of(v) = bit_width(v).  65 buckets cover the
/// full uint64 range with no saturation.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  static constexpr std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Inclusive lower bound of bucket i; inverts bucket_of at the boundary
  /// (bucket_of(bucket_floor(i)) == i for every bucket).
  static constexpr std::uint64_t bucket_floor(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void record(std::uint64_t v) noexcept {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) / static_cast<double>(n);
  }
  /// Quantile estimate (q in [0, 1]) interpolated from the log₂ buckets:
  /// the target rank is located by cumulative count, then interpolated
  /// linearly across its bucket's value range [floor, 2·floor).  Exact for
  /// q landing in bucket 0 (the value 0); within a factor of 2 elsewhere,
  /// which is the histogram's resolution by construction.  Returns 0 for an
  /// empty histogram.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Registers (or finds) an instrument by name.  A name is bound to exactly
/// one instrument kind for the process lifetime; re-registering under a
/// different kind throws std::logic_error.  References stay valid forever.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// One snapshot row.  Histograms carry their non-empty buckets only.
struct MetricSample {
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;  ///< counter value / histogram sample count
  std::int64_t gauge = 0;
  std::uint64_t sum = 0;  ///< histogram value sum
  /// (bucket index, count) pairs for non-empty histogram buckets.
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
};

/// Snapshot-side twin of Histogram::quantile: interpolates the q-quantile
/// from a sample's non-empty (bucket index, count) pairs.  Renderers and
/// artifact consumers (eod_prof) share this with the live registry path.
[[nodiscard]] double quantile_from_buckets(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& buckets,
    std::uint64_t count, double q);

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< sorted by name

  /// name<TAB>kind<TAB>value rows (histograms add sum + bucket columns).
  [[nodiscard]] std::string to_tsv() const;
  /// {"metrics":{name:{...}, ...}}.
  [[nodiscard]] std::string to_json() const;
  /// Convenience: writes TSV when `path` ends in ".tsv", JSON otherwise.
  bool write_file(const std::string& path) const;
};

/// Snapshot of every registered instrument, sorted by name.
[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Zeroes every registered instrument (registrations persist).
void reset_metrics();

/// Escapes a string for embedding in a JSON literal (shared by the metrics
/// and manifest writers).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace eod::obs
