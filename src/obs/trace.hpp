// Process-wide trace recording in Chrome trace_event format (DESIGN.md §11).
//
// The recorder is built for the hot dispatch path: emission is a relaxed
// enabled-flag check when tracing is off (a single atomic load, no branch
// taken), and when on, one fixed-size TraceEvent copied into a per-thread
// ring buffer behind that thread's private (uncontended) mutex — no heap
// allocation, no global lock, no formatting.  Buffers are only walked when
// the run finishes and `write_chrome_trace()` serialises everything into one
// JSON file loadable in chrome://tracing or Perfetto.
//
// Two timelines coexist in one trace:
//   * pid 1 ("host") — real wall-clock lanes, one per OS thread (executor
//     workers, the measuring caller), timestamped with scibench::now_ns().
//   * pid 2 ("device (modeled)") — the virtual device timeline a Queue
//     advances, one lane per queue, timestamped with the modeled start/end
//     seconds of each command.  The two pids render as separate processes,
//     so the wildly different timebases never overlap.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace eod::obs {

/// Trace-viewer process ids for the two timelines.
inline constexpr std::uint32_t kHostPid = 1;
inline constexpr std::uint32_t kDevicePid = 2;

/// Chrome trace_event phases used by the recorder.
inline constexpr char kPhaseComplete = 'X';
inline constexpr char kPhaseInstant = 'i';
inline constexpr char kPhaseCounter = 'C';

/// Wait-list ids carried per device-command span.  Longer wait lists are
/// truncated (none in the tree today exceed this); the `barrier` flag still
/// recovers same-queue ordering for any dropped edge.
inline constexpr std::size_t kTraceDepCap = 8;

/// One recorded event.  Fixed-size so ring-buffer writes never allocate;
/// names are truncated copies, safe regardless of the caller's lifetime.
struct TraceEvent {
  char name[56] = {};
  const char* cat = "";  ///< static-string category ("executor", "queue", …)
  char ph = kPhaseComplete;
  std::uint32_t pid = kHostPid;
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;   ///< host: absolute now_ns(); device: modeled ns
  std::uint64_t dur_ns = 0;  ///< complete events only
  char arg_name[16] = {};    ///< optional single numeric argument
  double arg_value = 0.0;
  // Command-DAG args, set only on modeled device-command spans (cmd_id != 0
  // is the discriminant).  Serialised into the Chrome event's "args" so the
  // command graph — nodes, wait-list edges, barrier ordering, lane
  // occupancy — is recoverable from the artifact alone (eod_prof's input).
  std::uint64_t cmd_id = 0;     ///< process-wide xcl::Event id
  std::uint64_t busy_ns = 0;    ///< lane occupancy; 0 = the full dur_ns
  std::uint64_t bytes = 0;      ///< payload of transfer/copy/fill commands
  std::uint64_t deps[kTraceDepCap] = {};  ///< wait-list command ids
  std::uint32_t queue_id = 0;   ///< owning queue's process-wide sequence id
  std::uint32_t dep_count = 0;  ///< ids recorded in deps[]
  bool barrier = false;  ///< also ordered after every prior same-queue cmd
};

/// Argument block for one modeled device-command span (see emit_command_span).
struct CommandSpanArgs {
  std::uint64_t cmd_id = 0;
  std::uint32_t queue_id = 0;
  bool barrier = false;
  std::uint64_t busy_ns = 0;  ///< 0 = lane busy for the full duration
  std::uint64_t bytes = 0;
  double energy_j = 0.0;
  std::uint32_t dep_count = 0;
  std::uint64_t deps[kTraceDepCap] = {};
};

namespace detail {
extern bool g_tracing_enabled;  // written only while no emitters run
extern bool g_timed_metrics_enabled;
}  // namespace detail

/// Fast-path check every instrumentation point guards on.  Plain bool:
/// toggled between runs (CLI flags / env), never concurrently with emission.
[[nodiscard]] inline bool tracing_enabled() noexcept {
  return detail::g_tracing_enabled;
}
void set_tracing_enabled(bool enabled) noexcept;

/// Gates metric instrumentation that needs extra clock reads on otherwise
/// clock-free paths (e.g. executor steal latency).  Enabled alongside
/// tracing or --metrics so a plain run pays nothing.
[[nodiscard]] inline bool timed_metrics_enabled() noexcept {
  return detail::g_timed_metrics_enabled;
}
void set_timed_metrics(bool enabled) noexcept;

/// Monotonic host timestamp (scibench::now_ns domain).
[[nodiscard]] std::uint64_t trace_clock_ns() noexcept;

/// Records a complete ('X') span on the calling thread's host lane.
void emit_complete(const char* name, const char* cat, std::uint64_t start_ns,
                   std::uint64_t dur_ns);
/// Same, with one numeric argument rendered into the event's "args".
void emit_complete_arg(const char* name, const char* cat,
                       std::uint64_t start_ns, std::uint64_t dur_ns,
                       const char* arg_name, double arg_value);
/// Records a complete span on an explicit (pid, tid) lane — used for the
/// modeled-device timeline (pid kDevicePid).
void emit_complete_on(std::uint32_t pid, std::uint32_t tid, const char* name,
                      const char* cat, std::uint64_t start_ns,
                      std::uint64_t dur_ns, const char* arg_name,
                      double arg_value);
/// Records one device-command span on a kDevicePid lane, carrying the full
/// command-DAG argument block (command id, queue id, wait-list ids, barrier
/// flag, lane occupancy, payload bytes, energy) in the event's "args".
void emit_command_span(std::uint32_t tid, const char* name, const char* cat,
                       std::uint64_t start_ns, std::uint64_t dur_ns,
                       const CommandSpanArgs& args);
/// Instant event on the calling thread's host lane.
void emit_instant(const char* name, const char* cat);
/// Counter sample (renders as a stacked counter track in the viewer).
void emit_counter(const char* name, double value);

/// Names the calling thread's host lane (e.g. "pool-worker-3").  The first
/// non-empty name sticks; cheap to call unconditionally on thread start.
void set_thread_lane_name(const char* name);

/// Allocates a fresh lane id on the modeled-device pid and names it.
[[nodiscard]] std::uint32_t alloc_device_lane(const std::string& name);

/// Events recorded / dropped (ring overwrote them) since the last reset.
[[nodiscard]] std::uint64_t trace_events_recorded() noexcept;
[[nodiscard]] std::uint64_t trace_events_dropped() noexcept;

/// Serialises every thread's buffered events (plus process/thread metadata)
/// as Chrome trace JSON.  Host timestamps are rebased so the earliest host
/// event starts near zero; device-lane timestamps are kept as modeled ns.
/// Returns false when the file cannot be written.
bool write_chrome_trace(const std::string& path);

/// Drops all buffered events and lane metadata (device lanes included) so
/// consecutive measurements can produce independent traces.
void reset_tracing();

/// The trace path requested by the EOD_TRACE environment escape hatch:
/// unset/"0"/"" → empty; "1" → "eod_trace.json"; anything else is taken as
/// the output path itself.
[[nodiscard]] std::string env_trace_path();

/// RAII complete-span guard.  Costs one enabled check when tracing is off.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat) {
    if (tracing_enabled()) {
      name_ = name;
      cat_ = cat;
      start_ = trace_clock_ns();
      active_ = true;
    }
  }
  /// Span with one numeric argument attached at close.
  TraceSpan(const char* name, const char* cat, const char* arg_name,
            double arg_value)
      : TraceSpan(name, cat) {
    arg_name_ = arg_name;
    arg_value_ = arg_value;
  }
  ~TraceSpan() {
    if (!active_) return;
    const std::uint64_t dur = trace_clock_ns() - start_;
    if (arg_name_ != nullptr) {
      emit_complete_arg(name_, cat_, start_, dur, arg_name_, arg_value_);
    } else {
      emit_complete(name_, cat_, start_, dur);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches/overrides the numeric argument before the span closes.
  void set_arg(const char* name, double value) noexcept {
    arg_name_ = name;
    arg_value_ = value;
  }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  const char* arg_name_ = nullptr;
  double arg_value_ = 0.0;
  std::uint64_t start_ = 0;
  bool active_ = false;
};

}  // namespace eod::obs
