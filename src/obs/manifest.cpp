#include "obs/manifest.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <fstream>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace eod::obs {

std::string unique_artifact_path(const std::string& requested) {
  if (requested.empty()) return requested;
  // Uniqueness only needs atomicity of the increment, not ordering.
  static std::atomic<std::uint64_t> run_counter{0};
  const std::uint64_t n =
      run_counter.fetch_add(1, std::memory_order_relaxed);
#if defined(_WIN32)
  const long pid = 0;
#else
  const long pid = static_cast<long>(getpid());
#endif
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), ".%ld.%llu", pid,
                static_cast<unsigned long long>(n));
  // Insert before the extension of the *filename* component, so directory
  // names containing dots are never split.
  const std::size_t slash = requested.find_last_of("/\\");
  const std::size_t dot = requested.rfind('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return requested + suffix;
  }
  return requested.substr(0, dot) + suffix + requested.substr(dot);
}

const std::string& git_describe() {
  static const std::string desc = [] {
    std::string out = "unknown";
#if !defined(_WIN32)
    // Best-effort provenance: works when the binary runs from inside the
    // repo checkout; silently falls back otherwise.
    if (FILE* p = popen("git describe --always --dirty 2>/dev/null", "r")) {
      char buf[128] = {};
      if (std::fgets(buf, sizeof(buf), p) != nullptr) {
        std::string s(buf);
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
          s.pop_back();
        }
        if (!s.empty()) out = s;
      }
      pclose(p);
    }
#endif
    return out;
  }();
  return desc;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string RunManifest::to_json(const MetricsSnapshot& metrics) const {
  auto str = [](const std::string& s) { return '"' + json_escape(s) + '"'; };
  auto num = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  std::string out = "{\n";
  out += "  \"benchmark\": " + str(benchmark) + ",\n";
  out += "  \"size\": " + str(size) + ",\n";
  out += "  \"device\": " + str(device) + ",\n";
  out += "  \"devices\": [";
  for (std::size_t i = 0; i < devices.size(); ++i) {
    out += (i == 0 ? "" : ", ") + str(devices[i]);
  }
  out += "],\n";
  out += "  \"dispatch\": " + str(dispatch) + ",\n";
  out += "  \"dispatch_env\": " + str(dispatch_env) + ",\n";
  out += "  \"queue\": " + str(queue) + ",\n";
  out += "  \"seed\": " + std::to_string(seed) + ",\n";
  out += "  \"git_describe\": " + str(git_describe) + ",\n";
  out += "  \"timestamp\": " + str(timestamp) + ",\n";
  out += "  \"samples\": " + std::to_string(samples) + ",\n";
  out += "  \"loop_iterations\": " + std::to_string(loop_iterations) + ",\n";
  out += "  \"time_mean_ms\": " + num(time_mean_ms) + ",\n";
  out += "  \"time_median_ms\": " + num(time_median_ms) + ",\n";
  out += "  \"time_cov\": " + num(time_cov) + ",\n";
  out += "  \"energy_median_j\": " + num(energy_median_j) + ",\n";
  out += "  \"validated\": " + std::string(validated ? "true" : "false") +
         ",\n";
  out += "  \"validation_ok\": " +
         std::string(validation_ok ? "true" : "false") + ",\n";
  out += "  \"trace_path\": " + str(trace_path) + ",\n";
  out += "  \"metrics_path\": " + str(metrics_path) + ",\n";
  out += "  \"profile_path\": " + str(profile_path) + ",\n";
  // Embed the metrics snapshot body ({"metrics":{...}}) inline so one file
  // fully describes the run even when no separate --metrics file exists.
  std::string snap = metrics.to_json();
  // Strip the outer braces/newline of the snapshot object and re-indent it
  // as the "metrics" member.
  const std::size_t open = snap.find('{');
  const std::size_t close = snap.rfind('}');
  out += "  " + snap.substr(open + 1, close - open - 1);
  out += "}\n";
  return out;
}

bool RunManifest::write_json(const std::string& path,
                             const MetricsSnapshot& metrics) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << to_json(metrics);
  return f.good();
}

}  // namespace eod::obs
