#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <variant>

namespace eod::obs {

namespace {

using Instrument =
    std::variant<std::unique_ptr<Counter>, std::unique_ptr<Gauge>,
                 std::unique_ptr<Histogram>>;

struct MetricsRegistry {
  std::mutex mu;
  std::map<std::string, Instrument, std::less<>> instruments;
};

MetricsRegistry& registry() {
  static MetricsRegistry* r = new MetricsRegistry;  // leaked: refs are forever
  return *r;
}

template <typename T>
T& find_or_create(std::string_view name, const char* kind_name) {
  MetricsRegistry& r = registry();
  std::scoped_lock lock(r.mu);
  auto it = r.instruments.find(name);
  if (it == r.instruments.end()) {
    it = r.instruments
             .emplace(std::string(name), Instrument{std::make_unique<T>()})
             .first;
  }
  auto* slot = std::get_if<std::unique_ptr<T>>(&it->second);
  if (slot == nullptr) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind than " +
                           kind_name);
  }
  return **slot;
}

const char* kind_name(MetricSample::Kind k) {
  switch (k) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

}  // namespace

double quantile_from_buckets(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& buckets,
    std::uint64_t count, double q) {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  double last_hi = 0.0;
  for (const auto& [i, n] : buckets) {
    if (n == 0) continue;
    const double lo = static_cast<double>(Histogram::bucket_floor(i));
    const double width = i == 0 ? 0.0 : lo;  // bucket i spans [lo, 2·lo)
    if (cum + static_cast<double>(n) >= target) {
      return lo + (target - cum) / static_cast<double>(n) * width;
    }
    cum += static_cast<double>(n);
    last_hi = lo + width;
  }
  // Only reachable when `count` raced ahead of the bucket stores (relaxed
  // snapshot): clamp to the highest observed bucket's upper edge.
  return last_hi;
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  double last_hi = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const double b = static_cast<double>(bucket(i));
    if (b == 0.0) continue;
    const double lo = static_cast<double>(bucket_floor(i));
    const double width = i == 0 ? 0.0 : lo;
    if (cum + b >= target) return lo + (target - cum) / b * width;
    cum += b;
    last_hi = lo + width;
  }
  return last_hi;  // count/bucket race under relaxed ordering; see above
}

Counter& counter(std::string_view name) {
  return find_or_create<Counter>(name, "counter");
}

Gauge& gauge(std::string_view name) {
  return find_or_create<Gauge>(name, "gauge");
}

Histogram& histogram(std::string_view name) {
  return find_or_create<Histogram>(name, "histogram");
}

MetricsSnapshot snapshot_metrics() {
  MetricsRegistry& r = registry();
  std::scoped_lock lock(r.mu);
  MetricsSnapshot snap;
  snap.samples.reserve(r.instruments.size());
  for (const auto& [name, inst] : r.instruments) {
    MetricSample s;
    s.name = name;
    if (const auto* c = std::get_if<std::unique_ptr<Counter>>(&inst)) {
      s.kind = MetricSample::Kind::kCounter;
      s.count = (*c)->value();
    } else if (const auto* g = std::get_if<std::unique_ptr<Gauge>>(&inst)) {
      s.kind = MetricSample::Kind::kGauge;
      s.gauge = (*g)->value();
    } else {
      const auto& h = *std::get<std::unique_ptr<Histogram>>(inst);
      s.kind = MetricSample::Kind::kHistogram;
      s.count = h.count();
      s.sum = h.sum();
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        if (const std::uint64_t n = h.bucket(i); n != 0) {
          s.buckets.emplace_back(i, n);
        }
      }
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;  // std::map iteration is already name-sorted
}

void reset_metrics() {
  MetricsRegistry& r = registry();
  std::scoped_lock lock(r.mu);
  for (auto& [_, inst] : r.instruments) {
    if (auto* c = std::get_if<std::unique_ptr<Counter>>(&inst)) {
      (*c)->reset();
    } else if (auto* g = std::get_if<std::unique_ptr<Gauge>>(&inst)) {
      (*g)->reset();
    } else {
      std::get<std::unique_ptr<Histogram>>(inst)->reset();
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

namespace {

std::string format_quantile(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_tsv() const {
  std::string out = "name\tkind\tvalue\tsum\tp50\tp95\tp99\tbuckets\n";
  for (const MetricSample& s : samples) {
    out += s.name;
    out += '\t';
    out += kind_name(s.kind);
    out += '\t';
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kHistogram:
        out += std::to_string(s.count);
        break;
      case MetricSample::Kind::kGauge:
        out += std::to_string(s.gauge);
        break;
    }
    out += '\t';
    out += std::to_string(s.sum);
    const bool hist = s.kind == MetricSample::Kind::kHistogram;
    for (const double q : {0.50, 0.95, 0.99}) {
      out += '\t';
      out += hist ? format_quantile(quantile_from_buckets(s.buckets, s.count, q))
                  : "0";
    }
    out += '\t';
    bool first = true;
    for (const auto& [bucket, n] : s.buckets) {
      if (!first) out += ' ';
      first = false;
      out += std::to_string(Histogram::bucket_floor(bucket));
      out += ':';
      out += std::to_string(n);
    }
    out += '\n';
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"metrics\":{";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ',';
    first = false;
    out += "\n  \"";
    out += json_escape(s.name);
    out += "\":{\"kind\":\"";
    out += kind_name(s.kind);
    out += '"';
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        out += ",\"value\":" + std::to_string(s.count);
        break;
      case MetricSample::Kind::kGauge:
        out += ",\"value\":" + std::to_string(s.gauge);
        break;
      case MetricSample::Kind::kHistogram: {
        out += ",\"count\":" + std::to_string(s.count);
        out += ",\"sum\":" + std::to_string(s.sum);
        out += ",\"p50\":" +
               format_quantile(quantile_from_buckets(s.buckets, s.count, 0.50));
        out += ",\"p95\":" +
               format_quantile(quantile_from_buckets(s.buckets, s.count, 0.95));
        out += ",\"p99\":" +
               format_quantile(quantile_from_buckets(s.buckets, s.count, 0.99));
        out += ",\"buckets\":{";
        bool bfirst = true;
        for (const auto& [bucket, n] : s.buckets) {
          if (!bfirst) out += ',';
          bfirst = false;
          out += '"';
          out += std::to_string(Histogram::bucket_floor(bucket));
          out += "\":" + std::to_string(n);
        }
        out += '}';
        break;
      }
    }
    out += '}';
  }
  out += "\n}}\n";
  return out;
}

bool MetricsSnapshot::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  const bool tsv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".tsv") == 0;
  f << (tsv ? to_tsv() : to_json());
  return f.good();
}

}  // namespace eod::obs
