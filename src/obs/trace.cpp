#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#include "scibench/timer.hpp"

namespace eod::obs {

namespace detail {
bool g_tracing_enabled = false;
bool g_timed_metrics_enabled = false;
}  // namespace detail

namespace {

/// Events kept per thread before the ring wraps.  ~200 B each (the DAG
/// argument block roughly doubled the pre-profiler event), so the default
/// is ~25 MiB per active lane — enough for every tiny/small run while
/// bounding a runaway large trace.  Overridable via EOD_TRACE_EVENTS.
std::size_t ring_capacity() {
  static const std::size_t cap = [] {
    if (const char* env = std::getenv("EOD_TRACE_EVENTS")) {
      const unsigned long long v = std::strtoull(env, nullptr, 10);
      if (v >= 1024) return static_cast<std::size_t>(v);
    }
    return std::size_t{1} << 17;
  }();
  return cap;
}

/// One host lane: a ring of events owned by one thread.  The mutex is
/// normally uncontended (only its owner appends); the flusher takes it to
/// read a consistent snapshot, which makes the recorder clean under tsan.
struct Lane {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::uint64_t total = 0;  ///< events ever emitted (>= ring.size() => wrap)
  std::uint32_t tid = 0;
  std::string name;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Lane>> lanes;     ///< every host lane ever made
  std::vector<std::string> device_lanes;        ///< names; tid = index
  std::uint32_t next_tid = 1;
  std::uint64_t origin_ns = 0;  ///< host rebase point (set on enable)
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: lanes outlive thread exit
  return *r;
}

Lane& thread_lane() {
  thread_local std::shared_ptr<Lane> lane = [] {
    auto l = std::make_shared<Lane>();
    Registry& r = registry();
    std::scoped_lock lock(r.mu);
    l->tid = r.next_tid++;
    r.lanes.push_back(l);
    return l;
  }();
  return *lane;
}

void append(Lane& lane, const TraceEvent& e) {
  std::scoped_lock lock(lane.mu);
  if (lane.ring.empty()) lane.ring.resize(ring_capacity());
  lane.ring[lane.total % lane.ring.size()] = e;
  ++lane.total;
}

void fill_name(TraceEvent& e, const char* name) {
  std::strncpy(e.name, name, sizeof(e.name) - 1);
}

void fill_arg(TraceEvent& e, const char* arg_name, double arg_value) {
  std::strncpy(e.arg_name, arg_name, sizeof(e.arg_name) - 1);
  e.arg_value = arg_value;
}

void json_escape_into(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void write_event_json(std::string& out, const TraceEvent& e,
                      std::uint64_t host_origin_ns) {
  // Host timestamps are rebased to the enable point; device-lane events
  // already live on their own modeled timeline starting at zero.
  const std::uint64_t ts =
      e.pid == kDevicePid
          ? e.ts_ns
          : (e.ts_ns >= host_origin_ns ? e.ts_ns - host_origin_ns : 0);
  char buf[224];  // sized for the widest args block (DAG fields, %.17g)
  out += "{\"name\":\"";
  json_escape_into(out, e.name);
  out += "\",\"cat\":\"";
  json_escape_into(out, e.cat);
  std::snprintf(buf, sizeof(buf),
                "\",\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f", e.ph,
                e.pid, e.tid, static_cast<double>(ts) / 1e3);
  out += buf;
  if (e.ph == kPhaseComplete) {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                  static_cast<double>(e.dur_ns) / 1e3);
    out += buf;
  }
  if (e.ph == kPhaseCounter) {
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.17g}",
                  e.arg_value);
    out += buf;
  } else if (e.cmd_id != 0) {
    // Device-command span: the DAG argument block.  "deps" carries the
    // command's wait-list ids; "barrier" marks same-queue total ordering
    // (in-order chain / ooo implicit barrier); "busy_ns" is the lane
    // occupancy when shorter than the duration (pipelined link transfers).
    std::snprintf(buf, sizeof(buf),
                  ",\"args\":{\"energy_j\":%.17g,\"cmd\":%llu,\"q\":%u,"
                  "\"barrier\":%u,\"busy_ns\":%llu,\"bytes\":%llu,"
                  "\"deps\":[",
                  e.arg_value, static_cast<unsigned long long>(e.cmd_id),
                  e.queue_id, e.barrier ? 1u : 0u,
                  static_cast<unsigned long long>(e.busy_ns),
                  static_cast<unsigned long long>(e.bytes));
    out += buf;
    for (std::uint32_t i = 0; i < e.dep_count && i < kTraceDepCap; ++i) {
      std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : ",",
                    static_cast<unsigned long long>(e.deps[i]));
      out += buf;
    }
    out += "]}";
  } else if (e.arg_name[0] != '\0') {
    out += ",\"args\":{\"";
    json_escape_into(out, e.arg_name);
    std::snprintf(buf, sizeof(buf), "\":%.17g}", e.arg_value);
    out += buf;
  }
  out += '}';
}

void write_metadata_json(std::string& out, std::uint32_t pid,
                         std::uint32_t tid, const char* kind,
                         const std::string& name) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                "\"args\":{\"name\":\"",
                kind, pid, tid);
  out += buf;
  json_escape_into(out, name.c_str());
  out += "\"}}";
}

}  // namespace

void set_tracing_enabled(bool enabled) noexcept {
  if (enabled && !detail::g_tracing_enabled) {
    registry().origin_ns = scibench::now_ns();
  }
  detail::g_tracing_enabled = enabled;
}

void set_timed_metrics(bool enabled) noexcept {
  detail::g_timed_metrics_enabled = enabled;
}

std::uint64_t trace_clock_ns() noexcept { return scibench::now_ns(); }

void emit_complete(const char* name, const char* cat, std::uint64_t start_ns,
                   std::uint64_t dur_ns) {
  TraceEvent e;
  fill_name(e, name);
  e.cat = cat;
  e.ph = kPhaseComplete;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  Lane& lane = thread_lane();
  e.tid = lane.tid;
  append(lane, e);
}

void emit_complete_arg(const char* name, const char* cat,
                       std::uint64_t start_ns, std::uint64_t dur_ns,
                       const char* arg_name, double arg_value) {
  TraceEvent e;
  fill_name(e, name);
  e.cat = cat;
  e.ph = kPhaseComplete;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  fill_arg(e, arg_name, arg_value);
  Lane& lane = thread_lane();
  e.tid = lane.tid;
  append(lane, e);
}

void emit_complete_on(std::uint32_t pid, std::uint32_t tid, const char* name,
                      const char* cat, std::uint64_t start_ns,
                      std::uint64_t dur_ns, const char* arg_name,
                      double arg_value) {
  TraceEvent e;
  fill_name(e, name);
  e.cat = cat;
  e.ph = kPhaseComplete;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  if (arg_name != nullptr) fill_arg(e, arg_name, arg_value);
  append(thread_lane(), e);
}

void emit_command_span(std::uint32_t tid, const char* name, const char* cat,
                       std::uint64_t start_ns, std::uint64_t dur_ns,
                       const CommandSpanArgs& args) {
  TraceEvent e;
  fill_name(e, name);
  e.cat = cat;
  e.ph = kPhaseComplete;
  e.pid = kDevicePid;
  e.tid = tid;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  fill_arg(e, "energy_j", args.energy_j);
  e.cmd_id = args.cmd_id;
  e.queue_id = args.queue_id;
  e.barrier = args.barrier;
  e.busy_ns = args.busy_ns;
  e.bytes = args.bytes;
  e.dep_count = std::min<std::uint32_t>(args.dep_count, kTraceDepCap);
  for (std::uint32_t i = 0; i < e.dep_count; ++i) e.deps[i] = args.deps[i];
  append(thread_lane(), e);
}

void emit_instant(const char* name, const char* cat) {
  TraceEvent e;
  fill_name(e, name);
  e.cat = cat;
  e.ph = kPhaseInstant;
  e.ts_ns = trace_clock_ns();
  Lane& lane = thread_lane();
  e.tid = lane.tid;
  append(lane, e);
}

void emit_counter(const char* name, double value) {
  TraceEvent e;
  fill_name(e, name);
  e.cat = "counter";
  e.ph = kPhaseCounter;
  e.ts_ns = trace_clock_ns();
  e.arg_value = value;
  Lane& lane = thread_lane();
  e.tid = lane.tid;
  append(lane, e);
}

void set_thread_lane_name(const char* name) {
  Lane& lane = thread_lane();
  std::scoped_lock lock(lane.mu);
  if (lane.name.empty()) lane.name = name;
}

std::uint32_t alloc_device_lane(const std::string& name) {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  r.device_lanes.push_back(name);
  return static_cast<std::uint32_t>(r.device_lanes.size() - 1);
}

std::uint64_t trace_events_recorded() noexcept {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& lane : r.lanes) {
    std::scoped_lock lane_lock(lane->mu);
    total += lane->total;
  }
  return total;
}

std::uint64_t trace_events_dropped() noexcept {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  std::uint64_t dropped = 0;
  for (const auto& lane : r.lanes) {
    std::scoped_lock lane_lock(lane->mu);
    if (!lane->ring.empty() && lane->total > lane->ring.size()) {
      dropped += lane->total - lane->ring.size();
    }
  }
  return dropped;
}

bool write_chrome_trace(const std::string& path) {
  Registry& r = registry();
  std::string out;
  out.reserve(std::size_t{1} << 20);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  std::scoped_lock lock(r.mu);
  comma();
  write_metadata_json(out, kHostPid, 0, "process_name", "host");
  comma();
  write_metadata_json(out, kDevicePid, 0, "process_name",
                      "device (modeled)");
  for (std::size_t d = 0; d < r.device_lanes.size(); ++d) {
    comma();
    write_metadata_json(out, kDevicePid, static_cast<std::uint32_t>(d),
                        "thread_name", r.device_lanes[d]);
  }
  for (const auto& lane : r.lanes) {
    std::scoped_lock lane_lock(lane->mu);
    if (lane->total == 0) continue;
    comma();
    write_metadata_json(
        out, kHostPid, lane->tid, "thread_name",
        lane->name.empty() ? "thread-" + std::to_string(lane->tid)
                           : lane->name);
    // Ring order: when wrapped, the oldest surviving event sits at
    // total % size.
    const std::size_t size = lane->ring.size();
    const std::size_t kept = std::min<std::uint64_t>(lane->total, size);
    const std::size_t start =
        lane->total > size ? lane->total % size : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      comma();
      write_event_json(out, lane->ring[(start + i) % size], r.origin_ns);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";

  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << out;
  return f.good();
}

void reset_tracing() {
  Registry& r = registry();
  std::scoped_lock lock(r.mu);
  for (const auto& lane : r.lanes) {
    std::scoped_lock lane_lock(lane->mu);
    lane->total = 0;
  }
  r.device_lanes.clear();
  r.origin_ns = scibench::now_ns();
}

std::string env_trace_path() {
  const char* env = std::getenv("EOD_TRACE");
  if (env == nullptr || env[0] == '\0' ||
      (env[0] == '0' && env[1] == '\0')) {
    return {};
  }
  if (env[0] == '1' && env[1] == '\0') return "eod_trace.json";
  return env;
}

}  // namespace eod::obs
