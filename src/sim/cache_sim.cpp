#include "sim/cache_sim.hpp"

#include <optional>
#include <stdexcept>

namespace eod::sim {

namespace {
constexpr bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

CacheLevel::CacheLevel(std::size_t size_bytes, unsigned line_bytes,
                       unsigned associativity)
    : line_bytes_(line_bytes), assoc_(associativity) {
  if (line_bytes == 0 || !is_pow2(line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (associativity == 0) {
    throw std::invalid_argument("associativity must be positive");
  }
  const std::size_t lines = size_bytes / line_bytes;
  if (lines == 0 || lines % assoc_ != 0) {
    throw std::invalid_argument("cache size/line/assoc mismatch");
  }
  sets_ = lines / assoc_;
  ways_.resize(lines);
}

bool CacheLevel::access(std::uint64_t address) {
  ++clock_;
  const std::uint64_t line = address / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line % sets_);
  Way* base = &ways_[set * assoc_];

  Way* victim = base;
  for (unsigned w = 0; w < assoc_; ++w) {
    if (base[w].tag == line) {
      base[w].lru = clock_;
      ++hits_;
      return true;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  victim->tag = line;
  victim->lru = clock_;
  ++misses_;
  return false;
}

CacheHierarchy::CacheHierarchy(const DeviceSpec& spec, unsigned tlb_entries,
                               unsigned page_bytes)
    : l1_(spec.l1.size_bytes, spec.l1.line_bytes, spec.l1.associativity),
      l2_(spec.l2.size_bytes, spec.l2.line_bytes, spec.l2.associativity),
      // Data TLBs are (near-)fully associative; set-indexing one would
      // alias page-aligned array strides into false conflicts.
      tlb_(static_cast<std::size_t>(tlb_entries) * page_bytes, page_bytes,
           tlb_entries),
      page_bytes_(page_bytes) {
  if (spec.l3.size_bytes != 0) {
    l3_.emplace(spec.l3.size_bytes, spec.l3.line_bytes,
                spec.l3.associativity);
  }
}

void CacheHierarchy::access(std::uint64_t address, std::uint32_t bytes,
                            bool is_write) {
  (void)is_write;  // write-allocate: the miss path is identical to reads
  const unsigned line = l1_.line_bytes();
  std::uint64_t first = address / line;
  const std::uint64_t last = (address + (bytes == 0 ? 0 : bytes - 1)) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    const std::uint64_t a = l * line;
    ++counters_.total_accesses;
    if (!tlb_.access(a / page_bytes_ * page_bytes_)) ++counters_.tlb_dm;
    if (l1_.access(a)) continue;
    ++counters_.l1_dcm;
    if (l2_.access(a)) continue;
    ++counters_.l2_dcm;
    if (l3_.has_value()) {
      if (l3_->access(a)) continue;
      ++counters_.l3_tcm;
    } else {
      ++counters_.l3_tcm;  // no L3: every L2 miss goes to DRAM
    }
  }
}

void CacheHierarchy::replay(const MemoryTrace& trace) {
  for (const MemAccess& a : trace) access(a.address, a.bytes, a.is_write);
}

void CacheHierarchy::reset() {
  l1_.reset_counters();
  l2_.reset_counters();
  if (l3_) l3_->reset_counters();
  tlb_.reset_counters();
  counters_ = {};
}

double CacheHierarchy::l1_miss_rate() const noexcept {
  return counters_.total_accesses == 0
             ? 0.0
             : static_cast<double>(counters_.l1_dcm) /
                   counters_.total_accesses;
}
double CacheHierarchy::l2_miss_rate() const noexcept {
  return counters_.total_accesses == 0
             ? 0.0
             : static_cast<double>(counters_.l2_dcm) /
                   counters_.total_accesses;
}
double CacheHierarchy::l3_miss_rate() const noexcept {
  return counters_.total_accesses == 0
             ? 0.0
             : static_cast<double>(counters_.l3_tcm) /
                   counters_.total_accesses;
}

}  // namespace eod::sim
