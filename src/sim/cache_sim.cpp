#include "sim/cache_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace eod::sim {

namespace {
constexpr bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

constexpr unsigned log2_pow2(std::size_t x) {
  unsigned shift = 0;
  while ((std::size_t{1} << shift) < x) ++shift;
  return shift;
}
}  // namespace

CacheLevel::CacheLevel(std::size_t size_bytes, unsigned line_bytes,
                       unsigned associativity)
    : line_bytes_(line_bytes), assoc_(associativity) {
  if (line_bytes == 0 || !is_pow2(line_bytes)) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (associativity == 0) {
    throw std::invalid_argument("associativity must be positive");
  }
  const std::size_t lines = size_bytes / line_bytes;
  if (lines == 0 || lines % assoc_ != 0) {
    throw std::invalid_argument("cache size/line/assoc mismatch");
  }
  line_shift_ = log2_pow2(line_bytes);
  sets_ = lines / assoc_;
  sets_pow2_ = is_pow2(sets_);
  set_mask_ = sets_pow2_ ? sets_ - 1 : 0;
  tags_.assign(lines, ~0ull);
  stamps_.assign(lines, 0);
}

CacheHierarchy::CacheHierarchy(const DeviceSpec& spec, unsigned tlb_entries,
                               unsigned page_bytes)
    : l1_(spec.l1.size_bytes, spec.l1.line_bytes, spec.l1.associativity),
      l2_(spec.l2.size_bytes, spec.l2.line_bytes, spec.l2.associativity),
      // Data TLBs are (near-)fully associative; set-indexing one would
      // alias page-aligned array strides into false conflicts.
      tlb_(static_cast<std::size_t>(tlb_entries) * page_bytes, page_bytes,
           tlb_entries),
      page_bytes_(page_bytes) {
  if (spec.l3.size_bytes != 0) {
    l3_.emplace(spec.l3.size_bytes, spec.l3.line_bytes,
                spec.l3.associativity);
  }
  page_shift_ = log2_pow2(page_bytes);
}

void CacheHierarchy::access(std::uint64_t address, std::uint32_t bytes,
                            bool is_write) {
  (void)is_write;  // write-allocate: the miss path is identical to reads
  const unsigned shift = l1_.line_shift();
  const std::uint64_t first = address >> shift;
  const std::uint64_t last =
      (address + (bytes == 0 ? 0 : bytes - 1)) >> shift;
  for (std::uint64_t l = first; l <= last; ++l) {
    const std::uint64_t a = l << shift;
    ++counters_.total_accesses;
    if (!tlb_.access(a >> page_shift_ << page_shift_)) ++counters_.tlb_dm;
    if (l1_.access(a)) continue;
    ++counters_.l1_dcm;
    if (l2_.access(a)) continue;
    ++counters_.l2_dcm;
    if (l3_.has_value()) {
      if (l3_->access(a)) continue;
      ++counters_.l3_tcm;
    } else {
      ++counters_.l3_tcm;  // no L3: every L2 miss goes to DRAM
    }
  }
}

void CacheHierarchy::replay(const MemoryTrace& trace) {
  consume(trace.data(), trace.size());
}

void CacheHierarchy::consume(const MemAccess* page, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    access(page[i].address, page[i].bytes, page[i].is_write);
  }
}

void CacheHierarchy::consume_coalesced(const CoalescedAccess* page,
                                       std::size_t n) {
  // Sequential fast path: one fused walk updates caches and TLB together,
  // with every accumulator in a local -- the compiler cannot prove the
  // member counters do not alias `page`, so member updates inside the loop
  // would be reloaded on every record.  Levels share one clock here; each
  // level only ever compares stamps within one of its own sets, so any
  // strictly-increasing stamp source leaves the counters bit-identical to
  // the split cache/TLB walks (verified by tests/cache_replay_test.cpp).
  const unsigned shift = l1_.line_shift();
  const unsigned line_to_page = page_shift_ - shift;
  const std::uint64_t safe_span = l1_.capacity_lines();
  const std::uint64_t tlb_capacity = tlb_.capacity_lines();
  CacheLevel* const l3 = l3_.has_value() ? &*l3_ : nullptr;
  std::uint64_t clock =
      std::max({l1_.clock(), l2_.clock(), l3 ? l3->clock() : std::uint64_t{0},
                tlb_.clock()});
  std::uint64_t total = 0, l1h = 0, l1m = 0, l2h = 0, l2m = 0, l3h = 0,
                l3m = 0, tlbh = 0, tlbm = 0, l3t = 0;
  std::uint64_t last_line = ~0ull, last_page = ~0ull;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t address = page[i].address;
    const std::uint32_t bytes = page[i].bytes;
    const std::uint32_t repeats = page[i].repeats;
    const std::uint64_t first = address >> shift;
    const std::uint64_t last =
        (address + (bytes == 0 ? 0 : bytes - 1)) >> shift;
    const std::uint64_t span = last - first + 1;
    const std::uint64_t span_pages =
        (last >> line_to_page) - (first >> line_to_page) + 1;
    // Repeat fast-credit precondition (see replay_cache_shard); expanding
    // either half expands both -- the expansion simulates exactly the
    // guaranteed hits the credit would have claimed.
    const std::uint64_t passes =
        (repeats != 0 && (span > safe_span || span_pages > tlb_capacity))
            ? std::uint64_t{repeats} + 1
            : 1;
    for (std::uint64_t p = 0; p < passes; ++p) {
      for (std::uint64_t l = first; l <= last; ++l) {
        ++total;
        if (l == last_line) {
          // Re-touch of the MRU line: guaranteed L1 and TLB hits.
          ++l1h;
          ++tlbh;
          continue;
        }
        last_line = l;
        ++clock;
        const std::uint64_t page_no = l >> line_to_page;
        if (page_no == last_page) {
          ++tlbh;
        } else {
          last_page = page_no;
          if (tlb_.touch_line(page_no, clock)) {
            ++tlbh;
          } else {
            ++tlbm;
          }
        }
        if (l1_.touch_line(l, clock)) {
          ++l1h;
          continue;
        }
        ++l1m;
        const std::uint64_t a = l << shift;
        if (l2_.touch_line(l2_.line_index(a), clock)) {
          ++l2h;
          continue;
        }
        ++l2m;
        if (l3 != nullptr) {
          if (l3->touch_line(l3->line_index(a), clock)) {
            ++l3h;
            continue;
          }
          ++l3m;
        }
        ++l3t;
      }
    }
    if (passes == 1 && repeats != 0) {
      const std::uint64_t extra = std::uint64_t{repeats} * span;
      total += extra;
      l1h += extra;
      tlbh += extra;
    }
  }
  counters_.total_accesses += total;
  counters_.l1_dcm += l1m;
  counters_.l2_dcm += l2m;
  counters_.l3_tcm += l3t;
  counters_.tlb_dm += tlbm;
  l1_.credit(l1h, l1m);
  l2_.credit(l2h, l2m);
  if (l3 != nullptr) l3->credit(l3h, l3m);
  tlb_.credit(tlbh, tlbm);
  l1_.advance_clock(clock);
  l2_.advance_clock(clock);
  if (l3 != nullptr) l3->advance_clock(clock);
  tlb_.advance_clock(clock);
}

ReplayShardCounters CacheHierarchy::make_shard() const noexcept {
  ReplayShardCounters acc;
  acc.clock = std::max({l1_.clock(), l2_.clock(),
                        l3_ ? l3_->clock() : std::uint64_t{0},
                        tlb_.clock()});
  return acc;
}

void CacheHierarchy::replay_cache_shard(const CoalescedAccess* page,
                                        std::size_t n, unsigned shard,
                                        unsigned shard_count,
                                        ReplayShardCounters& acc) {
  const unsigned shift = l1_.line_shift();
  // Repeat fast-credit precondition: after one expansion of the span, every
  // span line is still L1-resident (consecutive lines put at most
  // ceil(span/sets) lines in a set, and older non-span lines are always the
  // LRU victims while that stays <= associativity).  Spans emitted by
  // TraceWriter are <= 2 lines; this guard keeps the path exact for
  // arbitrary hand-built records too.
  const std::uint64_t safe_span = l1_.capacity_lines();
  CacheLevel* const l3 = l3_.has_value() ? &*l3_ : nullptr;
  // Work in locals: member/acc updates inside the loop would be reloaded
  // every record (the compiler cannot prove they do not alias `page`).
  std::uint64_t clock = acc.clock;
  std::uint64_t last_line = acc.last_line;
  std::uint64_t total = 0, l1h = 0, l1m = 0, l2h = 0, l2m = 0, l3h = 0,
                l3m = 0, l3t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const CoalescedAccess& e = page[i];
    const std::uint64_t first = e.address >> shift;
    const std::uint64_t last =
        (e.address + (e.bytes == 0 ? 0 : e.bytes - 1)) >> shift;
    const std::uint64_t span = last - first + 1;
    const std::uint64_t passes =
        (e.repeats != 0 && span > safe_span) ? std::uint64_t{e.repeats} + 1
                                             : 1;
    std::uint64_t my_lines = 0;
    for (std::uint64_t p = 0; p < passes; ++p) {
      my_lines = 0;
      for (std::uint64_t l = first; l <= last; ++l) {
        if (shard_count > 1 && (l % shard_count) != shard) continue;
        ++my_lines;
        ++total;
        if (l == last_line) {
          // Re-touch of this shard's most recent line: guaranteed L1 hit
          // (only other sets were touched in between); the skipped stamp
          // refresh cannot change any relative LRU order.
          ++l1h;
          continue;
        }
        last_line = l;
        const std::uint64_t a = l << shift;
        if (l1_.touch_line(l, ++clock)) {
          ++l1h;
          continue;
        }
        ++l1m;
        if (l2_.touch_line(l2_.line_index(a), clock)) {
          ++l2h;
          continue;
        }
        ++l2m;
        if (l3 != nullptr) {
          if (l3->touch_line(l3->line_index(a), clock)) {
            ++l3h;
            continue;
          }
          ++l3m;
        }
        ++l3t;
      }
    }
    if (passes == 1 && e.repeats != 0) {
      // Every repeat re-touches the span's lines while they are still the
      // most recently used lines of their sets: guaranteed L1 hits.
      total += std::uint64_t{e.repeats} * my_lines;
      l1h += std::uint64_t{e.repeats} * my_lines;
    }
  }
  acc.clock = clock;
  acc.last_line = last_line;
  acc.counters.total_accesses += total;
  acc.counters.l1_dcm += l1m;
  acc.counters.l2_dcm += l2m;
  acc.counters.l3_tcm += l3t;
  acc.l1_hits += l1h;
  acc.l1_misses += l1m;
  acc.l2_hits += l2h;
  acc.l2_misses += l2m;
  acc.l3_hits += l3h;
  acc.l3_misses += l3m;
}

void CacheHierarchy::replay_tlb_shard(const CoalescedAccess* page,
                                      std::size_t n,
                                      ReplayShardCounters& acc) {
  const unsigned shift = l1_.line_shift();
  const unsigned line_to_page = page_shift_ - shift;
  const std::uint64_t tlb_capacity = tlb_.capacity_lines();
  // Locals for the same aliasing reason as replay_cache_shard.
  std::uint64_t clock = acc.clock;
  std::uint64_t last_page = acc.last_page;
  std::uint64_t tlbh = 0, tlbm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const CoalescedAccess& e = page[i];
    const std::uint64_t first = e.address >> shift;
    const std::uint64_t last =
        (e.address + (e.bytes == 0 ? 0 : e.bytes - 1)) >> shift;
    const std::uint64_t span = last - first + 1;
    const std::uint64_t span_pages =
        (last >> line_to_page) - (first >> line_to_page) + 1;
    const std::uint64_t passes =
        (e.repeats != 0 && span_pages > tlb_capacity)
            ? std::uint64_t{e.repeats} + 1
            : 1;
    for (std::uint64_t p = 0; p < passes; ++p) {
      for (std::uint64_t l = first; l <= last; ++l) {
        const std::uint64_t page_no = l >> line_to_page;
        if (page_no == last_page) {
          ++tlbh;  // consecutive same-page touch: guaranteed hit
          continue;
        }
        last_page = page_no;
        if (tlb_.touch_line(page_no, ++clock)) {
          ++tlbh;
        } else {
          ++tlbm;
        }
      }
    }
    if (passes == 1 && e.repeats != 0) {
      // Repeats re-touch pages that are still TLB-resident (span fits).
      tlbh += std::uint64_t{e.repeats} * span;
    }
  }
  acc.clock = clock;
  acc.last_page = last_page;
  acc.tlb_hits += tlbh;
  acc.tlb_misses += tlbm;
  acc.counters.tlb_dm += tlbm;
}

void CacheHierarchy::fold_shard(const ReplayShardCounters& acc) {
  counters_.total_accesses += acc.counters.total_accesses;
  counters_.l1_dcm += acc.counters.l1_dcm;
  counters_.l2_dcm += acc.counters.l2_dcm;
  counters_.l3_tcm += acc.counters.l3_tcm;
  counters_.tlb_dm += acc.counters.tlb_dm;
  l1_.credit(acc.l1_hits, acc.l1_misses);
  l2_.credit(acc.l2_hits, acc.l2_misses);
  if (l3_) l3_->credit(acc.l3_hits, acc.l3_misses);
  tlb_.credit(acc.tlb_hits, acc.tlb_misses);
  l1_.advance_clock(acc.clock);
  l2_.advance_clock(acc.clock);
  if (l3_) l3_->advance_clock(acc.clock);
  tlb_.advance_clock(acc.clock);
}

unsigned CacheHierarchy::max_replay_shards() const noexcept {
  // Partitioning lines by (line % shard_count) is exact only when one line
  // index addresses every level and shard_count divides every set count:
  // then lines of shard phi touch only sets congruent to phi at each level,
  // so shards never share replacement state.
  if (l2_.line_bytes() != l1_.line_bytes()) return 1;
  if (l3_ && l3_->line_bytes() != l1_.line_bytes()) return 1;
  std::size_t sets = l1_.sets() | l2_.sets();
  if (l3_) sets |= l3_->sets();
  const std::size_t lowbit = sets & (~sets + 1);
  return static_cast<unsigned>(std::min<std::size_t>(lowbit, 64));
}

void CacheHierarchy::reset() {
  l1_.reset_counters();
  l2_.reset_counters();
  if (l3_) l3_->reset_counters();
  tlb_.reset_counters();
  counters_ = {};
}

double CacheHierarchy::l1_miss_rate() const noexcept {
  return counters_.total_accesses == 0
             ? 0.0
             : static_cast<double>(counters_.l1_dcm) /
                   counters_.total_accesses;
}
double CacheHierarchy::l2_miss_rate() const noexcept {
  return counters_.total_accesses == 0
             ? 0.0
             : static_cast<double>(counters_.l2_dcm) /
                   counters_.total_accesses;
}
double CacheHierarchy::l3_miss_rate() const noexcept {
  return counters_.total_accesses == 0
             ? 0.0
             : static_cast<double>(counters_.l3_tcm) /
                   counters_.total_accesses;
}

}  // namespace eod::sim
