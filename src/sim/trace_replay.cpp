#include "sim/trace_replay.hpp"

#include <algorithm>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "xcl/thread_pool.hpp"

namespace eod::sim {

namespace {

// Replay-engine instruments (DESIGN.md §11): page-buffer fan-outs and the
// coalesced entries they carried, accumulated process-wide.
obs::Counter& g_pages_coalesced = obs::counter("replay.pages_coalesced");
obs::Counter& g_coalesced_entries = obs::counter("replay.coalesced_entries");
obs::Counter& g_replay_passes = obs::counter("replay.passes");

}  // namespace

void TraceWriter::flush() {
  if (coalesced_sink_ != nullptr) {
    coalesced_sink_->consume(cpage_.data(), count_);
    // The merge-candidate entry left the buffer; forget its span.
    last_first_ = ~0ull;
    last_last_ = ~0ull;
  } else {
    raw_sink_->consume(rpage_.data(), count_);
  }
  count_ = 0;
}

void TraceWriter::emit_run(std::uint64_t base, std::uint32_t elem_bytes,
                          std::uint64_t count, bool is_write) {
  if (coalesced_sink_ == nullptr || elem_bytes == 0 ||
      kCoalesceLineBytes % elem_bytes != 0 || base % elem_bytes != 0) {
    for (std::uint64_t i = 0; i < count; ++i) {
      emit(base + i * elem_bytes, elem_bytes, is_write);
    }
    return;
  }
  // Elements tile 64B lines exactly, so all elements inside one line share
  // one line span: record the line's first element and fold the rest into
  // its repeat count.  The per-line element count is a constant of the run
  // (the one division below); full interior lines are written straight into
  // the page buffer, bypassing emit()'s per-access span bookkeeping.
  const std::uint64_t per_line = kCoalesceLineBytes / elem_bytes;
  std::uint64_t i = 0;
  // Head: partial first line (base may start mid-line) via the slow path,
  // which also handles a possible merge into the current tail record.
  {
    const std::uint64_t line_end =
        ((base >> kCoalesceLineShift) + 1) << kCoalesceLineShift;
    std::uint64_t head = (line_end - base) / elem_bytes;
    if (head > count) head = count;
    if (head < per_line || count < per_line) {
      for (; i < head; ++i) emit(base + i * elem_bytes, elem_bytes, is_write);
    }
  }
  const std::uint32_t rep = static_cast<std::uint32_t>(per_line - 1);
  CoalescedAccess* page = cpage_.data();
  std::size_t n = count_;
  const std::uint64_t interior_start = i;
  std::uint64_t addr = base + i * elem_bytes;
  // Interior: one record per fully-covered line, emitted with local
  // cursors (flushing restores them) -- no per-element work at all.
  for (; count - i >= per_line; i += per_line, addr += kCoalesceLineBytes) {
    if (n == kTracePageAccesses) {
      count_ = n;
      flush();
      n = 0;
    }
    page[n++] = {addr, elem_bytes, rep};
  }
  count_ = n;
  accesses_ += i - interior_start;
  if (i != interior_start) {
    // The tail record is a full line: a following equal-span emit() may
    // still merge into it.
    last_first_ = (addr - kCoalesceLineBytes) >> kCoalesceLineShift;
    last_last_ = last_first_;
  }
  // Tail: trailing elements that do not fill a line.
  for (; i < count; ++i) emit(base + i * elem_bytes, elem_bytes, is_write);
}

void TraceHasher::consume(const CoalescedAccess* page, std::size_t n) {
  std::uint64_t h = hash_;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t x = page[i].address * 0x9E3779B97F4A7C15ull;
    x ^= (static_cast<std::uint64_t>(page[i].bytes) << 32) ^
         page[i].repeats;
    h = (h ^ x) * 0x100000001b3ull;
    h ^= h >> 29;
  }
  hash_ = h;
}

TraceKey hash_trace(const TraceGenerator& gen) {
  TraceHasher hasher;
  TraceWriter writer(hasher);
  gen(writer);
  writer.finish();
  return {hasher.hash(), writer.accesses()};
}

namespace {

/// One schedulable slice of the per-page fan-out: a whole hierarchy
/// (sequential fused replay), one set-partition shard of a hierarchy, or a
/// hierarchy's TLB (which is fully associative and cannot be partitioned).
struct ReplayUnit {
  enum class Kind { kSequential, kCacheShard, kTlb };
  CacheHierarchy* hierarchy = nullptr;
  Kind kind = Kind::kSequential;
  unsigned shard = 0;
  unsigned shard_count = 1;
  ReplayShardCounters* acc = nullptr;
};

/// Coalesced sink that runs every page through every replay unit on the
/// pool before letting the writer reuse its buffer.
class FanOutSink final : public CoalescedSink {
 public:
  FanOutSink(std::vector<ReplayUnit>& units, xcl::ThreadPool& pool)
      : units_(units), pool_(pool), body_([this](std::size_t u) {
          const ReplayUnit& unit = units_[u];
          switch (unit.kind) {
            case ReplayUnit::Kind::kSequential:
              unit.hierarchy->consume_coalesced(page_, n_);
              break;
            case ReplayUnit::Kind::kCacheShard:
              unit.hierarchy->replay_cache_shard(
                  page_, n_, unit.shard, unit.shard_count, *unit.acc);
              break;
            case ReplayUnit::Kind::kTlb:
              unit.hierarchy->replay_tlb_shard(page_, n_, *unit.acc);
              break;
          }
        }) {}

  void consume(const CoalescedAccess* page, std::size_t n) override {
    if (n == 0) return;
    g_pages_coalesced.add(1);
    g_coalesced_entries.add(static_cast<std::int64_t>(n));
    obs::TraceSpan span("replay:page", "replay", "entries",
                        static_cast<double>(n));
    page_ = page;
    n_ = n;
    pool_.parallel_for(units_.size(), body_);
  }

 private:
  std::vector<ReplayUnit>& units_;
  xcl::ThreadPool& pool_;
  const CoalescedAccess* page_ = nullptr;
  std::size_t n_ = 0;
  std::function<void(std::size_t)> body_;
};

}  // namespace

std::vector<ReplayMemoEntry> replay_hierarchies(
    const TraceGenerator& gen, const std::vector<const DeviceSpec*>& specs,
    xcl::ThreadPool& pool) {
  std::vector<ReplayMemoEntry> out(specs.size());
  if (specs.empty()) return out;

  std::vector<std::unique_ptr<CacheHierarchy>> hierarchies;
  hierarchies.reserve(specs.size());
  for (const DeviceSpec* spec : specs) {
    hierarchies.push_back(std::make_unique<CacheHierarchy>(*spec));
  }

  // Shard individual hierarchies only when participants (workers + helping
  // caller) outnumber hierarchies: a shard still scans every page entry, so
  // splitting costs total work and only buys wall-clock when the extra
  // slices land on otherwise-idle workers.
  const unsigned participants = pool.size() + 1;
  unsigned want = 1;
  while (want < 64 &&
         hierarchies.size() * want < static_cast<std::size_t>(participants)) {
    want *= 2;
  }
  std::size_t total_shard_accs = 0;
  std::vector<unsigned> shards_of(hierarchies.size(), 1);
  for (std::size_t h = 0; h < hierarchies.size(); ++h) {
    shards_of[h] = std::min(want, hierarchies[h]->max_replay_shards());
    if (shards_of[h] > 1) total_shard_accs += shards_of[h] + 1;
  }

  // Stable storage the units point into; re-initialised each pass.
  std::vector<ReplayShardCounters> accs(total_shard_accs);
  std::vector<ReplayUnit> units;
  {
    std::size_t next_acc = 0;
    for (std::size_t h = 0; h < hierarchies.size(); ++h) {
      CacheHierarchy* hier = hierarchies[h].get();
      if (shards_of[h] == 1) {
        units.push_back({hier, ReplayUnit::Kind::kSequential, 0, 1, nullptr});
        continue;
      }
      for (unsigned s = 0; s < shards_of[h]; ++s) {
        units.push_back({hier, ReplayUnit::Kind::kCacheShard, s,
                         shards_of[h], &accs[next_acc++]});
      }
      units.push_back(
          {hier, ReplayUnit::Kind::kTlb, 0, 1, &accs[next_acc++]});
    }
  }

  std::uint64_t accesses = 0;
  for (int pass = 0; pass < 2; ++pass) {
    g_replay_passes.add(1);
    obs::TraceSpan pass_span(pass == 0 ? "replay:cold" : "replay:warm",
                             "replay", "units",
                             static_cast<double>(units.size()));
    if (pass == 1) {
      for (auto& hier : hierarchies) hier->reset();
    }
    for (const ReplayUnit& unit : units) {
      if (unit.acc != nullptr) *unit.acc = unit.hierarchy->make_shard();
    }
    FanOutSink sink(units, pool);
    TraceWriter writer(sink);
    gen(writer);
    writer.finish();
    for (const ReplayUnit& unit : units) {
      if (unit.acc != nullptr) unit.hierarchy->fold_shard(*unit.acc);
    }
    for (std::size_t h = 0; h < hierarchies.size(); ++h) {
      (pass == 0 ? out[h].cold : out[h].warm) = hierarchies[h]->counters();
    }
    accesses = writer.accesses();
  }
  for (ReplayMemoEntry& entry : out) entry.accesses = accesses;
  return out;
}

std::vector<ReplayMemoEntry> replay_hierarchies(
    const TraceGenerator& gen,
    const std::vector<const DeviceSpec*>& specs) {
  return replay_hierarchies(gen, specs, xcl::ThreadPool::global());
}

}  // namespace eod::sim
