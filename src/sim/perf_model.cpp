#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace eod::sim {

namespace {

bool is_gpu(const DeviceSpec& s) {
  return s.klass == AcceleratorClass::kConsumerGpu ||
         s.klass == AcceleratorClass::kHpcGpu;
}

/// Work-items needed per lane before the device reaches full throughput
/// (latency hiding on GPUs/MIC, HT pairing on CPUs).
double oversubscription(const DeviceSpec& s) {
  switch (s.klass) {
    case AcceleratorClass::kCpu:
      return 2.0;
    case AcceleratorClass::kMic:
      return 4.0;
    default:
      return 4.0;
  }
}

}  // namespace

double DevicePerfModel::effective_lanes() const {
  // Peak FLOPS = lanes x 2 (FMA) x clock, so lanes falls out of Table 1's
  // published peak and clock.
  const double clock_hz = spec_.nominal_clock_mhz() * 1e6;
  return std::max(1.0, spec_.peak_sp_gflops * 1e9 / (2.0 * clock_hz));
}

double DevicePerfModel::pattern_bandwidth_factor(xcl::AccessPattern p) const {
  const bool gpu = is_gpu(spec_);
  switch (p) {
    case xcl::AccessPattern::kStreaming:
      return 1.0;
    case xcl::AccessPattern::kRowPerItem:
      // Per-item sequential scans: a CPU thread streams its rows through
      // the prefetcher; a GPU warp touches 32 different lines per step.
      return gpu ? 0.30 : 0.85;
    case xcl::AccessPattern::kStrided:
      // Interleaved column walks: adjacent GPU lanes coalesce perfectly; a
      // CPU thread brings in a whole line per element.
      return gpu ? 0.90 : 0.25;
    case xcl::AccessPattern::kStencil:
      return gpu ? 0.85 : 0.90;  // high reuse, nearly streaming
    case xcl::AccessPattern::kTiled:
      return 0.95;               // staged through local memory / blocked
    case xcl::AccessPattern::kGather:
      return gpu ? 0.15 : 0.30;  // one line per element; caches help CPUs
    case xcl::AccessPattern::kButterfly:
      return gpu ? 0.65 : 0.75;  // power-of-two strides, bank conflicts
  }
  return 1.0;
}

DevicePerfModel::Breakdown DevicePerfModel::analyze(
    const xcl::KernelLaunchStats& launch) const {
  const xcl::WorkloadProfile& p = launch.profile;
  const double items =
      std::max<double>(1.0, static_cast<double>(launch.range.global_items()));
  Breakdown b;
  b.launch_s = spec_.launch_overhead_us * 1e-6 *
               (1.0 + spec_.launch_depth_factor *
                          static_cast<double>(launch.queue_depth));

  // ---------------- compute term ----------------
  const double int_ratio = std::max(0.05, spec_.int_ratio);
  const double norm_ops = p.flops + p.int_ops / int_ratio;
  const double lanes = effective_lanes();

  // SIMD divergence: a divergent branch wastes (width-1)/width of the lanes
  // it covers.
  const double width = std::max(1u, spec_.simd_width);
  const double div_factor =
      1.0 - p.branch_divergence * (1.0 - 1.0 / width) * 0.9;

  // Partial SIMD groups waste lanes: a work-group of 16 items occupies a
  // whole 64-wide AMD wavefront.  This is the "platform-specific local
  // work-group size" effect the paper calls out, and the knob the
  // auto-tuner (§7 future work) turns.
  const double group_items =
      std::max<double>(1.0, static_cast<double>(launch.range.group_items()));
  const double granule = std::ceil(group_items / width) * width;
  const double wg_eff = group_items / granule;

  const double rate_full = spec_.peak_sp_gflops * 1e9 *
                           spec_.opencl_efficiency * div_factor * wg_eff;
  const double occupancy =
      std::min(1.0, items / (lanes * oversubscription(spec_)));
  // Occupancy-throttled throughput, floored by plain scalar execution on
  // however many hardware threads actually carry work.  On GPUs/MIC every
  // SIMD lane is a thread at scalar speed (partial groups idle the rest of
  // their wavefront, capping the resident count); on CPUs the scalar
  // engines are the cores, whose superscalar rate already exceeds one
  // lane's.
  const double scalar_threads =
      spec_.klass == AcceleratorClass::kCpu
          ? static_cast<double>(spec_.core_count)
          : lanes * wg_eff;
  const double scalar_rate = std::min(items, scalar_threads) *
                             spec_.scalar_gops * 1e9 * div_factor;
  const double rate = std::max(rate_full * occupancy, scalar_rate);

  const double par = std::clamp(p.parallel_fraction, 0.0, 1.0);
  b.compute_s = norm_ops > 0.0 ? par * norm_ops / rate : 0.0;
  b.serial_s = norm_ops > 0.0
                   ? (1.0 - par) * norm_ops / (spec_.scalar_gops * 1e9)
                   : 0.0;

  // ---------------- memory term ----------------
  const double bytes = p.total_bytes();
  if (bytes > 0.0) {
    // Residence: the smallest level that holds the working set.  GPUs'
    // per-SM L1s are too small/transient to hold a kernel working set, so
    // residence starts at L2 for them (matching the paper's remark that
    // modern GPUs' greater L2 helps at large sizes).
    const double ws = p.working_set_bytes;
    const CacheLevelSpec* level = nullptr;
    if (!is_gpu(spec_) && spec_.klass != AcceleratorClass::kMic &&
        ws <= static_cast<double>(spec_.l1.size_bytes)) {
      level = &spec_.l1;
      b.residence_level = 1;
    } else if (ws <= static_cast<double>(spec_.l2.size_bytes)) {
      level = &spec_.l2;
      b.residence_level = 2;
    } else if (spec_.l3.size_bytes != 0 &&
               ws <= static_cast<double>(spec_.l3.size_bytes)) {
      level = &spec_.l3;
      b.residence_level = 3;
    } else {
      b.residence_level = 4;
    }

    const double pat = pattern_bandwidth_factor(p.pattern);
    // Bandwidth also needs parallelism: a half-empty device cannot saturate
    // its memory system, though the floor is higher than for ALU work.
    const double mem_occ = std::max(0.15, occupancy);
    const double bw_gbs =
        (level != nullptr ? level->bandwidth_gbs : spec_.mem_bandwidth_gbs) *
        pat * mem_occ;
    b.memory_s = bytes / (bw_gbs * 1e9);
  }

  // Latency chains: dependent accesses cannot be pipelined past the
  // latency of the level holding the chain's own structure (a small lookup
  // table pins in L1/LDS even when the streamed data does not), and only
  // `concurrency` independent chains overlap.
  if (p.dependent_accesses > 0.0) {
    const double chain_ws = p.chain_working_set_bytes > 0.0
                                ? p.chain_working_set_bytes
                                : p.working_set_bytes;
    double lat_ns = spec_.dram_latency_ns;
    if (chain_ws <= static_cast<double>(spec_.l1.size_bytes)) {
      lat_ns = spec_.l1.latency_ns;
    } else if (chain_ws <= static_cast<double>(spec_.l2.size_bytes)) {
      lat_ns = spec_.l2.latency_ns;
    } else if (spec_.l3.size_bytes != 0 &&
               chain_ws <= static_cast<double>(spec_.l3.size_bytes)) {
      lat_ns = spec_.l3.latency_ns;
    }
    const double overlap = std::min(spec_.concurrency, std::max(1.0, items));
    b.latency_s = p.dependent_accesses * lat_ns * 1e-9 / overlap;
  }

  // Roofline: compute and memory overlap; latency chains and the serial
  // remainder do not.
  b.total_s = b.launch_s + std::max(b.compute_s, b.memory_s) + b.latency_s +
              b.serial_s;
  return b;
}

double DevicePerfModel::kernel_seconds(
    const xcl::KernelLaunchStats& launch) const {
  return analyze(launch).total_s;
}

double DevicePerfModel::roofline_seconds(
    const xcl::KernelLaunchStats& launch) const {
  const xcl::WorkloadProfile& p = launch.profile;
  const double compute_s =
      (p.flops + p.int_ops / std::max(0.05, spec_.int_ratio)) /
      (spec_.peak_sp_gflops * 1e9);
  // Memory at the bandwidth of the level that holds the working set (the
  // same residence rule analyze() uses), with no pattern/occupancy loss.
  const double ws = p.working_set_bytes;
  double bw_gbs = spec_.mem_bandwidth_gbs;
  if (!is_gpu(spec_) && spec_.klass != AcceleratorClass::kMic &&
      ws <= static_cast<double>(spec_.l1.size_bytes)) {
    bw_gbs = spec_.l1.bandwidth_gbs;
  } else if (ws <= static_cast<double>(spec_.l2.size_bytes)) {
    bw_gbs = spec_.l2.bandwidth_gbs;
  } else if (spec_.l3.size_bytes != 0 &&
             ws <= static_cast<double>(spec_.l3.size_bytes)) {
    bw_gbs = spec_.l3.bandwidth_gbs;
  }
  const double memory_s = p.total_bytes() / (bw_gbs * 1e9);
  return std::max(compute_s, memory_s);
}

double DevicePerfModel::memory_seconds_from_counters(
    const xcl::KernelLaunchStats& launch,
    const HierarchyCounters& counters) const {
  if (counters.total_accesses == 0) return 0.0;
  const xcl::WorkloadProfile& p = launch.profile;
  // Per-level traffic in bytes: requests hit L1; every miss moves a full
  // cache line from the level below.
  const double l1_bytes = p.total_bytes();
  const double l2_bytes =
      static_cast<double>(counters.l1_dcm) * spec_.l1.line_bytes;
  const double l3_bytes =
      static_cast<double>(counters.l2_dcm) * spec_.l2.line_bytes;
  const double dram_bytes =
      static_cast<double>(counters.l3_tcm) * spec_.l2.line_bytes;

  const double pat = pattern_bandwidth_factor(p.pattern);
  const double items =
      std::max<double>(1.0, static_cast<double>(launch.range.global_items()));
  const double lanes = effective_lanes();
  const double mem_occ = std::max(
      0.15, std::min(1.0, items / (lanes * 4.0)));

  auto level_time = [&](double bytes, double bw_gbs) {
    return bw_gbs > 0.0 ? bytes / (bw_gbs * pat * mem_occ * 1e9) : 0.0;
  };
  // The hierarchy pipelines; summing each level's service time is a safe
  // upper-fidelity estimate dominated by the slowest level's traffic.
  double t = level_time(l1_bytes, spec_.l1.bandwidth_gbs) +
             level_time(l2_bytes, spec_.l2.bandwidth_gbs);
  if (spec_.l3.size_bytes != 0) {
    t += level_time(l3_bytes, spec_.l3.bandwidth_gbs);
  }
  t += level_time(dram_bytes, spec_.mem_bandwidth_gbs);
  return t;
}

double DevicePerfModel::transfer_seconds(std::size_t bytes,
                                         xcl::TransferDir dir) const {
  (void)dir;  // PCIe and memcpy paths are symmetric at this fidelity
  return spec_.transfer_latency_us * 1e-6 +
         static_cast<double>(bytes) / (spec_.transfer_bandwidth_gbs * 1e9);
}

double DevicePerfModel::kernel_power_watts(
    const xcl::KernelLaunchStats& launch) const {
  const Breakdown b = analyze(launch);
  const double busy = std::max(b.total_s, 1e-12);
  // How hard each subsystem runs, as a fraction of the launch duration.
  const double compute_util = std::min(1.0, (b.compute_s + b.serial_s) / busy);
  const double mem_util = std::min(1.0, b.memory_s / busy);
  const double util = std::max({compute_util, mem_util, 0.10});
  return spec_.idle_power_w +
         (spec_.tdp_w - spec_.idle_power_w) * (0.25 + 0.75 * util);
}

double DevicePerfModel::measurement_noise_cov() const {
  const double clock = std::max(1u, spec_.nominal_clock_mhz());
  return 0.05 * std::pow(1000.0 / clock, 0.8);
}

}  // namespace eod::sim
