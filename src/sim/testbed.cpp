#include "sim/testbed.hpp"

#include <memory>
#include <mutex>

#include "sim/interconnect.hpp"
#include "sim/perf_model.hpp"

namespace eod::sim {

namespace {

xcl::DeviceInfo make_info(const DeviceSpec& s) {
  xcl::DeviceInfo info;
  info.name = s.name;
  info.vendor = s.vendor;
  info.type = s.device_type();
  info.compute_units = s.core_count;
  info.clock_mhz = s.nominal_clock_mhz();
  info.global_mem_bytes = s.global_mem_bytes;
  switch (s.klass) {
    case AcceleratorClass::kCpu:
      info.local_mem_bytes = 32 * 1024;
      info.max_work_group_size = 1024;
      break;
    case AcceleratorClass::kMic:
      info.local_mem_bytes = 32 * 1024;
      info.max_work_group_size = 1024;
      break;
    case AcceleratorClass::kHpcGpu:
    case AcceleratorClass::kConsumerGpu:
      if (s.vendor == "AMD") {
        info.local_mem_bytes = 32 * 1024;
        info.max_work_group_size = 256;
      } else {
        info.local_mem_bytes = 48 * 1024;
        info.max_work_group_size = 1024;
      }
      break;
  }
  info.simd_width = s.simd_width;
  return info;
}

xcl::Platform* g_platform = nullptr;
std::once_flag g_once;

}  // namespace

xcl::Platform& testbed_platform() {
  std::call_once(g_once, [] {
    auto& platform =
        xcl::PlatformRegistry::instance().add("Extended OpenDwarfs Testbed");
    for (const DeviceSpec& s : testbed()) {
      platform.add_device(make_info(s), std::make_shared<DevicePerfModel>(s));
    }
    // Wire the interconnect topology into the runtime so peer copies between
    // testbed devices are priced by the modeled links (DESIGN.md §14).
    xcl::set_link_model(&testbed_interconnect());
    g_platform = &platform;
  });
  return *g_platform;
}

xcl::Device& testbed_device(const std::string& name) {
  for (xcl::Device* d : testbed_platform().devices()) {
    if (d->name() == name) return *d;
  }
  throw xcl::Error(xcl::Status::kInvalidValue,
                   "no testbed device named " + name);
}

std::vector<xcl::Device*> testbed_devices() {
  return testbed_platform().devices();
}

AcceleratorClass device_class(const xcl::Device& device) {
  return spec_by_name(device.name()).klass;
}

}  // namespace eod::sim
