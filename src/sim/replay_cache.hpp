// Content-keyed replay memo cache.
//
// A replayed (trace, hierarchy) cell is a pure function of the trace
// content and the hierarchy geometry, so its cold/warm counters never need
// computing twice: suite_report, counters_report and ablate_cachesim all
// replay e.g. kmeans-large over the same 15 hierarchies.  The cache keys on
// TraceKey (order-sensitive content hash + access count, from a replay-free
// hashing pass) plus a geometry hash, and can persist to a text store under
// results/ so a second report run replays nothing at all.
//
// The disk store is opt-in (report binaries call set_disk_store); tests and
// library code stay hermetic by default.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/trace_replay.hpp"

namespace eod::sim {

/// Hash of everything that determines replay results besides the trace:
/// level sizes/lines/associativities, TLB reach, page size.
std::uint64_t hierarchy_geometry_hash(const DeviceSpec& spec,
                                      unsigned tlb_entries = 64,
                                      unsigned page_bytes = 4096);

/// Process-wide memo of replayed cells.
class ReplayCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;    ///< find() served from memory
    std::uint64_t misses = 0;  ///< find() had nothing
    std::uint64_t stores = 0;  ///< entries inserted this process
    std::uint64_t loaded = 0;  ///< entries read from the disk store
  };

  static ReplayCache& instance();

  [[nodiscard]] std::optional<ReplayMemoEntry> find(const TraceKey& trace,
                                                    std::uint64_t geometry);
  /// Inserts (idempotently) and, when a disk store is bound, appends the
  /// entry to it.  `label` is a human-readable annotation for the store
  /// file ("bench/size/device"), not part of the key.
  void store(const TraceKey& trace, std::uint64_t geometry,
             const ReplayMemoEntry& entry, const std::string& label);

  /// Binds a disk store: loads any existing entries from `path` now and
  /// appends future store() calls to it.  Parent directories are created.
  /// Returns the number of entries loaded.
  std::size_t set_disk_store(const std::string& path);

  [[nodiscard]] Stats stats() const;
  /// Drops all entries and unbinds the disk store (tests).
  void clear();

 private:
  struct Key {
    std::uint64_t content_hash;
    std::uint64_t accesses;
    std::uint64_t geometry;
    auto operator<=>(const Key&) const = default;
  };

  mutable std::mutex mutex_;
  std::map<Key, ReplayMemoEntry> entries_;
  std::string disk_path_;
  Stats stats_;
};

/// Replays `gen` through `spec`'s hierarchy, memoized: on a cache hit the
/// only work is the hashing generation pass.  `precomputed` skips even that
/// when the caller already holds the trace's key.
ReplayMemoEntry memoized_replay(const TraceGenerator& gen,
                                const DeviceSpec& spec,
                                const std::string& label,
                                const TraceKey* precomputed = nullptr);

/// Hashes the trace once, replays the not-yet-cached specs in one streamed
/// multi-hierarchy fan-out, stores them, and returns the trace key -- the
/// cheap way to warm the memo before a per-device measurement sweep.
TraceKey prime_replay_memo(const TraceGenerator& gen,
                           const std::vector<const DeviceSpec*>& specs,
                           const std::string& label);

}  // namespace eod::sim
