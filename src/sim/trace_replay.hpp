// High-throughput trace recording and replay.
//
// The seed pipeline priced one virtual std::function call per MemAccess and
// re-generated the trace once per device hierarchy; gem's medium/large
// all-pairs traces (5e10 / 1e11 accesses) made full counter coverage
// impractical (bench/counters_report used to skip them).  This engine
// replaces that pipeline end to end:
//
//   * TraceWriter batches emitted accesses into 64K-entry pages and hands
//     whole pages to a sink -- no per-access indirect call.
//   * In coalesced mode the writer run-length-merges consecutive accesses
//     with the same 64-byte line span into one CoalescedAccess + repeat
//     count.  64 divides every testbed line size, and span equality at 64B
//     implies span equality at any multiple, so one recorded stream replays
//     bit-identically on 64B and 128B line hierarchies alike.
//   * replay_hierarchies() generates the trace once and fans each page out
//     to every device hierarchy in parallel on the work-stealing
//     xcl::ThreadPool, optionally set-partitioning single hierarchies into
//     independent shards (see CacheHierarchy::max_replay_shards).
//
// Exactness of every path against the per-access reference replay is
// enforced by tests/cache_replay_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/cache_sim.hpp"

namespace eod::xcl {
class ThreadPool;
}  // namespace eod::xcl

namespace eod::sim {

/// Accesses per flushed page: big enough to amortise the per-page fan-out
/// barrier, small enough that a page of CoalescedAccess stays cache-warm.
inline constexpr std::size_t kTracePageAccesses = std::size_t{1} << 16;

/// Coalescing granularity.  Must divide every hierarchy line size it will
/// replay on (all testbed devices use 64B or 128B lines).
inline constexpr unsigned kCoalesceLineBytes = 64;
inline constexpr unsigned kCoalesceLineShift = 6;

/// Batched consumer of raw access pages.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void consume(const MemAccess* page, std::size_t n) = 0;
};

/// Batched consumer of line-coalesced pages.
class CoalescedSink {
 public:
  virtual ~CoalescedSink() = default;
  virtual void consume(const CoalescedAccess* page, std::size_t n) = 0;
};

/// Buffered trace recorder the dwarfs emit into.  Writes either raw pages
/// (legacy adapters, memory_trace()) or line-coalesced pages (replay
/// engine), decided by which sink the writer is bound to.
class TraceWriter {
 public:
  explicit TraceWriter(TraceSink& sink)
      : raw_sink_(&sink), rpage_(kTracePageAccesses) {}
  explicit TraceWriter(CoalescedSink& sink)
      : coalesced_sink_(&sink), cpage_(kTracePageAccesses) {}
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;
  ~TraceWriter() { finish(); }

  /// Records one access.
  void emit(std::uint64_t address, std::uint32_t bytes, bool is_write) {
    ++accesses_;
    if (coalesced_sink_ != nullptr) {
      const std::uint64_t first = address >> kCoalesceLineShift;
      const std::uint64_t last =
          (address + (bytes == 0 ? 0 : bytes - 1)) >> kCoalesceLineShift;
      if (first == last_first_ && last == last_last_ && count_ != 0) {
        CoalescedAccess& tail = cpage_[count_ - 1];
        if (tail.repeats != ~std::uint32_t{0}) {
          ++tail.repeats;
          return;
        }
      }
      if (count_ == kTracePageAccesses) flush();
      cpage_[count_++] = {address, bytes, 0};
      last_first_ = first;
      last_last_ = last;
    } else {
      if (count_ == kTracePageAccesses) flush();
      rpage_[count_++] = {address, bytes, is_write};
    }
  }

  /// Records `count` accesses of `elem_bytes` each at base, base + e,
  /// base + 2e, ...  When the elements tile cache lines exactly (e divides
  /// 64 and base is element-aligned) the coalesced entries are generated
  /// directly -- one record per 64B line instead of 64/e emit() calls.
  void emit_run(std::uint64_t base, std::uint32_t elem_bytes,
                std::uint64_t count, bool is_write);

  /// Flushes any buffered tail.  Called automatically on destruction; call
  /// explicitly when the sink must see everything before the writer dies.
  void finish() {
    if (count_ != 0) flush();
  }

  /// Original (pre-coalescing) access count recorded so far.
  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }

 private:
  void flush();

  TraceSink* raw_sink_ = nullptr;
  CoalescedSink* coalesced_sink_ = nullptr;
  std::size_t count_ = 0;
  std::uint64_t accesses_ = 0;
  // Line span of the page's tail entry (~0 sentinels: no merge candidate).
  std::uint64_t last_first_ = ~0ull;
  std::uint64_t last_last_ = ~0ull;
  // Only one of the two buffers is ever touched; both are lazily allocated.
  std::vector<MemAccess> rpage_;
  std::vector<CoalescedAccess> cpage_;
};

/// A dwarf's trace generation, re-runnable: called with a fresh writer per
/// pass (dwarfs::Dwarf::stream_trace bound to a set-up instance).
using TraceGenerator = std::function<void(TraceWriter&)>;

/// Raw sink forwarding each access to a per-access callback -- the adapter
/// behind the legacy std::function stream_trace API.
class FunctionTraceSink final : public TraceSink {
 public:
  explicit FunctionTraceSink(
      const std::function<void(const MemAccess&)>& fn)
      : fn_(fn) {}
  void consume(const MemAccess* page, std::size_t n) override {
    for (std::size_t i = 0; i < n; ++i) fn_(page[i]);
  }

 private:
  const std::function<void(const MemAccess&)>& fn_;
};

/// Raw sink appending into a MemoryTrace vector (memory_trace()).
class VectorTraceSink final : public TraceSink {
 public:
  explicit VectorTraceSink(MemoryTrace& out) : out_(out) {}
  void consume(const MemAccess* page, std::size_t n) override {
    out_.insert(out_.end(), page, page + n);
  }

 private:
  MemoryTrace& out_;
};

/// Content identity of a recorded trace: order-sensitive hash over the
/// coalesced stream plus the original access count.
struct TraceKey {
  std::uint64_t content_hash = 0;
  std::uint64_t accesses = 0;

  friend bool operator==(const TraceKey& a, const TraceKey& b) {
    return a.content_hash == b.content_hash && a.accesses == b.accesses;
  }
};

/// Coalesced sink that folds every entry into a content hash (a replay-free
/// generation pass -- how the memo cache keys a trace without storing it).
class TraceHasher final : public CoalescedSink {
 public:
  void consume(const CoalescedAccess* page, std::size_t n) override;
  [[nodiscard]] std::uint64_t hash() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// Runs the generator through a hashing sink and returns the trace's key.
TraceKey hash_trace(const TraceGenerator& gen);

/// Cold (first-touch) and warm (steady-state) counters of one replayed
/// (trace, hierarchy) cell -- the seed's two-pass protocol: replay, read
/// cold, reset counters (cache state survives), replay, read warm.
struct ReplayMemoEntry {
  HierarchyCounters cold;
  HierarchyCounters warm;
  std::uint64_t accesses = 0;
};

/// Generates the trace twice (cold + warm pass) and replays it through one
/// fresh hierarchy per spec in a single streamed fan-out: each flushed page
/// is processed by every hierarchy -- in parallel on `pool`, with single
/// hierarchies set-partitioned into shards when workers outnumber
/// hierarchies -- before the next page is generated.  Returns one entry per
/// spec, in spec order.
std::vector<ReplayMemoEntry> replay_hierarchies(
    const TraceGenerator& gen, const std::vector<const DeviceSpec*>& specs,
    xcl::ThreadPool& pool);

/// Convenience overload on the global pool.
std::vector<ReplayMemoEntry> replay_hierarchies(
    const TraceGenerator& gen, const std::vector<const DeviceSpec*>& specs);

}  // namespace eod::sim
