// The simulated testbed: all 15 devices of the paper's Table 1, each with
// the published characteristics plus the derived performance parameters
// (peak FLOPS, memory bandwidth, launch overhead, ...) that drive the
// timing model.  Derived values are taken from vendor datasheets for the
// same parts; see the table in device_spec.cpp.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "xcl/types.hpp"

namespace eod::sim {

/// The four accelerator classes the paper's figures colour by.
enum class AcceleratorClass : std::uint8_t {
  kCpu,          // red
  kConsumerGpu,  // green
  kHpcGpu,       // blue
  kMic,          // purple
};

[[nodiscard]] constexpr const char* to_string(AcceleratorClass c) noexcept {
  switch (c) {
    case AcceleratorClass::kCpu:
      return "CPU";
    case AcceleratorClass::kConsumerGpu:
      return "Consumer GPU";
    case AcceleratorClass::kHpcGpu:
      return "HPC GPU";
    case AcceleratorClass::kMic:
      return "MIC";
  }
  return "unknown";
}

/// One level of the modeled memory hierarchy.
struct CacheLevelSpec {
  std::size_t size_bytes = 0;  ///< 0 means the level is absent
  unsigned line_bytes = 64;
  unsigned associativity = 8;
  double latency_ns = 1.0;
  /// Sustainable bandwidth from this level, GB/s.
  double bandwidth_gbs = 100.0;
};

struct DeviceSpec {
  // ---- Table 1 columns ----
  std::string name;
  std::string vendor;
  std::string series;
  AcceleratorClass klass = AcceleratorClass::kCpu;
  unsigned core_count = 1;     ///< HT cores / CUDA cores / stream processors
  unsigned clock_min_mhz = 0;
  unsigned clock_max_mhz = 0;   ///< 0 = not published
  unsigned clock_turbo_mhz = 0; ///< 0 = not published
  std::size_t l1_kib = 0;       ///< per-core data cache (= instruction cache)
  std::size_t l2_kib = 0;
  std::size_t l3_kib = 0;       ///< 0 = absent
  unsigned tdp_w = 0;
  std::string launch_date;

  // ---- derived performance parameters (vendor datasheets) ----
  double peak_sp_gflops = 0.0;
  double mem_bandwidth_gbs = 0.0;
  std::size_t global_mem_bytes = 0;
  double idle_power_w = 10.0;
  /// Fixed cost of one kernel launch through the OpenCL runtime, microseconds.
  double launch_overhead_us = 5.0;
  /// Per-launch overhead growth with unflushed queue depth (fraction of the
  /// base overhead added per already-enqueued kernel).  Non-zero for the
  /// amdappsdk command stream, whose enqueue path slows as the batch grows
  /// -- the behaviour behind the AMD degradation on launch-streams like nw.
  double launch_depth_factor = 0.0;
  /// Host<->device path: memcpy for CPUs/MIC, PCIe 3.0 for discrete GPUs.
  double transfer_bandwidth_gbs = 12.0;
  double transfer_latency_us = 10.0;
  /// Device-to-device path (DESIGN.md §14).  When both endpoints of a pair
  /// are capable and share a vendor driver stack, transfers take a direct
  /// PCIe P2P / NVLink-class link (bottleneck bandwidth, worst-case setup
  /// latency); otherwise they stage through host memory and pay both
  /// host-link legs.  CPUs and the self-hosted MIC are never peers: their
  /// "device" memory *is* host memory.
  bool p2p_capable = false;
  double p2p_bandwidth_gbs = 0.0;
  double p2p_latency_us = 0.0;
  unsigned simd_width = 1;     ///< native SIMD lane / warp / wavefront width
  /// Driver maturity factor in (0,1]: fraction of peak the OpenCL stack can
  /// reach (the paper notes Intel's KNL OpenCL lacks AVX-512, halving peak).
  double opencl_efficiency = 0.85;
  /// Integer/logic throughput relative to SP FLOP throughput.
  double int_ratio = 0.5;
  /// Memory-level parallelism: outstanding requests the device can overlap
  /// (latency-hiding capability; large for GPUs).
  double concurrency = 10.0;
  /// Effective per-lane scalar speed for serial/dependent work, GHz-ops.
  double scalar_gops = 1.0;

  // ---- modeled memory hierarchy ----
  CacheLevelSpec l1;
  CacheLevelSpec l2;
  CacheLevelSpec l3;          ///< size 0 when absent
  double dram_latency_ns = 90.0;

  [[nodiscard]] xcl::DeviceType device_type() const noexcept {
    switch (klass) {
      case AcceleratorClass::kCpu:
        return xcl::DeviceType::kCpu;
      case AcceleratorClass::kMic:
        return xcl::DeviceType::kAccelerator;
      default:
        return xcl::DeviceType::kGpu;
    }
  }

  /// Nominal compute clock used for peak calculations, MHz.
  [[nodiscard]] unsigned nominal_clock_mhz() const noexcept {
    if (clock_max_mhz != 0) return clock_max_mhz;
    return clock_min_mhz;
  }
};

/// All 15 devices, in the paper's Table 1 order.
[[nodiscard]] const std::vector<DeviceSpec>& testbed();

/// Look up a testbed device by its Table 1 name; throws if unknown.
[[nodiscard]] const DeviceSpec& spec_by_name(const std::string& name);

/// The Skylake i7-6700K, whose memory hierarchy anchors the problem-size
/// methodology (§4.4).
[[nodiscard]] const DeviceSpec& skylake();

}  // namespace eod::sim
