#include "sim/replay_cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace eod::sim {

namespace {

void mix(std::uint64_t& h, std::uint64_t x) {
  h = (h ^ (x * 0x9E3779B97F4A7C15ull)) * 0x100000001b3ull;
  h ^= h >> 31;
}

constexpr const char* kStoreMagic = "EODMEMO1";

}  // namespace

std::uint64_t hierarchy_geometry_hash(const DeviceSpec& spec,
                                      unsigned tlb_entries,
                                      unsigned page_bytes) {
  std::uint64_t h = 0x243F6A8885A308D3ull;
  for (const CacheLevelSpec* level : {&spec.l1, &spec.l2, &spec.l3}) {
    mix(h, level->size_bytes);
    mix(h, level->line_bytes);
    mix(h, level->associativity);
  }
  mix(h, tlb_entries);
  mix(h, page_bytes);
  return h;
}

ReplayCache& ReplayCache::instance() {
  static ReplayCache cache;
  return cache;
}

std::optional<ReplayMemoEntry> ReplayCache::find(const TraceKey& trace,
                                                 std::uint64_t geometry) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it =
      entries_.find(Key{trace.content_hash, trace.accesses, geometry});
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void ReplayCache::store(const TraceKey& trace, std::uint64_t geometry,
                        const ReplayMemoEntry& entry,
                        const std::string& label) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(
      Key{trace.content_hash, trace.accesses, geometry}, entry);
  (void)it;
  if (!inserted) return;
  ++stats_.stores;
  if (disk_path_.empty()) return;
  std::ofstream out(disk_path_, std::ios::app);
  if (!out) return;  // results/ unwritable: stay memory-only
  out << kStoreMagic << ' ' << std::hex << trace.content_hash << ' '
      << std::dec << trace.accesses << ' ' << std::hex << geometry
      << std::dec;
  for (const HierarchyCounters* c : {&entry.cold, &entry.warm}) {
    out << ' ' << c->total_accesses << ' ' << c->l1_dcm << ' ' << c->l2_dcm
        << ' ' << c->l3_tcm << ' ' << c->tlb_dm;
  }
  // The label is a trailing human-readable annotation, never parsed back
  // into the key.
  out << ' ' << (label.empty() ? "-" : label) << '\n';
}

std::size_t ReplayCache::set_disk_store(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  disk_path_ = path;
  std::error_code ec;
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);

  std::size_t loaded = 0;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string magic;
    Key key{};
    ReplayMemoEntry entry;
    fields >> magic;
    if (magic != kStoreMagic) continue;
    fields >> std::hex >> key.content_hash >> std::dec >> key.accesses >>
        std::hex >> key.geometry >> std::dec;
    for (HierarchyCounters* c : {&entry.cold, &entry.warm}) {
      fields >> c->total_accesses >> c->l1_dcm >> c->l2_dcm >> c->l3_tcm >>
          c->tlb_dm;
    }
    if (!fields) continue;  // truncated line (e.g. interrupted append)
    entry.accesses = key.accesses;
    if (entries_.emplace(key, entry).second) ++loaded;
  }
  stats_.loaded += loaded;
  return loaded;
}

ReplayCache::Stats ReplayCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ReplayCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  disk_path_.clear();
  stats_ = {};
}

ReplayMemoEntry memoized_replay(const TraceGenerator& gen,
                                const DeviceSpec& spec,
                                const std::string& label,
                                const TraceKey* precomputed) {
  const TraceKey key = precomputed != nullptr ? *precomputed : hash_trace(gen);
  const std::uint64_t geometry = hierarchy_geometry_hash(spec);
  ReplayCache& cache = ReplayCache::instance();
  if (auto hit = cache.find(key, geometry)) return *hit;
  std::vector<ReplayMemoEntry> replayed = replay_hierarchies(gen, {&spec});
  replayed.front().accesses = key.accesses;
  cache.store(key, geometry, replayed.front(), label);
  return replayed.front();
}

TraceKey prime_replay_memo(const TraceGenerator& gen,
                           const std::vector<const DeviceSpec*>& specs,
                           const std::string& label) {
  const TraceKey key = hash_trace(gen);
  ReplayCache& cache = ReplayCache::instance();
  std::vector<const DeviceSpec*> missing;
  for (const DeviceSpec* spec : specs) {
    if (!cache.find(key, hierarchy_geometry_hash(*spec))) {
      missing.push_back(spec);
    }
  }
  if (missing.empty()) return key;
  const std::vector<ReplayMemoEntry> replayed =
      replay_hierarchies(gen, missing);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    cache.store(key, hierarchy_geometry_hash(*missing[i]), replayed[i],
                label);
  }
  return key;
}

}  // namespace eod::sim
