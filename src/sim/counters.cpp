#include "sim/counters.hpp"

#include <cmath>
#include <sstream>

namespace eod::sim {

const char* papi_name(PapiEvent e) noexcept {
  switch (e) {
    case PapiEvent::kTotIns:
      return "PAPI_TOT_INS";
    case PapiEvent::kTotCyc:
      return "PAPI_TOT_CYC";
    case PapiEvent::kL1Dcm:
      return "PAPI_L1_DCM";
    case PapiEvent::kL2Dcm:
      return "PAPI_L2_DCM";
    case PapiEvent::kL3Tcm:
      return "PAPI_L3_TCM";
    case PapiEvent::kL3Tca:
      return "PAPI_L3_TCA";
    case PapiEvent::kTlbDm:
      return "PAPI_TLB_DM";
    case PapiEvent::kBrIns:
      return "PAPI_BR_INS";
    case PapiEvent::kBrMsp:
      return "PAPI_BR_MSP";
  }
  return "PAPI_UNKNOWN";
}

double CounterSet::ipc() const {
  const auto cyc = get(PapiEvent::kTotCyc);
  return cyc == 0 ? 0.0
                  : static_cast<double>(get(PapiEvent::kTotIns)) / cyc;
}

double CounterSet::l3_request_rate() const {
  const auto ins = get(PapiEvent::kTotIns);
  return ins == 0 ? 0.0
                  : static_cast<double>(get(PapiEvent::kL3Tca)) / ins;
}

double CounterSet::l3_miss_rate() const {
  const auto ins = get(PapiEvent::kTotIns);
  return ins == 0 ? 0.0
                  : static_cast<double>(get(PapiEvent::kL3Tcm)) / ins;
}

double CounterSet::l3_miss_ratio() const {
  const auto req = get(PapiEvent::kL3Tca);
  return req == 0 ? 0.0
                  : static_cast<double>(get(PapiEvent::kL3Tcm)) / req;
}

double CounterSet::tlb_miss_rate() const {
  const auto ins = get(PapiEvent::kTotIns);
  return ins == 0 ? 0.0
                  : static_cast<double>(get(PapiEvent::kTlbDm)) / ins;
}

double CounterSet::branch_misprediction_rate() const {
  const auto br = get(PapiEvent::kBrIns);
  return br == 0 ? 0.0
                 : static_cast<double>(get(PapiEvent::kBrMsp)) / br;
}

CounterSet derive_papi_counters(const xcl::WorkloadProfile& profile,
                                const HierarchyCounters& cache,
                                double clock_ghz, double seconds,
                                unsigned simd_width) {
  CounterSet c;
  // Instruction estimate: SIMD packs `simd_width` lane-ops per retired
  // instruction (PAPI_TOT_INS counts instructions, not lanes); loads and
  // stores move up to a vector register (simd_width * 4 B) each; loop
  // overhead approximated at 10% of the op stream.
  const double width = std::max(1u, simd_width);
  const double ops = (profile.flops + profile.int_ops) / width;
  const double ldst = profile.total_bytes() / (4.0 * width);
  const auto tot_ins = static_cast<std::uint64_t>((ops + ldst) * 1.1);
  c.set(PapiEvent::kTotIns, tot_ins);
  c.set(PapiEvent::kTotCyc,
        static_cast<std::uint64_t>(seconds * clock_ghz * 1e9));
  c.set(PapiEvent::kL1Dcm, cache.l1_dcm);
  c.set(PapiEvent::kL2Dcm, cache.l2_dcm);
  c.set(PapiEvent::kL3Tcm, cache.l3_tcm);
  c.set(PapiEvent::kL3Tca, cache.l2_dcm);  // L3 requests = L2 misses
  c.set(PapiEvent::kTlbDm, cache.tlb_dm);
  // Branch stream: ~1 branch per 8 instructions; the predictor misses on
  // divergent branches (benchmark-supplied fraction) plus a 0.5% floor.
  const auto br = static_cast<std::uint64_t>(tot_ins / 8.0);
  c.set(PapiEvent::kBrIns, br);
  c.set(PapiEvent::kBrMsp,
        static_cast<std::uint64_t>(
            br * std::min(1.0, 0.005 + 0.5 * profile.branch_divergence)));
  return c;
}

std::string describe_executor_stats(const xcl::ExecutorStats& stats) {
  std::ostringstream os;
  os << "executor dispatch counters (host-side, work-stealing NDRange "
        "executor)\n";
  os << "  launches            " << stats.launches << '\n';
  os << "  work-groups run     " << stats.tasks_executed << " ("
     << stats.groups_loop << " loop, " << stats.groups_fiber << " fiber, "
     << stats.groups_span << " span, " << stats.groups_simd << " simd, "
     << stats.groups_checked << " checked)\n";
  os << "  chunks claimed      " << stats.chunks_claimed << '\n';
  os << "  chunks stolen       " << stats.chunks_stolen << '\n';
  os << "  arena high-water    " << stats.arena_bytes_hwm << " B\n";
  os << "  fiber stacks        " << stats.fiber_stacks_created
     << " created, " << stats.fiber_stacks_reused << " reused\n";
  return os.str();
}

}  // namespace eod::sim
