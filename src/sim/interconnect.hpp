// Modeled device-to-device interconnect topology (DESIGN.md §14).
//
// The paper's testbed measures each device in isolation; scale-out across
// several simulated devices needs a cost model for the links between them.
// Every device pair gets a LinkPath derived from the two DeviceSpecs:
//
//  * direct peer (PCIe P2P / NVLink-class) when both endpoints are
//    p2p_capable and share a vendor driver stack — one DMA hop at the
//    bottleneck endpoint's peer bandwidth, worst-case setup latency;
//  * host-staged otherwise — the transfer bounces through host memory and
//    pays both host-link legs back to back (latencies add, bandwidths
//    combine harmonically).
//
// `Interconnect` adapts the topology onto xcl::LinkModel so
// Queue::enqueue_peer_copy prices halo exchanges without the runtime
// knowing anything about Table 1.
#pragma once

#include <cstddef>

#include "sim/device_spec.hpp"
#include "xcl/device.hpp"
#include "xcl/modeling.hpp"

namespace eod::sim {

/// Cost parameters of one directed device pair.  Both path shapes reduce to
/// latency + size/bandwidth; only the parameters differ.
struct LinkPath {
  /// Per-message DMA-engine setup charge.  The engine is busy for setup
  /// plus wire time; the propagation part of `latency_s` overlaps the next
  /// message, so back-to-back small transfers pipeline (LogGP's gap vs
  /// latency distinction).
  static constexpr double kDmaSetupSeconds = 1e-6;

  bool peer = false;  ///< direct P2P link vs host staging
  double latency_s = 0.0;
  double bandwidth_gbs = 0.0;

  /// End-to-end completion of one message.
  [[nodiscard]] double seconds(std::size_t bytes) const noexcept {
    return latency_s + static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
  }
  /// How long the issuing lane stays busy with one message (never more
  /// than the full completion time).
  [[nodiscard]] double occupancy_seconds(std::size_t bytes) const noexcept {
    const double busy = kDmaSetupSeconds +
                        static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
    return busy < seconds(bytes) ? busy : seconds(bytes);
  }
};

/// The modeled path from `src`'s memory to `dst`'s memory.
[[nodiscard]] LinkPath link_between(const DeviceSpec& src,
                                    const DeviceSpec& dst);

/// xcl::LinkModel over the testbed topology.  Endpoints are resolved to
/// DeviceSpecs by name; a device that is not in Table 1 (tests construct
/// synthetic ones) falls back to host staging priced by the endpoints' own
/// TimingModels, so the model never throws mid-pipeline.
class Interconnect final : public xcl::LinkModel {
 public:
  [[nodiscard]] double peer_seconds(const xcl::Device& src,
                                    const xcl::Device& dst,
                                    std::size_t bytes) const override;
  [[nodiscard]] double peer_occupancy_seconds(const xcl::Device& src,
                                              const xcl::Device& dst,
                                              std::size_t bytes) const override;
  [[nodiscard]] bool peer_direct(const xcl::Device& src,
                                 const xcl::Device& dst) const override;
};

/// The process-wide Interconnect instance testbed_platform() installs via
/// xcl::set_link_model().
[[nodiscard]] const Interconnect& testbed_interconnect();

}  // namespace eod::sim
