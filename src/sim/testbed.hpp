// Mounts the 15-device simulated testbed as an xcl platform, so benchmarks
// select devices exactly the way the paper does (-p <platform> -d <device>
// -t <type>).
#pragma once

#include <string>
#include <vector>

#include "sim/device_spec.hpp"
#include "xcl/platform.hpp"

namespace eod::sim {

/// Registers (once) and returns the testbed platform holding all 15 devices
/// of Table 1, in table order.
xcl::Platform& testbed_platform();

/// Finds a testbed device by Table 1 name (e.g. "GTX 1080").
[[nodiscard]] xcl::Device& testbed_device(const std::string& name);

/// All testbed devices in Table 1 order.
[[nodiscard]] std::vector<xcl::Device*> testbed_devices();

/// The accelerator class of a testbed device (for figure colouring).
[[nodiscard]] AcceleratorClass device_class(const xcl::Device& device);

}  // namespace eod::sim
