#include "sim/interconnect.hpp"

#include <algorithm>

namespace eod::sim {

namespace {

/// Host-staged fallback from the endpoints' own host-link models: source
/// D2H leg plus destination H2D leg, serialised through a bounce buffer.
double staged_seconds(const xcl::Device& src, const xcl::Device& dst,
                      std::size_t bytes) {
  return src.model().transfer_seconds(bytes, xcl::TransferDir::kDeviceToHost) +
         dst.model().transfer_seconds(bytes, xcl::TransferDir::kHostToDevice);
}

const DeviceSpec* find_spec(const xcl::Device& device) noexcept {
  for (const DeviceSpec& s : testbed()) {
    if (s.name == device.name()) return &s;
  }
  return nullptr;
}

}  // namespace

LinkPath link_between(const DeviceSpec& src, const DeviceSpec& dst) {
  LinkPath path;
  // A direct link needs both endpoints capable *and* one driver stack that
  // can program the DMA engines on both ends — in practice, one vendor.
  if (src.p2p_capable && dst.p2p_capable && src.vendor == dst.vendor) {
    path.peer = true;
    path.latency_s = std::max(src.p2p_latency_us, dst.p2p_latency_us) * 1e-6;
    path.bandwidth_gbs = std::min(src.p2p_bandwidth_gbs, dst.p2p_bandwidth_gbs);
    return path;
  }
  // Host staging: the two legs run back to back, so latencies add and the
  // effective bandwidth is the harmonic combination of the host links.
  path.peer = false;
  path.latency_s = (src.transfer_latency_us + dst.transfer_latency_us) * 1e-6;
  path.bandwidth_gbs = 1.0 / (1.0 / src.transfer_bandwidth_gbs +
                              1.0 / dst.transfer_bandwidth_gbs);
  return path;
}

double Interconnect::peer_seconds(const xcl::Device& src,
                                  const xcl::Device& dst,
                                  std::size_t bytes) const {
  const DeviceSpec* s = find_spec(src);
  const DeviceSpec* d = find_spec(dst);
  if (s == nullptr || d == nullptr) return staged_seconds(src, dst, bytes);
  return link_between(*s, *d).seconds(bytes);
}

double Interconnect::peer_occupancy_seconds(const xcl::Device& src,
                                            const xcl::Device& dst,
                                            std::size_t bytes) const {
  const DeviceSpec* s = find_spec(src);
  const DeviceSpec* d = find_spec(dst);
  // Unknown endpoints fall back to host staging with no pipelining — the
  // conservative default of the LinkModel base class.
  if (s == nullptr || d == nullptr) return staged_seconds(src, dst, bytes);
  return link_between(*s, *d).occupancy_seconds(bytes);
}

bool Interconnect::peer_direct(const xcl::Device& src,
                               const xcl::Device& dst) const {
  const DeviceSpec* s = find_spec(src);
  const DeviceSpec* d = find_spec(dst);
  if (s == nullptr || d == nullptr) return false;
  return link_between(*s, *d).peer;
}

const Interconnect& testbed_interconnect() {
  static const Interconnect model;
  return model;
}

}  // namespace eod::sim
