#include "sim/energy_model.hpp"

#include <algorithm>
#include <cmath>

namespace eod::sim {

EnergyMeter::EnergyMeter(EnergyInstrument instrument, std::uint64_t seed)
    : instrument_(instrument), state_(seed ^ 0x9e3779b97f4a7c15ull) {
  if (state_ == 0) state_ = 1;
}

double EnergyMeter::next_gaussian() {
  // xorshift64* uniform pair -> Box-Muller.
  auto uniform = [this] {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t x = state_ * 0x2545f4914f6cdd1dull;
    return (static_cast<double>(x >> 11) + 0.5) / 9007199254740992.0;
  };
  const double u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

EnergySample EnergyMeter::measure(double watts, double seconds) {
  EnergySample s;
  double measured_watts = watts;
  double joules = watts * seconds;
  switch (instrument_) {
    case EnergyInstrument::kRapl:
      // Energy counter: integrates well; ~1.5% run-to-run spread from
      // package activity outside the kernel, quantised to nJ.
      joules *= 1.0 + 0.015 * next_gaussian();
      joules = std::round(joules * 1e9) / 1e9;
      measured_watts = seconds > 0.0 ? joules / seconds : watts;
      break;
    case EnergyInstrument::kNvml:
      // Power polling: +/-5 W absolute accuracy on the card reading,
      // quantised to mW, then integrated over the region.
      measured_watts = watts + (5.0 / 3.0) * next_gaussian();
      measured_watts = std::max(0.0, std::round(measured_watts * 1e3) / 1e3);
      joules = measured_watts * seconds;
      break;
  }
  s.joules = std::max(0.0, joules);
  s.watts_mean = measured_watts;
  return s;
}

}  // namespace eod::sim
