// PAPI-style named hardware event counters.
//
// §4.3 lists the events collected per timing segment: total instructions and
// IPC, L1/L2 data cache misses, L3 total cache events (request rate, miss
// rate, miss ratio), data TLB miss rate, and branch instructions /
// mispredictions.  CounterSet is the container those land in, and
// derive_papi_counters() fills one from a kernel's workload profile plus a
// cache hierarchy replay.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "sim/cache_sim.hpp"
#include "xcl/executor.hpp"
#include "xcl/modeling.hpp"

namespace eod::sim {

/// The PAPI preset events the paper records.
enum class PapiEvent : std::uint8_t {
  kTotIns,   // PAPI_TOT_INS
  kTotCyc,   // PAPI_TOT_CYC
  kL1Dcm,    // PAPI_L1_DCM
  kL2Dcm,    // PAPI_L2_DCM
  kL3Tcm,    // PAPI_L3_TCM
  kL3Tca,    // PAPI_L3_TCA (total cache accesses = requests)
  kTlbDm,    // PAPI_TLB_DM
  kBrIns,    // PAPI_BR_INS
  kBrMsp,    // PAPI_BR_MSP
};

[[nodiscard]] const char* papi_name(PapiEvent e) noexcept;

class CounterSet {
 public:
  void set(PapiEvent e, std::uint64_t v) { values_[e] = v; }
  void add(PapiEvent e, std::uint64_t v) { values_[e] += v; }
  [[nodiscard]] std::uint64_t get(PapiEvent e) const {
    const auto it = values_.find(e);
    return it == values_.end() ? 0 : it->second;
  }

  /// Instructions per cycle (0 when cycles are unknown).
  [[nodiscard]] double ipc() const;
  /// L3 metrics exactly as the paper defines them (§4.3): request rate =
  /// requests/instructions, miss rate = misses/instructions, miss ratio =
  /// misses/requests.
  [[nodiscard]] double l3_request_rate() const;
  [[nodiscard]] double l3_miss_rate() const;
  [[nodiscard]] double l3_miss_ratio() const;
  [[nodiscard]] double tlb_miss_rate() const;
  [[nodiscard]] double branch_misprediction_rate() const;

 private:
  std::map<PapiEvent, std::uint64_t> values_;
};

/// Builds the counter set for one kernel launch: instruction counts from the
/// workload profile, cache events from a hierarchy replay (when a trace was
/// provided) and a branch-predictor model from the divergence estimate.
[[nodiscard]] CounterSet derive_papi_counters(
    const xcl::WorkloadProfile& profile, const HierarchyCounters& cache,
    double clock_ghz, double seconds, unsigned simd_width = 1);

/// Formats the host-side NDRange-executor dispatch counters (work-stealing
/// activity and per-worker scratch reuse) as a small human-readable block
/// for suite/counter reports.  These are harness observability counters,
/// not modeled PAPI events: they describe the benchmarking substrate
/// itself, the launch-overhead concern of LibSciBench-style measurement.
[[nodiscard]] std::string describe_executor_stats(
    const xcl::ExecutorStats& stats);

}  // namespace eod::sim
