// Analytic per-device kernel timing: an extended roofline model with
// occupancy, SIMD-divergence, memory-level residence, latency-chain and
// launch-overhead terms.
//
// The model is deterministic; run-to-run measurement noise (the coefficient
// of variation the paper discusses) is added by the harness sampler using
// measurement_noise_cov().
#pragma once

#include <memory>

#include "sim/cache_sim.hpp"
#include "sim/device_spec.hpp"
#include "xcl/modeling.hpp"

namespace eod::sim {

class DevicePerfModel final : public xcl::TimingModel {
 public:
  explicit DevicePerfModel(const DeviceSpec& spec) : spec_(spec) {}

  /// Component view of one launch's modeled time, for ablation benches and
  /// model debugging.
  struct Breakdown {
    double launch_s = 0.0;   ///< runtime enqueue/dispatch overhead
    double compute_s = 0.0;  ///< throughput-or-occupancy-bound ALU time
    double serial_s = 0.0;   ///< Amdahl serial remainder
    double memory_s = 0.0;   ///< bandwidth term from the residence level
    double latency_s = 0.0;  ///< dependent-access latency term
    int residence_level = 0; ///< 1=L1, 2=L2, 3=L3, 4=DRAM
    double total_s = 0.0;
  };

  [[nodiscard]] Breakdown analyze(const xcl::KernelLaunchStats& launch) const;

  // xcl::TimingModel
  [[nodiscard]] double kernel_seconds(
      const xcl::KernelLaunchStats& launch) const override;
  [[nodiscard]] double transfer_seconds(std::size_t bytes,
                                        xcl::TransferDir dir) const override;
  [[nodiscard]] double kernel_power_watts(
      const xcl::KernelLaunchStats& launch) const override;

  /// Coefficient of variation of repeated time measurements on this device.
  /// The paper observes CoV is "much greater for devices with a lower clock
  /// frequency, regardless of accelerator type"; the sampler reproduces that
  /// with this clock-dependent spread.
  [[nodiscard]] double measurement_noise_cov() const override;

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }

  /// Effective bandwidth derating for an access pattern on this device
  /// class, in (0,1].  Exposed for the ablation bench.
  [[nodiscard]] double pattern_bandwidth_factor(xcl::AccessPattern p) const;

  /// The launch's architectural lower bound on this device: peak-throughput
  /// compute or residence-level-bandwidth memory, whichever dominates, with
  /// no overheads, occupancy, divergence or pattern penalties.  This is the
  /// "ideal performance" notion of the paper's §7, used by the
  /// performance-portability report.
  [[nodiscard]] double roofline_seconds(
      const xcl::KernelLaunchStats& launch) const;

  /// Higher-fidelity memory term: instead of the analytic residence rule,
  /// uses measured per-level traffic from a trace replay (steady-state
  /// HierarchyCounters) to price each level's bytes at its bandwidth.
  /// Returns the replacement for Breakdown::memory_s; all other terms are
  /// unchanged.  Compared against the analytic term in
  /// bench/ablate_cachesim.
  [[nodiscard]] double memory_seconds_from_counters(
      const xcl::KernelLaunchStats& launch,
      const HierarchyCounters& counters) const;

 private:
  [[nodiscard]] double effective_lanes() const;

  DeviceSpec spec_;
};

}  // namespace eod::sim
