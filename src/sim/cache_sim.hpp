// Trace-driven, set-associative, LRU, multi-level cache + TLB simulator.
//
// The paper uses PAPI counters (PAPI_L1_DCM, PAPI_L2_DCM, PAPI_L3_TCM,
// data-TLB misses) to verify that each problem size lands in the intended
// level of the Skylake hierarchy (§4.4).  This simulator provides the same
// verification capability for the simulated testbed: replay a benchmark's
// memory trace through a device's hierarchy and read the miss counters.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/device_spec.hpp"

namespace eod::sim {

/// One memory access of a kernel trace.
struct MemAccess {
  std::uint64_t address = 0;
  std::uint32_t bytes = 4;
  bool is_write = false;
};

/// A recorded sequence of accesses (single-work-item program order).
using MemoryTrace = std::vector<MemAccess>;

/// One set-associative LRU cache level.
class CacheLevel {
 public:
  CacheLevel(std::size_t size_bytes, unsigned line_bytes,
             unsigned associativity);

  /// Returns true on hit; on miss the line is installed (allocate-on-miss,
  /// no inclusion/exclusion modeling).
  bool access(std::uint64_t address);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return hits_ + misses_;
  }
  [[nodiscard]] double miss_ratio() const noexcept {
    const std::uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses_) / a;
  }
  [[nodiscard]] unsigned line_bytes() const noexcept { return line_bytes_; }
  void reset_counters() noexcept { hits_ = misses_ = 0; }

 private:
  struct Way {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;  // last-use stamp
  };
  unsigned line_bytes_;
  unsigned assoc_;
  std::size_t sets_;
  std::vector<Way> ways_;  // sets_ * assoc_
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Counter names mirroring the PAPI events collected in the paper.
struct HierarchyCounters {
  std::uint64_t total_accesses = 0;
  std::uint64_t l1_dcm = 0;  ///< PAPI_L1_DCM: L1 data cache misses
  std::uint64_t l2_dcm = 0;  ///< PAPI_L2_DCM
  std::uint64_t l3_tcm = 0;  ///< PAPI_L3_TCM: total L3 misses (DRAM trips)
  std::uint64_t tlb_dm = 0;  ///< data TLB misses
};

/// L1 -> L2 [-> L3] -> DRAM plus a data TLB, built from a DeviceSpec.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const DeviceSpec& spec, unsigned tlb_entries = 64,
                          unsigned page_bytes = 4096);

  /// Runs one access through the hierarchy (splitting across cache lines if
  /// it straddles a boundary).
  void access(std::uint64_t address, std::uint32_t bytes, bool is_write);
  void replay(const MemoryTrace& trace);

  [[nodiscard]] const HierarchyCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] bool has_l3() const noexcept { return l3_.has_value(); }
  void reset();

  /// Misses per instruction-style rates, normalised by total accesses (the
  /// paper normalises by PAPI_TOT_INS; accesses are our closest analogue).
  [[nodiscard]] double l1_miss_rate() const noexcept;
  [[nodiscard]] double l2_miss_rate() const noexcept;
  [[nodiscard]] double l3_miss_rate() const noexcept;

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  std::optional<CacheLevel> l3_;
  CacheLevel tlb_;  // modeled as a cache of page numbers
  unsigned page_bytes_;
  HierarchyCounters counters_;
};

}  // namespace eod::sim
