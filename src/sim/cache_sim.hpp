// Trace-driven, set-associative, LRU, multi-level cache + TLB simulator.
//
// The paper uses PAPI counters (PAPI_L1_DCM, PAPI_L2_DCM, PAPI_L3_TCM,
// data-TLB misses) to verify that each problem size lands in the intended
// level of the Skylake hierarchy (§4.4).  This simulator provides the same
// verification capability for the simulated testbed: replay a benchmark's
// memory trace through a device's hierarchy and read the miss counters.
//
// Replay interfaces, fastest first:
//   * consume_coalesced(): pages of line-coalesced records (see
//     sim/trace_replay.hpp) -- run-length repeats of a cache line are
//     counted as guaranteed hits without a lookup.
//   * replay_cache_shard()/replay_tlb_shard(): the set-partitioned halves
//     of a coalesced replay, for running one hierarchy across several
//     workers (sets are independent under LRU, so lines can be partitioned
//     by line % shard_count without changing any counter).
//   * consume()/replay()/access(): batched and per-access raw replay.
// All paths produce bit-identical HierarchyCounters (enforced by
// tests/cache_replay_test.cpp against the per-access reference).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/device_spec.hpp"

namespace eod::sim {

/// One memory access of a kernel trace.
struct MemAccess {
  std::uint64_t address = 0;
  std::uint32_t bytes = 4;
  bool is_write = false;
};

/// A recorded sequence of accesses (single-work-item program order).
using MemoryTrace = std::vector<MemAccess>;

/// One access plus `repeats` further accesses with the same cache-line
/// span.  Under LRU a re-touch of the most recently used line(s) is a
/// guaranteed hit at every level and only refreshes recency stamps it
/// already tops, so repeats are credited as hits without a lookup --
/// provably exact (tests/cache_replay_test.cpp).
struct CoalescedAccess {
  std::uint64_t address = 0;
  std::uint32_t bytes = 4;
  std::uint32_t repeats = 0;
};

/// One set-associative LRU cache level.
class CacheLevel {
 public:
  CacheLevel(std::size_t size_bytes, unsigned line_bytes,
             unsigned associativity);

  /// Returns true on hit; on miss the line is installed (allocate-on-miss,
  /// no inclusion/exclusion modeling).
  bool access(std::uint64_t address) {
    const bool hit = touch_line(line_index(address), ++clock_);
    if (hit) {
      ++hits_;
    } else {
      ++misses_;
    }
    return hit;
  }

  /// LRU state transition only -- no counter updates.  `stamp` must be
  /// strictly increasing over successive touches of any one set (the
  /// internal clock for sequential use, or a shard-private clock for
  /// set-partitioned parallel replay).  Returns true on hit.
  bool touch_line(std::uint64_t line, std::uint64_t stamp) noexcept {
    const std::size_t set =
        sets_pow2_ ? static_cast<std::size_t>(line & set_mask_)
                   : static_cast<std::size_t>(line % sets_);
    std::uint64_t* tags = &tags_[set * assoc_];
    std::uint64_t* stamps = &stamps_[set * assoc_];
    unsigned victim = 0;
    for (unsigned w = 0; w < assoc_; ++w) {
      if (tags[w] == line) {
        stamps[w] = stamp;
        return true;
      }
      if (stamps[w] < stamps[victim]) victim = w;
    }
    tags[victim] = line;
    stamps[victim] = stamp;
    return false;
  }

  /// Folds externally-counted hits/misses (repeat credits, shard-local
  /// accumulators) into this level's counters.
  void credit(std::uint64_t hits, std::uint64_t misses) noexcept {
    hits_ += hits;
    misses_ += misses;
  }

  [[nodiscard]] std::uint64_t line_index(std::uint64_t address) const
      noexcept {
    return address >> line_shift_;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return hits_ + misses_;
  }
  [[nodiscard]] double miss_ratio() const noexcept {
    const std::uint64_t a = accesses();
    return a == 0 ? 0.0 : static_cast<double>(misses_) / a;
  }
  [[nodiscard]] unsigned line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] unsigned line_shift() const noexcept { return line_shift_; }
  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }
  [[nodiscard]] std::size_t capacity_lines() const noexcept {
    return sets_ * assoc_;
  }
  [[nodiscard]] std::uint64_t clock() const noexcept { return clock_; }
  /// Moves the internal stamp clock forward (never backward) so stamps
  /// handed out after an externally-clocked replay stay above every stamp
  /// already in the arrays.
  void advance_clock(std::uint64_t to) noexcept {
    if (to > clock_) clock_ = to;
  }
  void reset_counters() noexcept { hits_ = misses_ = 0; }

 private:
  unsigned line_bytes_;
  unsigned line_shift_ = 0;
  unsigned assoc_;
  std::size_t sets_ = 0;
  std::uint64_t set_mask_ = 0;
  bool sets_pow2_ = false;
  // Structure-of-arrays: the tag walk touches one contiguous run of
  // std::uint64_t per set (vectorizable), stamps only on the chosen way.
  std::vector<std::uint64_t> tags_;    // sets_ * assoc_, ~0 = invalid
  std::vector<std::uint64_t> stamps_;  // last-use stamps
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Counter names mirroring the PAPI events collected in the paper.
struct HierarchyCounters {
  std::uint64_t total_accesses = 0;
  std::uint64_t l1_dcm = 0;  ///< PAPI_L1_DCM: L1 data cache misses
  std::uint64_t l2_dcm = 0;  ///< PAPI_L2_DCM
  std::uint64_t l3_tcm = 0;  ///< PAPI_L3_TCM: total L3 misses (DRAM trips)
  std::uint64_t tlb_dm = 0;  ///< data TLB misses

  friend bool operator==(const HierarchyCounters& a,
                         const HierarchyCounters& b) {
    return a.total_accesses == b.total_accesses && a.l1_dcm == b.l1_dcm &&
           a.l2_dcm == b.l2_dcm && a.l3_tcm == b.l3_tcm &&
           a.tlb_dm == b.tlb_dm;
  }
};

/// Shard-local accumulator for set-partitioned parallel replay: every
/// counter a replay would normally bump, collected privately (no shared
/// writes) and folded once per pass via fold_shard().
struct ReplayShardCounters {
  HierarchyCounters counters;
  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;
  std::uint64_t l3_hits = 0, l3_misses = 0;
  std::uint64_t tlb_hits = 0, tlb_misses = 0;
  std::uint64_t clock = 0;  ///< shard-private LRU stamp source
  // One-entry MRU filters: a re-touch of the most recent line/page is a
  // guaranteed hit whose stamp refresh cannot change any relative LRU
  // order, so the walk is skipped (exact; same argument as coalescing).
  std::uint64_t last_line = ~0ull;
  std::uint64_t last_page = ~0ull;
};

/// L1 -> L2 [-> L3] -> DRAM plus a data TLB, built from a DeviceSpec.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const DeviceSpec& spec, unsigned tlb_entries = 64,
                          unsigned page_bytes = 4096);

  /// Runs one access through the hierarchy (splitting across cache lines if
  /// it straddles a boundary).
  void access(std::uint64_t address, std::uint32_t bytes, bool is_write);
  void replay(const MemoryTrace& trace);

  /// Batched raw replay: one page of accesses per call.
  void consume(const MemAccess* page, std::size_t n);
  /// Batched line-coalesced replay (repeats credited as guaranteed hits).
  void consume_coalesced(const CoalescedAccess* page, std::size_t n);

  /// Set-partitioned parallel replay, cache-level half: processes only the
  /// lines with line % shard_count == shard (shard_count must divide
  /// max_replay_shards()).  Touches no shared counter; accumulate into
  /// `acc` and fold_shard() once per pass.  The TLB/total half is
  /// replay_tlb_shard() (the TLB is fully associative, so it cannot be
  /// set-partitioned and runs as its own unit).
  void replay_cache_shard(const CoalescedAccess* page, std::size_t n,
                          unsigned shard, unsigned shard_count,
                          ReplayShardCounters& acc);
  void replay_tlb_shard(const CoalescedAccess* page, std::size_t n,
                        ReplayShardCounters& acc);
  void fold_shard(const ReplayShardCounters& acc);

  /// Fresh shard accumulator whose private clock starts above every stamp
  /// currently stored in any level, so a replay pass started mid-lifetime
  /// (e.g. a warm pass after a cold pass) keeps stamps monotonic per set.
  [[nodiscard]] ReplayShardCounters make_shard() const noexcept;

  /// Largest power-of-two shard count for which set partitioning is exact:
  /// divides every level's set count, provided all levels share one line
  /// size (otherwise 1: a single line index must address every level).
  [[nodiscard]] unsigned max_replay_shards() const noexcept;

  [[nodiscard]] const HierarchyCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] bool has_l3() const noexcept { return l3_.has_value(); }
  void reset();

  /// Misses per instruction-style rates, normalised by total accesses (the
  /// paper normalises by PAPI_TOT_INS; accesses are our closest analogue).
  [[nodiscard]] double l1_miss_rate() const noexcept;
  [[nodiscard]] double l2_miss_rate() const noexcept;
  [[nodiscard]] double l3_miss_rate() const noexcept;

 private:
  CacheLevel l1_;
  CacheLevel l2_;
  std::optional<CacheLevel> l3_;
  CacheLevel tlb_;  // modeled as a cache of page numbers
  unsigned page_bytes_;
  unsigned page_shift_;
  HierarchyCounters counters_;
};

}  // namespace eod::sim
