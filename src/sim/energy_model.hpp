// RAPL / NVML measurement emulation.
//
// The paper measures kernel energy on the Skylake i7-6700K via the RAPL
// PAPI module (rapl:::PP0_ENERGY:PACKAGE0, nJ resolution) and on the
// GTX 1080 via NVML power readings (mW resolution, +/-5 W accuracy for the
// whole card).  This module converts modeled power x time into "measured"
// joules with each instrument's quantisation and noise characteristics.
#pragma once

#include <cstdint>

namespace eod::sim {

enum class EnergyInstrument : std::uint8_t {
  kRapl,  ///< CPU package counter: nJ quantisation, small relative noise
  kNvml,  ///< GPU power polling: mW readings, +/-5 W card-level accuracy
};

/// One simulated energy measurement of a kernel region.
struct EnergySample {
  double joules = 0.0;
  double watts_mean = 0.0;
};

class EnergyMeter {
 public:
  EnergyMeter(EnergyInstrument instrument, std::uint64_t seed);

  /// Converts modeled (power, duration) into an instrument reading with the
  /// appropriate noise: RAPL counters integrate accurately (~1% spread);
  /// NVML polls power with +/-5 W absolute error on the reading.
  [[nodiscard]] EnergySample measure(double watts, double seconds);

 private:
  EnergyInstrument instrument_;
  std::uint64_t state_;
  double next_gaussian();
};

}  // namespace eod::sim
