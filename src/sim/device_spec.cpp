#include "sim/device_spec.hpp"

#include <stdexcept>

namespace eod::sim {

namespace {

constexpr std::size_t kKiB = 1024;
constexpr std::size_t kMiB = 1024 * kKiB;
constexpr std::size_t kGiB = 1024 * kMiB;

// Common hierarchy shapes.  Per-level bandwidths are expressed relative to
// DRAM bandwidth with the usual ratios (CPU L1 ~16x DRAM, L2 ~8x, L3 ~4x;
// GPU L1/LDS ~8x, L2 ~3x).

void finish_cpu(DeviceSpec& d) {
  d.l1 = {d.l1_kib * kKiB, 64, 8, 1.2, d.mem_bandwidth_gbs * 16};
  d.l2 = {d.l2_kib * kKiB, 64, 8, 3.8, d.mem_bandwidth_gbs * 8};
  d.l3 = {d.l3_kib * kKiB, 64, 16, 12.0, d.mem_bandwidth_gbs * 4};
  d.dram_latency_ns = 85.0;
  d.transfer_bandwidth_gbs = 10.0;  // host<->"device" is a memcpy
  d.transfer_latency_us = 1.0;
  d.launch_overhead_us = 3.0;       // Intel CPU runtime enqueues are cheap
  d.simd_width = 8;                 // AVX/AVX2 float lanes
  d.int_ratio = 1.0;                // CPUs are as fast on ints as floats
  d.concurrency = 10.0 * d.core_count / 2;  // ~10 MSHRs per physical core
  d.opencl_efficiency = 0.80;
  d.idle_power_w = 0.12 * d.tdp_w;
  // Superscalar OoO core: ~4 ops/cycle serial throughput at turbo clock.
  d.scalar_gops = 4.0e-3 * d.nominal_clock_mhz();
}

void finish_nvidia(DeviceSpec& d, double l2_total_mib) {
  d.l1 = {d.l1_kib * kKiB, 128, 4, 28.0, d.mem_bandwidth_gbs * 8};
  d.l2 = {static_cast<std::size_t>(l2_total_mib * 1024) * kKiB, 128, 16, 120.0,
          d.mem_bandwidth_gbs * 3};
  d.l3 = {};
  d.dram_latency_ns = 280.0;
  d.transfer_bandwidth_gbs = 12.0;  // PCIe 3.0 x16
  d.transfer_latency_us = 12.0;
  // GPUDirect P2P over a shared PCIe 3.0 root complex: one DMA hop, no
  // host bounce buffer, but the doorbell/handshake costs more than a
  // host-initiated transfer.
  d.p2p_capable = true;
  d.p2p_bandwidth_gbs = 10.0;
  d.p2p_latency_us = 20.0;
  d.launch_overhead_us = 6.0;
  d.simd_width = 32;  // warp
  d.int_ratio = 0.33;
  d.concurrency = 40.0 * d.core_count / 128;  // deep latency hiding
  d.opencl_efficiency = 0.80;
  d.idle_power_w = 0.06 * d.tdp_w;
  // One in-order lane at ~1 op/cycle: serial chains are slow on GPUs.
  d.scalar_gops = 1.0e-3 * d.nominal_clock_mhz();
}

void finish_amd(DeviceSpec& d) {
  d.l1 = {d.l1_kib * kKiB, 64, 4, 35.0, d.mem_bandwidth_gbs * 8};
  d.l2 = {d.l2_kib * kKiB, 64, 16, 150.0, d.mem_bandwidth_gbs * 3};
  d.l3 = {};
  d.dram_latency_ns = 300.0;
  d.transfer_bandwidth_gbs = 11.0;
  d.transfer_latency_us = 15.0;
  // DirectGMA peer path: works, but the amdappsdk setup round-trip is
  // slower than Nvidia's and the sustained rate a little lower.
  d.p2p_capable = true;
  d.p2p_bandwidth_gbs = 9.0;
  d.p2p_latency_us = 25.0;
  // The amdappsdk 3.0 enqueue path is heavier than the Nvidia driver's
  // and degrades as the unflushed batch grows; this is what stretches
  // launch-stream codes like nw as the problem size rises (§5.1).
  d.launch_overhead_us = 8.0;
  d.launch_depth_factor = 0.008;
  d.simd_width = 64;  // wavefront
  d.int_ratio = 0.33;
  d.concurrency = 40.0 * d.core_count / 128;
  d.opencl_efficiency = 0.75;
  d.idle_power_w = 0.06 * d.tdp_w;
  d.scalar_gops = 1.0e-3 * d.nominal_clock_mhz();
}

std::vector<DeviceSpec> build_testbed() {
  std::vector<DeviceSpec> v;

  // ---------------------------- Intel CPUs ----------------------------
  {
    DeviceSpec d;
    d.name = "Xeon E5-2697 v2";
    d.vendor = "Intel";
    d.series = "Ivy Bridge";
    d.klass = AcceleratorClass::kCpu;
    d.core_count = 24;  // hyper-threaded cores (12 physical)
    d.clock_min_mhz = 1200;
    d.clock_max_mhz = 2700;
    d.clock_turbo_mhz = 3500;
    d.l1_kib = 32;
    d.l2_kib = 256;
    d.l3_kib = 30720;
    d.tdp_w = 130;
    d.launch_date = "Q3 2013";
    // 12 cores x 2.7 GHz x 16 SP FLOP/cycle (AVX mul+add).
    d.peak_sp_gflops = 518.0;
    d.mem_bandwidth_gbs = 59.7;  // 4-channel DDR3-1866
    d.global_mem_bytes = 64 * kGiB;
    finish_cpu(d);
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "i7-6700K";
    d.vendor = "Intel";
    d.series = "Skylake";
    d.klass = AcceleratorClass::kCpu;
    d.core_count = 8;  // hyper-threaded cores (4 physical)
    d.clock_min_mhz = 800;
    d.clock_max_mhz = 4000;
    d.clock_turbo_mhz = 4300;
    d.l1_kib = 32;
    d.l2_kib = 256;
    d.l3_kib = 8192;
    d.tdp_w = 91;
    d.launch_date = "Q3 2015";
    // 4 cores x 4.0 GHz x 32 SP FLOP/cycle (2x 8-wide FMA).
    d.peak_sp_gflops = 512.0;
    d.mem_bandwidth_gbs = 34.1;  // 2-channel DDR4-2133
    d.global_mem_bytes = 32 * kGiB;
    finish_cpu(d);
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "i5-3550";
    d.vendor = "Intel";
    d.series = "Ivy Bridge";
    d.klass = AcceleratorClass::kCpu;
    d.core_count = 4;
    d.clock_min_mhz = 1600;
    d.clock_max_mhz = 3380;
    d.clock_turbo_mhz = 3700;
    d.l1_kib = 32;
    d.l2_kib = 256;
    d.l3_kib = 6144;  // the small L3 behind the medium-size cliff in Fig. 2
    d.tdp_w = 77;
    d.launch_date = "Q2 2012";
    // 4 cores x 3.38 GHz x 16 SP FLOP/cycle (AVX mul+add).
    d.peak_sp_gflops = 216.0;
    d.mem_bandwidth_gbs = 25.6;  // 2-channel DDR3-1600
    d.global_mem_bytes = 16 * kGiB;
    finish_cpu(d);
    v.push_back(d);
  }

  // --------------------------- Nvidia GPUs ----------------------------
  {
    DeviceSpec d;
    d.name = "Titan X";
    d.vendor = "Nvidia";
    d.series = "Pascal";
    d.klass = AcceleratorClass::kConsumerGpu;
    d.core_count = 3584;
    d.clock_min_mhz = 1417;
    d.clock_max_mhz = 1531;
    d.l1_kib = 48;
    d.l2_kib = 2048;
    d.tdp_w = 250;
    d.launch_date = "Q3 2016";
    d.peak_sp_gflops = 10974.0;
    d.mem_bandwidth_gbs = 480.0;  // GDDR5X 384-bit
    d.global_mem_bytes = 12 * kGiB;
    finish_nvidia(d, 3.0);
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "GTX 1080";
    d.vendor = "Nvidia";
    d.series = "Pascal";
    d.klass = AcceleratorClass::kConsumerGpu;
    d.core_count = 2560;
    d.clock_min_mhz = 1607;
    d.clock_max_mhz = 1733;
    d.l1_kib = 48;
    d.l2_kib = 2048;
    d.tdp_w = 180;
    d.launch_date = "Q2 2016";
    d.peak_sp_gflops = 8873.0;
    d.mem_bandwidth_gbs = 320.0;  // GDDR5X 256-bit
    d.global_mem_bytes = 8 * kGiB;
    finish_nvidia(d, 2.0);
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "GTX 1080 Ti";
    d.vendor = "Nvidia";
    d.series = "Pascal";
    d.klass = AcceleratorClass::kConsumerGpu;
    d.core_count = 3584;
    d.clock_min_mhz = 1480;
    d.clock_max_mhz = 1582;
    d.l1_kib = 48;
    d.l2_kib = 2048;
    d.tdp_w = 250;
    d.launch_date = "Q1 2017";
    d.peak_sp_gflops = 11340.0;
    d.mem_bandwidth_gbs = 484.0;  // GDDR5X 352-bit
    d.global_mem_bytes = 11 * kGiB;
    finish_nvidia(d, 2.75);
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "K20m";
    d.vendor = "Nvidia";
    d.series = "Kepler";
    d.klass = AcceleratorClass::kHpcGpu;
    d.core_count = 2496;
    d.clock_min_mhz = 706;
    d.l1_kib = 64;
    d.l2_kib = 1536;
    d.tdp_w = 225;
    d.launch_date = "Q4 2012";
    d.peak_sp_gflops = 3524.0;
    d.mem_bandwidth_gbs = 208.0;  // GDDR5 320-bit
    d.global_mem_bytes = 5 * kGiB;
    finish_nvidia(d, 1.5);
    // Kepler's shared L1 and weaker scheduler hide less latency than Pascal.
    d.concurrency *= 0.6;
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "K40m";
    d.vendor = "Nvidia";
    d.series = "Kepler";
    d.klass = AcceleratorClass::kHpcGpu;
    d.core_count = 2880;
    d.clock_min_mhz = 745;
    d.clock_max_mhz = 875;
    d.l1_kib = 64;
    d.l2_kib = 1536;
    d.tdp_w = 235;
    d.launch_date = "Q4 2013";
    d.peak_sp_gflops = 4291.0;
    d.mem_bandwidth_gbs = 288.0;  // GDDR5 384-bit
    d.global_mem_bytes = 12 * kGiB;
    finish_nvidia(d, 1.5);
    d.concurrency *= 0.6;
    v.push_back(d);
  }

  // ----------------------------- AMD GPUs -----------------------------
  {
    DeviceSpec d;
    d.name = "FirePro S9150";
    d.vendor = "AMD";
    d.series = "Hawaii";
    d.klass = AcceleratorClass::kHpcGpu;
    d.core_count = 2816;
    d.clock_min_mhz = 900;
    d.l1_kib = 16;
    d.l2_kib = 1024;
    d.tdp_w = 235;
    d.launch_date = "Q3 2014";
    d.peak_sp_gflops = 5070.0;
    d.mem_bandwidth_gbs = 320.0;  // GDDR5 512-bit
    d.global_mem_bytes = 16 * kGiB;
    finish_amd(d);
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "HD 7970";
    d.vendor = "AMD";
    d.series = "Tahiti";
    d.klass = AcceleratorClass::kConsumerGpu;
    d.core_count = 2048;
    d.clock_min_mhz = 925;
    d.clock_max_mhz = 1010;
    d.l1_kib = 16;
    d.l2_kib = 768;
    d.tdp_w = 250;
    d.launch_date = "Q4 2011";
    d.peak_sp_gflops = 3789.0;
    d.mem_bandwidth_gbs = 264.0;  // GDDR5 384-bit
    d.global_mem_bytes = 3 * kGiB;
    finish_amd(d);
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "R9 290X";
    d.vendor = "AMD";
    d.series = "Hawaii";
    d.klass = AcceleratorClass::kConsumerGpu;
    d.core_count = 2816;
    d.clock_min_mhz = 1000;
    d.l1_kib = 16;
    d.l2_kib = 1024;
    d.tdp_w = 250;
    d.launch_date = "Q3 2014";
    d.peak_sp_gflops = 5632.0;
    d.mem_bandwidth_gbs = 320.0;
    d.global_mem_bytes = 4 * kGiB;
    finish_amd(d);
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "R9 295x2";
    d.vendor = "AMD";
    d.series = "Hawaii";
    d.klass = AcceleratorClass::kConsumerGpu;
    d.core_count = 5632;  // Table 1 counts both Hawaii dies
    d.clock_min_mhz = 1018;
    d.l1_kib = 16;
    d.l2_kib = 1024;
    d.tdp_w = 500;
    d.launch_date = "Q2 2014";
    // OpenCL enumerates each die as its own device; a single-device kernel
    // launch (which is what the suite runs) uses one Hawaii die.
    d.peak_sp_gflops = 5733.0;
    d.mem_bandwidth_gbs = 320.0;
    d.global_mem_bytes = 4 * kGiB;
    finish_amd(d);
    d.idle_power_w = 0.06 * 500;  // both dies idle while one computes
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "R9 Fury X";
    d.vendor = "AMD";
    d.series = "Fuji";
    d.klass = AcceleratorClass::kConsumerGpu;
    d.core_count = 4096;
    d.clock_min_mhz = 1050;
    d.l1_kib = 16;
    d.l2_kib = 2048;
    d.tdp_w = 273;
    d.launch_date = "Q2 2015";
    d.peak_sp_gflops = 8602.0;
    d.mem_bandwidth_gbs = 512.0;  // HBM1
    d.global_mem_bytes = 4 * kGiB;
    finish_amd(d);
    v.push_back(d);
  }
  {
    DeviceSpec d;
    d.name = "RX 480";
    d.vendor = "AMD";
    d.series = "Polaris";
    d.klass = AcceleratorClass::kConsumerGpu;
    d.core_count = 4096;  // as printed in Table 1
    d.clock_min_mhz = 1120;
    d.clock_max_mhz = 1266;
    d.l1_kib = 16;
    d.l2_kib = 2048;
    d.tdp_w = 150;
    d.launch_date = "Q2 2016";
    d.peak_sp_gflops = 5834.0;  // 2304 SPs x 1.266 GHz x 2 (datasheet)
    d.mem_bandwidth_gbs = 256.0;  // GDDR5 256-bit
    d.global_mem_bytes = 8 * kGiB;
    finish_amd(d);
    // Polaris command processor is a generation newer than Hawaii's.
    d.launch_overhead_us = 6.0;
    d.launch_depth_factor = 0.006;
    v.push_back(d);
  }

  // ------------------------------- MIC --------------------------------
  {
    DeviceSpec d;
    d.name = "Xeon Phi 7210";
    d.vendor = "Intel";
    d.series = "KNL";
    d.klass = AcceleratorClass::kMic;
    d.core_count = 256;  // 64 physical cores x 4 hardware threads
    d.clock_min_mhz = 1300;
    d.clock_max_mhz = 1500;
    d.l1_kib = 32;
    d.l2_kib = 1024;
    d.tdp_w = 215;
    d.launch_date = "Q2 2016";
    // Intel's OpenCL SDK emits only 256-bit AVX2 (no -xMIC-AVX512), so
    // floating-point peak is half the silicon's: 64 x 1.3 GHz x 32.
    d.peak_sp_gflops = 2662.0;
    // The SDK allocates from DDR4, not MCDRAM.
    d.mem_bandwidth_gbs = 80.0;
    d.global_mem_bytes = 96 * kGiB;
    d.l1 = {32 * kKiB, 64, 8, 2.5, d.mem_bandwidth_gbs * 12};
    d.l2 = {1024 * kKiB, 64, 16, 14.0, d.mem_bandwidth_gbs * 5};
    d.l3 = {};
    d.dram_latency_ns = 150.0;
    d.transfer_bandwidth_gbs = 8.0;  // self-hosted: memcpy
    d.transfer_latency_us = 2.0;
    d.launch_overhead_us = 150.0;  // deprecated, high-latency runtime path
    d.simd_width = 8;              // AVX2 lanes, not the native 16
    d.int_ratio = 0.15;  // the SDK emits scalar integer code on KNL
    d.concurrency = 120.0;
    d.opencl_efficiency = 0.35;   // deprecated driver on untested silicon
    d.idle_power_w = 0.35 * d.tdp_w;  // many always-on tiles and fabric
    // Silvermont-derived in-order core at 1.3-1.5 GHz running unscheduled
    // scalar code from the deprecated SDK: very weak serially.
    d.scalar_gops = 0.5e-3 * d.nominal_clock_mhz();
    v.push_back(d);
  }

  return v;
}

}  // namespace

const std::vector<DeviceSpec>& testbed() {
  static const std::vector<DeviceSpec> specs = build_testbed();
  return specs;
}

const DeviceSpec& spec_by_name(const std::string& name) {
  for (const DeviceSpec& d : testbed()) {
    if (d.name == name) return d;
  }
  throw std::invalid_argument("unknown testbed device: " + name);
}

const DeviceSpec& skylake() { return spec_by_name("i7-6700K"); }

}  // namespace eod::sim
