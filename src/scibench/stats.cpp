#include "scibench/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <stdexcept>

namespace eod::scibench {

namespace {

double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

// Lanczos log-gamma; accurate to ~1e-13 for positive arguments.
double log_gamma(double x) {
  static constexpr double kCoeff[] = {
      676.5203681218851,     -1259.1392167224028,  771.32342877765313,
      -176.61502916214059,   12.507343278686905,   -0.13857109526572012,
      9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - log_gamma(1.0 - x);
  }
  x -= 1.0;
  double a = 0.99999999999980993;
  const double t = x + 7.5;
  for (int i = 0; i < 8; ++i) a += kCoeff[i] / (x + i + 1);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(a);
}

// Continued fraction for the incomplete beta function (Numerical Recipes
// "betacf" style, with Lentz's algorithm).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;

  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());

  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(s.n);
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = sorted_quantile(sorted, 0.5);
  s.q1 = sorted_quantile(sorted, 0.25);
  s.q3 = sorted_quantile(sorted, 0.75);

  if (s.n > 1) {
    double ss = 0.0;
    for (double x : sorted) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.variance = ss / static_cast<double>(s.n - 1);
    s.stddev = std::sqrt(s.variance);
  }
  return s;
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, std::clamp(q, 0.0, 1.0));
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_quantile requires p in (0,1)");
  }
  // Acklam's rational approximation, refined by one Halley step.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement against the true CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double incomplete_beta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double student_t_cdf(double t, double df) {
  if (df <= 0.0) throw std::domain_error("student_t_cdf requires df > 0");
  const double x = df / (df + t * t);
  const double tail = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - tail : tail;
}

TTestResult welch_t_test(std::span<const double> a, std::span<const double> b) {
  const Summary sa = summarize(a);
  const Summary sb = summarize(b);
  TTestResult r;
  if (sa.n < 2 || sb.n < 2) return r;
  const double va = sa.variance / static_cast<double>(sa.n);
  const double vb = sb.variance / static_cast<double>(sb.n);
  const double se = std::sqrt(va + vb);
  if (se == 0.0) {
    r.t = (sa.mean == sb.mean) ? 0.0 : std::numeric_limits<double>::infinity();
    r.df = static_cast<double>(sa.n + sb.n - 2);
    r.p_value = (sa.mean == sb.mean) ? 1.0 : 0.0;
    return r;
  }
  r.t = (sa.mean - sb.mean) / se;
  // Welch-Satterthwaite degrees of freedom.
  const double num = (va + vb) * (va + vb);
  const double den = va * va / static_cast<double>(sa.n - 1) +
                     vb * vb / static_cast<double>(sb.n - 1);
  r.df = num / den;
  r.p_value = 2.0 * (1.0 - student_t_cdf(std::fabs(r.t), r.df));
  return r;
}

ConfidenceInterval mean_confidence_interval(std::span<const double> xs,
                                            double alpha) {
  const Summary s = summarize(xs);
  if (s.n < 2) return {s.mean, s.mean};
  // Invert the t CDF by bisection on [0, 1e3]; monotone and fast enough.
  const double target = 1.0 - alpha / 2.0;
  const double df = static_cast<double>(s.n - 1);
  double lo = 0.0;
  double hi = 1000.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    (student_t_cdf(mid, df) < target ? lo : hi) = mid;
  }
  const double tcrit = 0.5 * (lo + hi);
  const double half = tcrit * s.stddev / std::sqrt(static_cast<double>(s.n));
  return {s.mean - half, s.mean + half};
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs, double alpha,
                                     int resamples, std::uint64_t seed) {
  if (xs.empty()) return {0.0, 0.0};
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::size_t> pick(0, xs.size() - 1);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) sum += xs[pick(rng)];
    means.push_back(sum / static_cast<double>(xs.size()));
  }
  return {quantile(means, alpha / 2.0), quantile(means, 1.0 - alpha / 2.0)};
}

}  // namespace eod::scibench
