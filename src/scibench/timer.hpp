// High-resolution timing for short-running kernel codes.
//
// LibSciBench (Hoefler & Belli, SC'15) offers a one-cycle-resolution timer
// with ~6 ns overhead; this is the equivalent substrate used throughout the
// suite.  Timestamps are taken from std::chrono::steady_clock (which on
// Linux maps to clock_gettime(CLOCK_MONOTONIC), vDSO, tens of ns) plus a
// TSC-based cycle counter where available.
#pragma once

#include <chrono>
#include <cstdint>

namespace eod::scibench {

/// Nanosecond timestamp from a monotonic clock.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  const auto tp = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(tp).count());
}

/// Raw cycle counter (TSC on x86-64; falls back to the ns clock elsewhere).
[[nodiscard]] inline std::uint64_t now_cycles() noexcept {
#if defined(__x86_64__)
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return now_ns();
#endif
}

/// Scoped stopwatch accumulating elapsed nanoseconds.
class Timer {
 public:
  void start() noexcept { start_ns_ = now_ns(); }

  /// Stops and returns the elapsed time of this lap in nanoseconds.
  std::uint64_t stop() noexcept {
    const std::uint64_t lap = now_ns() - start_ns_;
    total_ns_ += lap;
    ++laps_;
    return lap;
  }

  [[nodiscard]] std::uint64_t total_ns() const noexcept { return total_ns_; }
  [[nodiscard]] std::uint64_t laps() const noexcept { return laps_; }
  void reset() noexcept { *this = Timer{}; }

 private:
  std::uint64_t start_ns_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t laps_ = 0;
};

/// Measures the intrinsic overhead of taking one timestamp pair, in ns.
/// LibSciBench reports roughly 6 ns; this lets callers subtract the
/// equivalent constant for the host clock actually in use.
[[nodiscard]] double measure_timer_overhead_ns(int iterations = 10000);

}  // namespace eod::scibench
