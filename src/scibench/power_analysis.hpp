// t-test power analysis used to justify the paper's sample size.
//
// §4.3: "A sample size of 50 per group ... was used to ensure that
// sufficient statistical power β = 0.8 would be available to detect a
// significant difference in means on the scale of half standard deviation
// of separation. This sample size was computed using the t-test power
// calculation over a normal distribution."
#pragma once

#include <cstddef>

namespace eod::scibench {

/// Statistical power of a two-sample, two-sided t-test with `n` samples per
/// group for standardized effect size `d` (Cohen's d) at level `alpha`,
/// using the normal approximation to the noncentral t distribution.
[[nodiscard]] double t_test_power(std::size_t n_per_group, double effect_size,
                                  double alpha = 0.05);

/// Smallest per-group sample size achieving at least `power` for the given
/// effect size and alpha.
[[nodiscard]] std::size_t required_sample_size(double effect_size,
                                               double power = 0.8,
                                               double alpha = 0.05);

}  // namespace eod::scibench
