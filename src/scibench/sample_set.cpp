#include "scibench/sample_set.hpp"

namespace eod::scibench {

const char* segment_name(Segment s) noexcept {
  switch (s) {
    case Segment::kHostSetup:
      return "host_setup";
    case Segment::kMemoryTransfer:
      return "memory_transfer";
    case Segment::kKernel:
      return "kernel";
  }
  return "unknown";
}

void SampleSet::add(Segment segment, double value) {
  add(segment_name(segment), value);
}

void SampleSet::add(const std::string& name, double value) {
  series_[name].push_back(value);
}

std::span<const double> SampleSet::samples(const std::string& name) const {
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  return it->second;
}

std::span<const double> SampleSet::samples(Segment segment) const {
  return samples(std::string(segment_name(segment)));
}

Summary SampleSet::summary(const std::string& name) const {
  return summarize(samples(name));
}

Summary SampleSet::summary(Segment segment) const {
  return summarize(samples(segment));
}

std::vector<std::string> SampleSet::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [k, _] : series_) out.push_back(k);
  return out;
}

std::size_t SampleSet::total_samples() const noexcept {
  std::size_t n = 0;
  for (const auto& [_, v] : series_) n += v.size();
  return n;
}

void SampleSet::clear() { series_.clear(); }

}  // namespace eod::scibench
