// Fixed-bin histograms for sample distributions -- the raw material of the
// box/violin plots LibSciBench's R tooling draws from the logged samples.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace eod::scibench {

class Histogram {
 public:
  /// Bins [lo, hi) uniformly; values outside the range land in the
  /// saturating first/last bin.  Requires hi > lo and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  /// Builds limits from the data itself (min..max, right-inclusive).
  [[nodiscard]] static Histogram of(std::span<const double> xs,
                                    std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Centre value of a bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// The bin with the most samples (smallest index on ties).
  [[nodiscard]] std::size_t mode_bin() const;

  /// One-line ASCII sparkline ("▁▂▃..."-style using '.',':','|','#'),
  /// for quick terminal inspection of a sample distribution.
  [[nodiscard]] std::string sparkline() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace eod::scibench
