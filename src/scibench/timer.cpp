#include "scibench/timer.hpp"

namespace eod::scibench {

double measure_timer_overhead_ns(int iterations) {
  if (iterations <= 0) return 0.0;
  // Warm the clock path so the first few vDSO calls don't skew the mean.
  for (int i = 0; i < 64; ++i) (void)now_ns();
  const std::uint64_t begin = now_ns();
  std::uint64_t sink = 0;
  for (int i = 0; i < iterations; ++i) sink ^= now_ns();
  const std::uint64_t end = now_ns();
  asm volatile("" : : "r"(sink));  // keep the loop from being elided
  return static_cast<double>(end - begin) / iterations;
}

}  // namespace eod::scibench
