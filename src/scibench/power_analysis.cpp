#include "scibench/power_analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "scibench/stats.hpp"

namespace eod::scibench {

double t_test_power(std::size_t n_per_group, double effect_size,
                    double alpha) {
  if (n_per_group < 2) return 0.0;
  if (effect_size <= 0.0) return alpha;
  // Noncentrality parameter for two independent groups of size n.
  const double n = static_cast<double>(n_per_group);
  const double ncp = effect_size * std::sqrt(n / 2.0);
  const double z_crit = normal_quantile(1.0 - alpha / 2.0);
  // Normal approximation: reject if |T| > z_crit, T ~ N(ncp, 1).
  return (1.0 - normal_cdf(z_crit - ncp)) + normal_cdf(-z_crit - ncp);
}

std::size_t required_sample_size(double effect_size, double power,
                                 double alpha) {
  if (effect_size <= 0.0) {
    throw std::domain_error("required_sample_size needs effect_size > 0");
  }
  if (!(power > alpha && power < 1.0)) {
    throw std::domain_error("required_sample_size needs alpha < power < 1");
  }
  // Closed-form seed from the normal approximation, then walk to the exact
  // (approximated-power) boundary.
  const double za = normal_quantile(1.0 - alpha / 2.0);
  const double zb = normal_quantile(power);
  const double seed = 2.0 * (za + zb) * (za + zb) / (effect_size * effect_size);
  auto n = static_cast<std::size_t>(std::ceil(seed));
  if (n < 2) n = 2;
  while (t_test_power(n, effect_size, alpha) < power) ++n;
  while (n > 2 && t_test_power(n - 1, effect_size, alpha) >= power) --n;
  return n;
}

}  // namespace eod::scibench
