#include "scibench/logger.hpp"

#include <charconv>
#include <stdexcept>

namespace eod::scibench {

TableLogger::TableLogger(std::ostream& os, std::vector<std::string> columns)
    : os_(os), columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("TableLogger needs at least one column");
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) os_ << ' ';
    os_ << columns_[i];
  }
  os_ << '\n';
}

void TableLogger::row(std::initializer_list<std::string> values) {
  row(std::vector<std::string>(values));
}

void TableLogger::row(const std::vector<std::string>& values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("TableLogger row arity mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os_ << ' ';
    os_ << values[i];
  }
  os_ << '\n';
  ++rows_;
}

std::string TableLogger::num(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v,
                                 std::chars_format::general, 17);
  return std::string(buf, res.ptr);
}

FileTableLogger::FileTableLogger(const std::string& path,
                                 std::vector<std::string> columns)
    : file_(path), logger_(file_, std::move(columns)) {
  if (!file_) throw std::runtime_error("cannot open log file: " + path);
}

}  // namespace eod::scibench
