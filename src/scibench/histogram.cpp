#include "scibench/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace eod::scibench {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram needs hi > lo and bins >= 1");
  }
}

Histogram Histogram::of(std::span<const double> xs, std::size_t bins) {
  double lo = 0.0;
  double hi = 1.0;
  if (!xs.empty()) {
    const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
    lo = *mn;
    hi = *mx;
    if (hi <= lo) hi = lo + 1.0;  // degenerate: all samples equal
  }
  Histogram h(lo, hi, bins);
  h.add_all(xs);
  return h;
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  const auto raw = static_cast<long long>(t * static_cast<double>(bins()));
  const std::size_t bin = static_cast<std::size_t>(
      std::clamp<long long>(raw, 0, static_cast<long long>(bins()) - 1));
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (const double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(bins());
  return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::sparkline() const {
  static constexpr char kLevels[] = {' ', '.', ':', '|', '#'};
  std::size_t peak = 0;
  for (const std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  out.reserve(bins());
  for (const std::size_t c : counts_) {
    if (peak == 0) {
      out.push_back(' ');
      continue;
    }
    const auto level = static_cast<std::size_t>(
        (static_cast<double>(c) / static_cast<double>(peak)) * 4.0);
    out.push_back(kLevels[std::min<std::size_t>(level, 4)]);
  }
  return out;
}

}  // namespace eod::scibench
