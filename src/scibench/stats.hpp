// Summary statistics and distribution functions for benchmark samples.
//
// The paper reports mean kernel execution times over 50-run distributions
// and discusses the coefficient of variation across devices; LibSciBench's
// statistical post-processing is reproduced here (summaries, quantiles,
// confidence intervals, Welch's t-test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace eod::scibench {

/// Descriptive summary of a sample vector.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;   // sample (n-1) standard deviation
  double variance = 0.0; // sample variance
  double min = 0.0;
  double max = 0.0;
  double q1 = 0.0;  // 25th percentile
  double q3 = 0.0;  // 75th percentile
  /// Coefficient of variation, stddev/mean (0 when mean == 0).
  [[nodiscard]] double cov() const noexcept {
    return mean == 0.0 ? 0.0 : stddev / mean;
  }
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Linear-interpolated quantile (R type-7), q in [0,1].
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Standard normal CDF.
[[nodiscard]] double normal_cdf(double z);
/// Standard normal quantile (inverse CDF), p in (0,1).
[[nodiscard]] double normal_quantile(double p);

/// Regularized incomplete beta function I_x(a, b).
[[nodiscard]] double incomplete_beta(double a, double b, double x);

/// CDF of Student's t distribution with `df` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double df);

/// Result of a two-sample Welch t-test.
struct TTestResult {
  double t = 0.0;
  double df = 0.0;
  double p_value = 1.0;  // two-sided
  [[nodiscard]] bool significant(double alpha = 0.05) const noexcept {
    return p_value < alpha;
  }
};

/// Welch's unequal-variance t-test for a difference in means.
[[nodiscard]] TTestResult welch_t_test(std::span<const double> a,
                                       std::span<const double> b);

/// Two-sided (1-alpha) confidence interval for the mean using Student's t.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
};
[[nodiscard]] ConfidenceInterval mean_confidence_interval(
    std::span<const double> xs, double alpha = 0.05);

/// Percentile-bootstrap CI for the mean with a deterministic RNG seed.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs,
                                                   double alpha = 0.05,
                                                   int resamples = 2000,
                                                   std::uint64_t seed = 42);

}  // namespace eod::scibench
