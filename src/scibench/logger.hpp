// R-compatible tabular logging, mirroring LibSciBench's output format:
// whitespace-separated columns with a header row, directly readable by
// R's read.table() / pandas read_csv(delim_whitespace=True).
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace eod::scibench {

/// Streams rows of a fixed-schema measurement table.
class TableLogger {
 public:
  /// Writes to an ostream owned by the caller (must outlive the logger).
  TableLogger(std::ostream& os, std::vector<std::string> columns);

  /// Appends one row; throws std::invalid_argument on arity mismatch.
  void row(std::initializer_list<std::string> values);
  void row(const std::vector<std::string>& values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }

  /// Formats a double with enough digits to round-trip.
  [[nodiscard]] static std::string num(double v);

 private:
  std::ostream& os_;
  std::vector<std::string> columns_;
  std::size_t rows_ = 0;
};

/// TableLogger writing to a file it owns.
class FileTableLogger {
 public:
  FileTableLogger(const std::string& path, std::vector<std::string> columns);
  TableLogger& table() noexcept { return logger_; }

 private:
  std::ofstream file_;
  TableLogger logger_;
};

}  // namespace eod::scibench
