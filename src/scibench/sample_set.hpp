// Named sample collections for the three timing segments the paper records
// per benchmark: kernel execution, host setup, and memory transfers.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "scibench/stats.hpp"

namespace eod::scibench {

/// The application-time components instrumented in §2 of the paper.
enum class Segment { kHostSetup, kMemoryTransfer, kKernel };

[[nodiscard]] const char* segment_name(Segment s) noexcept;

/// Accumulates timing (or energy) samples keyed by segment name.
class SampleSet {
 public:
  void add(Segment segment, double value);
  void add(const std::string& name, double value);

  [[nodiscard]] std::span<const double> samples(const std::string& name) const;
  [[nodiscard]] std::span<const double> samples(Segment segment) const;
  [[nodiscard]] Summary summary(const std::string& name) const;
  [[nodiscard]] Summary summary(Segment segment) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t total_samples() const noexcept;
  void clear();

 private:
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace eod::scibench
