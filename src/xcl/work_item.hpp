// The per-work-item view a kernel body receives: get_global_id/get_local_id
// analogues, work-group barrier(), and __local memory allocation.
//
// Only the per-item kernel tier sees a WorkItem.  The span tier
// (Kernel::span, DESIGN.md §9) replaces the whole group's WorkItem
// instances with one [begin, end) range call and therefore gets neither a
// barrier hook nor a LocalArena -- a span body must be self-contained.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "xcl/error.hpp"

namespace eod::xcl {

/// Group-shared scratch standing in for OpenCL __local memory.  Slots are
/// identified by small integers chosen by the kernel author; every work-item
/// in the group requesting the same slot receives the same storage.
class LocalArena {
 public:
  LocalArena(std::size_t capacity_bytes) : capacity_(capacity_bytes) {
    storage_.resize(capacity_bytes);
  }

  static constexpr unsigned kMaxSlots = 8;

  [[nodiscard]] std::byte* acquire(unsigned slot, std::size_t bytes,
                                   std::size_t align) {
    require(slot < kMaxSlots, Status::kInvalidValue, "local slot out of range");
    Slot& s = slots_[slot];
    if (s.bytes == 0) {
      std::size_t off = (used_ + align - 1) / align * align;
      require(off + bytes <= capacity_, Status::kOutOfResources,
              "__local allocation exceeds device local memory");
      s.offset = off;
      s.bytes = bytes;
      used_ = off + bytes;
    } else {
      require(s.bytes == bytes, Status::kInvalidValue,
              "inconsistent __local allocation size across work-items");
    }
    return storage_.data() + s.offset;
  }

  /// Resets slot table between work-groups while reusing the storage.
  /// The previously-used prefix is zeroed so a recycled arena is
  /// indistinguishable from a freshly constructed one (whose storage is
  /// value-initialized): work-groups always observe zeroed __local memory.
  void reset() noexcept {
    std::fill(storage_.begin(),
              storage_.begin() + static_cast<std::ptrdiff_t>(used_),
              std::byte{0});
    used_ = 0;
    slots_.fill(Slot{});
  }

  /// Grows the arena (zero-filled, like construction) so one long-lived
  /// per-worker arena can serve devices with differing __local capacities.
  /// Never shrinks; existing slots stay valid only until the next reset().
  void ensure_capacity(std::size_t capacity_bytes) {
    if (capacity_bytes > capacity_) {
      storage_.resize(capacity_bytes);
      capacity_ = capacity_bytes;
    }
  }

  [[nodiscard]] std::size_t used_bytes() const noexcept { return used_; }
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_;
  }

 private:
  struct Slot {
    std::size_t offset = 0;
    std::size_t bytes = 0;
  };
  std::size_t capacity_;
  std::size_t used_ = 0;
  std::array<Slot, kMaxSlots> slots_{};
  std::vector<std::byte> storage_;
};

class WorkItem {
 public:
  WorkItem(std::array<std::size_t, 3> global_id,
           std::array<std::size_t, 3> local_id,
           std::array<std::size_t, 3> group_id,
           std::array<std::size_t, 3> global_size,
           std::array<std::size_t, 3> local_size, LocalArena* arena,
           const std::function<void()>* barrier_hook)
      : global_id_(global_id),
        local_id_(local_id),
        group_id_(group_id),
        global_size_(global_size),
        local_size_(local_size),
        arena_(arena),
        barrier_hook_(barrier_hook) {}

  [[nodiscard]] std::size_t global_id(int d = 0) const noexcept {
    return global_id_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::size_t local_id(int d = 0) const noexcept {
    return local_id_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::size_t group_id(int d = 0) const noexcept {
    return group_id_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::size_t global_size(int d = 0) const noexcept {
    return global_size_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::size_t local_size(int d = 0) const noexcept {
    return local_size_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::size_t num_groups(int d = 0) const noexcept {
    return global_size_[static_cast<std::size_t>(d)] /
           local_size_[static_cast<std::size_t>(d)];
  }

  /// Work-group barrier (CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE).
  /// Only valid in kernels launched with uses_barriers(); throws otherwise.
  void barrier() {
    require(barrier_hook_ != nullptr && *barrier_hook_ != nullptr,
            Status::kInvalidOperation,
            "barrier() in a kernel not marked uses_barriers()");
    (*barrier_hook_)();
  }

  /// __local T slot[count]; — group-shared scratch memory.
  template <typename T>
  [[nodiscard]] std::span<T> local(unsigned slot, std::size_t count) {
    require(arena_ != nullptr, Status::kInvalidOperation,
            "local() requires group execution");
    std::byte* p = arena_->acquire(slot, count * sizeof(T), alignof(T));
    return {reinterpret_cast<T*>(p), count};
  }

 private:
  std::array<std::size_t, 3> global_id_;
  std::array<std::size_t, 3> local_id_;
  std::array<std::size_t, 3> group_id_;
  std::array<std::size_t, 3> global_size_;
  std::array<std::size_t, 3> local_size_;
  LocalArena* arena_;
  const std::function<void()>* barrier_hook_;
};

}  // namespace eod::xcl
