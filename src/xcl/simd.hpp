// Portable explicit-SIMD primitives for simd-tier kernel bodies
// (DESIGN.md §13).  The span tier hands the autovectorizer a clean counted
// loop; this header is for the loops the autovectorizer still misses --
// gathers, per-lane masks, data-dependent accumulation.  Kernel authors
// write width-agnostic code against `vfloat`/`vint32`/`vuint32` and the
// free functions below; the lane count is fixed at compile time by
// EOD_SIMD_WIDTH so the arithmetic (and therefore the result signature) is
// identical on every run of the same build.
//
// Backend: GCC/Clang vector extensions (`__attribute__((vector_size)))`),
// which lower to plain SSE/AVX/NEON element-wise instructions.  Every
// operation provided here is element-wise IEEE arithmetic or exact
// bit/select logic -- no horizontal reductions, no FMA contraction beyond
// what the scalar body would see under the same flags -- which is what lets
// a simd body promise bit-identical results to the per-item reference path
// (the determinism contract of DESIGN.md §13).
//
// Width gate: define EOD_SIMD_WIDTH to 1/4/8/16 to pin the lane count
// (floats per vector).  Unset, it defaults to the widest unit the target
// ISA advertises at compile time, or to 1 (the scalar fallback struct) on
// toolchains without the vector extension, so every platform builds.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if !defined(EOD_SIMD_WIDTH)
#if !defined(__GNUC__) && !defined(__clang__)
#define EOD_SIMD_WIDTH 1
#elif defined(__AVX512F__)
#define EOD_SIMD_WIDTH 16
#elif defined(__AVX__)
#define EOD_SIMD_WIDTH 8
#elif defined(__SSE2__) || defined(__aarch64__) || defined(__ARM_NEON)
#define EOD_SIMD_WIDTH 4
#else
#define EOD_SIMD_WIDTH 1
#endif
#endif

#if EOD_SIMD_WIDTH > 1 && (defined(__SSE2__) || defined(__AVX__))
#include <immintrin.h>
#endif

namespace eod::xcl::simd {

/// Lanes per vector (floats / 32-bit ints).  1 means the scalar fallback.
inline constexpr std::size_t kLanes = EOD_SIMD_WIDTH;

#if EOD_SIMD_WIDTH > 1 && (defined(__GNUC__) || defined(__clang__))

using vfloat =
    float __attribute__((vector_size(kLanes * sizeof(float))));
using vint32 =
    std::int32_t __attribute__((vector_size(kLanes * sizeof(std::int32_t))));
using vuint32 =
    std::uint32_t __attribute__((vector_size(kLanes * sizeof(std::uint32_t))));

[[nodiscard]] inline vfloat vbroadcast(float x) noexcept {
  return x - vfloat{};  // splat: {0,...} - (-x) idiom avoided; x - 0 per lane
}
[[nodiscard]] inline vint32 vbroadcast_i32(std::int32_t x) noexcept {
  return x - vint32{};
}
[[nodiscard]] inline vuint32 vbroadcast_u32(std::uint32_t x) noexcept {
  return x - vuint32{};
}

/// Unaligned load/store: memcpy so tails and host containers with arbitrary
/// alignment are fine (xcl::Buffer storage is 64-byte aligned regardless).
[[nodiscard]] inline vfloat vload(const float* p) noexcept {
  vfloat v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void vstore(float* p, vfloat v) noexcept { std::memcpy(p, &v, sizeof(v)); }
[[nodiscard]] inline vuint32 vload_u32(const std::uint32_t* p) noexcept {
  vuint32 v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
inline void vstore_u32(std::uint32_t* p, vuint32 v) noexcept {
  std::memcpy(p, &v, sizeof(v));
}

/// Per-lane comparison: all-ones (-1) in lanes where a < b, 0 elsewhere.
/// Vector extensions give exactly this semantics for operator<.
[[nodiscard]] inline vint32 vlt(vfloat a, vfloat b) noexcept { return a < b; }
[[nodiscard]] inline vint32 vle(vfloat a, vfloat b) noexcept { return a <= b; }

/// Lane-wise select: mask lanes of -1 take `a`, lanes of 0 take `b`.
/// Pure bitwise blend -- never synthesizes arithmetic, so selecting an
/// accumulator through a mask preserves -0.0 and NaN payloads bit-exactly
/// (the reason masked accumulation must use select, not `+ 0.0f`).
[[nodiscard]] inline vfloat vselect(vint32 mask, vfloat a, vfloat b) noexcept {
  const vint32 ai = std::bit_cast<vint32>(a);
  const vint32 bi = std::bit_cast<vint32>(b);
  return std::bit_cast<vfloat>((mask & ai) | (~mask & bi));
}
[[nodiscard]] inline vint32 vselect_i32(vint32 mask, vint32 a,
                                        vint32 b) noexcept {
  return (mask & a) | (~mask & b);
}

/// Per-lane square root, correctly rounded (IEEE sqrt), matching
/// std::sqrt(float) lane for lane.  Hardware sqrtps where available;
/// otherwise per-lane __builtin_sqrtf (also correctly rounded).
[[nodiscard]] inline vfloat vsqrt(vfloat v) noexcept {
#if EOD_SIMD_WIDTH == 16 && defined(__AVX512F__)
  return std::bit_cast<vfloat>(_mm512_sqrt_ps(std::bit_cast<__m512>(v)));
#elif EOD_SIMD_WIDTH == 8 && defined(__AVX__)
  return std::bit_cast<vfloat>(_mm256_sqrt_ps(std::bit_cast<__m256>(v)));
#elif EOD_SIMD_WIDTH == 4 && defined(__SSE2__)
  return std::bit_cast<vfloat>(_mm_sqrt_ps(std::bit_cast<__m128>(v)));
#else
  vfloat out;
  for (std::size_t l = 0; l < kLanes; ++l) out[l] = __builtin_sqrtf(v[l]);
  return out;
#endif
}

#else  // scalar fallback: same surface, one lane, so simd bodies compile
       // (and run the reference arithmetic) on any toolchain.

struct vfloat {
  float lane[1];
  float& operator[](std::size_t) noexcept { return lane[0]; }
  float operator[](std::size_t) const noexcept { return lane[0]; }
  friend vfloat operator+(vfloat a, vfloat b) noexcept {
    return {{a.lane[0] + b.lane[0]}};
  }
  friend vfloat operator-(vfloat a, vfloat b) noexcept {
    return {{a.lane[0] - b.lane[0]}};
  }
  friend vfloat operator*(vfloat a, vfloat b) noexcept {
    return {{a.lane[0] * b.lane[0]}};
  }
  friend vfloat operator/(vfloat a, vfloat b) noexcept {
    return {{a.lane[0] / b.lane[0]}};
  }
  vfloat& operator+=(vfloat b) noexcept {
    lane[0] += b.lane[0];
    return *this;
  }
};

struct vint32 {
  std::int32_t lane[1];
  std::int32_t& operator[](std::size_t) noexcept { return lane[0]; }
  std::int32_t operator[](std::size_t) const noexcept { return lane[0]; }
};

struct vuint32 {
  std::uint32_t lane[1];
  std::uint32_t& operator[](std::size_t) noexcept { return lane[0]; }
  std::uint32_t operator[](std::size_t) const noexcept { return lane[0]; }
  friend vuint32 operator^(vuint32 a, vuint32 b) noexcept {
    return {{a.lane[0] ^ b.lane[0]}};
  }
  friend vuint32 operator>>(vuint32 a, int s) noexcept {
    return {{a.lane[0] >> s}};
  }
};

[[nodiscard]] inline vfloat vbroadcast(float x) noexcept { return {{x}}; }
[[nodiscard]] inline vint32 vbroadcast_i32(std::int32_t x) noexcept {
  return {{x}};
}
[[nodiscard]] inline vuint32 vbroadcast_u32(std::uint32_t x) noexcept {
  return {{x}};
}
[[nodiscard]] inline vfloat vload(const float* p) noexcept { return {{*p}}; }
inline void vstore(float* p, vfloat v) noexcept { *p = v.lane[0]; }
[[nodiscard]] inline vuint32 vload_u32(const std::uint32_t* p) noexcept {
  return {{*p}};
}
inline void vstore_u32(std::uint32_t* p, vuint32 v) noexcept {
  *p = v.lane[0];
}
[[nodiscard]] inline vint32 vlt(vfloat a, vfloat b) noexcept {
  return {{a.lane[0] < b.lane[0] ? std::int32_t{-1} : std::int32_t{0}}};
}
[[nodiscard]] inline vint32 vle(vfloat a, vfloat b) noexcept {
  return {{a.lane[0] <= b.lane[0] ? std::int32_t{-1} : std::int32_t{0}}};
}
[[nodiscard]] inline vfloat vselect(vint32 mask, vfloat a, vfloat b) noexcept {
  return mask.lane[0] != 0 ? a : b;
}
[[nodiscard]] inline vint32 vselect_i32(vint32 mask, vint32 a,
                                        vint32 b) noexcept {
  return mask.lane[0] != 0 ? a : b;
}
[[nodiscard]] inline vfloat vsqrt(vfloat v) noexcept {
  return {{__builtin_sqrtf(v.lane[0])}};
}

#endif  // EOD_SIMD_WIDTH

}  // namespace eod::xcl::simd
