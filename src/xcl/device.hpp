// Device objects: static characteristics (clGetDeviceInfo analogue) plus the
// timing model that stands in for the physical silicon.
#pragma once

#include <memory>
#include <string>

#include "xcl/modeling.hpp"
#include "xcl/types.hpp"

namespace eod::xcl {

/// Static device characteristics (the clGetDeviceInfo surface we need).
struct DeviceInfo {
  std::string name;
  std::string vendor;
  DeviceType type = DeviceType::kCpu;
  unsigned compute_units = 1;
  unsigned clock_mhz = 1000;
  std::size_t global_mem_bytes = 0;
  std::size_t local_mem_bytes = 48 * 1024;
  std::size_t max_work_group_size = 256;
  /// Preferred SIMD/wavefront width (1 for scalar CPUs).
  unsigned simd_width = 1;
};

/// A compute device.  Owns its timing model; identity is by pointer (as in
/// OpenCL, devices are singletons owned by their platform).
class Device {
 public:
  Device(DeviceInfo info, std::shared_ptr<const TimingModel> model)
      : info_(std::move(info)), model_(std::move(model)) {}

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceInfo& info() const noexcept { return info_; }
  [[nodiscard]] const std::string& name() const noexcept { return info_.name; }
  [[nodiscard]] DeviceType type() const noexcept { return info_.type; }
  [[nodiscard]] const TimingModel& model() const noexcept { return *model_; }

 private:
  DeviceInfo info_;
  std::shared_ptr<const TimingModel> model_;
};

}  // namespace eod::xcl
