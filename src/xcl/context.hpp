// Contexts bind a device and account for device memory allocations.
//
// The paper verifies each benchmark's memory footprint "by printing the sum
// of the size of all memory allocated on the device"; Context keeps that sum
// (current and high-water) for exactly that check.
#pragma once

#include <atomic>
#include <cstddef>

#include "xcl/device.hpp"

namespace eod::xcl {

class Context {
 public:
  explicit Context(const Device& device) : device_(device) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] const Device& device() const noexcept { return device_; }

  /// Sum of the sizes of all currently live device buffers, bytes.
  [[nodiscard]] std::size_t allocated_bytes() const noexcept {
    return allocated_.load(std::memory_order_relaxed);
  }
  /// Largest simultaneous allocation over the context lifetime, bytes.
  [[nodiscard]] std::size_t peak_allocated_bytes() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }

  // Internal: called by Buffer.
  void on_alloc(std::size_t bytes);
  void on_free(std::size_t bytes) noexcept;

 private:
  const Device& device_;
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> peak_{0};
};

}  // namespace eod::xcl
