// Contexts bind a device and account for device memory allocations.
//
// The paper verifies each benchmark's memory footprint "by printing the sum
// of the size of all memory allocated on the device"; Context keeps that sum
// (current and high-water) for exactly that check.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

#include "xcl/device.hpp"

namespace eod::xcl {

class Queue;

class Context {
 public:
  explicit Context(const Device& device) : device_(device) {}

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  [[nodiscard]] const Device& device() const noexcept { return device_; }

  /// Sum of the sizes of all currently live device buffers, bytes.
  [[nodiscard]] std::size_t allocated_bytes() const noexcept {
    // lint: relaxed-ok(monitoring read of an allocation stat counter)
    return allocated_.load(std::memory_order_relaxed);
  }
  /// Largest simultaneous allocation over the context lifetime, bytes.
  [[nodiscard]] std::size_t peak_allocated_bytes() const noexcept {
    // lint: relaxed-ok(monitoring read of an allocation stat counter)
    return peak_.load(std::memory_order_relaxed);
  }

  // Internal: called by Buffer.
  void on_alloc(std::size_t bytes);
  void on_free(std::size_t bytes) noexcept;

  // Internal: Queue lifecycle (registered in its constructor, removed in
  // its destructor).
  void register_queue(Queue* q);
  void unregister_queue(Queue* q) noexcept;
  /// clReleaseMemObject semantics for deferred execution (DESIGN.md §12):
  /// before a Buffer frees its storage, every queue of this context with
  /// still-pending commands is drained, so no deferred closure can touch
  /// released memory.  Errors raised by the drained commands are swallowed
  /// (release paths must not throw); re-running via finish() re-raises.
  void drain_queues_for_buffer_release() noexcept;

 private:
  const Device& device_;
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> peak_{0};
  std::mutex queues_mu_;
  std::vector<Queue*> queues_;
};

}  // namespace eod::xcl
