#include "xcl/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace eod::xcl {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Chunk to ~4 tasks per worker to amortize queue overhead while keeping
  // load balance; small n runs inline.
  const std::size_t workers = size();
  if (n == 1 || workers == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t per = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  {
    std::scoped_lock lock(mutex_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * per;
      const std::size_t end = std::min(n, begin + per);
      tasks_.push([&, begin, end] {
        try {
          for (std::size_t i = begin; i < end; ++i) body(i);
        } catch (...) {
          std::scoped_lock elock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (remaining.fetch_sub(1) == 1) {
          std::scoped_lock dlock(done_mutex);
          done_cv.notify_all();
        }
      });
    }
  }
  cv_.notify_all();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace eod::xcl
