#include "xcl/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scibench/timer.hpp"

namespace eod::xcl {

namespace {

// Process-wide pool metrics (registry-owned; see DESIGN.md §11).  These
// accumulate across every pool instance -- unlike the per-pool Stats, they
// are never reset by reset_stats(), only by obs::reset_metrics().
obs::Counter& g_m_tasks = obs::counter("executor.tasks_executed");
obs::Counter& g_m_claims = obs::counter("executor.chunks_claimed");
obs::Counter& g_m_steals = obs::counter("executor.chunks_stolen");
// Time from going dry on the own range to landing a successful steal;
// recorded only while timed metrics are on (the clock reads are the cost).
obs::Histogram& g_m_steal_latency =
    obs::histogram("executor.steal_latency_ns");

// The pool whose parallel_for body this thread is currently executing (as a
// worker or as the helping caller); nested launches on the same pool run
// inline instead of deadlocking on the launch mutex.
thread_local const ThreadPool* tl_active_pool = nullptr;

constexpr std::uint64_t pack(std::uint32_t begin, std::uint32_t end) {
  return (static_cast<std::uint64_t>(begin) << 32) | end;
}
constexpr std::uint32_t range_begin(std::uint64_t r) {
  return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t range_end(std::uint64_t r) {
  return static_cast<std::uint32_t>(r);
}

// Claims up to `grain` iterations from the front of `range` (owner side).
bool claim_front(std::atomic<std::uint64_t>& range, std::uint32_t grain,
                 std::uint32_t& begin, std::uint32_t& end) {
  // lint: relaxed-ok(CAS loop seed; the acq_rel CAS below synchronises)
  std::uint64_t r = range.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint32_t b = range_begin(r);
    const std::uint32_t e = range_end(r);
    if (b >= e) return false;
    const std::uint32_t take = std::min(grain, e - b);
    if (range.compare_exchange_weak(r, pack(b + take, e),
                                    std::memory_order_acq_rel,
                                    // lint: relaxed-ok(failure order: retry only)
                                    std::memory_order_relaxed)) {
      begin = b;
      end = b + take;
      return true;
    }
  }
}

// Steals half of the victim's remaining range from the back (thief side);
// owner and thief CAS the same word, so the split can never overlap.
bool claim_back_half(std::atomic<std::uint64_t>& range, std::uint32_t& begin,
                     std::uint32_t& end) {
  // lint: relaxed-ok(CAS loop seed; the acq_rel CAS below synchronises)
  std::uint64_t r = range.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint32_t b = range_begin(r);
    const std::uint32_t e = range_end(r);
    if (b >= e) return false;
    const std::uint32_t take = (e - b + 1) / 2;
    if (range.compare_exchange_weak(r, pack(b, e - take),
                                    std::memory_order_acq_rel,
                                    // lint: relaxed-ok(failure order: retry only)
                                    std::memory_order_relaxed)) {
      begin = e - take;
      end = e;
      return true;
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  slots_ = std::vector<Slot>(threads + 1);  // + the caller's slot
  // lint: alloc-ok(pool construction at startup)
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    // lint: alloc-ok(pool construction at startup)
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Taking the launch mutex waits out any in-flight parallel_for.
    std::scoped_lock launch(launch_mutex_);
    std::scoped_lock wake(wake_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(unsigned slot) {
  {
    char name[32];
    std::snprintf(name, sizeof(name), "pool-worker-%u", slot);
    obs::set_thread_lane_name(name);
  }
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock(wake_mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_.load(std::memory_order_acquire) ||
               epoch_.load(std::memory_order_acquire) != seen;
      });
      if (stop_.load(std::memory_order_acquire)) return;
      seen = epoch_.load(std::memory_order_acquire);
    }
    participate(slot, seen);
  }
}

void ThreadPool::run_span(Slot& self,
                          const std::function<void(std::size_t)>& body,
                          std::uint32_t begin, std::uint32_t end) {
  for (std::uint32_t i = begin; i < end; ++i) {
    const std::size_t index = base_ + i;
    try {
      body(index);
    } catch (...) {
      // Keep only this participant's lowest-index exception; the caller
      // merges slots after the launch, so the globally lowest one wins.
      if (!self.error || index < self.error_index) {
        self.error = std::current_exception();
        self.error_index = index;
      }
    }
  }
  if (remaining_.fetch_sub(end - begin, std::memory_order_acq_rel) ==
      end - begin) {
    std::scoped_lock lock(done_mutex_);
    done_cv_.notify_all();
  }
}

void ThreadPool::participate(unsigned slot, std::uint64_t launch_epoch) {
  active_.fetch_add(1, std::memory_order_seq_cst);
  // Check in via active_, then verify the epoch we woke for is still the
  // live one.  The acquire load synchronizes with the caller's epoch bump,
  // so a matching epoch guarantees base_/grain_/ranges all belong to the
  // launch we are about to serve; a stale epoch means that launch already
  // drained (the caller only advances after active_ empties), so there is
  // nothing left for us to do.
  const auto* body =
      epoch_.load(std::memory_order_acquire) == launch_epoch
          ? body_.load(std::memory_order_acquire)
          : nullptr;
  if (body != nullptr) {
    const ThreadPool* prev = tl_active_pool;
    tl_active_pool = this;
    std::uint64_t tasks = 0, claims = 0, steals = 0;
    std::uint32_t b = 0, e = 0;
    while (claim_front(slots_[slot].range, grain_, b, e)) {
      ++claims;
      tasks += e - b;
      obs::TraceSpan span("claim", "pool", "items",
                          static_cast<double>(e - b));
      run_span(slots_[slot], *body, b, e);
    }
    // Own range dry: sweep the other participants, restarting the sweep
    // after every successful steal (ranges only ever shrink, so one failed
    // full sweep proves there is nothing left to claim).  Steal latency --
    // dry-to-successful-steal -- is sampled only when timed metrics are on,
    // keeping the clock reads off the plain dispatch path.
    std::uint64_t dry_since =
        obs::timed_metrics_enabled() ? scibench::now_ns() : 0;
    bool found = true;
    while (found) {
      found = false;
      for (std::size_t v = 1; v < slots_.size(); ++v) {
        const std::size_t victim = (slot + v) % slots_.size();
        if (claim_back_half(slots_[victim].range, b, e)) {
          ++steals;
          tasks += e - b;
          if (dry_since != 0) {
            g_m_steal_latency.record(scibench::now_ns() - dry_since);
          }
          {
            obs::TraceSpan span("steal", "pool", "items",
                                static_cast<double>(e - b));
            run_span(slots_[slot], *body, b, e);
          }
          // Dry again once the stolen chunk is done; the next successful
          // steal's latency starts here, not inside the chunk's run time.
          if (dry_since != 0) dry_since = scibench::now_ns();
          found = true;
          break;
        }
      }
    }
    tl_active_pool = prev;
    // lint: relaxed-ok(worker-local stat flush; value-only)
    stat_tasks_.fetch_add(tasks, std::memory_order_relaxed);
    // lint: relaxed-ok(worker-local stat flush; value-only)
    stat_claims_.fetch_add(claims, std::memory_order_relaxed);
    // lint: relaxed-ok(worker-local stat flush; value-only)
    stat_steals_.fetch_add(steals, std::memory_order_relaxed);
    g_m_tasks.add(tasks);
    g_m_claims.add(claims);
    g_m_steals.add(steals);
  }
  {
    std::scoped_lock lock(done_mutex_);
    active_.fetch_sub(1, std::memory_order_acq_rel);
  }
  done_cv_.notify_all();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;  // must not touch the pool at all
  if (tl_active_pool == this || workers_.empty() || n == 1) {
    // Inline serial execution: nested launches, degenerate sizes.  Serial
    // order makes the lowest-index exception guarantee immediate.
    for (std::size_t i = 0; i < n; ++i) body(i);
    // lint: relaxed-ok(stat counter; value-only)
    stat_tasks_.fetch_add(n, std::memory_order_relaxed);
    return;
  }

  std::scoped_lock launch(launch_mutex_);
  // Ranges are 32-bit packed; iterate gigantic launches in 2^32-1 slices.
  constexpr std::size_t kMaxSlice = std::numeric_limits<std::uint32_t>::max();
  for (std::size_t offset = 0; offset < n; offset += kMaxSlice) {
    base_ = offset;
    run_one_slice(std::min(n - offset, kMaxSlice), body);
  }
}

void ThreadPool::run_one_slice(std::size_t n,
                               const std::function<void(std::size_t)>& body) {
  const std::size_t participants = slots_.size();
  // ~8 owner claims per participant: enough granularity that thieves find
  // meaningful halves, few enough that claim CAS traffic stays negligible.
  grain_ = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, n / (participants * 8)));
  for (std::size_t p = 0; p < participants; ++p) {
    const auto begin = static_cast<std::uint32_t>(n * p / participants);
    const auto end = static_cast<std::uint32_t>(n * (p + 1) / participants);
    // lint: relaxed-ok(ranges publish via the release epoch bump below)
    slots_[p].range.store(pack(begin, end), std::memory_order_relaxed);
    slots_[p].error = nullptr;
  }
  // lint: relaxed-ok(published by the release epoch bump below)
  remaining_.store(n, std::memory_order_relaxed);
  body_.store(&body, std::memory_order_release);
  {
    std::scoped_lock lock(wake_mutex_);
    epoch_.fetch_add(1, std::memory_order_acq_rel);  // one atomic publish
  }
  wake_cv_.notify_all();
  // lint: relaxed-ok(stat counter; value-only)
  stat_launches_.fetch_add(1, std::memory_order_relaxed);

  // The caller always helps; no other thread can bump the epoch while we
  // hold the launch mutex, so this relaxed load names our own launch.
  participate(static_cast<unsigned>(participants - 1),
              // lint: relaxed-ok(own launch's epoch, guarded by launch_mutex_)
              epoch_.load(std::memory_order_relaxed));

  {
    std::unique_lock lock(done_mutex_);
    done_cv_.wait(lock, [&] {
      return remaining_.load(std::memory_order_acquire) == 0 &&
             active_.load(std::memory_order_acquire) == 0;
    });
  }
  body_.store(nullptr, std::memory_order_release);

  std::exception_ptr lowest;
  std::size_t lowest_index = std::numeric_limits<std::size_t>::max();
  for (Slot& s : slots_) {
    if (s.error && s.error_index < lowest_index) {
      lowest_index = s.error_index;
      lowest = s.error;
    }
    s.error = nullptr;
  }
  if (lowest) std::rethrow_exception(lowest);
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  Stats s;
  // lint: relaxed-ok(stat counter read)
  s.launches = stat_launches_.load(std::memory_order_relaxed);
  // lint: relaxed-ok(stat counter read)
  s.tasks_executed = stat_tasks_.load(std::memory_order_relaxed);
  // lint: relaxed-ok(stat counter read)
  s.chunks_claimed = stat_claims_.load(std::memory_order_relaxed);
  // lint: relaxed-ok(stat counter read)
  s.chunks_stolen = stat_steals_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::reset_stats() noexcept {
  // lint: relaxed-ok(stat counter reset)
  stat_launches_.store(0, std::memory_order_relaxed);
  // lint: relaxed-ok(stat counter reset)
  stat_tasks_.store(0, std::memory_order_relaxed);
  // lint: relaxed-ok(stat counter reset)
  stat_claims_.store(0, std::memory_order_relaxed);
  // lint: relaxed-ok(stat counter reset)
  stat_steals_.store(0, std::memory_order_relaxed);
}

bool ThreadPool::in_launch() const noexcept { return tl_active_pool == this; }

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace eod::xcl
