// Kernel objects: a name (for per-kernel timing segments, as LibSciBench
// records in the paper) plus the C++ callable body and launch attributes.
//
// A kernel always carries a per-item body (the reference semantics: one
// call per work-item, full WorkItem context).  It may additionally carry a
// *span* body -- a whole-group formulation called once per work-group with
// the contiguous [begin, end) run of flat global ids that group covers.
// The span tier is the vectorization story of DESIGN.md §9: a single call
// per group amortizes all dispatch overhead and hands the compiler a
// contiguous counted loop over EOD_RESTRICT-qualified pointers that it can
// auto-vectorize, while the per-item body remains as the bit-identical
// reference path (and the only path for non-1-D ranges or when the
// dispatch-mode override forces per-item execution).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "xcl/work_item.hpp"

// Restrict qualifier for the raw pointers span bodies loop over; standard
// C++ has no `restrict`, but every toolchain we build with spells it this
// way (MSVC spells it __restrict).
#if defined(_MSC_VER)
#define EOD_RESTRICT __restrict
#else
#define EOD_RESTRICT __restrict__
#endif

namespace eod::xcl {

/// Non-owning reference to a span-kernel callable: two raw pointers,
/// trivially copyable, same idiom as GroupFnRef (fiber.hpp).  The executor
/// materializes one per launch from the kernel's stored span body and
/// passes it by value into the per-group dispatch, so the hot path never
/// touches std::function.
class RangeKernelRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, RangeKernelRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function_ref -- call sites pass callables directly.
  RangeKernelRef(const F& fn)
      : obj_(&fn),
        call_([](const void* obj, std::size_t begin, std::size_t end) {
          (*static_cast<const F*>(obj))(begin, end);
        }) {}

  void operator()(std::size_t begin, std::size_t end) const {
    call_(obj_, begin, end);
  }

 private:
  const void* obj_ = nullptr;
  void (*call_)(const void*, std::size_t, std::size_t) = nullptr;
};

class Kernel {
 public:
  using Body = std::function<void(WorkItem&)>;
  /// Whole-group body: processes the contiguous run of flat global ids
  /// [begin, end) covered by one work-group.  Tail clamping (padded
  /// NDRanges) is the body's responsibility, exactly as the per-item
  /// body's early-return guard is.
  using SpanBody = std::function<void(std::size_t begin, std::size_t end)>;

  Kernel(std::string name, Body body)
      : name_(std::move(name)), body_(std::move(body)) {}

  /// Declares that the body calls WorkItem::barrier(); such kernels execute
  /// each work-group as a fiber set rather than a plain loop.
  Kernel& uses_barriers(bool value = true) {
    uses_barriers_ = value;
    return *this;
  }

  /// Registers the span-tier formulation.  The author asserts it computes
  /// bit-identical results to running the per-item body over the same
  /// group (including, for barrier kernels, any intra-group ordering the
  /// barriers enforced -- see DESIGN.md §9 for the legality rules).
  Kernel& span(SpanBody body) {
    span_body_ = std::move(body);
    return *this;
  }

  /// Registers the explicit-SIMD formulation (DESIGN.md §13): same
  /// whole-group [begin, end) contract as span(), but the body is written
  /// with the portable vectors of xcl/simd.hpp rather than relying on the
  /// autovectorizer.  Same determinism promise as span(): bit-identical
  /// results to the per-item reference body, including the scalar tail.
  /// Only the kSimd dispatch mode selects this body.
  Kernel& simd(SpanBody body) {
    simd_body_ = std::move(body);
    return *this;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Body& body() const noexcept { return body_; }
  [[nodiscard]] bool barriers() const noexcept { return uses_barriers_; }
  [[nodiscard]] bool has_span() const noexcept {
    return static_cast<bool>(span_body_);
  }
  [[nodiscard]] const SpanBody& span_body() const noexcept {
    return span_body_;
  }
  [[nodiscard]] bool has_simd() const noexcept {
    return static_cast<bool>(simd_body_);
  }
  [[nodiscard]] const SpanBody& simd_body() const noexcept {
    return simd_body_;
  }

 private:
  std::string name_;
  Body body_;
  SpanBody span_body_;
  SpanBody simd_body_;
  bool uses_barriers_ = false;
};

}  // namespace eod::xcl
