// Kernel objects: a name (for per-kernel timing segments, as LibSciBench
// records in the paper) plus the C++ callable body and launch attributes.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "xcl/work_item.hpp"

namespace eod::xcl {

class Kernel {
 public:
  using Body = std::function<void(WorkItem&)>;

  Kernel(std::string name, Body body)
      : name_(std::move(name)), body_(std::move(body)) {}

  /// Declares that the body calls WorkItem::barrier(); such kernels execute
  /// each work-group as a fiber set rather than a plain loop.
  Kernel& uses_barriers(bool value = true) {
    uses_barriers_ = value;
    return *this;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Body& body() const noexcept { return body_; }
  [[nodiscard]] bool barriers() const noexcept { return uses_barriers_; }

 private:
  std::string name_;
  Body body_;
  bool uses_barriers_ = false;
};

}  // namespace eod::xcl
