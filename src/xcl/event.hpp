// Profiling events (cl_event analogue).  Every queue operation returns one,
// carrying both the *modeled* device time (what the paper's figures plot)
// and the actual host wall time of the functional execution.
//
// Events double as dependency handles: any enqueue accepts a wait list of
// previously returned Events (clEnqueue*'s event_wait_list), and the queue's
// command scheduler will not start a command before every waited-on command
// has completed.  An Event's `id` identifies the command process-wide;
// `enqueue_index` is its position in the owning queue's enqueue stream.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>

#include "xcl/types.hpp"

namespace eod::xcl {

/// Human-readable byte count: "512B", "16KiB", "2.5MiB".
[[nodiscard]] inline std::string format_bytes(std::size_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (v == static_cast<double>(static_cast<std::uint64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(v), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[unit]);
  }
  return buf;
}

/// Label for buffer-transfer events: tag + optional buffer name + size, e.g.
/// "write:centroids[16KiB]" or "read[4KiB]" — self-explanatory in traces
/// and figure reports without cross-referencing the enqueue site.
[[nodiscard]] inline std::string transfer_label(const char* tag,
                                                const std::string& buffer_name,
                                                std::size_t bytes) {
  std::string out = tag;
  if (!buffer_name.empty()) {
    out += ':';
    out += buffer_name;
  }
  out += '[';
  out += format_bytes(bytes);
  out += ']';
  return out;
}

enum class CommandKind : std::uint8_t {
  kKernel,
  kWrite,
  kRead,
  kCopy,
  kFill,
  kPeerCopy,  ///< device-to-device copy over the modeled interconnect
};

[[nodiscard]] constexpr const char* to_string(CommandKind k) noexcept {
  switch (k) {
    case CommandKind::kKernel:
      return "kernel";
    case CommandKind::kWrite:
      return "write";
    case CommandKind::kRead:
      return "read";
    case CommandKind::kCopy:
      return "copy";
    case CommandKind::kFill:
      return "fill";
    case CommandKind::kPeerCopy:
      return "peer";
  }
  return "unknown";
}

/// True for commands that move bytes over an interconnect link — the host
/// link (write/read) or a device-to-device link (peer copy) — and thus
/// occupy the queue's modeled *transfer* lane.  Copies and fills move bytes
/// too, but at device-memory bandwidth: they are device-side work and share
/// the kernel lane.
[[nodiscard]] constexpr bool is_link_transfer(CommandKind k) noexcept {
  return k == CommandKind::kWrite || k == CommandKind::kRead ||
         k == CommandKind::kPeerCopy;
}

/// True for commands the device itself executes (kernel-lane occupants whose
/// modeled time counts as kernel/device time, not interconnect time).
[[nodiscard]] constexpr bool is_device_side(CommandKind k) noexcept {
  return !is_link_transfer(k);
}

class Queue;

struct Event {
  CommandKind kind = CommandKind::kKernel;
  std::string label;          ///< kernel name or buffer transfer tag
  double modeled_start_s = 0; ///< device virtual-timeline start
  double modeled_end_s = 0;   ///< device virtual-timeline end
  std::uint64_t host_ns = 0;  ///< wall time of the functional execution
  double energy_j = 0;        ///< modeled device energy for this command
  /// Payload size of transfer/copy/fill commands (0 for kernels) — feeds
  /// the trace's per-command byte args and link-saturation analysis.
  std::uint64_t bytes = 0;
  /// Process-unique command id (1-based; 0 = a null/default event that is
  /// rejected in wait lists).  Ids are allocated in enqueue order across all
  /// queues, so a wait list can only ever point backwards — the command
  /// graph is acyclic by construction.
  std::uint64_t id = 0;
  /// Position of this command in its queue's enqueue stream (0-based).
  /// Queue::events() reports history in *completion* order; this field keys
  /// it back to program order for figure drivers and replay tooling.
  std::uint64_t enqueue_index = 0;
  /// The queue the command was enqueued on (non-owning; valid while that
  /// queue is alive).  Cross-queue waits use it to locate the dependency.
  Queue* queue = nullptr;

  [[nodiscard]] double modeled_seconds() const noexcept {
    return modeled_end_s - modeled_start_s;
  }
  [[nodiscard]] double modeled_ms() const noexcept {
    return modeled_seconds() * 1e3;
  }
};

/// Explicitly empty wait list: "this command depends on nothing".  Passing
/// it to an out-of-order queue declares the command independent, unlike the
/// overloads without a wait list, which preserve the implicit program-order
/// chain (so un-annotated code is correct in either queue mode).
inline constexpr std::span<const Event> kNoWait{};

}  // namespace eod::xcl
