// Profiling events (cl_event analogue).  Every queue operation returns one,
// carrying both the *modeled* device time (what the paper's figures plot)
// and the actual host wall time of the functional execution.
#pragma once

#include <cstdint>
#include <string>

#include "xcl/types.hpp"

namespace eod::xcl {

enum class CommandKind : std::uint8_t { kKernel, kWrite, kRead };

[[nodiscard]] constexpr const char* to_string(CommandKind k) noexcept {
  switch (k) {
    case CommandKind::kKernel:
      return "kernel";
    case CommandKind::kWrite:
      return "write";
    case CommandKind::kRead:
      return "read";
  }
  return "unknown";
}

struct Event {
  CommandKind kind = CommandKind::kKernel;
  std::string label;          ///< kernel name or buffer transfer tag
  double modeled_start_s = 0; ///< device virtual-timeline start
  double modeled_end_s = 0;   ///< device virtual-timeline end
  std::uint64_t host_ns = 0;  ///< wall time of the functional execution
  double energy_j = 0;        ///< modeled device energy for this command

  [[nodiscard]] double modeled_seconds() const noexcept {
    return modeled_end_s - modeled_start_s;
  }
  [[nodiscard]] double modeled_ms() const noexcept {
    return modeled_seconds() * 1e3;
  }
};

}  // namespace eod::xcl
