// Profiling events (cl_event analogue).  Every queue operation returns one,
// carrying both the *modeled* device time (what the paper's figures plot)
// and the actual host wall time of the functional execution.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "xcl/types.hpp"

namespace eod::xcl {

/// Human-readable byte count: "512B", "16KiB", "2.5MiB".
[[nodiscard]] inline std::string format_bytes(std::size_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (v == static_cast<double>(static_cast<std::uint64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(v), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[unit]);
  }
  return buf;
}

/// Label for buffer-transfer events: tag + optional buffer name + size, e.g.
/// "write:centroids[16KiB]" or "read[4KiB]" — self-explanatory in traces
/// and figure reports without cross-referencing the enqueue site.
[[nodiscard]] inline std::string transfer_label(const char* tag,
                                                const std::string& buffer_name,
                                                std::size_t bytes) {
  std::string out = tag;
  if (!buffer_name.empty()) {
    out += ':';
    out += buffer_name;
  }
  out += '[';
  out += format_bytes(bytes);
  out += ']';
  return out;
}

enum class CommandKind : std::uint8_t { kKernel, kWrite, kRead };

[[nodiscard]] constexpr const char* to_string(CommandKind k) noexcept {
  switch (k) {
    case CommandKind::kKernel:
      return "kernel";
    case CommandKind::kWrite:
      return "write";
    case CommandKind::kRead:
      return "read";
  }
  return "unknown";
}

struct Event {
  CommandKind kind = CommandKind::kKernel;
  std::string label;          ///< kernel name or buffer transfer tag
  double modeled_start_s = 0; ///< device virtual-timeline start
  double modeled_end_s = 0;   ///< device virtual-timeline end
  std::uint64_t host_ns = 0;  ///< wall time of the functional execution
  double energy_j = 0;        ///< modeled device energy for this command

  [[nodiscard]] double modeled_seconds() const noexcept {
    return modeled_end_s - modeled_start_s;
  }
  [[nodiscard]] double modeled_ms() const noexcept {
    return modeled_seconds() * 1e3;
  }
};

}  // namespace eod::xcl
