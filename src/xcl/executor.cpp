#include "xcl/executor.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "xcl/check/checked_exec.hpp"
#include "xcl/check/session.hpp"
#include "xcl/fiber.hpp"
#include "xcl/thread_pool.hpp"

namespace eod::xcl {

namespace {

// Tier-selection override; relaxed is enough -- callers set it between
// launches, never concurrently with one.  -1 means "never set": the first
// dispatch_mode() read then resolves the EOD_DISPATCH environment hatch via
// default_dispatch_mode(), so a process that never calls set_dispatch_mode
// still honors the env without an init-order dependency.
std::atomic<int> g_dispatch_mode{-1};

// Tier observability now lives in the process metrics registry
// (DESIGN.md §11); ExecutorStats is a typed view over these instruments.
// The references are registry-owned and stable, so per-group updates stay
// single relaxed atomic adds, exactly as the former file-local atomics.
obs::Counter& g_groups_loop = obs::counter("executor.groups_loop");
obs::Counter& g_groups_fiber = obs::counter("executor.groups_fiber");
obs::Counter& g_groups_span = obs::counter("executor.groups_span");
obs::Counter& g_groups_simd = obs::counter("executor.groups_simd");
obs::Counter& g_groups_checked = obs::counter("executor.groups_checked");
obs::Counter& g_launches = obs::counter("executor.ndrange_launches");
obs::Gauge& g_arena_hwm = obs::gauge("executor.arena_bytes_hwm");

// Per-thread executor scratch.  Pool workers are persistent threads, so the
// arena storage and fiber stacks built for the first launches are reused by
// every later group that runs on the same worker -- the steady state does
// no per-group malloc on either the loop or the barrier path.
struct WorkerScratch {
  LocalArena arena{0};
  FiberPool fibers;
};

WorkerScratch& worker_scratch() {
  thread_local WorkerScratch scratch;
  return scratch;
}

// No thread-local high-water cache here: it would survive
// reset_executor_stats() and suppress updates afterwards.  The relaxed
// load per group is cheap enough not to need one.
void note_arena_use(WorkerScratch& ws) {
  const std::size_t used = ws.arena.used_bytes();
  if (used == 0) return;
  g_arena_hwm.set_max(static_cast<std::int64_t>(used));
}

struct GroupCoords {
  std::array<std::size_t, 3> group_id;
  std::array<std::size_t, 3> global_size;
  std::array<std::size_t, 3> local_size;
};

// Decodes a flat group index into 3-D group coordinates.
GroupCoords decode_group(const NDRange& range, std::size_t flat) {
  GroupCoords g;
  const std::size_t gx = range.groups(0);
  const std::size_t gy = range.groups(1);
  g.group_id = {flat % gx, (flat / gx) % gy, flat / (gx * gy)};
  g.global_size = {range.global(0), range.global(1), range.global(2)};
  g.local_size = {range.local(0), range.local(1), range.local(2)};
  return g;
}

// Runs all work-items of one group with a plain loop.  `barrier_hook` is
// null for kernels that never call barrier(); single-item groups of
// barrier kernels pass a no-op hook instead, since a barrier over one
// work-item synchronizes nothing and needs no fiber suspension.
void run_group_loop(const Kernel& kernel, const GroupCoords& g,
                    LocalArena& arena,
                    const std::function<void()>* barrier_hook) {
  arena.reset();
  const auto [lx, ly, lz] = g.local_size;
  for (std::size_t z = 0; z < lz; ++z) {
    for (std::size_t y = 0; y < ly; ++y) {
      for (std::size_t x = 0; x < lx; ++x) {
        const std::array<std::size_t, 3> local_id{x, y, z};
        const std::array<std::size_t, 3> global_id{
            g.group_id[0] * lx + x, g.group_id[1] * ly + y,
            g.group_id[2] * lz + z};
        WorkItem item(global_id, local_id, g.group_id, g.global_size,
                      g.local_size, &arena, barrier_hook);
        kernel.body()(item);
      }
    }
  }
}

// Runs one group as a fiber set so barrier() can suspend work-items.  The
// pool's fibers (and their stacks) are re-armed in place between groups.
void run_group_fibers(const Kernel& kernel, const GroupCoords& g,
                      LocalArena& arena, FiberPool& fibers) {
  arena.reset();
  const auto [lx, ly, lz] = g.local_size;
  const std::size_t items = lx * ly * lz;
  std::function<void()> barrier_hook = [] { Fiber::yield_current(); };
  fibers.run_group(items, [&](std::size_t flat) {
    const std::array<std::size_t, 3> local_id{flat % lx, (flat / lx) % ly,
                                              flat / (lx * ly)};
    const std::array<std::size_t, 3> global_id{
        g.group_id[0] * lx + local_id[0], g.group_id[1] * ly + local_id[1],
        g.group_id[2] * lz + local_id[2]};
    WorkItem item(global_id, local_id, g.group_id, g.global_size,
                  g.local_size, &arena, &barrier_hook);
    kernel.body()(item);
  });
}

// A launch may take the span tier when the kernel carries a span body, the
// override does not force the per-item reference path, and the range is
// effectively 1-D, so each group covers one contiguous [begin, end) run of
// flat global ids.  Span bodies never touch the __local arena or the
// barrier hook: a kernel whose group semantics depend on them supplies a
// span body only if it reproduces those semantics itself (DESIGN.md §9).
bool span_legal(const Kernel& kernel, const NDRange& range,
                DispatchMode mode) {
  return kernel.has_span() && mode != DispatchMode::kItem &&
         mode != DispatchMode::kChecked && range.global(1) == 1 &&
         range.global(2) == 1;
}

// The simd tier is never auto-selected: only an explicit kSimd (CLI flag or
// EOD_DISPATCH) engages the hand-vectorized body.  Same 1-D contiguity
// requirement as span; kernels without a simd body fall through to the
// span-legality check above, so `--dispatch=simd` on a mixed workload runs
// each kernel on the best tier it offers.
bool simd_legal(const Kernel& kernel, const NDRange& range,
                DispatchMode mode) {
  return kernel.has_simd() && mode == DispatchMode::kSimd &&
         range.global(1) == 1 && range.global(2) == 1;
}

}  // namespace

DispatchMode dispatch_mode() noexcept {
  // lint: relaxed-ok(mode flag is a plain value; no data is published via it)
  const int raw = g_dispatch_mode.load(std::memory_order_relaxed);
  if (raw < 0) return default_dispatch_mode();
  return static_cast<DispatchMode>(raw);
}

void set_dispatch_mode(DispatchMode mode) noexcept {
  // lint: relaxed-ok(mode flag is a plain value; no data is published via it)
  g_dispatch_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

std::optional<DispatchMode> parse_dispatch_mode(
    std::string_view name) noexcept {
  if (name == "auto") return DispatchMode::kAuto;
  if (name == "item") return DispatchMode::kItem;
  if (name == "span") return DispatchMode::kSpan;
  if (name == "simd") return DispatchMode::kSimd;
  if (name == "checked") return DispatchMode::kChecked;
  return std::nullopt;
}

const char* to_string(DispatchMode mode) noexcept {
  switch (mode) {
    case DispatchMode::kItem:
      return "item";
    case DispatchMode::kSpan:
      return "span";
    case DispatchMode::kSimd:
      return "simd";
    case DispatchMode::kChecked:
      return "checked";
    case DispatchMode::kAuto:
      break;
  }
  return "auto";
}

const char* dispatch_mode_names() noexcept {
  return "auto|item|span|simd|checked";
}

DispatchMode default_dispatch_mode() {
  static const DispatchMode mode = [] {
    if (const char* v = std::getenv("EOD_DISPATCH")) {
      if (auto parsed = parse_dispatch_mode(v)) return *parsed;
      std::fprintf(stderr, "EOD_DISPATCH=%s is not a dispatch mode (%s)\n", v,
                   dispatch_mode_names());
      std::exit(2);
    }
    return DispatchMode::kAuto;
  }();
  return mode;
}

void execute_ndrange(const Kernel& kernel, const NDRange& range,
                     const Device& device, ThreadPool* pool) {
  const std::size_t groups = range.num_groups();
  const std::size_t local_mem = device.info().local_mem_bytes;
  const std::size_t group_items = range.group_items();
  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::global();
  g_launches.add(1);

  // Checker tier (DESIGN.md §10): while a session is active every launch
  // runs serially through the shadow-memory instrumentation, regardless of
  // span legality -- the session pins DispatchMode::kChecked, but the
  // session pointer, not the mode, is authoritative (kChecked without a
  // session degrades to the per-item reference path below).
  if (check::CheckSession* session = check::CheckSession::active()) {
    obs::TraceSpan launch_span(kernel.name().c_str(), "launch:checked",
                               "groups", static_cast<double>(groups));
    check::execute_checked(kernel, range, device, *session);
    g_groups_checked.add(groups);
    return;
  }

  const DispatchMode mode = dispatch_mode();
  if (simd_legal(kernel, range, mode)) {
    // Same shape as the span fast path below: one RangeKernelRef call per
    // group, no std::function on the hot path -- only the body differs
    // (explicit vectors instead of an autovectorizable loop).
    const Kernel::SpanBody& body = kernel.simd_body();
    const RangeKernelRef simd = body;
    const std::size_t lx = range.local(0);
    obs::TraceSpan launch_span(kernel.name().c_str(), "launch:simd",
                               "groups", static_cast<double>(groups));
    tp.parallel_for(groups, [simd, lx](std::size_t flat) {
      obs::TraceSpan group_span("group:simd", "executor");
      simd(flat * lx, (flat + 1) * lx);
      g_groups_simd.add(1);
    });
    return;
  }

  if (span_legal(kernel, range, mode)) {
    // Hoist the std::function indirection out of the per-group path: the
    // workers call through a two-pointer RangeKernelRef only.
    const Kernel::SpanBody& body = kernel.span_body();
    const RangeKernelRef span = body;
    const std::size_t lx = range.local(0);
    obs::TraceSpan launch_span(kernel.name().c_str(), "launch:span",
                               "groups", static_cast<double>(groups));
    tp.parallel_for(groups, [span, lx](std::size_t flat) {
      obs::TraceSpan group_span("group:span", "executor");
      span(flat * lx, (flat + 1) * lx);
      g_groups_span.add(1);
    });
    return;
  }

  // A barrier over a single work-item is trivially satisfied, so one-item
  // groups of barrier kernels skip the fiber machinery entirely.
  static const std::function<void()> noop_barrier = [] {};
  const bool needs_fibers = kernel.barriers() && group_items > 1;

  obs::TraceSpan launch_span(kernel.name().c_str(),
                             needs_fibers ? "launch:fiber" : "launch:loop",
                             "groups", static_cast<double>(groups));
  tp.parallel_for(groups, [&](std::size_t flat) {
    obs::TraceSpan group_span(needs_fibers ? "group:fiber" : "group:loop",
                              "executor");
    WorkerScratch& ws = worker_scratch();
    ws.arena.ensure_capacity(local_mem);
    const GroupCoords g = decode_group(range, flat);
    if (needs_fibers) {
      run_group_fibers(kernel, g, ws.arena, ws.fibers);
      g_groups_fiber.add(1);
    } else {
      run_group_loop(kernel, g, ws.arena,
                     kernel.barriers() ? &noop_barrier : nullptr);
      g_groups_loop.add(1);
    }
    note_arena_use(ws);
  });
}

ExecutorStats executor_stats() {
  const ThreadPool::Stats pool = ThreadPool::global().stats();
  ExecutorStats s;
  s.launches = pool.launches;
  s.tasks_executed = pool.tasks_executed;
  s.chunks_claimed = pool.chunks_claimed;
  s.chunks_stolen = pool.chunks_stolen;
  s.groups_loop = g_groups_loop.value();
  s.groups_fiber = g_groups_fiber.value();
  s.groups_span = g_groups_span.value();
  s.groups_simd = g_groups_simd.value();
  s.groups_checked = g_groups_checked.value();
  s.arena_bytes_hwm = static_cast<std::uint64_t>(g_arena_hwm.value());
  s.fiber_stacks_created = fiber_stacks_created();
  s.fiber_stacks_reused = fiber_stacks_reused();
  return s;
}

void reset_executor_stats() {
  ThreadPool::global().reset_stats();
  g_groups_loop.reset();
  g_groups_fiber.reset();
  g_groups_span.reset();
  g_groups_simd.reset();
  g_groups_checked.reset();
  g_launches.reset();
  g_arena_hwm.reset();
  reset_fiber_stack_counters();
}

}  // namespace eod::xcl
