#include "xcl/executor.hpp"

#include <array>
#include <functional>

#include "xcl/fiber.hpp"
#include "xcl/thread_pool.hpp"

namespace eod::xcl {

namespace {

struct GroupCoords {
  std::array<std::size_t, 3> group_id;
  std::array<std::size_t, 3> global_size;
  std::array<std::size_t, 3> local_size;
};

// Decodes a flat group index into 3-D group coordinates.
GroupCoords decode_group(const NDRange& range, std::size_t flat) {
  GroupCoords g;
  const std::size_t gx = range.groups(0);
  const std::size_t gy = range.groups(1);
  g.group_id = {flat % gx, (flat / gx) % gy, flat / (gx * gy)};
  g.global_size = {range.global(0), range.global(1), range.global(2)};
  g.local_size = {range.local(0), range.local(1), range.local(2)};
  return g;
}

// Runs all work-items of one group with a plain loop (no barriers).
void run_group_loop(const Kernel& kernel, const GroupCoords& g,
                    LocalArena& arena) {
  arena.reset();
  const auto [lx, ly, lz] = g.local_size;
  for (std::size_t z = 0; z < lz; ++z) {
    for (std::size_t y = 0; y < ly; ++y) {
      for (std::size_t x = 0; x < lx; ++x) {
        const std::array<std::size_t, 3> local_id{x, y, z};
        const std::array<std::size_t, 3> global_id{
            g.group_id[0] * lx + x, g.group_id[1] * ly + y,
            g.group_id[2] * lz + z};
        WorkItem item(global_id, local_id, g.group_id, g.global_size,
                      g.local_size, &arena, nullptr);
        kernel.body()(item);
      }
    }
  }
}

// Runs one group as a fiber set so barrier() can suspend work-items.
void run_group_fibers(const Kernel& kernel, const GroupCoords& g,
                      LocalArena& arena) {
  arena.reset();
  const auto [lx, ly, lz] = g.local_size;
  const std::size_t items = lx * ly * lz;
  std::function<void()> barrier_hook = [] { Fiber::yield_current(); };
  run_fiber_group(items, [&](std::size_t flat) {
    const std::array<std::size_t, 3> local_id{flat % lx, (flat / lx) % ly,
                                              flat / (lx * ly)};
    const std::array<std::size_t, 3> global_id{
        g.group_id[0] * lx + local_id[0], g.group_id[1] * ly + local_id[1],
        g.group_id[2] * lz + local_id[2]};
    WorkItem item(global_id, local_id, g.group_id, g.global_size,
                  g.local_size, &arena, &barrier_hook);
    kernel.body()(item);
  });
}

}  // namespace

void execute_ndrange(const Kernel& kernel, const NDRange& range,
                     const Device& device) {
  const std::size_t groups = range.num_groups();
  const std::size_t local_mem = device.info().local_mem_bytes;

  ThreadPool::global().parallel_for(groups, [&](std::size_t flat) {
    // One arena per in-flight group; allocated on the worker's stack frame
    // so concurrent groups never share __local storage.
    LocalArena arena(local_mem);
    const GroupCoords g = decode_group(range, flat);
    if (kernel.barriers()) {
      run_group_fibers(kernel, g, arena);
    } else {
      run_group_loop(kernel, g, arena);
    }
  });
}

}  // namespace eod::xcl
