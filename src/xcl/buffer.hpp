// Device buffers (cl_mem analogue).  Storage is host memory — kernels run
// functionally on the host — but allocation is accounted against the
// context's simulated device, and transfers through a Queue are timed by the
// device's interconnect model.
//
// Two kernel-facing accessors exist (DESIGN.md §10):
//   * view<T>()   — a raw std::span.  Host-side setup/teardown code only;
//     the mutable overload conservatively marks the whole buffer
//     initialized for the checker.
//   * access<T>() — a CheckedView that routes loads/stores through the
//     active CheckSession's shadow memory (raw-speed passthrough when no
//     session is active).  Kernel bodies use this one so the checked
//     dispatch tier can observe every access.
#pragma once

#include <cstring>
#include <new>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "xcl/check/checked_view.hpp"
#include "xcl/check/session.hpp"
#include "xcl/context.hpp"
#include "xcl/error.hpp"

namespace eod::xcl {

class Buffer {
 public:
  /// Host storage alignment: one cache line, so simd-tier vector loads and
  /// stores (xcl/simd.hpp) starting at the buffer base never straddle a
  /// line.  clCreateBuffer makes the same guarantee on real runtimes.
  static constexpr std::size_t kHostAlignment = 64;

  Buffer(Context& ctx, std::size_t bytes) : ctx_(&ctx) {
    require(bytes > 0, Status::kInvalidBufferSize, "zero-sized buffer");
    // Account against the device capacity before touching host memory, so
    // an oversized request fails with a device error, not a host OOM.
    ctx.on_alloc(bytes);
    try {
      data_ = static_cast<std::byte*>(
          ::operator new(bytes, std::align_val_t{kHostAlignment}));
    } catch (...) {
      ctx.on_free(bytes);
      throw;
    }
    bytes_ = bytes;
    // cl_mem contents are undefined at creation on a real runtime; this
    // buffer has always zero-filled (the old std::vector storage did), and
    // dwarf setup code relies on it.
    std::memset(data_, 0, bytes_);
    check::on_buffer_alloc(data_, bytes_);
  }

  ~Buffer() { release(); }

  Buffer(Buffer&& other) noexcept
      : ctx_(other.ctx_),
        data_(other.data_),
        bytes_(other.bytes_),
        name_(std::move(other.name_)) {
    // The heap block (the shadow-map key) moves with it; no checker
    // notification needed.
    other.ctx_ = nullptr;
    other.data_ = nullptr;
    other.bytes_ = 0;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      // Release the old allocation — device-capacity accounting and checker
      // shadow — *before* adopting the new one, so a context gauge never
      // counts both allocations at once and a capacity-bound device can
      // swap one large buffer for another.
      release();
      ctx_ = other.ctx_;
      data_ = other.data_;
      bytes_ = other.bytes_;
      name_ = std::move(other.name_);
      other.ctx_ = nullptr;
      other.data_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] Context& context() const noexcept { return *ctx_; }

  /// Optional human-readable name used in transfer-event labels and traces
  /// ("write:centroids[16KiB]").  Returns *this for fluent creation:
  ///   Buffer b = make_buffer<float>(ctx, n).named("centroids");
  Buffer& named(std::string name) {
    name_ = std::move(name);
    return *this;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Typed view of the device storage for use inside kernels.  The element
  /// count is bytes()/sizeof(T); misaligned sizes are rejected.
  template <typename T>
  [[nodiscard]] std::span<T> view() {
    require(bytes_ % sizeof(T) == 0, Status::kInvalidValue,
            "buffer size is not a multiple of element size");
    // A mutable raw view is a host-write escape hatch the checker cannot
    // see through; treat it as initializing the whole buffer.
    check::on_host_write(data_, 0, bytes_);
    return {reinterpret_cast<T*>(data_), bytes_ / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> view() const {
    require(bytes_ % sizeof(T) == 0, Status::kInvalidValue,
            "buffer size is not a multiple of element size");
    return {reinterpret_cast<const T*>(data_), bytes_ / sizeof(T)};
  }

  /// Checked accessor for kernel bodies: loads/stores route through the
  /// active CheckSession (raw passthrough without one).  `label` names the
  /// buffer in findings.  Use `access<const T>()` for read-only access —
  /// unlike the mutable view<T>(), creating a checked accessor never marks
  /// anything initialized, which is what keeps uninit-read detection alive.
  template <typename T>
  [[nodiscard]] check::CheckedView<T> access(std::string_view label = {}) {
    require(bytes_ % sizeof(T) == 0, Status::kInvalidValue,
            "buffer size is not a multiple of element size");
    check::BufferShadow* shadow = nullptr;
    if (check::CheckSession* s = check::active_session()) {
      shadow = s->shadow_for(data_, bytes_, label);
    }
    return {reinterpret_cast<T*>(data_), bytes_ / sizeof(T), shadow};
  }

  // Internal raw access used by Queue transfers.
  [[nodiscard]] std::byte* data() noexcept { return data_; }
  [[nodiscard]] const std::byte* data() const noexcept { return data_; }

 private:
  /// Returns context accounting, drops the checker shadow and frees the
  /// aligned block for the current allocation (no-op for a moved-from
  /// shell).
  void release() noexcept {
    if (ctx_ != nullptr && data_ != nullptr) {
      // clReleaseMemObject semantics under deferred execution (DESIGN.md
      // §12): commands still pending on the context's queues may reference
      // this storage; run them before the memory goes away.
      ctx_->drain_queues_for_buffer_release();
    }
    if (data_ != nullptr) check::on_buffer_release(data_);
    if (ctx_ != nullptr) ctx_->on_free(bytes_);
    ::operator delete(data_, std::align_val_t{kHostAlignment});
    data_ = nullptr;
    bytes_ = 0;
    ctx_ = nullptr;
  }

  Context* ctx_;
  std::byte* data_ = nullptr;
  std::size_t bytes_ = 0;
  std::string name_;
};

/// Convenience: create a buffer sized for `count` elements of T.
template <typename T>
[[nodiscard]] inline Buffer make_buffer(Context& ctx, std::size_t count) {
  return Buffer(ctx, count * sizeof(T));
}

}  // namespace eod::xcl
