// Device buffers (cl_mem analogue).  Storage is host memory — kernels run
// functionally on the host — but allocation is accounted against the
// context's simulated device, and transfers through a Queue are timed by the
// device's interconnect model.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "xcl/context.hpp"
#include "xcl/error.hpp"

namespace eod::xcl {

class Buffer {
 public:
  Buffer(Context& ctx, std::size_t bytes) : ctx_(&ctx) {
    require(bytes > 0, Status::kInvalidBufferSize, "zero-sized buffer");
    // Account against the device capacity before touching host memory, so
    // an oversized request fails with a device error, not a host OOM.
    ctx.on_alloc(bytes);
    try {
      store_.resize(bytes);
    } catch (...) {
      ctx.on_free(bytes);
      throw;
    }
  }

  ~Buffer() {
    if (ctx_ != nullptr) ctx_->on_free(store_.size());
  }

  Buffer(Buffer&& other) noexcept
      : ctx_(other.ctx_), store_(std::move(other.store_)) {
    other.ctx_ = nullptr;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      if (ctx_ != nullptr) ctx_->on_free(store_.size());
      ctx_ = other.ctx_;
      store_ = std::move(other.store_);
      other.ctx_ = nullptr;
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  [[nodiscard]] std::size_t bytes() const noexcept { return store_.size(); }
  [[nodiscard]] Context& context() const noexcept { return *ctx_; }

  /// Typed view of the device storage for use inside kernels.  The element
  /// count is bytes()/sizeof(T); misaligned sizes are rejected.
  template <typename T>
  [[nodiscard]] std::span<T> view() {
    require(store_.size() % sizeof(T) == 0, Status::kInvalidValue,
            "buffer size is not a multiple of element size");
    return {reinterpret_cast<T*>(store_.data()), store_.size() / sizeof(T)};
  }
  template <typename T>
  [[nodiscard]] std::span<const T> view() const {
    require(store_.size() % sizeof(T) == 0, Status::kInvalidValue,
            "buffer size is not a multiple of element size");
    return {reinterpret_cast<const T*>(store_.data()),
            store_.size() / sizeof(T)};
  }

  // Internal raw access used by Queue transfers.
  [[nodiscard]] std::byte* data() noexcept { return store_.data(); }
  [[nodiscard]] const std::byte* data() const noexcept { return store_.data(); }

 private:
  Context* ctx_;
  std::vector<std::byte> store_;
};

/// Convenience: create a buffer sized for `count` elements of T.
template <typename T>
[[nodiscard]] inline Buffer make_buffer(Context& ctx, std::size_t count) {
  return Buffer(ctx, count * sizeof(T));
}

}  // namespace eod::xcl
