#include "xcl/platform.hpp"

namespace eod::xcl {

Device& Platform::select(std::size_t index, DeviceType type) const {
  std::size_t seen = 0;
  for (const auto& d : devices_) {
    if (d->type() == type) {
      if (seen == index) return *d;
      ++seen;
    }
  }
  throw Error(Status::kInvalidValue,
              "no device #" + std::to_string(index) + " of type " +
                  to_string(type) + " in platform " + name_);
}

PlatformRegistry& PlatformRegistry::instance() {
  static PlatformRegistry registry;
  return registry;
}

Platform& PlatformRegistry::add(std::string name) {
  platforms_.push_back(std::make_unique<Platform>(std::move(name)));
  return *platforms_.back();
}

Platform& PlatformRegistry::at(std::size_t i) const {
  require(i < platforms_.size(), Status::kInvalidValue,
          "platform index out of range");
  return *platforms_[i];
}

void PlatformRegistry::reset() { platforms_.clear(); }

}  // namespace eod::xcl
