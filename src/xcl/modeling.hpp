// Interfaces through which a device reports modeled kernel/transfer timing.
//
// On the paper's testbed these numbers come from the hardware itself; here
// every xcl device is backed by a performance model (src/sim) that converts
// a kernel's workload profile into execution time and energy.  xcl only
// defines the interface so the runtime stays independent of the simulator.
#pragma once

#include <cstddef>
#include <string>

#include "xcl/ndrange.hpp"

namespace eod::xcl {

/// Dominant memory access pattern of a kernel, used by the cache/bandwidth
/// model to derive effective hit rates and achievable bandwidth.
enum class AccessPattern : std::uint8_t {
  kStreaming,   // unit-stride per lane, fully coalescable
  kRowPerItem,  // each work-item scans its own contiguous row: streams on
                // CPUs, uncoalesced across GPU lanes (Rodinia kmeans/csr)
  kStrided,     // interleaved column walk: coalesced across GPU lanes,
                // line-splitting for a CPU thread
  kStencil,     // neighbourhood reuse (structured grid)
  kTiled,       // blocked with local-memory staging (dense linear algebra)
  kGather,      // indirect/random reads (sparse, hash)
  kButterfly,   // power-of-two strides (spectral methods)
};

[[nodiscard]] constexpr const char* to_string(AccessPattern p) noexcept {
  switch (p) {
    case AccessPattern::kStreaming:
      return "streaming";
    case AccessPattern::kRowPerItem:
      return "row-per-item";
    case AccessPattern::kStrided:
      return "strided";
    case AccessPattern::kStencil:
      return "stencil";
    case AccessPattern::kTiled:
      return "tiled";
    case AccessPattern::kGather:
      return "gather";
    case AccessPattern::kButterfly:
      return "butterfly";
  }
  return "unknown";
}

/// Per-launch work characterization supplied by each benchmark.  All counts
/// are totals across the whole NDRange (not per work-item).
struct WorkloadProfile {
  double flops = 0.0;        ///< single-precision floating-point operations
  double int_ops = 0.0;      ///< integer / logical / address ops
  double bytes_read = 0.0;   ///< total bytes requested by loads
  double bytes_written = 0.0;  ///< total bytes requested by stores
  double working_set_bytes = 0.0;  ///< distinct bytes touched by the launch
  AccessPattern pattern = AccessPattern::kStreaming;
  /// Fraction of branches that diverge within a SIMD group, in [0,1].
  double branch_divergence = 0.0;
  /// Length of the longest chain of *dependent* memory accesses; exposes
  /// memory latency that cannot be hidden by more parallelism.
  double dependent_accesses = 0.0;
  /// Distinct bytes touched by the dependent chain itself (e.g. a lookup
  /// table).  0 means "same as working_set_bytes".  The chain pays the
  /// latency of whatever level holds *this* structure.
  double chain_working_set_bytes = 0.0;
  /// Amdahl fraction of the launch that is parallelizable, in (0,1].
  double parallel_fraction = 1.0;

  [[nodiscard]] double total_bytes() const noexcept {
    return bytes_read + bytes_written;
  }
  /// Arithmetic intensity in flop/byte (0 when no memory traffic).
  [[nodiscard]] double intensity() const noexcept {
    const double b = total_bytes();
    return b > 0.0 ? flops / b : 0.0;
  }
};

/// Everything a timing model sees about one kernel launch.
struct KernelLaunchStats {
  std::string kernel_name;
  NDRange range{1};
  WorkloadProfile profile;
  /// Kernel commands enqueued since the last host synchronisation
  /// (transfer or finish).  Some runtimes' enqueue cost grows with the
  /// depth of the unflushed command stream.
  std::size_t queue_depth = 0;
};

/// Timing callbacks implemented by the device simulator.
class TimingModel {
 public:
  virtual ~TimingModel() = default;
  /// Modeled kernel execution time, seconds.
  [[nodiscard]] virtual double kernel_seconds(
      const KernelLaunchStats& launch) const = 0;
  /// Modeled host<->device transfer time, seconds.
  [[nodiscard]] virtual double transfer_seconds(std::size_t bytes,
                                                TransferDir dir) const = 0;
  /// Modeled device-side power draw while running `launch`, watts.
  [[nodiscard]] virtual double kernel_power_watts(
      const KernelLaunchStats& launch) const = 0;
  /// Run-to-run coefficient of variation of time measurements on this
  /// device (harness sampling noise).
  [[nodiscard]] virtual double measurement_noise_cov() const { return 0.02; }
};

class Device;

/// Device-to-device interconnect cost (DESIGN.md §14).  Implemented by the
/// simulator's topology model (sim/interconnect): a pair with a direct peer
/// path (PCIe P2P / NVLink-class) pays one link traversal; everything else
/// is staged through host memory and pays both devices' host-link legs.
/// xcl only defines the interface so the runtime stays simulator-agnostic.
class LinkModel {
 public:
  virtual ~LinkModel() = default;
  /// Modeled seconds to move `bytes` from `src`'s memory to `dst`'s.
  [[nodiscard]] virtual double peer_seconds(const Device& src,
                                            const Device& dst,
                                            std::size_t bytes) const = 0;
  /// Seconds the issuing transfer lane (the DMA engine) stays busy with the
  /// message — LogGP's overhead/gap, as opposed to peer_seconds' full
  /// end-to-end completion.  Back-to-back small messages pipeline: the next
  /// transfer may start once the lane frees, long before the previous
  /// message lands at the far end.  Defaults to the full duration (no
  /// pipelining) so conservative models need not override it.
  [[nodiscard]] virtual double peer_occupancy_seconds(
      const Device& src, const Device& dst, std::size_t bytes) const {
    return peer_seconds(src, dst, bytes);
  }
  /// True when the pair transfers directly, without host staging.
  [[nodiscard]] virtual bool peer_direct(const Device& src,
                                         const Device& dst) const = 0;
};

/// Process-wide link model used by Queue::enqueue_peer_copy.  When unset
/// (nullptr), peer copies fall back to conservative host staging: the
/// source's device-to-host leg plus the destination's host-to-device leg,
/// each timed by its own TimingModel.  The pointer is not owned and must
/// outlive any queue that transfers while it is installed.
void set_link_model(const LinkModel* model) noexcept;
[[nodiscard]] const LinkModel* link_model() noexcept;

}  // namespace eod::xcl
