// Functional NDRange execution: runs a kernel body for every work-item.
// Work-groups are distributed across the thread pool; items within a group
// run on one thread (plain loop, or fibers when the kernel uses barriers).
#pragma once

#include "xcl/device.hpp"
#include "xcl/kernel.hpp"
#include "xcl/ndrange.hpp"

namespace eod::xcl {

/// Executes `kernel` over `range` (local sizes must already be resolved).
/// Throws the first exception raised by any work-item.
void execute_ndrange(const Kernel& kernel, const NDRange& range,
                     const Device& device);

}  // namespace eod::xcl
