// Functional NDRange execution: runs a kernel body for every work-item.
// Work-groups are distributed across the work-stealing thread pool; items
// within a group run on one thread (plain loop, or fibers when the kernel
// uses barriers).  Each executing thread owns long-lived scratch -- a
// lazily-grown LocalArena and a FiberPool of reusable stacks -- so
// steady-state group dispatch performs no heap allocation.
#pragma once

#include <cstdint>

#include "xcl/device.hpp"
#include "xcl/kernel.hpp"
#include "xcl/ndrange.hpp"

namespace eod::xcl {

class ThreadPool;

/// Snapshot of the executor's process-wide observability counters: dispatch
/// activity from the global pool plus the per-worker scratch reuse counters.
struct ExecutorStats {
  std::uint64_t launches = 0;         ///< parallel launches dispatched
  std::uint64_t tasks_executed = 0;   ///< work-groups (iterations) run
  std::uint64_t chunks_claimed = 0;   ///< owner-side range claims
  std::uint64_t chunks_stolen = 0;    ///< thief-side half-range steals
  std::uint64_t groups_loop = 0;      ///< groups run as plain loops
  std::uint64_t groups_fiber = 0;     ///< groups run as fiber sets
  std::uint64_t arena_bytes_hwm = 0;  ///< largest __local footprint served
  std::uint64_t fiber_stacks_created = 0;
  std::uint64_t fiber_stacks_reused = 0;
};

/// Counters for the global pool and all executor worker scratch.
[[nodiscard]] ExecutorStats executor_stats();
void reset_executor_stats();

/// Executes `kernel` over `range` (local sizes must already be resolved) on
/// `pool` (the global pool when null).  Throws the exception raised by the
/// lowest-indexed failing work-group, deterministically.
void execute_ndrange(const Kernel& kernel, const NDRange& range,
                     const Device& device, ThreadPool* pool = nullptr);

}  // namespace eod::xcl
