// Functional NDRange execution: runs a kernel body for every work-item.
// Work-groups are distributed across the work-stealing thread pool; items
// within a group run on one thread (plain loop, or fibers when the kernel
// uses barriers, or a single span-kernel call when the kernel provides a
// whole-group formulation).  Each executing thread owns long-lived scratch
// -- a lazily-grown LocalArena and a FiberPool of reusable stacks -- so
// steady-state group dispatch performs no heap allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "xcl/device.hpp"
#include "xcl/kernel.hpp"
#include "xcl/ndrange.hpp"

namespace eod::xcl {

class ThreadPool;

/// Process-wide tier-selection override (DESIGN.md §9, §10, §13).  kAuto
/// uses the span tier whenever it is legal for a launch and falls back to
/// the per-item loop/fiber tiers otherwise; kItem forces the per-item
/// reference path even for kernels that carry a span body (the A/B
/// baseline); kSpan behaves like kAuto but states the intent explicitly in
/// `--dispatch=span` command lines.  kSimd selects a kernel's explicit-SIMD
/// body (Kernel::simd()) where one exists, degrading to span and then to
/// the per-item path for kernels without one -- kAuto deliberately never
/// picks the simd body, so opting into explicit vectors is always a stated
/// choice.  kChecked is the checker tier: while a check::CheckSession is
/// active, launches run serially through the shadow-memory instrumentation
/// (check/checked_exec.hpp); without a session it behaves like kItem.  An
/// active CheckSession overrides every other mode, kSimd included.
enum class DispatchMode : std::uint8_t { kAuto, kItem, kSpan, kSimd, kChecked };

[[nodiscard]] DispatchMode dispatch_mode() noexcept;
void set_dispatch_mode(DispatchMode mode) noexcept;

/// "auto" | "item" | "span" | "simd" | "checked" -> mode; nullopt otherwise.
[[nodiscard]] std::optional<DispatchMode> parse_dispatch_mode(
    std::string_view name) noexcept;
[[nodiscard]] const char* to_string(DispatchMode mode) noexcept;

/// The valid parse_dispatch_mode() spellings, for CLI error/usage text
/// ("auto|item|span|simd|checked") -- one source of truth so the message
/// cannot drift from the parser.
[[nodiscard]] const char* dispatch_mode_names() noexcept;

/// Process default dispatch mode: the EOD_DISPATCH environment hatch
/// (mirroring EOD_QUEUE/EOD_TRACE), kAuto when unset.  An unparseable
/// value aborts via std::exit with a message listing the valid modes --
/// silently running the wrong tier would invalidate a measurement.
/// Cached after first use, like default_queue_mode().
[[nodiscard]] DispatchMode default_dispatch_mode();

/// Snapshot of the executor's process-wide observability counters: dispatch
/// activity from the global pool plus the per-worker scratch reuse counters.
struct ExecutorStats {
  std::uint64_t launches = 0;         ///< parallel launches dispatched
  std::uint64_t tasks_executed = 0;   ///< work-groups (iterations) run
  std::uint64_t chunks_claimed = 0;   ///< owner-side range claims
  std::uint64_t chunks_stolen = 0;    ///< thief-side half-range steals
  std::uint64_t groups_loop = 0;      ///< groups run as plain loops
  std::uint64_t groups_fiber = 0;     ///< groups run as fiber sets
  std::uint64_t groups_span = 0;      ///< groups run as one span call
  std::uint64_t groups_simd = 0;      ///< groups run through the simd body
  std::uint64_t groups_checked = 0;   ///< groups run under the checker tier
  std::uint64_t arena_bytes_hwm = 0;  ///< largest __local footprint served
  std::uint64_t fiber_stacks_created = 0;
  std::uint64_t fiber_stacks_reused = 0;
};

/// Counters for the global pool and all executor worker scratch.
[[nodiscard]] ExecutorStats executor_stats();
void reset_executor_stats();

/// Executes `kernel` over `range` (local sizes must already be resolved) on
/// `pool` (the global pool when null).  Throws the exception raised by the
/// lowest-indexed failing work-group, deterministically.
void execute_ndrange(const Kernel& kernel, const NDRange& range,
                     const Device& device, ThreadPool* pool = nullptr);

}  // namespace eod::xcl
