#pragma once

#include <stdexcept>
#include <string>

#include "xcl/types.hpp"

namespace eod::xcl {

/// Exception carrying an xcl Status, thrown by all runtime entry points.
class Error : public std::runtime_error {
 public:
  Error(Status status, const std::string& what)
      : std::runtime_error(what + " (" + to_string(status) + ")"),
        status_(status) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Throws Error(status, message) when `ok` is false.  The const char*
/// overload keeps the passing path allocation-free: literal messages must
/// not be materialized into std::string on every successful check (require
/// guards per-work-item operations like barrier() and __local acquisition,
/// so an eager conversion would put a heap allocation in the hot path).
inline void require(bool ok, Status status, const char* message) {
  if (!ok) throw Error(status, message);
}
inline void require(bool ok, Status status, const std::string& message) {
  if (!ok) throw Error(status, message);
}

}  // namespace eod::xcl
