#pragma once

#include <stdexcept>
#include <string>

#include "xcl/types.hpp"

namespace eod::xcl {

/// Exception carrying an xcl Status, thrown by all runtime entry points.
class Error : public std::runtime_error {
 public:
  Error(Status status, const std::string& what)
      : std::runtime_error(what + " (" + to_string(status) + ")"),
        status_(status) {}

  [[nodiscard]] Status status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Throws Error(status, message) when `ok` is false.
inline void require(bool ok, Status status, const std::string& message) {
  if (!ok) throw Error(status, message);
}

}  // namespace eod::xcl
