#include "xcl/error.hpp"

namespace eod::xcl {

const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::kSuccess:
      return "SUCCESS";
    case Status::kInvalidValue:
      return "INVALID_VALUE";
    case Status::kInvalidBufferSize:
      return "INVALID_BUFFER_SIZE";
    case Status::kInvalidWorkGroupSize:
      return "INVALID_WORK_GROUP_SIZE";
    case Status::kInvalidKernelArgs:
      return "INVALID_KERNEL_ARGS";
    case Status::kOutOfResources:
      return "OUT_OF_RESOURCES";
    case Status::kMemObjectAllocationFailure:
      return "MEM_OBJECT_ALLOCATION_FAILURE";
    case Status::kInvalidOperation:
      return "INVALID_OPERATION";
    case Status::kInvalidEventWaitList:
      return "INVALID_EVENT_WAIT_LIST";
  }
  return "UNKNOWN_STATUS";
}

}  // namespace eod::xcl
