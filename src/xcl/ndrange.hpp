// NDRange descriptions for kernel launches (1-3 dimensions), matching the
// clEnqueueNDRangeKernel global/local size model.
#pragma once

#include <array>
#include <cstddef>

#include "xcl/error.hpp"

namespace eod::xcl {

/// Global and local (work-group) sizes for up to three dimensions.
class NDRange {
 public:
  /// 1-D range; local size 0 means "runtime picks" (whole range, capped).
  explicit NDRange(std::size_t g0, std::size_t l0 = 0)
      : dims_(1), global_{g0, 1, 1}, local_{l0, 1, 1} {
    validate();
  }
  NDRange(std::size_t g0, std::size_t g1, std::size_t l0, std::size_t l1)
      : dims_(2), global_{g0, g1, 1}, local_{l0, l1, 1} {
    validate();
  }
  NDRange(std::size_t g0, std::size_t g1, std::size_t g2, std::size_t l0,
          std::size_t l1, std::size_t l2)
      : dims_(3), global_{g0, g1, g2}, local_{l0, l1, l2} {
    validate();
  }

  [[nodiscard]] int dims() const noexcept { return dims_; }
  [[nodiscard]] std::size_t global(int d) const noexcept { return global_[d]; }
  [[nodiscard]] std::size_t local(int d) const noexcept { return local_[d]; }

  [[nodiscard]] std::size_t global_items() const noexcept {
    return global_[0] * global_[1] * global_[2];
  }
  [[nodiscard]] std::size_t group_items() const noexcept {
    return local_[0] * local_[1] * local_[2];
  }
  [[nodiscard]] std::size_t groups(int d) const noexcept {
    return global_[d] / local_[d];
  }
  [[nodiscard]] std::size_t num_groups() const noexcept {
    return groups(0) * groups(1) * groups(2);
  }

  /// Fills unset (zero) local sizes: dimension 0 gets min(global, cap), the
  /// rest get 1, mirroring a driver's automatic work-group choice.
  void resolve_local(std::size_t max_group_size) {
    if (local_[0] == 0) {
      local_[0] = std::min(global_[0], max_group_size);
      while (global_[0] % local_[0] != 0) --local_[0];
    }
    for (int d = 1; d < 3; ++d) {
      if (local_[d] == 0) local_[d] = 1;
    }
    validate();
    for (int d = 0; d < dims_; ++d) {
      require(global_[d] % local_[d] == 0, Status::kInvalidWorkGroupSize,
              "global size not divisible by local size");
    }
    require(group_items() <= max_group_size, Status::kInvalidWorkGroupSize,
            "work-group exceeds device maximum");
  }

 private:
  void validate() const {
    for (int d = 0; d < dims_; ++d) {
      require(global_[d] > 0, Status::kInvalidValue,
              "global NDRange dimension must be positive");
    }
  }

  int dims_;
  std::array<std::size_t, 3> global_;
  std::array<std::size_t, 3> local_;
};

}  // namespace eod::xcl
