// A small task-based thread pool (CP.4: think in terms of tasks).  Work-
// groups of an NDRange launch are distributed across the pool; on a
// single-core host it degenerates to serial execution while exercising the
// same code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace eod::xcl {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs body(i) for i in [0, n), blocking until all iterations complete.
  /// The first exception thrown by any iteration is rethrown to the caller.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Shared pool sized to the host's hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace eod::xcl
