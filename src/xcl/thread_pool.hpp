// A work-stealing parallel-for executor (CP.4: think in terms of tasks).
//
// NDRange launches publish one iteration range per participant instead of
// pushing per-chunk std::function tasks through a locked queue: the caller
// splits [0, n) into per-participant sub-ranges held in cache-line-aligned
// atomic words, bumps a launch epoch, and wakes the persistent workers.
// Each participant (workers plus the calling thread, which always helps)
// claims grain-sized chunks from the front of its own range with a CAS and,
// once dry, steals half of a victim's remaining range from the back --
// Chase-Lev-style load balancing over contiguous ranges.  A launch therefore
// costs one atomic publish and zero heap allocations, however many groups it
// spans.  On a single-core host it degenerates to (caller-driven) serial
// execution while exercising the same claim path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eod::xcl {

class ThreadPool {
 public:
  /// Dispatch counters, monotonically accumulated across launches.
  struct Stats {
    std::uint64_t launches = 0;        ///< parallel_for calls that used workers
    std::uint64_t tasks_executed = 0;  ///< iterations run (incl. inline runs)
    std::uint64_t chunks_claimed = 0;  ///< grain-chunks taken from own range
    std::uint64_t chunks_stolen = 0;   ///< half-ranges taken from a victim
  };

  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs body(i) for i in [0, n), blocking until all iterations complete.
  /// Every iteration executes even when some throw; if any threw, the
  /// exception raised by the *lowest* iteration index is rethrown, so the
  /// error surfaced to the caller does not depend on thread scheduling.
  /// Nested calls (from inside a body running on this pool) execute inline
  /// and serially, which makes them deadlock-free by construction.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  [[nodiscard]] Stats stats() const noexcept;
  void reset_stats() noexcept;

  /// True when the calling thread is currently executing a parallel_for body
  /// of this pool (worker or helping caller) -- i.e. a further parallel_for
  /// on this pool would run inline.
  [[nodiscard]] bool in_launch() const noexcept;

  /// Shared pool sized to the host's hardware concurrency.
  static ThreadPool& global();

 private:
  // One per participant: an atomic [begin, end) iteration range (packed
  // begin<<32 | end) the owner claims from the front and thieves halve from
  // the back, plus the participant's lowest-index pending exception.  Padded
  // to a cache line so claims on neighbouring slots never false-share.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> range{0};
    std::size_t error_index = 0;
    std::exception_ptr error;
  };

  void worker_loop(unsigned slot);
  void participate(unsigned slot, std::uint64_t launch_epoch);
  void run_span(Slot& self, const std::function<void(std::size_t)>& body,
                std::uint32_t begin, std::uint32_t end);
  void run_one_slice(std::size_t n,
                     const std::function<void(std::size_t)>& body);

  std::vector<std::thread> workers_;
  std::vector<Slot> slots_;  // workers_.size() + 1; last slot is the caller

  // Launch publication: body/base/grain are written by the caller before the
  // epoch bump and read by workers after they observe the new epoch.
  std::atomic<const std::function<void(std::size_t)>*> body_{nullptr};
  std::size_t base_ = 0;       // slice offset for > 32-bit iteration counts
  std::uint32_t grain_ = 1;    // owner-claim chunk size for this launch
  std::atomic<std::size_t> remaining_{0};  // iterations not yet completed
  std::atomic<unsigned> active_{0};        // participants inside participate()
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};

  std::mutex launch_mutex_;  // serializes top-level launches
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  mutable std::atomic<std::uint64_t> stat_launches_{0};
  mutable std::atomic<std::uint64_t> stat_tasks_{0};
  mutable std::atomic<std::uint64_t> stat_claims_{0};
  mutable std::atomic<std::uint64_t> stat_steals_{0};
};

}  // namespace eod::xcl
