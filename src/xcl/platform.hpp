// Platforms group devices, as in OpenCL.  Devices are selected with the
// paper's uniform (-p <platform> -d <device> -t <type>) notation via
// Platform::select().
#pragma once

#include <memory>
#include <vector>

#include "xcl/device.hpp"

namespace eod::xcl {

class Platform {
 public:
  explicit Platform(std::string name) : name_(std::move(name)) {}

  Device& add_device(DeviceInfo info, std::shared_ptr<const TimingModel> m) {
    devices_.push_back(std::make_unique<Device>(std::move(info), std::move(m)));
    return *devices_.back();
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t device_count() const noexcept {
    return devices_.size();
  }
  [[nodiscard]] Device& device(std::size_t i) const {
    require(i < devices_.size(), Status::kInvalidValue,
            "device index out of range");
    return *devices_[i];
  }
  [[nodiscard]] std::vector<Device*> devices() const {
    std::vector<Device*> out;
    out.reserve(devices_.size());
    for (const auto& d : devices_) out.push_back(d.get());
    return out;
  }

  /// OpenDwarfs-style device selection: the d-th device of type t within
  /// this platform.  Matches the paper's `-d <idx> -t <type>` convention
  /// (t: 0 = CPU, 1 = GPU, 2 = accelerator/MIC).
  [[nodiscard]] Device& select(std::size_t index, DeviceType type) const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Device>> devices_;
};

/// The process-wide platform list (analogue of clGetPlatformIDs).  Platform 0
/// is always the native host platform; the simulated testbed platform is
/// registered by sim::register_testbed_platform().
class PlatformRegistry {
 public:
  static PlatformRegistry& instance();

  Platform& add(std::string name);
  [[nodiscard]] std::size_t count() const noexcept { return platforms_.size(); }
  [[nodiscard]] Platform& at(std::size_t i) const;
  /// Drops all registered platforms (used by tests for isolation).
  void reset();

 private:
  PlatformRegistry() = default;
  std::vector<std::unique_ptr<Platform>> platforms_;
};

}  // namespace eod::xcl
