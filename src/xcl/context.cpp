#include "xcl/context.hpp"

#include <algorithm>

#include "xcl/error.hpp"
#include "xcl/queue.hpp"

namespace eod::xcl {

void Context::on_alloc(std::size_t bytes) {
  const std::size_t cap = device_.info().global_mem_bytes;
  const std::size_t now =
      // lint: relaxed-ok(stat counter; no memory is published through it)
      allocated_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (cap != 0 && now > cap) {
    // lint: relaxed-ok(rollback of the stat counter above)
    allocated_.fetch_sub(bytes, std::memory_order_relaxed);
    throw Error(Status::kMemObjectAllocationFailure,
                "allocation exceeds device global memory of " +
                    device_.name());
  }
  // Monotone peak watermark: value-only, nothing is acquired through it.
  // lint: relaxed-ok(monotonic stat watermark; both CAS orders are relaxed)
  constexpr auto relaxed = std::memory_order_relaxed;
  std::size_t prev = peak_.load(relaxed);
  while (prev < now && !peak_.compare_exchange_weak(prev, now, relaxed,
                                                    relaxed)) {
  }
}

void Context::on_free(std::size_t bytes) noexcept {
  // lint: relaxed-ok(stat counter decrement; value-only)
  allocated_.fetch_sub(bytes, std::memory_order_relaxed);
}

void Context::register_queue(Queue* q) {
  const std::lock_guard<std::mutex> lock(queues_mu_);
  queues_.push_back(q);
}

void Context::unregister_queue(Queue* q) noexcept {
  const std::lock_guard<std::mutex> lock(queues_mu_);
  queues_.erase(std::remove(queues_.begin(), queues_.end(), q),
                queues_.end());
}

void Context::drain_queues_for_buffer_release() noexcept {
  // Snapshot under the lock, drain outside it: a drained command could in
  // principle release a buffer of this context and re-enter.
  std::vector<Queue*> snapshot;
  {
    const std::lock_guard<std::mutex> lock(queues_mu_);
    snapshot = queues_;
  }
  for (Queue* q : snapshot) {
    try {
      q->drain_pending();
    } catch (...) {
      // Deferred command errors cannot surface from a release path (a
      // clReleaseMemObject analogue has no error channel for them).
    }
  }
}

}  // namespace eod::xcl
