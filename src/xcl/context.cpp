#include "xcl/context.hpp"

#include "xcl/error.hpp"

namespace eod::xcl {

void Context::on_alloc(std::size_t bytes) {
  const std::size_t cap = device_.info().global_mem_bytes;
  const std::size_t now =
      allocated_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (cap != 0 && now > cap) {
    allocated_.fetch_sub(bytes, std::memory_order_relaxed);
    throw Error(Status::kMemObjectAllocationFailure,
                "allocation exceeds device global memory of " +
                    device_.name());
  }
  std::size_t prev = peak_.load(std::memory_order_relaxed);
  while (prev < now &&
         !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
  }
}

void Context::on_free(std::size_t bytes) noexcept {
  allocated_.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace eod::xcl
