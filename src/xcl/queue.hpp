// In-order command queue with profiling (CL_QUEUE_PROFILING_ENABLE always
// on).  Commands execute functionally on the host; their *modeled* duration
// advances the device's virtual timeline and is reported via Event.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "xcl/buffer.hpp"
#include "xcl/context.hpp"
#include "xcl/event.hpp"
#include "xcl/executor.hpp"
#include "xcl/kernel.hpp"
#include "xcl/modeling.hpp"

namespace eod::xcl {

class Queue {
 public:
  explicit Queue(Context& ctx) : ctx_(&ctx) {}

  [[nodiscard]] Context& context() const noexcept { return *ctx_; }
  [[nodiscard]] const Device& device() const noexcept {
    return ctx_->device();
  }

  /// Host -> device transfer (clEnqueueWriteBuffer).
  template <typename T>
  Event enqueue_write(Buffer& dst, std::span<const T> src) {
    return write_bytes(dst, src.data(), src.size_bytes());
  }

  /// Device -> host transfer (clEnqueueReadBuffer).
  template <typename T>
  Event enqueue_read(const Buffer& src, std::span<T> dst) {
    return read_bytes(src, dst.data(), dst.size_bytes());
  }

  /// Device-side fill (clEnqueueFillBuffer): replicates `value` across the
  /// buffer.  Timed as device-bandwidth work, not a PCIe transfer.
  template <typename T>
  Event enqueue_fill(Buffer& dst, const T& value) {
    require(dst.bytes() % sizeof(T) == 0, Status::kInvalidValue,
            "fill pattern does not divide buffer size");
    auto view = dst.view<T>();
    if (functional_) {
      for (auto& v : view) v = value;
    }
    return push_device_side_op(
        transfer_label("fill", dst.name(), dst.bytes()), dst.bytes());
  }

  /// Device-to-device copy (clEnqueueCopyBuffer).
  Event enqueue_copy(const Buffer& src, Buffer& dst);

  /// Kernel launch (clEnqueueNDRangeKernel).  `profile` characterizes the
  /// launch's work for the device timing model.
  Event enqueue(const Kernel& kernel, NDRange range,
                const WorkloadProfile& profile);

  /// clFinish analogue.  Functionally the queue is synchronous; finish()
  /// marks a host synchronisation point (resetting the modeled unflushed
  /// command depth) and returns the virtual timeline position.
  double finish() noexcept {
    kernels_since_sync_ = 0;
    return now_s_;
  }

  /// When false, kernel launches are modeled (timed, event-recorded) but not
  /// functionally executed.  Used by device sweeps where results have
  /// already been validated once: the modeled timeline is identical, only
  /// the host-side computation is skipped.  Defaults to true.
  void set_functional(bool f) noexcept { functional_ = f; }
  [[nodiscard]] bool functional() const noexcept { return functional_; }

  /// All events recorded since construction or reset, in enqueue order.
  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  void clear_events() {
    events_.clear();
    launches_.clear();
  }

  /// When enabled, every kernel launch's full KernelLaunchStats is kept
  /// (used by the workload characterizer).  Off by default.
  void set_record_launches(bool record) noexcept {
    record_launches_ = record;
  }
  [[nodiscard]] const std::vector<KernelLaunchStats>& launches()
      const noexcept {
    return launches_;
  }

  /// Host-side dispatch counters accumulated over this queue's functional
  /// kernel launches (deltas of the global executor counters around each
  /// enqueue; meaningful while one queue launches at a time, as the harness
  /// does).  arena_bytes_hwm is a maximum, the rest are sums.
  [[nodiscard]] const ExecutorStats& dispatch_stats() const noexcept {
    return dispatch_stats_;
  }

  /// Sum of modeled seconds of all kernel events (the "iteration time" the
  /// paper reports: total compute time across all kernels of a benchmark).
  [[nodiscard]] double modeled_kernel_seconds() const noexcept;
  /// Sum of modeled seconds of all transfer events.
  [[nodiscard]] double modeled_transfer_seconds() const noexcept;
  /// Sum of modeled kernel energy in joules.
  [[nodiscard]] double modeled_kernel_energy_j() const noexcept;

 private:
  Event write_bytes(Buffer& dst, const void* src, std::size_t bytes);
  Event read_bytes(const Buffer& src, void* dst, std::size_t bytes);
  Event push_device_side_op(std::string label, std::size_t bytes);
  Event& push(Event e);
  /// Lane id of this queue on the modeled-device trace track, allocated on
  /// first traced command.
  std::uint32_t obs_lane();

  Context* ctx_;
  double now_s_ = 0.0;  // device virtual timeline
  bool functional_ = true;
  bool record_launches_ = false;
  std::size_t kernels_since_sync_ = 0;
  std::int64_t obs_lane_ = -1;
  std::vector<Event> events_;
  std::vector<KernelLaunchStats> launches_;
  ExecutorStats dispatch_stats_;
};

}  // namespace eod::xcl
