// Command queue with profiling (CL_QUEUE_PROFILING_ENABLE always on) and
// two execution modes (DESIGN.md §12):
//
//  * kInOrder (default) — commands execute in enqueue order, eagerly, and
//    the modeled device timeline is one contiguous chain: exactly the
//    paper's serial-stream behaviour.
//  * kOutOfOrder (CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE analogue) — each
//    command's dependencies are its event wait list (or, when none is
//    given, *every* command enqueued before it — an implicit barrier, so
//    un-annotated code stays correct even after an explicit-DAG section
//    forked the pending graph).  Functional execution is deferred into a command DAG that a
//    topological scheduler drains over the work-stealing ThreadPool at
//    sync points (finish(), blocking reads, wait(), destruction), running
//    independent commands concurrently.  The modeled timeline advances per
//    dependency chain over two lanes — kernel-side work vs host-link
//    transfers (bandwidth from sim/device_spec) — so transfers genuinely
//    overlap compute in Event timestamps and the pid-2 device trace.
//
// Commands execute functionally on the host; their *modeled* duration
// advances the device's virtual timeline and is reported via Event.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "xcl/buffer.hpp"
#include "xcl/context.hpp"
#include "xcl/event.hpp"
#include "xcl/executor.hpp"
#include "xcl/kernel.hpp"
#include "xcl/modeling.hpp"

namespace eod::xcl {

/// Queue execution mode (CL_QUEUE_OUT_OF_ORDER_EXEC_MODE_ENABLE analogue).
enum class QueueMode : std::uint8_t { kInOrder, kOutOfOrder };

[[nodiscard]] const char* to_string(QueueMode mode) noexcept;
/// "inorder" | "in-order" | "ooo" | "out-of-order" -> mode; nullopt else.
[[nodiscard]] std::optional<QueueMode> parse_queue_mode(
    std::string_view name) noexcept;

/// Mode used by queues constructed without an explicit one.  kInOrder
/// unless the EOD_QUEUE environment variable says otherwise ("ooo" /
/// "out-of-order" / "inorder"): the no-recompile hatch the ooo-mode CI job
/// uses to run the whole suite out-of-order and flush hidden enqueue-order
/// assumptions.  Read once and cached.
[[nodiscard]] QueueMode default_queue_mode() noexcept;

class Queue {
 public:
  /// `mode` nullopt = default_queue_mode() (EOD_QUEUE-aware); an explicit
  /// mode always wins over the environment.
  explicit Queue(Context& ctx, std::optional<QueueMode> mode = std::nullopt);
  /// Drains any still-pending commands (clReleaseCommandQueue flushes).
  ~Queue();

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  [[nodiscard]] Context& context() const noexcept { return *ctx_; }
  [[nodiscard]] const Device& device() const noexcept {
    return ctx_->device();
  }
  [[nodiscard]] QueueMode mode() const noexcept { return mode_; }

  /// Host -> device transfer (clEnqueueWriteBuffer).  The overload without
  /// a wait list is *blocking* (CL_TRUE): it depends on the implicit
  /// program-order chain and completes before returning, so callers may
  /// reuse `src` immediately (the pre-DAG contract).  With an explicit wait
  /// list the write is non-blocking in an out-of-order queue: the copy from
  /// `src` happens when the scheduler releases it, so the host memory must
  /// stay valid and unmodified until a sync point (the standard
  /// non-blocking clEnqueueWriteBuffer contract).
  template <typename T>
  Event enqueue_write(Buffer& dst, std::span<const T> src) {
    return write_bytes(dst, src.data(), 0, src.size_bytes(), nullptr);
  }
  template <typename T>
  Event enqueue_write(Buffer& dst, std::span<const T> src,
                      std::span<const Event> wait) {
    return write_bytes(dst, src.data(), 0, src.size_bytes(), &wait);
  }
  /// Sub-range write: `src` lands at elements [elem_offset, elem_offset +
  /// src.size()) of the buffer (clEnqueueWriteBuffer with a byte offset).
  /// Used by partitioned pipelines where each shard uploads only its stripe.
  template <typename T>
  Event enqueue_write(Buffer& dst, std::span<const T> src,
                      std::size_t elem_offset, std::span<const Event> wait) {
    return write_bytes(dst, src.data(), elem_offset * sizeof(T),
                       src.size_bytes(), &wait);
  }

  /// Device -> host transfer (clEnqueueReadBuffer).  Without a wait list
  /// the read is *blocking*: it drains its dependency chain and completes
  /// before returning, so `dst` is ready immediately (current callers'
  /// semantics).  With an explicit wait list the read is non-blocking in an
  /// out-of-order queue — `dst` is only valid after wait()/finish().
  template <typename T>
  Event enqueue_read(const Buffer& src, std::span<T> dst) {
    return read_bytes(src, dst.data(), 0, dst.size_bytes(), nullptr);
  }
  template <typename T>
  Event enqueue_read(const Buffer& src, std::span<T> dst,
                     std::span<const Event> wait) {
    return read_bytes(src, dst.data(), 0, dst.size_bytes(), &wait);
  }
  /// Sub-range read: elements [elem_offset, elem_offset + dst.size()) of
  /// the buffer (clEnqueueReadBuffer with a byte offset).  Used by tiled
  /// write-back pipelines where each tile's read waits only on its tile's
  /// kernel.
  template <typename T>
  Event enqueue_read(const Buffer& src, std::span<T> dst,
                     std::size_t elem_offset, std::span<const Event> wait) {
    return read_bytes(src, dst.data(), elem_offset * sizeof(T),
                      dst.size_bytes(), &wait);
  }

  /// Device-side fill (clEnqueueFillBuffer): replicates `value` across the
  /// buffer.  Timed as device-bandwidth work, not a PCIe transfer.
  template <typename T>
  Event enqueue_fill(Buffer& dst, const T& value) {
    return fill_impl(dst, value, nullptr);
  }
  template <typename T>
  Event enqueue_fill(Buffer& dst, const T& value,
                     std::span<const Event> wait) {
    return fill_impl(dst, value, &wait);
  }

  /// Device-to-device copy (clEnqueueCopyBuffer).
  Event enqueue_copy(const Buffer& src, Buffer& dst);
  Event enqueue_copy(const Buffer& src, Buffer& dst,
                     std::span<const Event> wait);

  /// Cross-device copy over the modeled interconnect (DESIGN.md §14):
  /// moves `bytes` from byte `src_offset` of `src` (a buffer of *any*
  /// context) into byte `dst_offset` of `dst`, which must belong to this
  /// queue's context.  Timed by the installed LinkModel — a direct P2P link
  /// traversal when the topology has one, host staging (source D2H + local
  /// H2D) otherwise — and placed on the modeled *transfer* lane, so an
  /// out-of-order queue overlaps halo exchanges with compute.  Wait-list
  /// events may come from the source device's queue; modeled time
  /// propagates across queues, so the copy cannot start before its producer
  /// finished on the remote timeline.
  Event enqueue_peer_copy(const Buffer& src, std::size_t src_offset,
                          Buffer& dst, std::size_t dst_offset,
                          std::size_t bytes);
  Event enqueue_peer_copy(const Buffer& src, std::size_t src_offset,
                          Buffer& dst, std::size_t dst_offset,
                          std::size_t bytes, std::span<const Event> wait);

  /// Kernel launch (clEnqueueNDRangeKernel).  `profile` characterizes the
  /// launch's work for the device timing model.
  Event enqueue(const Kernel& kernel, NDRange range,
                const WorkloadProfile& profile);
  Event enqueue(const Kernel& kernel, NDRange range,
                const WorkloadProfile& profile, std::span<const Event> wait);

  /// clWaitForEvents analogue: returns once the command behind `e` (and its
  /// transitive dependencies) has executed.  No-op for completed commands.
  void wait(const Event& e);

  /// clFinish analogue: drains every pending command, marks a host
  /// synchronisation point (resetting the modeled unflushed command depth)
  /// and returns the virtual timeline position — the queue's modeled
  /// *completion horizon* (max command end), i.e. the pipeline makespan in
  /// an out-of-order queue.
  double finish();

  /// When false, kernel launches are modeled (timed, event-recorded) but not
  /// functionally executed.  Used by device sweeps where results have
  /// already been validated once: the modeled timeline is identical, only
  /// the host-side computation is skipped.  Defaults to true.
  void set_functional(bool f) noexcept { functional_ = f; }
  [[nodiscard]] bool functional() const noexcept { return functional_; }

  /// All events recorded since construction or reset, in modeled
  /// *completion* order (ties broken by enqueue order).  Each event carries
  /// its enqueue_index, so program order is always recoverable — figure
  /// drivers stay stable under out-of-order completion.
  [[nodiscard]] const std::vector<Event>& events() const;
  /// Number of commands recorded (cheaper than events().size(): no sort).
  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }
  /// Drains pending commands, then forgets all history.
  void clear_events();

  /// When enabled, every kernel launch's full KernelLaunchStats is kept
  /// (used by the workload characterizer).  Off by default.
  void set_record_launches(bool record) noexcept {
    record_launches_ = record;
  }
  [[nodiscard]] const std::vector<KernelLaunchStats>& launches()
      const noexcept {
    return launches_;
  }

  /// Host-side dispatch counters accumulated over this queue's functional
  /// kernel launches (deltas of the global executor counters around each
  /// enqueue — or around each graph drain in an out-of-order queue;
  /// meaningful while one queue launches at a time, as the harness does).
  /// arena_bytes_hwm is a maximum, the rest are sums.
  [[nodiscard]] const ExecutorStats& dispatch_stats() const noexcept {
    return dispatch_stats_;
  }

  /// Sum of modeled seconds of all device-side events — kernels plus
  /// device-bandwidth copies/fills (the "iteration time" the paper reports:
  /// total compute time across all kernels of a benchmark).
  [[nodiscard]] double modeled_kernel_seconds() const noexcept;
  /// Sum of modeled seconds of all host-link transfer events (write/read).
  [[nodiscard]] double modeled_transfer_seconds() const noexcept;
  /// Sum of modeled kernel energy in joules.
  [[nodiscard]] double modeled_kernel_energy_j() const noexcept;
  /// Modeled end-to-end makespan: latest command end minus earliest command
  /// start.  Equal to the duration sum in an in-order queue; smaller when
  /// an out-of-order queue overlaps transfers with compute.
  [[nodiscard]] double modeled_span_seconds() const noexcept;

  /// Internal: buffer-release barrier, reached via
  /// Context::drain_queues_for_buffer_release().  Executes any still-
  /// deferred commands so a releasing Buffer's storage cannot be touched
  /// afterwards; unlike finish() it is not a host synchronisation point
  /// (the modeled launch depth is untouched) and is a no-op on a queue
  /// with nothing pending — in-order queues never pay anything here.
  void drain_pending();

 private:
  /// Deferred command node: the functional work of one enqueue plus the
  /// in-queue dependency edges the scheduler honours when draining.
  struct PendingCmd {
    std::uint64_t id = 0;
    std::size_t event_index = 0;  ///< into events_ (host_ns backfill)
    std::vector<std::uint64_t> deps;  ///< pending in-queue dependency ids
    /// Functional work; returns host wall ns spent (backfilled into the
    /// event).  Runs on a ThreadPool worker when the wave has siblings.
    std::function<std::uint64_t()> exec;
  };

  Event launch(const Kernel& kernel, NDRange range,
               const WorkloadProfile& profile,
               const std::span<const Event>* wait);
  Event write_bytes(Buffer& dst, const void* src, std::size_t offset,
                    std::size_t bytes, const std::span<const Event>* wait);
  Event read_bytes(const Buffer& src, void* dst, std::size_t offset,
                   std::size_t bytes, const std::span<const Event>* wait);
  Event copy_impl(const Buffer& src, Buffer& dst,
                  const std::span<const Event>* wait);
  Event peer_copy_impl(const Buffer& src, std::size_t src_offset,
                       Buffer& dst, std::size_t dst_offset, std::size_t bytes,
                       const std::span<const Event>* wait);
  /// Copy/fill: modeled as a device-bandwidth streaming op on the kernel
  /// lane, with `body` as the deferred functional work.
  Event device_side_op(CommandKind kind, std::string label,
                       std::size_t bytes, std::function<void()> body,
                       const std::span<const Event>* wait);
  template <typename T>
  Event fill_impl(Buffer& dst, const T& value,
                  const std::span<const Event>* wait) {
    require(dst.bytes() % sizeof(T) == 0, Status::kInvalidValue,
            "fill pattern does not divide buffer size");
    auto view = dst.view<T>();
    std::function<void()> body;
    if (functional_) {
      body = [view, value] {
        for (auto& v : view) v = value;
      };
    }
    return device_side_op(CommandKind::kFill,
                          transfer_label("fill", dst.name(), dst.bytes()),
                          dst.bytes(), std::move(body), wait);
  }

  /// Validates a wait list (null events and forward references are
  /// rejected) and synchronously drains any *foreign* pending dependency,
  /// so cross-queue waits are satisfied before this command records.
  void resolve_wait_list(const std::span<const Event>* wait);
  /// Records the command's event (modeled placement on the right lane),
  /// then either runs `exec` eagerly (in-order queue, or while a checker
  /// session pins serial execution) or defers it into the pending graph.
  /// `occupancy_s` is how long the command keeps its lane busy; negative
  /// (the default) means the full `duration_s`.  Link transfers pass a
  /// smaller occupancy so back-to-back messages pipeline on the lane while
  /// each still completes after its full modeled latency (DESIGN.md §14).
  Event submit(Event e, double duration_s,
               const std::span<const Event>* wait,
               std::function<std::uint64_t()> exec,
               double occupancy_s = -1.0);
  /// Runs `target_id`'s transitive dependency closure (0 = everything) in
  /// topological waves over the ThreadPool; detects cycles defensively.
  void drain(std::uint64_t target_id);
  [[nodiscard]] bool has_pending(std::uint64_t id) const noexcept;
  /// True when functional execution must happen at enqueue time.
  [[nodiscard]] bool eager() const noexcept;

  /// Lane ids of this queue on the modeled-device trace track, allocated on
  /// first traced command.  Out-of-order queues mirror link transfers onto
  /// a second lane so overlap is visible in the viewer.
  std::uint32_t obs_lane();
  std::uint32_t obs_transfer_lane();
  /// Mirrors one command onto the pid-2 device track with the full DAG
  /// argument block: `wait` is the caller's wait list (edge ids), `busy_s`
  /// the lane occupancy submit() charged for it.
  void emit_device_span(const Event& e, const std::span<const Event>* wait,
                        double busy_s);

  Context* ctx_;
  QueueMode mode_ = QueueMode::kInOrder;
  std::uint32_t trace_queue_id_ = 0;  ///< process-wide queue sequence id
  double now_s_ = 0.0;  // completion horizon (max modeled command end)
  double chain_end_s_ = 0.0;     // end of the last-enqueued command
  double kernel_lane_end_s_ = 0.0;
  double transfer_lane_end_s_ = 0.0;
  bool functional_ = true;
  bool record_launches_ = false;
  std::size_t kernels_since_sync_ = 0;
  std::uint64_t next_enqueue_index_ = 0;
  std::int64_t obs_lane_ = -1;
  std::int64_t obs_transfer_lane_ = -1;
  std::vector<Event> events_;  // enqueue order (internal)
  mutable std::vector<Event> completion_order_;  // lazily sorted view
  mutable bool completion_dirty_ = false;
  std::vector<PendingCmd> pending_;  // enqueue order; drained at sync points
  std::vector<KernelLaunchStats> launches_;
  ExecutorStats dispatch_stats_;
};

}  // namespace eod::xcl
