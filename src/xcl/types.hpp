// Fundamental types for the xcl runtime.
//
// xcl is an OpenCL-1.2-style host runtime: the same platform / device /
// context / queue / buffer / kernel / event object model, with kernels
// expressed as C++ callables executed over an NDRange.  It substitutes for
// the vendor OpenCL drivers of the paper's testbed (see DESIGN.md §2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace eod::xcl {

/// Mirrors CL_DEVICE_TYPE_*.
enum class DeviceType : std::uint8_t { kCpu, kGpu, kAccelerator };

[[nodiscard]] constexpr const char* to_string(DeviceType t) noexcept {
  switch (t) {
    case DeviceType::kCpu:
      return "CPU";
    case DeviceType::kGpu:
      return "GPU";
    case DeviceType::kAccelerator:
      return "ACCELERATOR";
  }
  return "UNKNOWN";
}

/// Status codes for runtime failures (subset of CL error space).
enum class Status : std::int32_t {
  kSuccess = 0,
  kInvalidValue = -30,
  kInvalidBufferSize = -61,
  kInvalidWorkGroupSize = -54,
  kInvalidKernelArgs = -52,
  kOutOfResources = -5,
  kMemObjectAllocationFailure = -4,
  kInvalidOperation = -59,
  kInvalidEventWaitList = -57,
};

[[nodiscard]] const char* to_string(Status s) noexcept;

/// Direction of a host<->device transfer.
enum class TransferDir : std::uint8_t { kHostToDevice, kDeviceToHost };

}  // namespace eod::xcl
