#include "xcl/fiber.hpp"

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "xcl/error.hpp"

namespace eod::xcl {

struct Fiber::Impl {
  ucontext_t context{};
  ucontext_t caller{};
  std::vector<char> stack;
  Fn fn;
  std::exception_ptr pending;
  bool started = false;
  bool finished = false;
};

namespace {
thread_local Fiber::Impl* g_current_fiber = nullptr;

// makecontext only forwards ints, so the Impl pointer travels as two halves.
void fiber_trampoline(unsigned hi, unsigned lo) {
  auto* impl = reinterpret_cast<Fiber::Impl*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  try {
    impl->fn();
  } catch (...) {
    impl->pending = std::current_exception();
  }
  impl->finished = true;
  // uc_link returns to the caller context when the trampoline falls off.
}
}  // namespace

// lint: alloc-ok(one-time Fiber construction; instances are pooled and rearmed)
Fiber::Fiber(Fn fn, std::size_t stack_bytes) : impl_(std::make_unique<Impl>()) {
  impl_->fn = std::move(fn);
  // lint: alloc-ok(one-time stack allocation for a pooled fiber)
  impl_->stack.resize(stack_bytes);
}

Fiber::~Fiber() = default;

void Fiber::resume() {
  if (done_) {
    throw std::logic_error("Fiber::resume called on a finished fiber");
  }
  Impl* impl = impl_.get();
  if (!impl->started) {
    impl->started = true;
    if (getcontext(&impl->context) != 0) {
      throw std::runtime_error("getcontext failed");
    }
    impl->context.uc_stack.ss_sp = impl->stack.data();
    impl->context.uc_stack.ss_size = impl->stack.size();
    impl->context.uc_link = &impl->caller;
    const auto ptr = reinterpret_cast<std::uintptr_t>(impl);
    makecontext(&impl->context,
                reinterpret_cast<void (*)()>(fiber_trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
  }
  Impl* previous = g_current_fiber;
  g_current_fiber = impl;
  swapcontext(&impl->caller, &impl->context);
  g_current_fiber = previous;

  if (impl->finished) done_ = true;
  if (impl->pending) {
    auto e = impl->pending;
    impl->pending = nullptr;
    std::rethrow_exception(e);
  }
}

void Fiber::yield_current() {
  Impl* impl = g_current_fiber;
  if (impl == nullptr) {
    throw std::logic_error("Fiber::yield_current outside a fiber");
  }
  swapcontext(&impl->context, &impl->caller);
}

void Fiber::reset(Fn fn) {
  impl_->fn = std::move(fn);
  rearm();
}

void Fiber::rearm() {
  impl_->pending = nullptr;
  impl_->started = false;
  impl_->finished = false;
  done_ = false;
}

namespace {
std::atomic<std::uint64_t> g_stacks_created{0};
std::atomic<std::uint64_t> g_stacks_reused{0};
}  // namespace

std::uint64_t fiber_stacks_created() noexcept {
  // lint: relaxed-ok(stack-reuse stat counter read)
  return g_stacks_created.load(std::memory_order_relaxed);
}
std::uint64_t fiber_stacks_reused() noexcept {
  // lint: relaxed-ok(stack-reuse stat counter read)
  return g_stacks_reused.load(std::memory_order_relaxed);
}
void reset_fiber_stack_counters() noexcept {
  // lint: relaxed-ok(stack-reuse stat counter reset)
  g_stacks_created.store(0, std::memory_order_relaxed);
  // lint: relaxed-ok(stack-reuse stat counter reset)
  g_stacks_reused.store(0, std::memory_order_relaxed);
}

void FiberPool::run_group(std::size_t count, GroupFnRef body) {
  if (count == 0) return;
  const std::size_t reused = std::min(count, fibers_.size());
  while (fibers_.size() < count) {
    // The permanent closure dispatches through body_, so a recycled fiber
    // never needs a new std::function: rearm() just resets run state.  The
    // [this, i] capture fits std::function's small-object buffer, so even
    // this one-time construction does not allocate beyond the stack.
    const std::size_t i = fibers_.size();
    // lint: alloc-ok(pool growth on first use; recycled fibers skip this)
    fibers_.push_back(
        // lint: alloc-ok(pool growth on first use; recycled fibers skip this)
        std::make_unique<Fiber>([this, i] { body_(i); }, stack_bytes_));
  }
  // lint: relaxed-ok(stack-reuse stat counter)
  g_stacks_created.fetch_add(count - reused, std::memory_order_relaxed);
  // lint: relaxed-ok(stack-reuse stat counter)
  g_stacks_reused.fetch_add(reused, std::memory_order_relaxed);
  body_ = body;
  for (std::size_t i = 0; i < count; ++i) {
    fibers_[i]->rearm();
  }
  // Round-robin: one resume per unfinished fiber per round.  All fibers must
  // finish on the same round, otherwise the kernel has divergent barriers.
  bool any_live = true;
  while (any_live) {
    any_live = false;
    std::size_t finished_this_round = 0;
    for (std::size_t i = 0; i < count; ++i) {
      Fiber& f = *fibers_[i];
      if (f.done()) continue;
      f.resume();  // a rethrown body exception leaves peers suspended; the
                   // next run_group's reset() re-arms them safely
      if (f.done()) {
        ++finished_this_round;
      } else {
        any_live = true;
      }
    }
    if (finished_this_round != 0 && any_live) {
      throw Error(Status::kInvalidOperation,
                  "divergent barrier: work-items in a group executed "
                  "different numbers of barriers");
    }
  }
}

void run_fiber_group(std::size_t count,
                     const std::function<void(std::size_t)>& body,
                     std::size_t stack_bytes) {
  FiberPool pool(stack_bytes);
  pool.run_group(count, body);
}

}  // namespace eod::xcl
