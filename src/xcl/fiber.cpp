#include "xcl/fiber.hpp"

#include <ucontext.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "xcl/error.hpp"

namespace eod::xcl {

struct Fiber::Impl {
  ucontext_t context{};
  ucontext_t caller{};
  std::vector<char> stack;
  Fn fn;
  std::exception_ptr pending;
  bool started = false;
  bool finished = false;
};

namespace {
thread_local Fiber::Impl* g_current_fiber = nullptr;

// makecontext only forwards ints, so the Impl pointer travels as two halves.
void fiber_trampoline(unsigned hi, unsigned lo) {
  auto* impl = reinterpret_cast<Fiber::Impl*>(
      (static_cast<std::uintptr_t>(hi) << 32) | lo);
  try {
    impl->fn();
  } catch (...) {
    impl->pending = std::current_exception();
  }
  impl->finished = true;
  // uc_link returns to the caller context when the trampoline falls off.
}
}  // namespace

Fiber::Fiber(Fn fn, std::size_t stack_bytes) : impl_(std::make_unique<Impl>()) {
  impl_->fn = std::move(fn);
  impl_->stack.resize(stack_bytes);
}

Fiber::~Fiber() = default;

void Fiber::resume() {
  if (done_) {
    throw std::logic_error("Fiber::resume called on a finished fiber");
  }
  Impl* impl = impl_.get();
  if (!impl->started) {
    impl->started = true;
    if (getcontext(&impl->context) != 0) {
      throw std::runtime_error("getcontext failed");
    }
    impl->context.uc_stack.ss_sp = impl->stack.data();
    impl->context.uc_stack.ss_size = impl->stack.size();
    impl->context.uc_link = &impl->caller;
    const auto ptr = reinterpret_cast<std::uintptr_t>(impl);
    makecontext(&impl->context,
                reinterpret_cast<void (*)()>(fiber_trampoline), 2,
                static_cast<unsigned>(ptr >> 32),
                static_cast<unsigned>(ptr & 0xffffffffu));
  }
  Impl* previous = g_current_fiber;
  g_current_fiber = impl;
  swapcontext(&impl->caller, &impl->context);
  g_current_fiber = previous;

  if (impl->finished) done_ = true;
  if (impl->pending) {
    auto e = impl->pending;
    impl->pending = nullptr;
    std::rethrow_exception(e);
  }
}

void Fiber::yield_current() {
  Impl* impl = g_current_fiber;
  if (impl == nullptr) {
    throw std::logic_error("Fiber::yield_current outside a fiber");
  }
  swapcontext(&impl->context, &impl->caller);
}

void run_fiber_group(std::size_t count,
                     const std::function<void(std::size_t)>& body,
                     std::size_t stack_bytes) {
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&body, i] { body(i); },
                                             stack_bytes));
  }
  // Round-robin: one resume per unfinished fiber per round.  All fibers must
  // finish on the same round, otherwise the kernel has divergent barriers.
  bool any_live = count > 0;
  while (any_live) {
    any_live = false;
    std::size_t finished_this_round = 0;
    std::size_t live_at_round_start = 0;
    for (auto& f : fibers) {
      if (f->done()) continue;
      ++live_at_round_start;
      f->resume();
      if (f->done()) {
        ++finished_this_round;
      } else {
        any_live = true;
      }
    }
    if (finished_this_round != 0 && any_live) {
      throw Error(Status::kInvalidOperation,
                  "divergent barrier: work-items in a group executed "
                  "different numbers of barriers");
    }
    (void)live_at_round_start;
  }
}

}  // namespace eod::xcl
