// Cooperative fibers (ucontext-based) used to suspend work-items at
// work-group barriers.
//
// OpenCL's barrier(CLK_LOCAL_MEM_FENCE) requires every work-item in a group
// to reach the barrier before any proceeds.  Executing work-items as fibers
// lets one OS thread interleave a whole group: each item runs until it calls
// barrier(), yields, and is resumed for the next phase once all its peers
// have yielded too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

namespace eod::xcl {

/// A single suspendable execution context.  Not thread-safe: a fiber must be
/// resumed from one thread at a time (group execution is single-threaded).
class Fiber {
 public:
  using Fn = std::function<void()>;

  explicit Fiber(Fn fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or finishes.  Rethrows any exception the
  /// fiber body raised.  Calling resume() on a finished fiber is an error.
  void resume();

  /// Must be called from inside the fiber body: suspends back to resume().
  static void yield_current();

  /// Re-arms the fiber with a new body, reusing the existing stack
  /// allocation.  Resetting a suspended (started but unfinished) fiber
  /// abandons its stack contents without unwinding -- the same teardown
  /// semantics as destroying it, and only reachable after an error escaped
  /// the previous group.
  void reset(Fn fn);

  /// Re-arms the fiber keeping its current body: restartable from the top
  /// with no std::function assignment at all.  Same abandonment semantics
  /// for suspended fibers as reset(Fn).
  void rearm();

  [[nodiscard]] bool done() const noexcept { return done_; }

  static constexpr std::size_t kDefaultStackBytes = 128 * 1024;

  struct Impl;  // public so the trampoline (extern "C"-style) can see it

 private:
  std::unique_ptr<Impl> impl_;
  bool done_ = false;
};

/// Non-owning reference to a callable `void(std::size_t item)`.  Two raw
/// pointers -- no ownership, no heap, trivially copyable -- so passing a
/// group body to FiberPool::run_group costs nothing, unlike a per-group
/// lambda -> std::function conversion.  The referenced callable must
/// outlive the call it is passed to.
class GroupFnRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, GroupFnRef>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like
  // std::function_ref -- call sites pass lambdas directly.
  GroupFnRef(const F& fn)
      : obj_(&fn), call_([](const void* obj, std::size_t i) {
          (*static_cast<const F*>(obj))(i);
        }) {}

  void operator()(std::size_t i) const { call_(obj_, i); }

 private:
  friend class FiberPool;
  GroupFnRef() = default;  // null ref: FiberPool's between-groups idle state

  const void* obj_ = nullptr;
  void (*call_)(const void*, std::size_t) = nullptr;
};

/// A reusable team of fibers: stacks are allocated once and re-armed -- not
/// reallocated -- between work-groups, so steady-state barrier execution
/// performs no heap traffic.  Each fiber is built once with a permanent
/// closure over (pool, index) that dispatches through the pool's
/// current-group body, so re-arming a fiber never touches its
/// std::function either.  One pool belongs to one executing thread (a pool
/// worker owns one in thread-local scratch); it is not thread-safe, and it
/// is pinned in memory (fiber closures capture the pool address).
class FiberPool {
 public:
  explicit FiberPool(std::size_t stack_bytes = Fiber::kDefaultStackBytes)
      : stack_bytes_(stack_bytes) {}

  FiberPool(const FiberPool&) = delete;
  FiberPool& operator=(const FiberPool&) = delete;

  /// Runs `count` bodies as fibers with round-robin barrier scheduling:
  /// repeatedly resumes every unfinished fiber once per round, which
  /// realizes barrier semantics when each body yields at its barrier points
  /// (and each body performs the same number of yields, as OpenCL requires).
  /// Throws if bodies disagree on barrier count (a barrier divergence bug).
  /// `body` is only referenced for the duration of the call.
  void run_group(std::size_t count, GroupFnRef body);

  /// Fibers (hence stacks) currently retained for reuse.
  [[nodiscard]] std::size_t pooled() const noexcept { return fibers_.size(); }

 private:
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::size_t stack_bytes_;
  // The current group's body.  Meaningful only while run_group is resuming
  // fibers; a null ref in between, and never invoked then (fibers only run
  // under run_group).
  GroupFnRef body_{};
};

/// Process-wide fiber-stack pooling counters (observability): stacks newly
/// allocated by any FiberPool vs. re-armed from an existing allocation.
[[nodiscard]] std::uint64_t fiber_stacks_created() noexcept;
[[nodiscard]] std::uint64_t fiber_stacks_reused() noexcept;
void reset_fiber_stack_counters() noexcept;

/// One-shot convenience wrapper: runs the group on a temporary FiberPool
/// (fresh stacks, no reuse).  Prefer a long-lived FiberPool on hot paths.
void run_fiber_group(std::size_t count,
                     const std::function<void(std::size_t)>& body,
                     std::size_t stack_bytes = Fiber::kDefaultStackBytes);

}  // namespace eod::xcl
