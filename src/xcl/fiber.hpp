// Cooperative fibers (ucontext-based) used to suspend work-items at
// work-group barriers.
//
// OpenCL's barrier(CLK_LOCAL_MEM_FENCE) requires every work-item in a group
// to reach the barrier before any proceeds.  Executing work-items as fibers
// lets one OS thread interleave a whole group: each item runs until it calls
// barrier(), yields, and is resumed for the next phase once all its peers
// have yielded too.
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

namespace eod::xcl {

/// A single suspendable execution context.  Not thread-safe: a fiber must be
/// resumed from one thread at a time (group execution is single-threaded).
class Fiber {
 public:
  using Fn = std::function<void()>;

  explicit Fiber(Fn fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Runs the fiber until it yields or finishes.  Rethrows any exception the
  /// fiber body raised.  Calling resume() on a finished fiber is an error.
  void resume();

  /// Must be called from inside the fiber body: suspends back to resume().
  static void yield_current();

  [[nodiscard]] bool done() const noexcept { return done_; }

  static constexpr std::size_t kDefaultStackBytes = 128 * 1024;

  struct Impl;  // public so the trampoline (extern "C"-style) can see it

 private:
  std::unique_ptr<Impl> impl_;
  bool done_ = false;
};

/// Runs `count` bodies as fibers with round-robin barrier scheduling:
/// repeatedly resumes every unfinished fiber once per round, which realizes
/// barrier semantics when each body yields at its barrier points (and each
/// body performs the same number of yields, as OpenCL requires).
/// Throws if bodies disagree on barrier count (a barrier divergence bug).
void run_fiber_group(std::size_t count,
                     const std::function<void(std::size_t)>& body,
                     std::size_t stack_bytes = Fiber::kDefaultStackBytes);

}  // namespace eod::xcl
